package tprof

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

// TestPublicAPIRoundTrip exercises the exported surface the README's
// quick start uses: generate data, compile SQL, run under sampling,
// render reports.
func TestPublicAPIRoundTrip(t *testing.T) {
	cat := GenerateData(DataConfig{ScaleFactor: 0.1, Seed: 1})
	eng := NewEngine(cat, DefaultOptions())
	cq, err := eng.CompileSQL(`
		select l_orderkey, avg(l_extendedprice) as avg_price
		from lineitem, orders
		where o_orderdate < '1995-04-01' and o_orderkey = l_orderkey
		group by l_orderkey`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(cq, &SamplingConfig{
		Event: EventCycles, Period: 997, Format: FormatIPTimeRegs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Profile.TotalSamples == 0 {
		t.Fatal("no rows or samples")
	}

	// Cross-check against the reference executor.
	want, err := ReferenceExecute(cq.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(res.Rows) {
		t.Fatalf("rows %d vs reference %d", len(res.Rows), len(want))
	}

	// The optimizer fuses this shape into a groupjoin (§5.4).
	planTxt := AnnotatedPlan(cq.Plan, cq, res.Profile)
	if !strings.Contains(planTxt, "groupjoin") || !strings.Contains(planTxt, "%") {
		t.Fatalf("plan report:\n%s", planTxt)
	}
	if !strings.Contains(OperatorTable(res.Profile), "groupjoin") {
		t.Fatal("operator table missing groupjoin")
	}
	if len(TimelineChart(res.Profile, 20)) == 0 {
		t.Fatal("timeline empty")
	}
	if !strings.Contains(ResultTable(res, 5), "l_orderkey") {
		t.Fatal("result table missing header")
	}
}

// TestPublicZoom drills into a sub-interval.
func TestPublicZoom(t *testing.T) {
	cat := GenerateData(DataConfig{ScaleFactor: 0.1, Seed: 1})
	eng := NewEngine(cat, DefaultOptions())
	cq, err := eng.CompileSQL(`select count(*) from lineitem, orders where o_orderkey = l_orderkey`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(cq, &SamplingConfig{Event: EventCycles, Period: 499, Format: FormatIPTimeRegs})
	if err != nil {
		t.Fatal(err)
	}
	mid := (res.Profile.MinTSC + res.Profile.MaxTSC) / 2
	sub := Zoom(cq, res, res.Profile.MinTSC, mid)
	if sub.TotalSamples == 0 || sub.TotalSamples >= res.Profile.TotalSamples {
		t.Fatalf("zoom samples = %d of %d", sub.TotalSamples, res.Profile.TotalSamples)
	}
	if sub.MaxTSC > mid {
		t.Fatal("zoom did not respect the interval")
	}
}

// TestPublicAnalyze covers the EXPLAIN ANALYZE surface.
func TestPublicAnalyze(t *testing.T) {
	cat := GenerateData(DataConfig{ScaleFactor: 0.1, Seed: 1})
	opts := DefaultOptions()
	opts.TupleCounters = true
	eng := NewEngine(cat, opts)
	cq, err := eng.CompileSQL(`select o_custkey, count(*) from orders group by o_custkey`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := AnalyzedPlan(cq, res)
	if !strings.Contains(out, "rows=") {
		t.Fatalf("analyzed plan:\n%s", out)
	}
}

// TestProgrammaticPlans builds a query without SQL through the plan
// package's constructors (the custom_dataflow example's path).
func TestProgrammaticPlans(t *testing.T) {
	cat := GenerateData(DataConfig{ScaleFactor: 0.1, Seed: 1})
	eng := NewEngine(cat, DefaultOptions())
	q := &Query{
		Tables: []plan.TableRef{{Name: "orders"}},
		Where:  []plan.Expr{plan.Lt(plan.Col("o_orderdate"), plan.Str("1994-01-01"))},
		Select: []plan.SelectItem{
			{Expr: plan.Col("o_orderkey")},
		},
		Limit: 10,
	}
	cq, err := eng.CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}
