// Package tprof is the public API of this reproduction of "Profiling
// Dataflow Systems on Multiple Abstraction Levels" (Beischl et al.,
// EuroSys 2021): a compiling dataflow engine (SQL → operator plan →
// pipelines of tasks → IR → simulated native code), a simulated CPU with a
// PEBS-style PMU, and — the paper's contribution — Tailored Profiling:
// Tagging Dictionary, Abstraction Trackers, Register Tagging, and
// multi-level profile reports.
//
// Quick start:
//
//	cat := tprof.GenerateData(tprof.DataConfig{ScaleFactor: 1})
//	eng := tprof.NewEngine(cat, tprof.DefaultOptions())
//	cq, err := eng.CompileSQL(`select l_orderkey, avg(l_extendedprice)
//	                           from lineitem, orders
//	                           where o_orderkey = l_orderkey group by l_orderkey`)
//	res, err := eng.Run(cq, &tprof.SamplingConfig{
//	    Event: tprof.EventCycles, Period: 5000, Format: tprof.FormatIPTimeRegs,
//	})
//	fmt.Println(tprof.AnnotatedPlan(cq.Plan, cq.Pipe, res.Profile))
//
// The subsystems live in internal packages; this package re-exports the
// stable surface. See README.md for the architecture and DESIGN.md for the
// paper-experiment mapping.
package tprof

import (
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/ref"
	"repro/internal/sqlparse"
	"repro/internal/viz"
	"repro/internal/vm"
)

// Engine compiles and runs queries (see internal/engine).
type Engine = engine.Engine

// Options configures compilation (Register Tagging, IR optimizations, …).
type Options = engine.Options

// Compiled is a compiled query: plan, pipelines, Tagging Dictionary,
// native code and debug info.
type Compiled = engine.Compiled

// Result is one execution's rows, statistics, samples and profile.
type Result = engine.Result

// Catalog holds the tables queries run against.
type Catalog = catalog.Catalog

// Table is an in-memory columnar table.
type Table = catalog.Table

// DataConfig scales the TPC-H-like dataset.
type DataConfig = datagen.Config

// SamplingConfig arms the PMU (event, period, record format).
type SamplingConfig = pmu.Config

// Format selects the sample record contents.
type Format = pmu.Format

// Profile is the attributed, aggregated sample set with report builders.
type Profile = core.Profile

// Query is the parsed-but-unplanned query form; build one with Parse or
// programmatically with the plan package's expression constructors.
type Query = plan.Query

// Sampling events.
const (
	EventCycles       = vm.EvCycles
	EventInstructions = vm.EvInstRetired
	EventLoads        = vm.EvMemLoads
	EventL3Miss       = vm.EvL3Miss
	EventBranchMiss   = vm.EvBranchMiss
)

// Sample record formats (the three configurations of Fig. 13).
var (
	FormatIPTime     = pmu.FormatIPTime
	FormatIPTimeRegs = pmu.FormatIPTimeRegs
	FormatCallStack  = pmu.FormatCallStack
)

// NewEngine creates an engine over a catalog.
func NewEngine(cat *Catalog, opts Options) *Engine { return engine.New(cat, opts) }

// DefaultOptions returns the standard configuration (Register Tagging on,
// all IR optimizations enabled).
func DefaultOptions() Options { return engine.DefaultOptions() }

// GenerateData builds the deterministic TPC-H-like dataset.
func GenerateData(cfg DataConfig) *Catalog { return datagen.Generate(cfg) }

// Parse parses a SQL statement into a Query.
func Parse(sql string) (*Query, error) { return sqlparse.Parse(sql) }

// ReferenceExecute runs a compiled plan on the interpreted reference
// executor (the correctness oracle).
func ReferenceExecute(pl *plan.Output) ([][]int64, error) { return ref.Execute(pl) }

// AnnotatedPlan renders the plan with per-operator cost shares (Fig. 9b).
func AnnotatedPlan(pl *plan.Output, cq *Compiled, p *Profile) string {
	return viz.AnnotatedPlan(pl, cq.Pipe, p)
}

// OperatorTable renders per-operator costs as text.
func OperatorTable(p *Profile) string { return viz.OperatorTable(p) }

// TimelineChart renders operator activity over time (Fig. 7/11).
func TimelineChart(p *Profile, bins int) string {
	return viz.TimelineChart(p.BuildTimeline(bins), 3.5)
}

// MemoryProfile renders per-operator memory access patterns (Fig. 12).
func MemoryProfile(p *Profile) string {
	return viz.MemoryProfile(p, 72, 8, engine.DataFloor)
}

// ResultTable renders query results with decoded dictionary strings and
// dates.
func ResultTable(res *Result, maxRows int) string { return viz.ResultTable(res, maxRows) }

// AnalyzedPlan renders the plan with EXPLAIN ANALYZE tuple counts (enable
// Options.TupleCounters) next to sampled time shares — the §6.1
// comparison.
func AnalyzedPlan(cq *Compiled, res *Result) string {
	return viz.AnalyzedPlan(cq.Plan, cq.Pipe, res.TupleCounts, res.Profile)
}

// Zoom rebuilds a profile from the samples inside [fromTSC, toTSC] — the
// §4.3 drill-down from a timeline hotspot to lower abstraction levels.
func Zoom(cq *Compiled, res *Result, fromTSC, toTSC uint64) *Profile {
	att := core.NewAttributor(cq.Pipe.Dict, cq.Code.NMap)
	return core.BuildProfile(att, core.SliceSamples(res.Samples, fromTSC, toTSC))
}
