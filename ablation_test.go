// Ablation benchmarks: quantify the engine's design choices by toggling
// them — the IR optimizer, compare-and-branch fusion, group-join fusion,
// and EXPLAIN ANALYZE counters — each reported as a relative overhead or
// speedup metric.
package tprof

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/queries"
)

// ablationRun compiles and runs a workload under the given options and
// returns work cycles.
func ablationRun(b *testing.B, opts engine.Options, name string) uint64 {
	b.Helper()
	env := benchEnv(b)
	eng := engine.New(env.Cat, opts)
	w, ok := queries.ByName(name)
	if !ok {
		b.Fatalf("no workload %s", name)
	}
	cq, err := eng.CompileQuery(w.Query)
	if err != nil {
		b.Fatal(err)
	}
	res, err := eng.Run(cq, nil)
	if err != nil {
		b.Fatal(err)
	}
	return res.Stats.Cycles
}

// BenchmarkAblationIROptimizer measures how much the IR optimization
// passes (constant folding, DCE, CSE) change generated-code speed. The
// result is a genuine trade-off, not an assertion: CSE removes repeated
// address arithmetic but lengthens live ranges, and on a 13-register
// allocation budget the extra spills can cost as much as the saved ALU
// work — the speedup hovers around 1.0 either side. (The passes exist in
// this repo primarily for their Table 1 attribution semantics, which the
// iropt and engine tests verify.)
func BenchmarkAblationIROptimizer(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		on := engine.DefaultOptions()
		off := engine.DefaultOptions()
		off.Optimize.ConstFold = false
		off.Optimize.DCE = false
		off.Optimize.CSE = false
		speedup = float64(ablationRun(b, off, "intro-nogj")) / float64(ablationRun(b, on, "intro-nogj"))
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkAblationBranchFusion measures the backend's compare-and-branch
// peephole (Table 1 "instruction fusing").
func BenchmarkAblationBranchFusion(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		on := engine.DefaultOptions()
		off := engine.DefaultOptions()
		off.FuseCmpBranch = false
		speedup = float64(ablationRun(b, off, "fig9")) / float64(ablationRun(b, on, "fig9"))
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkAblationGroupJoin measures the dataflow-graph operator fusion
// of §5.4: the fused groupjoin versus the separate join + group-by.
func BenchmarkAblationGroupJoin(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		fused := ablationRun(b, engine.DefaultOptions(), "intro")
		plain := ablationRun(b, engine.DefaultOptions(), "intro-nogj")
		speedup = float64(plain) / float64(fused)
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkAblationTupleCounters measures the EXPLAIN ANALYZE
// instrumentation cost — the always-on price the paper's sampling approach
// avoids paying.
func BenchmarkAblationTupleCounters(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		counted := engine.DefaultOptions()
		counted.TupleCounters = true
		overhead = float64(ablationRun(b, counted, "fig9"))/float64(ablationRun(b, engine.DefaultOptions(), "fig9")) - 1
	}
	b.ReportMetric(100*overhead, "overhead_pct")
}

// BenchmarkAblationTagEverything measures the §6.3 validation mode's cost
// (tagging every generated section rather than only shared calls).
func BenchmarkAblationTagEverything(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		all := engine.DefaultOptions()
		all.TagEverything = true
		overhead = float64(ablationRun(b, all, "fig9"))/float64(ablationRun(b, engine.DefaultOptions(), "fig9")) - 1
	}
	b.ReportMetric(100*overhead, "overhead_pct")
}
