// Optimizer comparison: the optimizer-developer use case of §6.1
// (Fig. 10/11). Two join orders with identical intermediate result sizes
// behave very differently because lineitem is stored in orderkey order and
// o_orderdate correlates with o_orderkey: past the date cutoff, the orders
// join eliminates every tuple, which branch predictors exploit. The
// operator-activity timeline makes the phase change visible.
package main

import (
	"fmt"
	"log"

	tprof "repro"
	"repro/internal/plan"
)

func main() {
	cat := tprof.GenerateData(tprof.DataConfig{ScaleFactor: 2, Seed: 42})
	eng := tprof.NewEngine(cat, tprof.DefaultOptions())

	base := `
		select sum(ps_supplycost * l_quantity) as total_cost
		from lineitem, orders, partsupp
		where o_orderkey = l_orderkey
		  and ps_partkey = l_partkey
		  and o_orderdate < '1995-06-17'`

	// The hints force the two probe orders of Fig. 10; everything else
	// (filters, estimates, build sides) stays identical.
	plans := []struct {
		name  string
		hints plan.Hints
	}{
		{"optimizer's plan (Fig. 10a): probe partsupp, then orders",
			plan.Hints{ProbeBase: "lineitem", ProbeOrder: []string{"partsupp", "orders"}}},
		{"alternative plan (Fig. 10b): probe orders, then partsupp",
			plan.Hints{ProbeBase: "lineitem", ProbeOrder: []string{"orders", "partsupp"}}},
	}

	var cycles []uint64
	for _, pl := range plans {
		q, err := tprof.Parse(base)
		if err != nil {
			log.Fatal(err)
		}
		q.Hints = pl.hints
		cq, err := eng.CompileQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(cq, &tprof.SamplingConfig{
			Event: tprof.EventCycles, Period: 2000, Format: tprof.FormatIPTimeRegs,
		})
		if err != nil {
			log.Fatal(err)
		}
		cycles = append(cycles, res.Stats.Cycles)

		fmt.Printf("═══ %s ═══\n", pl.name)
		fmt.Printf("runtime %.2f ms, %d branch mispredictions (%.2f%% of branches)\n\n",
			float64(res.Stats.Cycles)/3.5e6, res.Stats.BranchMisses,
			100*float64(res.Stats.BranchMisses)/float64(res.Stats.Branches))
		fmt.Println(tprof.AnnotatedPlan(cq.Plan, cq, res.Profile))
		fmt.Println(tprof.TimelineChart(res.Profile, 64))
	}

	fmt.Printf("alternative plan speedup: %.2fx\n", float64(cycles[0])/float64(cycles[1]))
	fmt.Println("→ the cost model treats both plans alike; the timeline reveals why the data layout favours the alternative.")
}
