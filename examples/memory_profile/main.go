// Memory profile: the operator-developer use case of §6.1 (Fig. 12). The
// PMU samples retired loads with their addresses; the Tagging Dictionary
// attributes every sample to an operator, producing per-operator memory
// access patterns: table scans read linearly (prefetcher-friendly), hash
// joins and aggregations scatter across their hash tables.
package main

import (
	"fmt"
	"log"

	tprof "repro"
	"repro/internal/vm"
)

func main() {
	cat := tprof.GenerateData(tprof.DataConfig{ScaleFactor: 1, Seed: 42})

	// Attribute column loads to the scans so each scan's sequential band
	// shows under its own operator, as in the paper's Fig. 12.
	opts := tprof.DefaultOptions()
	opts.EagerColumnLoads = true
	eng := tprof.NewEngine(cat, opts)

	cq, err := eng.CompileSQL(`
		select l_orderkey, avg(l_extendedprice) as avg_price
		from lineitem, orders
		where o_orderdate < '1995-04-01'
		  and o_orderkey = l_orderkey
		group by l_orderkey`)
	if err != nil {
		log.Fatal(err)
	}

	// Sample memory loads (MEM_INST_RETIRED.ALL_LOADS in the paper),
	// capturing the accessed address with each sample.
	res, err := eng.Run(cq, &tprof.SamplingConfig{
		Event:  tprof.EventLoads,
		Period: 1000,
		Format: tprof.FormatIPTimeRegs,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d load samples across %.2f ms\n\n",
		res.Profile.TotalSamples, float64(res.Stats.TotalCycles())/3.5e6)
	fmt.Println("memory access pattern per operator (x: time, y: address offset):")
	fmt.Println(tprof.MemoryProfile(res.Profile))

	// The same samples can be restricted to cache misses to find the
	// data structure that hurts: re-run with the L3-miss event.
	missRes, err := eng.Run(cq, &tprof.SamplingConfig{
		Event:  vm.EvL3Miss,
		Period: 200,
		Format: tprof.FormatIPTimeRegs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("operators ranked by DRAM-served loads (L3 misses):")
	fmt.Println(tprof.OperatorTable(missRes.Profile))
}
