// Custom dataflow: use the engine as a library over your own data —
// register custom columnar tables, build the query programmatically with
// the expression constructors (no SQL), and drill from the operator level
// down to the annotated IR of the hot pipeline, the operator-developer
// workflow of Fig. 6b.
package main

import (
	"fmt"
	"log"

	tprof "repro"
	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/viz"
	"repro/internal/xrand"
)

func main() {
	// A custom event-log dataset: sensors and readings.
	cat := catalog.New()
	cat.Add(makeSensors(200))
	cat.Add(makeReadings(200, 100_000))

	eng := tprof.NewEngine(cat, tprof.DefaultOptions())

	// Programmatic query construction: per-zone average reading of
	// calibrated sensors.
	//
	//   SELECT s.zone, avg(r.value), count(*)
	//   FROM readings r, sensors s
	//   WHERE r.sensor = s.id AND s.calibrated = 1
	//   GROUP BY s.zone
	q := &plan.Query{
		Tables: []plan.TableRef{
			{Name: "readings", Alias: "r"},
			{Name: "sensors", Alias: "s"},
		},
		Where: []plan.Expr{
			plan.Eq(plan.Col("r.sensor"), plan.Col("s.id")),
			plan.Eq(plan.Col("s.calibrated"), plan.Num(1)),
		},
		Select: []plan.SelectItem{
			{Expr: plan.Col("s.zone")},
			{Expr: &plan.Agg{Fn: plan.AggAvg, Arg: plan.Col("r.value")}, Alias: "avg_value"},
			{Expr: &plan.Agg{Fn: plan.AggCount}, Alias: "readings"},
		},
		GroupBy: []plan.Expr{plan.Col("s.zone")},
		OrderBy: []plan.OrderItem{{Expr: plan.Col("s.zone")}},
		Limit:   -1,
	}

	cq, err := eng.CompileQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(cq, &tprof.SamplingConfig{
		Event: tprof.EventCycles, Period: 2000, Format: tprof.FormatIPTimeRegs,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(tprof.ResultTable(res, 10))
	fmt.Println(tprof.AnnotatedPlan(cq.Plan, cq, res.Profile))

	// Drill down one abstraction level: the annotated IR of the probe
	// pipeline (where scan, join and aggregation were fused).
	for _, p := range cq.Pipe.Pipelines {
		for _, taskID := range p.Tasks {
			if cq.Pipe.Registry.Get(taskID).Kind == "probe" {
				f := cq.Pipe.Module.FuncByName(p.Func)
				fmt.Println("annotated IR of the fused probe pipeline:")
				fmt.Println(viz.AnnotatedIR(f, cq.Pipe, res.Profile))
				return
			}
		}
	}
}

func makeSensors(n int) *catalog.Table {
	r := xrand.New(7)
	t := catalog.NewTable("sensors")
	id := t.AddCol("id", catalog.TInt)
	id.Unique = true
	zone := t.AddCol("zone", catalog.TInt)
	cal := t.AddCol("calibrated", catalog.TInt)
	for i := 0; i < n; i++ {
		id.Data = append(id.Data, int64(i+1))
		zone.Data = append(zone.Data, r.Int64Range(1, 8))
		cal.Data = append(cal.Data, int64(r.Intn(2)))
	}
	return t
}

func makeReadings(sensors, n int) *catalog.Table {
	r := xrand.New(11)
	t := catalog.NewTable("readings")
	sensor := t.AddCol("sensor", catalog.TInt)
	value := t.AddCol("value", catalog.TInt)
	ts := t.AddCol("ts", catalog.TInt)
	z := xrand.NewZipf(sensors, 1.1) // skewed: some sensors are chatty
	for i := 0; i < n; i++ {
		sensor.Data = append(sensor.Data, int64(r.Zipf(z)+1))
		value.Data = append(value.Data, r.Int64Range(0, 10_000))
		ts.Data = append(ts.Data, int64(i))
	}
	return t
}
