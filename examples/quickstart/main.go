// Quickstart: compile a SQL query, run it under cycle sampling, and view
// the profile at the dataflow-graph level — the paper's domain-expert
// workflow (§6.1, Fig. 9): which operator is the query actually spending
// its time in?
package main

import (
	"fmt"
	"log"

	tprof "repro"
)

func main() {
	// Deterministic TPC-H-like data; scale factor 1.0 ≈ TPC-H SF 0.01.
	cat := tprof.GenerateData(tprof.DataConfig{ScaleFactor: 1, Seed: 42})
	eng := tprof.NewEngine(cat, tprof.DefaultOptions())

	// The paper's Fig. 9a query: average price per order placed before
	// April 1995.
	cq, err := eng.CompileSQL(`
		select l_orderkey, avg(l_extendedprice) as avg_price
		from lineitem, orders
		where o_orderdate < '1995-04-01'
		  and o_orderkey = l_orderkey
		group by l_orderkey`)
	if err != nil {
		log.Fatal(err)
	}

	// Run under PEBS-style sampling: one sample per 5000 cycles, records
	// carry IP, TSC and the register file (Register Tagging).
	res, err := eng.Run(cq, &tprof.SamplingConfig{
		Event:  tprof.EventCycles,
		Period: 5000,
		Format: tprof.FormatIPTimeRegs,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query returned %d groups in %.2f ms (simulated), %d samples\n\n",
		len(res.Rows), float64(res.Stats.Cycles)/3.5e6, res.Profile.TotalSamples)

	// The report a domain expert reads: the familiar query plan,
	// annotated with where the time actually went.
	fmt.Println(tprof.AnnotatedPlan(cq.Plan, cq, res.Profile))
	fmt.Println(tprof.OperatorTable(res.Profile))

	a := res.Profile.Attribution()
	fmt.Printf("sample attribution: %.1f%% operators, %.1f%% kernel, %.1f%% unattributed\n",
		a.OperatorPct, a.KernelPct, a.UnattributedPct)
}
