// Command tprofvet is the static verification driver for the Tailored
// Profiling toolchain. It has two modes:
//
//	tprofvet check [-sf 0.05] [-workers 1,4] [-tv] [-absint] [-mutants] [-json] [-pgo] [-cache] [-merge] [-cost] [-shard] [-epoch] [-views] [-q name]
//	tprofvet lint [-json] [root]
//
// check compiles the full query corpus with Engine.VerifyArtifacts on,
// so the cross-level suite (internal/verify) runs over every artifact:
// after pipeline construction, after every optimizer pass, and after
// native emit. With -pgo it additionally runs one adaptive cycle per
// query, verifying the profile-guided recompilation's artifacts the same
// way. With -cache it drives the SQL workload suite through the query
// service instead: every artifact is verified once at cache-insert time,
// and the cold compile, the cache hit, and every worker count must all
// produce rows identical to the interpreted reference executor. With
// -merge it verifies the partitioned parallel merge: the static
// MergeInvariants battery (kernel lineage tags, bloom bounds, partition
// slot-range disjointness) plus exact-row determinism against the serial
// oracle and PMU attribution of the generated merge kernels. With -cost
// it verifies the cost layer over the SQL suite: every plan node must
// carry a consistent cardinality/cycle estimate (cost.CheckModel), and a
// counter-instrumented run of every plan must yield true row counts that
// all map to live Tagging Dictionary tags (cost.CheckObserved). With
// -shard it verifies sharded execution: every workload runs profiled at
// Shards ∈ {1,2,4,8} for every worker count with pruning on; rows and the
// canonical profile must be identical across the whole grid, and each
// run's per-shard lineage journals must replay cleanly against the
// table's row counts and the profile's skip events (verify.CheckShards:
// shards tile the table, no zone tag collisions, every pruned zone has
// exactly one matching skip event). With -epoch it verifies
// epoch-versioned storage: the SQL suite runs through one service while a
// scripted ingest stream appends to the fact tables between workloads;
// the catalog's append journal must replay cleanly against the per-epoch
// snapshots (verify.CheckEpochs) and every warm re-prepare must hit the
// cold artifact — appends cause zero recompiles and zero evictions. With
// -views it verifies materialized views end to end: a probe family of
// aggregate statements must rewrite onto registered views and return rows
// byte-identical to the un-rewritten base execution, across scripted
// appends and incremental refreshes with zero run-time fallbacks; the
// refresh ledger must then replay byte-exactly against the base tables
// (verify.CheckViews), and statements matching no view must carry no
// rewrite.
//
// -tv reports translation-validation coverage: the per-pass validator
// (internal/verify/tv) must have checked at least one optimizer pass
// application per compile. -absint runs the abstract interpreter
// (internal/verify/absint) over the emitted native code and reports how
// many memory accesses it proved in-bounds and aligned; any definite
// violation fails the check. -mutants runs the miscompilation-mutant
// harness (internal/verify/mutate) over the corpus and enforces the 95%
// catch-rate gate. -json switches the default check mode and lint mode to
// machine-readable JSON on stdout.
//
// lint type-checks the repository and applies the source rules (no
// math/rand outside internal/xrand, no fmt.Sprintf on the compile hot
// path, no mutex-by-value, no time.Now in the VM/PMU, no panic outside
// the bug/bugf helpers, no dropped errors on engine/service paths, and
// the concurrency rules: lock ordering, WaitGroup.Add placement,
// channel-close discipline, no mixed atomic/plain field access).
//
// Exit status: 0 clean, 1 diagnostics or failures, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/mview"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/ref"
	"repro/internal/sqlparse"
	"repro/internal/verify"
	"repro/internal/verify/absint"
	"repro/internal/verify/mutate"
	"repro/internal/verify/tv"
	"repro/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "check":
		os.Exit(runCheck(os.Args[2:]))
	case "lint":
		os.Exit(runLint(os.Args[2:]))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tprofvet check [flags] | tprofvet lint [root]")
	os.Exit(2)
}

func runCheck(args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	sf := fs.Float64("sf", 0.05, "data scale factor for the corpus runs")
	seed := fs.Uint64("seed", 42, "data generator seed")
	workersCSV := fs.String("workers", "1,4", "comma-separated worker counts to verify")
	pgo := fs.Bool("pgo", false, "additionally verify one profile-guided recompilation per query")
	cache := fs.Bool("cache", false, "verify the service path: SQL suite through the compiled-query cache")
	merge := fs.Bool("merge", false, "verify the partitioned merge: static invariants, cross-worker determinism, merge-task attribution")
	costPass := fs.Bool("cost", false, "verify the cost layer: model consistency on every plan, true-count lineage on every counted run")
	shard := fs.Bool("shard", false, "verify sharded execution: journal/skip lineage, row and profile invariance across shard counts")
	epoch := fs.Bool("epoch", false, "verify epoch-versioned storage: replay the append journal against session snapshots, assert zero recompiles under ingest")
	views := fs.Bool("views", false, "verify materialized views: subsumption rewrites byte-identical to base execution under ingest, ledger replay via verify.CheckViews")
	tvFlag := fs.Bool("tv", false, "report translation-validation coverage; fail any compile that validated no optimizer pass")
	absFlag := fs.Bool("absint", false, "run the abstract interpreter over the emitted code and report proof coverage")
	mutants := fs.Bool("mutants", false, "run the miscompilation-mutant harness and enforce the 95% catch-rate gate")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON (default check and -mutants modes only)")
	only := fs.String("q", "", "restrict to one named workload")
	fs.Parse(args)

	var workers []int
	for _, s := range strings.Split(*workersCSV, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 0 {
			fmt.Fprintf(os.Stderr, "tprofvet: bad -workers value %q\n", s)
			return 2
		}
		workers = append(workers, w)
	}

	cat := datagen.Generate(datagen.Config{ScaleFactor: *sf, Seed: *seed})
	if *jsonOut && (*cache || *merge || *costPass || *shard || *epoch || *views) {
		fmt.Fprintln(os.Stderr, "tprofvet: -json supports the default check and -mutants modes only")
		return 2
	}
	if *cache {
		return runCacheCheck(cat, workers, *only)
	}
	if *merge {
		return runMergeCheck(cat, workers, *only)
	}
	if *costPass {
		return runCostCheck(cat, *only)
	}
	if *shard {
		return runShardCheck(cat, workers, *only)
	}
	if *epoch {
		return runEpochCheck(cat, *only)
	}
	if *views {
		return runViewCheck(cat, *only)
	}
	if *mutants {
		return runMutantCheck(cat, *only, *jsonOut)
	}

	suite := queries.Suite()
	if *only != "" {
		w, ok := queries.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "tprofvet: no workload %q\n", *only)
			return 2
		}
		suite = []queries.Workload{w}
	}

	var results []checkResult
	failures := 0
	checked := 0
	for _, w := range suite {
		for _, nw := range workers {
			opts := engine.DefaultOptions()
			opts.Workers = nw
			opts.VerifyArtifacts = true
			e := engine.New(cat, opts)

			r := checkResult{Workload: w.Name, Workers: nw}
			cq, err := e.CompileQuery(w.Query)
			checked++
			if err != nil {
				failures++
				r.Error = err.Error()
				results = append(results, r)
				if !*jsonOut {
					fmt.Printf("FAIL  %-12s workers=%d: %v\n", w.Name, nw, err)
				}
				continue
			}
			r.OK = true
			r.NativeInstrs = len(cq.Code.Program.Code)
			r.TVSteps = cq.TVSteps

			extra := ""
			if *tvFlag {
				if cq.TVSteps == 0 {
					r.OK = false
					r.Error = "translation validator checked no optimizer pass applications"
				} else {
					extra += fmt.Sprintf(", %d tv steps", cq.TVSteps)
				}
			}
			if r.OK && *absFlag {
				rep := absint.Analyze(cq.Code, cq.Mem, opts.RegisterTagging)
				r.Absint = &absintResult{
					Accesses: rep.Accesses, Proved: rep.Proved, Unproven: rep.Unproven,
				}
				for _, d := range rep.Diags {
					r.Diags = append(r.Diags, jsonDiag(d))
				}
				if len(rep.Diags) > 0 {
					r.OK = false
					r.Error = fmt.Sprintf("%d abstract-interpretation diagnostic(s)", len(rep.Diags))
				} else {
					extra += fmt.Sprintf(", absint %d/%d proved", rep.Proved, rep.Accesses)
				}
			}
			if !r.OK {
				failures++
				results = append(results, r)
				if !*jsonOut {
					fmt.Printf("FAIL  %-12s workers=%d: %s\n", w.Name, nw, r.Error)
					for _, d := range r.Diags {
						fmt.Printf("      %s: %s: %s\n", d.Check, d.Locus, d.Msg)
					}
				}
				continue
			}
			if !*pgo {
				results = append(results, r)
				if !*jsonOut {
					fmt.Printf("ok    %-12s workers=%d (%d native instrs%s)\n",
						w.Name, nw, len(cq.Code.Program.Code), extra)
				}
				continue
			}
			// The adaptive cycle recompiles through the same verified
			// compilePlan path, so the PGO artifacts (LICM/strength-
			// reduced IR, inverted layout, scaled fusion) get the full
			// suite too.
			ar, err := e.RunAdaptive(cq, nil)
			checked++
			if err != nil {
				failures++
				r.OK = false
				r.Error = "pgo: " + err.Error()
				results = append(results, r)
				if !*jsonOut {
					fmt.Printf("FAIL  %-12s workers=%d pgo: %v\n", w.Name, nw, err)
				}
				continue
			}
			results = append(results, r)
			if !*jsonOut {
				fmt.Printf("ok    %-12s workers=%d pgo (%d -> %d cycles%s)\n",
					w.Name, nw, ar.BaselineCycles, ar.TunedCycles, extra)
			}
		}
	}
	if *jsonOut {
		emitJSON(checkReport{Mode: "check", Checked: checked, Failures: failures, Results: results})
		if failures > 0 {
			return 1
		}
		return 0
	}
	if failures > 0 {
		fmt.Printf("tprofvet check: %d of %d artifact sets FAILED\n", failures, checked)
		return 1
	}
	fmt.Printf("tprofvet check: %d artifact sets verified, 0 diagnostics\n", checked)
	return 0
}

// checkReport is the machine-readable envelope for -json runs.
type checkReport struct {
	Mode     string        `json:"mode"`
	Checked  int           `json:"checked"`
	Failures int           `json:"failures"`
	Results  []checkResult `json:"results"`
}

type checkResult struct {
	Workload     string        `json:"workload"`
	Workers      int           `json:"workers"`
	OK           bool          `json:"ok"`
	Error        string        `json:"error,omitempty"`
	NativeInstrs int           `json:"nativeInstrs,omitempty"`
	TVSteps      int           `json:"tvSteps,omitempty"`
	Absint       *absintResult `json:"absint,omitempty"`
	Diags        []diagJSON    `json:"diags,omitempty"`
}

type absintResult struct {
	Accesses int `json:"accesses"`
	Proved   int `json:"proved"`
	Unproven int `json:"unproven"`
}

type diagJSON struct {
	Check    string `json:"check"`
	Severity string `json:"severity"`
	Level    string `json:"level"`
	Locus    string `json:"locus"`
	Msg      string `json:"msg"`
}

func jsonDiag(d verify.Diag) diagJSON {
	return diagJSON{
		Check: d.Check, Severity: d.Severity.String(), Level: d.Level.String(),
		Locus: d.Locus, Msg: d.Msg,
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "tprofvet: encoding JSON: %v\n", err)
	}
}

// runMutantCheck runs the miscompilation-mutant harness over the corpus:
// every clean compile must verify silently, and the validators must catch
// at least 95% of injected defects in aggregate (the same gate the
// internal/verify/mutate tests enforce, exposed for CI).
func runMutantCheck(cat *catalog.Catalog, only string, jsonOut bool) int {
	suite := queries.Suite()
	if only != "" {
		w, ok := queries.ByName(only)
		if !ok {
			fmt.Fprintf(os.Stderr, "tprofvet: no workload %q\n", only)
			return 2
		}
		suite = []queries.Workload{w}
	}

	type tally struct{ Caught, Total int }
	perClass := map[string]*tally{}
	count := func(class string, caught bool) {
		tl := perClass[class]
		if tl == nil {
			tl = &tally{}
			perClass[class] = tl
		}
		tl.Total++
		if caught {
			tl.Caught++
		}
	}
	gate := verify.NewSuite(append(verify.ArtifactSuite().Checkers, absint.Checker{})...)
	var missed []string

	for _, w := range suite {
		opts := engine.DefaultOptions()
		opts.VerifyArtifacts = true
		c := engine.NewCompiler(cat, opts)
		cq, err := c.CompileQuery(w.Query)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tprofvet: clean compile of %s flagged: %v\n", w.Name, err)
			return 1
		}

		popts := pipeline.Options{RegisterTagging: opts.RegisterTagging}
		fresh := func() *pipeline.Compiled {
			pc, err := pipeline.Compile(cq.Plan, cq.Layout, popts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tprofvet: pipeline recompile of %s: %v\n", w.Name, err)
				os.Exit(1)
			}
			return pc
		}
		it := tv.NewInterner()
		pre := tv.Summarize(fresh().Module, it)
		nIR := len(mutate.IR(fresh().Module))
		for i := 0; i < nIR; i++ {
			pc := fresh()
			muts := mutate.IR(pc.Module)
			muts[i].Apply()
			caught := len(tv.Compare(pre, tv.Summarize(pc.Module, it), it)) > 0
			count(muts[i].Class, caught)
			if !caught {
				missed = append(missed, w.Name+": "+muts[i].Class+" at "+muts[i].Site)
			}
		}

		nNative := len(mutate.Native(mutate.CloneResult(cq.Code), cq.Mem))
		for i := 0; i < nNative; i++ {
			code := mutate.CloneResult(cq.Code)
			muts := mutate.Native(code, cq.Mem)
			muts[i].Apply()
			ds := gate.Run(&verify.Artifact{
				Phase: "emit", Module: cq.Pipe.Module, Dict: cq.Pipe.Dict,
				Code: code, RegisterTagging: opts.RegisterTagging,
				Pipelines: cq.Pipe.Pipelines, Layout: cq.Layout, Mem: cq.Mem,
			})
			caught := len(verify.Errs(ds)) > 0
			count(muts[i].Class, caught)
			if !caught {
				missed = append(missed, w.Name+": "+muts[i].Class+" at "+muts[i].Site)
			}
		}
	}

	var caught, total int
	classes := make([]string, 0, len(perClass))
	for class := range perClass {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		tl := perClass[class]
		caught += tl.Caught
		total += tl.Total
		if !jsonOut {
			fmt.Printf("%-26s %3d/%3d\n", class, tl.Caught, tl.Total)
		}
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "tprofvet: no mutants enumerated")
		return 1
	}
	rate := float64(caught) / float64(total)
	pass := rate >= 0.95
	if jsonOut {
		emitJSON(struct {
			Mode     string            `json:"mode"`
			Caught   int               `json:"caught"`
			Total    int               `json:"total"`
			Rate     float64           `json:"rate"`
			Pass     bool              `json:"pass"`
			PerClass map[string]*tally `json:"perClass"`
			Missed   []string          `json:"missed,omitempty"`
		}{"mutants", caught, total, rate, pass, perClass, missed})
	} else {
		for _, m := range missed {
			fmt.Printf("missed  %s\n", m)
		}
		fmt.Printf("tprofvet check -mutants: %d/%d caught = %.1f%% (gate 95%%)\n", caught, total, 100*rate)
	}
	if !pass {
		return 1
	}
	return 0
}

// runCacheCheck verifies the service path end to end: every SQL workload
// is compiled once through the cache with VerifyArtifacts on (so the full
// cross-level suite runs at insert time), then re-prepared — which must be
// a cache hit — and re-executed at every requested worker count. All runs
// must match the interpreted reference executor row for row.
func runCacheCheck(cat *catalog.Catalog, workers []int, only string) int {
	suite := queries.SQLSuite()
	if only != "" {
		w, ok := queries.SQLByName(only)
		if !ok {
			fmt.Fprintf(os.Stderr, "tprofvet: no SQL workload %q\n", only)
			return 2
		}
		suite = []queries.SQLWorkload{w}
	}
	opts := engine.DefaultOptions()
	opts.VerifyArtifacts = true
	svc := engine.NewService(cat, opts, 0)
	se := svc.NewSession()

	failures, checked := 0, 0
	fail := func(name, format string, a ...any) {
		failures++
		fmt.Printf("FAIL  %-14s %s\n", name, fmt.Sprintf(format, a...))
	}
	for _, w := range suite {
		checked++
		se.SetWorkers(0)
		cold, res, err := se.Execute(w.SQL, nil)
		if err != nil {
			fail(w.Name, "cold: %v", err)
			continue
		}
		if cold.Fallback {
			fail(w.Name, "fell back to an uncached direct compile")
			continue
		}
		var params []int64
		if cold.State != nil {
			params = cold.State.Params
		}
		want, err := ref.ExecuteWith(cold.Compiled.Plan, params)
		if err != nil {
			fail(w.Name, "reference executor: %v", err)
			continue
		}
		ordered := len(cold.Compiled.Plan.OrderBy) > 0
		if !rowsMatch(res.Rows, want, ordered) {
			fail(w.Name, "cold rows differ from reference")
			continue
		}
		ok := true
		for _, nw := range workers {
			se.SetWorkers(nw)
			hot, hres, err := se.Execute(w.SQL, nil)
			if err != nil {
				fail(w.Name, "workers=%d: %v", nw, err)
				ok = false
				break
			}
			if !hot.CacheHit {
				fail(w.Name, "workers=%d: expected a cache hit", nw)
				ok = false
				break
			}
			if !rowsMatch(hres.Rows, want, ordered) {
				fail(w.Name, "workers=%d: cached rows differ from reference", nw)
				ok = false
				break
			}
		}
		if ok {
			fmt.Printf("ok    %-14s %d params, %d rows, hit at workers=%v\n",
				w.Name, len(params), len(want), workers)
		}
	}
	cs := svc.CacheStats()
	if failures > 0 {
		fmt.Printf("tprofvet check -cache: %d of %d workloads FAILED\n", failures, checked)
		return 1
	}
	fmt.Printf("tprofvet check -cache: %d workloads verified (%d hits, %d misses, %d resident)\n",
		checked, cs.Hits, cs.Misses, svc.CacheLen())
	return 0
}

// runMergeCheck verifies the partitioned parallel merge end to end
// (DESIGN.md §11). Every workload compiles with VerifyArtifacts on — which
// includes the static MergeInvariants checker: merge-kernel lineage tags,
// bloom-filter bounds, and partition-disjointness of the directory slot
// ranges — then runs serially (workers=0, the determinism oracle) and at
// every requested worker count. Rows must match the oracle exactly and in
// order: the partitioned merge reconstructs the serial heap byte for byte,
// so even unordered results may not move. Partitioned workloads
// additionally run profiled: PMU samples must attribute to the generated
// merge kernels' tasks and resolve to an operator through the Tagging
// Dictionary.
func runMergeCheck(cat *catalog.Catalog, workers []int, only string) int {
	suite := queries.Suite()
	if only != "" {
		w, ok := queries.ByName(only)
		if !ok {
			fmt.Fprintf(os.Stderr, "tprofvet: no workload %q\n", only)
			return 2
		}
		suite = []queries.Workload{w}
	}

	failures, checked := 0, 0
	fail := func(name, format string, a ...any) {
		failures++
		fmt.Printf("FAIL  %-12s %s\n", name, fmt.Sprintf(format, a...))
	}
	for _, w := range suite {
		checked++
		opts := engine.DefaultOptions()
		opts.VerifyArtifacts = true
		opts.MorselRows = 256 // several morsels per pipeline at check scale
		e := engine.New(cat, opts)
		cq, err := e.CompileQuery(w.Query)
		if err != nil {
			fail(w.Name, "compile: %v", err)
			continue
		}
		oracle, err := e.Run(cq, nil)
		if err != nil {
			fail(w.Name, "serial oracle: %v", err)
			continue
		}
		partitioned := false
		for i := range cq.Pipe.Pipelines {
			if cq.Pipe.Pipelines[i].Merge != nil {
				partitioned = true
			}
		}

		ok := true
		var mergeTasks int
		for _, nw := range workers {
			if nw < 1 {
				continue
			}
			po := opts
			po.Workers = nw
			pe := engine.New(cat, po)
			pcq, err := pe.CompileQuery(w.Query)
			if err != nil {
				fail(w.Name, "workers=%d compile: %v", nw, err)
				ok = false
				break
			}
			res, err := pe.Run(pcq, &pmu.Config{Event: vm.EvInstRetired, Period: 97})
			if err != nil {
				fail(w.Name, "workers=%d: %v", nw, err)
				ok = false
				break
			}
			if !rowsMatch(res.Rows, oracle.Rows, true) {
				fail(w.Name, "workers=%d: rows differ from the serial oracle", nw)
				ok = false
				break
			}
			if !partitioned {
				continue
			}
			mergeTasks = 0
			for id, wt := range res.Profile.TaskWeight {
				comp, found := res.Profile.Registry.Lookup(id)
				if !found || !pipeline.MergeRole(comp.Kind) || wt <= 0 {
					continue
				}
				if res.Profile.Dict.OperatorOf(id) == core.NoComponent {
					fail(w.Name, "workers=%d: merge task %q unresolvable to an operator", nw, comp.Name)
					ok = false
				}
				mergeTasks++
			}
			if mergeTasks == 0 {
				fail(w.Name, "workers=%d: no PMU samples attributed to merge-kernel tasks", nw)
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			kind := "host-merged"
			if partitioned {
				kind = fmt.Sprintf("partitioned, %d merge tasks sampled", mergeTasks)
			}
			fmt.Printf("ok    %-12s %d rows, workers=%v (%s)\n", w.Name, len(oracle.Rows), workers, kind)
		}
	}
	if failures > 0 {
		fmt.Printf("tprofvet check -merge: %d of %d workloads FAILED\n", failures, checked)
		return 1
	}
	fmt.Printf("tprofvet check -merge: %d workloads verified, 0 diagnostics\n", checked)
	return 0
}

// runShardCheck verifies sharded execution end to end (DESIGN.md §13).
// Every workload first runs serially unsharded — the row oracle — then
// profiled at every requested worker count × Shards ∈ {1,2,4,8} with
// pruning on. Each sharded run must (a) reproduce the oracle's rows in
// order (the canonical morsel list reconstructs the serial heap), (b)
// produce a merged profile whose Canonical() bytes are identical across
// the whole grid — the shard-count-invariance claim — and (c) leave
// per-shard lineage journals that replay cleanly against the scanned
// tables' row counts and the profile's skip events (verify.CheckShards).
func runShardCheck(cat *catalog.Catalog, workers []int, only string) int {
	suite := queries.Suite()
	if only != "" {
		w, ok := queries.ByName(only)
		if !ok {
			fmt.Fprintf(os.Stderr, "tprofvet: no workload %q\n", only)
			return 2
		}
		suite = []queries.Workload{w}
	}
	shardCounts := []int{1, 2, 4, 8}

	failures, checked := 0, 0
	fail := func(name, format string, a ...any) {
		failures++
		fmt.Printf("FAIL  %-12s %s\n", name, fmt.Sprintf(format, a...))
	}
	for _, w := range suite {
		checked++
		opts := engine.DefaultOptions()
		opts.VerifyArtifacts = true
		opts.MorselRows = 256 // several morsels (and zones) per pipeline at check scale
		e := engine.New(cat, opts)
		cq, err := e.CompileQuery(w.Query)
		if err != nil {
			fail(w.Name, "compile: %v", err)
			continue
		}
		oracle, err := e.Run(cq, nil)
		if err != nil {
			fail(w.Name, "serial oracle: %v", err)
			continue
		}

		ok := true
		var baseCanon []byte
		var zones, pruned int
		for _, nw := range workers {
			for _, ns := range shardCounts {
				so := opts
				so.Workers = nw
				so.Shards = ns
				so.ShardPruning = true
				se := engine.New(cat, so)
				scq, err := se.CompileQuery(w.Query)
				if err != nil {
					fail(w.Name, "workers=%d shards=%d compile: %v", nw, ns, err)
					ok = false
					break
				}
				res, err := se.Run(scq, &pmu.Config{Event: vm.EvInstRetired, Period: 487})
				if err != nil {
					fail(w.Name, "workers=%d shards=%d: %v", nw, ns, err)
					ok = false
					break
				}
				if res.Shards != ns {
					fail(w.Name, "workers=%d shards=%d: ran with %d shards", nw, ns, res.Shards)
					ok = false
					break
				}
				// Shard-count invariance: same rows in the same order (the
				// canonical morsel list rebuilds the serial heap), same
				// canonical profile bytes across the whole grid.
				if !rowsMatch(res.Rows, oracle.Rows, true) {
					fail(w.Name, "workers=%d shards=%d: rows differ from the serial oracle", nw, ns)
					ok = false
					break
				}
				canon := res.Profile.Canonical()
				if baseCanon == nil {
					baseCanon = canon
				} else if string(canon) != string(baseCanon) {
					fail(w.Name, "workers=%d shards=%d: canonical profile differs across the grid", nw, ns)
					ok = false
					break
				}
				// Lineage replay: journals vs table row counts vs skips.
				tableRows := map[string]int64{}
				plan.Walk(scq.Plan, func(n plan.Node) {
					if s, isScan := n.(*plan.Scan); isScan {
						tableRows[s.Alias] = int64(s.Table.Rows())
					}
				})
				journals := make([]verify.ShardJournal, len(res.ShardStates))
				for i, st := range res.ShardStates {
					j := verify.ShardJournal{
						Pipeline: st.Pipeline, Alias: st.Alias, Shard: st.Shard,
						Lo: st.Lo, Hi: st.Hi, Rows: st.Rows, Scanned: st.Scanned,
						Pruned: st.Pruned,
					}
					for _, z := range st.Zones {
						j.Zones = append(j.Zones, verify.ShardZone{
							Zone: z.Zone, Lo: z.Lo, Hi: z.Hi, Pruned: z.Pruned, Cause: z.Cause,
						})
					}
					journals[i] = j
				}
				if ds := verify.CheckShards(tableRows, journals, res.Skips); len(ds) > 0 {
					fail(w.Name, "workers=%d shards=%d: %d journal diagnostic(s)", nw, ns, len(ds))
					for _, d := range ds {
						fmt.Printf("      %s\n", d.String())
					}
					ok = false
					break
				}
				if ns == shardCounts[len(shardCounts)-1] && nw == workers[len(workers)-1] {
					zones, pruned = 0, len(res.Skips)
					for _, st := range res.ShardStates {
						zones += len(st.Zones)
					}
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			fmt.Printf("ok    %-12s %d rows, workers=%v shards=%v (%d/%d zones pruned)\n",
				w.Name, len(oracle.Rows), workers, shardCounts, pruned, zones)
		}
	}
	if failures > 0 {
		fmt.Printf("tprofvet check -shard: %d of %d workloads FAILED\n", failures, checked)
		return 1
	}
	fmt.Printf("tprofvet check -shard: %d workloads verified, 0 diagnostics\n", checked)
	return 0
}

// runEpochCheck verifies epoch-versioned storage end to end (DESIGN.md
// §15). It drives the SQL suite through one query service while a
// scripted ingest stream appends batches to the fact tables between
// workloads, snapshotting the storage state at every epoch. The mode then
// replays the catalog's append journal against those snapshots
// (verify.CheckEpochs: strictly monotonic epochs, append windows tiling
// each table's tail exactly once, zone granularity a pure function of the
// visible rows, per-column zone bounds only widening) and enforces the
// compiled-artifact contract: every warm re-prepare under ingest must hit
// the cache — appends cause zero recompiles, zero evictions, zero
// invalidations — while each run's result is stamped with the epoch it
// actually bound.
func runEpochCheck(cat *catalog.Catalog, only string) int {
	suite := queries.SQLSuite()
	if only != "" {
		w, ok := queries.SQLByName(only)
		if !ok {
			fmt.Fprintf(os.Stderr, "tprofvet: no SQL workload %q\n", only)
			return 2
		}
		suite = []queries.SQLWorkload{w}
	}
	ingest := []string{"sales", "lineitem", "orders"}

	opts := engine.DefaultOptions()
	opts.VerifyArtifacts = true
	svc := engine.NewService(cat, opts, 0)
	se := svc.NewSession()
	base := cat.BaseRows()
	version0 := cat.Version()

	failures, checked := 0, 0
	fail := func(name, format string, a ...any) {
		failures++
		fmt.Printf("FAIL  %-14s %s\n", name, fmt.Sprintf(format, a...))
	}

	snaps := []verify.EpochSnapshot{verify.SnapshotEpochState(svc.Snapshot(), cat.Names())}
	appended := int64(0)
	for i, w := range suite {
		checked++
		cold, _, err := se.Execute(w.SQL, nil)
		if err != nil {
			fail(w.Name, "cold: %v", err)
			continue
		}
		if cold.Fallback {
			fail(w.Name, "fell back to an uncached direct compile")
			continue
		}
		// Scripted ingest: append a deterministic batch to one fact table,
		// snapshot the new epoch.
		table := ingest[i%len(ingest)]
		tb, err := cat.Table(table)
		if err != nil {
			fail(w.Name, "ingest table %s: %v", table, err)
			continue
		}
		r, err := svc.AppendCols(table, datagen.AppendBatch(tb, 64, uint64(i+1)))
		if err != nil {
			fail(w.Name, "append to %s: %v", table, err)
			continue
		}
		appended += r.Hi - r.Lo
		snaps = append(snaps, verify.SnapshotEpochState(svc.Snapshot(), cat.Names()))

		// The warm re-prepare must hit the very artifact the cold compile
		// cached — in-capacity appends are invisible to the cache key.
		warm, res, err := se.Execute(w.SQL, nil)
		if err != nil {
			fail(w.Name, "warm: %v", err)
			continue
		}
		if !warm.CacheHit || warm.Compiled != cold.Compiled {
			fail(w.Name, "re-prepare after append recompiled (hit=%v)", warm.CacheHit)
			continue
		}
		if res.Epoch != r.Epoch {
			fail(w.Name, "warm run stamped epoch %d, catalog at %d", res.Epoch, r.Epoch)
			continue
		}
		fmt.Printf("ok    %-14s epoch %d (+%d rows to %s), warm hit on cold artifact\n",
			w.Name, r.Epoch, r.Hi-r.Lo, table)
	}

	if cat.Version() != version0 {
		fail("catalog", "scripted ingest bumped the catalog version (capacity growth at check scale)")
	}
	cs := svc.CacheStats()
	if cs.Evictions != 0 || cs.Invalidations != 0 {
		fail("qcache", "ingest evicted or invalidated artifacts: %+v", cs)
	}
	if ds := verify.CheckEpochs(base, cat.EpochJournal(), snaps); len(ds) > 0 {
		fail("journal", "%d epoch-replay diagnostic(s)", len(ds))
		for _, d := range ds {
			fmt.Printf("      %s\n", d.String())
		}
	}
	if failures > 0 {
		fmt.Printf("tprofvet check -epoch: %d of %d workloads FAILED\n", failures, checked)
		return 1
	}
	fmt.Printf("tprofvet check -epoch: %d workloads verified over %d epochs (+%d rows, %d hits, %d misses, 0 recompiles)\n",
		checked, cat.Epoch(), appended, cs.Hits, cs.Misses)
	return 0
}

// runViewCheck verifies materialized views end to end (DESIGN.md §16).
// It registers one view per fact table, then drives a probe family of
// aggregate statements through the service: every probe must rewrite onto
// a view (prepare-time subsumption) and return rows byte-identical to a
// second, view-free service executing the original text over the same
// catalog. Between the cold and warm run of each probe a scripted batch
// is appended to the probe's base table, so the warm prepare exercises
// the incremental catch-up path — and must still hit the cold artifact
// (refreshes bump neither the catalog version nor the view generation).
// Afterwards the refresh ledger must replay byte-exactly against the base
// tables (verify.CheckViews), the run-time consistency guard must have
// fallen back zero times, and a statement matching no view must carry no
// rewrite.
func runViewCheck(cat *catalog.Catalog, only string) int {
	type probe struct {
		name  string
		table string
		sql   string
	}
	probes := []probe{
		{"sales-all", "sales",
			"select id, sum(price) as rev, count(*) as n from sales group by id order by id"},
		{"sales-range", "sales",
			"select id, sum(price) as rev from sales where id >= 3 and id <= 40 group by id order by id"},
		{"sales-between", "sales",
			"select id, sum(price) as rev from sales where id between 3 and 40 group by id order by id"},
		{"sales-scalar", "sales",
			"select sum(price) as rev, count(*) as n from sales"},
		{"lineitem-flag", "lineitem",
			"select l_returnflag, sum(l_extendedprice) as rev, min(l_quantity) as qmin from lineitem group by l_returnflag order by l_returnflag"},
	}
	if only != "" {
		var kept []probe
		for _, p := range probes {
			if p.name == only {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "tprofvet: no view probe %q\n", only)
			return 2
		}
		probes = kept
	}

	opts := engine.DefaultOptions()
	opts.VerifyArtifacts = true
	svc := engine.NewService(cat, opts, 0)
	oracle := engine.NewService(cat, opts, 0) // view-free: always executes base text
	if _, err := svc.CreateView("rev_by_prod",
		"select id, sum(price), count(*) from sales group by id", mview.RefreshIncremental); err != nil {
		fmt.Fprintf(os.Stderr, "tprofvet: create view rev_by_prod: %v\n", err)
		return 1
	}
	if _, err := svc.CreateView("flag_totals",
		"select l_returnflag, sum(l_extendedprice), count(*), min(l_quantity), max(l_quantity) from lineitem group by l_returnflag",
		mview.RefreshIncremental); err != nil {
		fmt.Fprintf(os.Stderr, "tprofvet: create view flag_totals: %v\n", err)
		return 1
	}
	se := svc.NewSession()
	ose := oracle.NewSession()

	failures, checked := 0, 0
	fail := func(name, format string, a ...any) {
		failures++
		fmt.Printf("FAIL  %-14s %s\n", name, fmt.Sprintf(format, a...))
	}
	same := func(a, b *engine.Result) bool {
		if len(a.Rows) != len(b.Rows) || len(a.Cols) != len(b.Cols) {
			return false
		}
		for i := range a.Cols {
			if a.Cols[i].Name != b.Cols[i].Name {
				return false
			}
		}
		for i := range a.Rows {
			if len(a.Rows[i]) != len(b.Rows[i]) {
				return false
			}
			for j := range a.Rows[i] {
				if a.Rows[i][j] != b.Rows[i][j] {
					return false
				}
			}
		}
		return true
	}

	appended := int64(0)
	for i, pr := range probes {
		checked++
		cold, res, err := se.Execute(pr.sql, nil)
		if err != nil {
			fail(pr.name, "cold: %v", err)
			continue
		}
		if cold.Rewrite == nil {
			fail(pr.name, "did not rewrite onto a view")
			continue
		}
		_, want, err := ose.Execute(pr.sql, nil)
		if err != nil {
			fail(pr.name, "oracle: %v", err)
			continue
		}
		if !same(res, want) {
			fail(pr.name, "cold rewrite rows differ from base execution (%d vs %d rows)",
				len(res.Rows), len(want.Rows))
			continue
		}
		// Scripted ingest to the probe's base table, then the warm pass:
		// the incremental view catches up at prepare time, the artifact
		// stays cached, and the rows stay byte-identical.
		tb, err := cat.Table(pr.table)
		if err != nil {
			fail(pr.name, "ingest table %s: %v", pr.table, err)
			continue
		}
		r, err := svc.AppendCols(pr.table, datagen.AppendBatch(tb, 64, uint64(i+1)))
		if err != nil {
			fail(pr.name, "append to %s: %v", pr.table, err)
			continue
		}
		appended += r.Hi - r.Lo
		warm, res2, err := se.Execute(pr.sql, nil)
		if err != nil {
			fail(pr.name, "warm: %v", err)
			continue
		}
		if warm.Rewrite == nil || !warm.CacheHit || warm.Compiled != cold.Compiled {
			fail(pr.name, "warm re-prepare after append lost the rewritten artifact (hit=%v)", warm.CacheHit)
			continue
		}
		_, want2, err := ose.Execute(pr.sql, nil)
		if err != nil {
			fail(pr.name, "oracle warm: %v", err)
			continue
		}
		if !same(res2, want2) {
			fail(pr.name, "post-append rewrite rows differ from base execution")
			continue
		}
		fmt.Printf("ok    %-14s via %s, +%d rows to %s, warm hit on cold artifact\n",
			pr.name, cold.Rewrite.View, r.Hi-r.Lo, pr.table)
	}

	// A statement over a table with no registered view must pass through
	// untouched — the rewriter's zero-tax contract.
	if p, _, err := se.Execute("select count(*) as n from orders where o_totalprice >= 1000", nil); err != nil {
		fail("no-match", "%v", err)
	} else if p.Rewrite != nil {
		fail("no-match", "statement with no matching view was rewritten onto %s", p.Rewrite.View)
	}
	if fb := svc.Views().Fallbacks(); fb != 0 {
		fail("guard", "run-time consistency guard fell back %d time(s)", fb)
	}
	if ds := verify.CheckViews(cat, svc.Views()); len(ds) > 0 {
		fail("ledger", "%d view-replay diagnostic(s)", len(ds))
		for _, d := range ds {
			fmt.Printf("      %s\n", d.String())
		}
	}
	if failures > 0 {
		fmt.Printf("tprofvet check -views: %d of %d probes FAILED\n", failures, checked)
		return 1
	}
	fmt.Printf("tprofvet check -views: %d probes verified over %d views (+%d rows ingested, 0 fallbacks, ledger replay clean)\n",
		checked, svc.Views().Len(), appended)
	return 0
}

// runCostCheck verifies the cost layer over the SQL suite. Static half:
// every plan annotates cleanly — every node carries a finite, positive,
// model-consistent cardinality and cycle estimate (cost.CheckModel).
// Dynamic half: a counter-instrumented run of the exact same plan yields
// true row counts whose every counter belongs to a registered task with
// live Tagging Dictionary lineage, and every operator-bearing plan node
// was actually counted (cost.CheckObserved).
func runCostCheck(cat *catalog.Catalog, only string) int {
	suite := queries.SQLSuite()
	if only != "" {
		w, ok := queries.SQLByName(only)
		if !ok {
			fmt.Fprintf(os.Stderr, "tprofvet: no SQL workload %q\n", only)
			return 2
		}
		suite = []queries.SQLWorkload{w}
	}
	opts := engine.DefaultOptions()
	opts.TupleCounters = true

	failures, checked := 0, 0
	fail := func(name, format string, a ...any) {
		failures++
		fmt.Printf("FAIL  %-14s %s\n", name, fmt.Sprintf(format, a...))
	}
	for _, w := range suite {
		checked++
		q, err := sqlparse.Parse(w.SQL)
		if err != nil {
			fail(w.Name, "parse: %v", err)
			continue
		}
		pl, err := plan.Plan(cat, q)
		if err != nil {
			fail(w.Name, "plan: %v", err)
			continue
		}
		m := cost.Annotate(pl)
		ds := cost.CheckModel(m)
		cq, err := (&engine.Compiler{Cat: cat, Opts: opts}).CompilePlanGuided(pl, nil)
		if err != nil {
			fail(w.Name, "compile: %v", err)
			continue
		}
		res, err := (&engine.Executor{Opts: opts}).Run(cq, nil, nil)
		if err != nil {
			fail(w.Name, "run: %v", err)
			continue
		}
		ds = append(ds, cost.CheckObserved(pl, cq.Pipe, res.TupleCounts)...)
		if errs := verify.Errs(ds); len(errs) > 0 {
			fail(w.Name, "%d diagnostic(s)", len(errs))
			for _, d := range errs {
				fmt.Printf("      %s\n", d.String())
			}
			continue
		}
		fmt.Printf("ok    %-14s %d nodes annotated, %d true counts, est %d cycles\n",
			w.Name, len(m.PerNode), len(res.PlanRows), int64(m.TotalCycles))
	}
	if failures > 0 {
		fmt.Printf("tprofvet check -cost: %d of %d workloads FAILED\n", failures, checked)
		return 1
	}
	fmt.Printf("tprofvet check -cost: %d workloads verified, 0 diagnostics\n", checked)
	return 0
}

// rowsMatch compares result sets, respecting row order only when the
// query has an ORDER BY.
func rowsMatch(a, b [][]int64, ordered bool) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = fmt.Sprint(a[i])
		bs[i] = fmt.Sprint(b[i])
	}
	if !ordered {
		sort.Strings(as)
		sort.Strings(bs)
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func runLint(args []string) int {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	fs.Parse(args)
	args = fs.Args()

	root := "."
	if len(args) > 0 && args[0] != "./..." {
		root = args[0]
	}
	// Locate the module root (the directory holding go.mod) so loci are
	// repo-relative regardless of where the tool runs.
	abs, err := os.Getwd()
	if err == nil && root == "." {
		for dir := abs; ; {
			if _, statErr := os.Stat(dir + "/go.mod"); statErr == nil {
				root = dir
				break
			}
			parent := dir[:strings.LastIndex(dir, "/")+1]
			if parent == "" || parent == dir {
				break
			}
			dir = strings.TrimSuffix(parent, "/")
			if dir == "" {
				break
			}
		}
	}
	ds, err := verify.Lint(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tprofvet lint: %v\n", err)
		return 1
	}
	if *jsonOut {
		diags := make([]diagJSON, 0, len(ds))
		for _, d := range ds {
			diags = append(diags, jsonDiag(d))
		}
		emitJSON(struct {
			Mode  string     `json:"mode"`
			Clean bool       `json:"clean"`
			Diags []diagJSON `json:"diags"`
		}{"lint", len(verify.Errs(ds)) == 0, diags})
		if len(verify.Errs(ds)) > 0 {
			return 1
		}
		return 0
	}
	for _, d := range ds {
		fmt.Println(d.String())
	}
	if n := len(verify.Errs(ds)); n > 0 {
		fmt.Printf("tprofvet lint: %d diagnostic(s)\n", n)
		return 1
	}
	fmt.Println("tprofvet lint: clean")
	return 0
}
