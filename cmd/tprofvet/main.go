// Command tprofvet is the static verification driver for the Tailored
// Profiling toolchain. It has two modes:
//
//	tprofvet check [-sf 0.05] [-workers 1,4] [-pgo] [-q name]
//	tprofvet lint [root]
//
// check compiles the full query corpus with Engine.VerifyArtifacts on,
// so the cross-level suite (internal/verify) runs over every artifact:
// after pipeline construction, after every optimizer pass, and after
// native emit. With -pgo it additionally runs one adaptive cycle per
// query, verifying the profile-guided recompilation's artifacts the same
// way. lint type-checks the repository and applies the source rules
// (no math/rand outside internal/xrand, no fmt.Sprintf on the compile
// hot path, no mutex-by-value, no time.Now in the VM/PMU).
//
// Exit status: 0 clean, 1 diagnostics or failures, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/queries"
	"repro/internal/verify"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "check":
		os.Exit(runCheck(os.Args[2:]))
	case "lint":
		os.Exit(runLint(os.Args[2:]))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tprofvet check [flags] | tprofvet lint [root]")
	os.Exit(2)
}

func runCheck(args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	sf := fs.Float64("sf", 0.05, "data scale factor for the corpus runs")
	seed := fs.Uint64("seed", 42, "data generator seed")
	workersCSV := fs.String("workers", "1,4", "comma-separated worker counts to verify")
	pgo := fs.Bool("pgo", false, "additionally verify one profile-guided recompilation per query")
	only := fs.String("q", "", "restrict to one named workload")
	fs.Parse(args)

	var workers []int
	for _, s := range strings.Split(*workersCSV, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 0 {
			fmt.Fprintf(os.Stderr, "tprofvet: bad -workers value %q\n", s)
			return 2
		}
		workers = append(workers, w)
	}

	suite := queries.Suite()
	if *only != "" {
		w, ok := queries.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "tprofvet: no workload %q\n", *only)
			return 2
		}
		suite = []queries.Workload{w}
	}

	cat := datagen.Generate(datagen.Config{ScaleFactor: *sf, Seed: *seed})
	failures := 0
	checked := 0
	for _, w := range suite {
		for _, nw := range workers {
			opts := engine.DefaultOptions()
			opts.Workers = nw
			opts.VerifyArtifacts = true
			e := engine.New(cat, opts)

			cq, err := e.CompileQuery(w.Query)
			checked++
			if err != nil {
				failures++
				fmt.Printf("FAIL  %-12s workers=%d: %v\n", w.Name, nw, err)
				continue
			}
			if !*pgo {
				fmt.Printf("ok    %-12s workers=%d (%d native instrs)\n",
					w.Name, nw, len(cq.Code.Program.Code))
				continue
			}
			// The adaptive cycle recompiles through the same verified
			// compilePlan path, so the PGO artifacts (LICM/strength-
			// reduced IR, inverted layout, scaled fusion) get the full
			// suite too.
			ar, err := e.RunAdaptive(cq, nil)
			checked++
			if err != nil {
				failures++
				fmt.Printf("FAIL  %-12s workers=%d pgo: %v\n", w.Name, nw, err)
				continue
			}
			fmt.Printf("ok    %-12s workers=%d pgo (%d -> %d cycles)\n",
				w.Name, nw, ar.BaselineCycles, ar.TunedCycles)
		}
	}
	if failures > 0 {
		fmt.Printf("tprofvet check: %d of %d artifact sets FAILED\n", failures, checked)
		return 1
	}
	fmt.Printf("tprofvet check: %d artifact sets verified, 0 diagnostics\n", checked)
	return 0
}

func runLint(args []string) int {
	root := "."
	if len(args) > 0 && args[0] != "./..." {
		root = args[0]
	}
	// Locate the module root (the directory holding go.mod) so loci are
	// repo-relative regardless of where the tool runs.
	abs, err := os.Getwd()
	if err == nil && root == "." {
		for dir := abs; ; {
			if _, statErr := os.Stat(dir + "/go.mod"); statErr == nil {
				root = dir
				break
			}
			parent := dir[:strings.LastIndex(dir, "/")+1]
			if parent == "" || parent == dir {
				break
			}
			dir = strings.TrimSuffix(parent, "/")
			if dir == "" {
				break
			}
		}
	}
	ds, err := verify.Lint(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tprofvet lint: %v\n", err)
		return 1
	}
	for _, d := range ds {
		fmt.Println(d.String())
	}
	if n := len(verify.Errs(ds)); n > 0 {
		fmt.Printf("tprofvet lint: %d diagnostic(s)\n", n)
		return 1
	}
	fmt.Println("tprofvet lint: clean")
	return 0
}
