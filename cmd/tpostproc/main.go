// Command tpostproc is the offline post-processing phase of Tailored
// Profiling (Fig. 4 step 3–4, §5.2.2): it reads the Tagging Dictionary
// meta-data file written at compile time and a sample log written at run
// time — produced by `tprof -save <prefix>` — and generates reports
// without access to the engine, the plan, or the data.
//
//	tprof -query fig9 -save /tmp/fig9
//	tpostproc -prefix /tmp/fig9 -report operators,timeline,attribution
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/viz"
)

func main() {
	prefix := flag.String("prefix", "", "artifact prefix written by tprof -save")
	reports := flag.String("report", "operators,attribution", "comma-separated: operators,tasks,timeline,attribution,samples")
	bins := flag.Int("bins", 60, "timeline bins")
	flag.Parse()
	if *prefix == "" {
		fmt.Fprintln(os.Stderr, "usage: tpostproc -prefix <prefix> [-report ...]")
		os.Exit(2)
	}

	mf, err := os.Open(*prefix + ".meta.json")
	if err != nil {
		fatal(err)
	}
	dict, nmap, err := core.ReadMetadata(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}
	sf, err := os.Open(*prefix + ".samples.jsonl")
	if err != nil {
		fatal(err)
	}
	samples, err := core.ReadSamples(sf)
	sf.Close()
	if err != nil {
		fatal(err)
	}

	att := core.NewAttributor(dict, nmap)
	p := core.BuildProfile(att, samples)
	fmt.Printf("loaded %d samples, %d components, %d dictionary entries\n\n",
		p.TotalSamples, dict.Registry.Len(), dict.Entries())

	for _, rep := range strings.Split(*reports, ",") {
		switch strings.TrimSpace(rep) {
		case "operators":
			fmt.Println(viz.OperatorTable(p))
		case "tasks":
			for _, c := range p.TaskCosts() {
				fmt.Printf("%-36s %8.1f %6.1f%%\n", c.Name, c.Samples, c.Pct)
			}
			fmt.Println()
		case "timeline":
			fmt.Println(viz.TimelineChart(p.BuildTimeline(*bins), 3.5))
		case "attribution":
			a := p.Attribution()
			fmt.Printf("attribution: operators %.1f%%, kernel %.1f%%, unattributed %.1f%%\n\n",
				a.OperatorPct, a.KernelPct, a.UnattributedPct)
		case "samples":
			fmt.Println(viz.SampleDump(samples, att, 100))
		default:
			fmt.Fprintf(os.Stderr, "unknown report %q\n", rep)
			os.Exit(2)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
