// Command tpchgen generates the TPC-H-like dataset and either summarizes
// it (-summary) or dumps a table as CSV with decoded strings and dates.
//
//	tpchgen -sf 1.0 -summary
//	tpchgen -sf 0.1 -table orders | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datagen"
)

func main() {
	sf := flag.Float64("sf", 1.0, "scale factor (1.0 ≈ TPC-H SF 0.01)")
	seed := flag.Uint64("seed", 42, "generator seed")
	table := flag.String("table", "", "table to dump as CSV")
	summary := flag.Bool("summary", false, "print table summaries")
	flag.Parse()

	cat := datagen.Generate(datagen.Config{ScaleFactor: *sf, Seed: *seed})

	if *summary || *table == "" {
		fmt.Printf("%-12s %10s  %s\n", "table", "rows", "columns")
		for _, name := range cat.Names() {
			t, _ := cat.Table(name)
			var cols []string
			for _, c := range t.Cols {
				cols = append(cols, fmt.Sprintf("%s:%s", c.Name, c.Type))
			}
			fmt.Printf("%-12s %10d  %s\n", name, t.Rows(), strings.Join(cols, " "))
		}
		return
	}

	t, err := cat.Table(*table)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, c := range t.Cols {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, c.Name)
	}
	fmt.Fprintln(w)
	for r := 0; r < t.Rows(); r++ {
		for i, c := range t.Cols {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			switch c.Type {
			case catalog.TDate:
				fmt.Fprint(w, catalog.FormatDate(c.Data[r]))
			case catalog.TStr:
				fmt.Fprint(w, c.Dict.String(c.Data[r]))
			default:
				fmt.Fprint(w, c.Data[r])
			}
		}
		fmt.Fprintln(w)
	}
}
