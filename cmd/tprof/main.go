// Command tprof is the Tailored Profiling CLI: it compiles a query (SQL or
// a named workload), runs it on the simulated machine under PMU sampling,
// and prints profiling reports at the requested abstraction level —
// annotated plan, per-operator costs, annotated IR listing, activity
// timeline, or memory access profile.
//
//	tprof -query fig9 -report plan,timeline
//	tprof -sql "select count(*) from lineitem" -report operators
//	tprof -query intro-nogj -report ir -event cycles -period 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/viz"
	"repro/internal/vm"
)

func main() {
	sql := flag.String("sql", "", "SQL statement to profile")
	queryName := flag.String("query", "", "named workload from the evaluation suite")
	list := flag.Bool("list", false, "list named workloads and exit")
	sf := flag.Float64("sf", 0.5, "data scale factor")
	seed := flag.Uint64("seed", 42, "data generator seed")
	event := flag.String("event", "cycles", "sampling event: cycles|instructions|loads|l3miss|branchmiss")
	period := flag.Int64("period", 5000, "sampling period (events per sample)")
	format := flag.String("format", "regs", "sample format: time|regs|callstack")
	reports := flag.String("report", "plan,operators", "comma-separated reports: plan,operators,tasks,ir,timeline,memory,analyze,ipc,samples,flame,attribution,dict,disasm,result")
	noTagging := flag.Bool("no-register-tagging", false, "disable Register Tagging (shared-code samples resolve via call stacks only)")
	analyze := flag.Bool("analyze", false, "instrument EXPLAIN ANALYZE tuple counters")
	bins := flag.Int("bins", 60, "timeline bins")
	save := flag.String("save", "", "write <prefix>.meta.json and <prefix>.samples.jsonl for offline post-processing (cmd/tpostproc)")
	zoomFrom := flag.Float64("zoom-from-ms", -1, "restrict reports to samples after this time")
	zoomTo := flag.Float64("zoom-to-ms", -1, "restrict reports to samples before this time")
	flag.Parse()

	if *list {
		for _, w := range queries.Suite() {
			fmt.Printf("%-12s %s\n", w.Name, w.Description)
		}
		return
	}

	events := map[string]vm.Event{
		"cycles": vm.EvCycles, "instructions": vm.EvInstRetired,
		"loads": vm.EvMemLoads, "l3miss": vm.EvL3Miss, "branchmiss": vm.EvBranchMiss,
	}
	ev, ok := events[*event]
	if !ok {
		fatalf("unknown event %q", *event)
	}
	formats := map[string]pmu.Format{
		"time": pmu.FormatIPTime, "regs": pmu.FormatIPTimeRegs, "callstack": pmu.FormatCallStack,
	}
	fm, ok := formats[*format]
	if !ok {
		fatalf("unknown format %q", *format)
	}

	cat := datagen.Generate(datagen.Config{ScaleFactor: *sf, Seed: *seed})
	opts := engine.DefaultOptions()
	opts.RegisterTagging = !*noTagging
	opts.TupleCounters = *analyze
	eng := engine.New(cat, opts)

	var cq *engine.Compiled
	var err error
	switch {
	case *sql != "":
		cq, err = eng.CompileSQL(*sql)
	case *queryName != "":
		w, ok := queries.ByName(*queryName)
		if !ok {
			fatalf("unknown workload %q (try -list)", *queryName)
		}
		cq, err = eng.CompileQuery(w.Query)
	default:
		fatalf("one of -sql or -query is required")
	}
	if err != nil {
		fatalf("compile: %v", err)
	}

	res, err := eng.Run(cq, &pmu.Config{Event: ev, Period: *period, Format: fm})
	if err != nil {
		fatalf("run: %v", err)
	}
	if *save != "" {
		if err := saveArtifacts(*save, cq, res); err != nil {
			fatalf("save: %v", err)
		}
		fmt.Printf("wrote %s.meta.json and %s.samples.jsonl\n", *save, *save)
	}

	p := res.Profile
	if *zoomFrom >= 0 || *zoomTo >= 0 {
		from, to := uint64(0), ^uint64(0)
		if *zoomFrom >= 0 {
			from = uint64(*zoomFrom * 3.5e6)
		}
		if *zoomTo >= 0 {
			to = uint64(*zoomTo * 3.5e6)
		}
		sub := core.SliceSamples(res.Samples, from, to)
		att := core.NewAttributor(cq.Pipe.Dict, cq.Code.NMap)
		p = core.BuildProfile(att, sub)
		fmt.Printf("zoomed to [%0.2f, %0.2f] ms: %d of %d samples\n",
			*zoomFrom, *zoomTo, p.TotalSamples, len(res.Samples))
	}

	fmt.Printf("query ran in %.3f ms (%.3f ms with sampling); %d instructions, %d samples of %s\n\n",
		float64(res.Stats.Cycles)/3.5e6, float64(res.Stats.TotalCycles())/3.5e6,
		res.Stats.Instructions, p.TotalSamples, ev)

	for _, rep := range strings.Split(*reports, ",") {
		switch strings.TrimSpace(rep) {
		case "plan":
			fmt.Println("── query plan with operator costs " + strings.Repeat("─", 30))
			fmt.Println(viz.AnnotatedPlan(cq.Plan, cq.Pipe, p))
		case "operators":
			fmt.Println("── per-operator samples " + strings.Repeat("─", 40))
			fmt.Println(viz.OperatorTable(p))
		case "tasks":
			fmt.Println("── per-task samples " + strings.Repeat("─", 44))
			for _, c := range p.TaskCosts() {
				fmt.Printf("%-36s %8.1f %6.1f%%\n", c.Name, c.Samples, c.Pct)
			}
			fmt.Println()
		case "ir":
			fmt.Println("── annotated IR " + strings.Repeat("─", 48))
			for _, f := range cq.Pipe.Module.Funcs {
				fmt.Println(viz.AnnotatedIR(f, cq.Pipe, p))
			}
		case "timeline":
			fmt.Println("── operator activity over time " + strings.Repeat("─", 33))
			fmt.Println(viz.TimelineChart(p.BuildTimeline(*bins), res.CPU.FreqGHz))
		case "memory":
			fmt.Println("── memory access profile " + strings.Repeat("─", 39))
			if ev != vm.EvMemLoads && ev != vm.EvL3Miss {
				fmt.Println("(hint: use -event loads to capture addresses)")
			}
			fmt.Println(viz.MemoryProfile(p, 72, 8, engine.DataFloor))
		case "analyze":
			if res.TupleCounts == nil {
				fmt.Println("(hint: pass -analyze to instrument tuple counters)")
				continue
			}
			fmt.Println("── EXPLAIN ANALYZE: rows vs time " + strings.Repeat("─", 31))
			fmt.Println(viz.AnalyzedPlan(cq.Plan, cq.Pipe, res.TupleCounts, p))
			fmt.Println(viz.TaskRowTable(cq.Pipe, res.TupleCounts))
		case "ipc":
			instrRes, err := eng.Run(cq, &pmu.Config{Event: vm.EvInstRetired, Period: *period, Format: fm})
			if err != nil {
				fatalf("ipc run: %v", err)
			}
			fmt.Println("── per-operator IPC " + strings.Repeat("─", 44))
			_, table := viz.IPCTable(p, instrRes.Profile, res.Stats.Cycles, res.Stats.Instructions)
			fmt.Println(table)
		case "samples":
			att := core.NewAttributor(cq.Pipe.Dict, cq.Code.NMap)
			fmt.Println(viz.SampleDump(res.Samples, att, 200))
		case "flame":
			fmt.Println(viz.FoldedStacks(p))
		case "attribution":
			a := p.Attribution()
			fmt.Printf("attribution: operators %.1f%%, kernel %.1f%%, unattributed %.1f%%\n\n",
				a.OperatorPct, a.KernelPct, a.UnattributedPct)
		case "dict":
			fmt.Println("── Tagging Dictionary " + strings.Repeat("─", 42))
			fmt.Println(cq.Pipe.Dict.Dump())
		case "disasm":
			fmt.Println("── native code " + strings.Repeat("─", 49))
			fmt.Println(cq.Code.Program.Disasm())
		case "result":
			fmt.Println("── query result " + strings.Repeat("─", 48))
			fmt.Println(viz.ResultTable(res, 20))
		default:
			fatalf("unknown report %q", rep)
		}
	}
}

// saveArtifacts writes the Tagging Dictionary meta-data file (§5.2.2) and
// the sample log for offline post-processing.
func saveArtifacts(prefix string, cq *engine.Compiled, res *engine.Result) error {
	mf, err := os.Create(prefix + ".meta.json")
	if err != nil {
		return err
	}
	defer mf.Close()
	if err := core.WriteMetadata(mf, cq.Pipe.Dict, cq.Code.NMap); err != nil {
		return err
	}
	sf, err := os.Create(prefix + ".samples.jsonl")
	if err != nil {
		return err
	}
	defer sf.Close()
	return core.WriteSamples(sf, res.Samples)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
