// Command experiments regenerates every table and figure of the paper's
// evaluation. Run with -exp all (default) for the full report, or select a
// single experiment:
//
//	experiments -exp listing1     Listing 1 / Fig. 6b annotated IR profile
//	experiments -exp plan_costs   Fig. 6a / Fig. 9 per-operator plan costs
//	experiments -exp activity     Fig. 7 operator activity over time
//	experiments -exp optimizer    Fig. 10/11 alternative plans
//	experiments -exp memory       Fig. 12 memory access profiles
//	experiments -exp analyze      §6.1 EXPLAIN ANALYZE vs sampled time
//	experiments -exp overhead     Fig. 13 + §6.2 storage costs
//	experiments -exp regreserve   §6.2 register reservation overhead
//	experiments -exp attribution  Table 2 sample attribution
//	experiments -exp accuracy     §6.3 accuracy validation
//	experiments -exp table1       Table 1 optimization support matrix
//	experiments -exp parallel     morsel-driven scaling on simulated cores
//	experiments -exp pgo          profile-guided recompilation cycle deltas
//	experiments -exp ce           cardinality-estimation q-error sweep
//	experiments -exp shard        sharded execution + cross-shard pruning scaling
//	experiments -exp ingest       streaming ingest under epoch-versioned storage
//	experiments -exp mview        materialized views: dashboard speedup + zero rewrite tax
//	experiments -exp loc          Table 3 implementation effort
//
// -out FILE additionally writes the ce, shard, ingest, or mview report as
// JSON (BENCH_ce.json / BENCH_shard.json / BENCH_ingest.json /
// BENCH_mview.json). -normalize
// zeroes the ingest report's host-time throughput before writing — the
// form the golden test pins.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -help)")
	sf := flag.Float64("sf", 0.2, "data scale factor (1.0 ≈ TPC-H SF 0.01)")
	seed := flag.Uint64("seed", 42, "data generator seed")
	root := flag.String("root", ".", "repository root (for -exp loc)")
	out := flag.String("out", "", "write the ce report as JSON to this file")
	normalize := flag.Bool("normalize", false, "zero host-time fields in the ingest report before writing (golden form)")
	flag.Parse()

	env := experiments.NewEnv(*sf, *seed)

	type runner struct {
		name string
		run  func() (string, error)
	}
	runners := []runner{
		{"listing1", env.Listing1},
		{"plan_costs", env.PlanCosts},
		{"activity", env.Activity},
		{"optimizer", env.Optimizer},
		{"memory", env.Memory},
		{"analyze", env.ExplainAnalyze},
		{"overhead", func() (string, error) { s, _, err := env.Overhead(); return s, err }},
		{"regreserve", func() (string, error) { s, _, err := env.RegReserve(); return s, err }},
		{"attribution", func() (string, error) { s, _, err := env.Attribution(); return s, err }},
		{"accuracy", func() (string, error) { s, _, err := env.Accuracy(); return s, err }},
		{"table1", func() (string, error) { s, _, err := env.Table1(); return s, err }},
		{"parallel", env.Parallel},
		{"merge", func() (string, error) { s, _, err := env.Merge(); return s, err }},
		{"pgo", func() (string, error) { s, _, err := env.PGO(); return s, err }},
		{"ce", func() (string, error) {
			s, rep, err := env.CE()
			if err == nil && *out != "" {
				b, jerr := rep.JSON()
				if jerr == nil {
					jerr = os.WriteFile(*out, b, 0o644)
				}
				if jerr != nil {
					return s, jerr
				}
			}
			return s, err
		}},
		{"shard", func() (string, error) {
			s, rep, err := env.Shard()
			if err == nil && *out != "" {
				b, jerr := rep.JSON()
				if jerr == nil {
					jerr = os.WriteFile(*out, b, 0o644)
				}
				if jerr != nil {
					return s, jerr
				}
			}
			return s, err
		}},
		{"ingest", func() (string, error) {
			s, rep, err := env.Ingest()
			if err == nil && *out != "" {
				if *normalize {
					rep.Normalize()
				}
				b, jerr := rep.JSON()
				if jerr == nil {
					jerr = os.WriteFile(*out, b, 0o644)
				}
				if jerr != nil {
					return s, jerr
				}
			}
			return s, err
		}},
		{"mview", func() (string, error) {
			s, rep, err := env.MView()
			if err == nil && *out != "" {
				b, jerr := rep.JSON()
				if jerr == nil {
					jerr = os.WriteFile(*out, b, 0o644)
				}
				if jerr != nil {
					return s, jerr
				}
			}
			return s, err
		}},
		{"loc", func() (string, error) { return experiments.LoC(*root) }},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
