// Command minidb runs SQL against the generated TPC-H-like dataset on the
// compiling engine — compile-to-native execution on the simulated CPU,
// without profiling. Use -explain to see the optimized plan, -verify to
// cross-check results against the interpreted reference executor.
//
//	minidb "select count(*) from lineitem where l_quantity < 24"
//	minidb -explain "select l_orderkey, sum(l_quantity) from lineitem group by l_orderkey limit 5"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/ref"
	"repro/internal/viz"
)

func main() {
	sf := flag.Float64("sf", 0.5, "data scale factor")
	seed := flag.Uint64("seed", 42, "data generator seed")
	explain := flag.Bool("explain", false, "print the optimized plan")
	verify := flag.Bool("verify", false, "cross-check against the reference executor")
	analyze := flag.Bool("analyze", false, "show EXPLAIN ANALYZE tuple counts per operator")
	maxRows := flag.Int("rows", 50, "maximum rows to print")
	workers := flag.Int("workers", 0, "morsel-driven parallel execution on N simulated cores (0 = single-CPU)")
	morsel := flag.Int("morsel", 0, "morsel size in tuples (0 = default)")
	pgo := flag.Bool("pgo", false, "profile-guided recompilation: run sampled, recompile from the profile, report the cycle delta")
	flag.Parse()

	cat := datagen.Generate(datagen.Config{ScaleFactor: *sf, Seed: *seed})
	opts := engine.DefaultOptions()
	opts.TupleCounters = *analyze
	opts.Workers = *workers
	opts.MorselRows = *morsel
	eng := engine.New(cat, opts)

	stmts := flag.Args()
	if len(stmts) == 0 {
		// Read statements from stdin (one per line or ;-separated).
		sc := bufio.NewScanner(os.Stdin)
		var buf strings.Builder
		for sc.Scan() {
			buf.WriteString(sc.Text())
			buf.WriteByte('\n')
		}
		for _, s := range strings.Split(buf.String(), ";") {
			if strings.TrimSpace(s) != "" {
				stmts = append(stmts, s)
			}
		}
	}
	if len(stmts) == 0 {
		fmt.Fprintln(os.Stderr, "usage: minidb [flags] \"select ...\"")
		os.Exit(2)
	}

	for _, sql := range stmts {
		if err := runOne(eng, sql, *explain, *verify, *analyze, *pgo, *maxRows); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
	}
}

func runOne(eng *engine.Engine, sql string, explain, verify, analyze, pgo bool, maxRows int) error {
	cq, err := eng.CompileSQL(sql)
	if err != nil {
		return err
	}
	if explain {
		fmt.Print(plan.Render(cq.Plan, func(n plan.Node) string {
			return fmt.Sprintf("(est. %.0f rows)", n.EstRows())
		}))
		fmt.Println()
	}
	if pgo {
		return runAdaptive(eng, cq, maxRows)
	}
	res, err := eng.Run(cq, nil)
	if err != nil {
		return err
	}
	if analyze {
		fmt.Print(viz.AnalyzedPlan(cq.Plan, cq.Pipe, res.TupleCounts, nil))
		fmt.Println()
	}
	fmt.Print(viz.ResultTable(res, maxRows))
	if res.Workers > 0 {
		fmt.Printf("(%d rows; %.3f ms simulated wall on %d workers, %d instructions total)\n",
			len(res.Rows), float64(res.WallCycles)/3.5e6, res.Workers, res.Stats.Instructions)
	} else {
		fmt.Printf("(%d rows; %.3f ms simulated, %d instructions)\n",
			len(res.Rows), float64(res.Stats.Cycles)/3.5e6, res.Stats.Instructions)
	}

	if verify {
		want, err := ref.Execute(cq.Plan)
		if err != nil {
			return fmt.Errorf("reference executor: %w", err)
		}
		if !equalRows(res.Rows, want, len(cq.Plan.OrderBy) > 0) {
			return fmt.Errorf("VERIFICATION FAILED: compiled result differs from reference")
		}
		fmt.Println("verified against reference executor ✓")
	}
	return nil
}

// runAdaptive runs one profile → recompile → re-run cycle and reports
// the simulated-cycle delta; the recompiled query's rows (printed) are
// verified identical to the original's by RunAdaptive itself.
func runAdaptive(eng *engine.Engine, cq *engine.Compiled, maxRows int) error {
	ar, err := eng.RunAdaptive(cq, nil)
	if err != nil {
		return err
	}
	fmt.Print(viz.ResultTable(ar.Tuned, maxRows))
	st := ar.Recompiled.OptStats
	fmt.Printf("(%d rows; results identical before/after recompilation)\n", len(ar.Tuned.Rows))
	fmt.Printf("pgo: %d samples; hoisted %d, strength-reduced %d\n",
		len(ar.ProfileRun.Samples), st.Hoisted, st.Reduced)
	fmt.Printf("pgo: %d cycles -> %d cycles (%.1f%% reduction, %.2fx)\n",
		ar.BaselineCycles, ar.TunedCycles, ar.CycleReduction()*100, ar.Speedup())
	return nil
}

func equalRows(a, b [][]int64, ordered bool) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = fmt.Sprint(a[i])
		bs[i] = fmt.Sprint(b[i])
	}
	if !ordered {
		sort.Strings(as)
		sort.Strings(bs)
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
