// Command minidb runs SQL against the generated TPC-H-like dataset on the
// compiling engine — compile-to-native execution on the simulated CPU,
// fronted by the fingerprinted compiled-query cache. The catalog and the
// query service are constructed exactly once; every statement goes through
// a Session, so structurally identical statements (same shape, different
// literals) share one compiled artifact.
//
//	minidb "select count(*) from lineitem where l_quantity < 24"
//	minidb -explain "select l_orderkey, sum(l_quantity) from lineitem group by l_orderkey limit 5"
//	printf 'q1; q2; q3;' | minidb -serve -sessions 4
//
// Use -explain to see the optimized plan, -verify to cross-check results
// against the interpreted reference executor, -serve to drive a batch of
// statements from stdin across -sessions concurrent sessions and report
// cache traffic plus the compile-vs-execute time split. With -shards N
// scans run through the cross-shard coordinator (the cost model may trim
// the count per statement); -shardprune=false disables zone pruning, and
// -analyze then also prints the per-shard pruning summary — which zones
// were proven unnecessary and why.
//
// Storage is epoch-versioned: appends land in preallocated tail capacity
// and advance the storage epoch without invalidating compiled artifacts.
// A statement of the form
//
//	\append table [rows] [seed]
//
// (stdin or argument, alongside ordinary SQL) appends a deterministic
// batch of rows shaped like the resident data (datagen.AppendBatch) and
// reports the epoch it created. The -ingest flag runs a background writer
// for the whole batch — `-ingest rate=500,table=sales,batch=64` appends
// 64-row batches at ~500 rows/sec while the sessions execute — so cache
// hit rates and result epochs can be observed under live ingest.
//
// Materialized views (DESIGN.md §16) are managed with statements of the
// form
//
//	create [lazy] view name as select ...
//	refresh view name
//	drop view name
//
// alongside the `\views` meta-command, which lists every registered view
// with its refresh policy, rewrite hit count, coverage, and staleness.
// Once a view exists, statements it subsumes are rewritten onto it at
// prepare time; with -analyze the rewrite is announced above the plan.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/mview"
	"repro/internal/plan"
	"repro/internal/ref"
	"repro/internal/viz"
)

type config struct {
	explain, verify, analyze, pgo bool
	maxRows                       int
}

func main() {
	sf := flag.Float64("sf", 0.5, "data scale factor")
	seed := flag.Uint64("seed", 42, "data generator seed")
	explain := flag.Bool("explain", false, "print the optimized plan")
	verify := flag.Bool("verify", false, "cross-check against the reference executor")
	analyze := flag.Bool("analyze", false, "show EXPLAIN ANALYZE tuple counts per operator")
	maxRows := flag.Int("rows", 50, "maximum rows to print")
	workers := flag.Int("workers", 0, "morsel-driven parallel execution on N simulated cores (0 = single-CPU)")
	morsel := flag.Int("morsel", 0, "morsel size in tuples (0 = default)")
	partitions := flag.Int("partitions", engine.DefaultOptions().Partitions,
		"radix partitions for the parallel sink merge (power of two; 0 = legacy host-side merge)")
	bloom := flag.Bool("bloom", true, "build per-join bloom filters probed before the hash directory (-bloom=off via -bloom=false)")
	shards := flag.Int("shards", 0, "execute scans as N zone-aligned shards through the cross-shard coordinator (0 = unsharded)")
	shardprune := flag.Bool("shardprune", true, "prune shard zones from bounds and shipped semi-join filters (with -shards)")
	pgo := flag.Bool("pgo", false, "profile-guided recompilation: run sampled, recompile from the profile, report the cycle delta")
	serve := flag.Bool("serve", false, "batch mode: execute stdin statements across -sessions concurrent sessions")
	sessions := flag.Int("sessions", 4, "concurrent sessions in -serve mode")
	cacheN := flag.Int("cache", 0, "compiled-query cache capacity in entries (0 = default)")
	ingest := flag.String("ingest", "", "background writer: rate=N[,table=T][,batch=B] appends B-row batches at ~N rows/sec while statements run")
	flag.Parse()

	// One catalog, one service: sessions are cheap handles that share the
	// compiled-query cache and the PGO generation table.
	cat := datagen.Generate(datagen.Config{ScaleFactor: *sf, Seed: *seed})
	opts := engine.DefaultOptions()
	opts.TupleCounters = *analyze
	opts.Workers = *workers
	opts.MorselRows = *morsel
	opts.Partitions = *partitions
	opts.BloomFilters = *bloom
	opts.Shards = *shards
	opts.ShardPruning = *shardprune
	svc := engine.NewService(cat, opts, *cacheN)

	stmts := flag.Args()
	if len(stmts) == 0 || *serve {
		stmts = append(stmts, readStmts(os.Stdin)...)
	}
	if len(stmts) == 0 {
		fmt.Fprintln(os.Stderr, "usage: minidb [flags] \"select ...\"  |  minidb -serve < statements.sql")
		os.Exit(2)
	}

	cfg := config{explain: *explain, verify: *verify, analyze: *analyze, pgo: *pgo, maxRows: *maxRows}
	var stopIngest func() (int64, uint64)
	if *ingest != "" {
		ic, err := parseIngest(*ingest)
		if err != nil {
			fmt.Fprintf(os.Stderr, "minidb: -ingest: %v\n", err)
			os.Exit(2)
		}
		stopIngest = startIngest(svc, ic)
	}
	report := func(code int) {
		if stopIngest != nil {
			rows, epoch := stopIngest()
			fmt.Printf("ingest: %d rows appended in the background; storage at epoch %d\n", rows, epoch)
		}
		os.Exit(code)
	}
	if *serve {
		report(serveBatch(svc, stmts, *sessions, cfg))
	}

	se := svc.NewSession()
	for _, sql := range stmts {
		if line, ok, err := appendCmd(svc, sql); ok {
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(line)
			continue
		}
		if line, ok, err := viewCmd(svc, sql); ok {
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(line)
			continue
		}
		if err := runOne(se, sql, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
	}
	report(0)
}

// appendCmd recognizes and executes the `\append table [rows] [seed]`
// command. The batch is generated by datagen.AppendBatch, so repeated
// commands with the same seed replay the same ingest stream.
func appendCmd(svc *engine.Service, stmt string) (string, bool, error) {
	fields := strings.Fields(stmt)
	if len(fields) == 0 || fields[0] != `\append` {
		return "", false, nil
	}
	if len(fields) < 2 || len(fields) > 4 {
		return "", true, fmt.Errorf(`usage: \append table [rows] [seed]`)
	}
	table := fields[1]
	n, seed := 64, uint64(1)
	if len(fields) >= 3 {
		v, err := strconv.Atoi(fields[2])
		if err != nil || v <= 0 {
			return "", true, fmt.Errorf(`\append: bad row count %q`, fields[2])
		}
		n = v
	}
	if len(fields) == 4 {
		v, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil {
			return "", true, fmt.Errorf(`\append: bad seed %q`, fields[3])
		}
		seed = v
	}
	tb, err := svc.Catalog().Table(table)
	if err != nil {
		return "", true, err
	}
	r, err := svc.AppendCols(table, datagen.AppendBatch(tb, n, seed))
	if err != nil {
		return "", true, err
	}
	grew := ""
	if r.Grew {
		grew = "; capacity grew, compiled artifacts invalidated"
	}
	return fmt.Sprintf("epoch %d: appended rows [%d,%d) to %s%s", r.Epoch, r.Lo, r.Hi, table, grew), true, nil
}

// viewCmd recognizes the view-management statements — `\views`,
// `create [lazy] view name as select ...`, `refresh view name`, and
// `drop view name`. Anything else passes through to the SQL path.
func viewCmd(svc *engine.Service, stmt string) (string, bool, error) {
	fields := strings.Fields(stmt)
	if len(fields) == 0 {
		return "", false, nil
	}
	if fields[0] == `\views` {
		return viewList(svc), true, nil
	}
	kw := func(i int) string {
		if i < len(fields) {
			return strings.ToLower(fields[i])
		}
		return ""
	}
	switch {
	case kw(0) == "create" && (kw(1) == "view" || (kw(1) == "lazy" && kw(2) == "view")):
		policy, at := mview.RefreshIncremental, 2
		if kw(1) == "lazy" {
			policy, at = mview.RefreshLazy, 3
		}
		name := ""
		if at < len(fields) {
			name = fields[at]
		}
		if name == "" || kw(at+1) != "as" || at+2 >= len(fields) {
			return "", true, fmt.Errorf("usage: create [lazy] view name as select ...")
		}
		def := strings.Join(fields[at+2:], " ")
		v, err := svc.CreateView(name, def, policy)
		if err != nil {
			return "", true, err
		}
		st := v.States()
		return fmt.Sprintf("created %s view %s over %s: %d partial rows at build epoch %d",
			policy, name, v.Def().Table, st[len(st)-1].ViewRows, v.BuildEpoch), true, nil
	case kw(0) == "drop" && kw(1) == "view":
		if len(fields) != 3 {
			return "", true, fmt.Errorf("usage: drop view name")
		}
		if err := svc.DropView(fields[2]); err != nil {
			return "", true, err
		}
		return fmt.Sprintf("dropped view %s", fields[2]), true, nil
	case kw(0) == "refresh" && kw(1) == "view":
		if len(fields) != 3 {
			return "", true, fmt.Errorf("usage: refresh view name")
		}
		if err := svc.RefreshView(fields[2]); err != nil {
			return "", true, err
		}
		for _, in := range svc.Views().List() {
			if in.Name == fields[2] {
				return fmt.Sprintf("refreshed view %s: %d base rows covered, %d partial rows at epoch %d",
					in.Name, in.Covered, in.ViewRows, in.LastEpoch), true, nil
			}
		}
		return fmt.Sprintf("refreshed view %s", fields[2]), true, nil
	}
	return "", false, nil
}

// viewList renders the `\views` meta-command: one line per registered
// view with policy, rewrite traffic, coverage, and staleness.
func viewList(svc *engine.Service) string {
	infos := svc.Views().List()
	if len(infos) == 0 {
		return "no materialized views"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %-10s %-11s %6s %9s %9s %9s %9s  %s\n",
		"view", "base", "policy", "hits", "rows", "covered", "base", "bytes", "state")
	for _, in := range infos {
		state := "fresh"
		if in.Stale() {
			state = fmt.Sprintf("stale (+%d rows)", in.BaseRows-in.Covered)
		}
		fmt.Fprintf(&sb, "%-18s %-10s %-11s %6d %9d %9d %9d %9d  %s\n",
			in.Name, in.Base, in.Policy, in.Hits, in.ViewRows, in.Covered, in.BaseRows, in.Bytes, state)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// ingestCfg configures the background writer.
type ingestCfg struct {
	table string
	rate  int // rows per second (host time)
	batch int // rows per append
}

// parseIngest parses "rate=N[,table=T][,batch=B]".
func parseIngest(s string) (ingestCfg, error) {
	ic := ingestCfg{table: "sales", batch: 64}
	for _, kv := range strings.Split(s, ",") {
		k, v, found := strings.Cut(strings.TrimSpace(kv), "=")
		if !found {
			return ic, fmt.Errorf("expected k=v, got %q", kv)
		}
		switch k {
		case "rate":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return ic, fmt.Errorf("bad rate %q", v)
			}
			ic.rate = n
		case "table":
			ic.table = v
		case "batch":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return ic, fmt.Errorf("bad batch %q", v)
			}
			ic.batch = n
		default:
			return ic, fmt.Errorf("unknown key %q", k)
		}
	}
	if ic.rate == 0 {
		return ic, fmt.Errorf("rate=N is required")
	}
	return ic, nil
}

// startIngest launches the background writer: one ingestCfg.batch-row
// append every batch/rate seconds until the returned stop function is
// called. Appends race with executing sessions by design — snapshot
// binding makes that safe — and stop reports the appended row total and
// the final storage epoch.
func startIngest(svc *engine.Service, ic ingestCfg) func() (int64, uint64) {
	tb, err := svc.Catalog().Table(ic.table)
	if err != nil {
		fmt.Fprintf(os.Stderr, "minidb: -ingest: %v\n", err)
		os.Exit(2)
	}
	interval := time.Duration(float64(ic.batch) / float64(ic.rate) * float64(time.Second))
	if interval <= 0 {
		interval = time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	var total int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for seed := uint64(1); ; seed++ {
			select {
			case <-done:
				return
			case <-tick.C:
				r, err := svc.AppendCols(ic.table, datagen.AppendBatch(tb, ic.batch, seed))
				if err != nil {
					fmt.Fprintf(os.Stderr, "minidb: -ingest: %v\n", err)
					return
				}
				total += r.Hi - r.Lo
			}
		}
	}()
	return func() (int64, uint64) {
		close(done)
		wg.Wait()
		return total, svc.Epoch()
	}
}

// readStmts splits stdin into ;-separated statements.
func readStmts(f *os.File) []string {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	for sc.Scan() {
		buf.WriteString(sc.Text())
		buf.WriteByte('\n')
	}
	var out []string
	for _, s := range strings.Split(buf.String(), ";") {
		if strings.TrimSpace(s) != "" {
			out = append(out, s)
		}
	}
	return out
}

func runOne(se *engine.Session, sql string, cfg config) error {
	p, err := se.Prepare(sql)
	if err != nil {
		return err
	}
	if cfg.explain {
		fmt.Print(plan.Render(p.Compiled.Plan, func(n plan.Node) string {
			return fmt.Sprintf("(est. %.0f rows)", n.EstRows())
		}))
		fmt.Println()
	}
	if cfg.pgo {
		return runAdaptive(se, sql, cfg.maxRows)
	}
	res, err := se.Run(p, nil)
	if err != nil {
		return err
	}
	if cfg.analyze {
		if p.Rewrite != nil {
			fmt.Printf("rewritten onto materialized view %s (base %s); the plan below scans the view's partials\n",
				p.Rewrite.View, p.Rewrite.Base)
		}
		fmt.Print(viz.AnalyzedPlan(p.Compiled.Plan, p.Compiled.Pipe, res.TupleCounts, nil))
		if s := viz.ShardSummary(res); s != "" {
			fmt.Print(s)
		}
		fmt.Println()
	}
	fmt.Print(viz.ResultTable(res, cfg.maxRows))
	cached := "compiled"
	if p.CacheHit {
		cached = "cache hit"
	}
	sharded := ""
	if res.Shards > 0 {
		sharded = fmt.Sprintf(", %d shards", res.Shards)
	}
	if res.Workers > 0 {
		fmt.Printf("(%d rows; %s; %.3f ms simulated wall on %d workers%s, %d instructions total)\n",
			len(res.Rows), cached, float64(res.WallCycles)/3.5e6, res.Workers, sharded, res.Stats.Instructions)
	} else {
		fmt.Printf("(%d rows; %s; %.3f ms simulated, %d instructions)\n",
			len(res.Rows), cached, float64(res.Stats.Cycles)/3.5e6, res.Stats.Instructions)
	}

	if cfg.verify {
		if err := refCheck(p, res.Rows); err != nil {
			return err
		}
		fmt.Println("verified against reference executor ✓")
	}
	return nil
}

// refCheck cross-checks a result against the interpreted reference
// executor, threading the prepared statement's bound parameters through.
func refCheck(p *engine.Prepared, rows [][]int64) error {
	var params []int64
	if p.State != nil {
		params = p.State.Params
	}
	want, err := ref.ExecuteWith(p.Compiled.Plan, params)
	if err != nil {
		return fmt.Errorf("reference executor: %w", err)
	}
	if !equalRows(rows, want, len(p.Compiled.Plan.OrderBy) > 0) {
		return fmt.Errorf("VERIFICATION FAILED: compiled result differs from reference")
	}
	return nil
}

// runAdaptive runs one profile → recompile → re-run cycle and reports
// the simulated-cycle delta; the recompiled query's rows (printed) are
// verified identical to the original's by the adaptive cycle itself. A
// winning profile is promoted into the service's cache, so subsequent
// prepares of the same fingerprint serve the tuned binary.
func runAdaptive(se *engine.Session, sql string, maxRows int) error {
	ar, err := se.Adapt(sql, nil)
	if err != nil {
		return err
	}
	fmt.Print(viz.ResultTable(ar.Tuned, maxRows))
	st := ar.Recompiled.OptStats
	fmt.Printf("(%d rows; results identical before/after recompilation)\n", len(ar.Tuned.Rows))
	fmt.Printf("pgo: %d samples; hoisted %d, strength-reduced %d\n",
		len(ar.ProfileRun.Samples), st.Hoisted, st.Reduced)
	fmt.Printf("pgo: %d cycles -> %d cycles (%.1f%% reduction, %.2fx)\n",
		ar.BaselineCycles, ar.TunedCycles, ar.CycleReduction()*100, ar.Speedup())
	return nil
}

// serveBatch distributes the statement batch round-robin across n
// concurrent sessions, waits for all of them, then reports one summary
// line per statement (in input order), per-session stats, and the
// service-wide cache counters with the compile-vs-execute time split.
func serveBatch(svc *engine.Service, stmts []string, n int, cfg config) int {
	if n < 1 {
		n = 1
	}
	if n > len(stmts) {
		n = len(stmts)
	}
	type outcome struct {
		line string
		err  error
	}
	results := make([]outcome, len(stmts))
	sess := make([]*engine.Session, n)
	for i := range sess {
		sess[i] = svc.NewSession()
	}
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			se := sess[si]
			for j := si; j < len(stmts); j += n {
				if line, isAppend, err := appendCmd(svc, stmts[j]); isAppend {
					if err != nil {
						results[j] = outcome{err: err}
					} else {
						results[j] = outcome{line: fmt.Sprintf("s%-2d %s", se.ID, line)}
					}
					continue
				}
				if line, isView, err := viewCmd(svc, stmts[j]); isView {
					if err != nil {
						results[j] = outcome{err: err}
					} else {
						results[j] = outcome{line: fmt.Sprintf("s%-2d %s", se.ID, line)}
					}
					continue
				}
				p, res, err := se.Execute(stmts[j], nil)
				if err != nil {
					results[j] = outcome{err: err}
					continue
				}
				if cfg.verify {
					if err := refCheck(p, res.Rows); err != nil {
						results[j] = outcome{err: err}
						continue
					}
				}
				tag := "miss"
				switch {
				case p.Fallback:
					tag = "fallback"
				case p.CacheHit:
					tag = "hit "
				}
				results[j] = outcome{line: fmt.Sprintf(
					"s%-2d %s  %4d rows  prep %8.3fms  fp %016x  %s",
					se.ID, tag, len(res.Rows),
					float64(p.PrepareTime.Microseconds())/1000, p.Fingerprint,
					oneLine(stmts[j]))}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)

	failed := 0
	for j, r := range results {
		if r.err != nil {
			failed++
			fmt.Printf("s?  FAIL %s: %v\n", oneLine(stmts[j]), r.err)
			continue
		}
		fmt.Println(r.line)
	}

	var agg engine.SessionStats
	for _, se := range sess {
		st := se.Stats()
		agg.Queries += st.Queries
		agg.CacheHits += st.CacheHits
		agg.Fallbacks += st.Fallbacks
		agg.Prepare += st.Prepare
		agg.Execute += st.Execute
	}
	cs := svc.CacheStats()
	fmt.Printf("\n%d statements on %d sessions in %v (host wall)\n", len(stmts), n, wall.Round(time.Millisecond))
	fmt.Printf("cache: %d hits, %d misses, %d evictions, %d invalidations; %d resident; %d fallbacks\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Invalidations, svc.CacheLen(), svc.Fallbacks())
	tot := agg.Prepare + agg.Execute
	if tot > 0 {
		fmt.Printf("time split: prepare %v (%.1f%%) vs execute %v (%.1f%%)\n",
			agg.Prepare.Round(time.Microsecond), 100*float64(agg.Prepare)/float64(tot),
			agg.Execute.Round(time.Microsecond), 100*float64(agg.Execute)/float64(tot))
	}
	if failed > 0 {
		fmt.Printf("%d statement(s) FAILED\n", failed)
		return 1
	}
	return 0
}

// oneLine compresses a statement to a single trimmed line for summaries.
func oneLine(sql string) string {
	s := strings.Join(strings.Fields(sql), " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

func equalRows(a, b [][]int64, ordered bool) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = fmt.Sprint(a[i])
		bs[i] = fmt.Sprint(b[i])
	}
	if !ordered {
		sort.Strings(as)
		sort.Strings(bs)
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
