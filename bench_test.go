// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6). Each benchmark prints/reports the series the paper
// reports; run them all with
//
//	go test -bench=. -benchmem
//
// The cmd/experiments tool produces the full text reports; these
// benchmarks measure the same pipelines under the testing.B harness and
// expose the headline numbers as benchmark metrics.
package tprof

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/vm"
)

const benchSF = 0.5

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	return experiments.NewEnv(benchSF, 42)
}

func benchEngine(b *testing.B) (*engine.Engine, *experiments.Env) {
	env := benchEnv(b)
	return engine.New(env.Cat, engine.DefaultOptions()), env
}

// BenchmarkAnnotatedIRProfile regenerates Listing 1 / Fig. 6b: the intro
// query profiled at IR granularity.
func BenchmarkAnnotatedIRProfile(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := env.Listing1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCostProfile regenerates Fig. 6a / Fig. 9: per-operator plan
// costs. The group-by and join shares are reported as metrics.
func BenchmarkPlanCostProfile(b *testing.B) {
	eng, _ := benchEngine(b)
	w := queries.Intro(true)
	cq, err := eng.CompileQuery(w.Query)
	if err != nil {
		b.Fatal(err)
	}
	var gb, join float64
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(cq, &pmu.Config{Event: vm.EvCycles, Period: 5000, Format: pmu.FormatIPTimeRegs})
		if err != nil {
			b.Fatal(err)
		}
		gb, join = 0, 0
		for _, c := range res.Profile.OperatorCosts() {
			switch c.Kind {
			case "group by":
				gb += c.Pct
			case "hash join":
				join += c.Pct
			}
		}
	}
	b.ReportMetric(gb, "groupby_pct")
	b.ReportMetric(join, "join_pct")
}

// BenchmarkOperatorActivity regenerates Fig. 7: the activity timeline.
func BenchmarkOperatorActivity(b *testing.B) {
	eng, _ := benchEngine(b)
	cq, err := eng.CompileQuery(queries.Fig9().Query)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(cq, &pmu.Config{Event: vm.EvCycles, Period: 1000, Format: pmu.FormatIPTimeRegs})
		if err != nil {
			b.Fatal(err)
		}
		tl := res.Profile.BuildTimeline(60)
		if len(tl.Activity) != 60 {
			b.Fatal("timeline bins missing")
		}
	}
}

// BenchmarkOptimizerPlans regenerates Fig. 10/11: both plans of the 3-way
// join; the speedup of the alternative plan is reported as a metric.
func BenchmarkOptimizerPlans(b *testing.B) {
	eng, _ := benchEngine(b)
	cqOpt, err := eng.CompileQuery(queries.Fig10(false).Query)
	if err != nil {
		b.Fatal(err)
	}
	cqAlt, err := eng.CompileQuery(queries.Fig10(true).Query)
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		rOpt, err := eng.Run(cqOpt, nil)
		if err != nil {
			b.Fatal(err)
		}
		rAlt, err := eng.Run(cqAlt, nil)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(rOpt.Stats.Cycles) / float64(rAlt.Stats.Cycles)
	}
	b.ReportMetric(speedup, "alt_speedup")
}

// BenchmarkMemoryProfile regenerates Fig. 12: load sampling with address
// capture and per-operator access maps.
func BenchmarkMemoryProfile(b *testing.B) {
	env := benchEnv(b)
	eng := engine.New(env.Cat, engine.DefaultOptions())
	eng.Opts.EagerColumnLoads = true
	cq, err := eng.CompileQuery(queries.Fig9().Query)
	if err != nil {
		b.Fatal(err)
	}
	var pts int
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(cq, &pmu.Config{Event: vm.EvMemLoads, Period: 1000, Format: pmu.FormatIPTimeRegs})
		if err != nil {
			b.Fatal(err)
		}
		pts = 0
		for _, m := range res.Profile.MemByOp {
			pts += len(m)
		}
	}
	b.ReportMetric(float64(pts), "mem_points")
}

// BenchmarkSamplingOverhead regenerates Fig. 13: one sub-benchmark per
// record format at the paper's default 0.7 MHz equivalent; the measured
// overhead is the reported metric (paper: 35% / 38% / 529%).
func BenchmarkSamplingOverhead(b *testing.B) {
	eng, _ := benchEngine(b)
	cq, err := eng.CompileQuery(queries.Q16().Query)
	if err != nil {
		b.Fatal(err)
	}
	base, err := eng.Run(cq, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []struct {
		name   string
		format pmu.Format
	}{
		{"IP_Time", pmu.FormatIPTime},
		{"IP_Time_Registers", pmu.FormatIPTimeRegs},
		{"IP_Callstack", pmu.FormatCallStack},
	} {
		b.Run(f.name, func(b *testing.B) {
			var ov float64
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(cq, &pmu.Config{Event: vm.EvCycles, Period: 5000, Format: f.format})
				if err != nil {
					b.Fatal(err)
				}
				ov = float64(res.Stats.TotalCycles())/float64(base.Stats.Cycles) - 1
			}
			b.ReportMetric(100*ov, "overhead_pct")
		})
	}
}

// BenchmarkSamplingFrequencySweep regenerates the Fig. 13 x-axis: the
// IP+Time+Registers overhead at 100 kHz, 350 kHz, 700 kHz and 1 MHz.
func BenchmarkSamplingFrequencySweep(b *testing.B) {
	eng, _ := benchEngine(b)
	cq, err := eng.CompileQuery(queries.Q16().Query)
	if err != nil {
		b.Fatal(err)
	}
	base, err := eng.Run(cq, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, period := range []int64{35000, 10000, 5000, 3500} {
		b.Run(fmt.Sprintf("%dkHz", 3_500_000/period), func(b *testing.B) {
			var ov float64
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(cq, &pmu.Config{Event: vm.EvCycles, Period: period, Format: pmu.FormatIPTimeRegs})
				if err != nil {
					b.Fatal(err)
				}
				ov = float64(res.Stats.TotalCycles())/float64(base.Stats.Cycles) - 1
			}
			b.ReportMetric(100*ov, "overhead_pct")
		})
	}
}

// BenchmarkRegisterReservation regenerates the §6.2 measurement: the
// slowdown from reserving the tag register (paper: 2.8% average).
func BenchmarkRegisterReservation(b *testing.B) {
	env := benchEnv(b)
	var avg float64
	for i := 0; i < b.N; i++ {
		_, v, err := env.RegReserve()
		if err != nil {
			b.Fatal(err)
		}
		avg = v
	}
	b.ReportMetric(100*avg, "overhead_pct")
}

// BenchmarkAttribution regenerates Table 2: the attribution shares across
// the whole query suite (paper: 95.4% operators / 2.6% kernel / 2.0% none).
func BenchmarkAttribution(b *testing.B) {
	env := benchEnv(b)
	var rows []experiments.AttributionRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = env.Attribution()
		if err != nil {
			b.Fatal(err)
		}
	}
	total := rows[len(rows)-1]
	b.ReportMetric(total.OperatorPct, "operators_pct")
	b.ReportMetric(total.KernelPct, "kernel_pct")
	b.ReportMetric(total.NoAttrib, "unattributed_pct")
}

// BenchmarkAccuracy regenerates the §6.3 validation; the tag-mismatch
// count must stay zero (paper: no mismatches).
func BenchmarkAccuracy(b *testing.B) {
	env := benchEnv(b)
	var st *experiments.AccuracyStats
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = env.Accuracy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.TagMismatches), "tag_mismatches")
	b.ReportMetric(st.TSCDeltaDev, "tsc_dev_cycles")
}

// BenchmarkCompileQuery measures end-to-end query compilation (plan →
// pipelines → IR optimization → register allocation → native code),
// including Tagging Dictionary population.
func BenchmarkCompileQuery(b *testing.B) {
	eng, _ := benchEngine(b)
	w := queries.Fig9()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.CompileQuery(w.Query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteUnprofiled measures raw simulated execution, the
// baseline all overhead numbers are relative to.
func BenchmarkExecuteUnprofiled(b *testing.B) {
	eng, _ := benchEngine(b)
	cq, err := eng.CompileQuery(queries.Q16().Query)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(cq, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParallel runs one workload at Workers=1 and Workers=4 and reports
// the simulated-cycle speedup of the parallel run as a metric. Host wall
// time is meaningless here (all simulated cores share one OS thread in
// CI), so the morsel scheduler's makespan over per-morsel cycle costs is
// the honest scaling number.
func benchParallel(b *testing.B, workload string) {
	env := benchEnv(b)
	wl, ok := queries.ByName(workload)
	if !ok {
		b.Fatalf("no workload %s", workload)
	}
	walls := map[int]uint64{}
	var speedup float64
	for i := 0; i < b.N; i++ {
		for _, workers := range []int{1, 4} {
			opts := engine.DefaultOptions()
			opts.Workers = workers
			eng := engine.New(env.Cat, opts)
			cq, err := eng.CompileQuery(wl.Query)
			if err != nil {
				b.Fatal(err)
			}
			res, err := eng.Run(cq, nil)
			if err != nil {
				b.Fatal(err)
			}
			walls[workers] = res.WallCycles
		}
		speedup = float64(walls[1]) / float64(walls[4])
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkCompileSQL measures the full SQL front door (parse → plan →
// compile) with allocation reporting: the CSE value-numbering key is the
// optimizer's hottest allocation site, so allocs/op here guards its
// allocation-free encoding.
func BenchmarkCompileSQL(b *testing.B) {
	eng, _ := benchEngine(b)
	const sql = "select l_orderkey, sum(l_quantity), sum(l_extendedprice) " +
		"from lineitem where l_quantity < 24 group by l_orderkey"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.CompileSQL(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceCacheHit measures the warm service front door: lex →
// normalize → fingerprint → cache hit → argument encoding, returning the
// shared compiled artifact without touching the planner or backend. The
// contrast with BenchmarkCompileSQL (the identical statement, compiled
// from scratch each time) is the compiled-query cache's headline number,
// recorded in BENCH_qcache.json and gated by TestServiceCacheHitSpeedup.
func BenchmarkServiceCacheHit(b *testing.B) {
	env := benchEnv(b)
	svc := engine.NewService(env.Cat, engine.DefaultOptions(), 0)
	se := svc.NewSession()
	const sql = "select l_orderkey, sum(l_quantity), sum(l_extendedprice) " +
		"from lineitem where l_quantity < 24 group by l_orderkey"
	if _, err := se.Prepare(sql); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := se.Prepare(sql)
		if err != nil {
			b.Fatal(err)
		}
		if !p.CacheHit {
			b.Fatal("expected a cache hit")
		}
	}
}

// benchPGO runs one profile → recompile → re-run cycle and reports the
// simulated cycles of the original and profile-guided binaries plus the
// achieved reduction. RunAdaptive fails the benchmark if the recompiled
// query's rows differ.
func benchPGO(b *testing.B, workload string) {
	env := benchEnv(b)
	wl, ok := queries.ByName(workload)
	if !ok {
		b.Fatalf("no workload %s", workload)
	}
	eng := engine.New(env.Cat, engine.DefaultOptions())
	cq, err := eng.CompileQuery(wl.Query)
	if err != nil {
		b.Fatal(err)
	}
	var ar *engine.AdaptiveResult
	for i := 0; i < b.N; i++ {
		ar, err = eng.RunAdaptive(cq, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ar.BaselineCycles), "baseline_cycles")
	b.ReportMetric(float64(ar.TunedCycles), "tuned_cycles")
	b.ReportMetric(100*ar.CycleReduction(), "reduction_pct")
}

// BenchmarkPGOScanAgg measures profile-guided recompilation on TPC-H Q6:
// one tight scan loop, where scaled-address fusion and layout dominate.
func BenchmarkPGOScanAgg(b *testing.B) {
	benchPGO(b, "q6")
}

// BenchmarkPGOJoin measures profile-guided recompilation on the Fig. 9
// join+group-by query: LICM and spill weighting matter alongside fusion.
func BenchmarkPGOJoin(b *testing.B) {
	benchPGO(b, "fig9")
}

// BenchmarkParallelScanAgg measures morsel-driven scaling on a scan-heavy
// aggregation (TPC-H Q6): one scan pipeline, near-perfect morsel balance.
func BenchmarkParallelScanAgg(b *testing.B) {
	benchParallel(b, "q6")
}

// BenchmarkParallelJoin measures morsel-driven scaling on the paper's
// Fig. 9 join+group-by query: the build pipelines serialize at phase
// barriers, so the speedup is sublinear but still well above 2x.
func BenchmarkParallelJoin(b *testing.B) {
	benchParallel(b, "fig9")
}
