package tprof

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// TestServiceCacheHitSpeedup is the CI gate on the compiled-query cache:
// preparing a statement against a warm cache (normalize → fingerprint →
// hit → argument encoding) must be at least 10x faster than compiling the
// same statement from scratch. The measured ratio is recorded in
// BENCH_qcache.json; this test keeps it from silently regressing.
func TestServiceCacheHitSpeedup(t *testing.T) {
	env := experiments.NewEnv(0.05, 42)
	const sql = "select l_orderkey, sum(l_quantity), sum(l_extendedprice) " +
		"from lineitem where l_quantity < 24 group by l_orderkey"

	svc := engine.NewService(env.Cat, engine.DefaultOptions(), 0)
	se := svc.NewSession()
	if _, err := se.Prepare(sql); err != nil {
		t.Fatal(err)
	}
	hit := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := se.Prepare(sql)
			if err != nil {
				b.Fatal(err)
			}
			if !p.CacheHit {
				b.Fatal("expected a cache hit")
			}
		}
	})

	comp := engine.NewCompiler(env.Cat, engine.DefaultOptions())
	compile := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := comp.CompileSQL(sql); err != nil {
				b.Fatal(err)
			}
		}
	})

	if hit.N == 0 || compile.N == 0 {
		t.Fatal("benchmarks did not run")
	}
	speedup := float64(compile.NsPerOp()) / float64(hit.NsPerOp())
	t.Logf("cache hit %v/op vs compile %v/op: %.1fx", hit.NsPerOp(), compile.NsPerOp(), speedup)
	if speedup < 10 {
		t.Fatalf("cache-hit prepare is only %.1fx faster than a full compile (want >= 10x)", speedup)
	}
}
