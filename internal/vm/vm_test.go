package vm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// run executes code on a fresh CPU and returns it.
func run(t *testing.T, code []isa.Instr, setup func(*CPU)) *CPU {
	t.Helper()
	c := New(1 << 16)
	if setup != nil {
		setup(c)
	}
	c.Load(&isa.Program{Code: code})
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

// TestALUSemantics cross-checks every binary operator against native Go
// semantics with random operands.
func TestALUSemantics(t *testing.T) {
	type golden func(a, b int64) int64
	cases := []struct {
		op   isa.Op
		want golden
		skip func(a, b int64) bool
	}{
		{isa.ADD, func(a, b int64) int64 { return a + b }, nil},
		{isa.SUB, func(a, b int64) int64 { return a - b }, nil},
		{isa.MUL, func(a, b int64) int64 { return a * b }, nil},
		{isa.DIV, func(a, b int64) int64 { return a / b }, func(a, b int64) bool { return b == 0 }},
		{isa.MOD, func(a, b int64) int64 { return a % b }, func(a, b int64) bool { return b == 0 }},
		{isa.AND, func(a, b int64) int64 { return a & b }, nil},
		{isa.OR, func(a, b int64) int64 { return a | b }, nil},
		{isa.XOR, func(a, b int64) int64 { return a ^ b }, nil},
		{isa.SHL, func(a, b int64) int64 { return a << (uint64(b) & 63) }, nil},
		{isa.SHR, func(a, b int64) int64 { return int64(uint64(a) >> (uint64(b) & 63)) }, nil},
		{isa.CMPEQ, func(a, b int64) int64 { return b2i(a == b) }, nil},
		{isa.CMPNE, func(a, b int64) int64 { return b2i(a != b) }, nil},
		{isa.CMPLT, func(a, b int64) int64 { return b2i(a < b) }, nil},
		{isa.CMPLE, func(a, b int64) int64 { return b2i(a <= b) }, nil},
		{isa.CMPGT, func(a, b int64) int64 { return b2i(a > b) }, nil},
		{isa.CMPGE, func(a, b int64) int64 { return b2i(a >= b) }, nil},
	}
	for _, c := range cases {
		c := c
		f := func(a, b int64) bool {
			if c.skip != nil && c.skip(a, b) {
				return true
			}
			cpu2 := New(1 << 12)
			cpu2.Load(&isa.Program{Code: []isa.Instr{
				{Op: c.op, Dst: 2, Src1: 0, Src2: 1},
				{Op: isa.HALT},
			}})
			cpu2.Regs[0], cpu2.Regs[1] = a, b
			if _, err := cpu2.Run(10); err != nil {
				return false
			}
			return cpu2.Regs[2] == c.want(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", c.op, err)
		}
	}
}

// TestRotr checks the rotate's wraparound identity.
func TestRotr(t *testing.T) {
	if err := quick.Check(func(a int64, s uint8) bool {
		cpu := New(1 << 12)
		cpu.Load(&isa.Program{Code: []isa.Instr{
			{Op: isa.ROTR, Dst: 2, Src1: 0, Src2: 1},
			{Op: isa.HALT},
		}})
		cpu.Regs[0], cpu.Regs[1] = a, int64(s)
		if _, err := cpu.Run(10); err != nil {
			return false
		}
		sh := uint64(s) & 63
		want := int64(uint64(a)>>sh | uint64(a)<<(64-sh))
		return cpu.Regs[2] == want
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	c := New(1 << 12)
	c.Load(&isa.Program{Code: []isa.Instr{
		{Op: isa.DIV, Dst: 0, Src1: 0, Src2: 1},
		{Op: isa.HALT},
	}})
	_, err := c.Run(10)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestMemoryBoundsTrap(t *testing.T) {
	for _, in := range []isa.Instr{
		{Op: isa.LOAD64, Dst: 0, Abs: true, Imm: 1 << 30},
		{Op: isa.STORE64, Dst: 0, Abs: true, Imm: -8},
		{Op: isa.LOAD8, Dst: 0, Abs: true, Imm: int64(1<<12) - 0}, // one past end
	} {
		c := New(1 << 12)
		c.Load(&isa.Program{Code: []isa.Instr{in, {Op: isa.HALT}}})
		if _, err := c.Run(10); err == nil {
			t.Errorf("%s: expected bounds trap", in.String())
		}
	}
}

func TestLoadStoreWidths(t *testing.T) {
	c := run(t, []isa.Instr{
		{Op: isa.MOVRI, Dst: 0, Imm: -2}, // 0xfffe... pattern
		{Op: isa.STORE64, Dst: 0, Abs: true, Imm: 256},
		{Op: isa.LOAD8, Dst: 1, Abs: true, Imm: 256},  // 0xfe = 254 unsigned
		{Op: isa.LOAD32, Dst: 2, Abs: true, Imm: 256}, // sign-extended
		{Op: isa.LOAD64, Dst: 3, Abs: true, Imm: 256},
		{Op: isa.HALT},
	}, nil)
	if c.Regs[1] != 254 {
		t.Errorf("LOAD8 = %d, want 254 (zero-extended)", c.Regs[1])
	}
	if c.Regs[2] != -2 {
		t.Errorf("LOAD32 = %d, want -2 (sign-extended)", c.Regs[2])
	}
	if c.Regs[3] != -2 {
		t.Errorf("LOAD64 = %d, want -2", c.Regs[3])
	}
}

func TestScaledAddressing(t *testing.T) {
	c := run(t, []isa.Instr{
		{Op: isa.MOVRI, Dst: 1, Imm: 256}, // base
		{Op: isa.MOVRI, Dst: 2, Imm: 3},   // index
		{Op: isa.MOVRI, Dst: 0, Imm: 77},
		{Op: isa.STORE64, Dst: 0, Src1: 1, Src2: 2, Scaled: true},
		{Op: isa.LOAD64, Dst: 3, Abs: true, Imm: 256 + 24},
		{Op: isa.HALT},
	}, nil)
	if c.Regs[3] != 77 {
		t.Fatalf("scaled store landed wrong: %d", c.Regs[3])
	}
}

func TestCallRet(t *testing.T) {
	c := run(t, []isa.Instr{
		{Op: isa.CALL, Imm: 3},          // 0
		{Op: isa.HALT},                  // 1
		{Op: isa.NOP},                   // 2 (never)
		{Op: isa.MOVRI, Dst: 5, Imm: 9}, // 3
		{Op: isa.RET},                   // 4
	}, nil)
	if c.Regs[5] != 9 {
		t.Fatal("call target did not execute")
	}
	if c.Stats.Calls != 1 {
		t.Fatalf("calls = %d", c.Stats.Calls)
	}
}

func TestRetWithEmptyStackTraps(t *testing.T) {
	c := New(1 << 12)
	c.Load(&isa.Program{Code: []isa.Instr{{Op: isa.RET}}})
	if _, err := c.Run(10); err == nil {
		t.Fatal("expected trap")
	}
}

func TestConditionalBranches(t *testing.T) {
	// Loop: sum 1..5 via JLT.
	c := run(t, []isa.Instr{
		{Op: isa.MOVRI, Dst: 0, Imm: 0},                       // i
		{Op: isa.MOVRI, Dst: 1, Imm: 0},                       // sum
		{Op: isa.JGE, Src1: 0, UseImm: true, Imm: 5, Imm2: 6}, // 2: while i < 5
		{Op: isa.ADD, Dst: 1, Src1: 1, Src2: 0},               // 3
		{Op: isa.ADD, Dst: 0, Src1: 0, UseImm: true, Imm: 1},  // 4
		{Op: isa.JMP, Imm: 2},                                 // 5
		{Op: isa.HALT},                                        // 6
	}, nil)
	if c.Regs[1] != 0+1+2+3+4 {
		t.Fatalf("sum = %d", c.Regs[1])
	}
	if c.Stats.Branches == 0 {
		t.Fatal("branch stats not counted")
	}
}

func TestInstructionBudget(t *testing.T) {
	c := New(1 << 12)
	c.Load(&isa.Program{Code: []isa.Instr{{Op: isa.JMP, Imm: 0}}})
	if _, err := c.Run(100); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestTSCAdvances(t *testing.T) {
	c := run(t, []isa.Instr{
		{Op: isa.MOVRI, Dst: 0, Imm: 1},
		{Op: isa.MUL, Dst: 0, Src1: 0, Src2: 0},
		{Op: isa.HALT},
	}, nil)
	// movi(1) + mul(3) + halt(1)
	if c.TSC() != 1+CostMul+1 {
		t.Fatalf("TSC = %d", c.TSC())
	}
	if c.Stats.Cycles != c.TSC() {
		t.Fatalf("cycles (%d) != tsc (%d) without sampling", c.Stats.Cycles, c.TSC())
	}
}

func TestHeapHelpers(t *testing.T) {
	c := New(1 << 12)
	c.WriteI64(128, -12345)
	if got := c.ReadI64(128); got != -12345 {
		t.Fatalf("ReadI64 = %d", got)
	}
}

// hookFunc adapts a function to SampleHook.
type hookFunc func(c *CPU, ev Event, addr int64) uint64

func (f hookFunc) Sample(c *CPU, ev Event, addr int64) uint64 { return f(c, ev, addr) }

func TestSamplingPeriodExact(t *testing.T) {
	code := []isa.Instr{}
	for i := 0; i < 99; i++ {
		code = append(code, isa.Instr{Op: isa.NOP})
	}
	code = append(code, isa.Instr{Op: isa.HALT})
	c := New(1 << 12)
	c.Load(&isa.Program{Code: code})
	var n int
	c.Arm(hookFunc(func(cpu *CPU, ev Event, addr int64) uint64 { n++; return 0 }), EvInstRetired, 10, 0)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("samples = %d, want 10 (100 instrs / period 10)", n)
	}
}

func TestSamplingOverheadCharged(t *testing.T) {
	code := make([]isa.Instr, 0, 101)
	for i := 0; i < 100; i++ {
		code = append(code, isa.Instr{Op: isa.NOP})
	}
	code = append(code, isa.Instr{Op: isa.HALT})
	c := New(1 << 12)
	c.Load(&isa.Program{Code: code})
	c.Arm(hookFunc(func(cpu *CPU, ev Event, addr int64) uint64 { return 1000 }), EvInstRetired, 50, 0)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.Stats.SampleCycles != 2000 {
		t.Fatalf("SampleCycles = %d, want 2000", c.Stats.SampleCycles)
	}
	if c.TSC() != c.Stats.Cycles+2000 {
		t.Fatalf("TSC %d != work %d + overhead 2000", c.TSC(), c.Stats.Cycles)
	}
}

func TestSamplingJitterVariesIntervals(t *testing.T) {
	code := make([]isa.Instr, 0, 2001)
	for i := 0; i < 2000; i++ {
		code = append(code, isa.Instr{Op: isa.NOP})
	}
	code = append(code, isa.Instr{Op: isa.HALT})
	c := New(1 << 12)
	c.Load(&isa.Program{Code: code})
	var ips []int
	c.Arm(hookFunc(func(cpu *CPU, ev Event, addr int64) uint64 {
		ips = append(ips, cpu.IP())
		return 0
	}), EvInstRetired, 100, 16)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(ips) < 10 {
		t.Fatalf("too few samples: %d", len(ips))
	}
	deltas := map[int]bool{}
	for i := 1; i < len(ips); i++ {
		deltas[ips[i]-ips[i-1]] = true
	}
	if len(deltas) < 2 {
		t.Fatalf("jitter produced uniform intervals: %v", deltas)
	}
}

func TestEventFiltering(t *testing.T) {
	// Arm loads; NOPs must not fire samples.
	code := []isa.Instr{
		{Op: isa.NOP},
		{Op: isa.LOAD64, Dst: 0, Abs: true, Imm: 256},
		{Op: isa.LOAD64, Dst: 0, Abs: true, Imm: 264},
		{Op: isa.HALT},
	}
	c := New(1 << 12)
	c.Load(&isa.Program{Code: code})
	var addrs []int64
	c.Arm(hookFunc(func(cpu *CPU, ev Event, addr int64) uint64 {
		addrs = append(addrs, addr)
		return 0
	}), EvMemLoads, 1, 0)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != 256 || addrs[1] != 264 {
		t.Fatalf("load samples = %v", addrs)
	}
}

func TestBranchMissEvent(t *testing.T) {
	// An alternating branch defeats the 2-bit predictor reliably.
	code := []isa.Instr{
		{Op: isa.MOVRI, Dst: 0, Imm: 0},                         // 0: i
		{Op: isa.AND, Dst: 1, Src1: 0, UseImm: true, Imm: 1},    // 1: parity
		{Op: isa.JNZ, Src1: 1, Imm: 3},                          // 2: alternates
		{Op: isa.ADD, Dst: 0, Src1: 0, UseImm: true, Imm: 1},    // 3
		{Op: isa.JLT, Src1: 0, UseImm: true, Imm: 200, Imm2: 1}, // 4: loop
		{Op: isa.HALT},
	}
	c := New(1 << 12)
	c.Load(&isa.Program{Code: code})
	misses := 0
	c.Arm(hookFunc(func(cpu *CPU, ev Event, addr int64) uint64 {
		if ev == EvBranchMiss {
			misses++
		}
		return 0
	}), EvBranchMiss, 1, 0)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if misses == 0 || c.Stats.BranchMisses == 0 {
		t.Fatal("alternating branch produced no mispredictions")
	}
	if uint64(misses) != c.Stats.BranchMisses {
		t.Fatalf("event count %d != stats %d", misses, c.Stats.BranchMisses)
	}
}
