// Package vm implements the simulated CPU that executes native programs
// produced by internal/codegen.
//
// The CPU stands in for the paper's x86 hardware: it executes the isa
// instruction set over a byte-addressable heap, charges cycles according to
// a documented cost model (see cost.go), models caches and branch
// prediction (uarch.go), maintains a timestamp counter with cycle
// resolution (the paper's TSC, §5.5), and exposes a sampling hook that the
// PMU (internal/pmu) uses to take PEBS-style samples.
package vm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

// Event enumerates hardware events the PMU can arm, mirroring the perf
// events used in the paper's evaluation (§6 experimental setup).
type Event uint8

const (
	// EvCycles fires once per elapsed cycle; the sample lands on the
	// instruction retiring when the counter overflows, so expensive
	// instructions (cache-missing loads, divisions) attract
	// proportionally more samples — the cost-weighted profile the
	// paper's listings show ("approximates the execution cost").
	EvCycles Event = iota
	// EvInstRetired fires once per retired instruction
	// (INST_RETIRED.PREC_DIST in the paper).
	EvInstRetired
	// EvMemLoads fires once per retired load
	// (MEM_INST_RETIRED.ALL_LOADS in the paper).
	EvMemLoads
	// EvL3Miss fires for loads served by DRAM.
	EvL3Miss
	// EvBranchMiss fires on mispredicted conditional branches.
	EvBranchMiss

	NumEvents
)

func (e Event) String() string {
	switch e {
	case EvCycles:
		return "CPU_CYCLES"
	case EvInstRetired:
		return "INST_RETIRED"
	case EvMemLoads:
		return "MEM_LOADS"
	case EvL3Miss:
		return "L3_MISS"
	case EvBranchMiss:
		return "BRANCH_MISS"
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// SampleHook receives a callback whenever the armed event counter reaches
// the configured period. The hook may inspect the CPU (IP, TSC, registers,
// call stack, last accessed address) and returns the number of cycles the
// act of sampling costs (PEBS record cost, buffer flushes, ...), which the
// CPU adds to the TSC — this is how sampling overhead perturbs execution,
// exactly like real PEBS.
type SampleHook interface {
	Sample(c *CPU, ev Event, addr int64) (extraCycles uint64)
}

// Stats aggregates execution counters for one run.
type Stats struct {
	Instructions uint64
	Cycles       uint64 // execution work, excluding sampling overhead
	SampleCycles uint64 // cycles charged by the sampling hook
	Loads        uint64
	Stores       uint64
	Branches     uint64
	BranchMisses uint64
	L1Hits       uint64
	L2Hits       uint64
	L3Hits       uint64
	MemAccesses  uint64 // DRAM-served accesses
	Calls        uint64
}

// TotalCycles is the wall-clock cycle count of the run: execution work
// plus the perturbation the sampling mechanism added (what the overhead
// experiments of Fig. 13 measure).
func (s *Stats) TotalCycles() uint64 { return s.Cycles + s.SampleCycles }

// TrapError reports a runtime trap (bounds violation, division by zero,
// arena overflow signalled by generated code).
type TrapError struct {
	IP     int
	Reason string
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("vm: trap at ip=%d: %s", e.IP, e.Reason)
}

// CPU is the simulated processor. Create one with New, install a program
// with Load, then call Run.
type CPU struct {
	Heap []byte
	Regs [isa.NumRegs]int64

	prog      *isa.Program
	ip        int
	tsc       uint64
	callStack []int // return addresses (instruction indices)
	halted    bool
	haltOnRet bool // CallFunction mode: RET at stack depth 0 halts

	caches *Hierarchy
	bp     *BranchPredictor

	Stats Stats

	// Sampling state.
	hook      SampleHook
	armed     Event
	period    int64
	countdown int64
	sampling  bool
	// jitterMask randomizes each sampling interval by ±(mask+1)/2, the
	// way perf randomizes PEBS periods to defeat aliasing with loop
	// bodies (the paper's §4.1 aliasing concern).
	jitterMask int64
	jitterRNG  uint64

	// FreqGHz converts cycles to wall time for reports (TSC frequency).
	FreqGHz float64

	lastAddr int64 // address of the in-flight memory access, for samples

	// Last Branch Record: a small hardware ring of the most recently
	// retired conditional branches (ip, outcome), the x86 LBR facility.
	// The PMU can include a snapshot in each sample, which is how a
	// profile learns per-branch taken fractions for profile-guided
	// branch-sense decisions.
	lbr    [LBRDepth]BranchRecord
	lbrPos int
	lbrLen int
}

// LBRDepth is the capacity of the last-branch-record ring (x86: 16-32).
const LBRDepth = 16

// BranchRecord is one LBR entry: a retired conditional branch and whether
// it was taken.
type BranchRecord struct {
	IP    int
	Taken bool
}

// New creates a CPU with the given heap size in bytes.
func New(heapSize int) *CPU {
	return &CPU{
		Heap:    make([]byte, heapSize),
		caches:  NewHierarchy(),
		bp:      NewBranchPredictor(),
		FreqGHz: 3.5,
	}
}

// Load installs a program and resets execution state (registers, IP, TSC,
// statistics); heap contents are preserved so the host can stage data first.
func (c *CPU) Load(p *isa.Program) {
	c.prog = p
	c.ip = 0
	c.tsc = 0
	c.halted = false
	c.callStack = c.callStack[:0]
	c.Stats = Stats{}
	c.lbrPos, c.lbrLen = 0, 0
	for i := range c.Regs {
		c.Regs[i] = 0
	}
	c.Regs[isa.SP] = int64(len(c.Heap)) // stack grows down from the top
}

// Restart rewinds the instruction pointer for another pass over the same
// program while *keeping* the TSC, statistics and sampling state — the way
// an iterative dataflow re-executes its pipelines within one profiled
// session (§4.2.6 of the paper: iterations are later separated by sample
// timestamps). The caller is responsible for re-staging mutable memory.
func (c *CPU) Restart() {
	c.ip = 0
	c.halted = false
	c.callStack = c.callStack[:0]
}

// CallFunction runs a single function to completion: execution starts at
// entry and ends when the function returns with an empty call stack
// (instead of trapping, the way a stray RET would during a normal Run).
// Registers, TSC, statistics and sampling state are all *kept* across
// calls — a worker CPU in morsel-driven execution invokes the same
// pipeline function once per morsel, accumulating cycles like a real core
// would. maxInstructions bounds this call (0 = unbounded).
func (c *CPU) CallFunction(entry int, maxInstructions uint64) (Stats, error) {
	if c.prog == nil {
		return c.Stats, fmt.Errorf("vm: no program loaded")
	}
	if entry < 0 || entry >= len(c.prog.Code) {
		return c.Stats, fmt.Errorf("vm: call entry %d out of range", entry)
	}
	c.ip = entry
	c.halted = false
	c.callStack = c.callStack[:0]
	c.haltOnRet = true
	defer func() { c.haltOnRet = false }()
	budget := maxInstructions
	if budget > 0 {
		budget += c.Stats.Instructions
	}
	return c.Run(budget)
}

// Arm configures event sampling: hook.Sample is called every period
// occurrences of ev, with each interval randomized by ±jitter/2 (0
// disables randomization). Pass a nil hook to disable sampling.
func (c *CPU) Arm(hook SampleHook, ev Event, period, jitter int64) {
	c.hook = hook
	c.armed = ev
	c.period = period
	c.countdown = period
	c.sampling = hook != nil && period > 0
	c.jitterMask = 0
	if jitter > 1 {
		mask := int64(1)
		for mask < jitter {
			mask <<= 1
		}
		c.jitterMask = mask - 1
	}
	c.jitterRNG = 0x9e3779b97f4a7c15 ^ uint64(period)
}

// ReArm restarts the sampling countdown at a deterministic epoch derived
// from seed, without touching the collected state or the armed period.
// Morsel-driven execution re-arms before every morsel with a seed derived
// from the *global* morsel index, so the positions of count-event samples
// within a morsel depend only on the morsel — never on which worker ran it
// or what that worker executed before. That is what makes merged parallel
// profiles of deterministic events exact across worker counts.
func (c *CPU) ReArm(seed uint64) {
	if !c.sampling {
		return
	}
	c.jitterRNG = 0x9e3779b97f4a7c15 ^ uint64(c.period) ^ (seed*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb)
	if c.jitterRNG == 0 {
		c.jitterRNG = 1
	}
	if c.jitterMask == 0 {
		c.countdown = c.period
	} else {
		c.countdown = c.nextPeriod()
	}
}

// nextPeriod returns the (possibly jittered) next sampling interval.
func (c *CPU) nextPeriod() int64 {
	if c.jitterMask == 0 {
		return c.period
	}
	x := c.jitterRNG
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.jitterRNG = x
	p := c.period + (int64(x)&c.jitterMask - c.jitterMask/2)
	if p < 1 {
		p = 1
	}
	return p
}

// IP returns the current instruction pointer (index into the program).
func (c *CPU) IP() int { return c.ip }

// TSC returns the timestamp counter in cycles.
func (c *CPU) TSC() uint64 { return c.tsc }

// TSCNanos converts a cycle count to nanoseconds at the CPU frequency.
func (c *CPU) TSCNanos(cycles uint64) float64 { return float64(cycles) / c.FreqGHz }

// CallStack returns the current return-address stack (innermost last).
// The returned slice aliases internal state; callers must copy it if they
// retain it (the PMU does).
func (c *CPU) CallStack() []int { return c.callStack }

// LastAddr returns the effective address of the most recent memory access.
func (c *CPU) LastAddr() int64 { return c.lastAddr }

func (c *CPU) event(ev Event, addr int64) {
	if !c.sampling || ev != c.armed {
		return
	}
	c.countdown--
	if c.countdown > 0 {
		return
	}
	c.countdown = c.nextPeriod()
	extra := c.hook.Sample(c, ev, addr)
	c.tsc += extra
	c.Stats.SampleCycles += extra
}

func (c *CPU) mem(addr, width int64) ([]byte, error) {
	if addr < 0 || addr+width > int64(len(c.Heap)) {
		return nil, &TrapError{IP: c.ip, Reason: fmt.Sprintf("memory access out of bounds: addr=%d width=%d heap=%d", addr, width, len(c.Heap))}
	}
	return c.Heap[addr : addr+width], nil
}

// ReadI64 reads a 64-bit value from the heap (host-side helper).
func (c *CPU) ReadI64(addr int64) int64 {
	return int64(binary.LittleEndian.Uint64(c.Heap[addr:]))
}

// WriteI64 writes a 64-bit value to the heap (host-side helper).
func (c *CPU) WriteI64(addr, v int64) {
	binary.LittleEndian.PutUint64(c.Heap[addr:], uint64(v))
}

// Run executes the loaded program until HALT, a trap, or the instruction
// budget is exhausted (0 means no budget). It returns the statistics of
// the run.
func (c *CPU) Run(maxInstructions uint64) (Stats, error) {
	if c.prog == nil {
		return c.Stats, fmt.Errorf("vm: no program loaded")
	}
	code := c.prog.Code
	for !c.halted {
		if maxInstructions > 0 && c.Stats.Instructions >= maxInstructions {
			return c.Stats, fmt.Errorf("vm: instruction budget (%d) exhausted at ip=%d", maxInstructions, c.ip)
		}
		if c.ip < 0 || c.ip >= len(code) {
			return c.Stats, &TrapError{IP: c.ip, Reason: "instruction pointer out of range"}
		}
		in := &code[c.ip]
		if err := c.step(in); err != nil {
			return c.Stats, err
		}
	}
	return c.Stats, nil
}

// step executes one instruction; on return c.ip points at the next
// instruction to execute.
func (c *CPU) step(in *isa.Instr) error {
	ipBefore := c.ip
	next := c.ip + 1
	cost := uint64(CostALU)

	switch in.Op {
	case isa.NOP:
		// nothing

	case isa.MOVRR:
		c.Regs[in.Dst] = c.Regs[in.Src1]
	case isa.MOVRI:
		c.Regs[in.Dst] = in.Imm

	case isa.LOAD8, isa.LOAD32, isa.LOAD64:
		w := in.Width()
		addr := in.Imm
		if !in.Abs {
			addr += c.Regs[in.Src1]
		}
		if in.Scaled {
			addr += c.Regs[in.Src2] * w
		}
		m, err := c.mem(addr, w)
		if err != nil {
			return err
		}
		var v int64
		switch w {
		case 1:
			v = int64(m[0])
		case 4:
			v = int64(int32(binary.LittleEndian.Uint32(m)))
		default:
			v = int64(binary.LittleEndian.Uint64(m))
		}
		c.Regs[in.Dst] = v
		c.lastAddr = addr
		lvl := c.caches.Access(uint64(addr))
		cost = loadCost(lvl)
		c.noteAccess(lvl)
		c.Stats.Loads++
		c.event(EvMemLoads, addr)
		if lvl == HitMem {
			c.event(EvL3Miss, addr)
		}

	case isa.STORE8, isa.STORE32, isa.STORE64:
		w := in.Width()
		addr := in.Imm
		if !in.Abs {
			addr += c.Regs[in.Src1]
		}
		if in.Scaled {
			addr += c.Regs[in.Src2] * w
		}
		m, err := c.mem(addr, w)
		if err != nil {
			return err
		}
		v := c.Regs[in.Dst]
		switch w {
		case 1:
			m[0] = byte(v)
		case 4:
			binary.LittleEndian.PutUint32(m, uint32(v))
		default:
			binary.LittleEndian.PutUint64(m, uint64(v))
		}
		c.lastAddr = addr
		lvl := c.caches.Access(uint64(addr))
		c.noteAccess(lvl)
		cost = CostStore
		c.Stats.Stores++

	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.ROTR, isa.CRC32,
		isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE:
		b := in.Imm
		if !in.UseImm {
			b = c.Regs[in.Src2]
		}
		v, err := alu(in.Op, c.Regs[in.Src1], b, c.ip)
		if err != nil {
			return err
		}
		c.Regs[in.Dst] = v
		cost = aluCost(in.Op)

	case isa.JMP:
		next = int(in.Imm)
		cost = CostBranch

	case isa.JNZ, isa.JZ:
		taken := c.Regs[in.Src1] != 0
		if in.Op == isa.JZ {
			taken = !taken
		}
		if taken {
			next = int(in.Imm)
		}
		cost = c.branchCost(ipBefore, taken)

	case isa.JEQ, isa.JNE, isa.JLT, isa.JGE:
		b := in.Imm
		if !in.UseImm {
			b = c.Regs[in.Src2]
		}
		a := c.Regs[in.Src1]
		var taken bool
		switch in.Op {
		case isa.JEQ:
			taken = a == b
		case isa.JNE:
			taken = a != b
		case isa.JLT:
			taken = a < b
		case isa.JGE:
			taken = a >= b
		}
		if taken {
			next = int(in.Imm2)
		}
		cost = c.branchCost(ipBefore, taken)

	case isa.CALL:
		c.callStack = append(c.callStack, next)
		next = int(in.Imm)
		cost = CostCall
		c.Stats.Calls++

	case isa.RET:
		if len(c.callStack) == 0 {
			if !c.haltOnRet {
				return &TrapError{IP: c.ip, Reason: "ret with empty call stack"}
			}
			// CallFunction mode: returning from the entry function ends
			// the call like HALT ends a program.
			c.halted = true
			cost = CostCall
		} else {
			next = c.callStack[len(c.callStack)-1]
			c.callStack = c.callStack[:len(c.callStack)-1]
			cost = CostCall
		}

	case isa.HALT:
		c.halted = true
	case isa.TRAP:
		return &TrapError{IP: c.ip, Reason: fmt.Sprintf("explicit trap (code %d)", in.Imm)}

	default:
		return &TrapError{IP: c.ip, Reason: fmt.Sprintf("illegal opcode %v", in.Op)}
	}

	c.tsc += cost
	c.Stats.Cycles += cost
	c.Stats.Instructions++
	c.ip = next
	// Retirement events fire after the architectural effects are
	// visible, with the sample's IP pointing at the retiring instruction
	// — matching PEBS "precise distribution" semantics.
	savedIP := c.ip
	c.ip = ipBefore
	c.event(EvInstRetired, c.lastAddr)
	if c.sampling && c.armed == EvCycles {
		c.countdown -= int64(cost)
		if c.countdown <= 0 {
			c.countdown = c.nextPeriod()
			extra := c.hook.Sample(c, EvCycles, c.lastAddr)
			c.tsc += extra
			c.Stats.SampleCycles += extra
		}
	}
	c.ip = savedIP
	return nil
}

func (c *CPU) noteAccess(lvl int) {
	switch lvl {
	case HitL1:
		c.Stats.L1Hits++
	case HitL2:
		c.Stats.L2Hits++
	case HitL3:
		c.Stats.L3Hits++
	default:
		c.Stats.MemAccesses++
	}
}

// LBRSnapshot copies the last-branch-record ring, oldest entry first.
func (c *CPU) LBRSnapshot() []BranchRecord {
	out := make([]BranchRecord, 0, c.lbrLen)
	start := c.lbrPos - c.lbrLen
	if start < 0 {
		start += LBRDepth
	}
	for i := 0; i < c.lbrLen; i++ {
		out = append(out, c.lbr[(start+i)%LBRDepth])
	}
	return out
}

func (c *CPU) branchCost(ip int, taken bool) uint64 {
	c.Stats.Branches++
	c.lbr[c.lbrPos] = BranchRecord{IP: ip, Taken: taken}
	c.lbrPos = (c.lbrPos + 1) % LBRDepth
	if c.lbrLen < LBRDepth {
		c.lbrLen++
	}
	if c.bp.Predict(ip, taken) {
		return CostBranch
	}
	c.Stats.BranchMisses++
	c.ip = ip // event attribution: the miss belongs to the branch
	c.event(EvBranchMiss, c.lastAddr)
	return CostBranch + CostBranchMiss
}

func alu(op isa.Op, a, b int64, ip int) (int64, error) {
	switch op {
	case isa.ADD:
		return a + b, nil
	case isa.SUB:
		return a - b, nil
	case isa.MUL:
		return a * b, nil
	case isa.DIV:
		if b == 0 {
			return 0, &TrapError{IP: ip, Reason: "division by zero"}
		}
		return a / b, nil
	case isa.MOD:
		if b == 0 {
			return 0, &TrapError{IP: ip, Reason: "modulo by zero"}
		}
		return a % b, nil
	case isa.AND:
		return a & b, nil
	case isa.OR:
		return a | b, nil
	case isa.XOR:
		return a ^ b, nil
	case isa.SHL:
		return a << (uint64(b) & 63), nil
	case isa.SHR:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	case isa.ROTR:
		s := uint64(b) & 63
		u := uint64(a)
		return int64(u>>s | u<<(64-s)), nil
	case isa.CRC32:
		// One mixing step of the paper's hash pipeline (crc32 i64 const, v):
		// a cheap, well-mixing combine, not the real CRC polynomial.
		x := uint64(a) ^ uint64(b)*0x9e3779b97f4a7c15
		x ^= x >> 32
		x *= 0xd6e8feb86659fd93
		x ^= x >> 32
		return int64(x), nil
	case isa.CMPEQ:
		return b2i(a == b), nil
	case isa.CMPNE:
		return b2i(a != b), nil
	case isa.CMPLT:
		return b2i(a < b), nil
	case isa.CMPLE:
		return b2i(a <= b), nil
	case isa.CMPGT:
		return b2i(a > b), nil
	case isa.CMPGE:
		return b2i(a >= b), nil
	}
	return 0, &TrapError{IP: ip, Reason: fmt.Sprintf("alu: bad op %v", op)}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
