package vm

import "testing"

func TestCacheL1Hit(t *testing.T) {
	h := NewHierarchy()
	if lvl := h.Access(0x1000); lvl != HitMem {
		t.Fatalf("cold access served by level %d, want memory", lvl)
	}
	if lvl := h.Access(0x1000); lvl != HitL1 {
		t.Fatalf("second access served by level %d, want L1", lvl)
	}
	// Same cache line.
	if lvl := h.Access(0x1038); lvl != HitL1 {
		t.Fatalf("same-line access served by level %d, want L1", lvl)
	}
	// Different line.
	if lvl := h.Access(0x1040); lvl == HitL1 {
		t.Fatal("different line reported as L1 hit on first touch")
	}
}

func TestCacheL1EvictionFallsToL2(t *testing.T) {
	h := NewHierarchy()
	// L1: 32 KiB, 8-way, 64 B lines → 64 sets; addresses 64*64 bytes
	// apart map to the same set. Touch 9 such lines to evict the first.
	const stride = 64 * 64
	for i := 0; i < 9; i++ {
		h.Access(uint64(i * stride))
	}
	if lvl := h.Access(0); lvl != HitL2 {
		t.Fatalf("evicted line served by level %d, want L2", lvl)
	}
}

func TestCacheWorkingSetLevels(t *testing.T) {
	h := NewHierarchy()
	touch := func(bytes int) int {
		// Two passes: first to fill, second to measure.
		worst := 0
		for pass := 0; pass < 2; pass++ {
			worst = 0
			for a := 0; a < bytes; a += 64 {
				lvl := h.Access(uint64(a))
				if lvl > worst {
					worst = lvl
				}
			}
		}
		return worst
	}
	if lvl := touch(16 << 10); lvl != HitL1 {
		t.Errorf("16 KiB working set served at level %d, want L1", lvl)
	}
	if lvl := touch(128 << 10); lvl > HitL2 {
		t.Errorf("128 KiB working set served at level %d, want ≤ L2", lvl)
	}
	if lvl := touch(2 << 20); lvl > HitL3 {
		t.Errorf("2 MiB working set served at level %d, want ≤ L3", lvl)
	}
}

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor()
	misses := 0
	for i := 0; i < 100; i++ {
		if !bp.Predict(42, true) {
			misses++
		}
	}
	if misses > 3 {
		t.Fatalf("always-taken branch mispredicted %d/100 times", misses)
	}
}

func TestBranchPredictorAlternatingHurts(t *testing.T) {
	bp := NewBranchPredictor()
	misses := 0
	for i := 0; i < 100; i++ {
		if !bp.Predict(7, i%2 == 0) {
			misses++
		}
	}
	if misses < 40 {
		t.Fatalf("alternating branch mispredicted only %d/100 times", misses)
	}
}

func TestBranchPredictorIndependentSlots(t *testing.T) {
	bp := NewBranchPredictor()
	for i := 0; i < 10; i++ {
		bp.Predict(1, true)
		bp.Predict(2, false)
	}
	if !bp.Predict(1, true) {
		t.Fatal("slot 1 forgot its taken bias")
	}
	if !bp.Predict(2, false) {
		t.Fatal("slot 2 forgot its not-taken bias")
	}
}
