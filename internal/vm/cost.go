package vm

import "repro/internal/isa"

// Cycle cost model. The absolute values are a deliberately simple in-order
// approximation (the paper's phenomena are about *relative* costs: division
// chains dominating aggregation, directory loads missing caches, branch
// mispredictions separating plans). All constants are documented in
// DESIGN.md §5.
const (
	CostALU        = 1
	CostMul        = 3
	CostDiv        = 20
	CostCRC32      = 3
	CostStore      = 1
	CostBranch     = 1
	CostBranchMiss = 14
	CostCall       = 2

	CostLoadL1  = 4
	CostLoadL2  = 12
	CostLoadL3  = 38
	CostLoadMem = 180
)

func loadCost(level int) uint64 {
	switch level {
	case HitL1:
		return CostLoadL1
	case HitL2:
		return CostLoadL2
	case HitL3:
		return CostLoadL3
	default:
		return CostLoadMem
	}
}

func aluCost(op isa.Op) uint64 {
	switch op {
	case isa.MUL:
		return CostMul
	case isa.DIV, isa.MOD:
		return CostDiv
	case isa.CRC32:
		return CostCRC32
	default:
		return CostALU
	}
}
