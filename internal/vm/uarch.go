package vm

// Microarchitectural models: a three-level set-associative cache hierarchy
// and a table of 2-bit saturating branch-prediction counters. These give the
// simulated CPU the performance phenomena the paper's use cases depend on:
// widespread hash-table accesses miss caches (Fig. 12's memory profiles,
// cache-miss events) and data-dependent branch behaviour separates the two
// query plans of Fig. 10/11.

// Cache memory-level results for a single access.
const (
	HitL1  = 1
	HitL2  = 2
	HitL3  = 3
	HitMem = 4
)

type cacheLevel struct {
	sets      int
	ways      int
	lineShift uint
	tags      []uint64 // sets*ways entries, 0 = empty
	lru       []uint64 // per-line last-use stamp
	clock     uint64
}

func newCacheLevel(sizeBytes, ways, lineBytes int) *cacheLevel {
	sets := sizeBytes / (ways * lineBytes)
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &cacheLevel{
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		tags:      make([]uint64, sets*ways),
		lru:       make([]uint64, sets*ways),
	}
}

// access looks up addr; on miss the line is filled (LRU eviction).
// It returns true on hit.
func (c *cacheLevel) access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	c.clock++
	// Tag 0 marks an empty way, so bias stored tags by 1.
	tag := line + 1
	victim := base
	oldest := ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.lru[i] = c.clock
			return true
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.clock
	return false
}

// Hierarchy models L1/L2/L3 data caches.
type Hierarchy struct {
	l1, l2, l3 *cacheLevel
}

// NewHierarchy builds the default cache hierarchy: 32 KiB/8-way L1,
// 256 KiB/8-way L2, 8 MiB/16-way L3, all with 64-byte lines.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		l1: newCacheLevel(32<<10, 8, 64),
		l2: newCacheLevel(256<<10, 8, 64),
		l3: newCacheLevel(8<<20, 16, 64),
	}
}

// Access classifies a memory access and updates cache state, returning the
// level that served it (HitL1..HitMem).
func (h *Hierarchy) Access(addr uint64) int {
	if h.l1.access(addr) {
		return HitL1
	}
	if h.l2.access(addr) {
		return HitL2
	}
	if h.l3.access(addr) {
		return HitL3
	}
	return HitMem
}

// BranchPredictor is a table of 2-bit saturating counters indexed by the
// branch instruction's address.
type BranchPredictor struct {
	counters []uint8
	mask     int
}

// NewBranchPredictor builds a predictor with 4096 entries.
func NewBranchPredictor() *BranchPredictor {
	n := 4096
	bp := &BranchPredictor{counters: make([]uint8, n), mask: n - 1}
	for i := range bp.counters {
		bp.counters[i] = 1 // weakly not-taken
	}
	return bp
}

// Predict consumes the branch outcome and reports whether the prediction
// was correct, updating the counter.
func (bp *BranchPredictor) Predict(ip int, taken bool) bool {
	c := &bp.counters[ip&bp.mask]
	predictedTaken := *c >= 2
	if taken {
		if *c < 3 {
			*c++
		}
	} else {
		if *c > 0 {
			*c--
		}
	}
	return predictedTaken == taken
}
