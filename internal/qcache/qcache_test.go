package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func key(i int) Key {
	return Key{Fingerprint: uint64(i), Canon: fmt.Sprintf("q%d", i)}
}

// TestHitMissAccounting walks the basic protocol: first lookup computes
// and counts a miss, second lookup is a hit, stats and Len agree.
func TestHitMissAccounting(t *testing.T) {
	c := New[string](4)
	v, hit, err := c.GetOrCompute(key(1), func() (string, error) { return "one", nil })
	if err != nil || hit || v != "one" {
		t.Fatalf("cold: v=%q hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrCompute(key(1), func() (string, error) {
		t.Fatal("recompute on a resolved entry")
		return "", nil
	})
	if err != nil || !hit || v != "one" {
		t.Fatalf("warm: v=%q hit=%v err=%v", v, hit, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

// TestLRUEviction fills past capacity and checks the least-recently-used
// entry is the one dropped, with the eviction counted.
func TestLRUEviction(t *testing.T) {
	c := New[int](2)
	for i := 0; i < 2; i++ {
		c.GetOrCompute(key(i), func() (int, error) { return i, nil })
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	if _, hit, _ := c.GetOrCompute(key(0), func() (int, error) { return -1, nil }); !hit {
		t.Fatal("expected hit on key 0")
	}
	c.GetOrCompute(key(2), func() (int, error) { return 2, nil })
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("key 1 should have been evicted")
	}
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("key 0 (recently used) should survive")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

// TestSingleFlight: 64 goroutines requesting the same key must trigger
// exactly one compute; exactly one caller reports the miss-that-computed,
// and joiners neither hit nor recompute.
func TestSingleFlight(t *testing.T) {
	c := New[int](8)
	var computes atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	hits := atomic.Int32{}
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.GetOrCompute(key(7), func() (int, error) {
				computes.Add(1)
				<-release // hold every other goroutine in the join path
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("v=%d err=%v", v, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	// Let the other 63 goroutines pile up on the pending entry, then
	// release the one compute.
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	// Joining an in-flight compile is not a hit: only lookups that find a
	// resolved entry count.
	st := c.Stats()
	if uint64(hits.Load()) != st.Hits {
		t.Fatalf("reported hits %d != counted hits %d", hits.Load(), st.Hits)
	}
	if st.Hits+st.Misses != 64 {
		t.Fatalf("hits+misses = %d, want 64", st.Hits+st.Misses)
	}
}

// TestErrorsNotCached: a failed compute leaves no entry behind, and the
// next request retries.
func TestErrorsNotCached(t *testing.T) {
	c := New[int](4)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(key(3), func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed compute left %d entries", c.Len())
	}
	v, hit, err := c.GetOrCompute(key(3), func() (int, error) { return 9, nil })
	if err != nil || hit || v != 9 {
		t.Fatalf("retry: v=%d hit=%v err=%v", v, hit, err)
	}
}

// TestInvalidate removes matching resolved entries and counts them; a
// pending entry is dropped on publish instead (never visible stale).
func TestInvalidate(t *testing.T) {
	c := New[int](8)
	for i := 0; i < 4; i++ {
		c.GetOrCompute(key(i), func() (int, error) { return i, nil })
	}
	n := c.Invalidate(func(k Key) bool { return k.Fingerprint%2 == 0 })
	if n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}
	if _, ok := c.Get(key(0)); ok {
		t.Fatal("key 0 should be gone")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("key 1 should survive")
	}
}

// TestInvalidatePending: invalidating while a compute is in flight must
// prevent the stale result from being published, without disturbing the
// value returned to the in-flight callers.
func TestInvalidatePending(t *testing.T) {
	c := New[int](8)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, hit, err := c.GetOrCompute(key(5), func() (int, error) {
			close(started)
			<-release
			return 5, nil
		})
		if err != nil || hit || v != 5 {
			t.Errorf("in-flight caller: v=%d hit=%v err=%v", v, hit, err)
		}
	}()
	<-started
	// Invalidate while pending: not counted (nothing resolved to remove),
	// but the publish must be suppressed.
	if n := c.Invalidate(func(k Key) bool { return true }); n != 0 {
		t.Fatalf("pending invalidation counted %d entries", n)
	}
	close(release)
	<-done
	if _, ok := c.Get(key(5)); ok {
		t.Fatal("dropped pending entry was published anyway")
	}
	// The key computes fresh on the next request.
	v, hit, err := c.GetOrCompute(key(5), func() (int, error) { return 55, nil })
	if err != nil || hit || v != 55 {
		t.Fatalf("post-drop recompute: v=%d hit=%v err=%v", v, hit, err)
	}
}

// TestPut covers direct insertion (the adaptive path publishing a tuned
// artifact): insert, replace, and LRU participation.
func TestPut(t *testing.T) {
	c := New[int](2)
	c.Put(key(1), 10)
	if v, ok := c.Get(key(1)); !ok || v != 10 {
		t.Fatalf("get after put: %d %v", v, ok)
	}
	c.Put(key(1), 11)
	if v, _ := c.Get(key(1)); v != 11 {
		t.Fatalf("replace: %d, want 11", v)
	}
	c.Put(key(2), 20)
	c.Put(key(3), 30)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want capacity 2", c.Len())
	}
}

// TestConcurrentMixedTraffic hammers the cache from many goroutines with
// overlapping keys, puts and invalidations; run under -race this is the
// memory-safety gate, and the accounting must still balance.
func TestConcurrentMixedTraffic(t *testing.T) {
	c := New[int](8)
	var wg sync.WaitGroup
	const G = 16
	const N = 200
	var lookups atomic.Uint64
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				k := key((g + i) % 12)
				switch i % 7 {
				case 3:
					c.Put(k, i)
				case 5:
					c.Invalidate(func(q Key) bool { return q == k })
				default:
					v, _, err := c.GetOrCompute(k, func() (int, error) { return int(k.Fingerprint), nil })
					lookups.Add(1)
					if err != nil {
						t.Errorf("GetOrCompute: %v", err)
					}
					_ = v
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != lookups.Load() {
		t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, lookups.Load())
	}
	if c.Len() > 8 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}
