// Package qcache is a content-addressed LRU cache for compiled-query
// artifacts, with single-flight deduplication of concurrent compiles.
//
// Keys are the full identity of a compilation (DESIGN.md §10): the query
// fingerprint (hash + canonical text, so hash collisions cannot alias
// artifacts), a digest of the compiler options, the catalog version the
// plan was bound against, the PGO generation, and the materialized-view
// generation. Values are opaque to the cache; the engine stores
// *engine.Compiled.
//
// Single-flight: when N goroutines ask for the same absent key, exactly
// one runs the compute function while the rest block on the entry's ready
// channel and then share the result. Failed computes are never cached —
// every waiter observes the leader's error, and the next request retries.
package qcache

import (
	"container/list"
	"sync"
)

// Key identifies one compiled artifact.
type Key struct {
	// Fingerprint is the normalized query text's 64-bit hash; Canon is
	// the text itself, carried to make equality exact under hash
	// collisions.
	Fingerprint uint64
	Canon       string
	// Options is the compiler-options digest (engine.Options.Digest).
	Options uint64
	// Catalog is the catalog version the plan binds against.
	Catalog uint64
	// Generation is the artifact's PGO generation: 0 for unguided
	// compilations, bumped every time adaptive recompilation promotes a
	// hotter profile for this fingerprint.
	Generation uint64
	// View is the materialized-view generation the statement was
	// rewritten (or not rewritten) under: it changes exactly when the
	// set of registered views changes — a new view can newly subsume a
	// cached statement, a dropped one can orphan its rewrite. View
	// refreshes do NOT bump it: refreshes are epoch appends, freshness
	// is decided per execution against the bound snapshot, and keeping
	// the generation stable is what keeps artifacts warm across
	// incremental refresh (the qcache key contract of DESIGN.md §16).
	View uint64
}

// Stats counts cache traffic. Reads are only consistent via Cache.Stats.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Invalidations counts entries dropped by Invalidate (e.g. a stale
	// PGO generation), as opposed to capacity evictions.
	Invalidations uint64
}

// entry is one cache slot. A pending entry (ready still open) is owned by
// the computing leader and is not on the LRU list — it cannot be evicted,
// only invalidated (dropped=true tells the leader not to publish).
type entry[V any] struct {
	key     Key
	val     V
	err     error
	ready   chan struct{}
	elem    *list.Element // nil while pending
	dropped bool
}

// Cache is a fixed-capacity LRU of compiled artifacts. The zero value is
// unusable; call New.
type Cache[V any] struct {
	mu    sync.Mutex
	cap   int
	m     map[Key]*entry[V]
	lru   *list.List // front = most recent; stores *entry[V]
	stats Stats
}

// New creates a cache holding at most capacity resolved entries.
// capacity < 1 is clamped to 1.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{cap: capacity, m: map[Key]*entry[V]{}, lru: list.New()}
}

// GetOrCompute returns the cached value for k, or runs compute to fill
// it. The boolean reports a cache hit (true only when no compute ran on
// behalf of this caller — joining an in-flight compute counts as a miss,
// since the caller pays the compile latency). compute runs without the
// cache lock held.
func (c *Cache[V]) GetOrCompute(k Key, compute func() (V, error)) (V, bool, error) {
	c.mu.Lock()
	if e, ok := c.m[k]; ok {
		if e.elem != nil { // resolved
			c.lru.MoveToFront(e.elem)
			c.stats.Hits++
			c.mu.Unlock()
			return e.val, true, nil
		}
		// Pending: join the in-flight compute.
		c.stats.Misses++
		c.mu.Unlock()
		<-e.ready
		return e.val, false, e.err
	}
	e := &entry[V]{key: k, ready: make(chan struct{})}
	c.m[k] = e
	c.stats.Misses++
	c.mu.Unlock()

	v, err := compute()

	c.mu.Lock()
	e.val, e.err = v, err
	if c.m[k] == e && (err != nil || e.dropped) {
		delete(c.m, k)
	} else if c.m[k] == e {
		e.elem = c.lru.PushFront(e)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return v, false, err
}

// Get returns the cached value for k without computing.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok && e.elem != nil {
		c.lru.MoveToFront(e.elem)
		c.stats.Hits++
		return e.val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Put inserts a resolved value directly (used for adaptive artifacts
// produced outside the single-flight path). It replaces any resolved
// entry under the same key; a pending compute for the key keeps running
// and publishes over it when done.
func (c *Cache[V]) Put(k Key, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		if e.elem == nil {
			return // pending compute owns the key; let it publish
		}
		e.val = v
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &entry[V]{key: k, val: v}
	c.m[k] = e
	e.elem = c.lru.PushFront(e)
	c.evictLocked()
}

// Invalidate removes every entry whose key matches pred. Pending entries
// are marked dropped: the in-flight compute finishes and returns its
// value to waiters but does not publish into the cache.
func (c *Cache[V]) Invalidate(pred func(Key) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, e := range c.m {
		if !pred(k) {
			continue
		}
		if e.elem == nil {
			e.dropped = true
			continue
		}
		c.lru.Remove(e.elem)
		delete(c.m, k)
		c.stats.Invalidations++
		n++
	}
	return n
}

// Len returns the number of resolved entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// evictLocked drops least-recently-used resolved entries beyond capacity.
func (c *Cache[V]) evictLocked() {
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		e := back.Value.(*entry[V])
		c.lru.Remove(back)
		delete(c.m, e.key)
		c.stats.Evictions++
	}
}
