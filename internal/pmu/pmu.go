// Package pmu models the processor's performance monitoring unit in
// Processor Event-Based Sampling mode (PEBS, §2.2 of the paper): every N
// occurrences of an armed hardware event the processor records a sample
// into an in-memory buffer; the kernel is involved only when the buffer
// overflows. Sampling perturbs execution — each record and each buffer
// flush costs cycles that the CPU adds to its TSC — which is exactly what
// the paper's overhead experiment (Fig. 13) measures.
//
// Three record formats mirror the paper's configurations:
//
//	IP+call-stack   — the classic interrupt-based call-stack sampling,
//	                  expensive (529% at 0.7 MHz in the paper);
//	IP+time         — plain PEBS with TSC (35%);
//	IP+time+regs    — PEBS capturing the register file, as Register
//	                  Tagging requires (38%).
package pmu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Format selects what each sample record contains.
type Format struct {
	Timestamp bool
	Registers bool
	CallStack bool
	// LBR captures the CPU's last-branch-record ring with each sample
	// (conditional branches and their outcomes), the input for
	// profile-guided branch-sense and layout decisions.
	LBR bool
}

// Standard formats used throughout the experiments.
var (
	FormatIPTime     = Format{Timestamp: true}
	FormatIPTimeRegs = Format{Timestamp: true, Registers: true}
	FormatCallStack  = Format{Timestamp: true, CallStack: true}
	// FormatPGO is the profile-guided-recompilation format: PEBS with
	// registers (for Register Tagging) plus the LBR ring.
	FormatPGO = Format{Timestamp: true, Registers: true, LBR: true}
)

// RecordBytes returns the storage footprint of one sample record, matching
// the paper's accounting (§6.2): 54 bytes for IP+timestamp+registers,
// 265 bytes when call-stack information is added.
func RecordBytes(f Format) int {
	n := 8 // instruction pointer
	if f.Timestamp {
		n += 8
	}
	if f.Registers {
		n += 38 // register file snapshot (paper: 54 B total)
	}
	if f.CallStack {
		n += 249 // call-stack frames (paper: 265 B total)
	}
	if f.LBR {
		n += 9 * vm.LBRDepth // (ip, outcome) per LBR slot
	}
	return n
}

// Config arms the PMU.
type Config struct {
	Event  vm.Event
	Period int64
	Format Format

	// TagReg is the general-purpose register Register Tagging reserves;
	// its captured value disambiguates shared code locations. Defaults to
	// isa.TagReg.
	TagReg isa.Reg

	// BufferSamples is the PEBS buffer capacity; a flush (kernel
	// involvement) happens when it fills. Zero selects the default.
	BufferSamples int

	// NoJitter disables period randomization. The default randomizes
	// each interval by ±period/16, as perf does, to defeat aliasing
	// between the sampling period and loop bodies (§4.1 of the paper).
	NoJitter bool

	// Worker stamps every sample with the recording core's ID, the way
	// per-hardware-thread PEBS buffers are distinguishable after the
	// bottom-up merge. 0 for single-CPU runs; morsel workers use ≥1.
	Worker int
}

// DefaultBufferSamples is the PEBS buffer capacity used unless overridden.
const DefaultBufferSamples = 1024

// Validate statically checks a sampling configuration before it arms a
// PMU. Misconfigurations otherwise surface as silent weirdness at run
// time (a zero period never samples; an out-of-range tag register reads
// garbage from the captured file), so the engine rejects them up front.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("pmu: sampling period must be positive, got %d", c.Period)
	}
	if c.TagReg >= isa.NumRegs {
		return fmt.Errorf("pmu: tag register %s outside the sampled register file", c.TagReg)
	}
	if c.BufferSamples < 0 {
		return fmt.Errorf("pmu: negative PEBS buffer capacity %d", c.BufferSamples)
	}
	return nil
}

// PMU implements vm.SampleHook, collecting samples and charging costs.
type PMU struct {
	cfg      Config
	samples  []core.Sample
	buffered int
	shard    int

	// Flushes counts PEBS buffer drains (kernel involvement).
	Flushes int
}

// New returns a PMU for the given configuration.
func New(cfg Config) *PMU {
	if cfg.BufferSamples <= 0 {
		cfg.BufferSamples = DefaultBufferSamples
	}
	if cfg.TagReg == 0 {
		cfg.TagReg = isa.TagReg
	}
	return &PMU{cfg: cfg}
}

// Attach arms the CPU with this PMU's event and period.
func (p *PMU) Attach(c *vm.CPU) {
	jitter := p.cfg.Period / 8
	if p.cfg.NoJitter {
		jitter = 0
	}
	c.Arm(p, p.cfg.Event, p.cfg.Period, jitter)
}

// Samples returns the collected samples.
func (p *PMU) Samples() []core.Sample { return p.samples }

// Config returns the active configuration.
func (p *PMU) Config() Config { return p.cfg }

// StorageBytes returns the total sample storage used so far.
func (p *PMU) StorageBytes() int { return len(p.samples) * RecordBytes(p.cfg.Format) }

// SetShard sets the shard stamp applied to subsequent samples (0 =
// unsharded work; shard s is stamped as s+1). The morsel scheduler calls
// it before each morsel so every sample lands in its shard's logical
// sub-buffer, mirroring how Config.Worker splits buffers per core.
func (p *PMU) SetShard(id int) { p.shard = id }

// Sample implements vm.SampleHook.
func (p *PMU) Sample(c *vm.CPU, ev vm.Event, addr int64) uint64 {
	s := core.Sample{IP: c.IP(), Event: ev, Addr: addr, Worker: p.cfg.Worker, Shard: p.shard}
	var cost uint64
	if p.cfg.Format.CallStack {
		// Interrupt-based sampling: the kernel handler walks and stores
		// the call stack on every sample.
		stack := c.CallStack()
		s.Stack = make([]int, len(stack))
		copy(s.Stack, stack)
		s.HasStack = true
		cost = CostCallStackRecord + uint64(len(stack))*CostPerFrame
	} else {
		cost = CostPEBSRecord
		if p.cfg.Format.Registers {
			s.Tag = c.Regs[p.cfg.TagReg] // captured with the register file
			s.HasRegs = true
			cost += CostRegisterCapture
		}
		if p.cfg.Format.LBR {
			s.LBR = c.LBRSnapshot()
			s.HasLBR = true
			cost += CostLBRCapture
		}
		p.buffered++
		if p.buffered >= p.cfg.BufferSamples {
			// Buffer full: the interrupt handler writes samples out.
			p.buffered = 0
			p.Flushes++
			cost += CostBufferFlush
		}
	}
	if p.cfg.Format.Timestamp {
		s.TSC = c.TSC()
	}
	p.samples = append(p.samples, s)
	return cost
}
