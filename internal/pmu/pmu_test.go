package pmu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

// nopProgram returns n NOPs followed by HALT.
func nopProgram(n int) *isa.Program {
	code := make([]isa.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		code = append(code, isa.Instr{Op: isa.NOP})
	}
	code = append(code, isa.Instr{Op: isa.HALT})
	return &isa.Program{Code: code}
}

func runWith(t *testing.T, cfg Config, n int) (*PMU, *vm.CPU) {
	t.Helper()
	c := vm.New(1 << 12)
	c.Load(nopProgram(n))
	p := New(cfg)
	p.Attach(c)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	return p, c
}

func TestRecordBytesMatchPaper(t *testing.T) {
	if got := RecordBytes(FormatIPTimeRegs); got != 54 {
		t.Fatalf("IP+time+regs record = %d B, want 54 (paper §6.2)", got)
	}
	if got := RecordBytes(FormatCallStack); got != 265 {
		t.Fatalf("call-stack record = %d B, want 265 (paper §6.2)", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Event: vm.EvInstRetired, Period: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Event: vm.EvInstRetired},                                   // zero period
		{Event: vm.EvInstRetired, Period: -5},                       // negative period
		{Event: vm.EvInstRetired, Period: 100, TagReg: isa.NumRegs}, // outside register file
		{Event: vm.EvInstRetired, Period: 100, BufferSamples: -1},   // negative buffer
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestSampleCollection(t *testing.T) {
	p, _ := runWith(t, Config{Event: vm.EvInstRetired, Period: 100, Format: FormatIPTime, NoJitter: true}, 1000)
	if got := len(p.Samples()); got != 10 {
		t.Fatalf("samples = %d, want 10", got)
	}
	for _, s := range p.Samples() {
		if s.HasRegs || s.HasStack {
			t.Fatal("IP+time format captured registers or stack")
		}
	}
	if p.StorageBytes() != 10*RecordBytes(FormatIPTime) {
		t.Fatalf("storage = %d", p.StorageBytes())
	}
}

func TestRegisterCapture(t *testing.T) {
	c := vm.New(1 << 12)
	code := []isa.Instr{
		{Op: isa.MOVRI, Dst: isa.TagReg, Imm: 77},
		{Op: isa.NOP},
		{Op: isa.HALT},
	}
	c.Load(&isa.Program{Code: code})
	p := New(Config{Event: vm.EvInstRetired, Period: 2, Format: FormatIPTimeRegs, NoJitter: true})
	p.Attach(c)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	ss := p.Samples()
	if len(ss) == 0 {
		t.Fatal("no samples")
	}
	if !ss[0].HasRegs || ss[0].Tag != 77 {
		t.Fatalf("tag register not captured: %+v", ss[0])
	}
}

func TestCallStackCapture(t *testing.T) {
	c := vm.New(1 << 12)
	code := []isa.Instr{
		{Op: isa.CALL, Imm: 2}, // 0
		{Op: isa.HALT},         // 1
		{Op: isa.NOP},          // 2
		{Op: isa.NOP},          // 3
		{Op: isa.RET},          // 4
	}
	c.Load(&isa.Program{Code: code})
	p := New(Config{Event: vm.EvInstRetired, Period: 1, Format: FormatCallStack, NoJitter: true})
	p.Attach(c)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	foundStack := false
	for _, s := range p.Samples() {
		if s.HasStack && len(s.Stack) == 1 && s.Stack[0] == 1 {
			foundStack = true
		}
	}
	if !foundStack {
		t.Fatal("no sample captured the call stack [1]")
	}
}

func TestBufferFlushes(t *testing.T) {
	p, _ := runWith(t, Config{
		Event: vm.EvInstRetired, Period: 10,
		Format: FormatIPTime, BufferSamples: 16, NoJitter: true,
	}, 10*16*3)
	if p.Flushes != 3 {
		t.Fatalf("flushes = %d, want 3", p.Flushes)
	}
}

func TestCallStackCostsMoreThanPEBS(t *testing.T) {
	_, cheap := runWith(t, Config{Event: vm.EvInstRetired, Period: 50, Format: FormatIPTime, NoJitter: true}, 5000)
	_, costly := runWith(t, Config{Event: vm.EvInstRetired, Period: 50, Format: FormatCallStack, NoJitter: true}, 5000)
	if costly.Stats.SampleCycles <= cheap.Stats.SampleCycles*5 {
		t.Fatalf("call-stack sampling cost (%d) not ≫ PEBS cost (%d)",
			costly.Stats.SampleCycles, cheap.Stats.SampleCycles)
	}
}

func TestRegistersCostSlightlyMore(t *testing.T) {
	_, plain := runWith(t, Config{Event: vm.EvInstRetired, Period: 50, Format: FormatIPTime, NoJitter: true}, 5000)
	_, regs := runWith(t, Config{Event: vm.EvInstRetired, Period: 50, Format: FormatIPTimeRegs, NoJitter: true}, 5000)
	if regs.Stats.SampleCycles <= plain.Stats.SampleCycles {
		t.Fatal("register capture should add cost")
	}
	ratio := float64(regs.Stats.SampleCycles) / float64(plain.Stats.SampleCycles)
	if ratio > 1.2 {
		t.Fatalf("register capture overhead ratio %.2f too large", ratio)
	}
}

func TestTimestampsMonotonic(t *testing.T) {
	p, _ := runWith(t, Config{Event: vm.EvInstRetired, Period: 7, Format: FormatIPTime}, 2000)
	ss := p.Samples()
	for i := 1; i < len(ss); i++ {
		if ss[i].TSC <= ss[i-1].TSC {
			t.Fatalf("TSC not monotonic at %d: %d then %d", i, ss[i-1].TSC, ss[i].TSC)
		}
	}
}
