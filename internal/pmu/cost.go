package pmu

// Sampling cost model in cycles. The constants are calibrated so that, at
// the paper's default sampling period of one sample per 5000 retired
// instructions (≈0.7 MHz on their machine), the measured end-to-end
// overheads land near the paper's §6.2 numbers:
//
//	IP+time sampling:          ≈35%
//	IP+time+registers:         ≈38% (Register Tagging adds ≈3%)
//	IP+call-stack sampling:    ≈529%
//
// The cycle-event period of 5000 corresponds to 0.7 MHz on the simulated
// 3.5 GHz clock, so the calibration is direct: 35% overhead ⇒ ~1750
// cycles per PEBS record, +3% ⇒ ~150 cycles for the register file, and
// 529% ⇒ ~26.5k cycles per interrupt-based call-stack sample. See
// DESIGN.md §5.
const (
	// CostPEBSRecord is the cost of the hardware writing one PEBS record.
	CostPEBSRecord = 1750
	// CostRegisterCapture is the extra cost of including the register file.
	CostRegisterCapture = 150
	// CostBufferFlush is the kernel interrupt handler draining the buffer.
	CostBufferFlush = 40000
	// CostCallStackRecord is the base cost of an interrupt-based sample.
	CostCallStackRecord = 26000
	// CostPerFrame is added per call-stack frame walked.
	CostPerFrame = 150
	// CostLBRCapture is the extra cost of dumping the last-branch-record
	// ring into a sample (like PEBS + LBR on x86: a modest addition, the
	// ring is hardware-maintained).
	CostLBRCapture = 120
)
