package ir

import "fmt"

// Verify checks structural invariants of the module: every block ends in a
// terminator, phi argument counts match predecessor counts, operands
// produce values, targets belong to the same function, and instruction IDs
// are unique. The engine verifies after construction and after every
// optimization pass in tests.
func (m *Module) Verify() error {
	seen := make(map[int]*Instr, m.InstrCount())
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: function %s has no blocks", f.Name)
		}
		blockSet := make(map[*Block]bool, len(f.Blocks))
		for _, b := range f.Blocks {
			blockSet[b] = true
		}
		for _, b := range f.Blocks {
			if err := verifyBlock(f, b, blockSet, seen); err != nil {
				return err
			}
		}
	}
	return nil
}

func verifyBlock(f *Func, b *Block, blockSet map[*Block]bool, seen map[int]*Instr) error {
	if len(b.Instrs) == 0 {
		return fmt.Errorf("ir: %s.%s is empty", f.Name, b.Name)
	}
	t := b.Terminator()
	if t == nil {
		return fmt.Errorf("ir: %s.%s lacks a terminator", f.Name, b.Name)
	}
	for i, in := range b.Instrs {
		if prev, dup := seen[in.ID]; dup {
			return fmt.Errorf("ir: duplicate instruction ID %%%d (%s and %s)", in.ID, prev.Op, in.Op)
		}
		seen[in.ID] = in
		if in.Block != b {
			return fmt.Errorf("ir: %%%d has wrong owner block", in.ID)
		}
		if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
			return fmt.Errorf("ir: %s.%s has terminator %s mid-block", f.Name, b.Name, in.Op)
		}
		if in.Op == OpPhi {
			if i > 0 && b.Instrs[i-1].Op != OpPhi {
				return fmt.Errorf("ir: %s.%s phi %%%d not at block head", f.Name, b.Name, in.ID)
			}
			if len(in.Args) != len(b.Preds) {
				return fmt.Errorf("ir: %s.%s phi %%%d has %d incoming values for %d preds",
					f.Name, b.Name, in.ID, len(in.Args), len(b.Preds))
			}
		}
		for _, a := range in.Args {
			if a == nil {
				return fmt.Errorf("ir: %%%d has nil operand", in.ID)
			}
			if a.Type == Void {
				return fmt.Errorf("ir: %%%d uses void value %%%d", in.ID, a.ID)
			}
		}
		for _, tgt := range in.Targets {
			if !blockSet[tgt] {
				return fmt.Errorf("ir: %%%d targets block %s outside function %s", in.ID, tgt.Name, f.Name)
			}
		}
	}
	return nil
}
