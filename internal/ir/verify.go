package ir

import "fmt"

// Problem is one structural defect found by (*Module).Check. The Code is a
// stable identifier the verification framework (internal/verify) keys its
// diagnostics and golden tests on; Msg is the human-readable rendering.
type Problem struct {
	Code  string // stable check identifier, e.g. "no-terminator"
	Func  string
	Block string
	Instr int // offending instruction ID, 0 for block-level problems
	Msg   string
}

func (p Problem) String() string {
	loc := p.Func
	if p.Block != "" {
		loc += "." + p.Block
	}
	if p.Instr != 0 {
		loc += fmt.Sprintf(" %%%d", p.Instr)
	}
	return fmt.Sprintf("ir[%s] %s: %s", p.Code, loc, p.Msg)
}

// Verify checks the module's structural invariants and returns the first
// problem as an error, or nil. It is a thin wrapper over Check, kept so
// the many existing call sites (engine, pipeline, tests) stay one-line;
// the full battery — and the per-problem structured form the verification
// framework consumes — lives in Check.
func (m *Module) Verify() error {
	if ps := m.Check(); len(ps) > 0 {
		return fmt.Errorf("ir: %s", ps[0].String())
	}
	return nil
}

// Check runs the full IR well-formedness battery over the module:
//
//   - shape: every function has blocks, every block is non-empty and ends
//     in exactly one terminator, instruction IDs are unique, instructions
//     know their owner block, branch targets stay inside the function;
//   - CFG: each block's Preds list agrees (as a multiset) with the branch
//     edges actually pointing at it;
//   - phis: grouped at the block head, one incoming value per predecessor;
//   - SSA: no nil or void operands, every use is dominated by its
//     definition (same-block uses must follow the definition, phi
//     incoming values must dominate the corresponding predecessor);
//   - types: per-opcode operand counts and result types (comparisons
//     produce i1, loads i64, stores/branches void, ...).
//
// Problems are reported in deterministic order (function, block,
// instruction position). Unreachable blocks are exempt from dominance
// checking — dominator sets are only meaningful on reachable code.
func (m *Module) Check() []Problem {
	var ps []Problem
	seen := make(map[int]*Instr, m.InstrCount())
	for _, f := range m.Funcs {
		ps = append(ps, checkFunc(f, seen)...)
	}
	return ps
}

func checkFunc(f *Func, seen map[int]*Instr) []Problem {
	var ps []Problem
	add := func(code string, b *Block, in *Instr, format string, args ...interface{}) {
		p := Problem{Code: code, Func: f.Name, Msg: fmt.Sprintf(format, args...)}
		if b != nil {
			p.Block = b.Name
		}
		if in != nil {
			p.Instr = in.ID
		}
		ps = append(ps, p)
	}

	if len(f.Blocks) == 0 {
		add("no-blocks", nil, nil, "function has no blocks")
		return ps
	}
	blockSet := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blockSet[b] = true
	}

	// Edge multiset: how many terminator edges point at each block from
	// each predecessor.
	type edge struct{ from, to *Block }
	edges := map[edge]int{}

	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			add("empty-block", b, nil, "block is empty")
			continue
		}
		if b.Terminator() == nil {
			add("no-terminator", b, nil, "block lacks a terminator")
		}
		pos := make(map[*Instr]int, len(b.Instrs))
		for i, in := range b.Instrs {
			pos[in] = i
			if prev, dup := seen[in.ID]; dup {
				add("dup-id", b, in, "duplicate instruction ID (%s and %s)", prev.Op, in.Op)
			}
			seen[in.ID] = in
			if in.Block != b {
				add("wrong-owner", b, in, "instruction records wrong owner block")
			}
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				add("mid-terminator", b, in, "terminator %s mid-block", in.Op)
			}
			if in.Op == OpPhi {
				if i > 0 && b.Instrs[i-1].Op != OpPhi {
					add("phi-not-at-head", b, in, "phi not at block head")
				}
				if len(in.Args) != len(b.Preds) {
					add("phi-arity", b, in, "%d incoming values for %d preds", len(in.Args), len(b.Preds))
				}
			}
			for _, a := range in.Args {
				if a == nil {
					add("nil-operand", b, in, "nil operand")
					continue
				}
				if a.Type == Void {
					add("void-operand", b, in, "uses void value %%%d", a.ID)
				}
			}
			for _, tgt := range in.Targets {
				if !blockSet[tgt] {
					add("foreign-target", b, in, "targets block %s outside function", tgt.Name)
				}
			}
			if msg := checkTypes(f, in); msg != "" {
				add("type", b, in, "%s", msg)
			}
		}
		if t := b.Terminator(); t != nil {
			for _, tgt := range t.Targets {
				if blockSet[tgt] {
					edges[edge{b, tgt}]++
				}
			}
		}
	}

	// Preds agreement: the recorded predecessor list must be exactly the
	// incoming edge multiset (phi incoming values are parallel to Preds,
	// so a missing or surplus entry silently misroutes dataflow).
	for _, b := range f.Blocks {
		recorded := map[*Block]int{}
		for _, p := range b.Preds {
			recorded[p]++
		}
		for _, p := range f.Blocks {
			want := edges[edge{p, b}]
			if recorded[p] != want {
				add("pred-mismatch", b, nil,
					"records %d preds from %s, CFG has %d edges", recorded[p], p.Name, want)
			}
		}
	}

	ps = append(ps, checkDominance(f)...)
	return ps
}

// checkTypes enforces the per-opcode operand/result shape. The type system
// is deliberately loose where the optimizer legitimately changes types
// (constant folding rewrites an i1 comparison into an i64 OpConst, so
// branch conditions and phi inputs only require non-void values).
func checkTypes(f *Func, in *Instr) string {
	argc := func(n int) string {
		if len(in.Args) != n {
			return fmt.Sprintf("%s expects %d operands, has %d", in.Op, n, len(in.Args))
		}
		return ""
	}
	switch in.Op {
	case OpConst:
		if len(in.Args) != 0 {
			return "const takes no operands"
		}
		if in.Type == Void {
			return "const produces no value"
		}
	case OpParam:
		if len(in.Args) != 0 {
			return "param takes no operands"
		}
		if in.Imm < 0 || int(in.Imm) >= f.NumParams {
			return fmt.Sprintf("param #%d out of range (function has %d)", in.Imm, f.NumParams)
		}
	case OpAdd, OpSub, OpMul, OpSDiv, OpSMod, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpRotr:
		if msg := argc(2); msg != "" {
			return msg
		}
		if in.Type != I64 {
			return fmt.Sprintf("%s must produce i64, produces %s", in.Op, in.Type)
		}
	case OpCrc32:
		// One operand plus Imm, or two operands (see the Op docs).
		if len(in.Args) != 1 && len(in.Args) != 2 {
			return fmt.Sprintf("crc32 expects 1 or 2 operands, has %d", len(in.Args))
		}
		if in.Type != I64 {
			return fmt.Sprintf("crc32 must produce i64, produces %s", in.Type)
		}
	case OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe:
		if msg := argc(2); msg != "" {
			return msg
		}
		if in.Type != I1 {
			return fmt.Sprintf("%s must produce i1, produces %s", in.Op, in.Type)
		}
	case OpLoad8, OpLoad32, OpLoad64:
		if msg := argc(1); msg != "" {
			return msg
		}
		if in.Type != I64 {
			return fmt.Sprintf("%s must produce i64, produces %s", in.Op, in.Type)
		}
	case OpStore8, OpStore32, OpStore64:
		if msg := argc(2); msg != "" {
			return msg
		}
		if in.Type != Void {
			return "store must not produce a value"
		}
	case OpBr:
		if len(in.Args) != 0 || len(in.Targets) != 1 {
			return "br expects 0 operands and 1 target"
		}
	case OpCondBr:
		if len(in.Args) != 1 || len(in.Targets) != 2 {
			return "condbr expects 1 operand and 2 targets"
		}
	case OpRet:
		if len(in.Args) > 1 {
			return "ret expects at most 1 operand"
		}
	case OpCall:
		if in.Callee == "" {
			return "call without callee symbol"
		}
	case OpSetTag:
		if msg := argc(1); msg != "" {
			return msg
		}
		if in.Type != Void {
			return "settag must not produce a value"
		}
	case OpGetTag:
		if len(in.Args) != 0 {
			return "gettag takes no operands"
		}
		if in.Type != I64 {
			return "gettag must produce i64"
		}
	case OpHalt, OpTrap:
		if len(in.Args) != 0 {
			return fmt.Sprintf("%s takes no operands", in.Op)
		}
	}
	return ""
}

// checkDominance verifies the SSA rule: every use is dominated by its
// definition. Non-phi uses in the same block must come after the
// definition; phi incoming values must be defined in a block dominating
// the corresponding predecessor (the value flows along that edge).
func checkDominance(f *Func) []Problem {
	var ps []Problem
	reach := f.Reachable()
	dom := f.Dominators()
	pos := map[*Instr]int{}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			pos[in] = i
		}
	}
	dominates := func(def *Block, use *Block) bool { return dom[use][def] }

	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		for i, in := range b.Instrs {
			for ai, a := range in.Args {
				if a == nil || a.Block == nil {
					continue // reported by the shape checks
				}
				if in.Op == OpPhi {
					if ai >= len(b.Preds) {
						continue // reported as phi-arity
					}
					pred := b.Preds[ai]
					if !reach[pred] {
						continue
					}
					if a.Block != pred && !dominates(a.Block, pred) {
						ps = append(ps, Problem{
							Code: "dominance", Func: f.Name, Block: b.Name, Instr: in.ID,
							Msg: fmt.Sprintf("phi incoming %%%d (block %s) does not dominate pred %s",
								a.ID, a.Block.Name, pred.Name),
						})
					}
					continue
				}
				if a.Block == b {
					if pos[a] >= i {
						ps = append(ps, Problem{
							Code: "use-before-def", Func: f.Name, Block: b.Name, Instr: in.ID,
							Msg: fmt.Sprintf("uses %%%d before its definition", a.ID),
						})
					}
				} else if !dominates(a.Block, b) {
					ps = append(ps, Problem{
						Code: "dominance", Func: f.Name, Block: b.Name, Instr: in.ID,
						Msg: fmt.Sprintf("definition %%%d in %s does not dominate use",
							a.ID, a.Block.Name),
					})
				}
			}
		}
	}
	return ps
}

// Reachable returns the blocks reachable from the entry.
func (f *Func) Reachable() map[*Block]bool {
	reach := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs() {
			walk(s)
		}
	}
	if len(f.Blocks) > 0 {
		walk(f.Entry())
	}
	return reach
}

// Dominators computes, for every block, the set of blocks that dominate it
// (iterative dataflow; the CFGs here are tiny). Shared by the optimizer's
// loop-invariant code motion and the IR verifier.
func (f *Func) Dominators() map[*Block]map[*Block]bool {
	entry := f.Entry()
	dom := make(map[*Block]map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if b == entry {
			dom[b] = map[*Block]bool{b: true}
			continue
		}
		s := make(map[*Block]bool, len(f.Blocks))
		for _, x := range f.Blocks {
			s[x] = true
		}
		dom[b] = s
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if b == entry {
				continue
			}
			var inter map[*Block]bool
			for _, p := range b.Preds {
				if inter == nil {
					inter = make(map[*Block]bool, len(dom[p]))
					for k := range dom[p] {
						inter[k] = true
					}
					continue
				}
				for k := range inter {
					if !dom[p][k] {
						delete(inter, k)
					}
				}
			}
			if inter == nil {
				inter = map[*Block]bool{}
			}
			inter[b] = true
			// Sets only shrink, so a length change means a real change.
			if len(inter) != len(dom[b]) {
				dom[b] = inter
				changed = true
			}
		}
	}
	return dom
}
