// Package ir defines the intermediate representation the dataflow system
// lowers pipelines into — the analogue of LLVM IR in the paper (Fig. 8c,
// Listing 1). It is a conventional SSA IR: functions of basic blocks,
// instructions producing at most one value, phi nodes at block heads,
// explicit terminators.
//
// Every instruction carries a process-unique ID. Those IDs are the keys of
// the Tagging Dictionary's Log B (IR instruction → task): the lowering code
// in internal/pipeline registers each created instruction with the active
// task, and the optimizer in internal/iropt reports every transformation
// through a lineage callback so links stay correct (Table 1 of the paper).
package ir

import "fmt"

// Type is an IR value type. The engine computes exclusively on 64-bit
// integers (strings are dictionary-encoded, dates are day numbers), so the
// type system stays minimal.
type Type uint8

const (
	Void Type = iota
	I1        // comparison results
	I64       // integers and pointers
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I1:
		return "i1"
	case I64:
		return "i64"
	}
	return "?"
}

// Op is an IR opcode.
type Op uint8

const (
	OpConst Op = iota // Imm
	OpParam           // function parameter #Imm

	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpRotr
	OpCrc32 // hash mixing step, Imm holds the constant when Args has 1 element

	OpCmpEq
	OpCmpNe
	OpCmpLt
	OpCmpLe
	OpCmpGt
	OpCmpGe

	OpLoad8
	OpLoad32
	OpLoad64
	OpStore8 // Args[0]=addr, Args[1]=value
	OpStore32
	OpStore64

	OpPhi    // Args parallel to Block.Preds
	OpBr     // unconditional; Targets[0]
	OpCondBr // Args[0]=cond; Targets[0]=then, Targets[1]=else
	OpRet    // optional Args[0]
	OpCall   // Callee symbol, Args = arguments

	OpSetTag // Args[0]=value to write into the tag register
	OpGetTag // reads the tag register

	OpHalt
	OpTrap // Imm = trap code
)

var opNames = map[Op]string{
	OpConst: "const", OpParam: "param",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSMod: "smod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpRotr: "rotr", OpCrc32: "crc32",
	OpCmpEq: "cmpeq", OpCmpNe: "cmpne", OpCmpLt: "cmplt", OpCmpLe: "cmple",
	OpCmpGt: "cmpgt", OpCmpGe: "cmpge",
	OpLoad8: "load8", OpLoad32: "load32", OpLoad64: "load64",
	OpStore8: "store8", OpStore32: "store32", OpStore64: "store64",
	OpPhi: "phi", OpBr: "br", OpCondBr: "condbr", OpRet: "ret", OpCall: "call",
	OpSetTag: "settag", OpGetTag: "gettag",
	OpHalt: "halt", OpTrap: "trap",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether the op must end a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpBr, OpCondBr, OpRet, OpHalt, OpTrap:
		return true
	}
	return false
}

// IsPure reports whether the instruction has no side effects and its result
// depends only on its operands (candidates for CSE/DCE/constant folding).
func (o Op) IsPure() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpRotr,
		OpCrc32, OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe,
		OpConst:
		return true
		// Division is pure except for the divide-by-zero trap; the optimizer
		// treats it as CSE-able but not dead-code-removable unless the divisor
		// is a non-zero constant. IsPure stays conservative here.
	}
	return false
}

// Instr is one IR instruction. Instructions are identified by ID; the
// ID namespace is per Module and never reused, so the Tagging Dictionary
// can key links by ID across optimization passes.
type Instr struct {
	ID      int
	Op      Op
	Type    Type
	Args    []*Instr
	Imm     int64
	Callee  string   // for OpCall: runtime routine or function symbol
	Targets []*Block // for terminators
	Block   *Block

	// Comment carries a human-readable note rendered by the printer
	// (e.g. "directory lookup"), purely cosmetic.
	Comment string
}

// NumValue reports whether the instruction produces an SSA value.
func (in *Instr) NumValue() bool { return in.Type != Void }

func (in *Instr) String() string {
	return fmt.Sprintf("%%%d = %s", in.ID, in.Op)
}

// Block is a basic block.
type Block struct {
	Name   string
	Instrs []*Instr
	Preds  []*Block
	Func   *Func
}

// Terminator returns the block's final instruction, or nil if the block is
// still under construction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the block's successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Targets
}

// Func is an IR function.
type Func struct {
	Name      string
	NumParams int
	Blocks    []*Block
	Module    *Module
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Module is a compilation unit: all pipeline functions of one query plus
// the driver main.
type Module struct {
	Funcs  []*Func
	nextID int
}

// NewModule returns an empty module.
func NewModule() *Module { return &Module{} }

// NewFunc appends a new function with a single entry block.
func (m *Module) NewFunc(name string, numParams int) *Func {
	f := &Func{Name: name, NumParams: numParams, Module: m}
	b := &Block{Name: "entry", Func: f}
	f.Blocks = append(f.Blocks, b)
	m.Funcs = append(m.Funcs, f)
	return f
}

// NewID allocates a fresh instruction ID.
func (m *Module) NewID() int {
	m.nextID++
	return m.nextID
}

// MaxID returns the highest allocated instruction ID.
func (m *Module) MaxID() int { return m.nextID }

// FuncByName finds a function by symbol name, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// InstrCount returns the total number of instructions in the module.
func (m *Module) InstrCount() int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// ForEachInstr visits every instruction in deterministic order.
func (m *Module) ForEachInstr(fn func(*Func, *Block, *Instr)) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				fn(f, b, in)
			}
		}
	}
}
