package ir

import (
	"strings"
	"testing"
)

func buildLoop(t *testing.T) (*Module, *Func) {
	t.Helper()
	m := NewModule()
	f := m.NewFunc("main", 0)
	b := NewBuilder(f)
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	done := b.NewBlock("done")
	zero := b.Const(0)
	n := b.Const(10)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi()
	AddIncoming(i, zero)
	cond := b.Bin(OpCmpLt, i, n)
	b.CondBr(cond, body, done)
	b.SetBlock(body)
	i2 := b.Add(i, b.Const(1))
	AddIncoming(i, i2)
	b.Br(head)
	b.SetBlock(done)
	b.Halt()
	return m, f
}

func TestBuilderProducesValidIR(t *testing.T) {
	m, f := buildLoop(t)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	head := f.Blocks[1]
	if len(head.Preds) != 2 {
		t.Fatalf("head preds = %d", len(head.Preds))
	}
	if succs := head.Succs(); len(succs) != 2 {
		t.Fatalf("head succs = %d", len(succs))
	}
}

func TestUniqueIDs(t *testing.T) {
	m, _ := buildLoop(t)
	seen := map[int]bool{}
	m.ForEachInstr(func(_ *Func, _ *Block, in *Instr) {
		if seen[in.ID] {
			t.Fatalf("duplicate id %d", in.ID)
		}
		seen[in.ID] = true
	})
	if len(seen) != m.InstrCount() {
		t.Fatal("ForEachInstr count mismatch")
	}
}

func TestOnCreateHook(t *testing.T) {
	m := NewModule()
	f := m.NewFunc("f", 0)
	b := NewBuilder(f)
	var created []int
	b.OnCreate = func(in *Instr) { created = append(created, in.ID) }
	b.Const(1)
	b.Halt()
	if len(created) != 2 {
		t.Fatalf("OnCreate fired %d times", len(created))
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule()
	f := m.NewFunc("f", 0)
	b := NewBuilder(f)
	b.Const(1) // no terminator
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyCatchesEmptyBlock(t *testing.T) {
	m := NewModule()
	f := m.NewFunc("f", 0)
	b := NewBuilder(f)
	b.NewBlock("empty")
	b.Halt()
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyCatchesPhiArityMismatch(t *testing.T) {
	m := NewModule()
	f := m.NewFunc("f", 0)
	b := NewBuilder(f)
	head := b.NewBlock("head")
	b.Br(head)
	b.SetBlock(head)
	b.Phi() // zero incoming for one pred
	b.Halt()
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "incoming") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	m := NewModule()
	f := m.NewFunc("f", 0)
	b := NewBuilder(f)
	blk2 := b.NewBlock("b2")
	b.Br(blk2)
	b.SetBlock(blk2)
	h := b.Halt()
	// Sneak an instruction after the terminator behind the builder's back.
	extra := &Instr{ID: m.NewID(), Op: OpConst, Type: I64, Block: blk2}
	blk2.Instrs = append(blk2.Instrs, extra)
	_ = h
	if err := m.Verify(); err == nil {
		t.Fatal("expected mid-block terminator error")
	}
}

func TestVerifyCatchesVoidOperand(t *testing.T) {
	m := NewModule()
	f := m.NewFunc("f", 0)
	b := NewBuilder(f)
	st := b.Store(64, b.Const(8), b.Const(1))
	// Abuse: make another instruction consume the void store.
	bad := &Instr{ID: m.NewID(), Op: OpAdd, Type: I64, Args: []*Instr{st, st}, Block: b.Cur}
	b.Cur.Instrs = append(b.Cur.Instrs, bad)
	b.Halt()
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "void") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderPanicsOnTerminatedBlock(t *testing.T) {
	m := NewModule()
	f := m.NewFunc("f", 0)
	b := NewBuilder(f)
	b.Halt()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on emitting into terminated block")
		}
	}()
	b.Const(1)
}

func TestPrinterRendersListingShapes(t *testing.T) {
	m, f := buildLoop(t)
	_ = m
	out := f.Print(nil)
	for _, want := range []string{"func main", "head:", "phi", "condbr", "cmplt", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q:\n%s", want, out)
		}
	}
}

func TestPrinterAnnotations(t *testing.T) {
	m, f := buildLoop(t)
	_ = m
	out := f.Print(testAnnotator{})
	if !strings.Contains(out, "42.0%") || !strings.Contains(out, "hash join") {
		t.Fatalf("annotations missing:\n%s", out)
	}
	if !strings.Contains(out, "(hot)") {
		t.Fatalf("block header missing:\n%s", out)
	}
}

type testAnnotator struct{}

func (testAnnotator) Prefix(in *Instr) string     { return "42.0%" }
func (testAnnotator) Suffix(in *Instr) string     { return "hash join" }
func (testAnnotator) BlockHeader(b *Block) string { return "(hot)" }

func TestFormatInstrVariants(t *testing.T) {
	m := NewModule()
	f := m.NewFunc("f", 1)
	b := NewBuilder(f)
	p := b.Param(0)
	c := b.Const(7)
	call := b.Call("ht_insert", true, p, c)
	b.Store(64, call, c)
	b.SetTag(c)
	g := b.GetTag()
	_ = g
	b.Trap(3)
	checks := []string{"param 0", "const i64 7", "call @ht_insert", "store64", "settag", "gettag", "trap 3"}
	out := f.Print(nil)
	for _, want := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestIsPureClassification(t *testing.T) {
	pure := []Op{OpAdd, OpMul, OpCrc32, OpCmpEq, OpConst}
	impure := []Op{OpLoad64, OpStore64, OpCall, OpPhi, OpBr, OpSetTag, OpSDiv}
	for _, op := range pure {
		if !op.IsPure() {
			t.Errorf("%v should be pure", op)
		}
	}
	for _, op := range impure {
		if op.IsPure() {
			t.Errorf("%v should not be pure", op)
		}
	}
}

func TestFuncByName(t *testing.T) {
	m := NewModule()
	m.NewFunc("a", 0)
	m.NewFunc("b", 0)
	if m.FuncByName("b") == nil || m.FuncByName("z") != nil {
		t.Fatal("FuncByName lookup broken")
	}
}
