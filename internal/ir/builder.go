package ir

// Builder constructs IR with a current-insertion-point API, the way the
// dataflow system's code generator emits instructions during the
// produce/consume traversal.
//
// OnCreate, when set, is invoked for every created instruction; the
// pipeline lowering uses it to register each instruction with the active
// task in the Tagging Dictionary (the paper's "single code location"
// through which all instruction generation is funnelled, §5.2).
type Builder struct {
	Func     *Func
	Cur      *Block
	OnCreate func(*Instr)
}

// NewBuilder returns a builder positioned at f's entry block.
func NewBuilder(f *Func) *Builder {
	return &Builder{Func: f, Cur: f.Entry()}
}

// NewBlock appends a new block to the function (does not move the
// insertion point).
func (b *Builder) NewBlock(name string) *Block {
	blk := &Block{Name: name, Func: b.Func}
	b.Func.Blocks = append(b.Func.Blocks, blk)
	return blk
}

// SetBlock moves the insertion point to blk.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

func (b *Builder) emit(in *Instr) *Instr {
	if t := b.Cur.Terminator(); t != nil {
		bugf("emitting %s into terminated block %s", in.Op, b.Cur.Name)
	}
	in.ID = b.Func.Module.NewID()
	in.Block = b.Cur
	b.Cur.Instrs = append(b.Cur.Instrs, in)
	if b.OnCreate != nil {
		b.OnCreate(in)
	}
	return in
}

// Const materializes an integer constant.
func (b *Builder) Const(v int64) *Instr {
	return b.emit(&Instr{Op: OpConst, Type: I64, Imm: v})
}

// Param references function parameter i.
func (b *Builder) Param(i int) *Instr {
	if i >= b.Func.NumParams {
		bug("parameter index out of range")
	}
	return b.emit(&Instr{Op: OpParam, Type: I64, Imm: int64(i)})
}

// Bin emits a binary arithmetic/logic instruction.
func (b *Builder) Bin(op Op, x, y *Instr) *Instr {
	t := I64
	switch op {
	case OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe:
		t = I1
	}
	return b.emit(&Instr{Op: op, Type: t, Args: []*Instr{x, y}})
}

func (b *Builder) Add(x, y *Instr) *Instr  { return b.Bin(OpAdd, x, y) }
func (b *Builder) Sub(x, y *Instr) *Instr  { return b.Bin(OpSub, x, y) }
func (b *Builder) Mul(x, y *Instr) *Instr  { return b.Bin(OpMul, x, y) }
func (b *Builder) SDiv(x, y *Instr) *Instr { return b.Bin(OpSDiv, x, y) }
func (b *Builder) And(x, y *Instr) *Instr  { return b.Bin(OpAnd, x, y) }
func (b *Builder) Xor(x, y *Instr) *Instr  { return b.Bin(OpXor, x, y) }
func (b *Builder) Shl(x, y *Instr) *Instr  { return b.Bin(OpShl, x, y) }
func (b *Builder) Shr(x, y *Instr) *Instr  { return b.Bin(OpShr, x, y) }
func (b *Builder) Rotr(x, y *Instr) *Instr { return b.Bin(OpRotr, x, y) }

// Crc32 emits one hash mixing step combining a constant with a value, as in
// the paper's generated hash pipelines (Listing 1 lines %7, %8).
func (b *Builder) Crc32(c *Instr, v *Instr) *Instr { return b.Bin(OpCrc32, c, v) }

// Load emits a load of the given width (8, 32 or 64 bits) from addr.
func (b *Builder) Load(width int, addr *Instr) *Instr {
	var op Op
	switch width {
	case 8:
		op = OpLoad8
	case 32:
		op = OpLoad32
	case 64:
		op = OpLoad64
	default:
		bug("bad load width")
	}
	return b.emit(&Instr{Op: op, Type: I64, Args: []*Instr{addr}})
}

// Store emits a store of the given width to addr.
func (b *Builder) Store(width int, addr, val *Instr) *Instr {
	var op Op
	switch width {
	case 8:
		op = OpStore8
	case 32:
		op = OpStore32
	case 64:
		op = OpStore64
	default:
		bug("bad store width")
	}
	return b.emit(&Instr{Op: op, Type: Void, Args: []*Instr{addr, val}})
}

// Phi emits a phi node; the caller appends incoming values with AddIncoming
// as predecessor edges are created.
func (b *Builder) Phi() *Instr {
	return b.emit(&Instr{Op: OpPhi, Type: I64})
}

// AddIncoming appends an incoming value to a phi, parallel to the owning
// block's Preds list.
func AddIncoming(phi *Instr, v *Instr) {
	if phi.Op != OpPhi {
		bug("AddIncoming on non-phi")
	}
	phi.Args = append(phi.Args, v)
}

// Br terminates the current block with an unconditional branch.
func (b *Builder) Br(target *Block) *Instr {
	in := b.emit(&Instr{Op: OpBr, Type: Void, Targets: []*Block{target}})
	target.Preds = append(target.Preds, b.Cur)
	return in
}

// CondBr terminates the current block with a conditional branch.
func (b *Builder) CondBr(cond *Instr, then, els *Block) *Instr {
	in := b.emit(&Instr{Op: OpCondBr, Type: Void, Args: []*Instr{cond}, Targets: []*Block{then, els}})
	then.Preds = append(then.Preds, b.Cur)
	els.Preds = append(els.Preds, b.Cur)
	return in
}

// Ret terminates the current block with a return; v may be nil.
func (b *Builder) Ret(v *Instr) *Instr {
	in := &Instr{Op: OpRet, Type: Void}
	if v != nil {
		in.Args = []*Instr{v}
	}
	return b.emit(in)
}

// Call emits a call to the named function. hasResult selects whether the
// call produces a value (runtime allocation routines return pointers).
func (b *Builder) Call(callee string, hasResult bool, args ...*Instr) *Instr {
	t := Void
	if hasResult {
		t = I64
	}
	return b.emit(&Instr{Op: OpCall, Type: t, Callee: callee, Args: args})
}

// SetTag writes v into the reserved tag register (Register Tagging).
func (b *Builder) SetTag(v *Instr) *Instr {
	return b.emit(&Instr{Op: OpSetTag, Type: Void, Args: []*Instr{v}})
}

// GetTag reads the reserved tag register.
func (b *Builder) GetTag() *Instr {
	return b.emit(&Instr{Op: OpGetTag, Type: I64})
}

// Halt terminates the program (only valid in the driver main).
func (b *Builder) Halt() *Instr {
	return b.emit(&Instr{Op: OpHalt, Type: Void})
}

// Trap emits a runtime error with the given code.
func (b *Builder) Trap(code int64) *Instr {
	return b.emit(&Instr{Op: OpTrap, Type: Void, Imm: code})
}
