package ir

import (
	"fmt"
	"strings"
)

// Annotator supplies the per-line decorations the profiler attaches to IR
// listings (sample percentages and owning operators, Fig. 6b). A nil
// Annotator prints a plain listing.
type Annotator interface {
	// Prefix returns the text printed before the instruction (e.g. "32.1%").
	Prefix(in *Instr) string
	// Suffix returns the text printed after the instruction (e.g. "hash join").
	Suffix(in *Instr) string
	// BlockHeader returns extra text for a block label line
	// (e.g. "(tablescan 2.4% hash join 45.7%)").
	BlockHeader(b *Block) string
}

// Print renders a function as text.
func (f *Func) Print(a Annotator) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%d args):\n", f.Name, f.NumParams)
	for _, b := range f.Blocks {
		hdr := ""
		if a != nil {
			hdr = a.BlockHeader(b)
		}
		if hdr != "" {
			fmt.Fprintf(&sb, "%s: %s\n", b.Name, hdr)
		} else {
			fmt.Fprintf(&sb, "%s:\n", b.Name)
		}
		for _, in := range b.Instrs {
			prefix, suffix := "", ""
			if a != nil {
				prefix = a.Prefix(in)
				suffix = a.Suffix(in)
			}
			line := formatInstr(in)
			if in.Comment != "" {
				line += " ; " + in.Comment
			}
			if suffix != "" {
				fmt.Fprintf(&sb, "  %8s %-60s %s\n", prefix, line, suffix)
			} else if prefix != "" {
				fmt.Fprintf(&sb, "  %8s %s\n", prefix, line)
			} else {
				fmt.Fprintf(&sb, "  %s\n", line)
			}
		}
	}
	return sb.String()
}

// Print renders the whole module.
func (m *Module) Print(a Annotator) string {
	var sb strings.Builder
	for _, f := range m.Funcs {
		sb.WriteString(f.Print(a))
		sb.WriteString("\n")
	}
	return sb.String()
}

func formatInstr(in *Instr) string {
	ref := func(a *Instr) string { return fmt.Sprintf("%%%d", a.ID) }
	args := make([]string, len(in.Args))
	for i, a := range in.Args {
		args[i] = ref(a)
	}
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%%%d = const i64 %d", in.ID, in.Imm)
	case OpParam:
		return fmt.Sprintf("%%%d = param %d", in.ID, in.Imm)
	case OpPhi:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			name := "?"
			if i < len(in.Block.Preds) {
				name = in.Block.Preds[i].Name
			}
			parts[i] = fmt.Sprintf("[%s, %%%s]", ref(a), name)
		}
		return fmt.Sprintf("%%%d = phi %s", in.ID, strings.Join(parts, " "))
	case OpBr:
		return fmt.Sprintf("br %%%s", in.Targets[0].Name)
	case OpCondBr:
		return fmt.Sprintf("condbr %s %%%s %%%s", args[0], in.Targets[0].Name, in.Targets[1].Name)
	case OpRet:
		if len(in.Args) == 0 {
			return "ret"
		}
		return fmt.Sprintf("ret %s", args[0])
	case OpCall:
		if in.Type == Void {
			return fmt.Sprintf("call @%s(%s)", in.Callee, strings.Join(args, ", "))
		}
		return fmt.Sprintf("%%%d = call @%s(%s)", in.ID, in.Callee, strings.Join(args, ", "))
	case OpStore8, OpStore32, OpStore64:
		return fmt.Sprintf("%s %s, %s", in.Op, args[0], args[1])
	case OpSetTag:
		return fmt.Sprintf("settag %s", args[0])
	case OpGetTag:
		return fmt.Sprintf("%%%d = gettag", in.ID)
	case OpHalt:
		return "halt"
	case OpTrap:
		return fmt.Sprintf("trap %d", in.Imm)
	default:
		return fmt.Sprintf("%%%d = %s %s %s", in.ID, in.Op, in.Type, strings.Join(args, ", "))
	}
}

// FormatInstr renders a single instruction (exported for reports).
func FormatInstr(in *Instr) string { return formatInstr(in) }
