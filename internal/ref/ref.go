// Package ref is a straightforward interpreted executor over the catalog.
// It evaluates physical plans host-side (hash maps and Go loops, no code
// generation) and serves two purposes: it is the correctness oracle every
// compiled query is tested against, and it stands in for the interpreted
// baseline compiling engines are usually compared with.
package ref

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/plan"
)

// Execute runs a plan and returns the result rows (ORDER BY and LIMIT
// applied). Plans with bound parameters need ExecuteWith.
func Execute(pl *plan.Output) ([][]int64, error) { return ExecuteWith(pl, nil) }

// ExecuteWith runs a plan with bound-parameter values (indexed by $N).
// params must hold exactly len(pl.Params) values — the same encoded
// arguments the compiled artifact would be staged with, so compiled and
// interpreted runs stay comparable row for row.
func ExecuteWith(pl *plan.Output, params []int64) ([][]int64, error) {
	if len(params) != len(pl.Params) {
		return nil, fmt.Errorf("ref: plan expects %d bound parameters, got %d", len(pl.Params), len(params))
	}
	ex := &executor{params: params}
	return ex.run(pl)
}

// executor threads the bound-parameter values through evaluation.
type executor struct {
	params []int64
}

func (ex *executor) run(pl *plan.Output) ([][]int64, error) {
	in, err := ex.eval(pl.Input)
	if err != nil {
		return nil, err
	}
	rows := make([][]int64, 0, len(in))
	for _, r := range in {
		out := make([]int64, len(pl.Exprs))
		for i, e := range pl.Exprs {
			v, err := ex.evalExpr(e, r)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		rows = append(rows, out)
	}
	less := plan.RowLess(pl.OrderBy, pl.Desc, pl.Out())
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
	if pl.Limit >= 0 && len(rows) > pl.Limit {
		rows = rows[:pl.Limit]
	}
	return rows, nil
}

func (ex *executor) eval(n plan.Node) ([][]int64, error) {
	switch x := n.(type) {
	case *plan.Scan:
		return ex.evalScan(x)
	case *plan.Join:
		return ex.evalJoin(x)
	case *plan.GroupBy:
		return ex.evalGroupBy(x)
	case *plan.GroupJoin:
		return ex.evalGroupJoin(x)
	case *plan.Output:
		return ex.run(x)
	}
	return nil, fmt.Errorf("ref: unknown node %T", n)
}

func (ex *executor) evalScan(s *plan.Scan) ([][]int64, error) {
	var out [][]int64
	n := s.Table.Rows()
	cols := make([]*catalog.Column, len(s.Cols))
	for i, ci := range s.Cols {
		cols[i] = s.Table.Cols[ci]
	}
	for r := 0; r < n; r++ {
		row := make([]int64, len(cols))
		for i, c := range cols {
			row[i] = c.Data[r]
		}
		if s.Filter != nil {
			v, err := ex.evalExpr(s.Filter, row)
			if err != nil {
				return nil, err
			}
			if v == 0 {
				continue
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func (ex *executor) evalJoin(j *plan.Join) ([][]int64, error) {
	build, err := ex.eval(j.Build)
	if err != nil {
		return nil, err
	}
	probe, err := ex.eval(j.Probe)
	if err != nil {
		return nil, err
	}
	ht := make(map[int64][][]int64, len(build))
	for _, r := range build {
		k, err := ex.evalExpr(j.BuildKey, r)
		if err != nil {
			return nil, err
		}
		ht[k] = append(ht[k], r)
	}
	var out [][]int64
	for _, pr := range probe {
		k, err := ex.evalExpr(j.ProbeKey, pr)
		if err != nil {
			return nil, err
		}
		for _, br := range ht[k] {
			row := append(append([]int64{}, pr...), pick(br, j.Payload)...)
			out = append(out, row)
		}
	}
	return out, nil
}

func pick(row []int64, idx []int) []int64 {
	out := make([]int64, len(idx))
	for i, p := range idx {
		out[i] = row[p]
	}
	return out
}

// aggState accumulates one group's aggregates.
type aggState struct {
	keys []int64
	sums []int64
	cnts []int64
	set  []bool
}

func newAggState(keys []int64, n int) *aggState {
	return &aggState{keys: keys, sums: make([]int64, n), cnts: make([]int64, n), set: make([]bool, n)}
}

func (ex *executor) update(st *aggState, aggs []plan.AggSpec, row []int64) error {
	for i, a := range aggs {
		var v int64
		if a.Arg != nil {
			var err error
			v, err = ex.evalExpr(a.Arg, row)
			if err != nil {
				return err
			}
		}
		switch a.Fn {
		case plan.AggSum, plan.AggAvg:
			st.sums[i] += v
			st.cnts[i]++
		case plan.AggCount:
			st.cnts[i]++
		case plan.AggMin:
			if !st.set[i] || v < st.sums[i] {
				st.sums[i] = v
			}
		case plan.AggMax:
			if !st.set[i] || v > st.sums[i] {
				st.sums[i] = v
			}
		}
		st.set[i] = true
	}
	return nil
}

func (st *aggState) row(aggs []plan.AggSpec) []int64 {
	out := make([]int64, 0, len(st.keys)+len(aggs))
	out = append(out, st.keys...)
	for i, a := range aggs {
		switch a.Fn {
		case plan.AggSum, plan.AggMin, plan.AggMax:
			out = append(out, st.sums[i])
		case plan.AggCount:
			out = append(out, st.cnts[i])
		case plan.AggAvg:
			out = append(out, st.sums[i]/st.cnts[i])
		}
	}
	return out
}

func (ex *executor) aggregate(in [][]int64, keys []plan.PExpr, aggs []plan.AggSpec) ([][]int64, error) {
	groups := map[[2]int64]*aggState{}
	var order [][2]int64
	for _, r := range in {
		var mk [2]int64
		kv := make([]int64, len(keys))
		for i, ke := range keys {
			v, err := ex.evalExpr(ke, r)
			if err != nil {
				return nil, err
			}
			kv[i] = v
			mk[i] = v
		}
		st, ok := groups[mk]
		if !ok {
			st = newAggState(kv, len(aggs))
			groups[mk] = st
			order = append(order, mk)
		}
		if err := ex.update(st, aggs, r); err != nil {
			return nil, err
		}
	}
	out := make([][]int64, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k].row(aggs))
	}
	return out, nil
}

func (ex *executor) evalGroupBy(g *plan.GroupBy) ([][]int64, error) {
	in, err := ex.eval(g.Input)
	if err != nil {
		return nil, err
	}
	return ex.aggregate(in, g.Keys, g.Aggs)
}

// evalGroupJoin evaluates the fused operator by its definition: aggregate
// the join result by the (unique) build key.
func (ex *executor) evalGroupJoin(g *plan.GroupJoin) ([][]int64, error) {
	j := &plan.Join{
		Build: g.Build, Probe: g.Probe,
		BuildKey: g.BuildKey, ProbeKey: g.ProbeKey,
		BuildUnique: true,
	}
	in, err := ex.evalJoin(j)
	if err != nil {
		return nil, err
	}
	return ex.aggregate(in, []plan.PExpr{g.ProbeKey}, g.Aggs)
}

func (ex *executor) evalExpr(e plan.PExpr, row []int64) (int64, error) {
	switch x := e.(type) {
	case *plan.PConst:
		return x.Val, nil
	case *plan.PParam:
		if x.Idx < 0 || x.Idx >= len(ex.params) {
			return 0, fmt.Errorf("ref: parameter $%d out of %d bound values", x.Idx, len(ex.params))
		}
		return ex.params[x.Idx], nil
	case *plan.PCol:
		if x.Pos < 0 || x.Pos >= len(row) {
			return 0, fmt.Errorf("ref: column %d out of row width %d", x.Pos, len(row))
		}
		return row[x.Pos], nil
	case *plan.PBin:
		l, err := ex.evalExpr(x.L, row)
		if err != nil {
			return 0, err
		}
		r, err := ex.evalExpr(x.R, row)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case plan.OpAdd:
			return l + r, nil
		case plan.OpSub:
			return l - r, nil
		case plan.OpMul:
			return l * r, nil
		case plan.OpDiv:
			if r == 0 {
				return 0, fmt.Errorf("ref: division by zero")
			}
			return l / r, nil
		case plan.OpMod:
			if r == 0 {
				return 0, fmt.Errorf("ref: modulo by zero")
			}
			return l % r, nil
		case plan.OpEq:
			return b2i(l == r), nil
		case plan.OpNe:
			return b2i(l != r), nil
		case plan.OpLt:
			return b2i(l < r), nil
		case plan.OpLe:
			return b2i(l <= r), nil
		case plan.OpGt:
			return b2i(l > r), nil
		case plan.OpGe:
			return b2i(l >= r), nil
		case plan.OpAnd:
			return b2i(l != 0 && r != 0), nil
		case plan.OpOr:
			return b2i(l != 0 || r != 0), nil
		}
	}
	return 0, fmt.Errorf("ref: cannot evaluate %T", e)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
