package ref

import (
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
)

func scanOf(t *testing.T, rows [][2]int64) *plan.Scan {
	t.Helper()
	tb := catalog.NewTable("t")
	a := tb.AddCol("a", catalog.TInt)
	b := tb.AddCol("b", catalog.TInt)
	for _, r := range rows {
		a.Data = append(a.Data, r[0])
		b.Data = append(b.Data, r[1])
	}
	return &plan.Scan{Table: tb, Alias: "t", Cols: []int{0, 1}}
}

func TestScanFilter(t *testing.T) {
	s := scanOf(t, [][2]int64{{1, 10}, {2, 20}, {3, 30}})
	s.Filter = &plan.PBin{Op: plan.OpGt, L: &plan.PCol{Pos: 1}, R: &plan.PConst{Val: 15}}
	out := &plan.Output{
		Input: s,
		Exprs: []plan.PExpr{&plan.PCol{Pos: 0}},
		Names: []string{"a"},
		Limit: -1,
	}
	got, err := Execute(out)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{2}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestJoinMultiMatch(t *testing.T) {
	build := scanOf(t, [][2]int64{{1, 100}, {1, 200}, {2, 300}})
	probe := scanOf(t, [][2]int64{{1, 7}, {2, 8}, {9, 9}})
	j := &plan.Join{
		Build: build, Probe: probe,
		BuildKey: &plan.PCol{Pos: 0}, ProbeKey: &plan.PCol{Pos: 0},
		Payload: []int{1},
	}
	out := &plan.Output{
		Input: j,
		Exprs: []plan.PExpr{&plan.PCol{Pos: 1}, &plan.PCol{Pos: 2}},
		Names: []string{"pv", "bv"},
		Limit: -1,
	}
	got, err := Execute(out)
	if err != nil {
		t.Fatal(err)
	}
	// Probe row (1,7) matches two build rows; (2,8) one; (9,9) none.
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
}

func TestAggregates(t *testing.T) {
	s := scanOf(t, [][2]int64{{1, 10}, {1, 30}, {2, 5}})
	g := &plan.GroupBy{
		Input:    s,
		Keys:     []plan.PExpr{&plan.PCol{Pos: 0}},
		KeyMetas: []plan.ColMeta{{Name: "k"}},
		Aggs: []plan.AggSpec{
			{Fn: plan.AggSum, Arg: &plan.PCol{Pos: 1}, Name: "s"},
			{Fn: plan.AggAvg, Arg: &plan.PCol{Pos: 1}, Name: "a"},
			{Fn: plan.AggMin, Arg: &plan.PCol{Pos: 1}, Name: "mn"},
			{Fn: plan.AggMax, Arg: &plan.PCol{Pos: 1}, Name: "mx"},
			{Fn: plan.AggCount, Name: "c"},
		},
	}
	out := &plan.Output{
		Input: g,
		Exprs: []plan.PExpr{
			&plan.PCol{Pos: 0}, &plan.PCol{Pos: 1}, &plan.PCol{Pos: 2},
			&plan.PCol{Pos: 3}, &plan.PCol{Pos: 4}, &plan.PCol{Pos: 5},
		},
		Names:   []string{"k", "s", "a", "mn", "mx", "c"},
		OrderBy: []int{0},
		Desc:    []bool{false},
		Limit:   -1,
	}
	got, err := Execute(out)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{
		{1, 40, 20, 10, 30, 2},
		{2, 5, 5, 5, 5, 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	s := scanOf(t, [][2]int64{{1, 10}, {2, 30}, {3, 20}})
	out := &plan.Output{
		Input:   s,
		Exprs:   []plan.PExpr{&plan.PCol{Pos: 0}, &plan.PCol{Pos: 1}},
		Names:   []string{"a", "b"},
		OrderBy: []int{1},
		Desc:    []bool{true},
		Limit:   2,
	}
	got, err := Execute(out)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{2, 30}, {3, 20}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestDivisionByZeroError(t *testing.T) {
	s := scanOf(t, [][2]int64{{1, 0}})
	out := &plan.Output{
		Input: s,
		Exprs: []plan.PExpr{&plan.PBin{Op: plan.OpDiv, L: &plan.PCol{Pos: 0}, R: &plan.PCol{Pos: 1}}},
		Names: []string{"q"},
		Limit: -1,
	}
	if _, err := Execute(out); err == nil {
		t.Fatal("expected division error")
	}
}

func TestBooleanOperators(t *testing.T) {
	s := scanOf(t, [][2]int64{{1, 0}, {0, 1}, {1, 1}, {0, 0}})
	s.Filter = &plan.PBin{Op: plan.OpAnd, L: &plan.PCol{Pos: 0}, R: &plan.PCol{Pos: 1}}
	out := &plan.Output{
		Input: s,
		Exprs: []plan.PExpr{&plan.PCol{Pos: 0}},
		Names: []string{"a"},
		Limit: -1,
	}
	got, err := Execute(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("AND filter kept %d rows", len(got))
	}
}
