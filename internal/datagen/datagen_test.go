package datagen

import (
	"testing"

	"repro/internal/catalog"
)

func gen(t *testing.T, sf float64, seed uint64) *catalog.Catalog {
	t.Helper()
	return Generate(Config{ScaleFactor: sf, Seed: seed})
}

func TestDeterministic(t *testing.T) {
	a := gen(t, 0.1, 7)
	b := gen(t, 0.1, 7)
	for _, name := range a.Names() {
		ta, _ := a.Table(name)
		tb, _ := b.Table(name)
		if ta.Rows() != tb.Rows() {
			t.Fatalf("%s: row counts differ", name)
		}
		for ci := range ta.Cols {
			for r := 0; r < ta.Rows(); r++ {
				if ta.Cols[ci].Data[r] != tb.Cols[ci].Data[r] {
					t.Fatalf("%s.%s row %d differs", name, ta.Cols[ci].Name, r)
				}
			}
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	a := gen(t, 0.1, 1)
	b := gen(t, 0.1, 2)
	ta, _ := a.Table("orders")
	tb, _ := b.Table("orders")
	same := true
	for r := 0; r < ta.Rows() && r < 100; r++ {
		if ta.Col("o_totalprice").Data[r] != tb.Col("o_totalprice").Data[r] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical prices")
	}
}

func TestAllTablesPresent(t *testing.T) {
	c := gen(t, 0.1, 3)
	for _, name := range []string{"lineitem", "orders", "part", "partsupp", "supplier", "customer", "sales", "products"} {
		tb, err := c.Table(name)
		if err != nil {
			t.Fatalf("missing table %s", name)
		}
		if tb.Rows() == 0 {
			t.Fatalf("table %s empty", name)
		}
		if err := tb.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScaling(t *testing.T) {
	small, _ := gen(t, 0.2, 1).Table("orders")
	big, _ := gen(t, 1.0, 1).Table("orders")
	if big.Rows() <= small.Rows() {
		t.Fatalf("scaling broken: %d vs %d", small.Rows(), big.Rows())
	}
	if big.Rows() != 15000 {
		t.Fatalf("SF 1.0 orders = %d, want 15000", big.Rows())
	}
}

// TestLineitemOrderedByOrderkey checks the physical ordering the Fig. 10/11
// use case depends on.
func TestLineitemOrderedByOrderkey(t *testing.T) {
	c := gen(t, 0.5, 9)
	li, _ := c.Table("lineitem")
	keys := li.Col("l_orderkey").Data
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatalf("lineitem not ordered by orderkey at row %d", i)
		}
	}
}

// TestOrderdateCorrelatesWithOrderkey checks the date/key correlation
// (±30 days jitter around a linear ramp).
func TestOrderdateCorrelatesWithOrderkey(t *testing.T) {
	c := gen(t, 1.0, 9)
	o, _ := c.Table("orders")
	dates := o.Col("o_orderdate").Data
	n := len(dates)
	span := catalog.DateOf(1998, 8, 2)
	for i, d := range dates {
		expect := span * int64(i) / int64(n)
		if d < expect-31 || d > expect+31 {
			t.Fatalf("row %d: date %d too far from ramp %d", i, d, expect)
		}
	}
}

// TestForeignKeysValid checks referential integrity of the generated data.
func TestForeignKeysValid(t *testing.T) {
	c := gen(t, 0.3, 4)
	li, _ := c.Table("lineitem")
	orders, _ := c.Table("orders")
	parts, _ := c.Table("part")
	sales, _ := c.Table("sales")
	products, _ := c.Table("products")

	maxOrder := int64(orders.Rows())
	maxPart := int64(parts.Rows())
	for i, k := range li.Col("l_orderkey").Data {
		if k < 1 || k > maxOrder {
			t.Fatalf("lineitem %d: bad orderkey %d", i, k)
		}
	}
	for i, k := range li.Col("l_partkey").Data {
		if k < 1 || k > maxPart {
			t.Fatalf("lineitem %d: bad partkey %d", i, k)
		}
	}
	maxProduct := int64(products.Rows())
	for i, k := range sales.Col("id").Data {
		if k < 1 || k > maxProduct {
			t.Fatalf("sales %d: bad product id %d", i, k)
		}
	}
}

// TestDivisorsNonZero guards the intro query's division chain.
func TestDivisorsNonZero(t *testing.T) {
	c := gen(t, 0.5, 5)
	s, _ := c.Table("sales")
	for i := range s.Col("vat_factor").Data {
		if s.Col("vat_factor").Data[i] <= 0 || s.Col("prod_costs").Data[i] <= 0 {
			t.Fatalf("sales row %d has non-positive divisor", i)
		}
	}
}

// TestChipDominates checks the category weighting the Fig. 6 profile
// shape depends on.
func TestChipDominates(t *testing.T) {
	c := gen(t, 1.0, 6)
	p, _ := c.Table("products")
	cat := p.Col("category")
	chip, ok := cat.Dict.Lookup("Chip")
	if !ok {
		t.Fatal("no Chip category")
	}
	n := 0
	for _, v := range cat.Data {
		if v == chip {
			n++
		}
	}
	frac := float64(n) / float64(len(cat.Data))
	if frac < 0.3 || frac > 0.5 {
		t.Fatalf("Chip share = %v, want ~0.4", frac)
	}
}

// TestUniqueKeysMarked checks the primary keys used for group-join fusion
// and arena sizing.
func TestUniqueKeysMarked(t *testing.T) {
	c := gen(t, 0.1, 8)
	for _, tc := range []struct{ table, col string }{
		{"orders", "o_orderkey"}, {"part", "p_partkey"},
		{"products", "id"}, {"customer", "c_custkey"}, {"supplier", "s_suppkey"},
	} {
		tb, _ := c.Table(tc.table)
		col := tb.Col(tc.col)
		if !col.Unique {
			t.Errorf("%s.%s not marked unique", tc.table, tc.col)
		}
		seen := map[int64]bool{}
		for _, v := range col.Data {
			if seen[v] {
				t.Fatalf("%s.%s has duplicate %d", tc.table, tc.col, v)
			}
			seen[v] = true
		}
	}
}

func TestLinesPerOrderInRange(t *testing.T) {
	c := gen(t, 0.5, 10)
	li, _ := c.Table("lineitem")
	orders, _ := c.Table("orders")
	counts := map[int64]int{}
	for _, k := range li.Col("l_orderkey").Data {
		counts[k]++
	}
	if len(counts) != orders.Rows() {
		t.Fatalf("%d orders have lines, want %d", len(counts), orders.Rows())
	}
	for k, n := range counts {
		if n < 1 || n > 7 {
			t.Fatalf("order %d has %d lines", k, n)
		}
	}
}
