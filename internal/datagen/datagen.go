// Package datagen produces deterministic TPC-H-like tables plus the
// sales/products tables from the paper's introduction example.
//
// It is the substitute for dbgen (DESIGN.md §1): the generated data keeps
// exactly the physical properties the paper's use cases depend on —
// lineitem is stored in l_orderkey order, and o_orderdate grows with
// o_orderkey (plus jitter), so that a date filter on orders passes a
// prefix of the orderkey range and the branch-prediction phenomenon of
// Fig. 10/11 *emerges* from the data rather than being scripted.
package datagen

import (
	"repro/internal/catalog"
	"repro/internal/xrand"
)

// Date converts a calendar date into its day-number encoding
// (see catalog.DateEpoch).
func Date(y, m, d int) int64 { return catalog.DateOf(y, m, d) }

// Config scales the generated dataset. ScaleFactor 1.0 corresponds to
// TPC-H SF 0.01 (15k orders, ~60k lineitems) — sized for a simulated CPU;
// the workload *shape* (relative table sizes, key distributions) follows
// TPC-H.
type Config struct {
	ScaleFactor float64
	Seed        uint64
}

// Sizes derived from the scale factor.
func (c Config) orders() int    { return max(64, int(15000*c.ScaleFactor)) }
func (c Config) parts() int     { return max(32, int(2000*c.ScaleFactor)) }
func (c Config) suppliers() int { return max(16, int(100*c.ScaleFactor)) }
func (c Config) customers() int { return max(32, int(1500*c.ScaleFactor)) }
func (c Config) products() int  { return max(32, int(1000*c.ScaleFactor)) }
func (c Config) sales() int     { return max(128, int(20000*c.ScaleFactor)) }

// Generate builds the full catalog.
func Generate(cfg Config) *catalog.Catalog {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 1
	}
	cat := catalog.New()
	r := xrand.New(cfg.Seed ^ 0xdb9e)
	cat.Add(genPart(cfg, r))
	cat.Add(genSupplier(cfg, r))
	cat.Add(genCustomer(cfg, r))
	orders := genOrders(cfg, r)
	cat.Add(orders)
	cat.Add(genLineitem(cfg, r, orders))
	cat.Add(genPartsupp(cfg, r))
	cat.Add(genProducts(cfg, r))
	cat.Add(genSales(cfg, r))
	return cat
}

var partCategories = []string{"Chip", "Board", "Case", "Cable", "Tool", "Display"}
var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var brands = []string{"Brand#11", "Brand#12", "Brand#21", "Brand#22", "Brand#31"}

func genPart(cfg Config, r *xrand.Rand) *catalog.Table {
	n := cfg.parts()
	t := catalog.NewTable("part")
	key := t.AddCol("p_partkey", catalog.TInt)
	key.Unique = true
	cat := t.AddCol("p_category", catalog.TStr)
	brand := t.AddCol("p_brand", catalog.TStr)
	price := t.AddCol("p_retailprice", catalog.TInt)
	size := t.AddCol("p_size", catalog.TInt)
	for i := 0; i < n; i++ {
		key.Data = append(key.Data, int64(i+1))
		cat.Data = append(cat.Data, cat.Dict.ID(partCategories[r.Intn(len(partCategories))]))
		brand.Data = append(brand.Data, brand2(brand, r))
		price.Data = append(price.Data, r.Int64Range(100, 10000))
		size.Data = append(size.Data, r.Int64Range(1, 50))
	}
	return t
}

func brand2(c *catalog.Column, r *xrand.Rand) int64 {
	return c.Dict.ID(brands[r.Intn(len(brands))])
}

func genSupplier(cfg Config, r *xrand.Rand) *catalog.Table {
	n := cfg.suppliers()
	t := catalog.NewTable("supplier")
	key := t.AddCol("s_suppkey", catalog.TInt)
	key.Unique = true
	nation := t.AddCol("s_nationkey", catalog.TInt)
	bal := t.AddCol("s_acctbal", catalog.TInt)
	for i := 0; i < n; i++ {
		key.Data = append(key.Data, int64(i+1))
		nation.Data = append(nation.Data, r.Int64Range(0, 24))
		bal.Data = append(bal.Data, r.Int64Range(-999, 9999))
	}
	return t
}

func genCustomer(cfg Config, r *xrand.Rand) *catalog.Table {
	n := cfg.customers()
	t := catalog.NewTable("customer")
	key := t.AddCol("c_custkey", catalog.TInt)
	key.Unique = true
	nation := t.AddCol("c_nationkey", catalog.TInt)
	seg := t.AddCol("c_mktsegment", catalog.TStr)
	bal := t.AddCol("c_acctbal", catalog.TInt)
	for i := 0; i < n; i++ {
		key.Data = append(key.Data, int64(i+1))
		nation.Data = append(nation.Data, r.Int64Range(0, 24))
		seg.Data = append(seg.Data, seg.Dict.ID(segments[r.Intn(len(segments))]))
		bal.Data = append(bal.Data, r.Int64Range(-999, 9999))
	}
	return t
}

// genOrders makes o_orderdate increase with o_orderkey (±30 days of
// jitter) across 1992-01-01..1998-08-02, mimicking how TPC-H order keys
// correlate with time and enabling the Fig. 10/11 use case.
func genOrders(cfg Config, r *xrand.Rand) *catalog.Table {
	n := cfg.orders()
	t := catalog.NewTable("orders")
	key := t.AddCol("o_orderkey", catalog.TInt)
	key.Unique = true
	cust := t.AddCol("o_custkey", catalog.TInt)
	date := t.AddCol("o_orderdate", catalog.TDate)
	total := t.AddCol("o_totalprice", catalog.TInt)
	span := Date(1998, 8, 2)
	for i := 0; i < n; i++ {
		key.Data = append(key.Data, int64(i+1))
		cust.Data = append(cust.Data, r.Int64Range(1, int64(cfg.customers())))
		base := span * int64(i) / int64(n)
		jit := r.Int64Range(-30, 30)
		d := base + jit
		if d < 0 {
			d = 0
		}
		if d > span {
			d = span
		}
		date.Data = append(date.Data, d)
		total.Data = append(total.Data, r.Int64Range(1000, 500000))
	}
	return t
}

// genLineitem emits 1–7 lines per order, physically ordered by
// l_orderkey — the data-layout property the optimizer use case hinges on.
func genLineitem(cfg Config, r *xrand.Rand, orders *catalog.Table) *catalog.Table {
	t := catalog.NewTable("lineitem")
	okey := t.AddCol("l_orderkey", catalog.TInt)
	pkey := t.AddCol("l_partkey", catalog.TInt)
	skey := t.AddCol("l_suppkey", catalog.TInt)
	qty := t.AddCol("l_quantity", catalog.TInt)
	price := t.AddCol("l_extendedprice", catalog.TInt)
	disc := t.AddCol("l_discount", catalog.TInt)
	tax := t.AddCol("l_tax", catalog.TInt)
	ship := t.AddCol("l_shipdate", catalog.TDate)
	rflag := t.AddCol("l_returnflag", catalog.TStr)
	lstat := t.AddCol("l_linestatus", catalog.TStr)
	odate := orders.Col("o_orderdate")
	endDate := Date(1998, 8, 2)
	for i, ok := range orders.Col("o_orderkey").Data {
		lines := 1 + r.Intn(7)
		for l := 0; l < lines; l++ {
			okey.Data = append(okey.Data, ok)
			pkey.Data = append(pkey.Data, r.Int64Range(1, int64(cfg.parts())))
			skey.Data = append(skey.Data, r.Int64Range(1, int64(cfg.suppliers())))
			q := r.Int64Range(1, 50)
			qty.Data = append(qty.Data, q)
			price.Data = append(price.Data, q*r.Int64Range(100, 2000))
			disc.Data = append(disc.Data, r.Int64Range(0, 10))
			tax.Data = append(tax.Data, r.Int64Range(0, 8))
			sd := odate.Data[i] + r.Int64Range(1, 121)
			ship.Data = append(ship.Data, sd)
			// TPC-H semantics: shipped long ago → returned or not (A/R),
			// recent → still open; linestatus follows shipment age.
			flag := "N"
			if sd < endDate-180 {
				flag = []string{"A", "R"}[r.Intn(2)]
			}
			rflag.Data = append(rflag.Data, rflag.Dict.ID(flag))
			status := "O"
			if sd < endDate-90 {
				status = "F"
			}
			lstat.Data = append(lstat.Data, lstat.Dict.ID(status))
		}
	}
	return t
}

func genPartsupp(cfg Config, r *xrand.Rand) *catalog.Table {
	t := catalog.NewTable("partsupp")
	pkey := t.AddCol("ps_partkey", catalog.TInt)
	skey := t.AddCol("ps_suppkey", catalog.TInt)
	avail := t.AddCol("ps_availqty", catalog.TInt)
	cost := t.AddCol("ps_supplycost", catalog.TInt)
	for p := 1; p <= cfg.parts(); p++ {
		for s := 0; s < 4; s++ {
			pkey.Data = append(pkey.Data, int64(p))
			skey.Data = append(skey.Data, r.Int64Range(1, int64(cfg.suppliers())))
			avail.Data = append(avail.Data, r.Int64Range(1, 9999))
			cost.Data = append(cost.Data, r.Int64Range(1, 1000))
		}
	}
	return t
}

// genProducts and genSales build the introduction example's tables
// (Fig. 3a): sales rows reference products; vat_factor and prod_costs are
// strictly positive so the generated division chain cannot trap.
func genProducts(cfg Config, r *xrand.Rand) *catalog.Table {
	n := cfg.products()
	t := catalog.NewTable("products")
	key := t.AddCol("id", catalog.TInt)
	key.Unique = true
	cat := t.AddCol("category", catalog.TStr)
	name := t.AddCol("name", catalog.TStr)
	for i := 0; i < n; i++ {
		key.Data = append(key.Data, int64(i+1))
		// 'Chip' dominates the catalog (~40%), so the introduction
		// query's aggregation — with its division chain — processes most
		// sales, giving the Fig. 6 cost split its paper-like shape.
		category := "Chip"
		if !r.Bool(0.4) {
			category = partCategories[1+r.Intn(len(partCategories)-1)]
		}
		cat.Data = append(cat.Data, cat.Dict.ID(category))
		name.Data = append(name.Data, name.Dict.ID("product"))
	}
	return t
}

func genSales(cfg Config, r *xrand.Rand) *catalog.Table {
	n := cfg.sales()
	t := catalog.NewTable("sales")
	id := t.AddCol("id", catalog.TInt)
	price := t.AddCol("price", catalog.TInt)
	vat := t.AddCol("vat_factor", catalog.TInt)
	costs := t.AddCol("prod_costs", catalog.TInt)
	for i := 0; i < n; i++ {
		id.Data = append(id.Data, r.Int64Range(1, int64(cfg.products())))
		price.Data = append(price.Data, r.Int64Range(100, 100000))
		vat.Data = append(vat.Data, r.Int64Range(1, 4))
		costs.Data = append(costs.Data, r.Int64Range(1, 50))
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
