package datagen

import (
	"repro/internal/catalog"
	"repro/internal/xrand"
)

// AppendBatch generates n deterministic tail rows for a table in columnar
// form (one slice per column, ready for catalog.AppendCols). The batch is
// shaped like the data already in the table — values are drawn inside each
// column's observed [min, max], dictionary columns reuse existing codes,
// unique key columns continue past the current maximum — so streaming
// ingest extends the distributions the resident data established instead
// of injecting outliers that would flip zone-pruning or optimizer
// decisions for reasons unrelated to ingest itself.
//
// The batch is a pure function of (table contents, n, seed): the ingest
// experiments vary the seed per batch and replay identical streams across
// runs.
func AppendBatch(t *catalog.Table, n int, seed uint64) [][]int64 {
	r := xrand.New(seed ^ nameSeed(t.Name) ^ 0xa99d)
	view := t.View()
	cols := make([][]int64, len(t.Cols))
	for ci, c := range t.Cols {
		data := view.Col(ci)
		out := make([]int64, n)
		switch {
		case c.Unique:
			var maxKey int64
			for _, v := range data {
				if v > maxKey {
					maxKey = v
				}
			}
			for i := range out {
				out[i] = maxKey + int64(i) + 1
			}
		case c.Type == catalog.TStr && c.Dict != nil && c.Dict.Len() > 0:
			for i := range out {
				out[i] = int64(r.Intn(c.Dict.Len()))
			}
		default:
			lo, hi := int64(0), int64(1)
			if len(data) > 0 {
				lo, hi = data[0], data[0]
				for _, v := range data[1:] {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
			if lo >= hi {
				hi = lo + 1
			}
			for i := range out {
				out[i] = r.Int64Range(lo, hi)
			}
		}
		cols[ci] = out
	}
	return cols
}

// nameSeed folds a table name into the batch seed (FNV-1a).
func nameSeed(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
