package iropt

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ir"
)

// harness builds a function and a dictionary with two tasks to observe
// lineage updates.
type harness struct {
	m    *ir.Module
	f    *ir.Func
	b    *ir.Builder
	reg  *core.Registry
	dict *core.Dictionary
	t1   core.ComponentID
	t2   core.ComponentID
	cur  core.ComponentID
}

func newHarness() *harness {
	reg := core.NewRegistry()
	op := reg.Add(core.LevelOperator, "op", "op", -1, core.NoComponent)
	h := &harness{
		m:    ir.NewModule(),
		reg:  reg,
		dict: core.NewDictionary(reg),
	}
	h.t1 = reg.Add(core.LevelTask, "t1", "t1", 0, op)
	h.t2 = reg.Add(core.LevelTask, "t2", "t2", 0, op)
	h.dict.LinkTask(h.t1, op)
	h.dict.LinkTask(h.t2, op)
	h.f = h.m.NewFunc("main", 0)
	h.b = ir.NewBuilder(h.f)
	h.cur = h.t1
	h.b.OnCreate = func(in *ir.Instr) { h.dict.LinkIR(in.ID, h.cur) }
	return h
}

func TestConstFoldArithmetic(t *testing.T) {
	h := newHarness()
	x := h.b.Const(6)
	y := h.b.Const(7)
	prod := h.b.Mul(x, y)
	h.b.Store(64, h.b.Const(64), prod)
	h.b.Halt()

	n := ConstFold(h.m, h.dict)
	if n == 0 {
		t.Fatal("nothing folded")
	}
	if prod.Op != ir.OpConst || prod.Imm != 42 {
		t.Fatalf("mul not folded: %v imm=%d", prod.Op, prod.Imm)
	}
	// The ID (and its dictionary links) must be preserved.
	if len(h.dict.TasksOf(prod.ID)) != 1 {
		t.Fatal("folded instruction lost its links")
	}
}

func TestConstFoldPreservesDivByZeroTrap(t *testing.T) {
	h := newHarness()
	q := h.b.SDiv(h.b.Const(5), h.b.Const(0))
	h.b.Store(64, h.b.Const(64), q)
	h.b.Halt()
	ConstFold(h.m, h.dict)
	if q.Op == ir.OpConst {
		t.Fatal("division by zero folded away")
	}
}

func TestDCERemovesUnusedChains(t *testing.T) {
	h := newHarness()
	a := h.b.Const(1)
	bb := h.b.Add(a, a)   // dead
	cc := h.b.Mul(bb, bb) // dead
	kept := h.b.Load(64, h.b.Const(128))
	h.b.Store(64, h.b.Const(64), kept)
	h.b.Halt()
	ccID, bbID := cc.ID, bb.ID

	n := DCE(h.m, h.dict)
	if n < 2 {
		t.Fatalf("eliminated %d, want ≥ 2", n)
	}
	if len(h.dict.TasksOf(ccID)) != 0 || len(h.dict.TasksOf(bbID)) != 0 {
		t.Fatal("dictionary links of eliminated instructions not dropped")
	}
	// The store, the load and the used constants must survive.
	for _, blk := range h.f.Blocks {
		for _, in := range blk.Instrs {
			if in == bb || in == cc {
				t.Fatal("dead instruction survived")
			}
		}
	}
}

func TestDCEKeepsStoresAndCalls(t *testing.T) {
	h := newHarness()
	h.b.Store(64, h.b.Const(64), h.b.Const(1))
	h.b.Call("memset64", false, h.b.Const(64))
	h.b.Halt()
	before := h.m.InstrCount()
	DCE(h.m, h.dict)
	if h.m.InstrCount() != before {
		t.Fatal("side-effecting instructions eliminated")
	}
}

func TestCSEMergesAcrossTasks(t *testing.T) {
	h := newHarness()
	x := h.b.Load(64, h.b.Const(128))
	h.cur = h.t1
	e1 := h.b.Mul(x, x)
	h.b.Store(64, h.b.Const(64), e1)
	h.cur = h.t2
	e2 := h.b.Mul(x, x) // same expression, other task
	h.b.Store(64, h.b.Const(72), e2)
	h.b.Halt()

	n := CSE(h.m, h.dict)
	if n != 1 {
		t.Fatalf("merged %d, want 1", n)
	}
	// Survivor must be multi-linked and marked shared (§4.2.7).
	tasks := h.dict.TasksOf(e1.ID)
	if len(tasks) != 2 {
		t.Fatalf("survivor tasks = %v", tasks)
	}
	if !h.dict.IsShared(e1.ID) {
		t.Fatal("cross-task CSE survivor not marked shared")
	}
	// All uses must point at the survivor.
	for _, blk := range h.f.Blocks {
		for _, in := range blk.Instrs {
			for _, a := range in.Args {
				if a == e2 {
					t.Fatal("use of eliminated instruction remains")
				}
			}
		}
	}
	if err := h.m.Verify(); err != nil {
		t.Fatalf("verify after CSE: %v", err)
	}
}

func TestCSEAcrossSinglePredChain(t *testing.T) {
	h := newHarness()
	x := h.b.Load(64, h.b.Const(128))
	e1 := h.b.Mul(x, x)
	h.b.Store(64, h.b.Const(64), e1)
	next := h.b.NewBlock("next")
	h.b.Br(next)
	h.b.SetBlock(next)
	e2 := h.b.Mul(x, x)
	h.b.Store(64, h.b.Const(72), e2)
	h.b.Halt()
	if n := CSE(h.m, h.dict); n != 1 {
		t.Fatalf("chain CSE merged %d, want 1", n)
	}
}

func TestCSEDoesNotCrossMerges(t *testing.T) {
	h := newHarness()
	x := h.b.Load(64, h.b.Const(128))
	e1 := h.b.Mul(x, x)
	h.b.Store(64, h.b.Const(64), e1)
	then := h.b.NewBlock("then")
	els := h.b.NewBlock("els")
	merge := h.b.NewBlock("merge")
	cond := h.b.Bin(ir.OpCmpLt, x, x)
	h.b.CondBr(cond, then, els)
	h.b.SetBlock(then)
	h.b.Br(merge)
	h.b.SetBlock(els)
	h.b.Br(merge)
	h.b.SetBlock(merge)
	// merge has two preds: available-expression propagation must stop,
	// even though e1 would in fact dominate here (conservatism is fine,
	// unsoundness is not — this guards the conservative behaviour).
	e2 := h.b.Mul(x, x)
	h.b.Store(64, h.b.Const(72), e2)
	h.b.Halt()
	if n := CSE(h.m, h.dict); n != 0 {
		t.Fatalf("CSE across merge point: %d", n)
	}
}

func TestOptimizeReachesFixpoint(t *testing.T) {
	h := newHarness()
	// (2*3)+x where x is dead after folding the condition below.
	c := h.b.Mul(h.b.Const(2), h.b.Const(3))
	sum := h.b.Add(c, h.b.Const(10))
	h.b.Store(64, h.b.Const(64), sum)
	h.b.Halt()
	st, err := Optimize(h.m, h.dict, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Folded == 0 || st.Eliminated == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if sum.Op != ir.OpConst || sum.Imm != 16 {
		t.Fatalf("transitive folding failed: %v %d", sum.Op, sum.Imm)
	}
	if err := h.m.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestEvalBinMatchesVM cross-checks the folder's constant evaluator
// against the VM ALU via the shared semantics (property test).
func TestEvalBinMatchesVM(t *testing.T) {
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpRotr, ir.OpCrc32,
		ir.OpCmpEq, ir.OpCmpNe, ir.OpCmpLt, ir.OpCmpLe, ir.OpCmpGt, ir.OpCmpGe}
	f := func(opIdx uint8, a, b int64) bool {
		op := ops[int(opIdx)%len(ops)]
		got, ok := EvalBin(op, a, b)
		if !ok {
			return false
		}
		want := goldenEval(op, a, b)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// goldenEval is an independent re-statement of the ALU semantics.
func goldenEval(op ir.Op, a, b int64) int64 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		return a << (uint64(b) & 63)
	case ir.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case ir.OpRotr:
		s := uint64(b) & 63
		return int64(uint64(a)>>s | uint64(a)<<(64-s))
	case ir.OpCrc32:
		x := uint64(a) ^ uint64(b)*0x9e3779b97f4a7c15
		x ^= x >> 32
		x *= 0xd6e8feb86659fd93
		x ^= x >> 32
		return int64(x)
	case ir.OpCmpEq:
		return b2i(a == b)
	case ir.OpCmpNe:
		return b2i(a != b)
	case ir.OpCmpLt:
		return b2i(a < b)
	case ir.OpCmpLe:
		return b2i(a <= b)
	case ir.OpCmpGt:
		return b2i(a > b)
	case ir.OpCmpGe:
		return b2i(a >= b)
	}
	return 0
}
