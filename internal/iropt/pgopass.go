package iropt

// Profile-guided passes. Tailored Profiling attributes samples bottom-up
// from native instructions to IR instructions to tasks; these passes run
// the same information top-down: a recompilation consults the previous
// run's per-IR-instruction weights and transforms only the loops that
// demonstrably burned cycles. Both passes keep the Tagging Dictionary
// valid — LICM moves instructions without changing their IDs, and
// strength reduction either rewrites in place (ID preserved) or reports
// Derived/Replaced lineage — so a profile taken on the recompiled binary
// still attributes through the dictionary.

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// HotLoopFrac is the share of total profile weight a loop body must have
// attracted for the profile-guided passes to touch it.
const HotLoopFrac = 0.01

// maxHoistPerLoop caps LICM per loop: hoisting extends live ranges across
// the whole loop, and past a point the cost of the spills it forces
// exceeds the cost of the instructions it removes.
const maxHoistPerLoop = 8

// natLoop is a natural loop approximated as the contiguous block range
// [header..latch] closed over a back edge. Pipeline lowering emits loop
// blocks contiguously, so the approximation is exact for generated code;
// where it over-approximates, LICM only becomes more conservative about
// what counts as loop-invariant.
type natLoop struct {
	header *ir.Block
	body   map[*ir.Block]bool
}

// hotLoops finds the natural loops of f whose bodies hold at least
// HotLoopFrac of the profile's total weight. Multiple back edges to one
// header (continue paths) are merged into a single loop spanning the
// furthest latch.
func hotLoops(f *ir.Func, hot Hotness) []natLoop {
	total := hot.TotalWeight()
	if total <= 0 {
		return nil
	}
	idx := make(map[*ir.Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		idx[b] = i
	}
	latch := map[*ir.Block]int{} // header → furthest latch index
	for bi, b := range f.Blocks {
		for _, s := range b.Succs() {
			if hi, ok := idx[s]; ok && hi <= bi {
				if cur, seen := latch[s]; !seen || bi > cur {
					latch[s] = bi
				}
			}
		}
	}
	var out []natLoop
	for _, h := range f.Blocks { // deterministic order
		li, ok := latch[h]
		if !ok {
			continue
		}
		lp := natLoop{header: h, body: map[*ir.Block]bool{}}
		w := 0.0
		for i := idx[h]; i <= li; i++ {
			blk := f.Blocks[i]
			lp.body[blk] = true
			for _, in := range blk.Instrs {
				w += hot.InstrWeight(in.ID)
			}
		}
		if w/total >= HotLoopFrac {
			out = append(out, lp)
		}
	}
	return out
}

// LICM hoists loop-invariant pure instructions out of profile-hot loops
// into the loop preheader. Only side-effect-free instructions move
// (IsPure excludes loads, division and calls), so executing one
// speculatively — the preheader runs even if the loop body never does —
// cannot trap or change observable state. Instruction IDs are preserved
// by motion, so no lineage updates are needed and the Tagging
// Dictionary's Log B stays valid verbatim.
func LICM(m *ir.Module, lin core.Lineage, hot Hotness) int {
	hoisted := 0
	for _, f := range m.Funcs {
		loops := hotLoops(f, hot)
		if len(loops) == 0 {
			continue
		}
		dom := f.Dominators()
		for _, lp := range loops {
			// The preheader is the unique predecessor of the header from
			// outside the loop; bail if the CFG doesn't offer one.
			var pre *ir.Block
			for _, p := range lp.header.Preds {
				if lp.body[p] {
					continue
				}
				if pre != nil {
					pre = nil
					break
				}
				pre = p
			}
			if pre == nil || pre.Terminator() == nil {
				continue
			}
			moved := 0
			for moved < maxHoistPerLoop {
				in, blk := findHoistable(lp, pre, dom, hot)
				if in == nil {
					break
				}
				removeInstr(blk, in)
				insertBefore(pre, pre.Terminator(), in)
				in.Block = pre
				moved++
			}
			hoisted += moved
		}
	}
	return hoisted
}

// findHoistable returns the first instruction in the loop body whose
// operands are all defined outside the loop in blocks dominating the
// preheader (so they are certainly available there). Previously hoisted
// instructions satisfy the check for their dependents because their Block
// is already the preheader. Only instructions the profile saw executing
// qualify: a zero-weight instruction inside a hot loop either never runs
// (its materialization was folded away by the backend) or costs nothing
// worth a loop-long live range — hoisting it would trade no cycles for
// real register pressure.
func findHoistable(lp natLoop, pre *ir.Block, dom map[*ir.Block]map[*ir.Block]bool, hot Hotness) (*ir.Instr, *ir.Block) {
	// Iterate blocks in function order for determinism.
	for _, b := range lp.header.Func.Blocks {
		if !lp.body[b] {
			continue
		}
		for _, in := range b.Instrs {
			if !in.Op.IsPure() || in.Op.IsTerminator() {
				continue
			}
			if hot.InstrWeight(in.ID) <= 0 {
				continue
			}
			ok := true
			for _, a := range in.Args {
				if lp.body[a.Block] || !(a.Block == pre || dom[pre][a.Block]) {
					ok = false
					break
				}
			}
			if ok {
				return in, b
			}
		}
	}
	return nil, nil
}

func removeInstr(b *ir.Block, in *ir.Instr) {
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			return
		}
	}
}

func insertBefore(b *ir.Block, before, in *ir.Instr) {
	for i, x := range b.Instrs {
		if x == before {
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[i+1:], b.Instrs[i:])
			b.Instrs[i] = in
			return
		}
	}
	b.Instrs = append(b.Instrs, in)
}

// StrengthReduce rewrites expensive arithmetic in profile-hot loops into
// cheaper equivalents under the VM's cost model (MUL costs 3, SHL and ADD
// cost 1): multiplication by a power of two becomes a shift, and
// algebraic identities (x*1, x+0, x<<0, x/1, …) collapse. Rewrites happen
// in place where possible so the instruction ID — and its dictionary
// links — survive; a new shift-amount constant is reported as Derived
// from the instruction it serves.
func StrengthReduce(m *ir.Module, lin core.Lineage, hot Hotness) int {
	n := 0
	for _, f := range m.Funcs {
		loops := hotLoops(f, hot)
		if len(loops) == 0 {
			continue
		}
		hotBlocks := map[*ir.Block]bool{}
		for _, lp := range loops {
			for b := range lp.body {
				hotBlocks[b] = true
			}
		}
		for _, b := range f.Blocks {
			if !hotBlocks[b] {
				continue
			}
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				if done, grew := reduceInstr(f, b, i, in, lin); done {
					n++
					i += grew
				}
			}
		}
	}
	return n
}

// reduceInstr applies one strength reduction to in if a pattern matches.
// It reports whether a rewrite happened and how many instructions were
// inserted before position i.
func reduceInstr(f *ir.Func, b *ir.Block, i int, in *ir.Instr, lin core.Lineage) (bool, int) {
	if len(in.Args) != 2 {
		return false, 0
	}
	x, c, ok := splitConst(in)
	if !ok {
		return false, 0
	}
	switch in.Op {
	case ir.OpMul:
		switch {
		case c == 0:
			toConst(in, 0)
			return true, 0
		case c == 1:
			replaceWith(f, in, x, lin)
			return true, 0
		case c > 0 && c&(c-1) == 0:
			// x * 2^k  →  x << k. The shift-amount constant is new code
			// derived from the multiply; its lineage says so.
			k := int64(0)
			for v := c; v > 1; v >>= 1 {
				k++
			}
			kc := &ir.Instr{ID: f.Module.NewID(), Op: ir.OpConst, Type: ir.I64, Imm: k, Block: b}
			lin.Derived(kc.ID, in.ID)
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[i+1:], b.Instrs[i:])
			b.Instrs[i] = kc
			in.Op = ir.OpShl
			in.Args = []*ir.Instr{x, kc}
			return true, 1
		}
	case ir.OpAdd, ir.OpOr, ir.OpXor:
		if c == 0 {
			replaceWith(f, in, x, lin)
			return true, 0
		}
	case ir.OpSub, ir.OpShl, ir.OpShr:
		// Non-commutative: the constant must be the second operand.
		if c == 0 && in.Args[1].Op == ir.OpConst {
			replaceWith(f, in, x, lin)
			return true, 0
		}
	case ir.OpSDiv:
		if c == 1 && in.Args[1].Op == ir.OpConst {
			replaceWith(f, in, x, lin)
			return true, 0
		}
	case ir.OpSMod:
		if c == 1 && in.Args[1].Op == ir.OpConst {
			toConst(in, 0)
			return true, 0
		}
	}
	return false, 0
}

// splitConst returns the non-constant operand and the constant's value
// for a binary instruction with exactly one constant operand.
func splitConst(in *ir.Instr) (*ir.Instr, int64, bool) {
	a, b := in.Args[0], in.Args[1]
	if a.Op == ir.OpConst && b.Op != ir.OpConst {
		return b, a.Imm, true
	}
	if b.Op == ir.OpConst && a.Op != ir.OpConst {
		return a, b.Imm, true
	}
	return nil, 0, false
}

// toConst rewrites in into a constant in place, preserving its ID
// exactly like ConstFold does.
func toConst(in *ir.Instr, v int64) {
	in.Op = ir.OpConst
	in.Type = ir.I64
	in.Imm = v
	in.Args = nil
}

// replaceWith rewires every use of in to x and removes in, reporting the
// replacement to the lineage (x inherits in's tasks, like CSE survivors).
func replaceWith(f *ir.Func, in, x *ir.Instr, lin core.Lineage) {
	rewriteUses(f, in, x)
	lin.Replaced(in.ID, x.ID)
	removeInstr(in.Block, in)
}
