// Package iropt implements the IR-level optimizations of Table 1 that the
// engine applies between code generation and backend lowering: constant
// folding, dead-code elimination (the paper's "code elimination"), and
// common-subexpression elimination. Every transformation is reported to a
// core.Lineage (implemented by the Tagging Dictionary) so profiling
// attribution stays correct across optimization:
//
//   - folding/elimination drop instructions that can never be sampled;
//   - CSE makes the surviving instruction a *shared source location*
//     owned by every task whose expression it now computes (§4.2.7).
//
// Loop unrolling and polyhedral transformations are not implemented,
// matching the Umbra prototype's Table 1 column; compare-and-branch
// instruction fusing is implemented in the backend (internal/codegen).
package iropt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
)

// Options selects passes; the zero value runs nothing.
type Options struct {
	ConstFold bool
	DCE       bool
	CSE       bool
}

// AllOptions enables every implemented pass.
func AllOptions() Options { return Options{ConstFold: true, DCE: true, CSE: true} }

// Stats reports what the optimizer did.
type Stats struct {
	Folded     int
	Eliminated int
	CSEMerged  int
}

// Optimize runs the enabled passes to a fixpoint.
func Optimize(m *ir.Module, lin core.Lineage, opts Options) Stats {
	var st Stats
	for {
		changed := 0
		if opts.ConstFold {
			n := ConstFold(m, lin)
			st.Folded += n
			changed += n
		}
		if opts.CSE {
			n := CSE(m, lin)
			st.CSEMerged += n
			changed += n
		}
		if opts.DCE {
			n := DCE(m, lin)
			st.Eliminated += n
			changed += n
		}
		if changed == 0 {
			return st
		}
	}
}

// ConstFold evaluates pure instructions whose operands are all constants,
// rewriting them into OpConst in place (the instruction ID — and therefore
// its Tagging Dictionary links — is preserved; the operands may become
// dead and fall to DCE, mirroring §4.2.7 "constant folding is solely a
// compile-time operation; we just apply code elimination").
func ConstFold(m *ir.Module, lin core.Lineage) int {
	n := 0
	m.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpConst || len(in.Args) != 2 {
			return
		}
		foldable := in.Op.IsPure() || in.Op == ir.OpSDiv || in.Op == ir.OpSMod
		if !foldable {
			return
		}
		a, b := in.Args[0], in.Args[1]
		if a.Op != ir.OpConst || b.Op != ir.OpConst {
			return
		}
		if (in.Op == ir.OpSDiv || in.Op == ir.OpSMod) && b.Imm == 0 {
			return // preserve the runtime trap
		}
		v, ok := evalBin(in.Op, a.Imm, b.Imm)
		if !ok {
			return
		}
		in.Op = ir.OpConst
		in.Type = ir.I64
		in.Imm = v
		in.Args = nil
		n++
	})
	return n
}

// DCE removes instructions without side effects whose results are unused,
// iterating until stable. Eliminated instructions are reported so the
// Tagging Dictionary can drop their links.
func DCE(m *ir.Module, lin core.Lineage) int {
	removed := 0
	for {
		uses := countUses(m)
		n := 0
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				kept := b.Instrs[:0]
				for _, in := range b.Instrs {
					if removable(in) && uses[in] == 0 {
						lin.Removed(in.ID)
						n++
						continue
					}
					kept = append(kept, in)
				}
				b.Instrs = kept
			}
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}

func removable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpLoad8, ir.OpLoad32, ir.OpLoad64:
		return true // loads are side-effect free in this machine model
	case ir.OpPhi:
		return true
	case ir.OpGetTag:
		return true
	default:
		return in.Op.IsPure()
	}
}

// CSE performs value numbering over single-predecessor block chains: an
// instruction computing an expression already available is removed and its
// uses rewired to the surviving instruction. The survivor inherits the
// eliminated instruction's tasks (a shared source location; §4.2.7 treats
// CSE exactly like shared code).
func CSE(m *ir.Module, lin core.Lineage) int {
	merged := 0
	for _, f := range m.Funcs {
		avail := make(map[*ir.Block]map[string]*ir.Instr, len(f.Blocks))
		for _, b := range f.Blocks {
			// Inherit available expressions from a unique predecessor
			// (which, in a chain, dominates this block).
			table := map[string]*ir.Instr{}
			if len(b.Preds) == 1 {
				for k, v := range avail[b.Preds[0]] {
					table[k] = v
				}
			}
			kept := b.Instrs[:0]
			var replaced []replacement
			for _, in := range b.Instrs {
				if !in.Op.IsPure() {
					kept = append(kept, in)
					continue
				}
				k := exprKey(in)
				if prev, ok := table[k]; ok {
					replaced = append(replaced, replacement{old: in, new: prev})
					lin.Replaced(in.ID, prev.ID)
					merged++
					continue
				}
				table[k] = in
				kept = append(kept, in)
			}
			b.Instrs = kept
			avail[b] = table
			for _, r := range replaced {
				rewriteUses(f, r.old, r.new)
			}
		}
	}
	return merged
}

type replacement struct{ old, new *ir.Instr }

// exprKey canonicalizes an expression for value numbering. Constants are
// keyed by value (distinct OpConst instructions holding the same literal
// are equal), so repeated address computations like tid*8 merge even
// though each occurrence materialized its own constant.
func exprKey(in *ir.Instr) string {
	if in.Op == ir.OpConst {
		return fmt.Sprintf("k%d", in.Imm)
	}
	k := fmt.Sprintf("%d:", in.Op)
	for _, a := range in.Args {
		if a.Op == ir.OpConst {
			k += fmt.Sprintf("k%d,", a.Imm)
		} else {
			k += fmt.Sprintf("%d,", a.ID)
		}
	}
	return k
}

func rewriteUses(f *ir.Func, old, new *ir.Instr) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

func countUses(m *ir.Module) map[*ir.Instr]int {
	uses := make(map[*ir.Instr]int)
	m.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
		for _, a := range in.Args {
			uses[a]++
		}
	})
	return uses
}

// evalBin mirrors the VM's ALU semantics (cross-checked by tests).
func evalBin(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpSDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpSMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case ir.OpRotr:
		s := uint64(b) & 63
		u := uint64(a)
		return int64(u>>s | u<<(64-s)), true
	case ir.OpCrc32:
		x := uint64(a) ^ uint64(b)*0x9e3779b97f4a7c15
		x ^= x >> 32
		x *= 0xd6e8feb86659fd93
		x ^= x >> 32
		return int64(x), true
	case ir.OpCmpEq:
		return b2i(a == b), true
	case ir.OpCmpNe:
		return b2i(a != b), true
	case ir.OpCmpLt:
		return b2i(a < b), true
	case ir.OpCmpLe:
		return b2i(a <= b), true
	case ir.OpCmpGt:
		return b2i(a > b), true
	case ir.OpCmpGe:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
