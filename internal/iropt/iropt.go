// Package iropt implements the IR-level optimizations of Table 1 that the
// engine applies between code generation and backend lowering: constant
// folding, dead-code elimination (the paper's "code elimination"), and
// common-subexpression elimination. Every transformation is reported to a
// core.Lineage (implemented by the Tagging Dictionary) so profiling
// attribution stays correct across optimization:
//
//   - folding/elimination drop instructions that can never be sampled;
//   - CSE makes the surviving instruction a *shared source location*
//     owned by every task whose expression it now computes (§4.2.7).
//
// Loop unrolling and polyhedral transformations are not implemented,
// matching the Umbra prototype's Table 1 column; compare-and-branch
// instruction fusing is implemented in the backend (internal/codegen).
package iropt

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/ir"
)

// Hotness is the profile guidance the PGO passes consume; *pgo.Hotness
// satisfies it (declared here so iropt does not depend on the pgo
// package).
type Hotness interface {
	// InstrWeight returns one IR instruction's profile weight.
	InstrWeight(id int) float64
	// TotalWeight returns the total attributed weight.
	TotalWeight() float64
}

// Options selects passes; the zero value runs nothing.
type Options struct {
	ConstFold bool
	DCE       bool
	CSE       bool

	// LICM and StrengthReduce are the profile-guided passes: they apply
	// only inside loops the profile marks hot, and only run when Hot is
	// set. An unprofiled compile is byte-identical with or without them.
	LICM           bool
	StrengthReduce bool
	Hot            Hotness

	// AfterPass, when set, runs after every individual pass application
	// (including each fixpoint round) with the pass name. Returning an
	// error aborts optimization. The engine's VerifyArtifacts mode hangs
	// the verification suite here so a lineage bug is pinned to the exact
	// pass that introduced it, not discovered after the whole pipeline.
	AfterPass func(pass string) error
}

// AllOptions enables every implemented profile-independent pass.
func AllOptions() Options { return Options{ConstFold: true, DCE: true, CSE: true} }

// PGOOptions enables everything, guided by hot.
func PGOOptions(hot Hotness) Options {
	o := AllOptions()
	o.LICM, o.StrengthReduce, o.Hot = true, true, hot
	return o
}

// Stats reports what the optimizer did.
type Stats struct {
	Folded     int
	Eliminated int
	CSEMerged  int
	Hoisted    int // LICM: instructions moved to loop preheaders
	Reduced    int // strength reduction: instructions rewritten cheaper
}

// Optimize runs the enabled passes. The base passes (fold/CSE/DCE) run to
// a fixpoint first: they are deterministic, so the module then matches —
// instruction for instruction, ID for ID — the state the profiled binary
// was compiled from, and the profile's IR instruction IDs line up. Only
// then do the profile-guided passes transform it, re-running the base
// fixpoint after each round to clean up what they expose.
//
// The returned error is non-nil only when an AfterPass hook rejected a
// pass's output; the module is left in the state that hook saw.
func Optimize(m *ir.Module, lin core.Lineage, opts Options) (Stats, error) {
	var st Stats
	var hookErr error
	after := func(pass string) bool {
		if opts.AfterPass == nil {
			return true
		}
		hookErr = opts.AfterPass(pass)
		return hookErr == nil
	}
	base := func() bool {
		for {
			changed := 0
			if opts.ConstFold {
				n := ConstFold(m, lin)
				st.Folded += n
				changed += n
				if !after("fold") {
					return false
				}
			}
			if opts.CSE {
				n := CSE(m, lin)
				st.CSEMerged += n
				changed += n
				if !after("cse") {
					return false
				}
			}
			if opts.DCE {
				n := DCE(m, lin)
				st.Eliminated += n
				changed += n
				if !after("dce") {
					return false
				}
			}
			if changed == 0 {
				return true
			}
		}
	}
	if !base() {
		return st, hookErr
	}
	for opts.Hot != nil && (opts.LICM || opts.StrengthReduce) {
		changed := 0
		if opts.LICM {
			n := LICM(m, lin, opts.Hot)
			st.Hoisted += n
			changed += n
			if !after("licm") {
				return st, hookErr
			}
		}
		if opts.StrengthReduce {
			n := StrengthReduce(m, lin, opts.Hot)
			st.Reduced += n
			changed += n
			if !after("sr") {
				return st, hookErr
			}
		}
		if changed == 0 {
			break
		}
		if !base() {
			return st, hookErr
		}
	}
	return st, nil
}

// ConstFold evaluates pure instructions whose operands are all constants,
// rewriting them into OpConst in place (the instruction ID — and therefore
// its Tagging Dictionary links — is preserved; the operands may become
// dead and fall to DCE, mirroring §4.2.7 "constant folding is solely a
// compile-time operation; we just apply code elimination").
func ConstFold(m *ir.Module, lin core.Lineage) int {
	n := 0
	m.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpConst || len(in.Args) != 2 {
			return
		}
		foldable := in.Op.IsPure() || in.Op == ir.OpSDiv || in.Op == ir.OpSMod
		if !foldable {
			return
		}
		a, b := in.Args[0], in.Args[1]
		if a.Op != ir.OpConst || b.Op != ir.OpConst {
			return
		}
		if (in.Op == ir.OpSDiv || in.Op == ir.OpSMod) && b.Imm == 0 {
			return // preserve the runtime trap
		}
		v, ok := EvalBin(in.Op, a.Imm, b.Imm)
		if !ok {
			return
		}
		in.Op = ir.OpConst
		in.Type = ir.I64
		in.Imm = v
		in.Args = nil
		n++
	})
	return n
}

// DCE removes instructions without side effects whose results are unused,
// iterating until stable. Eliminated instructions are reported so the
// Tagging Dictionary can drop their links.
func DCE(m *ir.Module, lin core.Lineage) int {
	removed := 0
	for {
		uses := countUses(m)
		n := 0
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				kept := b.Instrs[:0]
				for _, in := range b.Instrs {
					if removable(in) && uses[in] == 0 {
						lin.Removed(in.ID)
						n++
						continue
					}
					kept = append(kept, in)
				}
				b.Instrs = kept
			}
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}

func removable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpLoad8, ir.OpLoad32, ir.OpLoad64:
		return true // loads are side-effect free in this machine model
	case ir.OpPhi:
		return true
	case ir.OpGetTag:
		return true
	default:
		return in.Op.IsPure()
	}
}

// CSE performs value numbering over single-predecessor block chains: an
// instruction computing an expression already available is removed and its
// uses rewired to the surviving instruction. The survivor inherits the
// eliminated instruction's tasks (a shared source location; §4.2.7 treats
// CSE exactly like shared code).
func CSE(m *ir.Module, lin core.Lineage) int {
	merged := 0
	var keyBuf []byte // reused across instructions; see exprKey
	for _, f := range m.Funcs {
		avail := make(map[*ir.Block]map[string]*ir.Instr, len(f.Blocks))
		for _, b := range f.Blocks {
			// Inherit available expressions from a unique predecessor
			// (which, in a chain, dominates this block).
			table := map[string]*ir.Instr{}
			if len(b.Preds) == 1 {
				for k, v := range avail[b.Preds[0]] {
					table[k] = v
				}
			}
			kept := b.Instrs[:0]
			var replaced []replacement
			for _, in := range b.Instrs {
				if !in.Op.IsPure() {
					kept = append(kept, in)
					continue
				}
				keyBuf = exprKey(keyBuf[:0], in)
				// map[string([]byte)] lookups don't allocate; only a
				// first-seen insert materializes the key as a string.
				if prev, ok := table[string(keyBuf)]; ok {
					replaced = append(replaced, replacement{old: in, new: prev})
					lin.Replaced(in.ID, prev.ID)
					merged++
					continue
				}
				table[string(keyBuf)] = in
				kept = append(kept, in)
			}
			b.Instrs = kept
			avail[b] = table
			for _, r := range replaced {
				rewriteUses(f, r.old, r.new)
			}
		}
	}
	return merged
}

type replacement struct{ old, new *ir.Instr }

// exprKey canonicalizes an expression for value numbering, appending the
// key to buf and returning the extended slice. Constants are keyed by
// value (distinct OpConst instructions holding the same literal are
// equal), so repeated address computations like tid*8 merge even though
// each occurrence materialized its own constant. The byte-slice form
// exists so CSE can reuse one buffer for every instruction instead of
// building throwaway strings — compilation shows up in the profiler too.
func exprKey(buf []byte, in *ir.Instr) []byte {
	if in.Op == ir.OpConst {
		buf = append(buf, 'k')
		return strconv.AppendInt(buf, in.Imm, 10)
	}
	buf = strconv.AppendInt(buf, int64(in.Op), 10)
	buf = append(buf, ':')
	for _, a := range in.Args {
		if a.Op == ir.OpConst {
			buf = append(buf, 'k')
			buf = strconv.AppendInt(buf, a.Imm, 10)
		} else {
			buf = strconv.AppendInt(buf, int64(a.ID), 10)
		}
		buf = append(buf, ',')
	}
	return buf
}

func rewriteUses(f *ir.Func, old, new *ir.Instr) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

func countUses(m *ir.Module) map[*ir.Instr]int {
	uses := make(map[*ir.Instr]int)
	m.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
		for _, a := range in.Args {
			uses[a]++
		}
	})
	return uses
}

// EvalBin mirrors the VM's ALU semantics (cross-checked by tests). It is
// exported so the translation validator (internal/verify/tv) folds
// constants with exactly the semantics the optimizer uses.
func EvalBin(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpSDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpSMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case ir.OpRotr:
		s := uint64(b) & 63
		u := uint64(a)
		return int64(u>>s | u<<(64-s)), true
	case ir.OpCrc32:
		x := uint64(a) ^ uint64(b)*0x9e3779b97f4a7c15
		x ^= x >> 32
		x *= 0xd6e8feb86659fd93
		x ^= x >> 32
		return int64(x), true
	case ir.OpCmpEq:
		return b2i(a == b), true
	case ir.OpCmpNe:
		return b2i(a != b), true
	case ir.OpCmpLt:
		return b2i(a < b), true
	case ir.OpCmpLe:
		return b2i(a <= b), true
	case ir.OpCmpGt:
		return b2i(a > b), true
	case ir.OpCmpGe:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
