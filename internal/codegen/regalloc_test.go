package codegen

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/vm"
)

// buildPressureLoop creates a loop with `hot` values used every iteration
// plus `cold` values defined before the loop and used only after it — the
// shape where spill-choice quality matters.
func buildPressureLoop(hot, cold int) *ir.Module {
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	done := b.NewBlock("done")

	var colds []*ir.Instr
	for i := 0; i < cold; i++ {
		colds = append(colds, b.Load(64, b.Const(int64(4096+i*8))))
	}
	var hots []*ir.Instr
	for i := 0; i < hot; i++ {
		hots = append(hots, b.Load(64, b.Const(int64(6144+i*8))))
	}
	zero := b.Const(0)
	n := b.Const(1000)
	b.Br(head)

	b.SetBlock(head)
	iv := b.Phi()
	acc := b.Phi()
	ir.AddIncoming(iv, zero)
	ir.AddIncoming(acc, zero)
	cond := b.Bin(ir.OpCmpLt, iv, n)
	b.CondBr(cond, body, done)

	b.SetBlock(body)
	sum := acc
	for _, h := range hots {
		sum = b.Add(sum, h)
	}
	i2 := b.Add(iv, b.Const(1))
	ir.AddIncoming(iv, i2)
	ir.AddIncoming(acc, sum)
	b.Br(head)

	b.SetBlock(done)
	out := sum
	for _, c := range colds {
		out = b.Add(out, c)
	}
	b.Store(64, b.Const(8192), out)
	b.Halt()
	return m
}

// TestSpillChoicePrefersColdValues: with more live values than registers,
// the allocator must spill the loop-cold values, keeping the per-iteration
// cost near the no-pressure baseline.
func TestSpillChoicePrefersColdValues(t *testing.T) {
	run := func(hot, cold int) uint64 {
		m := buildPressureLoop(hot, cold)
		res, err := Compile(m, DefaultConfig(testStaging, testSpill, testSpillSz))
		if err != nil {
			t.Fatal(err)
		}
		c := vm.New(1 << 16)
		c.Load(res.Program)
		if _, err := c.Run(0); err != nil {
			t.Fatal(err)
		}
		return c.Stats.Cycles
	}
	base := run(6, 0)       // fits comfortably
	pressured := run(6, 10) // 10 extra cold values force spills
	// The cold values are touched once; a loop-blind allocator would
	// instead spill hot loop values and pay per iteration.
	overhead := float64(pressured)/float64(base) - 1
	if overhead > 0.15 {
		t.Fatalf("cold pressure cost %.1f%% per run; spill choice is evicting hot values", 100*overhead)
	}
}

// TestPressureLoopCorrectness verifies results under heavy pressure with
// and without the reserved tag register.
func TestPressureLoopCorrectness(t *testing.T) {
	for _, tagging := range []bool{false, true} {
		m := buildPressureLoop(8, 12)
		cfg := DefaultConfig(testStaging, testSpill, testSpillSz)
		cfg.RegisterTagging = tagging
		res, err := Compile(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := vm.New(1 << 16)
		for i := 0; i < 12; i++ {
			c.WriteI64(int64(4096+i*8), 1) // cold values
		}
		for i := 0; i < 8; i++ {
			c.WriteI64(int64(6144+i*8), 2) // hot values
		}
		c.Load(res.Program)
		if _, err := c.Run(0); err != nil {
			t.Fatal(err)
		}
		want := int64(1000*8*2 + 12)
		if got := c.ReadI64(8192); got != want {
			t.Fatalf("tagging=%v: result = %d, want %d", tagging, got, want)
		}
	}
}

// TestReservedRegisterIncreasesSpills: the §6.2 mechanism at allocator
// granularity.
func TestReservedRegisterIncreasesSpills(t *testing.T) {
	m := buildPressureLoop(12, 4)
	free, err := Compile(m, DefaultConfig(testStaging, testSpill, testSpillSz))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(testStaging, testSpill, testSpillSz)
	cfg.RegisterTagging = true
	reserved, err := Compile(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reserved.Spills < free.Spills {
		t.Fatalf("reserving a register reduced spills (%d -> %d)?", free.Spills, reserved.Spills)
	}
}

// TestAllocatableRegisters checks the register sets.
func TestAllocatableRegisters(t *testing.T) {
	free := allocatableRegs(false)
	tagged := allocatableRegs(true)
	if len(free) != len(tagged)+1 {
		t.Fatalf("reservation should remove exactly one register: %d vs %d", len(free), len(tagged))
	}
	for _, r := range tagged {
		if r == isa.TagReg {
			t.Fatal("tag register allocatable despite reservation")
		}
		if r == scratchA || r == scratchB {
			t.Fatal("scratch register allocatable")
		}
	}
}
