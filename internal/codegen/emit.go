package codegen

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/isa"
)

// Config controls the backend.
type Config struct {
	// RegisterTagging reserves the tag register (isa.TagReg), removing it
	// from allocation, and is required for the PMU's captured tag values
	// to be meaningful.
	RegisterTagging bool
	// FuseCmpBranch enables compare-and-branch peephole fusion (Table 1
	// "instruction fusing"); on by default via DefaultConfig.
	FuseCmpBranch bool
	// StagingAddr is the heap address of the 4-slot call-argument staging
	// area.
	StagingAddr int64
	// SpillBase is the heap address where spill slots start; SpillCap is
	// the region size in bytes.
	SpillBase int64
	SpillCap  int64
	// Hot supplies profile guidance for a recompilation: scaled-address
	// fusion of hot loads, profile-guided block layout with branch-sense
	// inversion, and hotness-weighted spill priority. Nil (the default)
	// compiles exactly as the seed backend does.
	Hot Hotness
}

// Hotness is the profile guidance the backend consumes; *pgo.Hotness
// satisfies it (declared locally so codegen does not depend on the pgo
// package).
type Hotness interface {
	// InstrWeight returns one IR instruction's profile weight.
	InstrWeight(id int) float64
	// TotalWeight returns the total attributed weight.
	TotalWeight() float64
	// WeightOf sums the weight of the IR instructions fused into one
	// native instruction.
	WeightOf(irIDs []int) float64
	// TakenFraction returns a branch's observed taken fraction,
	// normalized to the source branch's then-direction; ok is false
	// without outcome observations.
	TakenFraction(irIDs []int) (float64, bool)
}

// DefaultConfig returns the standard backend configuration for the given
// memory layout.
func DefaultConfig(stagingAddr, spillBase, spillCap int64) Config {
	return Config{
		FuseCmpBranch: true,
		StagingAddr:   stagingAddr,
		SpillBase:     spillBase,
		SpillCap:      spillCap,
	}
}

// Result is a compiled program plus its debug information.
type Result struct {
	Program *isa.Program
	// NMap is the native→IR debug info (the DWARF analogue).
	NMap *core.NativeMap
	// SpillSlots is the total number of spill slots used.
	SpillSlots int
	// Spills counts spilled live intervals (code-quality metric for the
	// register-reservation experiment).
	Spills int
	// FusedBranches counts fused compare-and-branch instructions.
	FusedBranches int
}

// emitter assembles the final program.
type emitter struct {
	cfg   Config
	prog  *isa.Program
	nmap  *core.NativeMap
	res   *Result
	slots int

	callFix map[int]string // native pos → callee symbol
	symbols map[string]int // symbol → entry
}

// Compile lowers a module to native code. The function named "main" is
// placed at instruction 0 (the VM entry point); runtime routines are
// appended and calls resolved by symbol.
func Compile(m *ir.Module, cfg Config) (*Result, error) {
	e := &emitter{
		cfg:     cfg,
		prog:    &isa.Program{},
		nmap:    core.NewNativeMap(0),
		callFix: map[int]string{},
		symbols: map[string]int{},
	}
	e.res = &Result{Program: e.prog, NMap: e.nmap}

	funcs := make([]*ir.Func, 0, len(m.Funcs))
	for _, f := range m.Funcs {
		if f.Name == "main" {
			funcs = append(funcs, f)
		}
	}
	for _, f := range m.Funcs {
		if f.Name != "main" {
			funcs = append(funcs, f)
		}
	}
	if len(funcs) == 0 || funcs[0].Name != "main" {
		return nil, fmt.Errorf("codegen: module has no main function")
	}

	slotBase := 0
	for _, f := range funcs {
		lf, err := lowerFunc(f, &cfg)
		if err != nil {
			return nil, err
		}
		if cfg.Hot != nil {
			layoutFunc(lf, cfg.Hot)
		}
		alloc, next, err := allocate(lf, cfg.RegisterTagging, slotBase, cfg.Hot)
		if err != nil {
			return nil, err
		}
		slotBase = next
		e.res.Spills += alloc.spills
		if err := e.emitFunc(lf, alloc); err != nil {
			return nil, err
		}
	}
	e.slots = slotBase
	e.res.SpillSlots = slotBase
	if int64(slotBase*8) > cfg.SpillCap {
		return nil, fmt.Errorf("codegen: %d spill slots exceed spill region (%d bytes)", slotBase, cfg.SpillCap)
	}

	emitRuntime(e)

	// Resolve calls.
	for pos, name := range e.callFix {
		entry, ok := e.symbols[name]
		if !ok {
			return nil, fmt.Errorf("codegen: undefined symbol %q", name)
		}
		e.prog.Code[pos].Imm = int64(entry)
	}
	return e.res, nil
}

func (e *emitter) push(in isa.Instr, irIDs []int, region core.RegionKind, routine string) int {
	pos := len(e.prog.Code)
	e.prog.Code = append(e.prog.Code, in)
	e.nmap.IRs = append(e.nmap.IRs, irIDs)
	e.nmap.Region = append(e.nmap.Region, region)
	e.nmap.Routine = append(e.nmap.Routine, routine)
	e.nmap.Inverted = append(e.nmap.Inverted, false)
	return pos
}

func (e *emitter) spillAddr(slot int) int64 { return e.cfg.SpillBase + int64(slot)*8 }

// readInto materializes vreg v into a physical register: either its
// assigned register, or a load from its spill slot into scratch.
func (e *emitter) readInto(a *allocation, v vreg, scratch isa.Reg, irIDs []int) isa.Reg {
	r, slot, inReg := a.location(v)
	if inReg {
		return r
	}
	e.push(isa.Instr{Op: isa.LOAD64, Dst: scratch, Abs: true, Imm: e.spillAddr(slot)}, irIDs, core.RegionGenerated, "")
	return scratch
}

// destReg returns the register an instruction should compute into, plus a
// spill store to run afterwards (or -1 when none).
func (e *emitter) destReg(a *allocation, v vreg) (isa.Reg, int) {
	r, slot, inReg := a.location(v)
	if inReg {
		return r, -1
	}
	return scratchA, slot
}

func (e *emitter) flushDest(slot int, from isa.Reg, irIDs []int) {
	if slot < 0 {
		return
	}
	e.push(isa.Instr{Op: isa.STORE64, Dst: from, Abs: true, Imm: e.spillAddr(slot)}, irIDs, core.RegionGenerated, "")
}

func (e *emitter) emitFunc(fn *lfunc, a *allocation) error {
	entry := len(e.prog.Code)
	blockPos := make([]int, len(fn.blocks))
	type fix struct {
		pos   int
		block int
		imm2  bool
	}
	var fixes []fix

	for bi, b := range fn.blocks {
		blockPos[bi] = len(e.prog.Code)
		for ii := range b.ins {
			l := &b.ins[ii]
			ids := l.irIDs
			switch l.pseudo {
			case pParam:
				if l.imm >= isa.NumArgRegs {
					return fmt.Errorf("codegen: parameter %d out of range", l.imm)
				}
				src := isa.Reg(l.imm)
				if r, slot, inReg := a.location(l.dst); inReg {
					e.push(isa.Instr{Op: isa.MOVRR, Dst: r, Src1: src}, ids, core.RegionGenerated, "")
				} else {
					e.push(isa.Instr{Op: isa.STORE64, Dst: src, Abs: true, Imm: e.spillAddr(slot)}, ids, core.RegionGenerated, "")
				}
				continue
			case pRetVal:
				src := e.readInto(a, l.a, scratchA, ids)
				if src != 0 {
					e.push(isa.Instr{Op: isa.MOVRR, Dst: 0, Src1: src}, ids, core.RegionGenerated, "")
				}
				continue
			case pCall:
				e.emitCall(a, l)
				continue
			}

			switch l.op {
			case isa.MOVRI:
				dst := isa.TagReg
				slot := -1
				if !l.tagWrite {
					dst, slot = e.destReg(a, l.dst)
				}
				e.push(isa.Instr{Op: isa.MOVRI, Dst: dst, Imm: l.imm}, ids, core.RegionGenerated, "")
				e.flushDest(slot, dst, ids)

			case isa.MOVRR:
				switch {
				case l.tagWrite:
					src := e.readInto(a, l.a, scratchA, ids)
					e.push(isa.Instr{Op: isa.MOVRR, Dst: isa.TagReg, Src1: src}, ids, core.RegionGenerated, "")
				case l.tagRead:
					dst, slot := e.destReg(a, l.dst)
					e.push(isa.Instr{Op: isa.MOVRR, Dst: dst, Src1: isa.TagReg}, ids, core.RegionGenerated, "")
					e.flushDest(slot, dst, ids)
				default:
					src := e.readInto(a, l.a, scratchA, ids)
					dst, slot := e.destReg(a, l.dst)
					if dst != src || slot >= 0 {
						if dst != src {
							e.push(isa.Instr{Op: isa.MOVRR, Dst: dst, Src1: src}, ids, core.RegionGenerated, "")
						}
						e.flushDest(slot, dst, ids)
					}
				}

			case isa.LOAD8, isa.LOAD32, isa.LOAD64:
				base := e.readInto(a, l.a, scratchA, ids)
				in := isa.Instr{Op: l.op, Src1: base, Imm: l.imm}
				if l.scaled {
					in.Scaled = true
					in.Src2 = e.readInto(a, l.b, scratchB, ids)
				}
				dst, slot := e.destReg(a, l.dst)
				in.Dst = dst
				e.push(in, ids, core.RegionGenerated, "")
				e.flushDest(slot, dst, ids)

			case isa.STORE8, isa.STORE32, isa.STORE64:
				base := e.readInto(a, l.a, scratchA, ids)
				val := e.readInto(a, l.dst, scratchB, ids)
				e.push(isa.Instr{Op: l.op, Dst: val, Src1: base, Imm: l.imm}, ids, core.RegionGenerated, "")

			case isa.JMP:
				if l.tgt == bi+1 {
					continue // fallthrough
				}
				pos := e.push(isa.Instr{Op: isa.JMP}, ids, core.RegionGenerated, "")
				fixes = append(fixes, fix{pos, l.tgt, false})

			case isa.JNZ, isa.JZ:
				cond := e.readInto(a, l.a, scratchA, ids)
				pos := e.push(isa.Instr{Op: l.op, Src1: cond}, ids, core.RegionGenerated, "")
				e.nmap.Inverted[pos] = l.inverted
				fixes = append(fixes, fix{pos, l.tgt, false})

			case isa.JEQ, isa.JNE, isa.JLT, isa.JGE:
				x := e.readInto(a, l.a, scratchA, ids)
				in := isa.Instr{Op: l.op, Src1: x}
				if l.useImm {
					in.UseImm = true
					in.Imm = l.imm
				} else {
					in.Src2 = e.readInto(a, l.b, scratchB, ids)
				}
				pos := e.push(in, ids, core.RegionGenerated, "")
				e.nmap.Inverted[pos] = l.inverted
				fixes = append(fixes, fix{pos, l.tgt, true})
				e.res.FusedBranches++

			case isa.RET, isa.HALT, isa.NOP:
				e.push(isa.Instr{Op: l.op}, ids, core.RegionGenerated, "")

			case isa.TRAP:
				e.push(isa.Instr{Op: isa.TRAP, Imm: l.imm}, ids, core.RegionGenerated, "")

			default: // binary ALU / compare
				x := e.readInto(a, l.a, scratchA, ids)
				in := isa.Instr{Op: l.op, Src1: x}
				if l.useImm {
					in.UseImm = true
					in.Imm = l.imm
				} else {
					in.Src2 = e.readInto(a, l.b, scratchB, ids)
				}
				dst, slot := e.destReg(a, l.dst)
				in.Dst = dst
				e.push(in, ids, core.RegionGenerated, "")
				e.flushDest(slot, dst, ids)
			}
		}
	}

	for _, f := range fixes {
		target := int64(blockPos[f.block])
		if f.imm2 {
			e.prog.Code[f.pos].Imm2 = target
		} else {
			e.prog.Code[f.pos].Imm = target
		}
	}
	e.symbols[fn.name] = entry
	e.prog.Funcs = append(e.prog.Funcs, isa.FuncSym{Name: fn.name, Entry: entry, End: len(e.prog.Code)})
	return nil
}

// emitCall expands a call: stage argument values through memory (so
// argument-register shuffling can never clobber a source), load them into
// r0..r3, call, and store the result.
func (e *emitter) emitCall(a *allocation, l *lins) {
	ids := l.irIDs
	if len(l.args) > isa.NumArgRegs {
		bug("too many call arguments")
	}
	for i, arg := range l.args {
		src := e.readInto(a, arg, scratchA, ids)
		e.push(isa.Instr{Op: isa.STORE64, Dst: src, Abs: true, Imm: e.cfg.StagingAddr + int64(i)*8}, ids, core.RegionGenerated, "")
	}
	for i := range l.args {
		e.push(isa.Instr{Op: isa.LOAD64, Dst: isa.Reg(i), Abs: true, Imm: e.cfg.StagingAddr + int64(i)*8}, ids, core.RegionGenerated, "")
	}
	pos := e.push(isa.Instr{Op: isa.CALL}, ids, core.RegionGenerated, "")
	e.callFix[pos] = l.callee
	if l.hasRes {
		if r, slot, inReg := a.location(l.dst); inReg {
			if r != 0 {
				e.push(isa.Instr{Op: isa.MOVRR, Dst: r, Src1: 0}, ids, core.RegionGenerated, "")
			}
		} else {
			e.push(isa.Instr{Op: isa.STORE64, Dst: 0, Abs: true, Imm: e.spillAddr(slot)}, ids, core.RegionGenerated, "")
		}
	}
}
