package codegen

import "encoding/binary"

// Heap word accessors, shared by every host component that peeks into raw
// simulated-heap bytes (the engine's morsel scheduler, the partitioned
// merge staging, tprofvet's runtime checks). The simulated machine is
// little-endian; keeping the decode in one place next to the descriptor
// and entry layout constants avoids each caller re-implementing it.

// HeapI64 reads a little-endian int64 from a raw byte region.
func HeapI64(b []byte, off int64) int64 {
	return int64(binary.LittleEndian.Uint64(b[off:]))
}

// PutHeapI64 writes a little-endian int64 into a raw byte region.
func PutHeapI64(b []byte, off, v int64) {
	binary.LittleEndian.PutUint64(b[off:], uint64(v))
}
