package codegen

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// TestFunctionParameters exercises the OpParam lowering: main passes
// arguments in r0..r3 to a callee that combines them.
func TestFunctionParameters(t *testing.T) {
	m := ir.NewModule()

	callee := m.NewFunc("combine", 2)
	cb := ir.NewBuilder(callee)
	a := cb.Param(0)
	b := cb.Param(1)
	cb.Ret(cb.Add(cb.Mul(a, cb.Const(10)), b))

	mainFn := m.NewFunc("main", 0)
	mb := ir.NewBuilder(mainFn)
	res := mb.Call("combine", true, mb.Const(7), mb.Const(3))
	mb.Store(64, mb.Const(testData), res)
	mb.Halt()

	c := compileAndRun(t, m, nil)
	if got := c.ReadI64(testData); got != 73 {
		t.Fatalf("combine(7,3) = %d, want 73", got)
	}
}

// TestParamOutOfRangeRejected: parameters beyond the argument registers
// must fail at compile time.
func TestParamOutOfRangeRejected(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("main", 5)
	b := ir.NewBuilder(f)
	p := b.Param(4) // only r0..r3 carry arguments
	b.Store(64, b.Const(testData), p)
	b.Halt()
	if _, err := Compile(m, DefaultConfig(testStaging, testSpill, testSpillSz)); err == nil {
		t.Fatal("expected error for parameter 4")
	}
}

// TestLoadCostLevels: the cycle charge of a load reflects the serving
// cache level.
func TestLoadCostLevels(t *testing.T) {
	// Two loads of the same address: first from DRAM, second from L1.
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	addr := b.Const(testData)
	b.Load(64, addr)
	b.Load(64, addr)
	b.Halt()
	res, err := Compile(m, DefaultConfig(testStaging, testSpill, testSpillSz))
	if err != nil {
		t.Fatal(err)
	}
	c := vm.New(testHeap)
	c.Load(res.Program)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.Stats.MemAccesses != 1 || c.Stats.L1Hits != 1 {
		t.Fatalf("cache classification: %+v", c.Stats)
	}
	// movi + load(DRAM 180) + load(L1 4) + halt.
	want := uint64(1 + vm.CostLoadMem + vm.CostLoadL1 + 1)
	if c.Stats.Cycles != want {
		t.Fatalf("cycles = %d, want %d", c.Stats.Cycles, want)
	}
}
