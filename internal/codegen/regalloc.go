package codegen

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Register allocation: liveness analysis over the LIR, whole-interval
// construction, and Poletto/Sarkar linear scan with spilling.
//
// Two general-purpose registers (r13, r14) are reserved as spill scratch.
// When Register Tagging is enabled the tag register (isa.TagReg, r15) is
// additionally removed from allocation — the paper's "-ffixed" reservation
// (§5.3) — which is what the register-reservation overhead experiment
// measures. Values live across a CALL may not sit in the clobbered
// registers r0..r4.
const (
	scratchA = isa.Reg(13)
	scratchB = isa.Reg(14)
)

// allocatableRegs returns the registers available to the allocator.
func allocatableRegs(registerTagging bool) []isa.Reg {
	regs := []isa.Reg{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if !registerTagging {
		regs = append(regs, isa.TagReg)
	}
	return regs
}

// operands returns the vregs defined and used by one LIR instruction.
func (l *lins) operands() (defs, uses []vreg) {
	switch l.pseudo {
	case pParam:
		return []vreg{l.dst}, nil
	case pRetVal:
		return nil, []vreg{l.a}
	case pCall:
		if l.hasRes {
			defs = []vreg{l.dst}
		}
		return defs, l.args
	}
	switch l.op {
	case isa.MOVRI:
		if l.tagWrite {
			return nil, nil
		}
		return []vreg{l.dst}, nil
	case isa.MOVRR:
		if l.tagWrite {
			return nil, []vreg{l.a}
		}
		if l.tagRead {
			return []vreg{l.dst}, nil
		}
		return []vreg{l.dst}, []vreg{l.a}
	case isa.LOAD8, isa.LOAD32, isa.LOAD64:
		if l.scaled {
			return []vreg{l.dst}, []vreg{l.a, l.b}
		}
		return []vreg{l.dst}, []vreg{l.a}
	case isa.STORE8, isa.STORE32, isa.STORE64:
		return nil, []vreg{l.a, l.dst}
	case isa.JMP, isa.RET, isa.HALT, isa.TRAP, isa.NOP, isa.CALL:
		return nil, nil
	case isa.JNZ, isa.JZ:
		return nil, []vreg{l.a}
	case isa.JEQ, isa.JNE, isa.JLT, isa.JGE:
		if l.useImm {
			return nil, []vreg{l.a}
		}
		return nil, []vreg{l.a, l.b}
	default: // binary ALU / compare
		if l.useImm {
			return []vreg{l.dst}, []vreg{l.a}
		}
		return []vreg{l.dst}, []vreg{l.a, l.b}
	}
}

// interval is a live interval over linearized LIR positions.
type interval struct {
	v          vreg
	start, end int
	crossCall  bool
	// crossGenCall marks an interval live across a call to a *generated*
	// function. Runtime routines preserve the callee-saved registers
	// (only r0..r4 are clobbered), but generated functions allocate from
	// the full register file, so values crossing such a call can only
	// live in a spill slot.
	crossGenCall bool
	reg          isa.Reg
	spilled      bool
	slot         int
	// weight estimates dynamic access frequency (uses and defs scaled by
	// loop depth); the allocator prefers spilling cold intervals.
	weight float64
}

// allocation is the result of register allocation for one function.
type allocation struct {
	regOf  map[vreg]isa.Reg
	slotOf map[vreg]int // global spill-slot index
	spills int
}

// loc describes where a vreg lives.
func (a *allocation) location(v vreg) (isa.Reg, int, bool) {
	if r, ok := a.regOf[v]; ok {
		return r, 0, true
	}
	return 0, a.slotOf[v], false
}

// allocate runs liveness + linear scan for fn. slotBase is the first free
// global spill-slot index; the returned next value continues the counter
// so functions never share slots (main's spilled values survive pipeline
// calls). A non-nil hot scales interval weights by measured execution
// frequency, so spill pressure lands on values the profile saw idle.
func allocate(fn *lfunc, registerTagging bool, slotBase int, hot Hotness) (*allocation, int, error) {
	// Linearize positions.
	type posRef struct{ block, idx int }
	var linear []posRef
	blockStart := make([]int, len(fn.blocks))
	blockEnd := make([]int, len(fn.blocks))
	for bi, b := range fn.blocks {
		blockStart[bi] = len(linear)
		for i := range b.ins {
			linear = append(linear, posRef{bi, i})
		}
		blockEnd[bi] = len(linear) - 1
	}

	nv := int(fn.nvreg) + 1

	// Per-block gen/kill.
	gen := make([]map[vreg]bool, len(fn.blocks))
	kill := make([]map[vreg]bool, len(fn.blocks))
	for bi, b := range fn.blocks {
		g, k := map[vreg]bool{}, map[vreg]bool{}
		for i := range b.ins {
			defs, uses := b.ins[i].operands()
			for _, u := range uses {
				if u != 0 && !k[u] {
					g[u] = true
				}
			}
			for _, d := range defs {
				if d != 0 {
					k[d] = true
				}
			}
		}
		gen[bi], kill[bi] = g, k
	}

	// Backward fixpoint for live-in/out.
	liveIn := make([]map[vreg]bool, len(fn.blocks))
	liveOut := make([]map[vreg]bool, len(fn.blocks))
	for i := range liveIn {
		liveIn[i], liveOut[i] = map[vreg]bool{}, map[vreg]bool{}
	}
	for changed := true; changed; {
		changed = false
		for bi := len(fn.blocks) - 1; bi >= 0; bi-- {
			out := liveOut[bi]
			for _, s := range fn.blocks[bi].succs {
				for v := range liveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[bi]
			for v := range gen[bi] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !kill[bi][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}

	// Build whole intervals.
	starts := make([]int, nv)
	ends := make([]int, nv)
	for i := range starts {
		starts[i] = -1
	}
	extend := func(v vreg, p int) {
		if v == 0 {
			return
		}
		if starts[v] == -1 {
			starts[v], ends[v] = p, p
			return
		}
		if p < starts[v] {
			starts[v] = p
		}
		if p > ends[v] {
			ends[v] = p
		}
	}
	// Approximate loop depth per block: a backward branch from block b to
	// target t nests every block in [t, b]. Our lowering emits loop
	// bodies between header and latch, so this recovers nesting well
	// enough to weight spill decisions.
	depth := make([]int, len(fn.blocks))
	for bi, b := range fn.blocks {
		for _, tgt := range b.succs {
			if tgt <= bi {
				for j := tgt; j <= bi; j++ {
					if depth[j] < 3 {
						depth[j]++
					}
				}
			}
		}
	}
	weightOf := func(bi int) float64 {
		w := 1.0
		for d := 0; d < depth[bi]; d++ {
			w *= 10
		}
		return w
	}

	weights := make([]float64, nv)
	var hotTotal float64
	if hot != nil {
		hotTotal = hot.TotalWeight()
	}
	var callPositions, genCallPositions []int
	for p, ref := range linear {
		l := &fn.blocks[ref.block].ins[ref.idx]
		w := weightOf(ref.block)
		if hotTotal > 0 {
			// Measured frequency refines the static loop-depth estimate:
			// an access the profile saw hot defends its register harder.
			w *= 1 + 100*hot.WeightOf(l.irIDs)/hotTotal
		}
		defs, uses := l.operands()
		for _, d := range defs {
			extend(d, p)
			weights[d] += w
		}
		for _, u := range uses {
			extend(u, p)
			weights[u] += w
		}
		if l.pseudo == pCall {
			callPositions = append(callPositions, p)
			if !runtimeSym(l.callee) {
				genCallPositions = append(genCallPositions, p)
			}
		}
	}
	for bi := range fn.blocks {
		if len(fn.blocks[bi].ins) == 0 {
			continue
		}
		for v := range liveIn[bi] {
			extend(v, blockStart[bi])
		}
		for v := range liveOut[bi] {
			extend(v, blockEnd[bi])
		}
	}

	var ivs []*interval
	for v := 1; v < nv; v++ {
		if starts[v] == -1 {
			continue
		}
		iv := &interval{v: vreg(v), start: starts[v], end: ends[v], weight: weights[v]}
		for _, cp := range callPositions {
			if iv.start < cp && cp < iv.end {
				iv.crossCall = true
				break
			}
		}
		for _, cp := range genCallPositions {
			if iv.start < cp && cp < iv.end {
				iv.crossGenCall = true
				break
			}
		}
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].v < ivs[j].v
	})

	// Linear scan.
	regs := allocatableRegs(registerTagging)
	usable := func(iv *interval, r isa.Reg) bool {
		if iv.crossGenCall {
			return false // no register survives a generated-function call
		}
		return !iv.crossCall || r > isa.LastClobbered
	}
	alloc := &allocation{regOf: map[vreg]isa.Reg{}, slotOf: map[vreg]int{}}
	nextSlot := slotBase
	var active []*interval
	for _, iv := range ivs {
		// Expire finished intervals.
		kept := active[:0]
		for _, a := range active {
			if a.end >= iv.start {
				kept = append(kept, a)
			}
		}
		active = kept

		inUse := map[isa.Reg]bool{}
		for _, a := range active {
			if !a.spilled {
				inUse[a.reg] = true
			}
		}
		assigned := false
		for _, r := range regs {
			if !inUse[r] && usable(iv, r) {
				iv.reg = r
				assigned = true
				break
			}
		}
		if !assigned {
			// Spill the coldest candidate: the active interval with the
			// lowest estimated access frequency (ties: furthest end)
			// whose register this interval can use. Frequency weighting
			// keeps loop-resident values (column bases, cursors) in
			// registers; the furthest-end-only policy would evict them.
			var victim *interval
			for _, a := range active {
				if a.spilled || !usable(iv, a.reg) {
					continue
				}
				if victim == nil || a.weight < victim.weight ||
					(a.weight == victim.weight && a.end > victim.end) {
					victim = a
				}
			}
			if victim != nil && victim.weight < iv.weight {
				iv.reg = victim.reg
				victim.spilled = true
				victim.slot = nextSlot
				nextSlot++
				alloc.spills++
				delete(alloc.regOf, victim.v)
				alloc.slotOf[victim.v] = victim.slot
				assigned = true
			} else {
				iv.spilled = true
				iv.slot = nextSlot
				nextSlot++
				alloc.spills++
			}
		}
		if iv.spilled {
			alloc.slotOf[iv.v] = iv.slot
		} else {
			alloc.regOf[iv.v] = iv.reg
		}
		active = append(active, iv)
	}

	// Sanity: no vreg unmapped.
	for _, iv := range ivs {
		if _, okR := alloc.regOf[iv.v]; !okR {
			if _, okS := alloc.slotOf[iv.v]; !okS {
				return nil, 0, fmt.Errorf("codegen: vreg v%d unallocated in %s", iv.v, fn.name)
			}
		}
	}
	return alloc, nextSlot, nil
}
