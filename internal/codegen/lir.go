// Package codegen is the backend: lowering step 3 of the paper's stack
// (Fig. 8d). It translates the IR of internal/ir into the native
// instruction set of internal/isa — via a low-level IR (LIR) over virtual
// registers, liveness analysis, linear-scan register allocation with
// spilling, and peephole instruction fusing — and produces the per-native-
// instruction debug information (core.NativeMap) that stands in for DWARF:
// every emitted instruction records which IR instruction(s) it descends
// from, so the profiler can map samples back up the stack.
//
// When Register Tagging is enabled the allocator excludes the reserved tag
// register from allocation (the paper's -ffixed flag / LLVM change, §5.3),
// which is the source of the measured code-quality overhead.
package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// vreg is a virtual register; 0 is invalid.
type vreg int32

// lins is one LIR instruction: an isa-shaped operation over virtual
// registers with symbolic branch targets and attached debug info.
type lins struct {
	op     isa.Op
	pseudo pseudo

	dst, a, b vreg
	useImm    bool
	imm, imm2 int64

	tgt, tgt2 int // successor lblock indices for branches

	// scaled marks a memory operation using base+index scaled addressing:
	// a is the base, b the index register (address = a + imm + b*width).
	scaled bool
	// inverted marks a conditional branch whose sense the profile-guided
	// layout flipped; recorded in the native map so re-profiles normalize
	// outcome statistics back to the source branch's then-direction.
	inverted bool

	callee string
	args   []vreg
	hasRes bool

	// tagWrite/tagRead route MOVRR/MOVRI through the reserved tag
	// register instead of dst/a.
	tagWrite bool
	tagRead  bool

	irIDs []int // debug info: owning IR instruction IDs
}

type pseudo uint8

const (
	pNone pseudo = iota
	pCall
	pRetVal
	pParam // dst ← argument register #imm
)

// lblock is a basic block of LIR.
type lblock struct {
	name  string
	ins   []lins
	succs []int
}

// lfunc is a function being lowered.
type lfunc struct {
	name   string
	blocks []*lblock
	nvreg  vreg
}

func (f *lfunc) newVreg() vreg {
	f.nvreg++
	return f.nvreg
}

// lowerer translates one ir.Func into an lfunc.
type lowerer struct {
	cfg     *Config
	f       *ir.Func
	out     *lfunc
	blockIx map[*ir.Block]int
	regOf   map[*ir.Instr]vreg
	uses    map[*ir.Instr]int
	fused   map[*ir.Instr]bool // compare instructions folded into branches
	scaled  map[*ir.Instr]scaledAddr
}

// scaledAddr is a planned scaled-addressing fusion, keyed by a
// profile-hot 8-byte load: the load bypasses its address Add — and the
// Mul/Shl computing the index — using base+index*8 addressing directly,
// removing up to 4 cycles per execution once the address instructions'
// other consumers are fused too and they can be elided.
type scaledAddr struct {
	base, idx *ir.Instr
	ids       []int // IR IDs of the folded address instructions
}

func lowerFunc(f *ir.Func, cfg *Config) (*lfunc, error) {
	lo := &lowerer{
		cfg:     cfg,
		f:       f,
		out:     &lfunc{name: f.Name},
		blockIx: make(map[*ir.Block]int),
		regOf:   make(map[*ir.Instr]vreg),
		uses:    make(map[*ir.Instr]int),
		fused:   make(map[*ir.Instr]bool),
		scaled:  make(map[*ir.Instr]scaledAddr),
	}
	for i, b := range f.Blocks {
		lo.blockIx[b] = i
		lo.out.blocks = append(lo.out.blocks, &lblock{name: b.Name})
	}
	lo.countUses()
	lo.planFusion()
	lo.planScaledFusion()
	for i, b := range f.Blocks {
		if err := lo.lowerBlock(i, b); err != nil {
			return nil, err
		}
	}
	if err := lo.lowerPhis(); err != nil {
		return nil, err
	}
	lo.sweepDeadMovi()
	return lo.out, nil
}

func (lo *lowerer) countUses() {
	for _, b := range lo.f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				lo.uses[a]++
			}
		}
	}
}

// vregFor returns the virtual register holding an IR value.
func (lo *lowerer) vregFor(in *ir.Instr) vreg {
	v, ok := lo.regOf[in]
	if !ok {
		v = lo.out.newVreg()
		lo.regOf[in] = v
	}
	return v
}

func (lo *lowerer) emit(bi int, in lins) {
	lo.out.blocks[bi].ins = append(lo.out.blocks[bi].ins, in)
}

// opnd resolves an IR operand to a vreg; constants were materialized at
// their definition site (SSA dominance makes that always correct).
func (lo *lowerer) opnd(a *ir.Instr) vreg { return lo.vregFor(a) }

var binOps = map[ir.Op]isa.Op{
	ir.OpAdd: isa.ADD, ir.OpSub: isa.SUB, ir.OpMul: isa.MUL,
	ir.OpSDiv: isa.DIV, ir.OpSMod: isa.MOD,
	ir.OpAnd: isa.AND, ir.OpOr: isa.OR, ir.OpXor: isa.XOR,
	ir.OpShl: isa.SHL, ir.OpShr: isa.SHR, ir.OpRotr: isa.ROTR,
	ir.OpCrc32: isa.CRC32,
	ir.OpCmpEq: isa.CMPEQ, ir.OpCmpNe: isa.CMPNE,
	ir.OpCmpLt: isa.CMPLT, ir.OpCmpLe: isa.CMPLE,
	ir.OpCmpGt: isa.CMPGT, ir.OpCmpGe: isa.CMPGE,
}

var commutative = map[ir.Op]bool{
	ir.OpAdd: true, ir.OpMul: true, ir.OpAnd: true, ir.OpOr: true,
	ir.OpXor: true, ir.OpCrc32: true, ir.OpCmpEq: true, ir.OpCmpNe: true,
}

func (lo *lowerer) lowerBlock(bi int, b *ir.Block) error {
	lb := lo.out.blocks[bi]
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpConst:
			lo.emit(bi, lins{op: isa.MOVRI, dst: lo.vregFor(in), imm: in.Imm, irIDs: []int{in.ID}})

		case ir.OpParam:
			lo.emit(bi, lins{pseudo: pParam, dst: lo.vregFor(in), imm: in.Imm, irIDs: []int{in.ID}})

		case ir.OpPhi:
			lo.vregFor(in) // reserve; moves are inserted by lowerPhis

		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSMod,
			ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpRotr,
			ir.OpCrc32, ir.OpCmpEq, ir.OpCmpNe, ir.OpCmpLt, ir.OpCmpLe,
			ir.OpCmpGt, ir.OpCmpGe:
			lo.lowerBin(bi, in)

		case ir.OpLoad8, ir.OpLoad32, ir.OpLoad64:
			if sc, ok := lo.scaled[in]; ok {
				ids := append(append([]int(nil), sc.ids...), in.ID)
				lo.emit(bi, lins{op: isa.LOAD64, dst: lo.vregFor(in),
					a: lo.opnd(sc.base), b: lo.opnd(sc.idx), scaled: true, irIDs: ids})
				continue
			}
			base, off, extra := lo.addr(in.Args[0])
			op := map[ir.Op]isa.Op{ir.OpLoad8: isa.LOAD8, ir.OpLoad32: isa.LOAD32, ir.OpLoad64: isa.LOAD64}[in.Op]
			lo.emit(bi, lins{op: op, dst: lo.vregFor(in), a: base, imm: off, irIDs: appendID(extra, in.ID)})

		case ir.OpStore8, ir.OpStore32, ir.OpStore64:
			base, off, extra := lo.addr(in.Args[0])
			val := lo.opnd(in.Args[1])
			op := map[ir.Op]isa.Op{ir.OpStore8: isa.STORE8, ir.OpStore32: isa.STORE32, ir.OpStore64: isa.STORE64}[in.Op]
			lo.emit(bi, lins{op: op, dst: val, a: base, imm: off, irIDs: appendID(extra, in.ID)})

		case ir.OpBr:
			t := lo.blockIx[in.Targets[0]]
			lb.succs = []int{t}
			lo.emit(bi, lins{op: isa.JMP, tgt: t, irIDs: []int{in.ID}})

		case ir.OpCondBr:
			lo.lowerCondBr(bi, in)

		case ir.OpRet:
			if len(in.Args) > 0 {
				lo.emit(bi, lins{pseudo: pRetVal, a: lo.opnd(in.Args[0]), irIDs: []int{in.ID}})
			}
			lo.emit(bi, lins{op: isa.RET, irIDs: []int{in.ID}})

		case ir.OpCall:
			args := make([]vreg, len(in.Args))
			for i, a := range in.Args {
				args[i] = lo.opnd(a)
			}
			l := lins{pseudo: pCall, callee: in.Callee, args: args, irIDs: []int{in.ID}}
			if in.Type != ir.Void {
				l.hasRes = true
				l.dst = lo.vregFor(in)
			}
			lo.emit(bi, l)

		case ir.OpSetTag:
			arg := in.Args[0]
			if arg.Op == ir.OpConst {
				lo.emit(bi, lins{op: isa.MOVRI, tagWrite: true, imm: arg.Imm, irIDs: []int{in.ID}})
			} else {
				lo.emit(bi, lins{op: isa.MOVRR, tagWrite: true, a: lo.opnd(arg), irIDs: []int{in.ID}})
			}

		case ir.OpGetTag:
			lo.emit(bi, lins{op: isa.MOVRR, tagRead: true, dst: lo.vregFor(in), irIDs: []int{in.ID}})

		case ir.OpHalt:
			lo.emit(bi, lins{op: isa.HALT, irIDs: []int{in.ID}})

		case ir.OpTrap:
			lo.emit(bi, lins{op: isa.TRAP, imm: in.Imm, irIDs: []int{in.ID}})

		default:
			return fmt.Errorf("codegen: cannot lower %s", in.Op)
		}
	}
	return nil
}

func (lo *lowerer) lowerBin(bi int, in *ir.Instr) {
	if lo.fused[in] {
		return // folded into a branch
	}
	op := binOps[in.Op]
	x, y := in.Args[0], in.Args[1]
	// Fold a constant second operand into the immediate form; exploit
	// commutativity to fold a constant first operand too.
	if x.Op == ir.OpConst && y.Op != ir.OpConst && commutative[in.Op] {
		x, y = y, x
	}
	l := lins{op: op, dst: lo.vregFor(in), a: lo.opnd(x), irIDs: []int{in.ID}}
	if y.Op == ir.OpConst {
		l.useImm = true
		l.imm = y.Imm
	} else {
		l.b = lo.opnd(y)
	}
	lo.emit(bi, l)
}

// addr decomposes an address operand into base + constant displacement
// (peephole address folding; the folded Add's IR ID joins the debug info).
func (lo *lowerer) addr(a *ir.Instr) (base vreg, off int64, foldedIDs []int) {
	if a.Op == ir.OpAdd {
		x, y := a.Args[0], a.Args[1]
		if y.Op == ir.OpConst && lo.uses[a] == 1 && x.Op != ir.OpConst {
			lo.fused[a] = true
			return lo.opnd(x), y.Imm, []int{a.ID}
		}
		if x.Op == ir.OpConst && lo.uses[a] == 1 && y.Op != ir.OpConst {
			lo.fused[a] = true
			return lo.opnd(y), x.Imm, []int{a.ID}
		}
	}
	return lo.opnd(a), 0, nil
}

// planFusion pre-marks comparisons that will fold into their (single)
// consuming conditional branch, so lowerBin skips them even though they
// appear earlier in the block than the branch.
func (lo *lowerer) planFusion() {
	if !lo.cfg.FuseCmpBranch {
		return
	}
	for _, b := range lo.f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCondBr {
				continue
			}
			cond := in.Args[0]
			if cond.Block != in.Block || lo.uses[cond] != 1 {
				continue
			}
			if fop, _, _, _ := fuseKind(cond); fop != isa.NOP {
				lo.fused[cond] = true
			}
		}
	}
}

// planScaledFusion pre-marks profile-hot 8-byte loads that fit the
// machine's scaled addressing mode:
//
//	Load64( Add(base, Mul(idx, 8)) )   →  LOAD64 dst, [base + idx*8]
//	Load64( Add(base, Shl(idx, 3)) )   →  (same; strength-reduced form)
//
// Like planFusion this must run before lowering: the Add and Mul/Shl
// appear earlier in the block than the load, so by the time the load is
// lowered they would already have been emitted. Each matching load
// independently bypasses the address computation (the scaled operand is
// the raw index); the Add itself — CSE typically shares one Add across
// several lazy column loads — is elided once *every* consumer bypasses
// it, and likewise the Mul/Shl once every consumer Add is elided. Elided
// instructions credit their IR IDs to the fused loads' debug info.
// Runs only under a profile (cfg.Hot) and only for loads the profile
// observed executing: this is the backend half of profile-guided
// recompilation, and unprofiled compiles must be byte-identical to the
// seed backend's output.
func (lo *lowerer) planScaledFusion() {
	if lo.cfg.Hot == nil {
		return
	}
	addLoads := map[*ir.Instr][]*ir.Instr{} // address Add → fused loads over it
	addIdxe := map[*ir.Instr]*ir.Instr{}    // address Add → its Mul/Shl
	for _, b := range lo.f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpLoad64 {
				continue
			}
			if lo.cfg.Hot.InstrWeight(in.ID) <= 0 {
				continue
			}
			add := in.Args[0]
			if add.Op != ir.OpAdd || lo.fused[add] {
				continue
			}
			base, idxe := add.Args[0], add.Args[1]
			if scaleIndex(idxe) == nil {
				base, idxe = idxe, base
			}
			idx := scaleIndex(idxe)
			if idx == nil || base.Op == ir.OpConst {
				continue
			}
			lo.scaled[in] = scaledAddr{base: base, idx: idx}
			addLoads[add] = append(addLoads[add], in)
			addIdxe[add] = idxe
		}
	}
	// Elide an Add when every one of its uses is a bypassing load.
	for add, loads := range addLoads {
		if len(loads) != lo.uses[add] {
			continue
		}
		lo.fused[add] = true
		for _, ld := range loads {
			sc := lo.scaled[ld]
			sc.ids = append(sc.ids, add.ID)
			lo.scaled[ld] = sc
		}
	}
	// Elide a Mul/Shl when every one of its uses is an elided Add. (Each
	// elided Add contributed one use; compare against the Add count, not
	// the load count, since one Add can feed several loads.)
	idxeAdds := map[*ir.Instr]int{}
	for add := range addLoads {
		if lo.fused[add] {
			idxeAdds[addIdxe[add]]++
		}
	}
	for idxe, n := range idxeAdds {
		if n != lo.uses[idxe] {
			continue
		}
		lo.fused[idxe] = true
		for add, loads := range addLoads {
			if addIdxe[add] != idxe || !lo.fused[add] {
				continue
			}
			for _, ld := range loads {
				sc := lo.scaled[ld]
				sc.ids = append(sc.ids, idxe.ID)
				lo.scaled[ld] = sc
			}
		}
	}
}

// scaleIndex recognizes an index expression scaled by the 8-byte access
// width — Mul(i, 8) (either operand order) or Shl(i, 3) — and returns the
// unscaled index value, or nil.
func scaleIndex(e *ir.Instr) *ir.Instr {
	if len(e.Args) != 2 {
		return nil
	}
	x, y := e.Args[0], e.Args[1]
	switch e.Op {
	case ir.OpMul:
		if y.Op == ir.OpConst && y.Imm == 8 && x.Op != ir.OpConst {
			return x
		}
		if x.Op == ir.OpConst && x.Imm == 8 && y.Op != ir.OpConst {
			return y
		}
	case ir.OpShl:
		if y.Op == ir.OpConst && y.Imm == 3 && x.Op != ir.OpConst {
			return x
		}
	}
	return nil
}

// lowerCondBr emits a fused compare-and-branch when planFusion marked the
// condition (Table 1 "instruction fusing": the fused native instruction's
// debug info lists both the compare's and the branch's IR IDs).
func (lo *lowerer) lowerCondBr(bi int, in *ir.Instr) {
	lb := lo.out.blocks[bi]
	then := lo.blockIx[in.Targets[0]]
	els := lo.blockIx[in.Targets[1]]
	lb.succs = []int{then, els}

	cond := in.Args[0]
	if lo.fused[cond] {
		if fop, srcA, srcB, swap := fuseKind(cond); fop != isa.NOP {
			l := lins{op: fop, tgt: then, tgt2: els, irIDs: []int{cond.ID, in.ID}}
			x, y := srcA, srcB
			if swap {
				x, y = y, x
			}
			l.a = lo.opnd(x)
			if y.Op == ir.OpConst && !swap {
				l.useImm = true
				l.imm = y.Imm
			} else {
				l.b = lo.opnd(y)
			}
			lo.emit(bi, l)
			lo.emit(bi, lins{op: isa.JMP, tgt: els, irIDs: []int{in.ID}})
			return
		}
	}
	lo.emit(bi, lins{op: isa.JNZ, a: lo.opnd(cond), tgt: then, tgt2: els, irIDs: []int{in.ID}})
	lo.emit(bi, lins{op: isa.JMP, tgt: els, irIDs: []int{in.ID}})
}

// fuseKind maps a comparison to a fused branch opcode. swap indicates the
// operands must be exchanged (a<=b  ≡  b>=a).
func fuseKind(cmp *ir.Instr) (op isa.Op, a, b *ir.Instr, swap bool) {
	x, y := cmp.Args[0], cmp.Args[1]
	switch cmp.Op {
	case ir.OpCmpEq:
		return isa.JEQ, x, y, false
	case ir.OpCmpNe:
		return isa.JNE, x, y, false
	case ir.OpCmpLt:
		return isa.JLT, x, y, false
	case ir.OpCmpGe:
		return isa.JGE, x, y, false
	case ir.OpCmpLe:
		return isa.JGE, x, y, true
	case ir.OpCmpGt:
		return isa.JLT, x, y, true
	}
	return isa.NOP, nil, nil, false
}

func appendID(ids []int, id int) []int { return append(ids, id) }

// lowerPhis inserts the parallel copies that realize phi nodes. Copies are
// placed at the end of each predecessor; when the predecessor has several
// successors (a critical edge) a fresh edge block is spliced in so the
// copies execute on the right path only.
func (lo *lowerer) lowerPhis() error {
	for bIdx, b := range lo.f.Blocks {
		var phis []*ir.Instr
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				phis = append(phis, in)
			}
		}
		if len(phis) == 0 {
			continue
		}
		for pi, pred := range b.Preds {
			var moves []phimove
			for _, phi := range phis {
				arg := phi.Args[pi]
				m := phimove{dst: lo.vregFor(phi), irID: phi.ID}
				if arg.Op == ir.OpConst {
					m.srcConst = arg
				} else {
					m.src = lo.vregFor(arg)
				}
				moves = append(moves, m)
			}
			predIx := lo.blockIx[pred]
			target := predIx
			if len(lo.out.blocks[predIx].succs) > 1 {
				// Critical edge: splice in an edge block.
				eb := &lblock{name: pred.Name + ".to." + b.Name, succs: []int{bIdx}}
				lo.out.blocks = append(lo.out.blocks, eb)
				ebIx := len(lo.out.blocks) - 1
				retargetBranch(lo.out.blocks[predIx], bIdx, ebIx)
				eb.ins = append(eb.ins, lins{op: isa.JMP, tgt: bIdx})
				target = ebIx
			}
			// Order the parallel copies so no source is clobbered before
			// it is read; break cycles through a temporary.
			seq, err := schedule(moves, lo.out)
			if err != nil {
				return fmt.Errorf("codegen: %s: %v", lo.f.Name, err)
			}
			insertBeforeTerminator(lo.out.blocks[target], seq)
		}
	}
	return nil
}

// phimove is one pending parallel copy for a phi edge.
type phimove struct {
	dst, src vreg
	srcConst *ir.Instr // non-nil when the incoming value is a constant
	irID     int
}

// schedule orders parallel moves; cycles are broken with a fresh temp vreg.
func schedule(moves []phimove, f *lfunc) ([]lins, error) {
	var out []lins
	pending := moves
	for len(pending) > 0 {
		progressed := false
		for i := 0; i < len(pending); i++ {
			m := pending[i]
			// A move is safe when its destination is not a source of any
			// other pending move.
			safe := true
			for j, o := range pending {
				if j != i && o.srcConst == nil && o.src == m.dst {
					safe = false
					break
				}
			}
			if !safe {
				continue
			}
			out = append(out, moveIns(m.dst, m.src, m.srcConst, m.irID))
			pending = append(pending[:i], pending[i+1:]...)
			i--
			progressed = true
		}
		if !progressed {
			// Cycle: save one endangered source into a temp and retarget.
			m := pending[0]
			if m.srcConst != nil {
				return nil, fmt.Errorf("phi move cycle through constant")
			}
			tmp := f.newVreg()
			out = append(out, lins{op: isa.MOVRR, dst: tmp, a: m.src, irIDs: []int{m.irID}})
			for i := range pending {
				if pending[i].srcConst == nil && pending[i].src == m.src {
					pending[i].src = tmp
				}
			}
		}
	}
	return out, nil
}

func moveIns(dst, src vreg, c *ir.Instr, irID int) lins {
	if c != nil {
		return lins{op: isa.MOVRI, dst: dst, imm: c.Imm, irIDs: []int{irID}}
	}
	return lins{op: isa.MOVRR, dst: dst, a: src, irIDs: []int{irID}}
}

// insertBeforeTerminator places code before the block's trailing branch
// sequence (a fused Jcc + JMP pair counts as the terminator).
func insertBeforeTerminator(b *lblock, seq []lins) {
	cut := len(b.ins)
	for cut > 0 && isTerminatorIns(&b.ins[cut-1]) {
		cut--
	}
	// Safety check: the terminator must not read any copied-to register.
	for i := cut; i < len(b.ins); i++ {
		t := &b.ins[i]
		for _, m := range seq {
			if m.dst != 0 && (t.a == m.dst || (!t.useImm && t.b == m.dst)) {
				bug("phi copy clobbers terminator operand in " + b.name)
			}
		}
	}
	tail := make([]lins, len(b.ins)-cut)
	copy(tail, b.ins[cut:])
	b.ins = append(b.ins[:cut], append(seq, tail...)...)
}

func isTerminatorIns(l *lins) bool {
	switch l.op {
	case isa.JMP, isa.JNZ, isa.JZ, isa.JEQ, isa.JNE, isa.JLT, isa.JGE,
		isa.RET, isa.HALT, isa.TRAP:
		return l.pseudo == pNone
	}
	return false
}

// retargetBranch rewrites branch targets old→new in b's terminators.
func retargetBranch(b *lblock, old, new int) {
	for i := range b.ins {
		l := &b.ins[i]
		if l.tgt == old && isTerminatorIns(l) {
			l.tgt = new
		}
		if l.tgt2 == old && isTerminatorIns(l) {
			l.tgt2 = new
		}
	}
	for i, s := range b.succs {
		if s == old {
			b.succs[i] = new
		}
	}
}

// sweepDeadMovi removes constant materializations whose value is never
// consumed (every use was folded into an immediate operand).
func (lo *lowerer) sweepDeadMovi() {
	used := make(map[vreg]bool)
	for _, b := range lo.out.blocks {
		for i := range b.ins {
			l := &b.ins[i]
			if l.a != 0 {
				used[l.a] = true
			}
			if !l.useImm && l.b != 0 {
				used[l.b] = true
			}
			if l.op == isa.STORE8 || l.op == isa.STORE32 || l.op == isa.STORE64 {
				used[l.dst] = true
			}
			if l.pseudo == pCall {
				for _, a := range l.args {
					used[a] = true
				}
			}
			if l.pseudo == pRetVal {
				used[l.a] = true
			}
		}
	}
	for _, b := range lo.out.blocks {
		kept := b.ins[:0]
		for _, l := range b.ins {
			if l.op == isa.MOVRI && l.pseudo == pNone && !l.tagWrite && !used[l.dst] {
				continue
			}
			kept = append(kept, l)
		}
		b.ins = kept
	}
}
