package codegen

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/vm"
)

const (
	testHeap    = 1 << 20
	testStaging = 64
	testSpill   = 128
	testSpillSz = 4096
	testData    = 8192
)

func compileAndRun(t *testing.T, m *ir.Module, setup func(c *vm.CPU)) *vm.CPU {
	t.Helper()
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := Compile(m, DefaultConfig(testStaging, testSpill, testSpillSz))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	c := vm.New(testHeap)
	if setup != nil {
		setup(c)
	}
	c.Load(res.Program)
	if _, err := c.Run(10_000_000); err != nil {
		t.Fatalf("run: %v\n%s", err, res.Program.Disasm())
	}
	return c
}

// TestSumLoop compiles a loop that sums 100 consecutive int64s and checks
// the result, exercising phis, fused branches, loads and stores.
func TestSumLoop(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)

	head := b.NewBlock("head")
	body := b.NewBlock("body")
	done := b.NewBlock("done")

	base := b.Const(testData)
	n := b.Const(100)
	zero := b.Const(0)
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi()
	sum := b.Phi()
	ir.AddIncoming(i, zero)
	ir.AddIncoming(sum, zero)
	cond := b.Bin(ir.OpCmpLt, i, n)
	b.CondBr(cond, body, done)

	b.SetBlock(body)
	off := b.Mul(i, b.Const(8))
	addr := b.Add(base, off)
	v := b.Load(64, addr)
	sum2 := b.Add(sum, v)
	i2 := b.Add(i, b.Const(1))
	ir.AddIncoming(i, i2)
	ir.AddIncoming(sum, sum2)
	b.Br(head)

	b.SetBlock(done)
	out := b.Const(testData + 4096)
	b.Store(64, out, sum)
	b.Halt()

	c := compileAndRun(t, m, func(c *vm.CPU) {
		for k := 0; k < 100; k++ {
			c.WriteI64(testData+int64(k)*8, int64(k+1))
		}
	})
	if got := c.ReadI64(testData + 4096); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
}

// TestCallRuntime exercises ht_insert: inserts 3 keyed entries, then walks
// the chain structure from the host side.
func TestCallRuntime(t *testing.T) {
	const (
		desc  = int64(testData)
		dir   = int64(testData + 256)
		arena = int64(testData + 1024)
	)
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)

	descC := b.Const(desc)
	for k := int64(0); k < 3; k++ {
		hash := b.Const(7) // all collide into one chain
		entry := b.Call(SymHTInsert, true, descC, hash, b.Const(HTEntryHeader+8))
		keyAddr := b.Add(entry, b.Const(HTEntryHeader))
		b.Store(64, keyAddr, b.Const(100+k))
	}
	b.Halt()

	c := compileAndRun(t, m, func(c *vm.CPU) {
		c.WriteI64(desc+HTDescDir, dir)
		c.WriteI64(desc+HTDescMask, 15)
		c.WriteI64(desc+HTDescCursor, arena)
		c.WriteI64(desc+HTDescEnd, arena+4096)
	})

	head := c.ReadI64(dir + (7&15)*8)
	if head == 0 {
		t.Fatal("chain head not set")
	}
	var keys []int64
	for e := head; e != 0; e = c.ReadI64(e + HTEntryNext) {
		if h := c.ReadI64(e + HTEntryHash); h != 7 {
			t.Fatalf("entry hash = %d, want 7", h)
		}
		keys = append(keys, c.ReadI64(e+HTEntryHeader))
	}
	if len(keys) != 3 || keys[0] != 102 || keys[1] != 101 || keys[2] != 100 {
		t.Fatalf("chain keys = %v, want [102 101 100]", keys)
	}
}

// TestRegisterPressureSpills forces more live values than registers and
// checks both correctness and that spilling actually happened.
func TestRegisterPressureSpills(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)

	// 16 loaded values all live until the final combine.
	var vals []*ir.Instr
	base := b.Const(testData)
	for k := 0; k < 16; k++ {
		addr := b.Add(base, b.Const(int64(k)*8))
		vals = append(vals, b.Load(64, addr))
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = b.Add(acc, v)
	}
	b.Store(64, b.Const(testData+4096), acc)
	b.Halt()

	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := Compile(m, DefaultConfig(testStaging, testSpill, testSpillSz))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// All 16 values are live simultaneously; with ≤10 allocatable
	// registers some must spill.
	if res.Spills == 0 {
		t.Fatal("expected spills under register pressure")
	}
	c := vm.New(testHeap)
	for k := 0; k < 16; k++ {
		c.WriteI64(testData+int64(k)*8, int64(1)<<k)
	}
	c.Load(res.Program)
	if _, err := c.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := c.ReadI64(testData + 4096); got != (1<<16)-1 {
		t.Fatalf("acc = %d, want %d", got, (1<<16)-1)
	}
}

// TestTagRegisterReserved checks that enabling Register Tagging removes
// isa.TagReg from generated code except for tag writes.
func TestTagRegisterReserved(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	prev := b.GetTag()
	b.SetTag(b.Const(42))
	// Some register pressure so the allocator would love to use r11.
	base := b.Const(testData)
	var vals []*ir.Instr
	for k := 0; k < 12; k++ {
		vals = append(vals, b.Load(64, b.Add(base, b.Const(int64(k)*8))))
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = b.Add(acc, v)
	}
	b.Store(64, b.Const(testData+4096), acc)
	b.SetTag(prev)
	b.Halt()

	cfg := DefaultConfig(testStaging, testSpill, testSpillSz)
	cfg.RegisterTagging = true
	res, err := Compile(m, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for i, in := range res.Program.Code {
		sym := res.Program.FuncAt(i)
		if sym != nil && sym.Name != "main" {
			continue // runtime routines use their own registers
		}
		writesTag := (in.Op == isa.MOVRI || in.Op == isa.MOVRR) && in.Dst == isa.TagReg
		readsTag := in.Op == isa.MOVRR && in.Src1 == isa.TagReg
		if writesTag || readsTag {
			continue
		}
		if in.Dst == isa.TagReg && !in.IsStore() && in.Op != isa.NOP && in.Op != isa.JMP &&
			in.Op != isa.HALT && in.Op != isa.RET {
			t.Fatalf("instr %d (%s) allocates the reserved tag register", i, in.String())
		}
	}
	// And with tagging the tag value must survive execution.
	c := vm.New(testHeap)
	c.Load(res.Program)
	if _, err := c.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := c.Regs[isa.TagReg]; got != 0 {
		t.Fatalf("tag register after restore = %d, want 0", got)
	}
}

// TestDebugInfoCoverage checks that every generated (non-runtime) native
// instruction carries IR lineage — the property attribution relies on.
func TestDebugInfoCoverage(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	x := b.Load(64, b.Const(testData))
	y := b.Mul(x, b.Const(3))
	b.Store(64, b.Const(testData+8), y)
	b.Halt()

	res, err := Compile(m, DefaultConfig(testStaging, testSpill, testSpillSz))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for i := range res.Program.Code {
		sym := res.Program.FuncAt(i)
		if sym == nil || sym.Name != "main" {
			continue
		}
		if len(res.NMap.IRs[i]) == 0 {
			t.Errorf("native instr %d (%s) has no debug info", i, res.Program.Code[i].String())
		}
	}
}
