package codegen

import (
	"repro/internal/core"
	"repro/internal/isa"
)

// Pre-compiled runtime routines, hand-written in native code — the
// analogue of Umbra's pre-compiled C++ helpers.
//
//	ht_insert  — chaining-hash-table insert, shared by every join build
//	             and aggregation across the whole query: the paper's
//	             canonical *shared source location* (§4.2.5). Callers wrap
//	             the call in Register Tagging; the routine's region is
//	             RegionShared so samples resolve through the tag register
//	             or call stack.
//	memset64   — clears hash-table directories; runtime-system work that
//	             attributes to the "kernel" pseudo-task (Table 2's
//	             "Kernel Tasks" bucket).
//	bumpalloc  — bump allocation for result rows; deliberately untagged
//	             "system library" code reproducing the paper's ~2%
//	             unattributed samples.
//
// Calling convention: args r0..r3, result r0, r0..r4 clobbered.

// Runtime routine symbols.
const (
	SymHTInsert  = "ht_insert"
	SymMemset64  = "memset64"
	SymBumpAlloc = "bumpalloc"
)

// runtimeSym reports whether a call target is a hand-written runtime
// routine, which honors the convention above (r0..r4 clobbered, the rest
// preserved). Generated functions make no such promise: values live
// across a call to one must be spilled.
func runtimeSym(name string) bool {
	switch name {
	case SymHTInsert, SymMemset64, SymBumpAlloc:
		return true
	}
	return false
}

// Hash-table descriptor layout (heap block passed to ht_insert):
const (
	HTDescDir    = 0  // directory base address
	HTDescMask   = 8  // directory mask (slots-1)
	HTDescCursor = 16 // arena bump cursor
	HTDescEnd    = 24 // arena end
	HTDescSize   = 32
)

// Hash-table entry header layout: [next | hash | payload...].
const (
	HTEntryNext   = 0
	HTEntryHash   = 8
	HTEntryHeader = 16
)

// Allocator descriptor layout (bumpalloc): [cursor | end].
const (
	AllocDescCursor = 0
	AllocDescEnd    = 8
	AllocDescSize   = 16
)

// Trap codes used by runtime routines.
const (
	TrapHTArenaFull = 1
	TrapAllocFull   = 2
)

func emitRuntime(e *emitter) {
	emitRoutine(e, SymHTInsert, core.RegionShared, htInsertCode)
	emitRoutine(e, SymMemset64, core.RegionKernel, memset64Code)
	emitRoutine(e, SymBumpAlloc, core.RegionLibrary, bumpAllocCode)
}

// emitRoutine appends a routine whose branch targets are entry-relative.
func emitRoutine(e *emitter, name string, region core.RegionKind, code []isa.Instr) {
	entry := len(e.prog.Code)
	for _, in := range code {
		if in.IsBranch() {
			if in.Op == isa.JMP || in.Op == isa.JNZ || in.Op == isa.JZ {
				in.Imm += int64(entry)
			} else {
				in.Imm2 += int64(entry)
			}
		}
		e.push(in, nil, region, name)
	}
	e.symbols[name] = entry
	e.prog.Funcs = append(e.prog.Funcs, isa.FuncSym{Name: name, Entry: entry, End: len(e.prog.Code)})
}

// htInsertCode: r0 = hash-table descriptor, r1 = hash, r2 = entry size
// (header included); returns r0 = new entry address. The entry is linked
// at the head of its directory chain with its hash stored; the caller
// fills key and payload.
var htInsertCode = []isa.Instr{
	{Op: isa.LOAD64, Dst: 3, Src1: 0, Imm: HTDescCursor},      // 0: entry = cursor
	{Op: isa.ADD, Dst: 2, Src1: 3, Src2: 2},                   // 1: newcur = entry + size
	{Op: isa.LOAD64, Dst: 4, Src1: 0, Imm: HTDescEnd},         // 2: end
	{Op: isa.JGE, Src1: 4, Src2: 2, Imm2: 5},                  // 3: if end >= newcur goto 5
	{Op: isa.TRAP, Imm: TrapHTArenaFull},                      // 4
	{Op: isa.STORE64, Dst: 2, Src1: 0, Imm: HTDescCursor},     // 5: cursor = newcur
	{Op: isa.STORE64, Dst: 1, Src1: 3, Imm: HTEntryHash},      // 6: entry.hash = hash
	{Op: isa.LOAD64, Dst: 2, Src1: 0, Imm: HTDescMask},        // 7: mask
	{Op: isa.AND, Dst: 2, Src1: 1, Src2: 2},                   // 8: slot = hash & mask
	{Op: isa.LOAD64, Dst: 4, Src1: 0, Imm: HTDescDir},         // 9: dir
	{Op: isa.LOAD64, Dst: 1, Src1: 4, Src2: 2, Scaled: true},  // 10: head = dir[slot]
	{Op: isa.STORE64, Dst: 1, Src1: 3, Imm: HTEntryNext},      // 11: entry.next = head
	{Op: isa.STORE64, Dst: 3, Src1: 4, Src2: 2, Scaled: true}, // 12: dir[slot] = entry
	{Op: isa.MOVRR, Dst: 0, Src1: 3},                          // 13: return entry
	{Op: isa.RET},                                             // 14
}

// memset64Code: r0 = address, r1 = value, r2 = byte count (multiple of 8).
var memset64Code = []isa.Instr{
	{Op: isa.ADD, Dst: 3, Src1: 0, Src2: 2},              // 0: end = addr + n
	{Op: isa.JGE, Src1: 0, Src2: 3, Imm2: 5},             // 1: while addr < end
	{Op: isa.STORE64, Dst: 1, Src1: 0},                   // 2:   *addr = value
	{Op: isa.ADD, Dst: 0, Src1: 0, UseImm: true, Imm: 8}, // 3: addr += 8
	{Op: isa.JMP, Imm: 1},                                // 4
	{Op: isa.RET},                                        // 5
}

// bumpAllocCode: r0 = allocator descriptor, r1 = size; returns r0 = block.
var bumpAllocCode = []isa.Instr{
	{Op: isa.LOAD64, Dst: 2, Src1: 0, Imm: AllocDescCursor},  // 0
	{Op: isa.ADD, Dst: 3, Src1: 2, Src2: 1},                  // 1: newcur
	{Op: isa.LOAD64, Dst: 4, Src1: 0, Imm: AllocDescEnd},     // 2
	{Op: isa.JGE, Src1: 4, Src2: 3, Imm2: 5},                 // 3
	{Op: isa.TRAP, Imm: TrapAllocFull},                       // 4
	{Op: isa.STORE64, Dst: 3, Src1: 0, Imm: AllocDescCursor}, // 5
	{Op: isa.MOVRR, Dst: 0, Src1: 2},                         // 6
	{Op: isa.RET},                                            // 7
}
