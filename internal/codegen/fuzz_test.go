package codegen

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/xrand"
)

// exprNode is a host-side mirror of a randomly generated expression.
type exprNode struct {
	op   ir.Op
	l, r *exprNode
	leaf int   // input index when l == nil and isConst == false
	k    int64 // constant value when isConst
	isK  bool
}

// eval computes the expression host-side with the VM's semantics.
func (e *exprNode) eval(inputs []int64) int64 {
	if e.l == nil {
		if e.isK {
			return e.k
		}
		return inputs[e.leaf]
	}
	a, b := e.l.eval(inputs), e.r.eval(inputs)
	switch e.op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case ir.OpSDiv:
		return a / b // generator guarantees b is a non-zero constant
	case ir.OpCmpLt:
		if a < b {
			return 1
		}
		return 0
	case ir.OpCmpEq:
		if a == b {
			return 1
		}
		return 0
	}
	panic("unreachable")
}

// genExpr builds a random expression of bounded depth over nIn inputs.
func genExpr(r *xrand.Rand, depth, nIn int) *exprNode {
	if depth == 0 || r.Intn(4) == 0 {
		if r.Intn(3) == 0 {
			return &exprNode{isK: true, k: r.Int64Range(-1000, 1000)}
		}
		return &exprNode{leaf: r.Intn(nIn)}
	}
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShr, ir.OpSDiv, ir.OpCmpLt, ir.OpCmpEq}
	op := ops[r.Intn(len(ops))]
	n := &exprNode{op: op, l: genExpr(r, depth-1, nIn)}
	if op == ir.OpSDiv {
		// Keep division safe: non-zero constant divisor.
		d := r.Int64Range(1, 50)
		if r.Intn(2) == 0 {
			d = -d
		}
		n.r = &exprNode{isK: true, k: d}
	} else if op == ir.OpShr {
		n.r = &exprNode{isK: true, k: r.Int64Range(0, 63)}
	} else {
		n.r = genExpr(r, depth-1, nIn)
	}
	return n
}

// lower emits the expression as IR.
func lower(b *ir.Builder, e *exprNode, inputs []*ir.Instr) *ir.Instr {
	if e.l == nil {
		if e.isK {
			return b.Const(e.k)
		}
		return inputs[e.leaf]
	}
	l := lower(b, e.l, inputs)
	r := lower(b, e.r, inputs)
	return b.Bin(e.op, l, r)
}

// TestRandomExpressionsCompileCorrectly is the backend's end-to-end fuzz:
// random expression trees are compiled through LIR, register allocation
// and emission, executed on the VM, and compared against host evaluation.
// High depth forces spilling; the branchy ISA paths (fused compares) are
// exercised through CmpLt/CmpEq appearing as interior nodes.
func TestRandomExpressionsCompileCorrectly(t *testing.T) {
	r := xrand.New(0xfade)
	const (
		nIn   = 6
		inAt  = int64(4096)
		outAt = int64(8192)
	)
	for trial := 0; trial < 300; trial++ {
		depth := 2 + r.Intn(5)
		e := genExpr(r, depth, nIn)

		m := ir.NewModule()
		f := m.NewFunc("main", 0)
		b := ir.NewBuilder(f)
		inputs := make([]*ir.Instr, nIn)
		vals := make([]int64, nIn)
		for i := range inputs {
			inputs[i] = b.Load(64, b.Const(inAt+int64(i)*8))
			vals[i] = r.Int64Range(-1_000_000, 1_000_000)
		}
		res := lower(b, e, inputs)
		b.Store(64, b.Const(outAt), res)
		b.Halt()
		if err := m.Verify(); err != nil {
			t.Fatalf("trial %d: verify: %v", trial, err)
		}

		for _, tagging := range []bool{false, true} {
			cfg := DefaultConfig(testStaging, testSpill, testSpillSz)
			cfg.RegisterTagging = tagging
			out, err := Compile(m, cfg)
			if err != nil {
				t.Fatalf("trial %d: compile: %v", trial, err)
			}
			c := vm.New(1 << 16)
			for i, v := range vals {
				c.WriteI64(inAt+int64(i)*8, v)
			}
			c.Load(out.Program)
			if _, err := c.Run(1_000_000); err != nil {
				t.Fatalf("trial %d: run: %v", trial, err)
			}
			want := e.eval(vals)
			if got := c.ReadI64(outAt); got != want {
				t.Fatalf("trial %d (tagging=%v): got %d, want %d", trial, tagging, got, want)
			}
		}
	}
}

// TestRandomBranchTrees compiles random comparison trees used as branch
// conditions (exercising the fused compare-and-branch paths both taken
// and not taken).
func TestRandomBranchTrees(t *testing.T) {
	r := xrand.New(0xbeef)
	const (
		inAt  = int64(4096)
		outAt = int64(8192)
	)
	for trial := 0; trial < 200; trial++ {
		a := r.Int64Range(-100, 100)
		bv := r.Int64Range(-100, 100)
		ops := []ir.Op{ir.OpCmpEq, ir.OpCmpNe, ir.OpCmpLt, ir.OpCmpLe, ir.OpCmpGt, ir.OpCmpGe}
		op := ops[r.Intn(len(ops))]

		m := ir.NewModule()
		f := m.NewFunc("main", 0)
		b := ir.NewBuilder(f)
		then := b.NewBlock("then")
		els := b.NewBlock("els")
		x := b.Load(64, b.Const(inAt))
		y := b.Load(64, b.Const(inAt+8))
		cond := b.Bin(op, x, y)
		b.CondBr(cond, then, els)
		b.SetBlock(then)
		b.Store(64, b.Const(outAt), b.Const(1))
		b.Halt()
		b.SetBlock(els)
		b.Store(64, b.Const(outAt), b.Const(2))
		b.Halt()

		out, err := Compile(m, DefaultConfig(testStaging, testSpill, testSpillSz))
		if err != nil {
			t.Fatal(err)
		}
		c := vm.New(1 << 16)
		c.WriteI64(inAt, a)
		c.WriteI64(inAt+8, bv)
		c.Load(out.Program)
		if _, err := c.Run(1000); err != nil {
			t.Fatal(err)
		}
		var truth bool
		switch op {
		case ir.OpCmpEq:
			truth = a == bv
		case ir.OpCmpNe:
			truth = a != bv
		case ir.OpCmpLt:
			truth = a < bv
		case ir.OpCmpLe:
			truth = a <= bv
		case ir.OpCmpGt:
			truth = a > bv
		case ir.OpCmpGe:
			truth = a >= bv
		}
		want := int64(2)
		if truth {
			want = 1
		}
		if got := c.ReadI64(outAt); got != want {
			t.Fatalf("trial %d: %v(%d,%d) took branch %d, want %d", trial, op, a, bv, got, want)
		}
	}
}
