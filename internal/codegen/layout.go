package codegen

// Profile-guided basic-block layout. The emitter elides an uncondi-
// tional JMP whose target is the next block in layout order, so the goal
// is to chain each hot block directly into its hottest successor: one
// cycle saved per elided JMP per iteration, and cold blocks (trap
// paths, flush tails) sink to the end of the function.
//
// Conditional branches lower as a Jcc-then / JMP-else pair where only
// the JMP can become a fallthrough. When the profile's branch-outcome
// statistics (LBR) say the Jcc side is the common one, the branch sense
// is inverted — the condition is negated and the targets swap — so the
// hot successor moves to the JMP and can be laid out next. Inverted
// branches are flagged in the native map: a re-profile of the recompiled
// binary flips their recorded outcomes back, keeping taken fractions
// normalized to the source branch's then-direction across generations.

import "repro/internal/isa"

// invertedOp maps each conditional branch to its negation.
var invertedOp = map[isa.Op]isa.Op{
	isa.JEQ: isa.JNE, isa.JNE: isa.JEQ,
	isa.JLT: isa.JGE, isa.JGE: isa.JLT,
	isa.JNZ: isa.JZ, isa.JZ: isa.JNZ,
}

// layoutFunc reorders lf's blocks and inverts branch senses using the
// profile. It runs after phi lowering (so edge blocks participate) and
// before register allocation (which re-derives liveness from the new
// order). Purely a code-motion pass: no instruction is added or removed
// and all irIDs are preserved.
func layoutFunc(lf *lfunc, hot Hotness) {
	weight := blockWeights(lf, hot)
	invertBranches(lf, hot, weight)

	n := len(lf.blocks)
	if n <= 2 {
		return
	}
	// Greedy chaining: start at the entry, repeatedly follow the current
	// block's preferred (fallthrough) successor; when the chain closes,
	// restart from the heaviest unplaced block.
	order := make([]int, 0, n)
	placed := make([]bool, n)
	cur := 0
	for {
		order = append(order, cur)
		placed[cur] = true
		next := -1
		if t := chainNext(lf.blocks[cur]); t >= 0 && !placed[t] {
			next = t
		}
		if next < 0 {
			for bi := range lf.blocks { // heaviest unplaced, ties by index
				if !placed[bi] && (next < 0 || weight[bi] > weight[next]) {
					next = bi
				}
			}
			if next < 0 {
				break
			}
		}
		cur = next
	}

	remap := make([]int, n) // old index → new index
	for newIx, oldIx := range order {
		remap[oldIx] = newIx
	}
	blocks := make([]*lblock, n)
	for newIx, oldIx := range order {
		blocks[newIx] = lf.blocks[oldIx]
	}
	lf.blocks = blocks
	for _, b := range lf.blocks {
		for i := range b.ins {
			l := &b.ins[i]
			if isTerminatorIns(l) {
				l.tgt = remap[l.tgt]
				l.tgt2 = remap[l.tgt2]
			}
		}
		for i, s := range b.succs {
			b.succs[i] = remap[s]
		}
	}
}

// blockWeights sums the profile weight of each block's instructions.
func blockWeights(lf *lfunc, hot Hotness) []float64 {
	w := make([]float64, len(lf.blocks))
	for bi, b := range lf.blocks {
		for i := range b.ins {
			w[bi] += hot.WeightOf(b.ins[i].irIDs)
		}
	}
	return w
}

// invertBranches flips the sense of each conditional branch whose Jcc
// side is the common one. The outcome statistics decide when available;
// otherwise the successors' own weights do (an LBR-less profile still
// knows which side's block burned cycles).
func invertBranches(lf *lfunc, hot Hotness, weight []float64) {
	for _, b := range lf.blocks {
		k := len(b.ins) - 1
		if k < 1 || b.ins[k].op != isa.JMP || b.ins[k].pseudo != pNone {
			continue
		}
		jcc := &b.ins[k-1]
		inv, ok := invertedOp[jcc.op]
		if !ok || jcc.pseudo != pNone {
			continue
		}
		hotThen := false
		if frac, known := hot.TakenFraction(jcc.irIDs); known {
			hotThen = frac > 0.5
		} else {
			hotThen = weight[jcc.tgt] > weight[jcc.tgt2]
		}
		if !hotThen {
			continue
		}
		jcc.op = inv
		jcc.tgt, jcc.tgt2 = jcc.tgt2, jcc.tgt
		jcc.inverted = !jcc.inverted
		b.ins[k].tgt = jcc.tgt2
	}
}

// chainNext returns the block index that should follow b in layout to
// make its trailing JMP a fallthrough, or -1.
func chainNext(b *lblock) int {
	if len(b.ins) == 0 {
		return -1
	}
	l := &b.ins[len(b.ins)-1]
	if l.op == isa.JMP && l.pseudo == pNone {
		return l.tgt
	}
	return -1
}
