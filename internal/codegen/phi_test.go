package codegen

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// TestPhiSwapCycle builds a loop whose phis exchange values every
// iteration — the classic parallel-move cycle that requires a temporary
// (the "swap problem"). Correct codegen must not let one move clobber the
// other's source.
func TestPhiSwapCycle(t *testing.T) {
	for _, iters := range []int64{0, 1, 2, 5, 6} {
		m := ir.NewModule()
		f := m.NewFunc("main", 0)
		b := ir.NewBuilder(f)
		head := b.NewBlock("head")
		body := b.NewBlock("body")
		done := b.NewBlock("done")

		one := b.Const(1)
		two := b.Const(2)
		zero := b.Const(0)
		n := b.Const(iters)
		b.Br(head)

		b.SetBlock(head)
		a := b.Phi()
		bb := b.Phi()
		i := b.Phi()
		ir.AddIncoming(a, one)
		ir.AddIncoming(bb, two)
		ir.AddIncoming(i, zero)
		cond := b.Bin(ir.OpCmpLt, i, n)
		b.CondBr(cond, body, done)

		b.SetBlock(body)
		i2 := b.Add(i, b.Const(1))
		// Swap: next a = current b, next b = current a.
		ir.AddIncoming(a, bb)
		ir.AddIncoming(bb, a)
		ir.AddIncoming(i, i2)
		b.Br(head)

		b.SetBlock(done)
		b.Store(64, b.Const(testData), a)
		b.Store(64, b.Const(testData+8), bb)
		b.Halt()

		c := compileAndRun(t, m, nil)
		wantA, wantB := int64(1), int64(2)
		if iters%2 == 1 {
			wantA, wantB = 2, 1
		}
		if got := c.ReadI64(testData); got != wantA {
			t.Fatalf("iters=%d: a = %d, want %d", iters, got, wantA)
		}
		if got := c.ReadI64(testData + 8); got != wantB {
			t.Fatalf("iters=%d: b = %d, want %d", iters, got, wantB)
		}
	}
}

// TestPhiThreeCycle rotates three values through phis (a→b→c→a), a longer
// parallel-move cycle.
func TestPhiThreeCycle(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	done := b.NewBlock("done")

	c1, c2, c3 := b.Const(10), b.Const(20), b.Const(30)
	zero, n := b.Const(0), b.Const(4)
	b.Br(head)

	b.SetBlock(head)
	a := b.Phi()
	bb := b.Phi()
	cc := b.Phi()
	i := b.Phi()
	ir.AddIncoming(a, c1)
	ir.AddIncoming(bb, c2)
	ir.AddIncoming(cc, c3)
	ir.AddIncoming(i, zero)
	cond := b.Bin(ir.OpCmpLt, i, n)
	b.CondBr(cond, body, done)

	b.SetBlock(body)
	i2 := b.Add(i, b.Const(1))
	// Rotate: a←b, b←c, c←a.
	ir.AddIncoming(a, bb)
	ir.AddIncoming(bb, cc)
	ir.AddIncoming(cc, a)
	ir.AddIncoming(i, i2)
	b.Br(head)

	b.SetBlock(done)
	b.Store(64, b.Const(testData), a)
	b.Store(64, b.Const(testData+8), bb)
	b.Store(64, b.Const(testData+16), cc)
	b.Halt()

	c := compileAndRun(t, m, nil)
	// After 4 rotations of period 3: shifted by 4 % 3 = 1.
	if got := c.ReadI64(testData); got != 20 {
		t.Fatalf("a = %d, want 20", got)
	}
	if got := c.ReadI64(testData + 8); got != 30 {
		t.Fatalf("b = %d, want 30", got)
	}
	if got := c.ReadI64(testData + 16); got != 10 {
		t.Fatalf("c = %d, want 10", got)
	}
}

// TestCriticalEdgeSplitting: a conditional branch targets a phi block, so
// the phi copies must execute on that edge only — the other path's value
// must stay intact.
func TestCriticalEdgeSplitting(t *testing.T) {
	for _, takeLoop := range []bool{false, true} {
		m := ir.NewModule()
		f := m.NewFunc("main", 0)
		b := ir.NewBuilder(f)
		head := b.NewBlock("head")
		out := b.NewBlock("out")

		c := b.Load(64, b.Const(testData)) // iteration count
		h0 := b.Const(100)
		b.Br(head)

		b.SetBlock(head)
		// head has preds {entry, head}: the self-loop edge comes from a
		// conditional branch (2 successors) → critical edge.
		acc := b.Phi()
		i := b.Phi()
		ir.AddIncoming(acc, h0)
		ir.AddIncoming(i, b.Const(0)) // materialized in entry? No: Const emits in head... see below.
		_ = i
		// Rebuild properly: constants created in head would break
		// dominance for entry-incoming values, so use h0-style entry
		// constants only. Overwrite the bad incoming:
		i.Args[0] = c // borrow the load (entry block) as initial i... then count down to 0
		acc2 := b.Add(acc, acc)
		i2 := b.Sub(i, b.Const(1))
		cond := b.Bin(ir.OpCmpGt, i2, b.Const(0))
		ir.AddIncoming(acc, acc2)
		ir.AddIncoming(i, i2)
		b.CondBr(cond, head, out)

		b.SetBlock(out)
		b.Store(64, b.Const(testData+8), acc2)
		b.Halt()

		n := int64(1)
		if takeLoop {
			n = 4
		}
		cpu := compileAndRun(t, m, func(cpu *vm.CPU) {
			cpu.WriteI64(testData, n)
		})
		want := int64(100)
		for k := int64(0); k < n; k++ {
			want *= 2
		}
		if got := cpu.ReadI64(testData + 8); got != want {
			t.Fatalf("takeLoop=%v: acc = %d, want %d", takeLoop, got, want)
		}
	}
}

// TestCallClobberedRegisters: a value live across a runtime call must
// survive (the callee clobbers r0..r4).
func TestCallClobberedRegisters(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	// allocator descriptor for bumpalloc
	const desc = int64(testData + 512)
	live := b.Load(64, b.Const(testData)) // value that must survive the call
	p1 := b.Call(SymBumpAlloc, true, b.Const(desc), b.Const(16))
	p2 := b.Call(SymBumpAlloc, true, b.Const(desc), b.Const(16))
	diff := b.Sub(p2, p1)
	sum := b.Add(live, diff)
	b.Store(64, b.Const(testData+8), sum)
	b.Halt()

	c := compileAndRun(t, m, func(c *vm.CPU) {
		c.WriteI64(testData, 1000)
		c.WriteI64(desc+AllocDescCursor, testData+1024)
		c.WriteI64(desc+AllocDescEnd, testData+4096)
	})
	if got := c.ReadI64(testData + 8); got != 1016 {
		t.Fatalf("live value corrupted across calls: %d, want 1016", got)
	}
}

// TestSpillCapEnforced: exceeding the spill region must be a compile
// error, not silent corruption.
func TestSpillCapEnforced(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	var vals []*ir.Instr
	for i := 0; i < 64; i++ {
		vals = append(vals, b.Load(64, b.Const(testData+int64(i)*8)))
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = b.Add(acc, v)
	}
	b.Store(64, b.Const(testData), acc)
	b.Halt()
	cfg := DefaultConfig(testStaging, testSpill, 64) // 8 slots only
	if _, err := Compile(m, cfg); err == nil {
		t.Fatal("expected spill-cap error")
	}
}

// TestMissingMainRejected and undefined symbols.
func TestCompileErrors(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("notmain", 0)
	b := ir.NewBuilder(f)
	b.Ret(nil)
	if _, err := Compile(m, DefaultConfig(testStaging, testSpill, testSpillSz)); err == nil {
		t.Fatal("missing main accepted")
	}

	m2 := ir.NewModule()
	f2 := m2.NewFunc("main", 0)
	b2 := ir.NewBuilder(f2)
	b2.Call("no_such_symbol", false)
	b2.Halt()
	if _, err := Compile(m2, DefaultConfig(testStaging, testSpill, testSpillSz)); err == nil {
		t.Fatal("undefined symbol accepted")
	}
}

// TestMemset64Routine drives the kernel runtime routine directly.
func TestMemset64Routine(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	b.Call(SymMemset64, false, b.Const(testData), b.Const(7), b.Const(64))
	b.Halt()
	c := compileAndRun(t, m, func(c *vm.CPU) {
		for i := int64(0); i < 10; i++ {
			c.WriteI64(testData+i*8, -1)
		}
	})
	for i := int64(0); i < 8; i++ {
		if got := c.ReadI64(testData + i*8); got != 7 {
			t.Fatalf("word %d = %d, want 7", i, got)
		}
	}
	// One past the cleared region must be untouched.
	if got := c.ReadI64(testData + 64); got != -1 {
		t.Fatalf("memset overran: %d", got)
	}
}

// TestBumpAllocExhaustionTraps: the allocator must trap when full.
func TestBumpAllocExhaustionTraps(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	const desc = int64(testData)
	b.Call(SymBumpAlloc, true, b.Const(desc), b.Const(64))
	b.Call(SymBumpAlloc, true, b.Const(desc), b.Const(64))
	b.Halt()
	res, err := Compile(m, DefaultConfig(testStaging, testSpill, testSpillSz))
	if err != nil {
		t.Fatal(err)
	}
	c := vm.New(testHeap)
	c.WriteI64(desc+AllocDescCursor, testData+64)
	c.WriteI64(desc+AllocDescEnd, testData+64+96) // room for one 64-byte block only
	c.Load(res.Program)
	if _, err := c.Run(1000); err == nil {
		t.Fatal("expected arena-full trap")
	}
}
