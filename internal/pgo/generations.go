package pgo

import "sync"

// Generations tracks, per query fingerprint, the current profile-guided
// compilation generation and the hotness profile backing it. The
// compiled-query cache keys artifacts by (fingerprint, ..., generation):
// when adaptive recompilation finds a profile that beats the current
// binary, Promote bumps the generation, which both routes future lookups
// to the tuned artifact and lets the service drop the stale ones. Keeping
// the Hotness itself means an artifact evicted from the cache can be
// recompiled under guidance without re-profiling.
type Generations struct {
	mu sync.Mutex
	m  map[uint64]*genState
}

type genState struct {
	gen uint64
	hot *Hotness
}

// NewGenerations returns an empty generation table.
func NewGenerations() *Generations {
	return &Generations{m: map[uint64]*genState{}}
}

// Current returns a fingerprint's generation; 0 means unguided.
func (g *Generations) Current(fp uint64) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.m[fp]; ok {
		return s.gen
	}
	return 0
}

// Hotness returns the profile backing a fingerprint's current generation,
// or nil at generation 0.
func (g *Generations) Hotness(fp uint64) *Hotness {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.m[fp]; ok {
		return s.hot
	}
	return nil
}

// Promote installs hot as a fingerprint's guiding profile and returns the
// new (bumped) generation.
func (g *Generations) Promote(fp uint64, hot *Hotness) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.m[fp]
	if !ok {
		s = &genState{}
		g.m[fp] = s
	}
	s.gen++
	s.hot = hot
	return s.gen
}

// Bump advances a fingerprint's generation without touching its guiding
// profile — the cardinality-history invalidation path: when observed
// true cardinalities materially shift, the plan (not the backend
// guidance) is stale, so the service bumps the generation to route the
// next Prepare to a fresh, history-corrected compile while any promoted
// Hotness keeps guiding it.
func (g *Generations) Bump(fp uint64) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.m[fp]
	if !ok {
		s = &genState{}
		g.m[fp] = s
	}
	s.gen++
	return s.gen
}
