// Package pgo closes the loop from Tailored Profiling back into the
// compiler: it consumes a core.Profile from a sampling run and derives
// per-task, per-IR-instruction and per-branch hotness that the optimizer
// (internal/iropt) and the backend (internal/codegen) use to recompile the
// query — hot-loop transformations, profile-guided basic-block layout with
// branch-sense inversion, and hotness-weighted spill priority.
//
// Everything here is only as good as the Tagging Dictionary's lineage: a
// profile keys weights by IR instruction ID, and recompilation reuses those
// IDs because pipeline lowering and the base optimization passes are
// deterministic. The paper's machinery for attributing samples upward is
// exactly what makes the downward direction (samples → optimization
// decisions) possible.
package pgo

import (
	"sort"

	"repro/internal/core"
)

// Hotness is the distilled optimization guidance of one profiling run.
type Hotness struct {
	// Total is the summed weight of all IR-attributed samples; per-item
	// weights are meaningful as fractions of it.
	Total float64
	// IR holds per-IR-instruction sample weight (cost-weighted when the
	// profile was taken on the cycles event).
	IR map[int]float64
	// Task holds per-task sample weight.
	Task map[core.ComponentID]float64
	// Branch holds per-branch outcome statistics keyed by IR instruction
	// ID. A fused compare-and-branch credits both the compare's and the
	// branch's ID, so a consumer can look up whichever ID it holds.
	Branch map[int]*core.BranchStat
}

// FromProfile derives hotness from a profile and the native map of the
// binary that produced it. The native map translates per-native-IP branch
// statistics up to IR instruction IDs — the same bottom-up direction
// sample attribution uses, reusing the backend's debug information.
func FromProfile(p *core.Profile, nmap *core.NativeMap) *Hotness {
	h := &Hotness{
		IR:     make(map[int]float64, len(p.IRWeight)),
		Task:   make(map[core.ComponentID]float64, len(p.TaskWeight)),
		Branch: make(map[int]*core.BranchStat),
	}
	for id, w := range p.IRWeight {
		h.IR[id] = w
		h.Total += w
	}
	for id, w := range p.TaskWeight {
		h.Task[id] = w
	}
	for ip, st := range p.BranchTaken {
		if ip < 0 || ip >= len(nmap.IRs) {
			continue
		}
		for _, irID := range nmap.IRs[ip] {
			acc := h.Branch[irID]
			if acc == nil {
				acc = &core.BranchStat{}
				h.Branch[irID] = acc
			}
			acc.Taken += st.Taken
			acc.Total += st.Total
		}
	}
	return h
}

// InstrWeight returns one IR instruction's profile weight (0 when the
// instruction attracted no samples). Satisfies the Hotness interfaces of
// iropt and codegen.
func (h *Hotness) InstrWeight(id int) float64 { return h.IR[id] }

// TotalWeight returns the total attributed weight.
func (h *Hotness) TotalWeight() float64 { return h.Total }

// TakenFraction returns the observed taken fraction of a branch, looked up
// under any of the given IR IDs (a fused branch carries two), normalized
// to the source branch's then-direction. ok is false when the profile has
// no outcome observations for the branch.
func (h *Hotness) TakenFraction(irIDs []int) (float64, bool) {
	var acc core.BranchStat
	for _, id := range irIDs {
		if st := h.Branch[id]; st != nil {
			acc.Taken += st.Taken
			acc.Total += st.Total
		}
	}
	return acc.TakenFraction()
}

// WeightOf sums the weight of a set of IR IDs — the weight of one native
// instruction whose debug info lists several fused IR sources.
func (h *Hotness) WeightOf(irIDs []int) float64 {
	w := 0.0
	for _, id := range irIDs {
		w += h.IR[id]
	}
	return w
}

// HotTasks returns the task IDs whose weight share is at least frac of the
// total, hottest first — reporting/diagnostic helper.
func (h *Hotness) HotTasks(frac float64) []core.ComponentID {
	var out []core.ComponentID
	for id, w := range h.Task {
		if h.Total > 0 && w/h.Total >= frac {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if h.Task[out[i]] != h.Task[out[j]] {
			return h.Task[out[i]] > h.Task[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
