package pgo

import (
	"testing"

	"repro/internal/core"
)

// TestFromProfile checks the bottom-up translation: per-IR weights copy
// over, per-native-IP branch statistics aggregate onto every IR ID the
// native map lists for the IP (fused compare-and-branch pairs), and the
// accessor methods expose the result the iropt/codegen consumers expect.
func TestFromProfile(t *testing.T) {
	nmap := core.NewNativeMap(4)
	nmap.IRs[0] = []int{10}
	nmap.IRs[1] = []int{11, 12} // fused cmp+branch: both IDs credited
	nmap.IRs[2] = []int{12}
	nmap.IRs[3] = nil // edge-block jump, no IR lineage

	p := &core.Profile{
		IRWeight:   map[int]float64{10: 3, 11: 1},
		TaskWeight: map[core.ComponentID]float64{7: 3, 8: 1},
		BranchTaken: map[int]*core.BranchStat{
			1:  {Taken: 6, Total: 8},
			2:  {Taken: 1, Total: 2},
			99: {Taken: 5, Total: 5}, // out of range: ignored
		},
	}
	h := FromProfile(p, nmap)

	if h.TotalWeight() != 4 {
		t.Fatalf("TotalWeight = %v, want 4", h.TotalWeight())
	}
	if h.InstrWeight(10) != 3 || h.InstrWeight(11) != 1 || h.InstrWeight(12) != 0 {
		t.Fatalf("InstrWeight = %v/%v/%v", h.InstrWeight(10), h.InstrWeight(11), h.InstrWeight(12))
	}
	if w := h.WeightOf([]int{10, 11}); w != 4 {
		t.Fatalf("WeightOf(10,11) = %v, want 4", w)
	}

	// IP 1 credits IRs 11 and 12; IP 2 credits 12 again.
	if f, ok := h.TakenFraction([]int{11}); !ok || f != 0.75 {
		t.Fatalf("TakenFraction(11) = %v,%v, want 0.75,true", f, ok)
	}
	if f, ok := h.TakenFraction([]int{12}); !ok || f != 0.7 {
		t.Fatalf("TakenFraction(12) = %v,%v, want (6+1)/(8+2)=0.7", f, ok)
	}
	// Looking up a fused pair sums both sites.
	if f, ok := h.TakenFraction([]int{11, 12}); !ok || f != (6+7)/18.0 {
		t.Fatalf("TakenFraction(11,12) = %v,%v", f, ok)
	}
	if _, ok := h.TakenFraction([]int{10}); ok {
		t.Fatal("TakenFraction(10) should report no observations")
	}

	// Task 7 holds 75% of the weight; task 8 only 25%.
	hot := h.HotTasks(0.5)
	if len(hot) != 1 || hot[0] != 7 {
		t.Fatalf("HotTasks(0.5) = %v, want [7]", hot)
	}
	if hot := h.HotTasks(0.1); len(hot) != 2 || hot[0] != 7 || hot[1] != 8 {
		t.Fatalf("HotTasks(0.1) = %v, want [7 8]", hot)
	}
}
