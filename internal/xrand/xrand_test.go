package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64, a, b int32) bool {
		lo, hi := int64(a), int64(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Int64Range(lo, hi)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(11)
	z := NewZipf(100, 1.2)
	counts := make([]int, 100)
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Zipf(z)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("skew missing: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] < n/10 {
		t.Fatalf("rank0 share too small for s=1.2: %d", counts[0])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(13)
	z := NewZipf(10, 0)
	counts := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[r.Zipf(z)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.07 || frac > 0.13 {
			t.Fatalf("bucket %d has share %v, want ~0.1", i, frac)
		}
	}
}
