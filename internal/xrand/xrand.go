// Package xrand provides a small, deterministic pseudo-random number
// generator used by the data generator and the workload drivers.
//
// Reproducibility matters more than statistical quality here: every
// experiment in this repository must produce identical data for a given
// seed so that profiles are comparable across runs. The generator is an
// xorshift64* with a splitmix64 seeding step.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
// The zero value is not valid; use New.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Any seed, including zero,
// yields a valid generator.
func New(seed uint64) *Rand {
	// splitmix64 step guards against weak (e.g. zero) seeds.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return &Rand{state: z}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a pseudo-random integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		bug("Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int64Range returns a pseudo-random integer in [lo, hi]. It panics if hi < lo.
func (r *Rand) Int64Range(lo, hi int64) int64 {
	if hi < lo {
		bug("Int64Range with hi < lo")
	}
	span := uint64(hi-lo) + 1
	return lo + int64(r.Uint64()%span)
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a Zipf-like distribution over [0, n) with skew s >= 0.
// s == 0 degenerates to uniform. The implementation uses the classic
// rejection-free inverse-CDF approximation over the harmonic weights,
// precomputed lazily per (n, s) by the caller via NewZipf for hot paths.
func (r *Rand) Zipf(z *Zipf) int {
	u := r.Float64() * z.total
	// Binary search the cumulative weights.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Zipf holds precomputed cumulative weights for Zipf sampling.
type Zipf struct {
	cum   []float64
	total float64
}

// NewZipf precomputes a Zipf distribution over [0, n) with skew s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		bug("NewZipf with non-positive n")
	}
	z := &Zipf{cum: make([]float64, n)}
	acc := 0.0
	for i := 0; i < n; i++ {
		w := 1.0
		if s > 0 {
			w = 1.0 / math.Pow(float64(i+1), s)
		}
		acc += w
		z.cum[i] = acc
	}
	z.total = acc
	return z
}
