package sqlparse

import "testing"

func norm(t *testing.T, src string) *Fingerprint {
	t.Helper()
	fp, err := Normalize(src)
	if err != nil {
		t.Fatalf("Normalize(%q): %v", src, err)
	}
	return fp
}

// TestNormalizeCollidesLiterals is the cache's core property: two
// statements that differ only in literal values (and in whitespace,
// identifier case, or a trailing semicolon) must share one fingerprint.
func TestNormalizeCollidesLiterals(t *testing.T) {
	a := norm(t, "select count(*) from lineitem where l_quantity < 24")
	variants := []string{
		"select count(*) from lineitem where l_quantity < 7",
		"SELECT   COUNT(*)  FROM  LINEITEM\nWHERE  L_QUANTITY < 99 ;",
		"select count ( * ) from lineitem where l_quantity < 0",
	}
	for _, v := range variants {
		b := norm(t, v)
		if b.Canon != a.Canon || b.Hash != a.Hash {
			t.Errorf("fingerprints differ:\n  %q -> %q (%x)\n  %q -> %q (%x)",
				"...24", a.Canon, a.Hash, v, b.Canon, b.Hash)
		}
	}
	if len(a.Args) != 1 || a.Args[0].Kind != LitNum || a.Args[0].Num != 24 {
		t.Errorf("args = %+v, want one numeric 24", a.Args)
	}
	c := norm(t, "select count(*) from lineitem where l_quantity < 7")
	if c.Args[0].Num != 7 {
		t.Errorf("variant args = %+v, want 7", c.Args)
	}
}

// TestNormalizeStructureStillMatters: different shapes must not collide.
func TestNormalizeStructureStillMatters(t *testing.T) {
	a := norm(t, "select count(*) from lineitem where l_quantity < 24")
	b := norm(t, "select count(*) from lineitem where l_quantity > 24")
	if a.Hash == b.Hash {
		t.Fatalf("different operators collided: %q vs %q", a.Canon, b.Canon)
	}
}

// TestNumericDedup: every occurrence of the same number maps to the same
// parameter, so GROUP BY's textual match against the select list survives
// normalization; distinct numbers get distinct parameters.
func TestNumericDedup(t *testing.T) {
	fp := norm(t, "select l_orderkey, sum(l_extendedprice * (100 - l_discount)) from lineitem where l_quantity < 100 and l_tax < 30 group by l_orderkey")
	if len(fp.Args) != 2 {
		t.Fatalf("args = %+v, want [100 30]", fp.Args)
	}
	if fp.Args[0].Num != 100 || fp.Args[1].Num != 30 {
		t.Fatalf("args = %+v, want [100 30]", fp.Args)
	}
	// 100 occurs twice; both occurrences must render as $0.
	if got := countSub(fp.Canon, "$0"); got != 2 {
		t.Fatalf("canon %q: $0 appears %d times, want 2", fp.Canon, got)
	}
}

// TestStringsNotDeduped: each string occurrence takes its own parameter —
// two occurrences of the same text may face different dictionaries.
func TestStringsNotDeduped(t *testing.T) {
	fp := norm(t, "select count(*) from lineitem where l_returnflag = 'R' and l_linestatus = 'R'")
	if len(fp.Args) != 2 {
		t.Fatalf("args = %+v, want two string params", fp.Args)
	}
	for i, a := range fp.Args {
		if a.Kind != LitStr || a.Str != "R" {
			t.Fatalf("arg %d = %+v, want LitStr 'R'", i, a)
		}
	}
}

// TestTailNotLifted: ORDER BY ordinals and LIMIT arguments are structure,
// not values — they stay in the canonical text, so different top-k sizes
// are different cache entries.
func TestTailNotLifted(t *testing.T) {
	a := norm(t, "select l_orderkey, sum(l_quantity) as qty from lineitem where l_quantity < 5 group by l_orderkey order by 2 desc limit 10")
	if len(a.Args) != 1 || a.Args[0].Num != 5 {
		t.Fatalf("args = %+v, want just the filter literal 5", a.Args)
	}
	b := norm(t, "select l_orderkey, sum(l_quantity) as qty from lineitem where l_quantity < 5 group by l_orderkey order by 2 desc limit 20")
	if a.Hash == b.Hash {
		t.Fatalf("LIMIT 10 and LIMIT 20 collided: %q", a.Canon)
	}
}

// TestExplicitParamsDisableLifting: a statement that already carries $N is
// someone else's prepared form and passes through verbatim.
func TestExplicitParamsDisableLifting(t *testing.T) {
	fp := norm(t, "select count(*) from lineitem where l_quantity < $0 and l_tax < 5 and l_returnflag = 'R'")
	if len(fp.Args) != 0 {
		t.Fatalf("args = %+v, want none (lifting disabled)", fp.Args)
	}
	for _, want := range []string{"$0", "5", "'R'"} {
		if countSub(fp.Canon, want) == 0 {
			t.Errorf("canon %q: missing %q", fp.Canon, want)
		}
	}
}

// TestStringRequoting: string literals kept in the canonical text are
// re-quoted with ” escaping so the canon re-lexes identically.
func TestStringRequoting(t *testing.T) {
	fp := norm(t, "select count(*) from products where name = 'it''s' and id < $1")
	if countSub(fp.Canon, "'it''s'") != 1 {
		t.Fatalf("canon %q: want escaped literal 'it''s'", fp.Canon)
	}
	// The canon must re-lex to the same fingerprint (idempotence).
	fp2 := norm(t, fp.Canon)
	if fp2.Canon != fp.Canon || fp2.Hash != fp.Hash {
		t.Fatalf("normalization not idempotent: %q -> %q", fp.Canon, fp2.Canon)
	}
}

// TestNormalizeIdempotent: normalizing a canon is the identity for the
// whole lifted suite shape.
func TestNormalizeIdempotent(t *testing.T) {
	srcs := []string{
		"select l_orderkey, l_quantity from lineitem where l_quantity < 4 order by l_orderkey, l_quantity limit 50",
		"select count(*), sum(l_extendedprice) from lineitem where l_returnflag = 'R'",
		"select o_orderkey, sum(l_extendedprice) from lineitem, orders where o_orderkey = l_orderkey and o_orderdate < '1995-04-01' group by o_orderkey",
	}
	for _, src := range srcs {
		fp := norm(t, src)
		fp2 := norm(t, fp.Canon)
		if fp2.Canon != fp.Canon {
			t.Errorf("not idempotent:\n  src   %q\n  canon %q\n  again %q", src, fp.Canon, fp2.Canon)
		}
	}
}

// TestCanonReparses: the canonical text must parse, and the parse must
// report exactly len(Args) parameters.
func TestCanonReparses(t *testing.T) {
	fp := norm(t, "select l_orderkey, sum(l_extendedprice * (100 - l_discount)) from lineitem where l_quantity < 30 group by l_orderkey")
	q, err := Parse(fp.Canon)
	if err != nil {
		t.Fatalf("canon %q does not parse: %v", fp.Canon, err)
	}
	if q.NumParams != len(fp.Args) {
		t.Fatalf("canon parses with %d params, fingerprint lifted %d", q.NumParams, len(fp.Args))
	}
}

func countSub(s, sub string) int {
	n := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			// count token-ish occurrences only: require a non-digit after
			// (so "$1" does not match inside "$10").
			if i+len(sub) < len(s) && s[i+len(sub)] >= '0' && s[i+len(sub)] <= '9' {
				continue
			}
			n++
		}
	}
	return n
}
