package sqlparse

import (
	"strings"
	"testing"
)

func norm(t *testing.T, src string) *Fingerprint {
	t.Helper()
	fp, err := Normalize(src)
	if err != nil {
		t.Fatalf("Normalize(%q): %v", src, err)
	}
	return fp
}

// TestNormalizeCollidesLiterals is the cache's core property: two
// statements that differ only in literal values (and in whitespace,
// identifier case, or a trailing semicolon) must share one fingerprint.
func TestNormalizeCollidesLiterals(t *testing.T) {
	a := norm(t, "select count(*) from lineitem where l_quantity < 24")
	variants := []string{
		"select count(*) from lineitem where l_quantity < 7",
		"SELECT   COUNT(*)  FROM  LINEITEM\nWHERE  L_QUANTITY < 99 ;",
		"select count ( * ) from lineitem where l_quantity < 0",
	}
	for _, v := range variants {
		b := norm(t, v)
		if b.Canon != a.Canon || b.Hash != a.Hash {
			t.Errorf("fingerprints differ:\n  %q -> %q (%x)\n  %q -> %q (%x)",
				"...24", a.Canon, a.Hash, v, b.Canon, b.Hash)
		}
	}
	if len(a.Args) != 1 || a.Args[0].Kind != LitNum || a.Args[0].Num != 24 {
		t.Errorf("args = %+v, want one numeric 24", a.Args)
	}
	c := norm(t, "select count(*) from lineitem where l_quantity < 7")
	if c.Args[0].Num != 7 {
		t.Errorf("variant args = %+v, want 7", c.Args)
	}
}

// TestNormalizeStructureStillMatters: different shapes must not collide.
func TestNormalizeStructureStillMatters(t *testing.T) {
	a := norm(t, "select count(*) from lineitem where l_quantity < 24")
	b := norm(t, "select count(*) from lineitem where l_quantity > 24")
	if a.Hash == b.Hash {
		t.Fatalf("different operators collided: %q vs %q", a.Canon, b.Canon)
	}
}

// TestNumericDedup: every occurrence of the same number maps to the same
// parameter, so GROUP BY's textual match against the select list survives
// normalization; distinct numbers get distinct parameters.
func TestNumericDedup(t *testing.T) {
	fp := norm(t, "select l_orderkey, sum(l_extendedprice * (100 - l_discount)) from lineitem where l_quantity < 100 and l_tax < 30 group by l_orderkey")
	if len(fp.Args) != 2 {
		t.Fatalf("args = %+v, want [100 30]", fp.Args)
	}
	if fp.Args[0].Num != 100 || fp.Args[1].Num != 30 {
		t.Fatalf("args = %+v, want [100 30]", fp.Args)
	}
	// 100 occurs twice; both occurrences must render as $0.
	if got := countSub(fp.Canon, "$0"); got != 2 {
		t.Fatalf("canon %q: $0 appears %d times, want 2", fp.Canon, got)
	}
}

// TestStringsNotDeduped: each string occurrence takes its own parameter —
// two occurrences of the same text may face different dictionaries.
func TestStringsNotDeduped(t *testing.T) {
	fp := norm(t, "select count(*) from lineitem where l_returnflag = 'R' and l_linestatus = 'R'")
	if len(fp.Args) != 2 {
		t.Fatalf("args = %+v, want two string params", fp.Args)
	}
	for i, a := range fp.Args {
		if a.Kind != LitStr || a.Str != "R" {
			t.Fatalf("arg %d = %+v, want LitStr 'R'", i, a)
		}
	}
}

// TestTailNotLifted: ORDER BY ordinals and LIMIT arguments are structure,
// not values — they stay in the canonical text, so different top-k sizes
// are different cache entries.
func TestTailNotLifted(t *testing.T) {
	a := norm(t, "select l_orderkey, sum(l_quantity) as qty from lineitem where l_quantity < 5 group by l_orderkey order by 2 desc limit 10")
	if len(a.Args) != 1 || a.Args[0].Num != 5 {
		t.Fatalf("args = %+v, want just the filter literal 5", a.Args)
	}
	b := norm(t, "select l_orderkey, sum(l_quantity) as qty from lineitem where l_quantity < 5 group by l_orderkey order by 2 desc limit 20")
	if a.Hash == b.Hash {
		t.Fatalf("LIMIT 10 and LIMIT 20 collided: %q", a.Canon)
	}
}

// TestExplicitParamsDisableLifting: a statement that already carries $N is
// someone else's prepared form and passes through verbatim.
func TestExplicitParamsDisableLifting(t *testing.T) {
	fp := norm(t, "select count(*) from lineitem where l_quantity < $0 and l_tax < 5 and l_returnflag = 'R'")
	if len(fp.Args) != 0 {
		t.Fatalf("args = %+v, want none (lifting disabled)", fp.Args)
	}
	for _, want := range []string{"$0", "5", "'R'"} {
		if countSub(fp.Canon, want) == 0 {
			t.Errorf("canon %q: missing %q", fp.Canon, want)
		}
	}
}

// TestStringRequoting: string literals kept in the canonical text are
// re-quoted with ” escaping so the canon re-lexes identically.
func TestStringRequoting(t *testing.T) {
	fp := norm(t, "select count(*) from products where name = 'it''s' and id < $1")
	if countSub(fp.Canon, "'it''s'") != 1 {
		t.Fatalf("canon %q: want escaped literal 'it''s'", fp.Canon)
	}
	// The canon must re-lex to the same fingerprint (idempotence).
	fp2 := norm(t, fp.Canon)
	if fp2.Canon != fp.Canon || fp2.Hash != fp.Hash {
		t.Fatalf("normalization not idempotent: %q -> %q", fp.Canon, fp2.Canon)
	}
}

// TestNormalizeIdempotent: normalizing a canon is the identity for the
// whole lifted suite shape.
func TestNormalizeIdempotent(t *testing.T) {
	srcs := []string{
		"select l_orderkey, l_quantity from lineitem where l_quantity < 4 order by l_orderkey, l_quantity limit 50",
		"select count(*), sum(l_extendedprice) from lineitem where l_returnflag = 'R'",
		"select o_orderkey, sum(l_extendedprice) from lineitem, orders where o_orderkey = l_orderkey and o_orderdate < '1995-04-01' group by o_orderkey",
	}
	for _, src := range srcs {
		fp := norm(t, src)
		fp2 := norm(t, fp.Canon)
		if fp2.Canon != fp.Canon {
			t.Errorf("not idempotent:\n  src   %q\n  canon %q\n  again %q", src, fp.Canon, fp2.Canon)
		}
	}
}

// TestCanonReparses: the canonical text must parse, and the parse must
// report exactly len(Args) parameters.
func TestCanonReparses(t *testing.T) {
	fp := norm(t, "select l_orderkey, sum(l_extendedprice * (100 - l_discount)) from lineitem where l_quantity < 30 group by l_orderkey")
	q, err := Parse(fp.Canon)
	if err != nil {
		t.Fatalf("canon %q does not parse: %v", fp.Canon, err)
	}
	if q.NumParams != len(fp.Args) {
		t.Fatalf("canon parses with %d params, fingerprint lifted %d", q.NumParams, len(fp.Args))
	}
}

func countSub(s, sub string) int {
	n := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			// count token-ish occurrences only: require a non-digit after
			// (so "$1" does not match inside "$10").
			if i+len(sub) < len(s) && s[i+len(sub)] >= '0' && s[i+len(sub)] <= '9' {
				continue
			}
			n++
		}
	}
	return n
}

// TestBetweenCollidesWithPairedComparisons: the rewriter treats `x
// BETWEEN a AND b` and `x >= a AND x <= b` as one statement; the
// fingerprint must agree, including the argument order.
func TestBetweenCollidesWithPairedComparisons(t *testing.T) {
	a := norm(t, "select count(*) from lineitem where l_quantity between 5 and 20")
	b := norm(t, "select count(*) from lineitem where l_quantity >= 5 and l_quantity <= 20")
	if a.Canon != b.Canon || a.Hash != b.Hash {
		t.Fatalf("BETWEEN did not collide with paired comparisons:\n  %q\n  %q", a.Canon, b.Canon)
	}
	// Conjunct sorting puts "<=" before ">=" (byte order of the masked
	// text), so the canonical argument order is [hi lo] for both spellings.
	if len(a.Args) != 2 || a.Args[0].Num != 20 || a.Args[1].Num != 5 {
		t.Fatalf("args = %+v, want [20 5]", a.Args)
	}
	// Qualified columns desugar too.
	c := norm(t, "select count(*) from lineitem l where l.l_tax between 1 and 3")
	d := norm(t, "select count(*) from lineitem l where l.l_tax >= 1 and l.l_tax <= 3")
	if c.Canon != d.Canon {
		t.Fatalf("qualified BETWEEN did not collide:\n  %q\n  %q", c.Canon, d.Canon)
	}
}

// TestBetweenCompoundOperandBacksOff: the token-level desugar fires
// only when the trailing column run is the WHOLE left operand. With a
// compound operand (`a + b BETWEEN lo AND hi`) the naive rewrite would
// bind the range to `b` alone and silently change the predicate, so
// the pass must leave the statement for the parser's AST-level
// desugar — and the conjunct sorter must keep the BETWEEN's own AND
// attached instead of splitting (and then reordering) on it.
func TestBetweenCompoundOperandBacksOff(t *testing.T) {
	cases := []string{
		"select count(*) from lineitem where l_quantity + l_tax between 2 and 3",
		"select count(*) from lineitem where l_quantity + 1 between 5 and 20",
		"select count(*) from lineitem where l_quantity + l_tax between 2 and 3 and l_tax = 1",
	}
	for _, sql := range cases {
		fp := norm(t, sql)
		if !strings.Contains(fp.Canon, "BETWEEN") {
			t.Errorf("compound-operand BETWEEN was token-desugared:\n  %q -> %q", sql, fp.Canon)
			continue
		}
		if _, err := Parse(fp.Canon); err != nil {
			t.Errorf("canon of %q does not parse: %v\n  canon %q", sql, err, fp.Canon)
		}
	}
	// The compound spelling must NOT collide with the single-column one
	// the broken rewrite would have produced.
	a := norm(t, "select count(*) from lineitem where l_quantity + l_tax between 2 and 3")
	b := norm(t, "select count(*) from lineitem where l_quantity + l_tax >= 2 and l_tax <= 3")
	if a.Canon == b.Canon {
		t.Fatalf("compound BETWEEN collided with mis-bound comparison pair: %q", a.Canon)
	}
	// Same back-off for IN: `a + b IN (...)` keeps its IN.
	c := norm(t, "select count(*) from lineitem where l_quantity + l_tax in (2, 3)")
	if !strings.Contains(c.Canon, " IN ") {
		t.Fatalf("compound-operand IN was token-desugared: %q", c.Canon)
	}
	// A parenthesized simple operand is still a clause boundary, so the
	// desugar fires there and collides with the paired-comparison form.
	d := norm(t, "select count(*) from lineitem where (l_quantity between 5 and 20)")
	e := norm(t, "select count(*) from lineitem where (l_quantity >= 5 and l_quantity <= 20)")
	if d.Canon != e.Canon {
		t.Fatalf("parenthesized BETWEEN did not desugar:\n  %q\n  %q", d.Canon, e.Canon)
	}
}

// TestBetweenParses: the parser's own desugaring — BETWEEN statements
// must parse even when Normalize left them alone.
func TestBetweenParses(t *testing.T) {
	q, err := Parse("select count(*) from lineitem where l_quantity + 1 between 5 and 20")
	if err != nil {
		t.Fatalf("BETWEEN with compound operand does not parse: %v", err)
	}
	if len(q.Where) != 1 {
		t.Fatalf("want one WHERE conjunct, got %d", len(q.Where))
	}
}

// TestInListDedupAndCollision: IN lists desugar into equality OR-chains
// with duplicate items dropped, so `IN (3, 5, 3)` and `IN (3, 5)` and the
// hand-written OR-chain all share one fingerprint.
func TestInListDedupAndCollision(t *testing.T) {
	a := norm(t, "select count(*) from lineitem where l_quantity in (3, 5, 3)")
	b := norm(t, "select count(*) from lineitem where l_quantity in (3, 5)")
	c := norm(t, "select count(*) from lineitem where (l_quantity = 3 or l_quantity = 5)")
	if a.Canon != b.Canon {
		t.Fatalf("IN-list dup not deduplicated:\n  %q\n  %q", a.Canon, b.Canon)
	}
	if a.Canon != c.Canon {
		t.Fatalf("IN did not collide with OR-chain:\n  %q\n  %q", a.Canon, c.Canon)
	}
	if len(a.Args) != 2 || a.Args[0].Num != 3 || a.Args[1].Num != 5 {
		t.Fatalf("args = %+v, want [3 5]", a.Args)
	}
	// Single-item lists collapse to a bare equality.
	d := norm(t, "select count(*) from lineitem where l_quantity in (7)")
	e := norm(t, "select count(*) from lineitem where l_quantity = 7")
	if d.Canon != e.Canon {
		t.Fatalf("single-item IN did not collapse:\n  %q\n  %q", d.Canon, e.Canon)
	}
	// String lists keep per-occurrence parameters (no cross-string dedup
	// by value — each faces its own dictionary) but drop exact dup items.
	f := norm(t, "select count(*) from products where category in ('Chip', 'Board', 'Chip')")
	if len(f.Args) != 2 {
		t.Fatalf("string IN args = %+v, want two", f.Args)
	}
}

// TestInParses: parser-level IN desugaring for operands Normalize's
// token pass does not touch.
func TestInParses(t *testing.T) {
	q, err := Parse("select count(*) from lineitem where l_quantity % 10 in (1, 2)")
	if err != nil {
		t.Fatalf("IN with compound operand does not parse: %v", err)
	}
	if len(q.Where) != 1 {
		t.Fatalf("want one WHERE conjunct, got %d", len(q.Where))
	}
}

// TestPredicateOrderInsensitive: top-level WHERE conjunct order must not
// change the fingerprint; parameter indices follow the sorted text, so
// the argument vectors line up positionally across spellings.
func TestPredicateOrderInsensitive(t *testing.T) {
	a := norm(t, "select count(*) from lineitem where l_quantity < 24 and l_tax > 2 and l_returnflag = 'R'")
	b := norm(t, "select count(*) from lineitem where l_returnflag = 'R' and l_quantity < 24 and l_tax > 2")
	c := norm(t, "select count(*) from lineitem where l_tax > 2 and l_returnflag = 'R' and l_quantity < 24")
	if a.Canon != b.Canon || a.Canon != c.Canon {
		t.Fatalf("conjunct order changed the canon:\n  %q\n  %q\n  %q", a.Canon, b.Canon, c.Canon)
	}
	if a.Hash != b.Hash || a.Hash != c.Hash {
		t.Fatalf("conjunct order changed the hash")
	}
	// Same structure, different values: same canon, args in canon order.
	d := norm(t, "select count(*) from lineitem where l_tax > 9 and l_returnflag = 'N' and l_quantity < 11")
	if d.Canon != a.Canon {
		t.Fatalf("value change altered the canon:\n  %q\n  %q", a.Canon, d.Canon)
	}
	if len(a.Args) != len(d.Args) {
		t.Fatalf("arg counts differ: %d vs %d", len(a.Args), len(d.Args))
	}
	for i := range a.Args {
		if a.Args[i].Kind != d.Args[i].Kind {
			t.Fatalf("arg %d kinds differ across spellings", i)
		}
	}
}

// TestPredicateOrderBacksOffUnderOr: a top-level OR makes AND-splitting
// unsound; the sort pass must leave the clause alone (both spellings
// still normalize and parse, they just need not collide).
func TestPredicateOrderBacksOffUnderOr(t *testing.T) {
	fp := norm(t, "select count(*) from lineitem where l_quantity < 24 and l_tax > 2 or l_returnflag = 'R'")
	if _, err := Parse(fp.Canon); err != nil {
		t.Fatalf("canon with top-level OR does not parse: %v", err)
	}
	// Parenthesized OR groups are fine to sort around.
	a := norm(t, "select count(*) from lineitem where (l_tax = 1 or l_tax = 2) and l_quantity < 24")
	b := norm(t, "select count(*) from lineitem where l_quantity < 24 and (l_tax = 1 or l_tax = 2)")
	if a.Canon != b.Canon {
		t.Fatalf("parenthesized OR group broke order insensitivity:\n  %q\n  %q", a.Canon, b.Canon)
	}
}

// TestDesugaredCanonReparses: desugared canons re-lex, re-normalize
// (idempotence) and re-parse with matching parameter counts.
func TestDesugaredCanonReparses(t *testing.T) {
	srcs := []string{
		"select count(*) from lineitem where l_quantity between 5 and 20",
		"select count(*) from lineitem where l_quantity in (3, 5, 3) and l_tax > 1",
		"select sum(l_extendedprice) from lineitem where l_returnflag in ('R', 'N') and l_quantity between 1 and 40",
	}
	for _, src := range srcs {
		fp := norm(t, src)
		fp2 := norm(t, fp.Canon)
		if fp2.Canon != fp.Canon {
			t.Errorf("not idempotent:\n  src   %q\n  canon %q\n  again %q", src, fp.Canon, fp2.Canon)
			continue
		}
		q, err := Parse(fp.Canon)
		if err != nil {
			t.Errorf("canon %q does not parse: %v", fp.Canon, err)
			continue
		}
		if q.NumParams != len(fp.Args) {
			t.Errorf("canon %q parses with %d params, lifted %d", fp.Canon, q.NumParams, len(fp.Args))
		}
	}
}
