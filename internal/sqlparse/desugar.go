package sqlparse

// Token-level canonicalization pre-passes shared by Normalize: BETWEEN
// and IN predicates over simple column operands are desugared into the
// comparison form the planner sees anyway, and top-level WHERE conjuncts
// are sorted under a value-insensitive key. Together they make the
// fingerprint insensitive to the three syntactic choices dashboards vary
// most — range syntax, IN-list spelling, and predicate order — which is
// what lets the materialized-view rewriter treat "the same query modulo
// constants" as one canonical statement. The parser desugars BETWEEN/IN
// on its own (AST level), so statements these passes leave untouched
// still parse; the passes only decide which spellings *collide*.

import "strings"

// desugarTokens rewrites `col BETWEEN a AND b` into `col >= a AND
// col <= b` and `col IN (v1, v2, ...)` into an OR-chain of equalities
// (parenthesized, single-item lists into a bare equality), deduplicating
// IN-list items by token identity. Only simple operands — an optionally
// qualified column on the left, literals/params/columns (with optional
// unary minus) on the right — are rewritten, and only when the column
// run starts at a clause boundary (start of statement, WHERE/AND/OR,
// '(' or ','). A preceding NOT or arithmetic operator means the column
// is not the whole left operand — `a + b BETWEEN ...` and
// `NOT a BETWEEN ...` would desugar to a predicate with the wrong
// binding — so those spellings pass through for the parser's AST-level
// desugar to handle.
func desugarTokens(toks []token) []token {
	out := make([]token, 0, len(toks))
	i := 0
	for i < len(toks) {
		t := toks[i]
		if t.kind == tkKeyword && (t.text == "BETWEEN" || t.text == "IN") {
			// The left operand is the just-emitted column run.
			opStart := len(out)
			if n := trailingColumn(out); n > 0 && clauseBoundary(out, len(out)-n) {
				opStart = len(out) - n
			} else {
				out = append(out, t)
				i++
				continue
			}
			operand := make([]token, len(out)-opStart)
			copy(operand, out[opStart:])
			if t.text == "BETWEEN" {
				lo, after, ok := simpleOperand(toks, i+1)
				if !ok || !atKeyword(toks, after, "AND") {
					out = append(out, t)
					i++
					continue
				}
				hi, end, ok := simpleOperand(toks, after+1)
				if !ok {
					out = append(out, t)
					i++
					continue
				}
				out = out[:opStart]
				out = append(out, operand...)
				out = append(out, sym(">=", t.pos))
				out = append(out, lo...)
				out = append(out, token{kind: tkKeyword, text: "AND", pos: t.pos})
				out = append(out, operand...)
				out = append(out, sym("<=", t.pos))
				out = append(out, hi...)
				i = end
				continue
			}
			// IN ( item, item, ... )
			items, end, ok := inList(toks, i+1)
			if !ok {
				out = append(out, t)
				i++
				continue
			}
			items = dedupItems(items)
			out = out[:opStart]
			if len(items) > 1 {
				out = append(out, sym("(", t.pos))
			}
			for k, item := range items {
				if k > 0 {
					out = append(out, token{kind: tkKeyword, text: "OR", pos: t.pos})
				}
				out = append(out, operand...)
				out = append(out, sym("=", t.pos))
				out = append(out, item...)
			}
			if len(items) > 1 {
				out = append(out, sym(")", t.pos))
			}
			i = end
			continue
		}
		out = append(out, t)
		i++
	}
	return out
}

func sym(text string, pos int) token { return token{kind: tkSymbol, text: text, pos: pos} }

func atKeyword(toks []token, i int, kw string) bool {
	return i < len(toks) && toks[i].kind == tkKeyword && toks[i].text == kw
}

// clauseBoundary reports whether the token before index i (the start of
// a candidate left-operand column run) guarantees the run is a complete
// operand: start of statement, a WHERE/AND/OR keyword, or an opening
// paren or comma. Anything else — NOT, an arithmetic or comparison
// symbol, another identifier — means the run is only the tail of a
// larger expression and the rewrite would bind wrongly.
func clauseBoundary(out []token, i int) bool {
	if i == 0 {
		return true
	}
	p := out[i-1]
	switch p.kind {
	case tkKeyword:
		return p.text == "WHERE" || p.text == "AND" || p.text == "OR"
	case tkSymbol:
		return p.text == "(" || p.text == ","
	}
	return false
}

// trailingColumn reports how many tokens at the end of out form a bare
// or qualified column reference (ident or ident.ident); 0 if none.
func trailingColumn(out []token) int {
	n := len(out)
	if n == 0 || out[n-1].kind != tkIdent {
		return 0
	}
	if n >= 3 && out[n-2].kind == tkSymbol && out[n-2].text == "." && out[n-3].kind == tkIdent {
		return 3
	}
	return 1
}

// simpleOperand recognizes a literal, parameter, or (qualified) column,
// with an optional unary minus, starting at i. Returns the operand's
// tokens and the index just past it.
func simpleOperand(toks []token, i int) ([]token, int, bool) {
	start := i
	if i < len(toks) && toks[i].kind == tkSymbol && toks[i].text == "-" {
		i++
	}
	if i >= len(toks) {
		return nil, start, false
	}
	switch toks[i].kind {
	case tkNumber, tkString, tkParam:
		i++
	case tkIdent:
		i++
		if i+1 < len(toks) && toks[i].kind == tkSymbol && toks[i].text == "." && toks[i+1].kind == tkIdent {
			i += 2
		}
	default:
		return nil, start, false
	}
	return toks[start:i], i, true
}

// inList recognizes `( item (, item)* )` of simple operands starting at
// i; returns the items and the index just past the closing paren.
func inList(toks []token, i int) ([][]token, int, bool) {
	if i >= len(toks) || toks[i].kind != tkSymbol || toks[i].text != "(" {
		return nil, i, false
	}
	i++
	var items [][]token
	for {
		item, next, ok := simpleOperand(toks, i)
		if !ok {
			return nil, i, false
		}
		items = append(items, item)
		i = next
		if i < len(toks) && toks[i].kind == tkSymbol && toks[i].text == "," {
			i++
			continue
		}
		break
	}
	if i >= len(toks) || toks[i].kind != tkSymbol || toks[i].text != ")" {
		return nil, i, false
	}
	return items, i + 1, true
}

// dedupItems drops IN-list items that repeat an earlier item exactly
// (same token kinds and texts), preserving first-occurrence order.
func dedupItems(items [][]token) [][]token {
	seen := map[string]bool{}
	out := items[:0]
	for _, item := range items {
		var sb strings.Builder
		for _, t := range item {
			sb.WriteByte(byte(t.kind))
			sb.WriteString(t.text)
			sb.WriteByte(0)
		}
		k := sb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, item)
	}
	return out
}

// sortWhereConjuncts reorders the top-level AND conjuncts of the WHERE
// clause under a value-insensitive key (literals masked), so predicate
// order does not change the fingerprint and parameter indices follow the
// sorted order. Conjunction is commutative, so the reorder is sound; if
// the clause has a top-level OR the pass backs off (splitting on AND
// would mis-associate, since OR binds looser).
func sortWhereConjuncts(toks []token) []token {
	// Locate the WHERE clause at paren depth 0.
	start, end := -1, len(toks)
	depth := 0
	for i, t := range toks {
		if t.kind == tkSymbol {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
			case ";":
				if depth == 0 && start >= 0 && end == len(toks) {
					end = i
				}
			}
			continue
		}
		if t.kind != tkKeyword || depth != 0 {
			continue
		}
		switch t.text {
		case "WHERE":
			start = i + 1
		case "GROUP", "ORDER", "LIMIT":
			if start >= 0 && end == len(toks) {
				end = i
			}
		}
	}
	if start < 0 || start >= end {
		return toks
	}

	// Split into conjuncts on depth-0 AND; back off on depth-0 OR. An
	// un-desugared BETWEEN (compound left operand — the token pass left
	// it for the parser) owns the next AND: that AND joins the range
	// bounds, not two conjuncts, so it must not become a split point.
	depth = 0
	pendingBetween := false
	var bounds []int // conjunct start indices
	bounds = append(bounds, start)
	for i := start; i < end; i++ {
		t := toks[i]
		if t.kind == tkSymbol {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
			}
			continue
		}
		if t.kind == tkKeyword && depth == 0 {
			switch t.text {
			case "OR":
				return toks
			case "BETWEEN":
				pendingBetween = true
			case "AND":
				if pendingBetween {
					pendingBetween = false
					continue
				}
				bounds = append(bounds, i+1)
			}
		}
	}
	if len(bounds) < 2 {
		return toks
	}

	type conjunct struct {
		toks []token
		key  string
	}
	cs := make([]conjunct, len(bounds))
	for ci, lo := range bounds {
		hi := end
		if ci+1 < len(bounds) {
			hi = bounds[ci+1] - 1 // exclude the AND keyword
		}
		c := conjunct{toks: toks[lo:hi]}
		var sb strings.Builder
		for _, t := range c.toks {
			switch t.kind {
			case tkNumber, tkString:
				sb.WriteString("#") // value-insensitive
			case tkIdent:
				sb.WriteString(strings.ToLower(t.text))
			default:
				sb.WriteString(t.text)
			}
			sb.WriteByte(' ')
		}
		c.key = sb.String()
		cs[ci] = c
	}
	// Stable insertion sort by key (tiny n; keeps equal keys in input
	// order, which is sound — equal keys mean identical masked text).
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].key < cs[j-1].key; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}

	out := make([]token, 0, len(toks))
	out = append(out, toks[:start]...)
	for ci, c := range cs {
		if ci > 0 {
			out = append(out, token{kind: tkKeyword, text: "AND", pos: toks[start].pos})
		}
		out = append(out, c.toks...)
	}
	out = append(out, toks[end:]...)
	return out
}
