package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

// TestParsePaperQuery parses the paper's Fig. 3a query verbatim.
func TestParsePaperQuery(t *testing.T) {
	q, err := Parse(`
		Select s.id,
		       avg(s.price /
		           s.vat_factor /
		           s.prod_costs)
		From sales s, products p
		Where s.id = p.id and
		      p.category = 'Chip'
		Group By s.id;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 || q.Tables[0].Name != "sales" || q.Tables[0].Alias != "s" {
		t.Fatalf("tables: %+v", q.Tables)
	}
	if len(q.Select) != 2 {
		t.Fatalf("select: %+v", q.Select)
	}
	agg, ok := q.Select[1].Expr.(*plan.Agg)
	if !ok || agg.Fn != plan.AggAvg {
		t.Fatalf("second item not avg: %v", q.Select[1].Expr)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].String() != "s.id" {
		t.Fatalf("group by: %v", q.GroupBy)
	}
	if len(q.Where) != 1 {
		t.Fatalf("where: %v", q.Where)
	}
	conj, ok := q.Where[0].(*plan.Bin)
	if !ok || conj.Op != plan.OpAnd {
		t.Fatalf("where root should be AND: %v", q.Where[0])
	}
}

func TestParseFig9Query(t *testing.T) {
	q, err := Parse(`
		Select l_orderkey,
		       avg(l_extendedprice)
		From lineitem, orders
		Where o_orderdate < '1995-04-01'
		  and o_orderkey = l_orderkey
		Group By l_orderkey;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 {
		t.Fatalf("tables: %+v", q.Tables)
	}
	lit, ok := q.Where[0].(*plan.Bin).L.(*plan.Bin)
	if !ok || lit.Op != plan.OpLt {
		t.Fatalf("date predicate shape: %v", q.Where[0])
	}
	if s, ok := lit.R.(*plan.StrConst); !ok || s.S != "1995-04-01" {
		t.Fatalf("date literal: %v", lit.R)
	}
}

func TestParseFeatures(t *testing.T) {
	cases := []string{
		"select 1 + 2 * 3 from orders",
		"select count(*) from lineitem where l_quantity < 24",
		"select o_orderkey k, o_totalprice from orders order by o_totalprice desc, o_orderkey limit 10",
		"select sum(l_extendedprice * (100 - l_discount)) as rev from lineitem",
		"select min(l_quantity), max(l_quantity) from lineitem group by l_orderkey",
		"select o_orderkey from orders where o_totalprice >= 100 and (o_orderdate < '1995-01-01' or o_orderdate >= '1997-01-01')",
		"select -l_discount from lineitem",
		"select o_orderkey from orders o where o.o_custkey <> 5",
		"select o_orderkey from orders -- trailing comment\n",
		"select x from t where s = 'it''s quoted'",
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"select",
		"select from t",
		"select a from",
		"select a from t where",
		"select a from t limit x",
		"select a from t order by",
		"select sum(*) from t",
		"select a from t alias junk",
		"select 'unterminated from t",
		"select a from t where a = 1 ; extra",
		"select a ? from t",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	q, err := Parse("select a + b * c - d from t")
	if err != nil {
		t.Fatal(err)
	}
	got := q.Select[0].Expr.String()
	want := "((a + (b * c)) - d)"
	if got != want {
		t.Fatalf("precedence: got %s, want %s", got, want)
	}
	q, err = Parse("select x from t where a = 1 and b = 2 or c = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(q.Where[0].String(), "(((a = 1) and (b = 2)) or") {
		t.Fatalf("and/or precedence: %s", q.Where[0])
	}
}

// TestParseTwoKeyGroupBy parses the TPC-H Q1 shape end to end.
func TestParseTwoKeyGroupBy(t *testing.T) {
	q, err := Parse(`
		select l_returnflag, l_linestatus,
		       sum(l_quantity) as sum_qty,
		       avg(l_extendedprice) as avg_price,
		       count(*) as count_order
		from lineitem
		where l_shipdate <= '1998-09-02'
		group by l_returnflag, l_linestatus
		order by l_returnflag, l_linestatus`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 2 {
		t.Fatalf("group keys = %d", len(q.GroupBy))
	}
	if len(q.OrderBy) != 2 || q.OrderBy[0].Desc {
		t.Fatalf("order by = %+v", q.OrderBy)
	}
	if len(q.Select) != 5 {
		t.Fatalf("select = %d items", len(q.Select))
	}
}
