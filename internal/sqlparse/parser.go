package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/plan"
)

// Parse turns a SQL statement into a plan.Query ready for the optimizer.
func Parse(src string) (*plan.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, maxParam: -1}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(tkSymbol, ";")
	if !p.at(tkEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	q.NumParams = p.maxParam + 1
	return q, nil
}

type parser struct {
	toks     []token
	i        int
	maxParam int // highest $N placeholder index seen (-1: none)
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*plan.Query, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &plan.Query{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.Tables = append(q.Tables, tr)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.accept(tkKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = append(q.Where, e)
	}
	if p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := plan.OrderItem{Expr: e}
			if p.accept(tkKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tkKeyword, "ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "LIMIT") {
		t, err := p.expect(tkNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseSelectItem() (plan.SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return plan.SelectItem{}, err
	}
	item := plan.SelectItem{Expr: e}
	if p.accept(tkKeyword, "AS") {
		t, err := p.expect(tkIdent, "")
		if err != nil {
			return plan.SelectItem{}, err
		}
		item.Alias = t.text
	} else if p.at(tkIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (plan.TableRef, error) {
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return plan.TableRef{}, err
	}
	tr := plan.TableRef{Name: t.text}
	if p.accept(tkKeyword, "AS") {
		a, err := p.expect(tkIdent, "")
		if err != nil {
			return plan.TableRef{}, err
		}
		tr.Alias = a.text
	} else if p.at(tkIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

// Expression grammar (loosest to tightest):
//
//	or:   and (OR and)*
//	and:  cmp (AND cmp)*
//	cmp:  add ((=|<>|!=|<|<=|>|>=) add)?
//	add:  mul ((+|-) mul)*
//	mul:  unary ((*|/|%) unary)*
//	unary: [-] primary
//	primary: number | string | ident[.ident] | agg(expr) | count(*) | (or)
func (p *parser) parseExpr() (plan.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (plan.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &plan.Bin{Op: plan.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (plan.Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "AND") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &plan.Bin{Op: plan.OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]plan.BinOp{
	"=": plan.OpEq, "<>": plan.OpNe, "!=": plan.OpNe,
	"<": plan.OpLt, "<=": plan.OpLe, ">": plan.OpGt, ">=": plan.OpGe,
}

func (p *parser) parseCmp() (plan.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tkSymbol {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &plan.Bin{Op: op, L: l, R: r}, nil
		}
	}
	// BETWEEN and IN desugar at parse time into the comparison form the
	// planner handles (Normalize performs the same rewrite token-level so
	// the spellings share a fingerprint, but raw statements parse too).
	if p.accept(tkKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &plan.Bin{Op: plan.OpAnd,
			L: &plan.Bin{Op: plan.OpGe, L: l, R: lo},
			R: &plan.Bin{Op: plan.OpLe, L: cloneExpr(l), R: hi}}, nil
	}
	if p.accept(tkKeyword, "IN") {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var chain plan.Expr
		for {
			item, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			var operand plan.Expr = l
			if chain != nil {
				operand = cloneExpr(l)
			}
			eq := &plan.Bin{Op: plan.OpEq, L: operand, R: item}
			if chain == nil {
				chain = eq
			} else {
				chain = &plan.Bin{Op: plan.OpOr, L: chain, R: eq}
			}
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return chain, nil
	}
	return l, nil
}

// cloneExpr deep-copies an expression so BETWEEN/IN desugaring never
// shares AST nodes between the branches it synthesizes.
func cloneExpr(e plan.Expr) plan.Expr {
	switch x := e.(type) {
	case *plan.ColRef:
		c := *x
		return &c
	case *plan.Const:
		c := *x
		return &c
	case *plan.StrConst:
		c := *x
		return &c
	case *plan.Param:
		c := *x
		return &c
	case *plan.Bin:
		return &plan.Bin{Op: x.Op, L: cloneExpr(x.L), R: cloneExpr(x.R)}
	case *plan.Agg:
		c := &plan.Agg{Fn: x.Fn}
		if x.Arg != nil {
			c.Arg = cloneExpr(x.Arg)
		}
		return c
	default:
		return e
	}
}

func (p *parser) parseAdd() (plan.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op plan.BinOp
		switch {
		case p.accept(tkSymbol, "+"):
			op = plan.OpAdd
		case p.accept(tkSymbol, "-"):
			op = plan.OpSub
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &plan.Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (plan.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op plan.BinOp
		switch {
		case p.accept(tkSymbol, "*"):
			op = plan.OpMul
		case p.accept(tkSymbol, "/"):
			op = plan.OpDiv
		case p.accept(tkSymbol, "%"):
			op = plan.OpMod
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &plan.Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (plan.Expr, error) {
	if p.accept(tkSymbol, "-") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &plan.Bin{Op: plan.OpSub, L: plan.Num(0), R: e}, nil
	}
	return p.parsePrimary()
}

var aggFns = map[string]plan.AggFn{
	"sum": plan.AggSum, "count": plan.AggCount, "avg": plan.AggAvg,
	"min": plan.AggMin, "max": plan.AggMax,
}

func (p *parser) parsePrimary() (plan.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tkNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return plan.Num(v), nil
	case tkString:
		p.next()
		return plan.Str(t.text), nil
	case tkParam:
		p.next()
		idx, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf("bad parameter $%s", t.text)
		}
		if idx > p.maxParam {
			p.maxParam = idx
		}
		return &plan.Param{Idx: idx}, nil
	case tkSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tkIdent:
		p.next()
		// Aggregate call?
		if fn, ok := aggFns[strings.ToLower(t.text)]; ok && p.at(tkSymbol, "(") {
			p.next()
			if p.accept(tkSymbol, "*") {
				if fn != plan.AggCount {
					return nil, p.errf("%s(*) is not valid", t.text)
				}
				if _, err := p.expect(tkSymbol, ")"); err != nil {
					return nil, err
				}
				return &plan.Agg{Fn: plan.AggCount}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return &plan.Agg{Fn: fn, Arg: arg}, nil
		}
		// Qualified or bare column.
		if p.accept(tkSymbol, ".") {
			c, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, err
			}
			return &plan.ColRef{Qual: t.text, Name: c.text}, nil
		}
		return &plan.ColRef{Name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
