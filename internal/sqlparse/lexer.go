// Package sqlparse is the SQL frontend: a lexer and recursive-descent
// parser for the engine's supported subset —
//
//	SELECT expr [AS name], ...
//	FROM table [alias], ...
//	[WHERE conjunction of predicates and equi-join conditions]
//	[GROUP BY expr]
//	[ORDER BY expr [ASC|DESC], ...]
//	[LIMIT n]
//
// with integer arithmetic, string/date literals, and the aggregates
// sum/count/avg/min/max. The parser produces a plan.Query for the
// optimizer.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkSymbol  // punctuation and operators
	tkKeyword // recognized keyword (normalized upper-case)
	tkParam   // bound-parameter placeholder $N (text is the index digits)
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AND": true, "OR": true, "AS": true,
	"ASC": true, "DESC": true, "NOT": true, "BETWEEN": true, "IN": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tkEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent(start)
		case c >= '0' && c <= '9':
			l.lexNumber(start)
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case c == '$':
			if err := l.lexParam(start); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && (isIdentStart(rune(l.src[l.pos])) || l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
		l.pos++
	}
	text := l.src[start:l.pos]
	up := strings.ToUpper(text)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tkKeyword, text: up, pos: start})
		return
	}
	l.toks = append(l.toks, token{kind: tkIdent, text: text, pos: start})
}

func (l *lexer) lexNumber(start int) {
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tkNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tkString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at %d", start)
}

// lexParam lexes a $N bound-parameter placeholder, as produced by query
// normalization (see fingerprint.go).
func (l *lexer) lexParam(start int) error {
	l.pos++ // '$'
	ds := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos == ds {
		return fmt.Errorf("sql: '$' without parameter index at %d", start)
	}
	l.toks = append(l.toks, token{kind: tkParam, text: l.src[ds:l.pos], pos: start})
	return nil
}

var twoCharSymbols = map[string]bool{"<>": true, "<=": true, ">=": true, "!=": true}

func (l *lexer) lexSymbol(start int) error {
	if l.pos+1 < len(l.src) && twoCharSymbols[l.src[l.pos:l.pos+2]] {
		l.toks = append(l.toks, token{kind: tkSymbol, text: l.src[l.pos : l.pos+2], pos: start})
		l.pos += 2
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '.', '*', '+', '-', '/', '%', '=', '<', '>', ';':
		l.toks = append(l.toks, token{kind: tkSymbol, text: string(c), pos: start})
		l.pos++
		return nil
	default:
		return fmt.Errorf("sql: unexpected character %q at %d", c, start)
	}
}
