package sqlparse

// Query fingerprinting: the front door of the compiled-query cache.
//
// Normalize lexes a statement and rewrites it into a canonical form in
// which textually different but structurally identical queries collide:
// keywords are upper-cased (the lexer already does this), identifiers are
// folded to lower case, whitespace and comments disappear (the canonical
// text is rebuilt from tokens), and literals are lifted out into bound
// parameters written as $N placeholders. The literal values travel
// alongside as Args, to be encoded and staged into the compiled
// artifact's parameter region at execution time.
//
// The lifting grammar, chosen to keep the canonical text plannable by the
// existing planner (which matches GROUP BY and ORDER BY items against the
// select list *textually*):
//
//   - numeric literals are lifted and deduplicated by value: every
//     occurrence of the same number maps to the same $N, so an expression
//     repeated across SELECT and GROUP BY keeps its textual identity;
//   - string literals are lifted one parameter per occurrence: each
//     occurrence takes its encoding (dictionary, date format) from the
//     column it is compared with, and two occurrences of the same text
//     may face different dictionaries;
//   - nothing after the top-level ORDER or LIMIT keyword is lifted:
//     ORDER BY ordinals ("ORDER BY 2") are positional, not values, and
//     the parser requires LIMIT's argument to be a literal. (The engine's
//     SQL subset has no subqueries, so ORDER/LIMIT can only introduce the
//     statement tail.)
//
// Before lifting, two token-level canonicalization passes run (see
// desugar.go): BETWEEN and IN predicates over simple column operands are
// desugared into their comparison form (with IN-list items deduplicated),
// and top-level WHERE conjuncts are sorted under a value-insensitive key,
// so range syntax, IN spelling, and predicate order do not change the
// fingerprint — the collisions the materialized-view rewriter (package
// mview) relies on.
//
// A statement that already contains $N placeholders is passed through
// verbatim (no lifting): it is somebody else's prepared form, and lifted
// indices would collide with the explicit ones.

import (
	"hash/fnv"
	"strconv"
	"strings"
)

// LitKind distinguishes lifted literal kinds.
type LitKind uint8

const (
	// LitNum is an integer literal.
	LitNum LitKind = iota
	// LitStr is a string literal (dates included; the encoding context
	// is decided by the column the parameter is compared with).
	LitStr
)

// Literal is one literal value lifted out of a statement.
type Literal struct {
	Kind LitKind
	Num  int64
	Str  string
}

// Fingerprint is the normalized identity of a statement.
type Fingerprint struct {
	// Canon is the canonical parameterized text ($N placeholders); it
	// reparses through Parse into a plan with NumParams parameters.
	Canon string
	// Hash is the 64-bit FNV-1a hash of Canon.
	Hash uint64
	// Args holds the lifted literal values, indexed by parameter.
	Args []Literal
}

// Normalize computes a statement's fingerprint. The only errors are
// lexical (the same ones Parse would report).
func Normalize(src string) (*Fingerprint, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	// Canonicalization pre-passes (desugar.go): BETWEEN/IN to comparison
	// form, then top-level WHERE conjuncts into a value-insensitive sort
	// order, both BEFORE lifting so parameter indices follow the sorted
	// canonical text.
	toks = desugarTokens(toks)
	toks = sortWhereConjuncts(toks)

	// Pre-scan: explicit $N placeholders disable lifting entirely.
	lift := true
	for _, t := range toks {
		if t.kind == tkParam {
			lift = false
			break
		}
	}

	fp := &Fingerprint{}
	numIdx := map[int64]int{} // value → parameter index (numeric dedup)
	var parts []string
	tail := false // inside the ORDER BY / LIMIT tail
	for _, t := range toks {
		switch t.kind {
		case tkEOF:
			// done below
		case tkKeyword:
			if t.text == "ORDER" || t.text == "LIMIT" {
				tail = true
			}
			parts = append(parts, t.text)
		case tkIdent:
			parts = append(parts, strings.ToLower(t.text))
		case tkParam:
			parts = append(parts, "$"+t.text)
		case tkNumber:
			if !lift || tail {
				parts = append(parts, t.text)
				break
			}
			v, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return nil, err
			}
			idx, ok := numIdx[v]
			if !ok {
				idx = len(fp.Args)
				numIdx[v] = idx
				fp.Args = append(fp.Args, Literal{Kind: LitNum, Num: v})
			}
			parts = append(parts, "$"+strconv.Itoa(idx))
		case tkString:
			if !lift || tail {
				parts = append(parts, quoteSQL(t.text))
				break
			}
			idx := len(fp.Args)
			fp.Args = append(fp.Args, Literal{Kind: LitStr, Str: t.text})
			parts = append(parts, "$"+strconv.Itoa(idx))
		case tkSymbol:
			if t.text == ";" {
				break // statement separators are not identity
			}
			parts = append(parts, t.text)
		}
	}
	fp.Canon = strings.Join(parts, " ")
	fp.Hash = Hash64(fp.Canon)
	return fp, nil
}

// Hash64 is the 64-bit FNV-1a hash of a canonical text. Normalize uses
// it for statement fingerprints; the cardinality-history cache (package
// cost) uses it to key observations by canonical plan-expression text, so
// both identity domains share one hash function and one collision story.
func Hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// quoteSQL re-quotes a string literal kept in the canonical text.
func quoteSQL(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
