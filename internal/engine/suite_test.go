package engine

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/ref"
	"repro/internal/vm"
)

// canon sorts rows lexicographically for order-insensitive comparison.
func canon(rows [][]int64) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func rowsEqual(t *testing.T, got, want [][]int64, ordered bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count: got %d, want %d", len(got), len(want))
	}
	g, w := canon(got), canon(want)
	if ordered {
		g, w = make([]string, len(got)), make([]string, len(want))
		for i := range got {
			g[i] = fmt.Sprint(got[i])
			w[i] = fmt.Sprint(want[i])
		}
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d: got %s, want %s", i, g[i], w[i])
		}
	}
}

// TestSuiteMatchesReference compiles and runs every workload of the
// evaluation suite and compares against the interpreted reference
// executor — the end-to-end conformance test of the whole stack.
func TestSuiteMatchesReference(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	for _, w := range queries.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cq, err := e.CompileQuery(w.Query)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			want, err := ref.Execute(cq.Plan)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			res, err := e.Run(cq, nil)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			rowsEqual(t, res.Rows, want, len(cq.Plan.OrderBy) > 0)
		})
	}
}

// TestSuiteOptimizationsPreserveResults re-runs the suite with IR
// optimizations and instruction fusing disabled; results must not change
// (Table 1 transformations are semantics-preserving).
func TestSuiteOptimizationsPreserveResults(t *testing.T) {
	cat := testCatalog(t)
	opts := DefaultOptions()
	ref := New(cat, opts)

	plainOpts := opts
	plainOpts.Optimize.CSE = false
	plainOpts.Optimize.ConstFold = false
	plainOpts.Optimize.DCE = false
	plainOpts.FuseCmpBranch = false
	plain := New(cat, plainOpts)

	for _, w := range queries.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c1, err := ref.CompileQuery(w.Query)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := plain.CompileQuery(w.Query)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := ref.Run(c1, nil)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := plain.Run(c2, nil)
			if err != nil {
				t.Fatal(err)
			}
			rowsEqual(t, r1.Rows, r2.Rows, len(c1.Plan.OrderBy) > 0)
			if r2.Stats.Instructions <= r1.Stats.Instructions {
				t.Logf("note: unoptimized not slower (%d vs %d instructions)",
					r2.Stats.Instructions, r1.Stats.Instructions)
			}
		})
	}
}

// TestSuiteProfiledAttribution runs every workload under sampling and
// requires high attribution — the per-query backbone of Table 2.
func TestSuiteProfiledAttribution(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	for _, w := range queries.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cq, err := e.CompileQuery(w.Query)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(cq, &pmu.Config{
				Event: vm.EvCycles, Period: 997, Format: pmu.FormatIPTimeRegs,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Profile.TotalSamples < 20 {
				t.Skipf("only %d samples", res.Profile.TotalSamples)
			}
			att := res.Profile.Attribution()
			if att.AttributedPct < 90 {
				t.Errorf("attribution %.1f%% below 90%% (%+v)", att.AttributedPct, att)
			}
		})
	}
}

// TestPlanShapesForFig10 checks that the hints produce the two distinct
// probe orders of the optimizer use case.
func TestPlanShapesForFig10(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	for _, alt := range []bool{false, true} {
		w := queries.Fig10(alt)
		cq, err := e.CompileQuery(w.Query)
		if err != nil {
			t.Fatal(err)
		}
		top, ok := cq.Plan.Input.(*plan.GroupBy)
		if !ok {
			t.Fatalf("%s: top is %T, want GroupBy", w.Name, cq.Plan.Input)
		}
		j2, ok := top.Input.(*plan.Join)
		if !ok {
			t.Fatalf("%s: below group-by is %T", w.Name, top.Input)
		}
		j1, ok := j2.Probe.(*plan.Join)
		if !ok {
			t.Fatalf("%s: probe side is %T, want a second join", w.Name, j2.Probe)
		}
		outer := j2.Build.(*plan.Scan).Alias
		inner := j1.Build.(*plan.Scan).Alias
		wantInner, wantOuter := "partsupp", "orders"
		if alt {
			wantInner, wantOuter = "orders", "partsupp"
		}
		if inner != wantInner || outer != wantOuter {
			t.Fatalf("%s: probe order %s→%s, want %s→%s", w.Name, inner, outer, wantInner, wantOuter)
		}
	}
}
