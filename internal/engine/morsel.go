package engine

// DefaultMorselRows is the morsel size used when Options.MorselRows is 0.
// Umbra uses morsels of a few thousand tuples: large enough to amortize
// scheduling, small enough to balance load across workers.
const DefaultMorselRows = 1024

// Span is one morsel: a half-open [Lo, Hi) range of tuple indices (table
// scans) or arena entry indices (hash-table scans).
type Span struct {
	Lo, Hi int64
}

// Rows returns the number of units the span covers.
func (s Span) Rows() int64 { return s.Hi - s.Lo }

// PartitionMorsels splits the domain [0, total) into consecutive spans of
// at most size units each (size <= 0 selects DefaultMorselRows). The
// partition is a pure function of (total, size): it never depends on the
// worker count, so every worker count sees the same global morsel list —
// the invariant behind deterministic parallel results. The fuzz test
// asserts the spans are non-empty, contiguous, and cover the domain
// exactly once.
func PartitionMorsels(total, size int64) []Span {
	if size <= 0 {
		size = DefaultMorselRows
	}
	if total <= 0 {
		return nil
	}
	spans := make([]Span, 0, (total+size-1)/size)
	for lo := int64(0); lo < total; lo += size {
		hi := lo + size
		if hi > total {
			hi = total
		}
		spans = append(spans, Span{Lo: lo, Hi: hi})
	}
	return spans
}
