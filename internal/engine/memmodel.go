package engine

import (
	"sort"

	"repro/internal/codegen"
	"repro/internal/pipeline"
	"repro/internal/verify"
)

// buildMemModel derives the abstract interpreter's memory model from the
// layout buildLayout produced: every carved heap region with its store
// permission, plus invariant facts for the staged cells generated code
// only ever reads (column bases, row counts, descriptor dir/mask/end,
// morsel bounds). The model is what lets internal/verify/absint prove
// column accesses in-bounds and catch provably wild or read-only-region
// stores at compile time.
func buildMemModel(cq *Compiled, lay *pipeline.Layout, pc *pipeline.Compiled) *verify.MemModel {
	mm := &verify.MemModel{
		HeapSize: int64(cq.heapSize),
		Cells:    map[int64]verify.CellFact{},
	}
	add := func(name string, lo, hi int64, writable bool) {
		if hi > lo {
			mm.Regions = append(mm.Regions, verify.MemRegion{Name: name, Lo: lo, Hi: hi, Writable: writable})
		}
	}

	// The stack analogue: call-argument staging and spill slots.
	add("staging", stagingAddr, spillBase, true)
	add("spill", spillBase, spillBase+spillCap, true)

	// State slots are staged by the host and read-only to generated code.
	slots := int64(len(lay.ColSlots) + len(lay.RowsSlots))
	add("state", lay.StateBase, lay.StateBase+slots*8, false)

	// Descriptors: generated code bumps the arena/result cursors, so the
	// region is writable; the dir/mask/end cells still carry exact facts
	// (excluded from cq.writes-derived facts below).
	descBase := align(lay.StateBase+slots*8, 64)
	add("desc", descBase, lay.ResultDesc+codegen.AllocDescSize, true)

	// Morsel bounds: staged per-morsel by the host in parallel runs, and by
	// the generated prologue (stageFullMorsel) in single-threaded runs —
	// both writers maintain the interval facts declared below.
	add("morsel", lay.MorselBase, lay.MorselBase+int64(len(pc.Pipelines))*pipeline.MorselSlotBytes, true)

	if lay.ParamBase != 0 {
		add("params", lay.ParamBase, lay.ParamBase+int64(len(cq.Plan.Params))*8, false)
	}
	if lay.CounterBase != 0 {
		add("counters", lay.CounterBase, lay.CounterBase+counterSlots*8, true)
	}

	// Table columns: host-staged, read-only. A provable store into one is
	// a miscompile. Regions span the full reserved capacity — the addresses
	// an execution at *any* epoch within capacity may touch — not just the
	// compile-time row count.
	for _, b := range cq.binds {
		add("col", b.addr, b.addr+b.cap*8, false)
	}

	// Hash-table areas: all written by generated code and runtime routines.
	for _, ht := range lay.HT {
		add("ht.dir", ht.Dir, ht.Dir+ht.DirSlots*8, true)
		add("ht.arena", ht.Arena, ht.ArenaEnd, true)
		if ht.Partitions > 0 {
			arenaCap := ht.ArenaEnd - ht.Arena
			vecBytes := (arenaCap / ht.EntrySize) * 8
			add("ht.scatter", ht.ScatterOut, ht.ScatterOut+arenaCap, true)
			add("ht.mergecnt", ht.MergeCnt, ht.MergeCnt+ht.Partitions*8, true)
			add("ht.mergecur", ht.MergeCur, ht.MergeCur+ht.Partitions*8, true)
			add("ht.mergesrc", ht.MergeSrc, ht.MergeSrc+arenaCap, true)
			add("ht.mergevec", ht.MergeVec, ht.MergeVec+vecBytes, true)
			if ht.MergeOut != 0 {
				add("ht.mergeout", ht.MergeOut, ht.MergeOut+arenaCap, true)
				add("ht.mergeseq", ht.MergeSeq, ht.MergeSeq+vecBytes, true)
			}
			add("ht.mergeparam", ht.MergeParam, ht.MergeParam+pipeline.MergeParamSlots*8, true)
		}
		if ht.BloomBits > 0 {
			add("ht.bloom", ht.BloomBase, ht.BloomBase+ht.BloomBits/8, true)
		}
	}

	add("result", cq.resultBase, cq.resultEnd, true)

	sort.Slice(mm.Regions, func(i, j int) bool { return mm.Regions[i].Lo < mm.Regions[j].Lo })

	// Exact cell facts from the staging writes, minus the cursor cells the
	// program itself advances.
	cursors := map[int64]bool{lay.ResultDesc + codegen.AllocDescCursor: true}
	for _, ht := range lay.HT {
		cursors[ht.Desc+codegen.HTDescCursor] = true
	}
	for _, w := range cq.writes {
		if !cursors[w.addr] {
			mm.Cells[w.addr] = verify.CellFact{Lo: w.val, Hi: w.val}
		}
	}

	// Row-count slots are epoch-resolved — staged from the run's snapshot,
	// not baked into cq.writes — so their fact is the range of visible row
	// counts an artifact may serve: [0, capacity].
	capOf := map[string]int64{}
	for _, tb := range cq.tables {
		capOf[tb.alias] = tb.cap
	}
	for _, rb := range cq.rowsBinds {
		var c int64
		for _, tb := range cq.tables {
			if tb.table == rb.table {
				c = tb.cap
				break
			}
		}
		mm.Cells[rb.addr] = verify.CellFact{Lo: 0, Hi: c}
	}

	// Morsel-bound facts: interval invariants over every morsel the host
	// can stage (runMorsel semantics — scan morsels are tuple-index ranges
	// within [0, rows], where rows can reach the reserved capacity at a
	// later epoch; arena morsels are entry-aligned addresses within the
	// arena).
	for i := range pc.Pipelines {
		p := &pc.Pipelines[i]
		var f verify.CellFact
		switch d := p.Driver; d.Kind {
		case pipeline.DriverScan:
			hi := int64(d.Rows)
			if c, ok := capOf[d.Alias]; ok && c > hi {
				hi = c
			}
			f = verify.CellFact{Lo: 0, Hi: hi}
		case pipeline.DriverArena:
			if d.HT == nil {
				continue
			}
			f = verify.CellFact{Lo: d.HT.Arena, Hi: d.HT.ArenaEnd}
			if d.HT.Arena%8 == 0 && d.HT.EntrySize%8 == 0 {
				f.Align = 8
			}
		default:
			continue
		}
		mm.Cells[lay.MorselStart(p.Index)] = f
		mm.Cells[lay.MorselEnd(p.Index)] = f
	}
	return mm
}
