package engine

// Profile-guided recompilation: the Tagging Dictionary's lineage lets
// samples flow bottom-up to tasks and operators; this file closes the
// loop by feeding the same attributed profile back down into the
// optimizer and backend. One adaptive cycle is: run sampled → build the
// profile → recompile guided by it → re-run → compare cycles. The
// recompiled binary must produce row-identical results, and because the
// backend records layout inversions in the native map, profiling the
// recompiled binary yields another valid, normalized profile — the cycle
// can repeat.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pgo"
	"repro/internal/pmu"
	"repro/internal/vm"
)

// DefaultPGOSampling is the sampling configuration RunAdaptive uses when
// none is given: the cycles event at the paper's default period, in the
// PEBS+registers+LBR format the PGO consumers need.
func DefaultPGOSampling() pmu.Config {
	return pmu.Config{Event: vm.EvCycles, Period: 5000, Format: pmu.FormatPGO}
}

// Recompile compiles cq's plan again, guided by a profile collected from
// running cq. The profile's IR weights and branch statistics are
// translated through cq's own native map, then steer hot-loop IR passes
// (LICM, strength reduction), scaled-address fusion, basic-block layout
// and spill priority in the fresh compilation.
func (e *Engine) Recompile(cq *Compiled, prof *core.Profile) (*Compiled, error) {
	return e.compiler().Recompile(cq, prof)
}

// Recompile compiles cq's plan again, guided by a profile collected from
// running cq (see Engine.Recompile).
func (c *Compiler) Recompile(cq *Compiled, prof *core.Profile) (*Compiled, error) {
	if prof == nil {
		return nil, fmt.Errorf("engine: Recompile needs a profile (run with sampling first)")
	}
	hot := pgo.FromProfile(prof, cq.Code.NMap)
	return c.compilePlan(cq.Plan, hot)
}

// AdaptiveResult reports one profile → recompile → re-run cycle.
type AdaptiveResult struct {
	// ProfileRun is the sampled execution of the original binary that
	// produced the guiding profile.
	ProfileRun *Result
	// Baseline and Tuned are unprofiled executions of the original and
	// recompiled binaries; their WallCycles are directly comparable.
	Baseline *Result
	Tuned    *Result
	// Recompiled is the profile-guided compilation.
	Recompiled *Compiled

	BaselineCycles uint64
	TunedCycles    uint64
}

// Speedup returns baseline/tuned simulated wall cycles (>1 is faster).
func (r *AdaptiveResult) Speedup() float64 {
	if r.TunedCycles == 0 {
		return 0
	}
	return float64(r.BaselineCycles) / float64(r.TunedCycles)
}

// CycleReduction returns the fractional wall-cycle reduction, e.g. 0.12
// for a 12% faster tuned binary.
func (r *AdaptiveResult) CycleReduction() float64 {
	if r.BaselineCycles == 0 {
		return 0
	}
	return 1 - float64(r.TunedCycles)/float64(r.BaselineCycles)
}

// RunAdaptive executes one adaptive cycle for a compiled query: a sampled
// run under cfg (nil selects DefaultPGOSampling), a recompilation guided
// by the resulting profile, and unprofiled runs of both binaries. It
// fails if the recompiled query's rows differ from the original's in any
// way — profile-guided recompilation is only an optimization if it is
// invisible.
func (e *Engine) RunAdaptive(cq *Compiled, cfg *pmu.Config) (*AdaptiveResult, error) {
	return runAdaptive(e.compiler(), e.executor(), cq, nil, cfg)
}

// runAdaptive is the adaptive cycle over the split engine halves, with
// per-session run state (nil for parameterless plans). The tuned artifact
// is compiled for the same parameterized plan, so it remains valid for
// any future binding of the same fingerprint.
func runAdaptive(c *Compiler, x *Executor, cq *Compiled, rs *RunState, cfg *pmu.Config) (*AdaptiveResult, error) {
	if cfg == nil {
		d := DefaultPGOSampling()
		cfg = &d
	}
	profRun, err := x.Run(cq, rs, cfg)
	if err != nil {
		return nil, fmt.Errorf("engine: adaptive profiling run: %w", err)
	}
	if profRun.Profile == nil {
		return nil, fmt.Errorf("engine: adaptive profiling run produced no profile")
	}
	tunedCq, err := c.Recompile(cq, profRun.Profile)
	if err != nil {
		return nil, fmt.Errorf("engine: recompile: %w", err)
	}
	baseline, err := x.Run(cq, rs, nil)
	if err != nil {
		return nil, fmt.Errorf("engine: baseline run: %w", err)
	}
	tuned, err := x.Run(tunedCq, rs, nil)
	if err != nil {
		return nil, fmt.Errorf("engine: tuned run: %w", err)
	}
	if !RowsEqual(baseline.Rows, tuned.Rows) {
		return nil, fmt.Errorf("engine: recompiled query changed results (%d vs %d rows)",
			len(baseline.Rows), len(tuned.Rows))
	}
	return &AdaptiveResult{
		ProfileRun:     profRun,
		Baseline:       baseline,
		Tuned:          tuned,
		Recompiled:     tunedCq,
		BaselineCycles: baseline.WallCycles,
		TunedCycles:    tuned.WallCycles,
	}, nil
}

// RowsEqual reports exact equality of two result sets, row order
// included: every transformation the PGO pipeline applies preserves
// tuple processing order, so even pre-ORDER-BY tie order must survive
// recompilation.
func RowsEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
