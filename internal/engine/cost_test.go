package engine

// Closed-loop tests for the profile-fed cost layer: the no-regression
// gate (history-corrected planning must never cost more than the
// heuristic baseline, and must beat it substantially on at least one
// join), the worker/partition determinism battery for re-planned shapes,
// the worker-invariance of collected true cardinalities, and the
// service-level replan-on-material-shift cycle.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/plan"
	"repro/internal/queries"
	"repro/internal/sqlparse"
)

// planSQLWith parses and plans one statement under an estimator.
func planSQLWith(t testing.TB, cat *catalog.Catalog, sql string, est plan.Estimator) *plan.Output {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.PlanWith(cat, q, est)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// sortedRows renders a result set order-independently (different physical
// shapes of one query may emit rows in different orders).
func sortedRows(rows [][]int64) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func equalSorted(a, b [][]int64) bool {
	as, bs := sortedRows(a), sortedRows(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestCostModelNoRegression: plan the whole SQL suite twice — once with
// the heuristic planner, once with a history trained by counter-
// instrumented runs of the heuristic plans — and compare serial
// simulated cycles. History-corrected planning must stay within +5% of
// the baseline in total, must match every query's rows exactly (modulo
// order), and must improve at least one join query by >= 10%.
func TestCostModelNoRegression(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.05, Seed: 42})
	suite := queries.SQLSuite()

	// Training pass: heuristic plans, tuple counters on, observe truth.
	h := cost.NewHistory()
	copts := DefaultOptions()
	copts.TupleCounters = true
	for _, w := range suite {
		pl := planSQLWith(t, cat, w.SQL, nil)
		cq, err := (&Compiler{Cat: cat, Opts: copts}).CompilePlanGuided(pl, nil)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		res, err := (&Executor{Opts: copts}).Run(cq, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		cost.ObserveTrueRows(h, pl, cq.Pipe, res.TupleCounts)
	}

	// Measurement pass: same opts (no counters) for both plan flavors.
	est := &cost.HistoryCorrected{Base: &cost.Naive{Stats: cost.FreshStats{}}, H: h}
	opts := DefaultOptions()
	run := func(name string, pl *plan.Output) (uint64, [][]int64) {
		t.Helper()
		cq, err := (&Compiler{Cat: cat, Opts: opts}).CompilePlanGuided(pl, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := (&Executor{Opts: opts}).Run(cq, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res.Stats.Cycles, res.Rows
	}
	var totalBase, totalCorr uint64
	bestJoinGain := 0.0
	bestJoin := ""
	for _, w := range suite {
		plB := planSQLWith(t, cat, w.SQL, nil)
		plC := planSQLWith(t, cat, w.SQL, est)
		cyB, rowsB := run(w.Name+"/heuristic", plB)
		cyC, rowsC := run(w.Name+"/history", plC)
		if !equalSorted(rowsB, rowsC) {
			t.Fatalf("%s: history-corrected plan changed the result (%d vs %d rows)",
				w.Name, len(rowsB), len(rowsC))
		}
		totalBase += cyB
		totalCorr += cyC
		if gain := 1 - float64(cyC)/float64(cyB); strings.Contains(plan.Canon(plB), "join{") && gain > bestJoinGain {
			bestJoinGain, bestJoin = gain, w.Name
		}
		t.Logf("%-14s heuristic %9d cycles, history %9d cycles (%+.1f%%)",
			w.Name, cyB, cyC, 100*(float64(cyC)/float64(cyB)-1))
	}
	if float64(totalCorr) > 1.05*float64(totalBase) {
		t.Errorf("history-corrected planning regressed: %d vs %d total cycles (> +5%%)",
			totalCorr, totalBase)
	}
	if bestJoinGain < 0.10 {
		t.Errorf("no join query improved by >= 10%% (best: %s at %.1f%%)", bestJoin, bestJoinGain*100)
	} else {
		t.Logf("best join improvement: %s, %.1f%% fewer cycles", bestJoin, bestJoinGain*100)
	}
}

// TestReplanDeterminism: every re-planned (history-corrected) shape
// produces a byte-identical result heap at every worker count and both
// partition settings — the serial run of the same artifact is the
// oracle, and even unordered results may not move (the partitioned merge
// reconstructs the serial heap exactly). Across partition settings and
// against the heuristic plan, rows must agree modulo order.
func TestReplanDeterminism(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.05, Seed: 42})
	suite := []string{"join-opaque", "join-3way", "join-groupjoin"}
	h := cost.NewHistory()
	copts := DefaultOptions()
	copts.TupleCounters = true
	for _, name := range suite {
		w, _ := queries.SQLByName(name)
		pl := planSQLWith(t, cat, w.SQL, nil)
		cq, err := (&Compiler{Cat: cat, Opts: copts}).CompilePlanGuided(pl, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&Executor{Opts: copts}).Run(cq, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		cost.ObserveTrueRows(h, pl, cq.Pipe, res.TupleCounts)
	}
	est := &cost.HistoryCorrected{Base: &cost.Naive{Stats: cost.FreshStats{}}, H: h}

	for _, name := range suite {
		w, _ := queries.SQLByName(name)
		plB := planSQLWith(t, cat, w.SQL, nil)
		plC := planSQLWith(t, cat, w.SQL, est)
		var crossPartition [][]int64
		for _, parts := range []int{0, 8} {
			opts := DefaultOptions()
			opts.Partitions = parts
			cq, err := (&Compiler{Cat: cat, Opts: opts}).CompilePlanGuided(plC, nil)
			if err != nil {
				t.Fatalf("%s parts=%d: %v", name, parts, err)
			}
			var oracle [][]int64
			for _, workers := range []int{0, 1, 2, 4, 8} {
				ro := opts
				ro.Workers = workers
				res, err := (&Executor{Opts: ro}).Run(cq, nil, nil)
				if err != nil {
					t.Fatalf("%s parts=%d workers=%d: %v", name, parts, workers, err)
				}
				if workers == 0 {
					oracle = res.Rows
					continue
				}
				if !RowsEqual(res.Rows, oracle) {
					t.Errorf("%s parts=%d workers=%d: rows differ from the serial oracle byte-for-byte",
						name, parts, workers)
				}
			}
			if crossPartition == nil {
				crossPartition = oracle
			} else if !equalSorted(oracle, crossPartition) {
				t.Errorf("%s: partition settings disagree on the result set", name)
			}
		}
		// Cross-plan: the re-planned shape computes the heuristic shape's
		// rows (emission order may legitimately differ between shapes).
		bq, err := (&Compiler{Cat: cat, Opts: DefaultOptions()}).CompilePlanGuided(plB, nil)
		if err != nil {
			t.Fatal(err)
		}
		bres, err := (&Executor{Opts: DefaultOptions()}).Run(bq, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSorted(bres.Rows, crossPartition) {
			t.Errorf("%s: heuristic and re-planned shapes disagree on the result set", name)
		}
	}
}

// TestTrueCardinalityWorkerInvariance: the collected true row counts —
// Result.PlanRows, resolved through counter folding and the Tagging
// Dictionary — are identical for serial and parallel runs of one
// artifact.
func TestTrueCardinalityWorkerInvariance(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.05, Seed: 42})
	w, _ := queries.SQLByName("join-3way")
	pl := planSQLWith(t, cat, w.SQL, nil)
	opts := DefaultOptions()
	opts.TupleCounters = true
	cq, err := (&Compiler{Cat: cat, Opts: opts}).CompilePlanGuided(pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	var serial map[plan.Node]int64
	for _, workers := range []int{0, 1, 4} {
		ro := opts
		ro.Workers = workers
		res, err := (&Executor{Opts: ro}).Run(cq, nil, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.PlanRows) == 0 {
			t.Fatalf("workers=%d: no true cardinalities collected", workers)
		}
		if workers == 0 {
			serial = res.PlanRows
			continue
		}
		if len(res.PlanRows) != len(serial) {
			t.Fatalf("workers=%d: %d counted nodes vs %d serial", workers, len(res.PlanRows), len(serial))
		}
		for n, r := range res.PlanRows {
			if serial[n] != r {
				t.Errorf("workers=%d: node %s counted %d rows, serial counted %d",
					workers, n.Kind(), r, serial[n])
			}
		}
	}
}

// TestServiceHistoryReplan: the production loop end to end. The opaque-
// filter join misestimates badly, so the first service compile picks the
// unfused shape; Adapt observes true cardinalities, detects that a
// re-plan would change the physical plan, and bumps the fingerprint's
// generation; the next Prepare recompiles — under the history — into the
// fused shape, with an identical result set.
func TestServiceHistoryReplan(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.05, Seed: 42})
	svc := NewService(cat, DefaultOptions(), 0)
	se := svc.NewSession()
	w, _ := queries.SQLByName("join-opaque")

	p1, err := se.Prepare(w.SQL)
	if err != nil {
		t.Fatal(err)
	}
	shape1 := plan.Shape(p1.Compiled.Plan)
	r1, err := se.Run(p1, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := se.Adapt(w.SQL, nil); err != nil {
		t.Fatal(err)
	}
	if svc.History().Len() == 0 {
		t.Fatal("Adapt observed nothing into the history")
	}
	if gen := svc.gens.Current(p1.Fingerprint); gen == 0 {
		t.Fatal("material cardinality shift with a shape change did not bump the generation")
	}

	p2, err := svc.NewSession().Prepare(w.SQL)
	if err != nil {
		t.Fatal(err)
	}
	shape2 := plan.Shape(p2.Compiled.Plan)
	if shape1 == shape2 {
		t.Fatalf("service did not re-plan after the history shift; shape stayed %s", shape1)
	}
	if plan.Canon(p1.Compiled.Plan) != plan.Canon(p2.Compiled.Plan) {
		t.Fatal("re-planned query changed its canonical expression")
	}
	r2, err := svc.NewSession().Run(p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSorted(r1.Rows, r2.Rows) {
		t.Fatalf("re-planned query changed the result set (%d vs %d rows)", len(r1.Rows), len(r2.Rows))
	}
	if r2.Stats.Cycles >= r1.Stats.Cycles {
		t.Errorf("re-planned query is not faster: %d vs %d cycles", r2.Stats.Cycles, r1.Stats.Cycles)
	}

	// A second Adapt on the now-correct plan must not thrash: the
	// history agrees with the served shape, so the generation holds.
	gen := svc.gens.Current(p1.Fingerprint)
	if _, err := se.Adapt(w.SQL, nil); err != nil {
		t.Fatal(err)
	}
	p3, err := se.Prepare(w.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if s3 := plan.Shape(p3.Compiled.Plan); s3 != shape2 {
		t.Fatalf("stable history re-planned again: %s -> %s", shape2, s3)
	}
	_ = gen
}

// TestServiceHistoryConcurrent drives Adapt and Execute from several
// sessions at once — the history, generation table and cache must stay
// consistent under contention (run with -race).
func TestServiceHistoryConcurrent(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.05, Seed: 42})
	svc := NewService(cat, DefaultOptions(), 0)
	stmts := []string{"join-opaque", "agg-group", "join-groupjoin", "scan-filter"}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			se := svc.NewSession()
			w, _ := queries.SQLByName(stmts[i%len(stmts)])
			if _, err := se.Adapt(w.SQL, nil); err != nil {
				errs <- fmt.Errorf("adapt %s: %w", w.Name, err)
				return
			}
			for j := 0; j < 3; j++ {
				w2, _ := queries.SQLByName(stmts[(i+j)%len(stmts)])
				if _, _, err := se.Execute(w2.SQL, nil); err != nil {
					errs <- fmt.Errorf("execute %s: %w", w2.Name, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if svc.History().Len() == 0 {
		t.Error("no observations reached the shared history")
	}
}
