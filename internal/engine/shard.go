package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/vm"
)

// Cross-shard coordination (DESIGN.md §13).
//
// With Options.Shards >= 1 every table-scan pipeline executes through the
// cross-shard coordinator: the table's zone map (internal/catalog) is
// grouped into N contiguous shards, and each zone is either *pruned* —
// proven to contribute no rows, from its bounds against the scan filter or
// against the build side of a join it feeds — or *surviving*, in which case
// its rows are morselized onto the existing workers. Three properties make
// this an invariance-preserving optimization rather than a new execution
// mode:
//
//   - Zone granularity is a function of the table alone (catalog.ZoneRowsFor),
//     never of the shard count, so pruning decisions — and therefore the
//     surviving row set, the global morsel list, the result heap, and the
//     merged profile — are identical for Shards ∈ {1,2,4,8,...}. Shards are
//     just contiguous zone groups layered on top for attribution: per-shard
//     run states (journals), per-shard sample stamps, wholesale skips.
//   - Pruning is certain, not probabilistic: a zone is skipped only when
//     interval evaluation of the filter over the zone's bounds proves no row
//     can pass, or when the probe-key range provably misses every build-side
//     key (bounds check, or an exhaustive bloom-filter membership replay for
//     narrow ranges). The property suite compares pruned vs unpruned rows.
//   - Every pruned zone becomes an explicit zero-cost skip event attached to
//     the merged profile, so attribution stays complete: each table row is
//     covered either by executed-task samples or by a skip.

// ShardDecision is a per-statement sharded-execution choice, made by the
// profile-fed cost model at compile time (service path; see
// cost.DecideShards). Artifacts without a decision run with the executor's
// static Options — engine-direct callers keep exact knob control.
type ShardDecision struct {
	Shards  int
	Pruning bool
}

// shardKnobs returns the effective (shard count, pruning) pair for one
// artifact under this executor: the artifact's compile-time decision when
// present, the executor's static options otherwise.
func (x *Executor) shardKnobs(cq *Compiled) (int, bool) {
	if cq.Shard != nil {
		return cq.Shard.Shards, cq.Shard.Pruning
	}
	return x.Opts.Shards, x.Opts.ShardPruning
}

// ZoneDecision journals the coordinator's verdict on one zone.
type ZoneDecision struct {
	Zone   int   // zone index in the table's zone map
	Lo, Hi int64 // row range [Lo, Hi)
	Pruned bool
	Cause  string // core.SkipFilter / SkipSemiJoin / SkipBloom; "" if surviving
}

// ShardState is the per-shard run state of one scan pipeline: which zones
// the shard owns, which were pruned and why, and how much of it actually
// ran. The states of one run are the lineage journal `tprofvet check
// -shard` replays: shards must tile the table, zone verdicts must match
// the skip events in the merged profile, and no two shards may claim the
// same zone (tag collision).
type ShardState struct {
	Pipeline int    // pipeline index
	Alias    string // driving scan alias
	Shard    int    // shard ID (position in the n-way split)
	Lo, Hi   int64  // row range [Lo, Hi)
	Zones    []ZoneDecision
	Rows     int64 // total rows the shard owns
	Scanned  int64 // rows that survived pruning and were executed
	Morsels  int   // morsels of this run that carried the shard's rows
	Pruned   bool  // whole shard skipped (every zone pruned)
}

// shardExec is one scan pipeline's sharded execution plan: the canonical
// surviving-morsel list (identical for every shard count), the shard
// owning each morsel (the attribution stamp), the per-shard journals, and
// the skip events for the pruned zones.
type shardExec struct {
	spans   []Span
	shardOf []int
	states  []ShardState
	skips   []core.SkipEvent
}

// semiProbe is one join this scan's pipeline probes with a bare column of
// the scanned table: build-side key bounds plus the build's bloom filter,
// "shipped" to the probe-side shard scans for semi-join pruning.
type semiProbe struct {
	col    int // table column position of the probe key
	ht     *pipeline.HTLayout
	bounds catalog.Bound // over the build side's inserted keys
}

// bloomProbeMaxKeys bounds the exhaustive bloom membership replay: a
// zone's probe-key range [lo, hi] is tested value-by-value only when it
// spans at most this many candidates (clustered keys — the case where
// zone ranges are narrow — is exactly where this wins).
const bloomProbeMaxKeys = 64

// buildShardExec computes one scan pipeline's sharded execution plan
// against the canonical heap (build sides of already-executed pipelines
// are final there — the semi-join shipping reads them). Zones and shards
// come from the run's pinned snapshot view, never the live table, so the
// verdicts describe exactly the rows this execution sees — concurrent
// appends land in a tail no zone covers.
func buildShardExec(cq *Compiled, coord *vm.CPU, info *pipeline.PipelineInfo, snap *catalog.Snapshot, params []int64, shards int, pruning bool, morselSize int64) (*shardExec, error) {
	scan := findScan(cq.Plan, info.Driver.Alias)
	if scan == nil {
		return nil, fmt.Errorf("engine: shard coordinator: no scan %q in plan", info.Driver.Alias)
	}
	view := snap.View(scan.Table.Name)
	if view == nil {
		return nil, fmt.Errorf("engine: shard coordinator: snapshot has no view of table %q", scan.Table.Name)
	}
	zones := view.Zones()
	shardList := view.Shards(shards)

	// Decide every zone. The verdicts depend on (table, filter, params,
	// canonical build state) only — never on the shard grouping.
	cause := make([]string, len(zones))
	if pruning {
		var probes []semiProbe
		for _, p := range collectSemiProbes(cq, coord, scan) {
			probes = append(probes, p)
		}
		for zi, z := range zones {
			// Scan.Filter's column positions index the scan's output row
			// (see pipeline.evalExpr and ref.scan), so project the zone's
			// table-space bounds through the scan's column selection.
			if scan.Filter != nil {
				outBounds := make([]catalog.Bound, len(scan.Cols))
				for i, ci := range scan.Cols {
					outBounds[i] = z.Bounds[ci]
				}
				if !mayMatch(scan.Filter, outBounds, params) {
					cause[zi] = core.SkipFilter
					continue
				}
			}
			for _, p := range probes {
				kb := z.Bounds[p.col]
				if p.bounds.Empty() || kb.Max < p.bounds.Min || kb.Min > p.bounds.Max {
					cause[zi] = core.SkipSemiJoin
					break
				}
				if p.ht != nil && p.ht.BloomBits > 0 && kb.Max-kb.Min < bloomProbeMaxKeys {
					hit := false
					for k := kb.Min; k <= kb.Max; k++ {
						if pipeline.BloomMayContain(coord.Heap, p.ht, k) {
							hit = true
							break
						}
					}
					if !hit {
						cause[zi] = core.SkipBloom
						break
					}
				}
			}
		}
	}

	se := &shardExec{}

	// Canonical surviving-morsel list: maximal runs of surviving zones,
	// morselized independently. Runs ignore shard boundaries — a morsel
	// may straddle two shards — because the span list must be a pure
	// function of the zone verdicts for shard-count invariance.
	runLo := int64(-1)
	flush := func(hi int64) {
		if runLo < 0 {
			return
		}
		for _, sp := range PartitionMorsels(hi-runLo, morselSize) {
			se.spans = append(se.spans, Span{Lo: runLo + sp.Lo, Hi: runLo + sp.Hi})
		}
		runLo = -1
	}
	for zi, z := range zones {
		if cause[zi] != "" {
			flush(z.Lo)
			continue
		}
		if runLo < 0 {
			runLo = z.Lo
		}
	}
	if len(zones) > 0 {
		flush(zones[len(zones)-1].Hi)
	}

	// Shard attribution: each morsel belongs to the shard containing its
	// first row (morsels never cross a run boundary, and shards are
	// contiguous, so this is unambiguous).
	se.shardOf = make([]int, len(se.spans))
	si := 0
	for m, sp := range se.spans {
		for si+1 < len(shardList) && sp.Lo >= shardList[si].Hi {
			si++
		}
		se.shardOf[m] = shardList[si].ID
	}

	// Per-shard journals + skip events.
	for _, sh := range shardList {
		st := ShardState{
			Pipeline: info.Index, Alias: scan.Alias, Shard: sh.ID,
			Lo: sh.Lo, Hi: sh.Hi, Rows: sh.Rows(), Pruned: len(sh.Zones) > 0,
		}
		for _, z := range sh.Zones {
			zd := ZoneDecision{Zone: z.Index, Lo: z.Lo, Hi: z.Hi, Pruned: cause[z.Index] != "", Cause: cause[z.Index]}
			st.Zones = append(st.Zones, zd)
			if zd.Pruned {
				se.skips = append(se.skips, core.SkipEvent{
					Pipeline: info.Index, Alias: scan.Alias, Shard: sh.ID,
					Zone: z.Index, Lo: z.Lo, Hi: z.Hi, Rows: z.Rows(), Cause: zd.Cause,
				})
			} else {
				st.Scanned += z.Rows()
				st.Pruned = false
			}
		}
		for m := range se.spans {
			if se.shardOf[m] == sh.ID {
				st.Morsels++
			}
		}
		se.states = append(se.states, st)
	}
	return se, nil
}

// findScan locates the plan's scan node for a pipeline's driving alias.
func findScan(root *plan.Output, alias string) *plan.Scan {
	var out *plan.Scan
	plan.Walk(root, func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok && s.Alias == alias {
			out = s
		}
	})
	return out
}

// pipelineDriver descends a node's probe chain to the scan that drives
// its pipeline, or nil when the pipeline is arena-driven (below a
// pipeline breaker).
func pipelineDriver(n plan.Node) *plan.Scan {
	switch x := n.(type) {
	case *plan.Scan:
		return x
	case *plan.Join:
		return pipelineDriver(x.Probe)
	}
	return nil
}

// probeColToTable maps a position in n.Out() — n on the probe chain down
// to scan — to a table column position of scan, or -1 when the position
// resolves to something else (a build payload column, an expression).
func probeColToTable(n plan.Node, pos int, scan *plan.Scan) int {
	switch x := n.(type) {
	case *plan.Scan:
		if x == scan && pos >= 0 && pos < len(x.Cols) {
			return x.Cols[pos]
		}
	case *plan.Join:
		if np := len(x.Probe.Out()); pos < np {
			return probeColToTable(x.Probe, pos, scan)
		}
	}
	return -1
}

// collectSemiProbes gathers the joins (and group-joins) whose probe side
// is driven by scan and whose probe key is a bare column of the scanned
// table. Their builds finished before this pipeline starts (pipelines run
// in topological order), so the build-side key bounds and bloom filter in
// the canonical heap are final — the "shipped" semi-join state.
func collectSemiProbes(cq *Compiled, coord *vm.CPU, scan *plan.Scan) []semiProbe {
	var out []semiProbe
	add := func(n plan.Node, probe plan.Node, probeKey plan.PExpr, sinkKind pipeline.SinkKind) {
		if pipelineDriver(probe) != scan {
			return
		}
		pc, ok := probeKey.(*plan.PCol)
		if !ok {
			return
		}
		col := probeColToTable(probe, pc.Pos, scan)
		if col < 0 {
			return
		}
		ht := cq.Layout.HT[n]
		if ht == nil {
			return
		}
		keyOff, ok := buildKeyOff(cq, ht, sinkKind)
		if !ok {
			return
		}
		out = append(out, semiProbe{col: col, ht: ht, bounds: buildKeyBounds(coord, ht, keyOff)})
	}
	plan.Walk(cq.Plan, func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Join:
			add(x, x.Probe, x.ProbeKey, pipeline.SinkJoinBuild)
		case *plan.GroupJoin:
			add(x, x.Probe, x.ProbeKey, pipeline.SinkGJBuild)
		}
	})
	return out
}

// buildKeyOff finds the key offset of a hash table's build sink.
func buildKeyOff(cq *Compiled, ht *pipeline.HTLayout, kind pipeline.SinkKind) (int64, bool) {
	for i := range cq.Pipe.Pipelines {
		s := &cq.Pipe.Pipelines[i].Sink
		if s.Kind == kind && s.HT != nil && s.HT.Desc == ht.Desc {
			return s.KeyOff, true
		}
	}
	return 0, false
}

// buildKeyBounds folds the min/max of every key the build inserted,
// reading the finished arena off the canonical heap. An empty build
// returns an empty bound — every probe zone is then prunable.
func buildKeyBounds(coord *vm.CPU, ht *pipeline.HTLayout, keyOff int64) catalog.Bound {
	cursor := coord.ReadI64(ht.Desc + codegen.HTDescCursor)
	b := catalog.Bound{Min: 1, Max: 0} // empty
	for e := ht.Arena; e < cursor; e += ht.EntrySize {
		k := codegen.HeapI64(coord.Heap, e+keyOff)
		if b.Empty() {
			b = catalog.Bound{Min: k, Max: k}
			continue
		}
		if k < b.Min {
			b.Min = k
		}
		if k > b.Max {
			b.Max = k
		}
	}
	return b
}

// --- Interval evaluation of scan filters over zone bounds ---

// ival is a conservative value interval: every row's value lies in
// [lo, hi]. ok=false means "unknown" (any value possible).
type ival struct {
	lo, hi int64
	ok     bool
}

func point(v int64) ival { return ival{lo: v, hi: v, ok: true} }
func unknown() ival      { return ival{ok: false} }
func (v ival) canBeTrue() bool {
	// Used when a value is consumed as a boolean: false only when the
	// interval is exactly {0}.
	return !v.ok || v.lo != 0 || v.hi != 0
}

// mayMatch reports whether the predicate could evaluate to true for some
// row whose column values lie within the zone bounds. It is conservative:
// false means *no* row of the zone can pass the filter (the soundness the
// pruning property test exercises); true means "don't prune".
func mayMatch(e plan.PExpr, bounds []catalog.Bound, params []int64) bool {
	switch x := e.(type) {
	case *plan.PBin:
		switch x.Op {
		case plan.OpAnd:
			// A row satisfying the conjunction satisfies both sides, so if
			// either side is impossible over the zone, so is the whole.
			return mayMatch(x.L, bounds, params) && mayMatch(x.R, bounds, params)
		case plan.OpOr:
			return mayMatch(x.L, bounds, params) || mayMatch(x.R, bounds, params)
		}
		if x.Op.IsComparison() {
			l := evalIval(x.L, bounds, params)
			r := evalIval(x.R, bounds, params)
			if !l.ok || !r.ok {
				return true
			}
			switch x.Op {
			case plan.OpEq:
				return l.lo <= r.hi && r.lo <= l.hi
			case plan.OpNe:
				return !(l.lo == l.hi && r.lo == r.hi && l.lo == r.lo)
			case plan.OpLt:
				return l.lo < r.hi
			case plan.OpLe:
				return l.lo <= r.hi
			case plan.OpGt:
				return l.hi > r.lo
			case plan.OpGe:
				return l.hi >= r.lo
			}
		}
	}
	return evalIval(e, bounds, params).canBeTrue()
}

// evalIval computes a conservative interval for an arithmetic expression
// over the zone's column bounds. Overflow, division, and anything not
// understood degrade to unknown — never to a wrong bound.
func evalIval(e plan.PExpr, bounds []catalog.Bound, params []int64) ival {
	switch x := e.(type) {
	case *plan.PConst:
		return point(x.Val)
	case *plan.PParam:
		if x.Idx >= 0 && x.Idx < len(params) {
			return point(params[x.Idx])
		}
		return unknown()
	case *plan.PCol:
		if x.Pos >= 0 && x.Pos < len(bounds) && !bounds[x.Pos].Empty() {
			return ival{lo: bounds[x.Pos].Min, hi: bounds[x.Pos].Max, ok: true}
		}
		return unknown()
	case *plan.PBin:
		if x.Op.IsComparison() || x.Op == plan.OpAnd || x.Op == plan.OpOr {
			// Boolean-valued subexpression: 0 or 1; be exact only when the
			// comparison is decided, else [0,1].
			if !mayMatch(x, bounds, params) {
				return point(0)
			}
			return ival{lo: 0, hi: 1, ok: true}
		}
		l := evalIval(x.L, bounds, params)
		r := evalIval(x.R, bounds, params)
		if !l.ok || !r.ok {
			return unknown()
		}
		switch x.Op {
		case plan.OpAdd:
			lo, ok1 := addOv(l.lo, r.lo)
			hi, ok2 := addOv(l.hi, r.hi)
			if ok1 && ok2 {
				return ival{lo: lo, hi: hi, ok: true}
			}
		case plan.OpSub:
			lo, ok1 := subOv(l.lo, r.hi)
			hi, ok2 := subOv(l.hi, r.lo)
			if ok1 && ok2 {
				return ival{lo: lo, hi: hi, ok: true}
			}
		case plan.OpMul:
			vals := [4]int64{}
			oks := true
			for i, pair := range [4][2]int64{{l.lo, r.lo}, {l.lo, r.hi}, {l.hi, r.lo}, {l.hi, r.hi}} {
				v, ok := mulOv(pair[0], pair[1])
				if !ok {
					oks = false
					break
				}
				vals[i] = v
			}
			if oks {
				lo, hi := vals[0], vals[0]
				for _, v := range vals[1:] {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				return ival{lo: lo, hi: hi, ok: true}
			}
		}
	}
	return unknown()
}

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func subOv(a, b int64) (int64, bool) {
	s := a - b
	if (b < 0 && s < a) || (b > 0 && s > a) {
		return 0, false
	}
	return s, true
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}
