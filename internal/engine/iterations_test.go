package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/vm"
)

// TestIterativeDataflowDetection runs the same query three times in one
// profiled session and checks that (a) results stay correct, (b) the TSC
// runs continuously, and (c) DetectIterations splits the operator's
// activity into exactly three intervals via sample timestamps (§4.2.6).
func TestIterativeDataflowDetection(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	// fig9: the group-by is idle during each iteration's build pipeline
	// (orders scan + filter + build), giving a clear between-iteration
	// pause in its activity.
	w := queries.Fig9()
	cq, err := e.CompileQuery(w.Query)
	if err != nil {
		t.Fatal(err)
	}

	single, err := e.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunIterations(cq, 3, &pmu.Config{
		Event: vm.EvCycles, Period: 499, Format: pmu.FormatIPTimeRegs,
	})
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, res.Rows, single.Rows, false)

	// Roughly 3× the single-run work.
	if res.Stats.Cycles < 2*single.Stats.Cycles {
		t.Fatalf("iterated cycles %d not ≈ 3× single %d", res.Stats.Cycles, single.Stats.Cycles)
	}

	// The lineitem scan is active contiguously through each iteration's
	// probe pipeline and idle otherwise — a clean per-iteration burst.
	// (The group-by would show *two* bursts per iteration: aggregation
	// during the probe phase and the group scan at the end.)
	var gbID core.ComponentID
	for _, op := range res.Profile.Registry.ByLevel(core.LevelOperator) {
		if op.Name == "tablescan lineitem" {
			gbID = op.ID
		}
	}
	if gbID == core.NoComponent {
		t.Fatal("lineitem scan operator missing")
	}
	// The analyst picks the split threshold from the timestamps; the
	// test scans a geometric grid (10% steps — periodic sampling can
	// leave resonance gaps inside a burst that narrow the window where
	// exactly three intervals survive) and requires that some threshold
	// recovers exactly the three iterations.
	found := false
	for gap := uint64(1000); gap < res.Stats.TotalCycles(); gap += 1 + gap/10 {
		iters := res.Profile.DetectIterations(gbID, gap)
		if len(iters) == 3 {
			found = true
			for i := 1; i < len(iters); i++ {
				if iters[i].From <= iters[i-1].To {
					t.Fatalf("iterations overlap: %+v", iters)
				}
			}
			break
		}
	}
	if !found {
		t.Fatal("no gap threshold recovers the 3 iterations")
	}
	// And the extremes behave: a huge gap merges everything into one.
	if n := len(res.Profile.DetectIterations(gbID, res.Stats.TotalCycles()*2)); n != 1 {
		t.Fatalf("huge gap produced %d intervals", n)
	}
}

// TestRunIterationsCountersReset: tuple counters must reflect the last
// iteration only (they are re-staged between passes).
func TestRunIterationsCountersReset(t *testing.T) {
	cat := testCatalog(t)
	opts := DefaultOptions()
	opts.TupleCounters = true
	e := New(cat, opts)
	cq, err := e.CompileQuery(queries.Fig9().Query)
	if err != nil {
		t.Fatal(err)
	}
	one, err := e.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	three, err := e.RunIterations(cq, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range one.TupleCounts {
		if three.TupleCounts[id] != n {
			t.Fatalf("counter %d = %d after 3 iterations, want %d", id, three.TupleCounts[id], n)
		}
	}
}
