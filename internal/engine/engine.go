// Package engine is the top of the stack: it plans a query, lays out the
// simulated machine's memory, drives the three lowering steps (pipeline →
// IR optimization → native code), stages table data into the VM heap, runs
// the program — optionally under PMU sampling — and post-processes samples
// into a core.Profile.
//
// It corresponds to Umbra's query engine plus the experiment driver in the
// paper's Fig. 4: compilation populates the Tagging Dictionary, execution
// produces samples, and the profiler maps them onto any abstraction level.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/iropt"
	"repro/internal/pgo"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/sqlparse"
	"repro/internal/verify"
	"repro/internal/verify/absint"
	"repro/internal/verify/tv"
	"repro/internal/vm"
)

// Options configures compilation.
type Options struct {
	// RegisterTagging reserves the tag register and wraps shared-code
	// calls (§4.2.5); required for register-based disambiguation.
	RegisterTagging bool
	// TagEverything enables the §6.3 validation mode.
	TagEverything bool
	// EagerColumnLoads attributes column loads to scans (Fig. 12 mode).
	EagerColumnLoads bool
	// TupleCounters instruments every task with EXPLAIN ANALYZE row
	// counters, read back into Result.TupleCounts.
	TupleCounters bool
	// Optimize selects IR optimization passes.
	Optimize iropt.Options
	// FuseCmpBranch enables backend compare-and-branch fusion.
	FuseCmpBranch bool
	// MaxInstructions bounds a run (0 = default of 4e9).
	MaxInstructions uint64
	// Workers selects morsel-driven parallel execution: values >= 1 make
	// Run dispatch every pipeline over fixed-size morsels on that many
	// simulated worker CPUs (see RunParallel); 0 keeps the legacy
	// single-CPU path. Workers=1 is the morsel scheduler on one core —
	// the baseline that parallel runs are sample-exact against.
	Workers int
	// MorselRows is the morsel size in tuples (table scans) or entries
	// (hash-table scans); 0 selects DefaultMorselRows. The partition
	// depends only on the input size and this value — never on Workers —
	// which is what makes parallel results and count-event sample
	// streams identical for any worker count.
	MorselRows int
	// Partitions radix-partitions every materializing sink's merge into
	// this many directory-disjoint partition-merge tasks, executed by
	// generated merge kernels fanned out across the workers (DESIGN.md
	// §11). Rounded down to a power of two and clamped to each table's
	// directory size. 0 keeps the legacy host-side coordinator merge.
	// Like MorselRows, the partition count never depends on Workers, so
	// results and count-event sample streams stay worker-count invariant.
	Partitions int
	// BloomFilters gives every join build a small bloom filter (two probe
	// bits per key from the existing crc32 pair); the generated probe
	// code tests it before touching the directory, cutting cache misses
	// on low-selectivity joins.
	BloomFilters bool
	// Shards >= 1 executes every table scan through the cross-shard
	// coordinator: the table's zone map is grouped into that many
	// contiguous shards with per-shard column slices, bounds, and row
	// counts, and pruned/surviving zones are journaled per shard
	// (DESIGN.md §13). Zone granularity is a function of the table alone,
	// so results, count-event sample streams, and the merged profile are
	// identical for every shard count — only the per-shard attribution
	// lens changes. 0 keeps the unsharded path.
	Shards int
	// ShardPruning skips zones (and thereby whole shards) that provably
	// contribute no rows: zone bounds that cannot satisfy the scan filter,
	// and probe-side zones whose key range misses every build-side join
	// key (bounds or bloom-filter semi-join shipping). Every pruned zone
	// becomes an explicit zero-cost skip event in the merged profile.
	// Requires Shards >= 1.
	ShardPruning bool
	// VerifyArtifacts runs the cross-level verification suite
	// (internal/verify) over every compilation artifact: after pipeline
	// construction, after each optimizer pass, and after native emit.
	// Compilation fails on the first invariant violation. Off by default
	// (it re-walks the module per pass); tests and tprofvet enable it.
	VerifyArtifacts bool
}

// DefaultOptions is the standard configuration: Register Tagging on, all
// optimizations enabled.
func DefaultOptions() Options {
	return Options{
		RegisterTagging: true,
		Optimize:        iropt.AllOptions(),
		FuseCmpBranch:   true,
		Partitions:      8,
		BloomFilters:    true,
	}
}

// Compiler is the compile half of the engine: a pure function from
// queries to Compiled artifacts. It holds no mutable state — the same
// (plan, Options, catalog contents) always produces the same artifact,
// bit for bit — which is what makes artifacts cacheable (internal/qcache)
// and shareable across sessions.
type Compiler struct {
	Cat  *catalog.Catalog
	Opts Options
}

// NewCompiler creates a compiler.
func NewCompiler(cat *catalog.Catalog, opts Options) *Compiler {
	return &Compiler{Cat: cat, Opts: opts}
}

// Executor is the run half of the engine. It owns no per-query state:
// every run builds a fresh VM (and PMU buffers) around the immutable
// artifact, and all per-session inputs travel in a RunState — so N
// sessions may execute one shared Compiled concurrently.
type Executor struct {
	Opts Options
}

// NewExecutor creates an executor.
func NewExecutor(opts Options) *Executor { return &Executor{Opts: opts} }

// RunState is the per-session mutable state of one execution: everything
// a run needs beyond the shared artifact — the encoded bound-parameter
// values and the storage snapshot the run binds against. VM heap,
// counters and sample buffers are created per run and never shared.
type RunState struct {
	// Params are the encoded bound-parameter values, staged into the
	// artifact's parameter region before each run. Must hold exactly
	// len(cq.Plan.Params) values.
	Params []int64
	// Snap pins the storage epoch this execution sees: column prefixes and
	// row counts are staged from it exactly like params, so concurrent
	// appends land invisibly in the tail. nil binds the catalog's current
	// epoch at execute time.
	Snap *catalog.Snapshot
}

// Engine is the classic single-tenant façade over Compiler + Executor:
// one catalog, one options set, no cache, no parameters. Callers may
// mutate Opts between calls; every call reads the fields afresh.
type Engine struct {
	Cat  *catalog.Catalog
	Opts Options
}

// New creates an engine.
func New(cat *catalog.Catalog, opts Options) *Engine {
	return &Engine{Cat: cat, Opts: opts}
}

func (e *Engine) compiler() *Compiler { return &Compiler{Cat: e.Cat, Opts: e.Opts} }
func (e *Engine) executor() *Executor { return &Executor{Opts: e.Opts} }

// slotWrite stages one 64-bit value into the heap before execution.
type slotWrite struct {
	addr int64
	val  int64
}

// Compiled is a fully compiled query, ready to run (repeatedly).
type Compiled struct {
	Plan     *plan.Output
	Pipe     *pipeline.Compiled
	Code     *codegen.Result
	Layout   *pipeline.Layout
	OptStats iropt.Stats

	// Mem is the heap layout and staged-cell model handed to the abstract
	// interpreter (internal/verify/absint); built on every compile so
	// tooling (tprofvet) can verify finished artifacts.
	Mem *verify.MemModel
	// TVSteps counts the optimizer pass applications the translation
	// validator (internal/verify/tv) checked; zero unless VerifyArtifacts.
	TVSteps int

	// Shard is the per-statement sharded-execution decision the service's
	// cost model attaches at compile time (cost.DecideShards); nil
	// artifacts execute with the executor's static Options knobs.
	Shard *ShardDecision

	heapSize   int
	writes     []slotWrite
	resultBase int64
	resultEnd  int64
	rowBytes   int64

	// Epoch-resolved data binding (DESIGN.md §15). The artifact bakes only
	// schema-derived facts: region addresses sized by each table's frozen
	// row capacity, plus which (table, column) fills each region and which
	// state slot holds each scan's row count. The data itself — column
	// prefixes and row counts — is staged per execution from a
	// catalog.Snapshot, exactly like bound parameters, so one artifact
	// serves every epoch its capacities admit without recompiling.
	cat       *catalog.Catalog
	binds     []colBind
	rowsBinds []rowsBind
	tables    []tableBind
}

// colBind maps one heap column region to its source (table, column).
type colBind struct {
	addr  int64  // region base address
	table string // source table name
	col   int    // column position in the table
	cap   int64  // region capacity in rows
}

// rowsBind maps one scan's row-count state slot to its source table.
type rowsBind struct {
	addr  int64  // state-slot address
	table string // source table name
}

// tableBind records one scan's compile-time view of its table: the frozen
// capacity the layout reserved and the row count the planner saw (the
// baseline for staleness checks).
type tableBind struct {
	alias   string
	table   string
	cap     int64
	planned int64
}

// PlannedRows returns the per-alias row counts the planner saw at compile
// time — the baseline Session.Adapt's staleness trigger drifts against.
func (cq *Compiled) PlannedRows() map[string]int64 {
	out := make(map[string]int64, len(cq.tables))
	for _, tb := range cq.tables {
		out[tb.alias] = tb.planned
	}
	return out
}

// SnapshotCapacityError reports a snapshot whose visible rows exceed the
// capacity an artifact reserved — the one condition under which an epoch
// cannot bind to an existing artifact and a recompile (via the catalog
// version bump the capacity-growing append performed) is required.
type SnapshotCapacityError struct {
	Table    string
	Rows     int64
	Capacity int64
}

func (e *SnapshotCapacityError) Error() string {
	return fmt.Sprintf("engine: snapshot of %s has %d rows, artifact reserved capacity %d (stale artifact; recompile under current catalog version)",
		e.Table, e.Rows, e.Capacity)
}

// snapshotFor resolves the storage snapshot one run binds against: the
// session-pinned snapshot when the run state carries one, else the
// catalog's current epoch captured at execute time.
func (cq *Compiled) snapshotFor(rs *RunState) *catalog.Snapshot {
	if rs != nil && rs.Snap != nil {
		return rs.Snap
	}
	return cq.cat.Snapshot()
}

// stageSnapshot writes the snapshot's column prefixes and row counts into
// the artifact's data regions and row-count slots — the epoch-resolution
// step of every execution. It fails with SnapshotCapacityError if any
// view outgrew the capacity the layout reserved.
func stageSnapshot(cq *Compiled, cpu *vm.CPU, snap *catalog.Snapshot) error {
	for _, tb := range cq.tables {
		v := snap.View(tb.table)
		if v == nil {
			return fmt.Errorf("engine: snapshot has no view of table %q", tb.table)
		}
		if int64(v.Rows) > tb.cap {
			return &SnapshotCapacityError{Table: tb.table, Rows: int64(v.Rows), Capacity: tb.cap}
		}
	}
	for _, b := range cq.binds {
		data := snap.View(b.table).Col(b.col)
		for i, v := range data {
			cpu.WriteI64(b.addr+int64(i)*8, v)
		}
	}
	for _, rb := range cq.rowsBinds {
		cpu.WriteI64(rb.addr, int64(snap.View(rb.table).Rows))
	}
	return nil
}

// Memory layout constants (DESIGN.md: fixed low-memory regions, then
// state, descriptors, table data, hash areas, result buffer).
const (
	stagingAddr = 256
	spillBase   = 512
	spillCap    = 64 << 10
	layoutStart = spillBase + spillCap
)

// counterSlots bounds the tuple-counter region: one slot per component
// ID, far above any real query's component count.
const counterSlots = 1024

// DataFloor is the lowest heap address holding query data; everything
// below it is call staging and spill slots (the stack analogue). Memory
// profiles filter below this address.
const DataFloor int64 = layoutStart

func align(x int64, a int64) int64 { return (x + a - 1) &^ (a - 1) }

// pow2Floor rounds x down to a power of two (0 for x <= 0).
func pow2Floor(x int64) int64 {
	if x <= 0 {
		return 0
	}
	p := int64(1)
	for p*2 <= x {
		p *= 2
	}
	return p
}

// log2 of a power of two.
func log2(x int64) int64 {
	var n int64
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// CompileSQL parses, plans and compiles a SQL statement.
func (e *Engine) CompileSQL(sql string) (*Compiled, error) { return e.compiler().CompileSQL(sql) }

// CompileQuery plans and compiles a query.
func (e *Engine) CompileQuery(q *plan.Query) (*Compiled, error) {
	return e.compiler().CompileQuery(q)
}

// CompilePlan compiles an already-built plan.
func (e *Engine) CompilePlan(pl *plan.Output) (*Compiled, error) {
	return e.compiler().CompilePlan(pl)
}

// CompileSQL parses, plans and compiles a SQL statement.
func (c *Compiler) CompileSQL(sql string) (*Compiled, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return c.CompileQuery(q)
}

// CompileQuery plans and compiles a query.
func (c *Compiler) CompileQuery(q *plan.Query) (*Compiled, error) {
	pl, err := plan.Plan(c.Cat, q)
	if err != nil {
		return nil, err
	}
	return c.CompilePlan(pl)
}

// CompilePlan compiles an already-built plan.
func (c *Compiler) CompilePlan(pl *plan.Output) (*Compiled, error) {
	return c.compilePlan(pl, nil)
}

// CompilePlanGuided compiles a plan under profile guidance: a non-nil
// hot enables the PGO optimizer passes and backend transformations. With
// nil hot it is identical to CompilePlan.
func (c *Compiler) CompilePlanGuided(pl *plan.Output, hot *pgo.Hotness) (*Compiled, error) {
	return c.compilePlan(pl, hot)
}

// compilePlan compiles a plan, optionally profile-guided: a non-nil hot
// enables the PGO optimizer passes and backend transformations. The
// unguided compilation path is deterministic — recompiling the same plan
// reproduces every IR instruction ID and task component ID — which is
// what lets a profile keyed by IR ID steer a fresh compilation.
func (c *Compiler) compilePlan(pl *plan.Output, hot *pgo.Hotness) (*Compiled, error) {
	cq := &Compiled{Plan: pl, cat: c.Cat}
	lay, err := c.buildLayout(pl, cq)
	if err != nil {
		return nil, err
	}
	cq.Layout = lay

	pc, err := pipeline.Compile(pl, lay, pipeline.Options{
		RegisterTagging:  c.Opts.RegisterTagging,
		TagEverything:    c.Opts.TagEverything,
		EagerColumnLoads: c.Opts.EagerColumnLoads,
		TupleCounters:    c.Opts.TupleCounters,
	})
	if err != nil {
		return nil, err
	}
	cq.Pipe = pc
	cq.Mem = buildMemModel(cq, lay, pc)

	// VerifyArtifacts: run the invariant suite on every lowering artifact,
	// so a violation names the exact phase that introduced it.
	var suite *verify.Suite
	check := func(phase string, code *codegen.Result) error {
		if suite == nil {
			return nil
		}
		ds := suite.Run(&verify.Artifact{
			Phase:           phase,
			Module:          pc.Module,
			Dict:            pc.Dict,
			Code:            code,
			RegisterTagging: c.Opts.RegisterTagging,
			PGO:             hot != nil,
			Pipelines:       pc.Pipelines,
			Layout:          lay,
			Mem:             cq.Mem,
		})
		return verify.AsError(ds)
	}
	opt := c.Opts.Optimize
	var tval *tv.Validator
	if c.Opts.VerifyArtifacts {
		suite = verify.NewSuite(append(verify.ArtifactSuite().Checkers, absint.Checker{})...)
		if err := check("pipeline", nil); err != nil {
			return nil, err
		}
		// Translation validation: prove each optimizer pass application
		// preserved observational equivalence, not just well-formedness.
		tval = tv.NewValidator(pc.Module)
		opt.AfterPass = func(pass string) error {
			if err := verify.AsError(tval.Step(pc.Module, pass)); err != nil {
				return err
			}
			return check("iropt/"+pass, nil)
		}
	}

	if hot != nil {
		opt.LICM, opt.StrengthReduce, opt.Hot = true, true, hot
	}
	st, err := iropt.Optimize(pc.Module, pc.Dict, opt)
	if err != nil {
		return nil, err
	}
	cq.OptStats = st
	if tval != nil {
		cq.TVSteps = tval.Steps()
	}
	if err := pc.Module.Verify(); err != nil {
		return nil, fmt.Errorf("engine: IR invalid after optimization: %w", err)
	}

	ccfg := codegen.DefaultConfig(stagingAddr, spillBase, spillCap)
	ccfg.RegisterTagging = c.Opts.RegisterTagging
	ccfg.FuseCmpBranch = c.Opts.FuseCmpBranch
	if hot != nil {
		ccfg.Hot = hot
	}
	code, err := codegen.Compile(pc.Module, ccfg)
	if err != nil {
		return nil, err
	}
	cq.Code = code
	if err := check("emit", code); err != nil {
		return nil, err
	}
	return cq, nil
}

// buildLayout assigns heap addresses for state slots, table columns, hash
// tables and the result buffer, and records the staging writes.
func (c *Compiler) buildLayout(pl *plan.Output, cq *Compiled) (*pipeline.Layout, error) {
	lay := &pipeline.Layout{
		ColSlots:  map[pipeline.ColKey]int{},
		RowsSlots: map[string]int{},
		HT:        map[plan.Node]*pipeline.HTLayout{},
	}

	// Gather scans and materializing nodes.
	var scans []*plan.Scan
	var mats []plan.Node
	plan.Walk(pl, func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Scan:
			scans = append(scans, x)
		default:
			if pipeline.Materializes(n) {
				mats = append(mats, n)
			}
		}
	})

	// State slots: one per scanned column plus one row count per scan.
	slot := 0
	for _, s := range scans {
		for _, ci := range s.Cols {
			lay.ColSlots[pipeline.ColKey{Alias: s.Alias, Col: ci}] = slot
			slot++
		}
		lay.RowsSlots[s.Alias] = slot
		slot++
	}

	cur := int64(layoutStart)
	lay.StateBase = cur
	cur = align(cur+int64(slot)*8, 64)

	// Hash-table descriptors and the result descriptor.
	descBase := cur
	for range mats {
		cur += codegen.HTDescSize
	}
	lay.ResultDesc = cur
	cur = align(cur+codegen.AllocDescSize, 64)

	// Morsel-bound slots: one [start, end) pair per pipeline.
	lay.MorselBase = cur
	cur = align(cur+int64(pipeline.PipeCount(pl))*pipeline.MorselSlotBytes, 64)

	// Bound-parameter slots: one per $N, staged by the executor per run.
	if np := len(pl.Params); np > 0 {
		lay.ParamBase = cur
		cur = align(cur+int64(np)*8, 64)
	}

	if c.Opts.TupleCounters {
		lay.CounterBase = cur
		cur = align(cur+counterSlots*8, 64)
	}

	// Table column regions, sized by the frozen row *capacity* so the same
	// layout serves every epoch within capacity; the data itself is staged
	// per run (stageSnapshot). Row counts are epoch-resolved too: their
	// state slots are filled from the run's snapshot, not baked here.
	for _, s := range scans {
		capRows := int64(s.Table.RowCap())
		cq.tables = append(cq.tables, tableBind{
			alias: s.Alias, table: s.Table.Name, cap: capRows, planned: int64(s.Table.Rows()),
		})
		for _, ci := range s.Cols {
			cq.binds = append(cq.binds, colBind{addr: cur, table: s.Table.Name, col: ci, cap: capRows})
			cq.writes = append(cq.writes, slotWrite{
				addr: lay.StateBase + int64(lay.ColSlots[pipeline.ColKey{Alias: s.Alias, Col: ci}])*8,
				val:  cur,
			})
			cur = align(cur+capRows*8, 64)
		}
		cq.rowsBinds = append(cq.rowsBinds, rowsBind{
			addr:  lay.StateBase + int64(lay.RowsSlots[s.Alias])*8,
			table: s.Table.Name,
		})
	}

	// Hash tables: directory + arena per materializing node, plus the
	// partitioned-merge staging regions and (joins) the bloom filter.
	for i, n := range mats {
		entries := pipeline.BuildBound(n)
		dirSlots := pipeline.DirSlots(entries)
		entrySize := pipeline.EntrySize(n)
		desc := descBase + int64(i)*codegen.HTDescSize

		dir := cur
		cur = align(cur+dirSlots*8, 64)
		arena := cur
		arenaEnd := arena + int64(entries+16)*entrySize
		cur = align(arenaEnd, 64)

		ht := &pipeline.HTLayout{
			Desc: desc, Dir: dir, DirSlots: dirSlots,
			Arena: arena, ArenaEnd: arenaEnd, EntrySize: entrySize,
		}
		if p := pow2Floor(int64(c.Opts.Partitions)); p > 0 {
			if p > dirSlots {
				p = dirSlots
			}
			ht.Partitions = p
			ht.SlotShift = log2(dirSlots / p)
			arenaCap := arenaEnd - arena
			vecBytes := (arenaCap / entrySize) * 8
			ht.ScatterOut = cur
			cur = align(cur+arenaCap, 64)
			ht.MergeCnt = cur
			cur = align(cur+p*8, 64)
			ht.MergeCur = cur
			cur = align(cur+p*8, 64)
			ht.MergeSrc = cur
			cur = align(cur+arenaCap, 64)
			ht.MergeVec = cur
			cur = align(cur+vecBytes, 64)
			if _, ok := n.(*plan.GroupBy); ok {
				ht.MergeOut = cur
				cur = align(cur+arenaCap, 64)
				ht.MergeSeq = cur
				cur = align(cur+vecBytes, 64)
			}
			ht.MergeParam = cur
			cur = align(cur+pipeline.MergeParamSlots*8, 64)
		}
		if _, ok := n.(*plan.Join); ok && c.Opts.BloomFilters {
			// DirSlots is a power of two, so BloomBits = 8·DirSlots is too;
			// the filter occupies DirSlots bytes.
			ht.BloomBits = dirSlots * 8
			ht.BloomBase = cur
			cur = align(cur+dirSlots, 64)
		}
		lay.HT[n] = ht
		cq.writes = append(cq.writes,
			slotWrite{desc + codegen.HTDescDir, dir},
			slotWrite{desc + codegen.HTDescMask, dirSlots - 1},
			slotWrite{desc + codegen.HTDescCursor, arena},
			slotWrite{desc + codegen.HTDescEnd, arenaEnd},
		)
	}

	// Result buffer.
	cq.rowBytes = int64(len(pl.Exprs)) * 8
	resRows := int64(pl.BoundRows() + 16)
	cq.resultBase = cur
	cq.resultEnd = cur + resRows*cq.rowBytes
	cur = align(cq.resultEnd, 64)
	cq.writes = append(cq.writes,
		slotWrite{lay.ResultDesc + codegen.AllocDescCursor, cq.resultBase},
		slotWrite{lay.ResultDesc + codegen.AllocDescEnd, cq.resultEnd},
	)

	cq.heapSize = int(cur + (1 << 20))
	return lay, nil
}

// Result is one query execution's outcome.
type Result struct {
	Rows [][]int64
	Cols []plan.ColMeta

	Stats vm.Stats
	CPU   *vm.CPU

	// Epoch is the storage epoch the run bound against: the pinned
	// session snapshot's, or the catalog's current epoch at execute time.
	Epoch uint64

	// Workers is the worker count of a morsel-driven parallel run
	// (0 for the single-CPU path).
	Workers int
	// WallCycles is the simulated wall clock: for a parallel run, the
	// serial coordinator work plus, per pipeline, the slowest worker's
	// cycles; for a single-CPU run, Stats.TotalCycles(). Speedup
	// comparisons between worker counts use this number.
	WallCycles uint64
	// MergeCycles is the simulated merge-phase makespan summed over all
	// pipelines with partitioned sinks: per pipeline, the slowest
	// worker's merge-kernel cycles in each round (partition merge, plus
	// the placement round for group-by sinks). Zero for serial runs and
	// for the legacy host-side merge, which runs outside the simulated
	// machine and is therefore unmeasured — the blind spot the
	// partitioned merge exists to remove.
	MergeCycles uint64

	// Profiling outputs (nil without sampling).
	PMU     *pmu.PMU
	Samples []core.Sample
	Profile *core.Profile

	// WorkerSamples holds each core's private sample buffer before the
	// merge (parallel runs with sampling; index 0 is the coordinator).
	WorkerSamples [][]core.Sample

	// Shards is the effective shard count of a cross-shard run (0 for
	// unsharded execution).
	Shards int
	// ShardStates are the per-shard run-state journals of every scan
	// pipeline (sharded runs only): zone verdicts, scanned rows, morsel
	// counts. `tprofvet check -shard` replays them against the table's
	// zone map and the profile's skip events.
	ShardStates []ShardState
	// Skips are the zero-cost skip events of pruned zones (also attached
	// to Profile.Skips when sampling is on).
	Skips []core.SkipEvent

	// TupleCounts holds EXPLAIN ANALYZE row counters per task component
	// (only with Options.TupleCounters).
	TupleCounts map[core.ComponentID]int64
	// PlanRows is the true-cardinality collector's view of TupleCounts:
	// observed output rows per plan node, resolved through the Tagging
	// Dictionary's task → operator lineage (only with
	// Options.TupleCounters; filled by the serial and parallel
	// collectors alike).
	PlanRows map[plan.Node]int64
}

// Run executes a compiled query. cfg selects PMU sampling; pass nil to run
// unprofiled (the overhead experiments' baseline). With Options.Workers >= 1
// the run is morsel-driven parallel (RunParallel).
func (e *Engine) Run(cq *Compiled, cfg *pmu.Config) (*Result, error) {
	return e.executor().Run(cq, nil, cfg)
}

// RunIterations executes a compiled query n times within one profiled
// session (see Executor.RunIterations).
func (e *Engine) RunIterations(cq *Compiled, n int, cfg *pmu.Config) (*Result, error) {
	return e.executor().RunIterations(cq, nil, n, cfg)
}

// RunParallel executes a compiled query with morsel-driven parallelism
// (see Executor.RunParallel).
func (e *Engine) RunParallel(cq *Compiled, workers int, cfg *pmu.Config) (*Result, error) {
	return e.executor().RunParallel(cq, nil, workers, cfg)
}

// Run executes a compiled query with the given per-session state (nil for
// parameterless plans). With Options.Workers >= 1 the run is morsel-driven
// parallel.
func (x *Executor) Run(cq *Compiled, rs *RunState, cfg *pmu.Config) (*Result, error) {
	if shards, _ := x.shardKnobs(cq); x.Opts.Workers >= 1 || shards >= 1 {
		// Sharded execution always runs through the cross-shard
		// coordinator (on one worker when Workers is 0): the serial
		// driver stages whole-table bounds and cannot skip zones.
		workers := x.Opts.Workers
		if workers < 1 {
			workers = 1
		}
		return x.RunParallel(cq, rs, workers, cfg)
	}
	return x.RunIterations(cq, rs, 1, cfg)
}

// paramValues validates a run's bound arguments against the artifact's
// parameter manifest and returns the values to stage.
func paramValues(cq *Compiled, rs *RunState) ([]int64, error) {
	var got []int64
	if rs != nil {
		got = rs.Params
	}
	if want := len(cq.Plan.Params); len(got) != want {
		return nil, fmt.Errorf("engine: plan expects %d bound parameters, run state supplies %d", want, len(got))
	}
	return got, nil
}

// RunIterations executes a compiled query n times within one profiled
// session, modelling an iterative dataflow: the TSC and sample stream run
// continuously across iterations (mutable state — hash tables, result
// buffer, counters — is re-staged between passes), so the profile's
// DetectIterations can split them by timestamp, the paper's §4.2.6
// mechanism. The returned rows are the last iteration's.
func (x *Executor) RunIterations(cq *Compiled, rs *RunState, n int, cfg *pmu.Config) (*Result, error) {
	if n < 1 {
		n = 1
	}
	if cfg != nil {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	params, err := paramValues(cq, rs)
	if err != nil {
		return nil, err
	}
	snap := cq.snapshotFor(rs)
	cpu := vm.New(cq.heapSize)
	if err := stageSnapshot(cq, cpu, snap); err != nil {
		return nil, err
	}
	cpu.Load(cq.Code.Program)

	var p *pmu.PMU
	if cfg != nil {
		p = pmu.New(*cfg)
		p.Attach(cpu)
	}

	budget := x.Opts.MaxInstructions
	if budget == 0 {
		budget = 4_000_000_000
	}
	var stats vm.Stats
	for it := 0; it < n; it++ {
		// (Re-)stage mutable state: descriptors, cursors, counters,
		// bound parameters.
		for _, w := range cq.writes {
			cpu.WriteI64(w.addr, w.val)
		}
		for i, v := range params {
			cpu.WriteI64(cq.Layout.ParamBase+int64(i)*8, v)
		}
		if cq.Layout.CounterBase != 0 {
			for i := int64(0); i < counterSlots; i++ {
				cpu.WriteI64(cq.Layout.CounterBase+i*8, 0)
			}
		}
		if it > 0 {
			cpu.Restart()
		}
		stats, err = cpu.Run(budget)
		if err != nil {
			return nil, fmt.Errorf("engine: execution failed (iteration %d): %w", it, err)
		}
	}

	res := &Result{Cols: cq.Plan.Out(), Stats: stats, CPU: cpu, PMU: p, WallCycles: stats.TotalCycles(), Epoch: snap.Epoch}
	res.Rows = readRows(cq, cpu)
	sortRows(res.Rows, cq.Plan)
	if cq.Plan.Limit >= 0 && len(res.Rows) > cq.Plan.Limit {
		res.Rows = res.Rows[:cq.Plan.Limit]
	}

	if p != nil {
		res.Samples = p.Samples()
		att := core.NewAttributor(cq.Pipe.Dict, cq.Code.NMap)
		res.Profile = core.BuildProfile(att, res.Samples)
	}
	if cq.Layout.CounterBase != 0 {
		res.TupleCounts = map[core.ComponentID]int64{}
		for _, task := range cq.Pipe.Registry.ByLevel(core.LevelTask) {
			if int64(task.ID) >= counterSlots {
				continue
			}
			if n := cpu.ReadI64(cq.Layout.CounterBase + int64(task.ID)*8); n != 0 {
				res.TupleCounts[task.ID] = n
			}
		}
		res.PlanRows = cost.TrueRows(cq.Pipe, res.TupleCounts)
	}
	return res, nil
}

func readRows(cq *Compiled, cpu *vm.CPU) [][]int64 {
	cursor := cpu.ReadI64(cq.Layout.ResultDesc + codegen.AllocDescCursor)
	n := (cursor - cq.resultBase) / cq.rowBytes
	w := int(cq.rowBytes / 8)
	rows := make([][]int64, 0, n)
	for i := int64(0); i < n; i++ {
		row := make([]int64, w)
		for j := 0; j < w; j++ {
			row[j] = cpu.ReadI64(cq.resultBase + i*cq.rowBytes + int64(j)*8)
		}
		rows = append(rows, row)
	}
	return rows
}

// sortRows applies the plan's host-side ORDER BY (see DESIGN.md §6).
// Dictionary-encoded string columns sort by their decoded strings, so the
// SQL collation matches what a user expects rather than insertion order.
func sortRows(rows [][]int64, pl *plan.Output) {
	if len(pl.OrderBy) == 0 {
		return
	}
	metas := pl.Out()
	less := plan.RowLess(pl.OrderBy, pl.Desc, metas)
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
}

// FormatValue renders a result value using column metadata (decoding
// dictionary strings and dates).
func FormatValue(v int64, m plan.ColMeta) string {
	switch m.Type {
	case catalog.TDate:
		return catalog.FormatDate(v)
	case catalog.TStr:
		if m.Dict != nil {
			return m.Dict.String(v)
		}
	}
	return fmt.Sprintf("%d", v)
}
