package engine

import (
	"sort"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/vm"
)

// mergeQueries are the workloads the partitioned-merge battery sweeps: a
// join-build-heavy plan (fig9), a plain group-by (q1), a selective
// group-by (q6), and a group-join (intro) — one per partitioned sink kind.
var mergeQueries = []string{"fig9", "q1", "q6", "intro"}

func mergeRun(t *testing.T, name string, workers, partitions int, bloom bool) (*Compiled, *Result) {
	t.Helper()
	w, ok := queries.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	opts := DefaultOptions()
	opts.Workers = workers
	opts.MorselRows = 256
	opts.Partitions = partitions
	opts.BloomFilters = bloom
	e := New(testCatalog(t), opts)
	cq, err := e.CompileQuery(w.Query)
	if err != nil {
		t.Fatalf("%s compile: %v", name, err)
	}
	res, err := e.Run(cq, nil)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", name, workers, err)
	}
	return cq, res
}

// TestMergeDeterminism is the partitioned merge's property test: for every
// worker count, the result rows are identical to the serial oracle *in
// order*, and every partitioned hash table — directory, arena, cursor —
// is byte-identical on the canonical heap. The merge does not merely
// produce equivalent tables; it reconstructs the serial run's bytes.
func TestMergeDeterminism(t *testing.T) {
	for _, name := range mergeQueries {
		name := name
		t.Run(name, func(t *testing.T) {
			ocq, oracle := mergeRun(t, name, 0, DefaultOptions().Partitions, true)
			for _, workers := range []int{1, 2, 4, 8} {
				cq, res := mergeRun(t, name, workers, DefaultOptions().Partitions, true)
				rowsEqual(t, res.Rows, oracle.Rows, true)

				// The layout is a pure function of catalog + options, so
				// both compiles place every hash table at the same
				// addresses; pair them by descriptor address.
				hts, ohts := partitionedHTs(cq), partitionedHTs(ocq)
				if len(hts) == 0 {
					t.Fatalf("workers=%d: no partitioned sink in %s — battery is vacuous", workers, name)
				}
				if len(hts) != len(ohts) {
					t.Fatalf("workers=%d: %d partitioned sinks, oracle has %d", workers, len(hts), len(ohts))
				}
				for i, ht := range hts {
					if *ohts[i] != *ht {
						t.Fatalf("workers=%d: hash-table layout %d differs from oracle", workers, i)
					}
					got, want := res.CPU.Heap, oracle.CPU.Heap
					gc := codegen.HeapI64(got, ht.Desc+codegen.HTDescCursor)
					wc := codegen.HeapI64(want, ht.Desc+codegen.HTDescCursor)
					if gc != wc {
						t.Fatalf("workers=%d ht %d: cursor %d, oracle %d", workers, i, gc, wc)
					}
					if !bytesEq(got, want, ht.Dir, ht.Dir+ht.DirSlots*8) {
						t.Fatalf("workers=%d ht %d: directory differs from oracle", workers, i)
					}
					if !bytesEq(got, want, ht.Arena, gc) {
						t.Fatalf("workers=%d ht %d: arena differs from oracle", workers, i)
					}
				}
			}
		})
	}
}

func bytesEq(a, b []byte, lo, hi int64) bool {
	return string(a[lo:hi]) == string(b[lo:hi])
}

// partitionedHTs returns the compiled query's partitioned hash-table
// layouts in ascending descriptor-address order.
func partitionedHTs(cq *Compiled) []*pipeline.HTLayout {
	var hts []*pipeline.HTLayout
	for _, ht := range cq.Layout.HT {
		if ht.Partitions > 0 {
			hts = append(hts, ht)
		}
	}
	sort.Slice(hts, func(i, j int) bool { return hts[i].Desc < hts[j].Desc })
	return hts
}

// TestMergeScalingGate is the CI gate: on the join benchmark, the merge
// phase at 4 workers must be at least 2x faster than the same generated
// kernels run on a single worker. The merge kernels are profiled code, so
// this is simulated time — the gate catches any serial coordinator work
// creeping back into the merge path.
func TestMergeScalingGate(t *testing.T) {
	_, r1 := mergeRun(t, "fig9", 1, DefaultOptions().Partitions, true)
	_, r4 := mergeRun(t, "fig9", 4, DefaultOptions().Partitions, true)
	if r1.MergeCycles == 0 || r4.MergeCycles == 0 {
		t.Fatalf("merge cycles unmeasured: 1w=%d 4w=%d", r1.MergeCycles, r4.MergeCycles)
	}
	if r1.MergeCycles < 2*r4.MergeCycles {
		t.Fatalf("merge phase scaled %.2fx at 4 workers (1w=%d, 4w=%d); gate requires >= 2x",
			float64(r1.MergeCycles)/float64(r4.MergeCycles), r1.MergeCycles, r4.MergeCycles)
	}
}

// TestMergeLegacyFallback: Partitions=0 selects the host-side merge — the
// determinism oracle — and its rows stay identical to both the serial run
// and the partitioned path's.
func TestMergeLegacyFallback(t *testing.T) {
	for _, name := range mergeQueries {
		_, oracle := mergeRun(t, name, 0, DefaultOptions().Partitions, true)
		for _, workers := range []int{1, 4} {
			cq, res := mergeRun(t, name, workers, 0, true)
			rowsEqual(t, res.Rows, oracle.Rows, true)
			if res.MergeCycles != 0 {
				t.Fatalf("%s: legacy merge reported %d merge cycles; it runs host-side, unmeasured", name, res.MergeCycles)
			}
			for _, info := range cq.Pipe.Pipelines {
				if info.Merge != nil {
					t.Fatalf("%s: merge kernels generated with Partitions=0", name)
				}
			}
		}
	}
}

// TestMergeBloomToggle: the bloom filter is a pure probe accelerator —
// switching it off must not change a single row, serial or parallel.
func TestMergeBloomToggle(t *testing.T) {
	for _, name := range mergeQueries {
		_, on := mergeRun(t, name, 4, DefaultOptions().Partitions, true)
		_, off := mergeRun(t, name, 4, DefaultOptions().Partitions, false)
		rowsEqual(t, off.Rows, on.Rows, true)
		_, serialOff := mergeRun(t, name, 0, DefaultOptions().Partitions, false)
		rowsEqual(t, serialOff.Rows, on.Rows, true)
	}
}

// TestMergeSampleAttribution: merge kernels are profiled code. A sampled
// parallel run must attribute PMU samples to merge-role tasks, and every
// such task must resolve to its plan operator through the Tagging
// Dictionary. (The worker-lanes overlay built on this predicate is
// rendered by viz.WorkerLanesTagged, tested in internal/viz.)
func TestMergeSampleAttribution(t *testing.T) {
	w, _ := queries.ByName("fig9")
	opts := DefaultOptions()
	opts.Workers = 4
	opts.MorselRows = 256
	e := New(testCatalog(t), opts)
	cq, err := e.CompileQuery(w.Query)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := e.Run(cq, &pmu.Config{Event: vm.EvInstRetired, Period: 97, Format: pmu.FormatIPTimeRegs})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	att := core.NewAttributor(cq.Pipe.Dict, cq.Code.NMap)
	isMerge := func(s *core.Sample) bool {
		for _, cr := range att.Attribute(s).Credits {
			c, found := cq.Pipe.Registry.Lookup(cr.Task)
			if !found || !pipeline.MergeRole(c.Kind) {
				continue
			}
			if cq.Pipe.Dict.OperatorOf(cr.Task) == core.NoComponent {
				t.Fatalf("merge task %v has no operator in the Tagging Dictionary", cr.Task)
			}
			return true
		}
		return false
	}
	n := 0
	for i := range res.Samples {
		if isMerge(&res.Samples[i]) {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no PMU samples attributed to merge kernels — merge is invisible to the profiler")
	}
}

// TestLPTBeatsGreedy: the scheduling model. On skewed costs, in-order
// least-loaded greedy commits small items before seeing the big one; LPT
// sorts first and lands within 4/3 of optimal. The merge phase assigns
// partitions with the same lptAssign, so this bound is what the gate
// above leans on when partition sizes are skewed.
func TestLPTBeatsGreedy(t *testing.T) {
	costs := []uint64{1, 1, 1, 1, 9}
	greedy := func(costs []uint64, workers int) uint64 {
		load := make([]uint64, workers)
		for _, c := range costs {
			m := 0
			for i := 1; i < workers; i++ {
				if load[i] < load[m] {
					m = i
				}
			}
			load[m] += c
		}
		var max uint64
		for _, l := range load {
			if l > max {
				max = l
			}
		}
		return max
	}
	g := greedy(costs, 2)
	l := makespan(costs, 2)
	if g != 11 || l != 9 {
		t.Fatalf("greedy=%d (want 11), LPT=%d (want 9)", g, l)
	}

	// lptAssign's partition lists must cover every index exactly once.
	assign, ms := lptAssign(costs, 2)
	if ms != l {
		t.Fatalf("lptAssign makespan %d != makespan() %d", ms, l)
	}
	seen := map[int]bool{}
	for _, parts := range assign {
		for _, p := range parts {
			if seen[p] {
				t.Fatalf("partition %d assigned twice", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != len(costs) {
		t.Fatalf("assigned %d of %d partitions", len(seen), len(costs))
	}

	// Degenerate shapes.
	if makespan(nil, 4) != 0 {
		t.Fatal("empty cost list must have zero makespan")
	}
	if makespan([]uint64{5}, 8) != 5 {
		t.Fatal("one item: makespan is its cost")
	}
}

// TestSinkOverflowErrorMessage: merge pre-validation reports a structured
// error naming the sink and region, mirroring the SinkOutput check.
func TestSinkOverflowErrorMessage(t *testing.T) {
	err := &SinkOverflowError{Sink: "hashagg", Region: "hash-table arena", Needed: 4096, Capacity: 1024}
	want := `engine: hash-table arena overflow merging sink of pipeline "hashagg": need 4096 bytes, capacity 1024`
	if err.Error() != want {
		t.Fatalf("got %q\nwant %q", err.Error(), want)
	}
}

// BenchmarkMergeScaling times the partitioned 4-worker path end to end
// (compile once, run per iteration); CI's bench-smoke runs it once.
func BenchmarkMergeScaling(b *testing.B) {
	w, _ := queries.ByName("fig9")
	opts := DefaultOptions()
	opts.Workers = 4
	opts.MorselRows = 256
	e := New(testCatalog(b), opts)
	cq, err := e.CompileQuery(w.Query)
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cq, nil); err != nil {
			b.Fatalf("run: %v", err)
		}
	}
}
