package engine

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/ref"
	"repro/internal/vm"
)

// edgeCatalog builds tables with degenerate shapes.
func edgeCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()

	empty := catalog.NewTable("empty")
	ek := empty.AddCol("k", catalog.TInt)
	ek.Unique = true
	empty.AddCol("v", catalog.TInt)
	c.Add(empty)

	one := catalog.NewTable("one")
	ok := one.AddCol("k", catalog.TInt)
	ok.Unique = true
	ok.Data = []int64{42}
	one.AddCol("v", catalog.TInt).Data = []int64{7}
	c.Add(one)

	dup := catalog.NewTable("dup")
	dup.AddCol("k", catalog.TInt).Data = []int64{1, 1, 1, 2}
	dup.AddCol("v", catalog.TInt).Data = []int64{10, 20, 30, 40}
	c.Add(dup)
	return c
}

func runEdge(t *testing.T, sql string) *Result {
	t.Helper()
	e := New(edgeCatalog(t), DefaultOptions())
	cq, err := e.CompileSQL(sql)
	if err != nil {
		t.Fatalf("%s: compile: %v", sql, err)
	}
	want, err := ref.Execute(cq.Plan)
	if err != nil {
		t.Fatalf("%s: ref: %v", sql, err)
	}
	res, err := e.Run(cq, &pmu.Config{Event: vm.EvCycles, Period: 100, Format: pmu.FormatIPTimeRegs})
	if err != nil {
		t.Fatalf("%s: run: %v", sql, err)
	}
	rowsEqual(t, res.Rows, want, len(cq.Plan.OrderBy) > 0)
	return res
}

func TestEmptyTableScan(t *testing.T) {
	res := runEdge(t, "select k, v from empty")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestEmptyBuildSide(t *testing.T) {
	res := runEdge(t, "select d.v from dup d, empty e where d.k = e.k")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestEmptyProbeSide(t *testing.T) {
	runEdge(t, "select e.v from empty e, one o where e.k = o.k")
}

func TestGroupByEmptyInput(t *testing.T) {
	res := runEdge(t, "select k, count(*) from empty group by k")
	if len(res.Rows) != 0 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
}

func TestGlobalAggOverEmpty(t *testing.T) {
	// SQL semantics would return one row (count 0); our engine follows
	// group-by-with-no-groups semantics and returns none — the reference
	// executor agrees, which is what this pins down.
	runEdge(t, "select count(*) from empty")
}

func TestSingleRowJoin(t *testing.T) {
	res := runEdge(t, "select o.v from one o, dup d where d.k = o.k")
	if len(res.Rows) != 0 {
		t.Fatalf("42 should not match dup keys: %v", res.Rows)
	}
}

func TestDuplicateKeysAllMatch(t *testing.T) {
	res := runEdge(t, "select d.v, o.v from dup d, one o where d.k = o.k")
	_ = res
}

func TestSelfJoinViaAliases(t *testing.T) {
	res := runEdge(t, "select a.v, b.v from dup a, dup b where a.k = b.k")
	// 3×3 for key 1 plus 1×1 for key 2.
	if len(res.Rows) != 10 {
		t.Fatalf("self join rows = %d, want 10", len(res.Rows))
	}
}

func TestFilterSelectsNothing(t *testing.T) {
	res := runEdge(t, "select v from dup where k > 100")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestArithmeticInProjection(t *testing.T) {
	res := runEdge(t, "select v * 2 + k from dup where k = 2")
	if len(res.Rows) != 1 || res.Rows[0][0] != 82 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestMinMaxSingleGroup(t *testing.T) {
	res := runEdge(t, "select k, min(v), max(v), avg(v) from dup group by k order by k")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1] != 10 || res.Rows[0][2] != 30 || res.Rows[0][3] != 20 {
		t.Fatalf("key1 aggs = %v", res.Rows[0])
	}
}

func TestLimitZeroRowsRemaining(t *testing.T) {
	e := New(edgeCatalog(t), DefaultOptions())
	cq, err := e.CompileSQL("select v from dup order by v limit 2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != 10 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestNegativeValuesThroughHash: negative keys must hash and compare
// correctly end to end.
func TestNegativeValuesThroughHash(t *testing.T) {
	c := catalog.New()
	a := catalog.NewTable("a")
	a.AddCol("k", catalog.TInt).Data = []int64{-5, -1, 0, 3}
	a.AddCol("v", catalog.TInt).Data = []int64{1, 2, 3, 4}
	b := catalog.NewTable("b")
	kb := b.AddCol("k", catalog.TInt)
	kb.Unique = true
	kb.Data = []int64{-5, 3}
	b.AddCol("w", catalog.TInt).Data = []int64{100, 200}
	c.Add(a)
	c.Add(b)

	e := New(c, DefaultOptions())
	cq, err := e.CompileQuery(&plan.Query{
		Tables: []plan.TableRef{{Name: "a"}, {Name: "b"}},
		Where:  []plan.Expr{plan.Eq(plan.Col("a.k"), plan.Col("b.k"))},
		Select: []plan.SelectItem{{Expr: plan.Col("v")}, {Expr: plan.Col("w")}},
		Limit:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Execute(cq.Plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, res.Rows, want, false)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
