package engine

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/vm"
)

// TestQCacheKeyEpochContract pins the cache-key contract of epoch-versioned
// storage: appends within capacity change neither the options digest nor
// the catalog version, so a warm prepare after an append is a hit on the
// *same* artifact — zero recompiles, zero evictions — while a schema
// change (Add) still misses.
func TestQCacheKeyEpochContract(t *testing.T) {
	svc := testService(t)
	se := svc.NewSession()
	sql := "select count(*) from lineitem where l_quantity < 10"

	digest0 := svc.Options().Digest()
	version0 := svc.Catalog().Version()

	p1, err := se.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if p1.CacheHit || p1.Fallback {
		t.Fatalf("first prepare: hit=%v fallback=%v", p1.CacheHit, p1.Fallback)
	}
	missesAfterCold := svc.CacheStats().Misses

	tb, err := svc.Catalog().Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.AppendCols("lineitem", datagen.AppendBatch(tb, 40, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}

	if d := svc.Options().Digest(); d != digest0 {
		t.Fatalf("Options.Digest changed across appends: %x -> %x", digest0, d)
	}
	if v := svc.Catalog().Version(); v != version0 {
		t.Fatalf("catalog version changed across in-capacity appends: %d -> %d", version0, v)
	}

	p2, err := se.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CacheHit {
		t.Fatal("prepare after append must be a cache hit")
	}
	if p2.Compiled != p1.Compiled {
		t.Fatal("append must not re-compile: artifacts differ")
	}
	st := svc.CacheStats()
	if st.Misses != missesAfterCold {
		t.Fatalf("appends caused %d extra compiles", st.Misses-missesAfterCold)
	}
	if st.Evictions != 0 || st.Invalidations != 0 {
		t.Fatalf("appends evicted/invalidated artifacts: %+v", st)
	}

	// The warm artifact executes against the grown table: the run binds the
	// current epoch and sees all appended rows.
	res, err := se.Run(p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != svc.Epoch() || res.Epoch != 3 {
		t.Fatalf("run bound epoch %d, catalog at %d", res.Epoch, svc.Epoch())
	}

	// A schema change still invalidates: the version moves and the next
	// prepare misses.
	svc.Catalog().Add(catalog.NewTable("epoch_contract_scratch"))
	if svc.Catalog().Version() == version0 {
		t.Fatal("Add must bump the catalog version")
	}
	p3, err := se.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if p3.CacheHit {
		t.Fatal("prepare after a schema change must miss")
	}
}

// incrementalPair builds two catalogs with identical visible contents: one
// bulk-loaded, one loaded to a prefix and grown to the same rows by
// streaming appends. The prefix is chosen inside the full row count's
// capacity class, so both catalogs freeze identical layouts — the
// precondition for byte-identical artifacts and heaps.
func incrementalPair(t *testing.T) (*catalog.Catalog, *catalog.Catalog) {
	t.Helper()
	cfg := datagen.Config{ScaleFactor: 0.02, Seed: 7}
	bulk := datagen.Generate(cfg)
	incr := datagen.Generate(cfg)
	tbB, err := bulk.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	tbI, err := incr.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	n := tbB.Rows()
	n0 := n - 200
	if n0 <= 0 || catalog.CapRowsFor(n0) != catalog.CapRowsFor(n) {
		t.Fatalf("prefix %d and full %d rows land in different capacity classes", n0, n)
	}
	for _, c := range tbI.Cols {
		c.Data = c.Data[:n0]
	}
	for lo := n0; lo < n; {
		hi := lo + 80
		if hi > n {
			hi = n
		}
		cols := make([][]int64, len(tbB.Cols))
		for i, c := range tbB.Cols {
			cols[i] = c.Data[lo:hi]
		}
		if _, err := incr.AppendCols("lineitem", cols); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	if tbI.Rows() != n {
		t.Fatalf("incremental catalog has %d rows, want %d", tbI.Rows(), n)
	}
	return bulk, incr
}

// TestEpochDeterminismBattery is the acceptance battery of the epoch axis:
// for the same visible epoch, result rows, canonical heap bytes, and the
// canonical profile are byte-identical across Workers {0,1,2,4} × Shards
// {1,2,4} × {bulk-load, incremental-append}. Storage history, parallelism
// and shard attribution must all be invisible in what a query computes.
func TestEpochDeterminismBattery(t *testing.T) {
	bulk, incr := incrementalPair(t)
	query := queries.Fig9().Query
	cfg := &pmu.Config{Event: vm.EvInstRetired, Period: 487}

	var refHeap []byte
	var refCanon []byte
	var refRows [][]int64
	for _, axis := range []struct {
		name string
		cat  *catalog.Catalog
	}{{"bulk", bulk}, {"incremental", incr}} {
		for _, workers := range []int{0, 1, 2, 4} {
			for _, shards := range []int{1, 2, 4} {
				label := fmt.Sprintf("%s/w%d/s%d", axis.name, workers, shards)
				opts := DefaultOptions()
				opts.Workers = workers
				opts.MorselRows = 256
				opts.Shards = shards
				opts.ShardPruning = true
				e := New(axis.cat, opts)
				cq, err := e.CompileQuery(query)
				if err != nil {
					t.Fatalf("%s: compile: %v", label, err)
				}
				res, err := e.Run(cq, cfg)
				if err != nil {
					t.Fatalf("%s: run: %v", label, err)
				}
				canon := res.Profile.Canonical()
				if refHeap == nil {
					refHeap = append([]byte(nil), res.CPU.Heap...)
					refCanon = canon
					refRows = res.Rows
					continue
				}
				if !bytes.Equal(res.CPU.Heap, refHeap) {
					t.Errorf("%s: canonical heap differs from reference cell", label)
				}
				if !bytes.Equal(canon, refCanon) {
					t.Errorf("%s: canonical profile differs from reference cell", label)
				}
				if len(res.Rows) != len(refRows) {
					t.Fatalf("%s: %d rows, want %d", label, len(res.Rows), len(refRows))
				}
				for i := range res.Rows {
					for j := range res.Rows[i] {
						if res.Rows[i][j] != refRows[i][j] {
							t.Fatalf("%s: row %d differs", label, i)
						}
					}
				}
			}
		}
	}
}

// TestSessionSnapshotPinning: a pinned session keeps reading its epoch
// while appends land and unpinned sessions see them — repeatable reads on
// one handle, fresh reads on the other, one shared artifact.
func TestSessionSnapshotPinning(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.02, Seed: 7})
	svc := NewService(cat, DefaultOptions(), 0)
	pinned := svc.NewSession()
	fresh := svc.NewSession()
	sql := "select count(*) from sales where price >= 0"

	snap := pinned.PinSnapshot()
	pRows := int64(snap.View("sales").Rows)

	tb, err := cat.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AppendCols("sales", datagen.AppendBatch(tb, 64, 99)); err != nil {
		t.Fatal(err)
	}

	p1, err := pinned.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := pinned.Run(p1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Epoch != snap.Epoch || res1.Rows[0][0] != pRows {
		t.Fatalf("pinned run: epoch=%d count=%d, want epoch=%d count=%d",
			res1.Epoch, res1.Rows[0][0], snap.Epoch, pRows)
	}

	p2, err := fresh.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CacheHit || p2.Compiled != p1.Compiled {
		t.Fatal("pinned and fresh sessions must share one artifact")
	}
	res2, err := fresh.Run(p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Epoch != svc.Epoch() || res2.Rows[0][0] != pRows+64 {
		t.Fatalf("fresh run: epoch=%d count=%d, want epoch=%d count=%d",
			res2.Epoch, res2.Rows[0][0], svc.Epoch(), pRows+64)
	}

	pinned.Unpin()
	res3, err := pinned.Run(p1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Rows[0][0] != pRows+64 {
		t.Fatalf("unpinned run sees %d rows, want %d", res3.Rows[0][0], pRows+64)
	}
}

// TestConcurrentAppendExecute races streaming appends against executing
// sessions (the CI -race job runs this package): every observed count must
// be exactly one of the epoch-boundary row counts — never a torn read —
// and a pinned session must observe its own epoch repeatably.
func TestConcurrentAppendExecute(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.02, Seed: 7})
	svc := NewService(cat, DefaultOptions(), 0)
	tb, err := cat.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	base := int64(tb.Rows())
	const batch, nBatches = 64, 8
	valid := map[int64]bool{}
	for k := 0; k <= nBatches; k++ {
		valid[base+int64(k*batch)] = true
	}
	sql := "select count(*) from sales where price >= 0"

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nBatches; i++ {
			if _, err := svc.AppendCols("sales", datagen.AppendBatch(tb, batch, uint64(i+1))); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	const readers = 3
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			se := svc.NewSession()
			se.SetWorkers(2)
			for i := 0; i < 4; i++ {
				var pinnedRows int64 = -1
				if i%2 == 1 {
					pinnedRows = int64(se.PinSnapshot().View("sales").Rows)
				} else {
					se.Unpin()
				}
				p, err := se.Prepare(sql)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				res, err := se.Run(p, nil)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				got := res.Rows[0][0]
				if !valid[got] {
					t.Errorf("reader %d saw %d rows — not an epoch boundary (base %d, batch %d)", r, got, base, batch)
					return
				}
				if pinnedRows >= 0 && got != pinnedRows {
					t.Errorf("reader %d: pinned snapshot has %d rows, run saw %d", r, pinnedRows, got)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestAdaptStalenessBumpsGeneration: row-count drift past the threshold is
// a staleness trigger — the next Adapt bumps the statement's PGO
// generation and the following prepare recompiles over the current
// epoch's statistics, re-freezing the drift baseline.
func TestAdaptStalenessBumpsGeneration(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.02, Seed: 7})
	svc := NewService(cat, DefaultOptions(), 0)
	se := svc.NewSession()
	sql := "select count(*) from sales where price >= 0"

	if _, err := se.Adapt(sql, nil); err != nil {
		t.Fatal(err)
	}
	p1, err := se.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	gen0 := svc.gens.Current(p1.Fingerprint)
	planned0 := p1.Compiled.PlannedRows()["sales"]

	// Drift the scanned table by ~40% — past StalenessDriftThreshold but
	// within capacity, so only the epoch moves.
	tb, err := cat.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	version0 := cat.Version()
	grow := int(float64(tb.Rows()) * 0.4)
	if _, err := svc.AppendCols("sales", datagen.AppendBatch(tb, grow, 5)); err != nil {
		t.Fatal(err)
	}
	if cat.Version() != version0 {
		t.Fatalf("drift append outgrew capacity — pick a smaller batch")
	}

	if _, err := se.Adapt(sql, nil); err != nil {
		t.Fatal(err)
	}
	gen1 := svc.gens.Current(p1.Fingerprint)
	if gen1 <= gen0 {
		t.Fatalf("drifted Adapt left generation at %d (was %d)", gen1, gen0)
	}
	p2, err := se.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if p2.CacheHit {
		t.Fatal("prepare after a staleness bump must recompile")
	}
	if planned1 := p2.Compiled.PlannedRows()["sales"]; planned1 != planned0+int64(grow) {
		t.Fatalf("recompile planned %d rows, want %d (drift baseline not re-frozen)", planned1, planned0+int64(grow))
	}
}
