package engine

import (
	"hash/fnv"
	"math"
	"reflect"
)

// Digest returns a 64-bit hash covering every exported field of Options,
// for use as a compiled-query cache key component: two Options with equal
// digests must compile identically. The hash walks the struct by
// reflection — field names and values both feed the hash — so adding a
// field to Options (or to a nested struct like iropt.Options) changes the
// digest domain automatically; TestOptionsDigestCoversAllFields guards
// that no field kind falls through the walk.
func (o Options) Digest() uint64 {
	h := fnv.New64a()
	digestValue(h, "Options", reflect.ValueOf(o))
	return h.Sum64()
}

// hashWriter is the subset of hash.Hash64 digestValue needs.
type hashWriter interface{ Write(p []byte) (int, error) }

// hwrite feeds bytes to the digest. hash.Hash documents that Write never
// returns an error; handling it here in one place keeps every call site
// honest under lint/noerrdrop without sprinkling discards around.
func hwrite(h hashWriter, p []byte) {
	if _, err := h.Write(p); err != nil {
		bugf("digest write failed: %v", err)
	}
}

func digestValue(h hashWriter, name string, v reflect.Value) {
	hwrite(h, []byte(name))
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			hwrite(h, []byte{1})
		} else {
			hwrite(h, []byte{0})
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		writeU64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		writeU64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		writeU64(h, math.Float64bits(v.Float()))
	case reflect.String:
		hwrite(h, []byte(v.String()))
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			digestValue(h, t.Field(i).Name, v.Field(i))
		}
	case reflect.Ptr, reflect.Interface, reflect.Func, reflect.Map, reflect.Chan:
		// Reference kinds (e.g. iropt's Hot profile, AfterPass hook)
		// contribute presence only: their pointees aren't comparable, and
		// cache users must not set them anyway — Service compiles guided
		// artifacts under a distinct PGO generation instead.
		if v.IsNil() {
			hwrite(h, []byte{0})
		} else {
			hwrite(h, []byte{1})
		}
	case reflect.Slice, reflect.Array:
		writeU64(h, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			digestValue(h, "", v.Index(i))
		}
	default:
		// A new field kind nobody taught the walk about: make it
		// impossible to miss in tests.
		bugf("Options.Digest cannot hash %s field %s", v.Kind(), name)
	}
}

func writeU64(h hashWriter, x uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
	hwrite(h, b[:])
}
