package engine

import "testing"

// FuzzPartitionMorsels: for any (total, size), the partition must cover
// [0, total) exactly once — no span empty, no gap, no overlap, no tuple
// lost or duplicated — and must cap every span at the morsel size. These
// are the invariants the parallel scheduler's correctness rests on.
func FuzzPartitionMorsels(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(1), int64(1))
	f.Add(int64(1000), int64(256))
	f.Add(int64(1024), int64(1024))
	f.Add(int64(1025), int64(1024))
	f.Add(int64(7), int64(-3))
	f.Add(int64(-5), int64(10))
	f.Add(int64(1<<40), int64(1<<39))
	f.Fuzz(func(t *testing.T, total, size int64) {
		// Unbounded totals with tiny sizes would allocate absurd span
		// slices; cap the domain while keeping edge-case coverage.
		if total > 1<<20 {
			total = total % (1 << 20)
		}
		spans := PartitionMorsels(total, size)
		if total <= 0 {
			if spans != nil {
				t.Fatalf("total=%d: got %d spans, want none", total, len(spans))
			}
			return
		}
		want := size
		if want <= 0 {
			want = DefaultMorselRows
		}
		var covered int64
		next := int64(0)
		for i, sp := range spans {
			if sp.Rows() <= 0 {
				t.Fatalf("span %d is empty: %+v", i, sp)
			}
			if sp.Rows() > want {
				t.Fatalf("span %d has %d rows, cap %d", i, sp.Rows(), want)
			}
			if sp.Lo != next {
				t.Fatalf("span %d starts at %d, want %d (gap or overlap)", i, sp.Lo, next)
			}
			next = sp.Hi
			covered += sp.Rows()
		}
		if next != total {
			t.Fatalf("partition ends at %d, want %d", next, total)
		}
		if covered != total {
			t.Fatalf("covered %d rows, want %d", covered, total)
		}
	})
}
