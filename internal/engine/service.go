package engine

// The query service: the multi-session, cache-fronted face of the engine.
//
// A Service owns one catalog, one compiler configuration and one
// compiled-query cache; Sessions are cheap per-client handles that share
// all of it. Prepare normalizes a statement (sqlparse.Normalize), looks
// the fingerprint up in the cache — compiling under single-flight on a
// miss — and encodes the statement's lifted literals against the plan's
// parameter manifest. The artifact that comes back is immutable and
// shared; everything a run mutates lives in the per-call RunState and the
// per-run VM, so any number of sessions can execute one artifact
// concurrently.
//
// Verification (Options.VerifyArtifacts) runs inside the compile path,
// i.e. exactly once per cache insert: an artifact that was verified when
// it entered the cache cannot become invalid later, because it is never
// mutated — re-verifying per hit would only re-check the same bytes.
//
// Adaptive execution (Session.Adapt) ties the PGO loop into the cache:
// when a profile-guided recompile beats the baseline, the profile is
// promoted to a new generation (pgo.Generations), the tuned artifact is
// cached under the new generation's key, and older generations of the
// fingerprint are invalidated — so the next Prepare from any session
// returns the faster binary.

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/mview"
	"repro/internal/pgo"
	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/qcache"
	"repro/internal/sqlparse"
)

// DefaultCacheEntries is the compiled-query cache capacity when
// NewService is given no explicit size.
const DefaultCacheEntries = 128

// Service is a shared, concurrency-safe query service: catalog +
// compiler options + compiled-query cache + PGO generation table.
type Service struct {
	cat       *catalog.Catalog
	opts      Options
	optDigest uint64
	cache     *qcache.Cache[*Compiled]
	gens      *pgo.Generations
	history   *cost.History
	views     *mview.Manager
	nextID    atomic.Int64
	fallbacks atomic.Uint64
}

// NewService creates a service. cacheEntries <= 0 selects
// DefaultCacheEntries.
func NewService(cat *catalog.Catalog, opts Options, cacheEntries int) *Service {
	if cacheEntries <= 0 {
		cacheEntries = DefaultCacheEntries
	}
	s := &Service{
		cat:       cat,
		opts:      opts,
		optDigest: opts.Digest(),
		cache:     qcache.New[*Compiled](cacheEntries),
		gens:      pgo.NewGenerations(),
		history:   cost.NewHistory(),
		views:     mview.NewManager(cat),
	}
	// The view rewriter's cost gate prices candidate plans with the same
	// cycle model the compiler's knob decisions use.
	s.views.SetCostModel(func(pl *plan.Output) float64 { return cost.Annotate(pl).TotalCycles })
	return s
}

// Views exposes the service's materialized-view manager.
func (s *Service) Views() *mview.Manager { return s.views }

// CreateView registers and builds a materialized view; every session's
// subsequent prepares consider it for subsumption rewriting. The view
// generation in the cache key changes, so previously cached artifacts
// (compiled under the old rewrite decision space) are re-decided.
func (s *Service) CreateView(name, defSQL string, policy mview.RefreshPolicy) (*mview.View, error) {
	return s.views.Create(name, defSQL, policy)
}

// DropView unregisters a view and removes its backing table.
func (s *Service) DropView(name string) error { return s.views.Drop(name) }

// RefreshView catches a view up to the base table's current prefix.
func (s *Service) RefreshView(name string) error { return s.views.Refresh(name) }

func (s *Service) compiler() *Compiler { return &Compiler{Cat: s.cat, Opts: s.opts} }

// History exposes the service's observed-cardinality cache (shared by
// all sessions; Adapt is its writer).
func (s *Service) History() *cost.History { return s.history }

// estimator is the planner hook every service compile runs under:
// heuristics over fresh statistics, corrected by whatever true
// cardinalities the history has accumulated. With an empty history it is
// exactly the classic planner.
func (s *Service) estimator() plan.Estimator {
	return &cost.HistoryCorrected{Base: &cost.Naive{Stats: cost.FreshStats{}}, H: s.history}
}

// Options returns the service's compiler configuration.
func (s *Service) Options() Options { return s.opts }

// Catalog returns the service's catalog.
func (s *Service) Catalog() *catalog.Catalog { return s.cat }

// Append ingests row tuples into a table (see catalog.Append): the storage
// epoch advances, the window is journaled, and — within the table's frozen
// capacity — the catalog version does not change, so every cached artifact
// stays valid and every in-flight execution keeps reading its pinned
// snapshot while the rows land in the tail.
func (s *Service) Append(table string, rows [][]int64) (catalog.AppendResult, error) {
	return s.cat.Append(table, rows)
}

// AppendCols is Append in columnar form (see catalog.AppendCols).
func (s *Service) AppendCols(table string, cols [][]int64) (catalog.AppendResult, error) {
	return s.cat.AppendCols(table, cols)
}

// Snapshot captures the catalog's current epoch: an immutable view every
// table, suitable for pinning to a RunState or a Session.
func (s *Service) Snapshot() *catalog.Snapshot { return s.cat.Snapshot() }

// Epoch returns the catalog's current storage epoch.
func (s *Service) Epoch() uint64 { return s.cat.Epoch() }

// CacheStats snapshots the compiled-query cache's traffic counters.
func (s *Service) CacheStats() qcache.Stats { return s.cache.Stats() }

// CacheLen returns the number of cached artifacts.
func (s *Service) CacheLen() int { return s.cache.Len() }

// Fallbacks counts statements served by a direct, uncached compile
// because their parameterized form did not plan (see prepare).
func (s *Service) Fallbacks() uint64 { return s.fallbacks.Load() }

// SessionStats accumulates one session's traffic and its compile-vs-
// execute time split.
type SessionStats struct {
	Queries   int
	CacheHits int
	Fallbacks int
	// Rewrites counts prepares served by a materialized-view rewrite;
	// RewriteFallbacks counts runs of rewritten statements that fell
	// back to base-table execution because the bound snapshot had no
	// consistent view prefix (the zero-stale-read guard).
	Rewrites         int
	RewriteFallbacks int
	// Prepare is wall time spent in Prepare (cache lookups, compiles,
	// argument encoding); Execute is wall time spent running artifacts.
	Prepare time.Duration
	Execute time.Duration
}

// Session is one client's handle on the service. A session is not
// goroutine-safe (each concurrent client takes its own), but any number
// of sessions may share the Service and its cached artifacts.
type Session struct {
	ID    int64
	svc   *Service
	exec  Executor
	stats SessionStats
	snap  *catalog.Snapshot
}

// NewSession opens a session. Run knobs (worker count, morsel size) are
// per-session and do not affect the cache key — the same artifact serves
// every execution configuration.
func (s *Service) NewSession() *Session {
	return &Session{ID: s.nextID.Add(1), svc: s, exec: Executor{Opts: s.opts}}
}

// SetWorkers selects this session's morsel-parallel worker count
// (0 = legacy single-CPU path).
func (se *Session) SetWorkers(n int) { se.exec.Opts.Workers = n }

// SetMorselRows selects this session's morsel size (0 = default).
func (se *Session) SetMorselRows(n int) { se.exec.Opts.MorselRows = n }

// SetShards selects this session's shard count for artifacts compiled
// without a per-statement decision; service-cached artifacts carry their
// own cost-model decision (cost.DecideShards), which wins.
func (se *Session) SetShards(n int) { se.exec.Opts.Shards = n }

// SetShardPruning toggles zone pruning for this session's sharded runs
// (same per-statement-decision precedence as SetShards).
func (se *Session) SetShardPruning(on bool) { se.exec.Opts.ShardPruning = on }

// Stats returns the session's accumulated counters.
func (se *Session) Stats() SessionStats { return se.stats }

// Append ingests row tuples through the session's service. The session's
// own pinned snapshot (if any) is unaffected: the new rows become visible
// to it only after the next PinSnapshot (or immediately to unpinned runs,
// which bind the current epoch per execution).
func (se *Session) Append(table string, rows [][]int64) (catalog.AppendResult, error) {
	return se.svc.Append(table, rows)
}

// PinSnapshot pins the catalog's current epoch to this session: every
// subsequent Run binds against it — repeatable reads under concurrent
// ingest — until the next PinSnapshot or Unpin. Returns the pinned
// snapshot.
func (se *Session) PinSnapshot() *catalog.Snapshot {
	se.snap = se.svc.Snapshot()
	return se.snap
}

// Pinned returns the session's pinned snapshot, nil if unpinned.
func (se *Session) Pinned() *catalog.Snapshot { return se.snap }

// Unpin releases the session's pinned snapshot; subsequent runs bind the
// catalog's current epoch at execute time.
func (se *Session) Unpin() { se.snap = nil }

// Prepared is a statement readied for execution: a shared compiled
// artifact plus this statement's private run state.
type Prepared struct {
	Compiled *Compiled
	// State carries the statement's encoded literal bindings; nil for
	// parameterless artifacts.
	State *RunState
	// CacheHit reports that Prepare found the artifact already resolved
	// in the cache (joining an in-flight compile does not count).
	CacheHit bool
	// Fallback reports a direct, uncached compile of the original text.
	Fallback bool
	// Canon and Fingerprint identify the normalized statement — the
	// *rewritten* one when Rewrite is set.
	Canon       string
	Fingerprint uint64
	// Rewrite records a materialized-view rewrite applied at prepare
	// time; nil when the statement runs against its base tables.
	Rewrite *RewriteInfo
	// PrepareTime is the wall time Prepare took for this statement.
	PrepareTime time.Duration

	key qcache.Key
}

// RewriteInfo describes a subsumption rewrite riding on a Prepared.
type RewriteInfo struct {
	View string // serving view
	Base string // base table the original statement scanned
	SQL  string // rewritten statement text (what was compiled)
	Orig string // original statement text (the run-time fallback path)
}

// Prepare normalizes, caches/compiles and binds one statement.
func (se *Session) Prepare(sql string) (*Prepared, error) {
	p, err := se.svc.prepare(sql)
	if err != nil {
		return nil, err
	}
	se.stats.Queries++
	if p.CacheHit {
		se.stats.CacheHits++
	}
	if p.Fallback {
		se.stats.Fallbacks++
	}
	if p.Rewrite != nil {
		se.stats.Rewrites++
	}
	se.stats.Prepare += p.PrepareTime
	return p, nil
}

// Run executes a prepared statement under this session's run options,
// bound to the session's pinned snapshot when one is set.
//
// Rewritten statements carry the zero-stale-read guard: the bound
// snapshot's (base rows, view rows) pair must appear in the view's
// refresh ledger — exact prefix agreement on both sides — or the run
// transparently falls back to the original statement under the very
// same snapshot. A refreshed view can therefore never serve rows a
// snapshot should not see, and a snapshot taken mid-append can never
// read half-covered partials.
func (se *Session) Run(p *Prepared, cfg *pmu.Config) (*Result, error) {
	t0 := time.Now()
	if p.Rewrite != nil {
		// Rewritten artifacts always bind an explicit snapshot: the one
		// the consistency guard approved (pinned, or captured here).
		snap := se.snap
		if snap == nil {
			snap = se.svc.Snapshot()
		}
		run := p
		if !se.svc.views.ConsistentUnder(snap, p.Rewrite.View) {
			se.svc.views.NoteFallback()
			se.stats.RewriteFallbacks++
			base, err := se.svc.prepareOpt(p.Rewrite.Orig, false)
			if err != nil {
				return nil, err
			}
			run = base
		}
		bound := RunState{Snap: snap}
		if run.State != nil {
			bound.Params = run.State.Params
		}
		res, err := se.exec.Run(run.Compiled, &bound, cfg)
		se.stats.Execute += time.Since(t0)
		return res, err
	}
	rs := p.State
	if se.snap != nil {
		bound := RunState{Snap: se.snap}
		if rs != nil {
			bound.Params = rs.Params
		}
		rs = &bound
	}
	res, err := se.exec.Run(p.Compiled, rs, cfg)
	se.stats.Execute += time.Since(t0)
	return res, err
}

// Execute prepares and runs a statement in one call.
func (se *Session) Execute(sql string, cfg *pmu.Config) (*Prepared, *Result, error) {
	p, err := se.Prepare(sql)
	if err != nil {
		return nil, nil, err
	}
	res, err := se.Run(p, cfg)
	return p, res, err
}

// prepare is the service-side statement path: normalize → subsumption
// rewrite → cache lookup (single-flight compile on miss) → argument
// encoding.
func (s *Service) prepare(sql string) (*Prepared, error) {
	return s.prepareOpt(sql, true)
}

// prepareOpt is prepare with the rewrite hook gated: the run-time
// consistency fallback re-prepares the *original* text with the
// rewriter off, so a stale view can never bounce a statement back to
// itself.
func (s *Service) prepareOpt(sql string, allowRewrite bool) (*Prepared, error) {
	t0 := time.Now()
	fp, err := sqlparse.Normalize(sql)
	if err != nil {
		return nil, err
	}
	// Subsumption rewrite (internal/mview): with no views registered
	// this is one atomic load. On a match the rewritten text replaces
	// the statement and flows through the same normalize → cache →
	// compile path, so every textual variant of a query family lands on
	// ONE rewritten canonical form and ONE cached artifact. The view
	// generation and catalog version are captured BEFORE the rewrite
	// decision: a concurrent CreateView/DropView between the decision
	// and the key read would otherwise cache a decision made under the
	// old generation against the new generation's key, pinning it past
	// the bump.
	viewGen := s.views.Generation()
	catVer := s.cat.Version()
	var rw *mview.Rewrite
	if allowRewrite {
		if r, ok := s.views.Rewrite(fp); ok {
			if rfp, rerr := sqlparse.Normalize(r.SQL); rerr == nil {
				rw = r
				fp = rfp
			}
		}
	}
	key := qcache.Key{
		Fingerprint: fp.Hash,
		Canon:       fp.Canon,
		Options:     s.optDigest,
		Catalog:     catVer,
		Generation:  s.gens.Current(fp.Hash),
		View:        viewGen,
	}
	comp := s.compiler()
	cq, hit, err := s.cache.GetOrCompute(key, func() (*Compiled, error) {
		q, err := sqlparse.Parse(fp.Canon)
		if err != nil {
			return nil, err
		}
		// Plan under the history-corrected estimator and let the cost
		// model pick the physical knobs (bloom filters, partition count)
		// for this statement. All of this happens inside the compute
		// function only: the cache key is untouched, so the hit path
		// stays a pure lookup, and staleness is routed through PGO
		// generations — Adapt bumps the generation when observed
		// cardinalities shift materially, which changes the key and
		// forces this compute to run again under the updated history.
		pl, err := plan.PlanWith(s.cat, q, s.estimator())
		if err != nil {
			return nil, err
		}
		eff := s.opts
		model := cost.Annotate(pl)
		eff.BloomFilters, eff.Partitions = cost.Decide(model, eff.BloomFilters, eff.Partitions)
		var hot *pgo.Hotness
		if key.Generation > 0 {
			hot = s.gens.Hotness(fp.Hash)
		}
		cq, err := (&Compiler{Cat: s.cat, Opts: eff}).CompilePlanGuided(pl, hot)
		if err != nil {
			return nil, err
		}
		if s.opts.Shards >= 1 {
			// Per-statement shard knobs ride on the artifact: decided
			// once per compile from the history-corrected model, read by
			// every executing session (warm prepares stay a pure lookup).
			sh, prune := cost.DecideShards(model, s.opts.Shards, s.opts.ShardPruning)
			cq.Shard = &ShardDecision{Shards: sh, Pruning: prune}
		}
		return cq, nil
	})
	if err != nil {
		// The parameterized form didn't compile — typically a literal in
		// a position the planner must see at plan time. Recompile the
		// original text directly (uncached) so semantics and error
		// messages match the classic path exactly; if that also fails,
		// the direct error is the one the user should see (it names the
		// original literals, not $N placeholders).
		direct, derr := comp.CompileSQL(sql)
		if derr != nil {
			return nil, derr
		}
		s.fallbacks.Add(1)
		return &Prepared{Compiled: direct, Fallback: true, PrepareTime: time.Since(t0)}, nil
	}
	p := &Prepared{Compiled: cq, CacheHit: hit, Canon: fp.Canon, Fingerprint: fp.Hash, key: key}
	if rw != nil {
		p.Rewrite = &RewriteInfo{View: rw.View, Base: rw.Base, SQL: rw.SQL, Orig: sql}
	} else if allowRewrite && s.views.AutoEnabled() {
		// Heat-based admission: a summarizable statement that missed the
		// rewriter accumulates heat — its own miss count plus the
		// cardinality history's touch count for its plan (the profile
		// signal Adapt feeds). Crossing the threshold admits a
		// generalizing view automatically.
		s.views.NoteHeat(fp, s.history.Touches(plan.Canon(cq.Plan)))
	}
	if len(cq.Plan.Params) > 0 || len(fp.Args) > 0 {
		vals, err := EncodeParams(cq.Plan.Params, fp.Args)
		if err != nil {
			return nil, err
		}
		p.State = &RunState{Params: vals}
	}
	p.PrepareTime = time.Since(t0)
	return p, nil
}

// EncodeParams encodes literal argument values against a plan's
// parameter manifest, applying exactly the encoding a directly-compiled
// literal would have received: numbers stay raw (dates and dictionary
// codes compare as their int64 encodings), string arguments resolve
// through the compared column's date format or dictionary, and a
// dictionary miss encodes as -1 — an ID no row carries.
func EncodeParams(infos []plan.ParamInfo, args []sqlparse.Literal) ([]int64, error) {
	if len(args) != len(infos) {
		return nil, fmt.Errorf("engine: query expects %d bound parameters, %d supplied", len(infos), len(args))
	}
	vals := make([]int64, len(args))
	for i, a := range args {
		switch a.Kind {
		case sqlparse.LitNum:
			vals[i] = a.Num
		case sqlparse.LitStr:
			switch infos[i].Type {
			case catalog.TDate:
				v, err := catalog.ParseDate(a.Str)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			case catalog.TStr:
				if infos[i].Dict == nil {
					vals[i] = -1
					break
				}
				if id, ok := infos[i].Dict.Lookup(a.Str); ok {
					vals[i] = id
				} else {
					vals[i] = -1 // no row can match
				}
			default:
				return nil, fmt.Errorf("engine: string literal %q compared with %s column", a.Str, infos[i].Type)
			}
		default:
			return nil, fmt.Errorf("engine: unknown literal kind %d", a.Kind)
		}
	}
	return vals, nil
}

// Adapt runs one adaptive profile → recompile → re-run cycle for a
// statement through this session. When the tuned binary wins, its
// guiding profile is promoted to a new PGO generation: the tuned
// artifact is cached under the new generation's key and every older
// generation of the fingerprint is invalidated, so the next Prepare —
// from any session — serves the faster binary.
func (se *Session) Adapt(sql string, cfg *pmu.Config) (*AdaptiveResult, error) {
	p, err := se.Prepare(sql)
	if err != nil {
		return nil, err
	}
	ar, err := runAdaptive(se.svc.compiler(), &se.exec, p.Compiled, p.State, cfg)
	if err != nil {
		return nil, err
	}
	if !p.Fallback && ar.Speedup() > 1 {
		hot := pgo.FromProfile(ar.ProfileRun.Profile, p.Compiled.Code.NMap)
		gen := se.svc.gens.Promote(p.Fingerprint, hot)
		nk := p.key
		nk.Generation = gen
		se.svc.cache.Put(nk, ar.Recompiled)
		se.svc.cache.Invalidate(func(k qcache.Key) bool {
			return k.Fingerprint == nk.Fingerprint && k.Canon == nk.Canon &&
				k.Options == nk.Options && k.Catalog == nk.Catalog &&
				k.Generation < gen
		})
	}
	// Close the cardinality loop: feed this run's observed per-operator
	// row counts into the shared history. When the corrected estimates
	// would actually change the served artifact — a different physical
	// plan shape or different bloom/partition decisions — the
	// fingerprint's generation is bumped (after any promotion above, so
	// a tuned artifact cannot pin a plan shape the history now
	// contradicts) and the next Prepare re-plans under the history.
	// Materially shifted observations that change nothing physical leave
	// the generation alone: the cached artifact is still the plan the
	// history would pick.
	//
	// Epoch staleness rides the same path: when streaming appends have
	// drifted any scanned table's visible rows past the threshold relative
	// to what the artifact's planner saw, the generation is bumped
	// unconditionally — the recompile re-plans over the current epoch's
	// statistics (ColStats are per-row-count) and re-freezes the planned
	// row counts, resetting the drift baseline.
	if !p.Fallback {
		material, err := se.observeTrue(p, ar)
		if err != nil {
			return nil, err
		}
		drifted := staleByDrift(p.Compiled, se.svc.cat.Snapshot())
		if drifted || (material && se.svc.replanChanges(p)) {
			gen := se.svc.gens.Bump(p.Fingerprint)
			se.svc.cache.Invalidate(func(k qcache.Key) bool {
				return k.Fingerprint == p.key.Fingerprint && k.Canon == p.key.Canon &&
					k.Options == p.key.Options && k.Generation < gen
			})
		}
	}
	return ar, nil
}

// StalenessDriftThreshold is the relative row-count drift — per scanned
// table, |visible − planned| / planned — past which Session.Adapt declares
// an artifact stale and bumps its PGO generation.
const StalenessDriftThreshold = 0.3

// staleByDrift reports whether any table an artifact scans has drifted
// past StalenessDriftThreshold relative to the row count its planner saw.
func staleByDrift(cq *Compiled, snap *catalog.Snapshot) bool {
	for _, tb := range cq.tables {
		v := snap.View(tb.table)
		if v == nil {
			continue
		}
		rows := int64(v.Rows)
		if tb.planned == 0 {
			if rows > 0 {
				return true
			}
			continue
		}
		d := rows - tb.planned
		if d < 0 {
			d = -d
		}
		if float64(d) >= StalenessDriftThreshold*float64(tb.planned) {
			return true
		}
	}
	return false
}

// replanChanges re-plans a prepared statement's canon under the current
// history and reports whether the result differs physically from the
// cached artifact: a different plan.Shape (join order, build sides,
// group-join fusion) or different cost-model knob decisions. The cached
// plan's own frozen estimates reproduce its original knob decision, so
// no extra state needs to ride in the cache.
func (s *Service) replanChanges(p *Prepared) bool {
	q, err := sqlparse.Parse(p.Canon)
	if err != nil {
		return false
	}
	pl, err := plan.PlanWith(s.cat, q, s.estimator())
	if err != nil {
		return false
	}
	if plan.Shape(pl) != plan.Shape(p.Compiled.Plan) {
		return true
	}
	om, nm := cost.Annotate(p.Compiled.Plan), cost.Annotate(pl)
	ob, op := cost.Decide(om, s.opts.BloomFilters, s.opts.Partitions)
	nb, np := cost.Decide(nm, s.opts.BloomFilters, s.opts.Partitions)
	os, oprune := cost.DecideShards(om, s.opts.Shards, s.opts.ShardPruning)
	ns, nprune := cost.DecideShards(nm, s.opts.Shards, s.opts.ShardPruning)
	return ob != nb || op != np || os != ns || oprune != nprune
}

// observeTrue collects a prepared statement's true per-operator
// cardinalities and feeds them into the service history. When the service
// already compiles with TupleCounters the adaptive baseline run carried
// the counts; otherwise a counter-instrumented twin of the same plan is
// compiled and run once under this session's options. Counter folding
// makes the counts worker-count-invariant either way.
func (se *Session) observeTrue(p *Prepared, ar *AdaptiveResult) (bool, error) {
	cq, counts := p.Compiled, ar.Baseline.TupleCounts
	if len(counts) == 0 {
		opts := se.svc.opts
		opts.TupleCounters = true
		twin, err := (&Compiler{Cat: se.svc.cat, Opts: opts}).CompilePlanGuided(p.Compiled.Plan, nil)
		if err != nil {
			return false, err
		}
		// The twin observes *full* cardinalities: pin it unsharded so
		// semi-join pruning cannot shrink a scan's observed row count
		// below what the planner should estimate for it.
		twin.Shard = &ShardDecision{}
		res, err := se.exec.Run(twin, p.State, nil)
		if err != nil {
			return false, err
		}
		cq, counts = twin, res.TupleCounts
	}
	return cost.ObserveTrueRows(se.svc.history, cq.Plan, cq.Pipe, counts), nil
}
