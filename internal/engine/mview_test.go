package engine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/mview"
	"repro/internal/xrand"
)

// mviewCatalog builds the rewrite-soundness fixture: m(a, b, v) with a
// in [0,8), b in [0,16), v in [-100,100] — 128 possible (a,b) groups
// under `rows` base rows, so a view keyed by (a,b) is far smaller than
// its base and passes the cost gate.
func mviewCatalog(r *xrand.Rand, rows int) *catalog.Catalog {
	c := catalog.New()
	tb := catalog.NewTable("m")
	a := tb.AddCol("a", catalog.TInt)
	b := tb.AddCol("b", catalog.TInt)
	v := tb.AddCol("v", catalog.TInt)
	for i := 0; i < rows; i++ {
		a.Data = append(a.Data, r.Int64Range(0, 8))
		b.Data = append(b.Data, r.Int64Range(0, 16))
		v.Data = append(v.Data, r.Int64Range(-100, 101))
	}
	c.Add(tb)
	return c
}

// randMViewQuery draws one summarizable aggregate statement over m:
// a random group-key subset (possibly scalar), random interval or
// equality predicates on the key columns, a random non-empty aggregate
// subset, ORDER BY covering all keys, and an occasional LIMIT.
func randMViewQuery(r *xrand.Rand) string {
	keySets := [][]string{{}, {"a"}, {"b"}, {"a", "b"}, {"b", "a"}}
	keys := keySets[r.Intn(len(keySets))]
	aggPool := []string{"sum(v) as s", "count(*) as n", "min(v) as mn", "max(v) as mx"}
	perm := r.Perm(len(aggPool))
	naggs := 1 + r.Intn(len(aggPool))

	var sel []string
	sel = append(sel, keys...)
	for _, i := range perm[:naggs] {
		sel = append(sel, aggPool[i])
	}
	var b strings.Builder
	b.WriteString("select ")
	b.WriteString(strings.Join(sel, ", "))
	b.WriteString(" from m")

	var preds []string
	for _, pc := range []struct {
		col string
		max int64
	}{{"a", 8}, {"b", 16}} {
		switch r.Intn(3) {
		case 0: // no predicate on this column
		case 1: // equality, sometimes outside the domain (empty result)
			preds = append(preds, fmt.Sprintf("%s = %d", pc.col, r.Int64Range(0, pc.max+2)))
		case 2: // range, spelled as a pair or as BETWEEN
			lo := r.Int64Range(0, pc.max)
			hi := r.Int64Range(lo, pc.max+1)
			if r.Bool(0.5) {
				preds = append(preds, fmt.Sprintf("%s between %d and %d", pc.col, lo, hi))
			} else {
				preds = append(preds, fmt.Sprintf("%s >= %d and %s <= %d", pc.col, lo, pc.col, hi))
			}
		}
	}
	if len(preds) > 0 {
		b.WriteString(" where ")
		b.WriteString(strings.Join(preds, " and "))
	}
	if len(keys) > 0 {
		b.WriteString(" group by ")
		b.WriteString(strings.Join(keys, ", "))
		b.WriteString(" order by ")
		b.WriteString(strings.Join(keys, ", "))
		if r.Bool(0.2) {
			fmt.Fprintf(&b, " limit %d", 1+r.Intn(5))
		}
	}
	return b.String()
}

// runBothWays executes one statement through the rewriter and directly
// against the base table, under the same session (and thus the same
// pinned snapshot when one is set), and demands byte-identical rows and
// column headers.
func runBothWays(t *testing.T, se *Session, sql string) (rewritten bool) {
	t.Helper()
	pv, err := se.Prepare(sql)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	rv, err := se.Run(pv, nil)
	if err != nil {
		t.Fatalf("run (view path) %q: %v", sql, err)
	}
	pb, err := se.svc.prepareOpt(sql, false)
	if err != nil {
		t.Fatalf("prepare (base path) %q: %v", sql, err)
	}
	rb, err := se.Run(pb, nil)
	if err != nil {
		t.Fatalf("run (base path) %q: %v", sql, err)
	}
	if !reflect.DeepEqual(rv.Rows, rb.Rows) {
		t.Fatalf("rows diverge for %q (rewritten=%v):\nview: %v\nbase: %v",
			sql, pv.Rewrite != nil, rv.Rows, rb.Rows)
	}
	if len(rv.Cols) != len(rb.Cols) {
		t.Fatalf("column count diverges for %q", sql)
	}
	for i := range rv.Cols {
		if rv.Cols[i].Name != rb.Cols[i].Name {
			t.Fatalf("column %d header diverges for %q: %q vs %q",
				i, sql, rv.Cols[i].Name, rb.Cols[i].Name)
		}
	}
	return pv.Rewrite != nil
}

// TestMViewRewriteSoundnessProperty is the acceptance property: random
// predicates and group-key subsets, across worker counts {0,1,4} and
// shard counts {1,4}, must produce byte-identical rows through the view
// and against the base table — including after a streaming append plus
// incremental refresh, with zero stale reads.
func TestMViewRewriteSoundnessProperty(t *testing.T) {
	r := xrand.New(0x5eed_317)
	cat := mviewCatalog(r, 6000)
	svc := NewService(cat, Options{}, 0)
	if _, err := svc.CreateView("mv", "select a, b, sum(v), min(v), max(v) from m group by a, b", mview.RefreshIncremental); err != nil {
		t.Fatal(err)
	}

	rewrites := 0
	queries := 0
	run := func(iters int) {
		for _, workers := range []int{0, 1, 4} {
			for _, shards := range []int{1, 4} {
				se := svc.NewSession()
				se.SetWorkers(workers)
				se.SetShards(shards)
				for i := 0; i < iters; i++ {
					sql := randMViewQuery(r)
					queries++
					if runBothWays(t, se, sql) {
						rewrites++
					}
				}
			}
		}
	}
	run(8)

	// Streaming append: the view goes stale; incremental policy catches
	// it up inside the next rewrite, append-only. Old and new snapshots
	// both keep exact coverage.
	var delta [][]int64
	for i := 0; i < 500; i++ {
		delta = append(delta, []int64{r.Int64Range(0, 8), r.Int64Range(0, 16), r.Int64Range(-100, 101)})
	}
	if _, err := svc.Append("m", delta); err != nil {
		t.Fatal(err)
	}
	run(8)

	if rewrites == 0 {
		t.Fatal("property ran without a single rewrite — the harness is vacuous")
	}
	if got := svc.Views().Fallbacks(); got != 0 {
		t.Fatalf("%d consistency fallbacks in a refresh-on-rewrite run; want 0", got)
	}
	t.Logf("property: %d/%d statements served by the view", rewrites, queries)
}

// TestMViewPinnedSnapshotsNeverReadStale drives the zero-stale-read
// guard through both outcomes: a snapshot pinned before an append keeps
// serving the view (its exact coverage pair stays in the ledger), and a
// snapshot pinned mid-append — base grown, view not yet refreshed —
// must transparently fall back to base execution under that very
// snapshot, never reading half-covered partials.
func TestMViewPinnedSnapshotsNeverReadStale(t *testing.T) {
	r := xrand.New(0xbad5eed)
	cat := mviewCatalog(r, 6000)
	svc := NewService(cat, Options{}, 0)
	// Lazy policy: rewrites serve only ledger-consistent snapshots and
	// never refresh on their own.
	if _, err := svc.CreateView("mv", "select a, sum(v), min(v), max(v) from m group by a", mview.RefreshLazy); err != nil {
		t.Fatal(err)
	}
	q := "select a, sum(v) as s, min(v) as mn from m group by a order by a"

	se := svc.NewSession()
	se.PinSnapshot()
	if !runBothWays(t, se, q) {
		t.Fatal("fresh lazy view must serve the pinned snapshot")
	}
	// Prepared while fresh: this artifact carries the rewrite and may be
	// run against any snapshot later — that is where the guard earns it.
	pv, err := se.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if pv.Rewrite == nil {
		t.Fatal("fresh lazy view must rewrite at prepare time")
	}

	// Append under the pin: the pinned snapshot still pairs exactly, so
	// the pre-append artifact keeps serving the view with no fallback.
	if _, err := svc.Append("m", [][]int64{{1, 2, 3}, {4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Run(pv, nil); err != nil {
		t.Fatal(err)
	}
	if se.Stats().RewriteFallbacks != 0 {
		t.Fatal("no fallback expected for the pre-append snapshot")
	}
	// New prepares now see a stale lazy view and stop rewriting — lazy
	// invalidation at the prepare boundary.
	pStale, err := se.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if pStale.Rewrite != nil {
		t.Fatal("stale lazy view must stop matching new prepares")
	}

	// A session pinned mid-append sees (grown base, old view): no ledger
	// pair. Running the pre-append rewritten artifact there must fall
	// back, and its rows must equal base execution under that snapshot.
	se2 := svc.NewSession()
	se2.PinSnapshot() // mid-append: grown base, unrefreshed view
	res, err := se2.Run(pv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if se2.Stats().RewriteFallbacks != 1 {
		t.Fatalf("mid-append snapshot must fall back, stats: %+v", se2.Stats())
	}
	pb, err := svc.prepareOpt(q, false)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := se2.Run(pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, rb.Rows) {
		t.Fatalf("fallback rows diverge from base execution:\n%v\n%v", res.Rows, rb.Rows)
	}
	if svc.Views().Fallbacks() == 0 {
		t.Fatal("manager must count the consistency fallback")
	}

	// Catch the view up; the current snapshot pairs again.
	if err := svc.RefreshView("mv"); err != nil {
		t.Fatal(err)
	}
	se3 := svc.NewSession()
	se3.PinSnapshot()
	if !runBothWays(t, se3, q) {
		t.Fatal("refreshed view must serve the post-refresh snapshot")
	}
	if se3.Stats().RewriteFallbacks != 0 {
		t.Fatal("post-refresh snapshot must not fall back")
	}
}

// TestMViewQCacheKeyContract pins the cache-key contract on the view
// axis: (1) all textual variants of a query family collapse onto ONE
// rewritten artifact; (2) an in-capacity append plus incremental
// refresh keeps that artifact warm (no recompile); (3) CreateView and
// DropView change the key and force a re-decision.
func TestMViewQCacheKeyContract(t *testing.T) {
	r := xrand.New(0xcafe)
	cat := mviewCatalog(r, 6000)
	svc := NewService(cat, Options{}, 0)
	if _, err := svc.CreateView("mv", "select a, sum(v) from m group by a", mview.RefreshIncremental); err != nil {
		t.Fatal(err)
	}
	se := svc.NewSession()

	// (1) One artifact for the whole family: different constants, same
	// rewritten canon.
	family := func(lo int64) string {
		return fmt.Sprintf("select a, sum(v) as s from m where a >= %d and a <= %d group by a order by a", lo, lo+3)
	}
	p0, err := se.Prepare(family(0))
	if err != nil {
		t.Fatal(err)
	}
	if p0.Rewrite == nil {
		t.Fatal("family must rewrite")
	}
	for lo := int64(1); lo < 5; lo++ {
		p, err := se.Prepare(family(lo))
		if err != nil {
			t.Fatal(err)
		}
		if p.Rewrite == nil || !p.CacheHit {
			t.Fatalf("family member lo=%d: rewrite=%v hit=%v — want one warm artifact", lo, p.Rewrite != nil, p.CacheHit)
		}
		if p.Canon != p0.Canon {
			t.Fatalf("family canons diverge:\n%s\n%s", p.Canon, p0.Canon)
		}
	}

	// (2) In-capacity append + incremental refresh: same catalog version,
	// same view generation → warm hit, zero recompiles.
	ver := svc.Catalog().Version()
	if _, err := svc.Append("m", [][]int64{{2, 3, 50}}); err != nil {
		t.Fatal(err)
	}
	p, err := se.Prepare(family(0)) // triggers the incremental refresh, then hits
	if err != nil {
		t.Fatal(err)
	}
	if svc.Catalog().Version() != ver {
		t.Fatal("in-capacity base append + view refresh must not bump the catalog version")
	}
	if p.Rewrite == nil || !p.CacheHit {
		t.Fatalf("append within capacity must keep the rewritten artifact warm: rewrite=%v hit=%v", p.Rewrite != nil, p.CacheHit)
	}
	if _, err := se.Run(p, nil); err != nil {
		t.Fatal(err)
	}
	if se.Stats().RewriteFallbacks != 0 {
		t.Fatal("refresh-on-rewrite must leave no stale pair for an unpinned run")
	}

	// (3) Dropping the view orphans the rewrite: the next prepare of the
	// same text recompiles against the base table.
	if err := svc.DropView("mv"); err != nil {
		t.Fatal(err)
	}
	p, err = se.Prepare(family(0))
	if err != nil {
		t.Fatal(err)
	}
	if p.Rewrite != nil {
		t.Fatal("dropped view must not serve")
	}
	if p.CacheHit {
		t.Fatal("view generation changed; the cached rewritten artifact must not be served")
	}
}

// TestMViewAutoAdmissionThroughService drives heat-based admission end
// to end: a hot summarizable family crosses the threshold, a
// generalizing view appears, and the family starts rewriting.
func TestMViewAutoAdmissionThroughService(t *testing.T) {
	r := xrand.New(0x60a1)
	cat := mviewCatalog(r, 6000)
	svc := NewService(cat, Options{}, 0)
	svc.Views().SetAutoAdmit(4, 1)
	se := svc.NewSession()
	family := func(lo int64) string {
		return fmt.Sprintf("select b, sum(v) as s from m where b >= %d and b <= %d group by b order by b", lo, lo+5)
	}
	sawRewrite := false
	for i := int64(0); i < 10; i++ {
		p, err := se.Prepare(family(i % 6))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := se.Run(p, nil); err != nil {
			t.Fatal(err)
		}
		if p.Rewrite != nil {
			sawRewrite = true
		}
	}
	if svc.Views().Len() != 1 {
		t.Fatalf("auto admission created %d views, want 1", svc.Views().Len())
	}
	if !sawRewrite {
		t.Fatal("the hot family never rewrote after admission")
	}
	if se.Stats().Rewrites == 0 {
		t.Fatal("session stats must count the rewrites")
	}
}
