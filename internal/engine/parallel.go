package engine

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/vm"
)

// Morsel-driven parallel execution (Umbra's execution model, which the
// paper's profiling explicitly supports: one PEBS buffer per hardware
// thread, merged bottom-up into one profile).
//
// The engine splits every pipeline's input domain into fixed-size morsels
// and runs them on N simulated worker CPUs. Each worker owns a *private*
// CPU — registers, tag register, branch predictor, caches, TSC — and a
// private heap that is refreshed from the canonical heap at every pipeline
// barrier, so build-side structures are effectively shared read-only while
// each morsel's writes land in a private partition. At the barrier the
// coordinator merges the partitions back into the canonical heap *in
// global morsel order*, which makes the canonical state — hash-table
// arenas, chain links, result rows — independent of the worker count and
// identical to what a single worker produces:
//
//   - result rows and join/group-join build entries append in morsel order,
//     relinked into the directory via the hash stored in each entry header
//     (ht_insert persists it exactly so chains can be rebuilt);
//   - group-by partitions upsert: a group seen before combines its
//     aggregate state (sum/count add, min/max fold — all integer, so
//     order-exact), an unseen group appends and head-inserts;
//   - group-join probes update build entries in place, so workers' deltas
//     against the phase-start snapshot are folded commutatively.
//
// Sampling: every worker carries its own PMU buffer stamped with its
// worker ID. The sampling countdown is re-armed per morsel with a seed
// derived from the global morsel index, so for deterministic count events
// (instructions retired, loads) the set of sampled instructions per morsel
// is a function of the morsel alone — any worker count yields the same
// merged per-operator counts, which the determinism suite asserts exactly.

// parWorker is one simulated core of the morsel scheduler.
type parWorker struct {
	id  int
	cpu *vm.CPU
	pmu *pmu.PMU
	err error
}

// RunParallel executes a compiled query with morsel-driven parallelism on
// the given number of worker CPUs. workers < 1 is clamped to 1. cfg arms
// one PMU per core (plus the coordinator's), merged into Result.Samples.
func (x *Executor) RunParallel(cq *Compiled, rs *RunState, workers int, cfg *pmu.Config) (*Result, error) {
	if workers < 1 {
		workers = 1
	}
	if cfg != nil {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	params, err := paramValues(cq, rs)
	if err != nil {
		return nil, err
	}
	morselSize := int64(x.Opts.MorselRows)
	if morselSize <= 0 {
		morselSize = DefaultMorselRows
	}
	budget := x.Opts.MaxInstructions
	if budget == 0 {
		budget = 4_000_000_000
	}
	prog := cq.Code.Program
	preludeEntry, err := funcEntry(prog, pipeline.PreludeFunc)
	if err != nil {
		return nil, err
	}

	// Coordinator: owns the canonical heap, runs the kernel prelude
	// (directory memsets) serially, then only merges.
	coord := vm.New(cq.heapSize)
	for _, cs := range cq.cols {
		for i, v := range cs.data {
			coord.WriteI64(cs.addr+int64(i)*8, v)
		}
	}
	coord.Load(prog)
	var coordPMU *pmu.PMU
	if cfg != nil {
		c0 := *cfg
		c0.Worker = 0
		coordPMU = pmu.New(c0)
		coordPMU.Attach(coord)
	}
	for _, w := range cq.writes {
		coord.WriteI64(w.addr, w.val)
	}
	// Parameters live in the canonical heap; workers inherit them with
	// every per-barrier heap refresh.
	for i, v := range params {
		coord.WriteI64(cq.Layout.ParamBase+int64(i)*8, v)
	}
	if cq.Layout.CounterBase != 0 {
		for i := int64(0); i < counterSlots; i++ {
			coord.WriteI64(cq.Layout.CounterBase+i*8, 0)
		}
	}
	if _, err := coord.CallFunction(preludeEntry, budget); err != nil {
		return nil, fmt.Errorf("engine: prelude failed: %w", err)
	}

	ws := make([]*parWorker, workers)
	for i := range ws {
		cpu := vm.New(cq.heapSize)
		cpu.Load(prog)
		w := &parWorker{id: i + 1, cpu: cpu}
		if cfg != nil {
			ci := *cfg
			ci.Worker = w.id
			w.pmu = pmu.New(ci)
			w.pmu.Attach(cpu)
		}
		ws[i] = w
	}

	wall := coord.TSC() // the prelude is serial coordinator work

	for pi := range cq.Pipe.Pipelines {
		info := &cq.Pipe.Pipelines[pi]
		entry, err := funcEntry(prog, info.Func)
		if err != nil {
			return nil, err
		}
		spans := PartitionMorsels(pipeDomain(cq, coord, info), morselSize)
		if len(spans) == 0 {
			continue
		}
		segs := make([][]byte, len(spans))
		costs := make([]uint64, len(spans))

		// Barrier entry: refresh every worker's private heap from the
		// canonical one (build sides become visible; sinks start clean).
		for _, w := range ws {
			copy(w.cpu.Heap, coord.Heap)
		}

		// Morsels are striped round-robin over the workers: morsel m runs
		// on core m mod N. A deterministic assignment keeps each worker's
		// microarchitectural history — and therefore its sample stream —
		// reproducible on any host; the pull-based work-queue discipline
		// is modeled in simulated time by makespan() below.
		var wg sync.WaitGroup
		for wi, w := range ws {
			wg.Add(1)
			go func(wi int, w *parWorker) {
				defer wg.Done()
				for m := wi; m < len(spans); m += len(ws) {
					if w.err != nil {
						return
					}
					t0 := w.cpu.TSC()
					seg, err := runMorsel(cq, w, info, entry, pi, spans[m], m, budget)
					if err != nil {
						w.err = err
						return
					}
					segs[m] = seg
					costs[m] = w.cpu.TSC() - t0
				}
			}(wi, w)
		}
		wg.Wait()
		for _, w := range ws {
			if w.err != nil {
				return nil, fmt.Errorf("engine: parallel execution failed: %w", w.err)
			}
		}

		// Wall clock: the phase takes as long as the pull-based schedule's
		// makespan in simulated time.
		wall += makespan(costs, workers)

		if err := mergePhase(cq, coord, info, segs, ws); err != nil {
			return nil, err
		}
	}

	stats := coord.Stats
	for _, w := range ws {
		addStats(&stats, &w.cpu.Stats)
	}
	res := &Result{
		Cols: cq.Plan.Out(), Stats: stats, CPU: coord, PMU: coordPMU,
		Workers: workers, WallCycles: wall,
	}
	res.Rows = readRows(cq, coord)
	sortRows(res.Rows, cq.Plan)
	if cq.Plan.Limit >= 0 && len(res.Rows) > cq.Plan.Limit {
		res.Rows = res.Rows[:cq.Plan.Limit]
	}

	if cfg != nil {
		buffers := [][]core.Sample{coordPMU.Samples()}
		for _, w := range ws {
			buffers = append(buffers, w.pmu.Samples())
		}
		res.WorkerSamples = buffers
		res.Samples = core.MergeSamples(buffers...)
		att := core.NewAttributor(cq.Pipe.Dict, cq.Code.NMap)
		res.Profile = core.BuildProfile(att, res.Samples)
	}
	if cq.Layout.CounterBase != 0 {
		res.TupleCounts = map[core.ComponentID]int64{}
		for _, task := range cq.Pipe.Registry.ByLevel(core.LevelTask) {
			if int64(task.ID) >= counterSlots {
				continue
			}
			if n := coord.ReadI64(cq.Layout.CounterBase + int64(task.ID)*8); n != 0 {
				res.TupleCounts[task.ID] = n
			}
		}
	}
	return res, nil
}

// makespan models the morsel scheduler's pull discipline in simulated
// time: morsels are taken in global order, each by the worker whose clock
// is lowest (i.e. the first to go idle); the phase ends when the busiest
// worker finishes. Deriving the wall clock from per-morsel costs instead
// of host scheduling keeps it meaningful on any host core count.
func makespan(costs []uint64, workers int) uint64 {
	clocks := make([]uint64, workers)
	for _, c := range costs {
		lo := 0
		for i := 1; i < workers; i++ {
			if clocks[i] < clocks[lo] {
				lo = i
			}
		}
		clocks[lo] += c
	}
	var max uint64
	for _, c := range clocks {
		if c > max {
			max = c
		}
	}
	return max
}

// pipeDomain returns the size of a pipeline's input domain: table rows for
// scan drivers, materialized entry count for arena drivers (read from the
// canonical heap, i.e. after the producing pipelines merged).
func pipeDomain(cq *Compiled, coord *vm.CPU, info *pipeline.PipelineInfo) int64 {
	if info.Driver.Kind == pipeline.DriverScan {
		return int64(info.Driver.Rows)
	}
	ht := info.Driver.HT
	cursor := coord.ReadI64(ht.Desc + codegen.HTDescCursor)
	return (cursor - ht.Arena) / ht.EntrySize
}

// runMorsel executes one morsel on a worker: stage the bounds, reset the
// sink partition, re-arm sampling deterministically, call the pipeline
// function, and snapshot the partition the morsel produced.
func runMorsel(cq *Compiled, w *parWorker, info *pipeline.PipelineInfo, entry, pipeIdx int, sp Span, morsel int, budget uint64) ([]byte, error) {
	lay := cq.Layout
	heap := w.cpu.Heap

	lo, hi := sp.Lo, sp.Hi
	if info.Driver.Kind == pipeline.DriverArena {
		ht := info.Driver.HT
		lo = ht.Arena + sp.Lo*ht.EntrySize
		hi = ht.Arena + sp.Hi*ht.EntrySize
	}
	putHeapI64(heap, lay.MorselStart(pipeIdx), lo)
	putHeapI64(heap, lay.MorselEnd(pipeIdx), hi)

	sink := &info.Sink
	switch sink.Kind {
	case pipeline.SinkOutput:
		putHeapI64(heap, lay.ResultDesc+codegen.AllocDescCursor, cq.resultBase)
	case pipeline.SinkJoinBuild, pipeline.SinkGJBuild:
		putHeapI64(heap, sink.HT.Desc+codegen.HTDescCursor, sink.HT.Arena)
	case pipeline.SinkGroupAgg:
		// Per-morsel private group table: clean directory + empty arena.
		putHeapI64(heap, sink.HT.Desc+codegen.HTDescCursor, sink.HT.Arena)
		clear(heap[sink.HT.Dir : sink.HT.Dir+sink.HT.DirSlots*8])
	}

	// The sampling epoch depends only on (pipeline, global morsel index):
	// count-event sample positions are then worker-independent.
	w.cpu.ReArm(uint64(pipeIdx)<<32 ^ uint64(morsel)*0x9e3779b97f4a7c15)

	if _, err := w.cpu.CallFunction(entry, budget); err != nil {
		return nil, fmt.Errorf("pipeline %d morsel %d (worker %d): %w", pipeIdx, morsel, w.id, err)
	}

	switch sink.Kind {
	case pipeline.SinkOutput:
		cur := heapI64(heap, lay.ResultDesc+codegen.AllocDescCursor)
		return append([]byte(nil), heap[cq.resultBase:cur]...), nil
	case pipeline.SinkJoinBuild, pipeline.SinkGJBuild, pipeline.SinkGroupAgg:
		cur := heapI64(heap, sink.HT.Desc+codegen.HTDescCursor)
		return append([]byte(nil), heap[sink.HT.Arena:cur]...), nil
	}
	return nil, nil // SinkGJProbe: in-place updates, merged from the heap
}

// mergePhase folds the per-morsel partitions back into the canonical heap
// in global morsel order, then folds the tuple-counter deltas.
func mergePhase(cq *Compiled, coord *vm.CPU, info *pipeline.PipelineInfo, segs [][]byte, ws []*parWorker) error {
	sink := &info.Sink
	switch sink.Kind {
	case pipeline.SinkOutput:
		cursorAddr := cq.Layout.ResultDesc + codegen.AllocDescCursor
		cur := coord.ReadI64(cursorAddr)
		for _, seg := range segs {
			if cur+int64(len(seg)) > cq.resultEnd {
				return fmt.Errorf("engine: result buffer overflow during merge")
			}
			copy(coord.Heap[cur:], seg)
			cur += int64(len(seg))
		}
		coord.WriteI64(cursorAddr, cur)

	case pipeline.SinkJoinBuild, pipeline.SinkGJBuild:
		// Append each entry in morsel order and head-insert it via the
		// hash ht_insert stored in the entry header — the exact insertion
		// sequence the serial run performs, so arena bytes and chain
		// links come out identical.
		ht := sink.HT
		mask := ht.DirSlots - 1
		cursorAddr := ht.Desc + codegen.HTDescCursor
		cur := coord.ReadI64(cursorAddr)
		es := int(ht.EntrySize)
		for _, seg := range segs {
			for off := 0; off+es <= len(seg); off += es {
				if cur+ht.EntrySize > ht.ArenaEnd {
					return fmt.Errorf("engine: hash-table arena overflow during merge")
				}
				copy(coord.Heap[cur:], seg[off:off+es])
				h := heapI64(seg, int64(off)+codegen.HTEntryHash)
				slotAddr := ht.Dir + (h&mask)*8
				coord.WriteI64(cur+codegen.HTEntryNext, coord.ReadI64(slotAddr))
				coord.WriteI64(slotAddr, cur)
				cur += ht.EntrySize
			}
		}
		coord.WriteI64(cursorAddr, cur)

	case pipeline.SinkGroupAgg:
		// Upsert each partition entry: combine aggregate state into an
		// existing group or append-and-link a new one. New groups appear
		// in global first-occurrence order, matching the serial run.
		ht := sink.HT
		mask := ht.DirSlots - 1
		cursorAddr := ht.Desc + codegen.HTDescCursor
		cur := coord.ReadI64(cursorAddr)
		es := int(ht.EntrySize)
		for _, seg := range segs {
			for off := 0; off+es <= len(seg); off += es {
				h := heapI64(seg, int64(off)+codegen.HTEntryHash)
				slotAddr := ht.Dir + (h&mask)*8
				addr := coord.ReadI64(slotAddr)
				for addr != 0 {
					match := true
					for k := 0; k < sink.NKeys; k++ {
						ko := sink.KeyOff + int64(k)*8
						if coord.ReadI64(addr+ko) != heapI64(seg, int64(off)+ko) {
							match = false
							break
						}
					}
					if match {
						break
					}
					addr = coord.ReadI64(addr + codegen.HTEntryNext)
				}
				if addr != 0 {
					combineAggs(coord, addr, seg[off:off+es], sink)
					continue
				}
				if cur+ht.EntrySize > ht.ArenaEnd {
					return fmt.Errorf("engine: hash-table arena overflow during merge")
				}
				copy(coord.Heap[cur:], seg[off:off+es])
				coord.WriteI64(cur+codegen.HTEntryNext, coord.ReadI64(slotAddr))
				coord.WriteI64(slotAddr, cur)
				cur += ht.EntrySize
			}
		}
		coord.WriteI64(cursorAddr, cur)

	case pipeline.SinkGJProbe:
		// Workers updated build entries in place; fold each worker's
		// delta against the phase-start snapshot (additive state) or the
		// value itself (min/max, which already include the base).
		ht := sink.HT
		cursor := coord.ReadI64(ht.Desc + codegen.HTDescCursor)
		n := cursor - ht.Arena
		base := append([]byte(nil), coord.Heap[ht.Arena:cursor]...)
		for _, w := range ws {
			for off := int64(0); off < n; off += ht.EntrySize {
				addr := ht.Arena + off
				mo := sink.MatchOff
				d := heapI64(w.cpu.Heap, addr+mo) - heapI64(base, off+mo)
				if d != 0 {
					coord.WriteI64(addr+mo, coord.ReadI64(addr+mo)+d)
				}
				for i, fn := range sink.Aggs {
					ao := sink.AggOffs[i]
					wv := heapI64(w.cpu.Heap, addr+ao)
					switch fn {
					case plan.AggSum, plan.AggCount:
						coord.WriteI64(addr+ao, coord.ReadI64(addr+ao)+wv-heapI64(base, off+ao))
					case plan.AggAvg:
						coord.WriteI64(addr+ao, coord.ReadI64(addr+ao)+wv-heapI64(base, off+ao))
						wc := heapI64(w.cpu.Heap, addr+ao+8)
						coord.WriteI64(addr+ao+8, coord.ReadI64(addr+ao+8)+wc-heapI64(base, off+ao+8))
					case plan.AggMin:
						if wv < coord.ReadI64(addr+ao) {
							coord.WriteI64(addr+ao, wv)
						}
					case plan.AggMax:
						if wv > coord.ReadI64(addr+ao) {
							coord.WriteI64(addr+ao, wv)
						}
					}
				}
			}
		}
	}

	// Tuple counters: fold each worker's per-phase delta. The coordinator
	// was idle during the phase, so its counters are the phase baseline.
	if cb := cq.Layout.CounterBase; cb != 0 {
		for s := int64(0); s < counterSlots; s++ {
			baseV := coord.ReadI64(cb + s*8)
			total := baseV
			for _, w := range ws {
				total += heapI64(w.cpu.Heap, cb+s*8) - baseV
			}
			if total != baseV {
				coord.WriteI64(cb+s*8, total)
			}
		}
	}
	return nil
}

// combineAggs folds one partition entry's aggregate state into the
// canonical group entry at dst. All state is integer, so the fold is
// exact regardless of morsel boundaries.
func combineAggs(coord *vm.CPU, dst int64, entry []byte, sink *pipeline.SinkInfo) {
	for i, fn := range sink.Aggs {
		off := sink.AggOffs[i]
		v := heapI64(entry, off)
		switch fn {
		case plan.AggSum, plan.AggCount:
			coord.WriteI64(dst+off, coord.ReadI64(dst+off)+v)
		case plan.AggAvg:
			coord.WriteI64(dst+off, coord.ReadI64(dst+off)+v)
			cnt := heapI64(entry, off+8)
			coord.WriteI64(dst+off+8, coord.ReadI64(dst+off+8)+cnt)
		case plan.AggMin:
			if v < coord.ReadI64(dst+off) {
				coord.WriteI64(dst+off, v)
			}
		case plan.AggMax:
			if v > coord.ReadI64(dst+off) {
				coord.WriteI64(dst+off, v)
			}
		}
	}
}

// funcEntry resolves a generated function's entry point.
func funcEntry(prog *isa.Program, name string) (int, error) {
	for i := range prog.Funcs {
		if prog.Funcs[i].Name == name {
			return prog.Funcs[i].Entry, nil
		}
	}
	return 0, fmt.Errorf("engine: no symbol %q in program", name)
}

// heapI64 reads a little-endian int64 from a raw byte region.
func heapI64(b []byte, off int64) int64 {
	return int64(binary.LittleEndian.Uint64(b[off:]))
}

// putHeapI64 writes a little-endian int64 into a raw byte region.
func putHeapI64(b []byte, off, v int64) {
	binary.LittleEndian.PutUint64(b[off:], uint64(v))
}

// addStats accumulates per-worker execution statistics.
func addStats(dst, src *vm.Stats) {
	dst.Instructions += src.Instructions
	dst.Cycles += src.Cycles
	dst.SampleCycles += src.SampleCycles
	dst.Loads += src.Loads
	dst.Stores += src.Stores
	dst.Branches += src.Branches
	dst.BranchMisses += src.BranchMisses
	dst.L1Hits += src.L1Hits
	dst.L2Hits += src.L2Hits
	dst.L3Hits += src.L3Hits
	dst.MemAccesses += src.MemAccesses
	dst.Calls += src.Calls
}
