package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/vm"
)

// Morsel-driven parallel execution (Umbra's execution model, which the
// paper's profiling explicitly supports: one PEBS buffer per hardware
// thread, merged bottom-up into one profile).
//
// The engine splits every pipeline's input domain into fixed-size morsels
// and runs them on N simulated worker CPUs. Each worker owns a *private*
// CPU — registers, tag register, branch predictor, caches, TSC — and a
// private heap that is refreshed from the canonical heap at every pipeline
// barrier, so build-side structures are effectively shared read-only while
// each morsel's writes land in a private partition. At the barrier the
// coordinator merges the partitions back into the canonical heap *in
// global morsel order*, which makes the canonical state — hash-table
// arenas, chain links, result rows — independent of the worker count and
// identical to what a single worker produces:
//
//   - result rows and join/group-join build entries append in morsel order,
//     relinked into the directory via the hash stored in each entry header
//     (ht_insert persists it exactly so chains can be rebuilt);
//   - group-by partitions upsert: a group seen before combines its
//     aggregate state (sum/count add, min/max fold — all integer, so
//     order-exact), an unseen group appends and head-inserts;
//   - group-join probes update build entries in place, so workers' deltas
//     against the phase-start snapshot are folded commutatively.
//
// Sampling: every worker carries its own PMU buffer stamped with its
// worker ID. The sampling countdown is re-armed per morsel with a seed
// derived from the global morsel index, so for deterministic count events
// (instructions retired, loads) the set of sampled instructions per morsel
// is a function of the morsel alone — any worker count yields the same
// merged per-operator counts, which the determinism suite asserts exactly.

// parWorker is one simulated core of the morsel scheduler.
type parWorker struct {
	id  int
	cpu *vm.CPU
	pmu *pmu.PMU
	err error
}

// Sampling-epoch phases: each generated-code invocation re-arms the PMU
// with a seed derived from (pipeline, index, phase) only — never the
// worker — so count-event sample streams are worker-count invariant.
// phaseRun keeps the exact seed formula of the original morsel scheduler.
const (
	phaseRun uint64 = iota
	phaseScatter
	phaseMerge
	phasePlace
)

func epochSeed(pipeIdx, idx int, phase uint64) uint64 {
	return uint64(pipeIdx)<<32 ^ uint64(idx)*0x9e3779b97f4a7c15 ^ phase<<56
}

// SinkOverflowError reports that a sink's output region cannot hold the
// merge's worst case. The merge pre-validates headroom before writing
// anything, so the canonical heap is untouched when this is returned.
type SinkOverflowError struct {
	Sink     string // pipeline name
	Region   string // "result buffer" or "hash-table arena"
	Needed   int64  // bytes the worst-case merge requires
	Capacity int64  // bytes the region holds
}

func (e *SinkOverflowError) Error() string {
	return fmt.Sprintf("engine: %s overflow merging sink of pipeline %q: need %d bytes, capacity %d",
		e.Region, e.Sink, e.Needed, e.Capacity)
}

// RunParallel executes a compiled query with morsel-driven parallelism on
// the given number of worker CPUs. workers < 1 is clamped to 1. cfg arms
// one PMU per core (plus the coordinator's), merged into Result.Samples.
func (x *Executor) RunParallel(cq *Compiled, rs *RunState, workers int, cfg *pmu.Config) (*Result, error) {
	if workers < 1 {
		workers = 1
	}
	if cfg != nil {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	params, err := paramValues(cq, rs)
	if err != nil {
		return nil, err
	}
	morselSize := int64(x.Opts.MorselRows)
	if morselSize <= 0 {
		morselSize = DefaultMorselRows
	}
	budget := x.Opts.MaxInstructions
	if budget == 0 {
		budget = 4_000_000_000
	}
	prog := cq.Code.Program
	preludeEntry, err := funcEntry(prog, pipeline.PreludeFunc)
	if err != nil {
		return nil, err
	}

	// Coordinator: owns the canonical heap, runs the kernel prelude
	// (directory memsets) serially, then only merges. Its heap binds the
	// run's storage snapshot — column prefixes and row counts staged like
	// parameters — and workers inherit the binding with every per-barrier
	// heap refresh.
	snap := cq.snapshotFor(rs)
	coord := vm.New(cq.heapSize)
	if err := stageSnapshot(cq, coord, snap); err != nil {
		return nil, err
	}
	coord.Load(prog)
	var coordPMU *pmu.PMU
	if cfg != nil {
		c0 := *cfg
		c0.Worker = 0
		coordPMU = pmu.New(c0)
		coordPMU.Attach(coord)
	}
	for _, w := range cq.writes {
		coord.WriteI64(w.addr, w.val)
	}
	// Parameters live in the canonical heap; workers inherit them with
	// every per-barrier heap refresh.
	for i, v := range params {
		coord.WriteI64(cq.Layout.ParamBase+int64(i)*8, v)
	}
	if cq.Layout.CounterBase != 0 {
		for i := int64(0); i < counterSlots; i++ {
			coord.WriteI64(cq.Layout.CounterBase+i*8, 0)
		}
	}
	if _, err := coord.CallFunction(preludeEntry, budget); err != nil {
		return nil, fmt.Errorf("engine: prelude failed: %w", err)
	}

	ws := make([]*parWorker, workers)
	for i := range ws {
		cpu := vm.New(cq.heapSize)
		cpu.Load(prog)
		w := &parWorker{id: i + 1, cpu: cpu}
		if cfg != nil {
			ci := *cfg
			ci.Worker = w.id
			w.pmu = pmu.New(ci)
			w.pmu.Attach(cpu)
		}
		ws[i] = w
	}

	wall := coord.TSC() // the prelude is serial coordinator work
	var mergeCycles uint64

	// Cross-shard coordination (DESIGN.md §13): scan pipelines execute
	// the canonical surviving-morsel list of their table's zone map, with
	// per-shard journals and zero-cost skip events for pruned zones.
	shards, shardPruning := x.shardKnobs(cq)
	var shardStates []ShardState
	var skips []core.SkipEvent

	for pi := range cq.Pipe.Pipelines {
		info := &cq.Pipe.Pipelines[pi]
		entry, err := funcEntry(prog, info.Func)
		if err != nil {
			return nil, err
		}
		scatterEntry, mergeEntry, placeEntry := 0, 0, 0
		if info.Merge != nil {
			if scatterEntry, err = funcEntry(prog, info.Merge.ScatterFunc); err != nil {
				return nil, err
			}
			if mergeEntry, err = funcEntry(prog, info.Merge.MergeFunc); err != nil {
				return nil, err
			}
			if info.Merge.PlaceFunc != "" {
				if placeEntry, err = funcEntry(prog, info.Merge.PlaceFunc); err != nil {
					return nil, err
				}
			}
		}
		var spans []Span
		var shardOf []int
		if shards >= 1 && info.Driver.Kind == pipeline.DriverScan {
			se, err := buildShardExec(cq, coord, info, snap, params, shards, shardPruning, morselSize)
			if err != nil {
				return nil, err
			}
			spans, shardOf = se.spans, se.shardOf
			shardStates = append(shardStates, se.states...)
			skips = append(skips, se.skips...)
		} else {
			spans = PartitionMorsels(pipeDomain(cq, coord, info), morselSize)
		}
		if len(spans) == 0 {
			continue
		}
		segs := make([][]byte, len(spans))
		cnts := make([][]int64, len(spans))
		costs := make([]uint64, len(spans))

		// Barrier entry: refresh every worker's private heap from the
		// canonical one (build sides become visible; sinks start clean).
		for _, w := range ws {
			copy(w.cpu.Heap, coord.Heap)
		}

		// Morsels are striped round-robin over the workers: morsel m runs
		// on core m mod N. A deterministic assignment keeps each worker's
		// microarchitectural history — and therefore its sample stream —
		// reproducible on any host; the scheduling discipline is modeled
		// in simulated time by makespan() below.
		var wg sync.WaitGroup
		for wi, w := range ws {
			wg.Add(1)
			go func(wi int, w *parWorker) {
				defer wg.Done()
				for m := wi; m < len(spans); m += len(ws) {
					if w.err != nil {
						return
					}
					// Shard stamp: samples of this morsel land in the
					// owning shard's logical sub-buffer (0 = unsharded).
					stamp := 0
					if shardOf != nil {
						stamp = shardOf[m] + 1
					}
					t0 := w.cpu.TSC()
					seg, cn, err := runMorsel(cq, w, info, entry, scatterEntry, pi, spans[m], m, stamp, budget)
					if err != nil {
						w.err = err
						return
					}
					segs[m], cnts[m] = seg, cn
					costs[m] = w.cpu.TSC() - t0
				}
			}(wi, w)
		}
		wg.Wait()
		for _, w := range ws {
			if w.err != nil {
				return nil, fmt.Errorf("engine: parallel execution failed: %w", w.err)
			}
		}

		// Wall clock: the phase takes as long as the schedule's makespan
		// in simulated time.
		wall += makespan(costs, workers)

		if info.Merge != nil {
			mw, err := mergePartitioned(cq, coord, info, mergeEntry, placeEntry, segs, cnts, ws, budget)
			if err != nil {
				return nil, err
			}
			wall += mw
			mergeCycles += mw
		} else if err := mergePhase(cq, coord, info, segs, ws); err != nil {
			return nil, err
		}

		// Join bloom filters: each worker accumulated bits for its own
		// morsels; the canonical filter is their union, which is the same
		// bit set for any worker count (and identical to a serial run).
		if info.Sink.Kind == pipeline.SinkJoinBuild && info.Sink.HT.BloomBits > 0 {
			bb, n := info.Sink.HT.BloomBase, info.Sink.HT.BloomBits/8
			for _, w := range ws {
				for off := int64(0); off < n; off += 8 {
					v := codegen.HeapI64(coord.Heap, bb+off) | codegen.HeapI64(w.cpu.Heap, bb+off)
					codegen.PutHeapI64(coord.Heap, bb+off, v)
				}
			}
		}

		foldCounters(cq, coord, ws)
	}

	stats := coord.Stats
	for _, w := range ws {
		addStats(&stats, &w.cpu.Stats)
	}
	res := &Result{
		Cols: cq.Plan.Out(), Stats: stats, CPU: coord, PMU: coordPMU,
		Workers: workers, WallCycles: wall, MergeCycles: mergeCycles,
		Shards: shards, ShardStates: shardStates, Skips: skips,
		Epoch: snap.Epoch,
	}
	res.Rows = readRows(cq, coord)
	sortRows(res.Rows, cq.Plan)
	if cq.Plan.Limit >= 0 && len(res.Rows) > cq.Plan.Limit {
		res.Rows = res.Rows[:cq.Plan.Limit]
	}

	if cfg != nil {
		buffers := [][]core.Sample{coordPMU.Samples()}
		for _, w := range ws {
			buffers = append(buffers, w.pmu.Samples())
		}
		res.WorkerSamples = buffers
		res.Samples = core.MergeSamples(buffers...)
		att := core.NewAttributor(cq.Pipe.Dict, cq.Code.NMap)
		res.Profile = core.BuildProfile(att, res.Samples)
		// Pruned zones enter the merged profile as explicit zero-cost
		// skip events, keeping attribution complete over every table row.
		res.Profile.Skips = skips
	}
	if cq.Layout.CounterBase != 0 {
		res.TupleCounts = map[core.ComponentID]int64{}
		for _, task := range cq.Pipe.Registry.ByLevel(core.LevelTask) {
			if int64(task.ID) >= counterSlots {
				continue
			}
			if n := coord.ReadI64(cq.Layout.CounterBase + int64(task.ID)*8); n != 0 {
				res.TupleCounts[task.ID] = n
			}
		}
		// Same collector as the serial path: worker counter deltas were
		// folded into the canonical heap per phase (foldCounters), so the
		// attributed per-operator truth is worker-count invariant.
		res.PlanRows = cost.TrueRows(cq.Pipe, res.TupleCounts)
	}
	return res, nil
}

// lptAssign distributes task costs over workers with the LPT heuristic
// (longest processing time first): tasks are sorted by cost descending —
// stably, so equal costs keep index order and the assignment is
// deterministic — and each goes to the least-loaded worker. LPT's
// makespan is within 4/3 of optimal, versus 2 for arbitrary-order greedy,
// which matters exactly when costs are skewed (a giant morsel arriving
// last lands on the least-loaded worker instead of stacking onto a busy
// one). Returns the per-worker task index lists and the makespan.
func lptAssign(costs []uint64, workers int) ([][]int, uint64) {
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })
	assign := make([][]int, workers)
	clocks := make([]uint64, workers)
	for _, t := range order {
		lo := 0
		for i := 1; i < workers; i++ {
			if clocks[i] < clocks[lo] {
				lo = i
			}
		}
		assign[lo] = append(assign[lo], t)
		clocks[lo] += costs[t]
	}
	var max uint64
	for _, c := range clocks {
		if c > max {
			max = c
		}
	}
	return assign, max
}

// makespan models the morsel scheduler in simulated time: per-morsel
// costs are packed onto the workers with LPT and the phase ends when the
// busiest worker finishes. Deriving the wall clock from per-morsel costs
// instead of host scheduling keeps it meaningful on any host core count.
func makespan(costs []uint64, workers int) uint64 {
	_, m := lptAssign(costs, workers)
	return m
}

// pipeDomain returns the size of a pipeline's input domain: the staged
// row-count slot for scan drivers (the snapshot's visible rows — NOT the
// compile-time count, which an append may have outgrown), materialized
// entry count for arena drivers (read from the canonical heap, i.e. after
// the producing pipelines merged).
func pipeDomain(cq *Compiled, coord *vm.CPU, info *pipeline.PipelineInfo) int64 {
	if info.Driver.Kind == pipeline.DriverScan {
		if slot, ok := cq.Layout.RowsSlots[info.Driver.Alias]; ok {
			return coord.ReadI64(cq.Layout.StateBase + int64(slot)*8)
		}
		return int64(info.Driver.Rows)
	}
	ht := info.Driver.HT
	cursor := coord.ReadI64(ht.Desc + codegen.HTDescCursor)
	return (cursor - ht.Arena) / ht.EntrySize
}

// runMorsel executes one morsel on a worker: stage the bounds, reset the
// sink partition, re-arm sampling deterministically, call the pipeline
// function, and snapshot the partition the morsel produced. For a
// partitioned sink it additionally runs the generated scatter kernel on
// the same worker and snapshots the radix-scattered copy plus the
// per-partition entry counts instead of the raw segment.
func runMorsel(cq *Compiled, w *parWorker, info *pipeline.PipelineInfo, entry, scatterEntry, pipeIdx int, sp Span, morsel, shardStamp int, budget uint64) ([]byte, []int64, error) {
	lay := cq.Layout
	heap := w.cpu.Heap
	if w.pmu != nil {
		w.pmu.SetShard(shardStamp)
	}

	lo, hi := sp.Lo, sp.Hi
	if info.Driver.Kind == pipeline.DriverArena {
		ht := info.Driver.HT
		lo = ht.Arena + sp.Lo*ht.EntrySize
		hi = ht.Arena + sp.Hi*ht.EntrySize
	}
	codegen.PutHeapI64(heap, lay.MorselStart(pipeIdx), lo)
	codegen.PutHeapI64(heap, lay.MorselEnd(pipeIdx), hi)

	sink := &info.Sink
	switch sink.Kind {
	case pipeline.SinkOutput:
		codegen.PutHeapI64(heap, lay.ResultDesc+codegen.AllocDescCursor, cq.resultBase)
	case pipeline.SinkJoinBuild, pipeline.SinkGJBuild:
		codegen.PutHeapI64(heap, sink.HT.Desc+codegen.HTDescCursor, sink.HT.Arena)
	case pipeline.SinkGroupAgg:
		// Per-morsel private group table: clean directory + empty arena.
		codegen.PutHeapI64(heap, sink.HT.Desc+codegen.HTDescCursor, sink.HT.Arena)
		clear(heap[sink.HT.Dir : sink.HT.Dir+sink.HT.DirSlots*8])
	}

	// The sampling epoch depends only on (pipeline, global morsel index):
	// count-event sample positions are then worker-independent.
	w.cpu.ReArm(epochSeed(pipeIdx, morsel, phaseRun))

	if _, err := w.cpu.CallFunction(entry, budget); err != nil {
		return nil, nil, fmt.Errorf("pipeline %d morsel %d (worker %d): %w", pipeIdx, morsel, w.id, err)
	}

	if info.Merge != nil {
		// Scatter the fresh segment by hash partition (generated code, its
		// own deterministic sampling epoch; the cost lands in this morsel's
		// TSC window, so the run-phase makespan includes it).
		ht := sink.HT
		w.cpu.ReArm(epochSeed(pipeIdx, morsel, phaseScatter))
		if _, err := w.cpu.CallFunction(scatterEntry, budget); err != nil {
			return nil, nil, fmt.Errorf("pipeline %d morsel %d scatter (worker %d): %w", pipeIdx, morsel, w.id, err)
		}
		cur := codegen.HeapI64(heap, ht.Desc+codegen.HTDescCursor)
		cn := make([]int64, ht.Partitions)
		for p := int64(0); p < ht.Partitions; p++ {
			cn[p] = codegen.HeapI64(heap, ht.MergeCnt+p*8)
		}
		seg := append([]byte(nil), heap[ht.ScatterOut:ht.ScatterOut+(cur-ht.Arena)]...)
		return seg, cn, nil
	}

	switch sink.Kind {
	case pipeline.SinkOutput:
		cur := codegen.HeapI64(heap, lay.ResultDesc+codegen.AllocDescCursor)
		return append([]byte(nil), heap[cq.resultBase:cur]...), nil, nil
	case pipeline.SinkJoinBuild, pipeline.SinkGJBuild, pipeline.SinkGroupAgg:
		cur := codegen.HeapI64(heap, sink.HT.Desc+codegen.HTDescCursor)
		return append([]byte(nil), heap[sink.HT.Arena:cur]...), nil, nil
	}
	return nil, nil, nil // SinkGJProbe: in-place updates, merged from the heap
}

// mergePartitioned fans the merge of a partitioned sink out across the
// workers as generated partition-merge kernels (DESIGN.md §11). Each
// partition owns a disjoint directory slot range and a disjoint set of
// destination entries, so kernels run lock-free and their writes copy
// back to the canonical heap without coordination. Returns the merge
// phase's simulated makespan: the slowest worker's kernel cycles plus the
// coordinator's placement kernel (group-by sinks).
func mergePartitioned(cq *Compiled, coord *vm.CPU, info *pipeline.PipelineInfo, mergeEntry, placeEntry int, segs [][]byte, cnts [][]int64, ws []*parWorker, budget uint64) (uint64, error) {
	sink := &info.Sink
	ht := sink.HT
	es := ht.EntrySize
	P := int(ht.Partitions)
	pipeIdx := info.Index
	upsert := sink.Kind == pipeline.SinkGroupAgg

	// Global sequence base per morsel (prefix sums of entry counts).
	total := int64(0)
	segBase := make([]int64, len(segs))
	for m, seg := range segs {
		segBase[m] = total
		total += int64(len(seg)) / es
	}

	// Pre-validate worst-case arena headroom — every staged entry a fresh
	// group/entry — before staging anything, mirroring the SinkOutput
	// check. Structured, so callers can name the overflowing sink.
	if need := total * es; need > ht.ArenaEnd-ht.Arena {
		return 0, &SinkOverflowError{
			Sink: info.Name, Region: "hash-table arena",
			Needed: need, Capacity: ht.ArenaEnd - ht.Arena,
		}
	}

	// Stage each partition's entries in global sequence order (morsels are
	// already seq-ascending internally: the scatter is a stable counting
	// sort), with the side vector the kernel consumes: destination
	// addresses (insert sinks) or global sequence numbers (upsert sinks).
	staged := make([][]byte, P)
	vecs := make([][]int64, P)
	for m, seg := range segs {
		off := int64(0)
		for p := 0; p < P; p++ {
			for k := int64(0); k < cnts[m][p]; k++ {
				seq := segBase[m] + codegen.HeapI64(seg, off+codegen.HTEntryNext)
				if upsert {
					vecs[p] = append(vecs[p], seq)
				} else {
					vecs[p] = append(vecs[p], ht.Arena+seq*es)
				}
				staged[p] = append(staged[p], seg[off:off+es]...)
				off += es
			}
		}
	}

	// runRound fans one kernel round out across the workers: partitions
	// are LPT-assigned by staged entry count (empty ones cost nothing and
	// are skipped), each kernel call gets its own deterministic sampling
	// epoch, and collect reads the kernel's output off the worker heap.
	// Returns the round's simulated makespan (slowest worker).
	spp := int64(1) << ht.SlotShift // directory slots per partition
	runRound := func(entry int, phase uint64, staged [][]byte, vecs [][]int64, collect func(p int, heap []byte)) (uint64, error) {
		pcosts := make([]uint64, P)
		for p := range pcosts {
			pcosts[p] = uint64(len(vecs[p]))
		}
		assign, _ := lptAssign(pcosts, len(ws))
		clocks := make([]uint64, len(ws))
		errs := make([]error, len(ws))
		var wg sync.WaitGroup
		for wi, w := range ws {
			if len(assign[wi]) == 0 {
				continue
			}
			wg.Add(1)
			go func(wi int, w *parWorker, parts []int) {
				defer wg.Done()
				heap := w.cpu.Heap
				if w.pmu != nil {
					// The cross-shard combine is unsharded work.
					w.pmu.SetShard(0)
				}
				for _, p := range parts {
					if len(vecs[p]) == 0 {
						continue
					}
					nb := int64(len(staged[p]))
					copy(heap[ht.MergeSrc:], staged[p])
					for k, v := range vecs[p] {
						codegen.PutHeapI64(heap, ht.MergeVec+int64(k)*8, v)
					}
					codegen.PutHeapI64(heap, ht.MergeParam+pipeline.MPSrc, ht.MergeSrc)
					codegen.PutHeapI64(heap, ht.MergeParam+pipeline.MPEnd, ht.MergeSrc+nb)
					codegen.PutHeapI64(heap, ht.MergeParam+pipeline.MPVec, ht.MergeVec)
					codegen.PutHeapI64(heap, ht.MergeParam+pipeline.MPPart, int64(p))
					w.cpu.ReArm(epochSeed(pipeIdx, p, phase))
					t0 := w.cpu.TSC()
					if _, err := w.cpu.CallFunction(entry, budget); err != nil {
						errs[wi] = fmt.Errorf("pipeline %d partition %d merge (worker %d): %w", pipeIdx, p, w.id, err)
						return
					}
					clocks[wi] += w.cpu.TSC() - t0
					collect(p, heap)
				}
			}(wi, w, assign[wi])
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return 0, e
			}
		}
		var max uint64
		for _, c := range clocks {
			if c > max {
				max = c
			}
		}
		return max, nil
	}
	// copyBack moves a finished partition from a worker heap to the
	// canonical one: the entries at their destination addresses plus the
	// partition's directory slot range. Partitions are disjoint in both,
	// so concurrent copy-backs never collide.
	copyBack := func(p int, heap []byte, dsts []int64) {
		for _, dst := range dsts {
			copy(coord.Heap[dst:dst+es], heap[dst:dst+es])
		}
		dlo := ht.Dir + int64(p)*spp*8
		copy(coord.Heap[dlo:dlo+spp*8], heap[dlo:dlo+spp*8])
	}

	if !upsert {
		mergeWall, err := runRound(mergeEntry, phaseMerge, staged, vecs, func(p int, heap []byte) {
			copyBack(p, heap, vecs[p])
		})
		if err != nil {
			return 0, err
		}
		coord.WriteI64(ht.Desc+codegen.HTDescCursor, ht.Arena+total*es)
		return mergeWall, nil
	}

	// Group-by round 1: partition-local upsert. Kernels deduplicate their
	// staged entries into per-partition group lists (first-occurrence
	// order) and report each group's global sequence number.
	var mu sync.Mutex
	outs := make([][]byte, P)  // deduplicated groups per partition
	seqs := make([][]int64, P) // first-occurrence seq per group
	mergeWall, err := runRound(mergeEntry, phaseMerge, staged, vecs, func(p int, heap []byte) {
		outEnd := codegen.HeapI64(heap, ht.MergeParam+pipeline.MPOut)
		ng := (outEnd - ht.MergeOut) / es
		sq := make([]int64, ng)
		for k := int64(0); k < ng; k++ {
			sq[k] = codegen.HeapI64(heap, ht.MergeSeq+k*8)
		}
		mu.Lock()
		outs[p] = append([]byte(nil), heap[ht.MergeOut:outEnd]...)
		seqs[p] = sq
		mu.Unlock()
	})
	if err != nil {
		return 0, err
	}

	// Group-by round 2: parallel placement. Sequence numbers are unique,
	// so sorting the (partition, index) references by seq reproduces the
	// serial insertion order exactly — the group with global rank i lives
	// at Arena + i*es, just as in the serial run. A group's directory
	// slot determines its partition, so chains are partition-local and
	// the placement is another run of the insert kernel: partitions in
	// parallel on the workers, each re-linking its own slot range.
	type gref struct {
		seq int64
		p   int
		k   int64
	}
	var refs []gref
	for p := 0; p < P; p++ {
		for k, s := range seqs[p] {
			refs = append(refs, gref{s, p, int64(k)})
		}
	}
	sort.Slice(refs, func(a, b int) bool { return refs[a].seq < refs[b].seq })
	dsts := make([][]int64, P)
	for p := 0; p < P; p++ {
		dsts[p] = make([]int64, len(seqs[p]))
	}
	for i, rf := range refs {
		dsts[rf.p][rf.k] = ht.Arena + int64(i)*es
	}
	placeWall, err := runRound(placeEntry, phasePlace, outs, dsts, func(p int, heap []byte) {
		copyBack(p, heap, dsts[p])
	})
	if err != nil {
		return 0, err
	}
	coord.WriteI64(ht.Desc+codegen.HTDescCursor, ht.Arena+int64(len(refs))*es)
	return mergeWall + placeWall, nil
}

// mergePhase folds the per-morsel partitions back into the canonical heap
// in global morsel order. It serves the sinks that are always host-merged
// (result output, group-join probes) and is the serial fallback — and
// determinism oracle — for the partitioned sinks when Partitions is 0.
func mergePhase(cq *Compiled, coord *vm.CPU, info *pipeline.PipelineInfo, segs [][]byte, ws []*parWorker) error {
	sink := &info.Sink
	switch sink.Kind {
	case pipeline.SinkOutput:
		cursorAddr := cq.Layout.ResultDesc + codegen.AllocDescCursor
		cur := coord.ReadI64(cursorAddr)
		staged := int64(0)
		for _, seg := range segs {
			staged += int64(len(seg))
		}
		if cur+staged > cq.resultEnd {
			return &SinkOverflowError{
				Sink: info.Name, Region: "result buffer",
				Needed: cur + staged - cq.resultBase, Capacity: cq.resultEnd - cq.resultBase,
			}
		}
		for _, seg := range segs {
			copy(coord.Heap[cur:], seg)
			cur += int64(len(seg))
		}
		coord.WriteI64(cursorAddr, cur)

	case pipeline.SinkJoinBuild, pipeline.SinkGJBuild:
		// Append each entry in morsel order and head-insert it via the
		// hash ht_insert stored in the entry header — the exact insertion
		// sequence the serial run performs, so arena bytes and chain
		// links come out identical.
		ht := sink.HT
		mask := ht.DirSlots - 1
		cursorAddr := ht.Desc + codegen.HTDescCursor
		cur := coord.ReadI64(cursorAddr)
		es := int(ht.EntrySize)
		staged := int64(0)
		for _, seg := range segs {
			staged += int64(len(seg))
		}
		if cur+staged > ht.ArenaEnd {
			return &SinkOverflowError{
				Sink: info.Name, Region: "hash-table arena",
				Needed: cur + staged - ht.Arena, Capacity: ht.ArenaEnd - ht.Arena,
			}
		}
		for _, seg := range segs {
			for off := 0; off+es <= len(seg); off += es {
				copy(coord.Heap[cur:], seg[off:off+es])
				h := codegen.HeapI64(seg, int64(off)+codegen.HTEntryHash)
				slotAddr := ht.Dir + (h&mask)*8
				coord.WriteI64(cur+codegen.HTEntryNext, coord.ReadI64(slotAddr))
				coord.WriteI64(slotAddr, cur)
				cur += ht.EntrySize
			}
		}
		coord.WriteI64(cursorAddr, cur)

	case pipeline.SinkGroupAgg:
		// Upsert each partition entry: combine aggregate state into an
		// existing group or append-and-link a new one. New groups appear
		// in global first-occurrence order, matching the serial run.
		ht := sink.HT
		mask := ht.DirSlots - 1
		cursorAddr := ht.Desc + codegen.HTDescCursor
		cur := coord.ReadI64(cursorAddr)
		es := int(ht.EntrySize)
		// Worst-case headroom: every staged entry becomes a fresh group.
		// Checked up front so the canonical heap is never left half-merged.
		staged := int64(0)
		for _, seg := range segs {
			staged += int64(len(seg))
		}
		if cur+staged > ht.ArenaEnd {
			return &SinkOverflowError{
				Sink: info.Name, Region: "hash-table arena",
				Needed: cur + staged - ht.Arena, Capacity: ht.ArenaEnd - ht.Arena,
			}
		}
		for _, seg := range segs {
			for off := 0; off+es <= len(seg); off += es {
				h := codegen.HeapI64(seg, int64(off)+codegen.HTEntryHash)
				slotAddr := ht.Dir + (h&mask)*8
				addr := coord.ReadI64(slotAddr)
				for addr != 0 {
					match := true
					for k := 0; k < sink.NKeys; k++ {
						ko := sink.KeyOff + int64(k)*8
						if coord.ReadI64(addr+ko) != codegen.HeapI64(seg, int64(off)+ko) {
							match = false
							break
						}
					}
					if match {
						break
					}
					addr = coord.ReadI64(addr + codegen.HTEntryNext)
				}
				if addr != 0 {
					combineAggs(coord, addr, seg[off:off+es], sink)
					continue
				}
				copy(coord.Heap[cur:], seg[off:off+es])
				coord.WriteI64(cur+codegen.HTEntryNext, coord.ReadI64(slotAddr))
				coord.WriteI64(slotAddr, cur)
				cur += ht.EntrySize
			}
		}
		coord.WriteI64(cursorAddr, cur)

	case pipeline.SinkGJProbe:
		// Workers updated build entries in place; fold each worker's
		// delta against the phase-start snapshot (additive state) or the
		// value itself (min/max, which already include the base).
		ht := sink.HT
		cursor := coord.ReadI64(ht.Desc + codegen.HTDescCursor)
		n := cursor - ht.Arena
		base := append([]byte(nil), coord.Heap[ht.Arena:cursor]...)
		for _, w := range ws {
			for off := int64(0); off < n; off += ht.EntrySize {
				addr := ht.Arena + off
				mo := sink.MatchOff
				d := codegen.HeapI64(w.cpu.Heap, addr+mo) - codegen.HeapI64(base, off+mo)
				if d != 0 {
					coord.WriteI64(addr+mo, coord.ReadI64(addr+mo)+d)
				}
				for i, fn := range sink.Aggs {
					ao := sink.AggOffs[i]
					wv := codegen.HeapI64(w.cpu.Heap, addr+ao)
					switch fn {
					case plan.AggSum, plan.AggCount:
						coord.WriteI64(addr+ao, coord.ReadI64(addr+ao)+wv-codegen.HeapI64(base, off+ao))
					case plan.AggAvg:
						coord.WriteI64(addr+ao, coord.ReadI64(addr+ao)+wv-codegen.HeapI64(base, off+ao))
						wc := codegen.HeapI64(w.cpu.Heap, addr+ao+8)
						coord.WriteI64(addr+ao+8, coord.ReadI64(addr+ao+8)+wc-codegen.HeapI64(base, off+ao+8))
					case plan.AggMin:
						if wv < coord.ReadI64(addr+ao) {
							coord.WriteI64(addr+ao, wv)
						}
					case plan.AggMax:
						if wv > coord.ReadI64(addr+ao) {
							coord.WriteI64(addr+ao, wv)
						}
					}
				}
			}
		}
	}
	return nil
}

// foldCounters folds each worker's per-phase tuple-counter delta into the
// canonical heap. The coordinator was idle during the phase, so its
// counters are the phase baseline.
func foldCounters(cq *Compiled, coord *vm.CPU, ws []*parWorker) {
	cb := cq.Layout.CounterBase
	if cb == 0 {
		return
	}
	for s := int64(0); s < counterSlots; s++ {
		baseV := coord.ReadI64(cb + s*8)
		total := baseV
		for _, w := range ws {
			total += codegen.HeapI64(w.cpu.Heap, cb+s*8) - baseV
		}
		if total != baseV {
			coord.WriteI64(cb+s*8, total)
		}
	}
}

// combineAggs folds one partition entry's aggregate state into the
// canonical group entry at dst. All state is integer, so the fold is
// exact regardless of morsel boundaries.
func combineAggs(coord *vm.CPU, dst int64, entry []byte, sink *pipeline.SinkInfo) {
	for i, fn := range sink.Aggs {
		off := sink.AggOffs[i]
		v := codegen.HeapI64(entry, off)
		switch fn {
		case plan.AggSum, plan.AggCount:
			coord.WriteI64(dst+off, coord.ReadI64(dst+off)+v)
		case plan.AggAvg:
			coord.WriteI64(dst+off, coord.ReadI64(dst+off)+v)
			cnt := codegen.HeapI64(entry, off+8)
			coord.WriteI64(dst+off+8, coord.ReadI64(dst+off+8)+cnt)
		case plan.AggMin:
			if v < coord.ReadI64(dst+off) {
				coord.WriteI64(dst+off, v)
			}
		case plan.AggMax:
			if v > coord.ReadI64(dst+off) {
				coord.WriteI64(dst+off, v)
			}
		}
	}
}

// funcEntry resolves a generated function's entry point.
func funcEntry(prog *isa.Program, name string) (int, error) {
	for i := range prog.Funcs {
		if prog.Funcs[i].Name == name {
			return prog.Funcs[i].Entry, nil
		}
	}
	return 0, fmt.Errorf("engine: no symbol %q in program", name)
}

// addStats accumulates per-worker execution statistics.
func addStats(dst, src *vm.Stats) {
	dst.Instructions += src.Instructions
	dst.Cycles += src.Cycles
	dst.SampleCycles += src.SampleCycles
	dst.Loads += src.Loads
	dst.Stores += src.Stores
	dst.Branches += src.Branches
	dst.BranchMisses += src.BranchMisses
	dst.L1Hits += src.L1Hits
	dst.L2Hits += src.L2Hits
	dst.L3Hits += src.L3Hits
	dst.MemAccesses += src.MemAccesses
	dst.Calls += src.Calls
}
