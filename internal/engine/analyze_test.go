package engine

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/queries"
)

// TestTupleCountersMatchGroundTruth: the EXPLAIN ANALYZE counters must
// agree with counts computed host-side from the catalog.
func TestTupleCountersMatchGroundTruth(t *testing.T) {
	cat := testCatalog(t)
	opts := DefaultOptions()
	opts.TupleCounters = true
	e := New(cat, opts)

	w := queries.Fig9()
	cq, err := e.CompileQuery(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TupleCounts) == 0 {
		t.Fatal("no counters collected")
	}

	byName := map[string]int64{}
	for _, task := range cq.Pipe.Registry.ByLevel(core.LevelTask) {
		if n, ok := res.TupleCounts[task.ID]; ok {
			byName[task.Name] = n
		}
	}

	li, _ := cat.Table("lineitem")
	orders, _ := cat.Table("orders")
	cutoff, _ := catalog.ParseDate("1995-04-01")

	// Ground truth.
	passDates := map[int64]bool{}
	var filtered int64
	for i, d := range orders.Col("o_orderdate").Data {
		if d < cutoff {
			filtered++
			passDates[orders.Col("o_orderkey").Data[i]] = true
		}
	}
	var joined int64
	for _, k := range li.Col("l_orderkey").Data {
		if passDates[k] {
			joined++
		}
	}

	if got := byName["scan(tablescan lineitem)"]; got != int64(li.Rows()) {
		t.Errorf("lineitem scan counter = %d, want %d", got, li.Rows())
	}
	if got := byName["scan(tablescan orders)"]; got != int64(orders.Rows()) {
		t.Errorf("orders scan counter = %d, want %d", got, orders.Rows())
	}
	if got := byName["filter(tablescan orders)"]; got != filtered {
		t.Errorf("filter counter = %d, want %d", got, filtered)
	}
	if got := byName["build(join orders)"]; got != filtered {
		t.Errorf("build counter = %d, want %d", got, filtered)
	}
	if got := byName["probe(join orders)"]; got != joined {
		t.Errorf("probe counter = %d, want %d (join cardinality)", got, joined)
	}
	if got := byName["output(output)"]; got != int64(len(res.Rows)) {
		t.Errorf("output counter = %d, want %d rows", got, len(res.Rows))
	}
	if byName["aggregate(group by)"] != byName["htscan(group by)"] {
		t.Errorf("group insert (%d) != group scan (%d)",
			byName["aggregate(group by)"], byName["htscan(group by)"])
	}
}

// TestTupleCountersPreserveResults: instrumentation must not change query
// results.
func TestTupleCountersPreserveResults(t *testing.T) {
	cat := testCatalog(t)
	plain := New(cat, DefaultOptions())
	opts := DefaultOptions()
	opts.TupleCounters = true
	counted := New(cat, opts)
	for _, name := range []string{"intro-nogj", "intro", "fig9", "q16"} {
		w, _ := queries.ByName(name)
		c1, err := plain.CompileQuery(w.Query)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := counted.CompileQuery(w.Query)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := plain.Run(c1, nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := counted.Run(c2, nil)
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, r1.Rows, r2.Rows, len(c1.Plan.OrderBy) > 0)
	}
}
