package engine

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/vm"
)

func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	return datagen.Generate(datagen.Config{ScaleFactor: 0.05, Seed: 7})
}

// introQuery is the paper's Fig. 3a example.
func introQuery(noGroupJoin bool) *plan.Query {
	return &plan.Query{
		Tables: []plan.TableRef{{Name: "sales", Alias: "s"}, {Name: "products", Alias: "p"}},
		Where: []plan.Expr{
			plan.Eq(plan.Col("s.id"), plan.Col("p.id")),
			plan.Eq(plan.Col("p.category"), plan.Str("Chip")),
		},
		Select: []plan.SelectItem{
			{Expr: plan.Col("s.id")},
			{Expr: &plan.Agg{Fn: plan.AggAvg, Arg: &plan.Bin{
				Op: plan.OpDiv,
				L:  &plan.Bin{Op: plan.OpDiv, L: plan.Col("s.price"), R: plan.Col("s.vat_factor")},
				R:  plan.Col("s.prod_costs"),
			}}, Alias: "avg_margin"},
		},
		GroupBy: []plan.Expr{plan.Col("s.id")},
		Limit:   -1,
		Hints:   plan.Hints{NoGroupJoin: noGroupJoin},
	}
}

// refIntro computes the intro query's expected result host-side.
func refIntro(cat *catalog.Catalog) map[int64][2]int64 {
	products, _ := cat.Table("products")
	sales, _ := cat.Table("sales")
	chip, _ := products.Col("category").Dict.Lookup("Chip")
	chips := map[int64]bool{}
	for i, id := range products.Col("id").Data {
		if products.Col("category").Data[i] == chip {
			chips[id] = true
		}
	}
	agg := map[int64][2]int64{}
	id := sales.Col("id").Data
	price := sales.Col("price").Data
	vat := sales.Col("vat_factor").Data
	costs := sales.Col("prod_costs").Data
	for i := range id {
		if !chips[id[i]] {
			continue
		}
		v := price[i] / vat[i] / costs[i]
		a := agg[id[i]]
		a[0] += v
		a[1]++
		agg[id[i]] = a
	}
	return agg
}

func checkIntroResult(t *testing.T, res *Result, want map[int64][2]int64) {
	t.Helper()
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d groups, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Fatalf("unexpected group %d", row[0])
		}
		if avg := w[0] / w[1]; row[1] != avg {
			t.Fatalf("group %d: avg = %d, want %d", row[0], row[1], avg)
		}
	}
}

func TestIntroQueryGroupBy(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	cq, err := e.CompileQuery(introQuery(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, isGJ := cq.Plan.Input.(*plan.GroupJoin); isGJ {
		t.Fatal("NoGroupJoin hint ignored")
	}
	res, err := e.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkIntroResult(t, res, refIntro(cat))
}

func TestIntroQueryGroupJoin(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	cq, err := e.CompileQuery(introQuery(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, isGJ := cq.Plan.Input.(*plan.GroupJoin); !isGJ {
		t.Fatalf("expected group-join fusion, got %T", cq.Plan.Input)
	}
	res, err := e.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkIntroResult(t, res, refIntro(cat))
}

// TestIntroQueryProfiled runs the intro query under PMU sampling and
// sanity-checks the attribution: most samples must land on operators, and
// the aggregation must dominate the join (the paper's headline example).
func TestIntroQueryProfiled(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	cq, err := e.CompileQuery(introQuery(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, &pmu.Config{
		Event:  vm.EvCycles,
		Period: 500,
		Format: pmu.FormatIPTimeRegs,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkIntroResult(t, res, refIntro(cat))

	p := res.Profile
	if p.TotalSamples < 100 {
		t.Fatalf("too few samples: %d", p.TotalSamples)
	}
	att := p.Attribution()
	if att.AttributedPct < 90 {
		t.Fatalf("attribution too low: %+v", att)
	}
	costs := p.OperatorCosts()
	if len(costs) == 0 {
		t.Fatal("no operator costs")
	}
	byKind := map[string]float64{}
	for _, c := range costs {
		byKind[c.Kind] += c.Pct
	}
	// Both pipeline workhorses must carry substantial cost (the paper's
	// example splits roughly between aggregation and join; the exact
	// ratio depends on data selectivity).
	if byKind["group by"] < 10 {
		t.Errorf("group by share too small: %f%%", byKind["group by"])
	}
	if byKind["hash join"] < 10 {
		t.Errorf("hash join share too small: %f%%", byKind["hash join"])
	}
}

// TestOrderByLimit exercises host-side sorting.
func TestOrderByLimit(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	q := &plan.Query{
		Tables: []plan.TableRef{{Name: "orders", Alias: "o"}},
		Select: []plan.SelectItem{
			{Expr: plan.Col("o.o_orderkey")},
			{Expr: plan.Col("o.o_totalprice")},
		},
		OrderBy: []plan.OrderItem{{Expr: plan.Col("o.o_totalprice"), Desc: true}},
		Limit:   10,
	}
	cq, err := e.CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("limit: got %d rows", len(res.Rows))
	}
	orders, _ := cat.Table("orders")
	prices := append([]int64{}, orders.Col("o_totalprice").Data...)
	sort.Slice(prices, func(i, j int) bool { return prices[i] > prices[j] })
	var got []int64
	for _, r := range res.Rows {
		got = append(got, r[1])
	}
	if !reflect.DeepEqual(got, prices[:10]) {
		t.Fatalf("top-10 prices mismatch:\n got %v\nwant %v", got, prices[:10])
	}
}
