package engine

// Fuzzing the verifier itself: the suite must never panic and never
// report a false positive on a module mutated through arbitrary *legal*
// pass orders. This is the dual of TestPGOLineagePreservation (which
// fuzzes the passes against hand-rolled assertions): here the same
// harness drives the pass orders, and the verification suite is the
// oracle under test — after every single pass application the artifact
// must come back clean, and so must the final emitted program.

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/iropt"
	"repro/internal/pgo"
	"repro/internal/queries"
	"repro/internal/verify"
	"repro/internal/xrand"
)

// TestVerifyArtifactsOption compiles with the in-engine verification
// gate enabled — pipeline, every optimizer pass, and emit each run the
// suite — and then drives a full adaptive cycle the same way, so the
// profile-guided recompilation's artifacts are gated too.
func TestVerifyArtifactsOption(t *testing.T) {
	cat := testCatalog(t)
	for _, name := range pgoWorkloads {
		w, ok := queries.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.VerifyArtifacts = true
			e := New(cat, opts)
			cq, err := e.CompileQuery(w.Query)
			if err != nil {
				t.Fatalf("verified compile: %v", err)
			}
			if _, err := e.RunAdaptive(cq, nil); err != nil {
				t.Fatalf("verified adaptive cycle: %v", err)
			}
		})
	}
}

func TestVerifierNoFalsePositivesUnderPassFuzz(t *testing.T) {
	cat := testCatalog(t)
	rng := xrand.New(0x7e7a11ed)
	suite := verify.ArtifactSuite()
	for _, w := range queries.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			e := New(cat, DefaultOptions())
			cq, err := e.CompileQuery(w.Query)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			cfg := DefaultPGOSampling()
			res, err := e.Run(cq, &cfg)
			if err != nil {
				t.Fatalf("profiling run: %v", err)
			}
			hot := pgo.FromProfile(res.Profile, cq.Code.NMap)

			type pass struct {
				name string
				run  func(m *ir.Module, lin core.Lineage)
			}
			passes := []pass{
				{"fold", func(m *ir.Module, lin core.Lineage) { iropt.ConstFold(m, lin) }},
				{"cse", func(m *ir.Module, lin core.Lineage) { iropt.CSE(m, lin) }},
				{"dce", func(m *ir.Module, lin core.Lineage) { iropt.DCE(m, lin) }},
				{"licm", func(m *ir.Module, lin core.Lineage) { iropt.LICM(m, lin, hot) }},
				{"sr", func(m *ir.Module, lin core.Lineage) { iropt.StrengthReduce(m, lin, hot) }},
			}

			for trial := 0; trial < 3; trial++ {
				pc := compileUnoptimized(t, e, cq.Plan)
				art := &verify.Artifact{
					Module:          pc.Module,
					Dict:            pc.Dict,
					RegisterTagging: e.Opts.RegisterTagging,
					PGO:             true,
				}
				var order []string
				for i := 0; i < 8; i++ {
					p := passes[rng.Intn(len(passes))]
					order = append(order, p.name)
					p.run(pc.Module, pc.Dict)
					art.Phase = "fuzz/" + p.name
					if ds := suite.Run(art); len(ds) != 0 {
						t.Fatalf("order %v: false positive(s) on a legally-mutated module:\n%v", order, ds)
					}
				}
				ccfg := codegen.DefaultConfig(stagingAddr, spillBase, spillCap)
				ccfg.RegisterTagging = e.Opts.RegisterTagging
				ccfg.FuseCmpBranch = e.Opts.FuseCmpBranch
				ccfg.Hot = hot
				code, err := codegen.Compile(pc.Module, ccfg)
				if err != nil {
					t.Fatalf("order %v: codegen: %v", order, err)
				}
				art.Phase = "fuzz/emit"
				art.Code = code
				if ds := suite.Run(art); len(ds) != 0 {
					t.Fatalf("order %v: false positive(s) on the emitted program:\n%v", order, ds)
				}
			}
		})
	}
}
