package engine

import (
	"testing"

	"repro/internal/datagen"

	"repro/internal/core"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/vm"
)

// TestCallStackSamplingResolvesSharedCode runs with the call-stack record
// format and Register Tagging disabled: samples landing in the shared
// ht_insert routine must still resolve to the right task via the recorded
// call stack (the paper's fallback for managed runtimes, §4.2.5).
func TestCallStackSamplingResolvesSharedCode(t *testing.T) {
	cat := testCatalog(t)
	opts := DefaultOptions()
	opts.RegisterTagging = false
	e := New(cat, opts)
	cq, err := e.CompileQuery(queries.Intro(true).Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, &pmu.Config{
		Event: vm.EvCycles, Period: 199, Format: pmu.FormatCallStack,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Some samples must land inside ht_insert and be resolved.
	att := core.NewAttributor(cq.Pipe.Dict, cq.Code.NMap)
	inShared, resolved := 0, 0
	for i := range res.Samples {
		s := &res.Samples[i]
		if s.IP < len(cq.Code.NMap.Region) && cq.Code.NMap.Region[s.IP] == core.RegionShared {
			inShared++
			if att.Attribute(s).Class == core.ClassOperator {
				resolved++
			}
		}
	}
	if inShared == 0 {
		t.Skip("no samples landed in shared code this run")
	}
	if resolved != inShared {
		t.Fatalf("resolved %d/%d shared samples via call stacks", resolved, inShared)
	}
	a := res.Profile.Attribution()
	if a.AttributedPct < 90 {
		t.Fatalf("attribution with call stacks = %.1f%%", a.AttributedPct)
	}
}

// TestRegisterTaggingDisabledLosesSharedSamples: with neither tagging nor
// call stacks, shared-code samples cannot be attributed — the gap Register
// Tagging exists to close.
func TestRegisterTaggingDisabledLosesSharedSamples(t *testing.T) {
	cat := testCatalog(t)
	opts := DefaultOptions()
	opts.RegisterTagging = false
	e := New(cat, opts)
	cq, err := e.CompileQuery(queries.Intro(true).Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, &pmu.Config{
		Event: vm.EvCycles, Period: 97, Format: pmu.FormatIPTime, // no regs, no stack
	})
	if err != nil {
		t.Fatal(err)
	}
	att := core.NewAttributor(cq.Pipe.Dict, cq.Code.NMap)
	lost := 0
	for i := range res.Samples {
		s := &res.Samples[i]
		if s.IP < len(cq.Code.NMap.Region) && cq.Code.NMap.Region[s.IP] == core.RegionShared {
			if att.Attribute(s).Class == core.ClassUnattributed {
				lost++
			}
		}
	}
	if lost == 0 {
		t.Skip("no shared-code samples this run")
	}
}

// TestSampledRunsAreDeterministic: identical configuration ⇒ identical
// samples (the property all regression comparisons rely on).
func TestSampledRunsAreDeterministic(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	cq, err := e.CompileQuery(queries.Fig9().Query)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &pmu.Config{Event: vm.EvCycles, Period: 499, Format: pmu.FormatIPTimeRegs}
	r1, err := e.Run(cq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(cq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Samples) != len(r2.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(r1.Samples), len(r2.Samples))
	}
	for i := range r1.Samples {
		a, b := r1.Samples[i], r2.Samples[i]
		if a.IP != b.IP || a.TSC != b.TSC || a.Tag != b.Tag || a.Addr != b.Addr {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a, b)
		}
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("stats differ: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

// TestInstructionsEventProfile: sampling INST_RETIRED yields a profile too
// (uniform per instruction rather than cost-weighted).
func TestInstructionsEventProfile(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	cq, err := e.CompileQuery(queries.Intro(true).Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, &pmu.Config{Event: vm.EvInstRetired, Period: 503, Format: pmu.FormatIPTimeRegs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.TotalSamples < 50 {
		t.Fatalf("samples = %d", res.Profile.TotalSamples)
	}
	if a := res.Profile.Attribution(); a.AttributedPct < 90 {
		t.Fatalf("attribution = %.1f%%", a.AttributedPct)
	}
}

// TestProfileWeightConservation: per-operator weights + unattributed must
// sum to the sample count (no weight is created or destroyed).
func TestProfileWeightConservation(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	for _, w := range queries.Suite()[:6] {
		cq, err := e.CompileQuery(w.Query)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(cq, &pmu.Config{Event: vm.EvCycles, Period: 997, Format: pmu.FormatIPTimeRegs})
		if err != nil {
			t.Fatal(err)
		}
		p := res.Profile
		total := p.Unattributed
		for _, wgt := range p.OpWeight {
			total += wgt
		}
		if diff := total - float64(p.TotalSamples); diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: weight sum %f != samples %d", w.Name, total, p.TotalSamples)
		}
	}
}

// TestEagerColumnLoadsPreserveResults: the Fig. 12 attribution mode must
// not change query semantics.
func TestEagerColumnLoadsPreserveResults(t *testing.T) {
	cat := testCatalog(t)
	lazy := New(cat, DefaultOptions())
	opts := DefaultOptions()
	opts.EagerColumnLoads = true
	eager := New(cat, opts)
	for _, w := range []string{"intro-nogj", "fig9", "q16"} {
		wl, _ := queries.ByName(w)
		c1, err := lazy.CompileQuery(wl.Query)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := eager.CompileQuery(wl.Query)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := lazy.Run(c1, nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := eager.Run(c2, nil)
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, r1.Rows, r2.Rows, len(c1.Plan.OrderBy) > 0)
	}
}

// TestCompileSQLEndToEnd goes SQL text → rows.
func TestCompileSQLEndToEnd(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	cq, err := e.CompileSQL(`select count(*) as n from lineitem where l_quantity < 10`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	li, _ := cat.Table("lineitem")
	want := int64(0)
	for _, q := range li.Col("l_quantity").Data {
		if q < 10 {
			want++
		}
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != want {
		t.Fatalf("count = %v, want %d", res.Rows, want)
	}
}

func TestCompileSQLSyntaxError(t *testing.T) {
	e := New(testCatalog(t), DefaultOptions())
	if _, err := e.CompileSQL("selec broken"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := e.CompileSQL("select x from no_such_table"); err == nil {
		t.Fatal("expected planning error")
	}
}

// TestCacheMissAttribution: sampling L3 misses attributes DRAM traffic to
// the hash-table operators, not the sequential scans — the operator
// developer's "which data structure hurts" workflow (§6.1).
func TestCacheMissAttribution(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 1.0, Seed: 5})
	e := New(cat, DefaultOptions())
	cq, err := e.CompileQuery(queries.Fig9().Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, &pmu.Config{Event: vm.EvL3Miss, Period: 13, Format: pmu.FormatIPTimeRegs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.TotalSamples < 30 {
		t.Skipf("only %d L3-miss samples", res.Profile.TotalSamples)
	}
	shares := map[string]float64{}
	for _, c := range res.Profile.OperatorCosts() {
		shares[c.Kind] += c.Pct
	}
	htShare := shares["hash join"] + shares["group by"]
	scanShare := shares["tablescan"] + shares["tablescan+filter"]
	if htShare <= scanShare {
		t.Errorf("hash operators (%.1f%%) should dominate DRAM misses over scans (%.1f%%)",
			htShare, scanShare)
	}
}
