package engine

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/ref"
	"repro/internal/vm"
	"repro/internal/xrand"
)

// shardQueries sweeps the invariance battery over the main pipeline
// shapes: join + group-by (fig9), plain group-by (q1), selective global
// aggregate (q6), and a group-join (intro).
var shardQueries = []string{"fig9", "q1", "q6", "intro"}

func shardRun(t *testing.T, cat *catalog.Catalog, q *plan.Query, workers, shards int, pruning bool, cfg *pmu.Config) *Result {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = workers
	opts.MorselRows = 256
	opts.Shards = shards
	opts.ShardPruning = pruning
	e := New(cat, opts)
	cq, err := e.CompileQuery(q)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := e.Run(cq, cfg)
	if err != nil {
		t.Fatalf("workers=%d shards=%d pruning=%v: %v", workers, shards, pruning, err)
	}
	return res
}

// TestShardDeterminism is the tentpole's core property: across Workers
// {0,1,2,4} x Shards {1,2,4,8}, with pruning off and on, the result rows
// equal the serial unsharded oracle, the coordinator's canonical heap is
// byte-identical, and the merged profile's canonical serialization is
// byte-identical. Zone granularity is a function of the table alone, so
// the shard count must be invisible everywhere except the attribution
// lenses (ByShard, ShardStates, SkipEvent.Shard) that Canonical excludes.
func TestShardDeterminism(t *testing.T) {
	cat := testCatalog(t)
	cfg := &pmu.Config{Event: vm.EvInstRetired, Period: 487}
	for _, name := range shardQueries {
		w, ok := queries.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		t.Run(name, func(t *testing.T) {
			oracle := shardRun(t, cat, w.Query, 0, 0, false, nil)
			for _, pruning := range []bool{false, true} {
				var baseHeap []byte
				var baseCanon []byte
				for _, workers := range []int{0, 1, 2, 4} {
					for _, shards := range []int{1, 2, 4, 8} {
						res := shardRun(t, cat, w.Query, workers, shards, pruning, cfg)
						tag := fmt.Sprintf("pruning=%v workers=%d shards=%d", pruning, workers, shards)
						if res.Shards != shards {
							t.Fatalf("%s: Result.Shards = %d", tag, res.Shards)
						}
						rowsEqual(t, res.Rows, oracle.Rows, len(w.Query.OrderBy) > 0)
						canon := res.Profile.Canonical()
						if baseHeap == nil {
							baseHeap, baseCanon = res.CPU.Heap, canon
							continue
						}
						if !bytes.Equal(res.CPU.Heap, baseHeap) {
							t.Errorf("%s: canonical heap differs from grid baseline", tag)
						}
						if !bytes.Equal(canon, baseCanon) {
							t.Errorf("%s: canonical profile differs from grid baseline", tag)
						}
					}
				}
			}
		})
	}
}

// TestShardMatchesUnshardedParallel: with pruning off, a sharded run is
// the unsharded parallel run plus attribution — one whole-table surviving
// run morselizes to exactly the legacy span list, so heap and canonical
// profile match the Shards=0 run bit-for-bit at every worker count.
func TestShardMatchesUnshardedParallel(t *testing.T) {
	cat := testCatalog(t)
	cfg := &pmu.Config{Event: vm.EvInstRetired, Period: 487}
	for _, name := range shardQueries {
		w, _ := queries.ByName(name)
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				legacy := shardRun(t, cat, w.Query, workers, 0, false, cfg)
				sharded := shardRun(t, cat, w.Query, workers, 4, false, cfg)
				if !bytes.Equal(sharded.CPU.Heap, legacy.CPU.Heap) {
					t.Errorf("workers=%d: sharded heap differs from unsharded parallel", workers)
				}
				if !bytes.Equal(sharded.Profile.Canonical(), legacy.Profile.Canonical()) {
					t.Errorf("workers=%d: sharded canonical profile differs from unsharded parallel", workers)
				}
			}
		})
	}
}

// TestShardSkipCompleteness replays fig9's shard journals: shards tile
// each scanned table with no zone claimed twice, every pruned zone has
// exactly one matching skip event in the merged profile (and vice versa),
// scanned + skipped rows account for every table row, and the per-shard
// sample lanes are populated. fig9 exercises both pruning rules: the
// orders scan prunes on its date filter (the column is correlated with
// position), and the lineitem scan prunes via the shipped build-side
// bounds/bloom of the join (clustered l_orderkey).
func TestShardSkipCompleteness(t *testing.T) {
	cat := testCatalog(t)
	w, _ := queries.ByName("fig9")
	res := shardRun(t, cat, w.Query, 2, 4, true, &pmu.Config{Event: vm.EvInstRetired, Period: 487})

	if len(res.ShardStates) == 0 {
		t.Fatal("no shard states")
	}
	// Journal-side view of pruned zones, keyed by (pipeline, zone).
	type zkey struct{ pipe, zone int }
	pruned := map[zkey]ZoneDecision{}
	owner := map[zkey]int{}
	byScan := map[string][]ShardState{}
	for _, st := range res.ShardStates {
		byScan[st.Alias] = append(byScan[st.Alias], st)
		var rows, scanned, prunedRows int64
		for _, z := range st.Zones {
			k := zkey{st.Pipeline, z.Zone}
			if prev, dup := owner[k]; dup {
				t.Fatalf("zone %d of pipeline %d claimed by shards %d and %d (tag collision)",
					z.Zone, st.Pipeline, prev, st.Shard)
			}
			owner[k] = st.Shard
			rows += z.Hi - z.Lo
			if z.Pruned {
				pruned[k] = z
				prunedRows += z.Hi - z.Lo
				if z.Cause == "" {
					t.Errorf("pruned zone %d has no cause", z.Zone)
				}
			} else {
				scanned += z.Hi - z.Lo
				if z.Cause != "" {
					t.Errorf("surviving zone %d has cause %q", z.Zone, z.Cause)
				}
			}
		}
		if rows != st.Rows {
			t.Errorf("shard %d of %s: zones cover %d rows, journal says %d", st.Shard, st.Alias, rows, st.Rows)
		}
		if scanned != st.Scanned {
			t.Errorf("shard %d of %s: %d surviving rows, journal says scanned %d", st.Shard, st.Alias, scanned, st.Scanned)
		}
		if st.Scanned+prunedRows != st.Rows {
			t.Errorf("shard %d of %s: scanned %d + pruned %d != rows %d",
				st.Shard, st.Alias, st.Scanned, prunedRows, st.Rows)
		}
		if st.Pruned != (scanned == 0 && len(st.Zones) > 0) {
			t.Errorf("shard %d of %s: Pruned=%v with %d surviving rows", st.Shard, st.Alias, st.Pruned, scanned)
		}
	}
	// Shards tile each table.
	for alias, states := range byScan {
		var total int64
		var next int64
		for _, st := range states {
			if st.Lo != next {
				t.Errorf("%s: shard %d starts at %d, want %d", alias, st.Shard, st.Lo, next)
			}
			next = st.Hi
			total += st.Rows
		}
		tb, err := cat.Table(trimAlias(alias))
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		if total != int64(tb.Rows()) {
			t.Errorf("%s: shards own %d rows, table has %d", alias, total, tb.Rows())
		}
	}
	// Every pruned zone has exactly one skip event, and no skip event
	// lacks a pruned zone.
	if len(res.Skips) != len(pruned) {
		t.Fatalf("%d skip events for %d pruned zones", len(res.Skips), len(pruned))
	}
	causes := map[string]int{}
	for _, sk := range res.Skips {
		z, ok := pruned[zkey{sk.Pipeline, sk.Zone}]
		if !ok {
			t.Fatalf("skip event for zone %d of pipeline %d: no pruned journal entry", sk.Zone, sk.Pipeline)
		}
		if sk.Lo != z.Lo || sk.Hi != z.Hi || sk.Rows != z.Hi-z.Lo || sk.Cause != z.Cause {
			t.Errorf("skip event for zone %d disagrees with journal: %+v vs %+v", sk.Zone, sk, z)
		}
		if want := owner[zkey{sk.Pipeline, sk.Zone}]; sk.Shard != want {
			t.Errorf("skip event for zone %d stamped shard %d, journal owner %d", sk.Zone, sk.Shard, want)
		}
		causes[sk.Cause]++
	}
	if causes["filter"] == 0 {
		t.Error("fig9 pruned no zone on the orders date filter — battery is vacuous")
	}
	if causes["semijoin"]+causes["bloom"] == 0 {
		t.Error("fig9 pruned no lineitem zone via the shipped build side — battery is vacuous")
	}
	// The profile carries the same skips, and per-shard sample lanes exist.
	if res.Profile == nil || len(res.Profile.Skips) != len(res.Skips) {
		t.Fatal("profile does not carry the run's skip events")
	}
	lanes := 0
	for shard, w := range res.Profile.ByShard {
		if shard > 0 && w > 0 {
			lanes++
		}
	}
	if lanes < 2 {
		t.Errorf("only %d populated shard lanes in profile, want >= 2", lanes)
	}
}

// trimAlias maps a scan alias back to its table name (suite queries use
// the table name itself or a one-letter alias; shard states store the
// alias, the catalog stores the name).
func trimAlias(alias string) string {
	switch alias {
	case "s":
		return "sales"
	case "p":
		return "products"
	}
	return alias
}

// randShardTable builds a table whose first column is clustered (the case
// zone pruning exploits) and whose others are uniform / low-cardinality.
func randShardTable(r *xrand.Rand, rows int) (*catalog.Catalog, int64) {
	c := catalog.New()
	tb := catalog.NewTable("pts")
	a := tb.AddCol("a", catalog.TInt)
	b := tb.AddCol("b", catalog.TInt)
	cc := tb.AddCol("c", catalog.TInt)
	var hi int64
	for i := 0; i < rows; i++ {
		hi += r.Int64Range(0, 3)
		a.Data = append(a.Data, hi)
		b.Data = append(b.Data, r.Int64Range(-1000, 1000))
		cc.Data = append(cc.Data, r.Int64Range(0, 16))
	}
	c.Add(tb)
	return c, hi
}

// randPred generates a random predicate tree over the pts columns:
// comparisons (sometimes over column arithmetic) joined by AND/OR.
func randPred(r *xrand.Rand, maxA int64, depth int) plan.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		cols := []string{"a", "b", "c"}
		name := cols[r.Intn(len(cols))]
		var lhs plan.Expr = plan.Col(name)
		if r.Bool(0.25) {
			k := plan.Num(r.Int64Range(1, 5))
			switch r.Intn(3) {
			case 0:
				lhs = &plan.Bin{Op: plan.OpAdd, L: lhs, R: k}
			case 1:
				lhs = &plan.Bin{Op: plan.OpSub, L: lhs, R: k}
			default:
				lhs = &plan.Bin{Op: plan.OpMul, L: lhs, R: k}
			}
		}
		lo, hi := int64(-1200), maxA+200
		ops := []plan.BinOp{plan.OpEq, plan.OpNe, plan.OpLt, plan.OpLe, plan.OpGt, plan.OpGe}
		return &plan.Bin{Op: ops[r.Intn(len(ops))], L: lhs, R: plan.Num(r.Int64Range(lo, hi))}
	}
	op := plan.OpAnd
	if r.Bool(0.5) {
		op = plan.OpOr
	}
	return &plan.Bin{Op: op, L: randPred(r, maxA, depth-1), R: randPred(r, maxA, depth-1)}
}

// TestShardPruningProperty is the soundness property test: on random
// clustered data and random predicates, a pruned run returns exactly the
// rows of the unpruned run and of the interpreted reference. Over the
// trial budget, pruning must actually fire (otherwise the test is
// vacuous) — the interval evaluator's job is to prune aggressively
// *and* provably.
func TestShardPruningProperty(t *testing.T) {
	r := xrand.New(40604067)
	var prunedZones, totalZones int64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		cat, maxA := randShardTable(r, 12000)
		q := &plan.Query{
			Tables: []plan.TableRef{{Name: "pts"}},
			Where:  []plan.Expr{randPred(r, maxA, 3)},
			Select: []plan.SelectItem{
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("a")}, Alias: "sa"},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("b")}, Alias: "sb"},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: &plan.Bin{
					Op: plan.OpMul, L: plan.Col("b"), R: plan.Col("c"),
				}}, Alias: "sbc"},
				{Expr: &plan.Agg{Fn: plan.AggCount}, Alias: "n"},
			},
			Limit: -1,
		}
		shards := []int{1, 3, 4}[trial%3]
		workers := []int{0, 2}[trial%2]
		res := shardRun(t, cat, q, workers, shards, true, nil)
		plain := shardRun(t, cat, q, workers, shards, false, nil)
		rowsEqual(t, res.Rows, plain.Rows, false)

		e := New(cat, DefaultOptions())
		cq, err := e.CompileQuery(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := ref.Execute(cq.Plan)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		rowsEqual(t, res.Rows, want, false)

		for _, st := range res.ShardStates {
			for _, z := range st.Zones {
				totalZones++
				if z.Pruned {
					prunedZones++
				}
			}
		}
	}
	if prunedZones == 0 {
		t.Fatalf("no zone pruned in %d random trials (%d zones seen) — property test is vacuous", trials, totalZones)
	}
	t.Logf("pruned %d of %d zones across %d trials", prunedZones, totalZones, trials)
}

// selectiveScanQuery is the 90%-prunable workload of the scaling gate: a
// projection over lineitem with a compound filter — a range conjunct on
// the clustered l_orderkey below its 10th percentile (prunes ~90% of
// zones from bounds alone) and a sparse equality on l_quantity (keeps the
// surviving output, and therefore the irreducible per-result work, tiny).
// Prunability and selectivity are deliberately decoupled: zone pruning
// removes whole-zone *scan* work, so the gate workload's residual cost
// must be scan-shaped, not output-shaped.
func selectiveScanQuery(t testing.TB, cat *catalog.Catalog) *plan.Query {
	t.Helper()
	tb, err := cat.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	st := tb.ColStats("l_orderkey")
	cut := st.Min + (st.Max-st.Min)/10
	return &plan.Query{
		Tables: []plan.TableRef{{Name: "lineitem"}},
		Where: []plan.Expr{
			plan.Lt(plan.Col("l_orderkey"), plan.Num(cut)),
			plan.Eq(plan.Col("l_quantity"), plan.Num(13)),
		},
		Select: []plan.SelectItem{
			{Expr: plan.Col("l_orderkey")},
			{Expr: plan.Col("l_extendedprice")},
		},
		Limit: -1,
	}
}

// gateCatalog is the scaling gate's dataset: larger than the unit-test
// fixture so per-query constants (prelude, merge rounds, group-scan
// sweeps) don't mask the scan-proportional work the gate measures.
func gateCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	return datagen.Generate(datagen.Config{ScaleFactor: 0.2, Seed: 7})
}

// TestShardScalingGate is the CI gate (simulated cycles, so the numbers
// are load-bound, not host-bound):
//
//   - fig9 join: 4 shards on 4 workers with pruning vs the serial
//     unsharded baseline — parallel speedup plus zone pruning must
//     compound to >= 2x wall-clock.
//   - 90%-prunable selective scan: 4 shards with pruning vs the *same
//     worker count* unsharded — the pure pruning win must be >= 5x.
//   - sharding without pruning is attribution only and must not tax the
//     unsharded parallel wall clock.
func TestShardScalingGate(t *testing.T) {
	cat := gateCatalog(t)

	w, _ := queries.ByName("fig9")
	serial := shardRun(t, cat, w.Query, 0, 0, false, nil)
	sharded := shardRun(t, cat, w.Query, 4, 4, true, nil)
	rowsEqual(t, sharded.Rows, serial.Rows, len(w.Query.OrderBy) > 0)
	if serial.WallCycles == 0 || sharded.WallCycles == 0 {
		t.Fatal("no wall cycles")
	}
	speedup := float64(serial.WallCycles) / float64(sharded.WallCycles)
	t.Logf("fig9: serial %d cycles, 4 workers x 4 shards + pruning %d cycles — %.2fx",
		serial.WallCycles, sharded.WallCycles, speedup)
	if speedup < 2.0 {
		t.Errorf("fig9 sharded speedup %.2fx, gate requires >= 2x", speedup)
	}

	scan := selectiveScanQuery(t, cat)
	base := shardRun(t, cat, scan, 4, 0, false, nil)
	pruned := shardRun(t, cat, scan, 4, 4, true, nil)
	rowsEqual(t, pruned.Rows, base.Rows, false)
	if len(pruned.Rows) == 0 {
		t.Fatal("gate scan returned no rows — workload is degenerate")
	}
	var owned, scanned int64
	for _, st := range pruned.ShardStates {
		owned += st.Rows
		scanned += st.Scanned
	}
	if frac := float64(scanned) / float64(owned); frac > 0.15 {
		t.Errorf("gate scan executed %.0f%% of the table, want <= 15%% (90%%-prunable workload)", 100*frac)
	}
	scanSpeedup := float64(base.WallCycles) / float64(pruned.WallCycles)
	t.Logf("selective scan: unsharded %d cycles, pruned %d cycles — %.2fx",
		base.WallCycles, pruned.WallCycles, scanSpeedup)
	if scanSpeedup < 5.0 {
		t.Errorf("selective-scan pruning speedup %.2fx, gate requires >= 5x", scanSpeedup)
	}

	noPrune := shardRun(t, cat, w.Query, 4, 4, false, nil)
	unsharded := shardRun(t, cat, w.Query, 4, 0, false, nil)
	if tax := float64(noPrune.WallCycles) / float64(unsharded.WallCycles); tax > 1.05 {
		t.Errorf("sharding without pruning costs %.2fx the unsharded wall clock — attribution must be free", tax)
	}
}

// TestDecideShards pins the cost model's shard knob: the count shrinks to
// what the largest driving scan supports, and pruning survives only when
// the model sees something for it to bite on (a selective filter or a
// join build to ship).
func TestDecideShards(t *testing.T) {
	small := testCatalog(t) // lineitem ~3k rows: below shardMinRows*2
	big := gateCatalog(t)   // lineitem ~12k rows: supports 2 shards

	annotate := func(cat *catalog.Catalog, q *plan.Query) *cost.Model {
		e := New(cat, DefaultOptions())
		cq, err := e.CompileQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		return cost.Annotate(cq.Plan)
	}
	fig9, _ := queries.ByName("fig9")
	fullScan := &plan.Query{
		Tables: []plan.TableRef{{Name: "lineitem"}},
		Select: []plan.SelectItem{{Expr: plan.Col("l_orderkey")}},
		Limit:  -1,
	}

	if s, p := cost.DecideShards(annotate(small, fig9.Query), 0, true); s != 0 || p {
		t.Errorf("shards=0 request: got (%d,%v), want disabled", s, p)
	}
	if s, p := cost.DecideShards(annotate(small, fig9.Query), 8, true); s != 1 || !p {
		t.Errorf("tiny fig9: got (%d,%v), want (1,true) — scan too small to split, join still ships bounds", s, p)
	}
	if s, _ := cost.DecideShards(annotate(big, fig9.Query), 4, true); s != 2 {
		t.Errorf("sf0.2 fig9: got %d shards, want 2 (12k-row scan supports 2)", s)
	}
	if _, p := cost.DecideShards(annotate(big, fullScan), 4, true); p {
		t.Error("unfiltered joinless scan: pruning kept with nothing to prune on")
	}
	if _, p := cost.DecideShards(annotate(big, selectiveScanQuery(t, big)), 4, true); !p {
		t.Error("selective scan: pruning dropped despite a selective filter")
	}
	if _, p := cost.DecideShards(annotate(big, selectiveScanQuery(t, big)), 4, false); p {
		t.Error("pruning enabled against the configuration")
	}
}

// TestShardServiceDecision covers the service path: with shard options
// set, the compile closure attaches a per-statement ShardDecision to the
// artifact, warm prepares stay pure cache hits on the same artifact, and
// execution honors the artifact's decision (not the session's static
// knobs).
func TestShardServiceDecision(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MorselRows = 256
	opts.Shards = 4
	opts.ShardPruning = true
	svc := NewService(testCatalog(t), opts, 0)
	se := svc.NewSession()

	const sql = "select l_orderkey, sum(l_quantity) as q from lineitem where l_orderkey < 120 group by l_orderkey"
	p, res, err := se.Execute(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Compiled.Shard
	if d == nil {
		t.Fatal("artifact carries no shard decision under shard options")
	}
	if d.Shards < 1 || d.Shards > opts.Shards {
		t.Fatalf("decision shards = %d, want in [1,%d]", d.Shards, opts.Shards)
	}
	if !d.Pruning {
		t.Fatal("selective filter: decision should keep pruning")
	}
	if res.Shards != d.Shards {
		t.Fatalf("run used %d shards, artifact decided %d", res.Shards, d.Shards)
	}
	rowsEqual(t, res.Rows, refRows(t, p), false)

	warm, res2, err := se.Execute(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || warm.Compiled != p.Compiled {
		t.Fatal("warm prepare must hit the same artifact")
	}
	rowsEqual(t, res2.Rows, res.Rows, false)

	// The artifact's decision wins over session knobs: cranking the
	// session to 8 unpruned shards must not change this statement.
	se.SetShards(8)
	se.SetShardPruning(false)
	p3, res3, err := se.Execute(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p3.CacheHit {
		t.Fatal("session shard knobs must not invalidate the cache")
	}
	if res3.Shards != d.Shards {
		t.Fatalf("artifact decision overridden: ran %d shards, want %d", res3.Shards, d.Shards)
	}
	rowsEqual(t, res3.Rows, res.Rows, false)
}

// TestShardConcurrentSessions hammers one service from sessions that
// enable sharding with different knobs mid-flight — the -race companion
// to TestServiceConcurrentSessions. Concurrent zone-map builds (the
// catalog's lazy per-table cache) and concurrent sharded runs must not
// race, and every result must match the reference.
func TestShardConcurrentSessions(t *testing.T) {
	svc := NewService(testCatalog(t), DefaultOptions(), 0)
	sqls := []string{
		"select count(*) from lineitem where l_orderkey < 100",
		"select l_orderkey, sum(l_quantity) as qty from lineitem where l_orderkey < 200 group by l_orderkey",
		"select count(*) from orders where o_orderdate < 800",
	}
	want := make([][][]int64, len(sqls))
	warm := svc.NewSession()
	for i, sql := range sqls {
		p, err := warm.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = refRows(t, p)
	}

	const G = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make(chan error, G*iters)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			se := svc.NewSession()
			se.SetWorkers(g % 3)
			se.SetMorselRows(256)
			se.SetShards(1 + g%4)
			se.SetShardPruning(g%2 == 0)
			for i := 0; i < iters; i++ {
				k := (g + i) % len(sqls)
				_, res, err := se.Execute(sqls[k], nil)
				if err != nil {
					errs <- fmt.Errorf("g%d: %s: %w", g, sqls[k], err)
					return
				}
				if !sameRows(res.Rows, want[k], false) {
					errs <- fmt.Errorf("g%d: %s: rows diverge from reference", g, sqls[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
