package engine

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/iropt"
	"repro/internal/pgo"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/queries"
	"repro/internal/ref"
	"repro/internal/xrand"
)

// pgoWorkloads are the adaptive-cycle battery: a scan-heavy aggregation
// (one tight loop, branch-dominated) and the paper's join+group-by query
// (multiple pipelines, hash probes).
var pgoWorkloads = []string{"q6", "fig9"}

// TestPGONoCycleRegression is the CI gate: profile-guided recompilation
// must never make a query slower in simulated cycles. RunAdaptive itself
// fails the test if the rows change.
func TestPGONoCycleRegression(t *testing.T) {
	cat := testCatalog(t)
	for _, name := range pgoWorkloads {
		w, ok := queries.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		t.Run(name, func(t *testing.T) {
			e := New(cat, DefaultOptions())
			cq, err := e.CompileQuery(w.Query)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ar, err := e.RunAdaptive(cq, nil)
			if err != nil {
				t.Fatalf("RunAdaptive: %v", err)
			}
			if ar.TunedCycles > ar.BaselineCycles {
				t.Fatalf("recompilation regressed: %d cycles -> %d cycles",
					ar.BaselineCycles, ar.TunedCycles)
			}
			t.Logf("%s: %d -> %d cycles (%.1f%% reduction)",
				name, ar.BaselineCycles, ar.TunedCycles, 100*ar.CycleReduction())
		})
	}
}

// TestRecompileDeterministicAcrossWorkers runs the full adaptive cycle on
// 1, 2, 4, and 8 workers. The recompiled query must match the interpreted
// reference executor at every worker count (RunAdaptive already checks
// tuned == baseline rows within a count), and re-profiling the tuned
// binary must yield a well-formed profile whose generated-code samples
// all attribute through the Tagging Dictionary.
func TestRecompileDeterministicAcrossWorkers(t *testing.T) {
	cat := testCatalog(t)
	for _, name := range pgoWorkloads {
		w, ok := queries.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		t.Run(name, func(t *testing.T) {
			var want [][]int64
			for _, workers := range workerCounts {
				opts := DefaultOptions()
				opts.Workers = workers
				opts.MorselRows = 256
				e := New(cat, opts)
				cq, err := e.CompileQuery(w.Query)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				if want == nil {
					want, err = ref.Execute(cq.Plan)
					if err != nil {
						t.Fatalf("reference: %v", err)
					}
				}
				ar, err := e.RunAdaptive(cq, nil)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				rowsEqual(t, ar.Tuned.Rows, want, len(cq.Plan.OrderBy) > 0)

				// Second generation: the tuned binary must itself be
				// profilable, and its samples must still resolve.
				cfg := DefaultPGOSampling()
				res, err := e.Run(ar.Recompiled, &cfg)
				if err != nil {
					t.Fatalf("workers=%d: re-profile: %v", workers, err)
				}
				if res.Profile == nil {
					t.Fatalf("workers=%d: re-profile produced no profile", workers)
				}
				checkNativeLineage(t, ar.Recompiled.Code.NMap, ar.Recompiled.Pipe.Dict)
				hot2 := pgo.FromProfile(res.Profile, ar.Recompiled.Code.NMap)
				if hot2.TotalWeight() <= 0 {
					t.Fatalf("workers=%d: second-generation profile attributes no weight", workers)
				}
			}
		})
	}
}

// TestPGOLineagePreservation fuzzes the pass order: constant folding,
// CSE, DCE, LICM and strength reduction applied in arbitrary sequences
// (not just the fixpoint order Optimize uses) must leave a valid module
// where every surviving IR instruction — and every IR instruction a
// generated native instruction claims to implement — still resolves to
// at least one task through the Tagging Dictionary.
func TestPGOLineagePreservation(t *testing.T) {
	cat := testCatalog(t)
	rng := xrand.New(20260806)
	for _, w := range queries.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			e := New(cat, DefaultOptions())
			cq, err := e.CompileQuery(w.Query)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			cfg := DefaultPGOSampling()
			res, err := e.Run(cq, &cfg)
			if err != nil {
				t.Fatalf("profiling run: %v", err)
			}
			if res.Profile == nil {
				t.Fatal("no profile")
			}
			hot := pgo.FromProfile(res.Profile, cq.Code.NMap)

			type pass struct {
				name string
				run  func(m *ir.Module, lin core.Lineage)
			}
			passes := []pass{
				{"fold", func(m *ir.Module, lin core.Lineage) { iropt.ConstFold(m, lin) }},
				{"cse", func(m *ir.Module, lin core.Lineage) { iropt.CSE(m, lin) }},
				{"dce", func(m *ir.Module, lin core.Lineage) { iropt.DCE(m, lin) }},
				{"licm", func(m *ir.Module, lin core.Lineage) { iropt.LICM(m, lin, hot) }},
				{"sr", func(m *ir.Module, lin core.Lineage) { iropt.StrengthReduce(m, lin, hot) }},
			}

			for trial := 0; trial < 5; trial++ {
				pc := compileUnoptimized(t, e, cq.Plan)
				var order []string
				for i := 0; i < 8; i++ {
					p := passes[rng.Intn(len(passes))]
					order = append(order, p.name)
					p.run(pc.Module, pc.Dict)
				}
				if err := pc.Module.Verify(); err != nil {
					t.Fatalf("order %v: module invalid: %v", order, err)
				}
				pc.Module.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
					if len(pc.Dict.TasksOf(in.ID)) == 0 {
						t.Fatalf("order %v: surviving instr %%%d (%v) has no tasks", order, in.ID, in.Op)
					}
				})
				ccfg := codegen.DefaultConfig(stagingAddr, spillBase, spillCap)
				ccfg.RegisterTagging = e.Opts.RegisterTagging
				ccfg.FuseCmpBranch = e.Opts.FuseCmpBranch
				ccfg.Hot = hot
				code, err := codegen.Compile(pc.Module, ccfg)
				if err != nil {
					t.Fatalf("order %v: codegen: %v", order, err)
				}
				checkNativeLineage(t, code.NMap, pc.Dict)
			}
		})
	}
}

// compileUnoptimized rebuilds the pipeline IR for a plan without running
// any optimization pass: the raw module the fuzzed pass orders start from.
func compileUnoptimized(t *testing.T, e *Engine, pl *plan.Output) *pipeline.Compiled {
	t.Helper()
	cq := &Compiled{Plan: pl}
	lay, err := e.compiler().buildLayout(pl, cq)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	pc, err := pipeline.Compile(pl, lay, pipeline.Options{
		RegisterTagging:  e.Opts.RegisterTagging,
		TagEverything:    e.Opts.TagEverything,
		EagerColumnLoads: e.Opts.EagerColumnLoads,
		TupleCounters:    e.Opts.TupleCounters,
	})
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return pc
}

// checkNativeLineage walks the native map and asserts every IR ID a
// generated-region instruction is tagged with resolves to at least one
// task. (Edge-block jumps carry no IR IDs; an empty list is legal.)
func checkNativeLineage(t *testing.T, nmap *core.NativeMap, dict *core.Dictionary) {
	t.Helper()
	for pos := range nmap.Region {
		if nmap.Region[pos] != core.RegionGenerated {
			continue
		}
		for _, irID := range nmap.IRs[pos] {
			if len(dict.TasksOf(irID)) == 0 {
				t.Fatalf("native %d: IR %%%d resolves to no task", pos, irID)
			}
		}
	}
}
