package engine

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/ref"
	"repro/internal/vm"
)

// TestOfflinePostProcessing exercises the full §5.2.2 split on a real
// query: serialize the Tagging Dictionary meta-data and the sample log,
// reload both, and verify the offline profile matches the in-process one.
func TestOfflinePostProcessing(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	cq, err := e.CompileQuery(queries.Intro(true).Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, &pmu.Config{Event: vm.EvCycles, Period: 499, Format: pmu.FormatIPTimeRegs})
	if err != nil {
		t.Fatal(err)
	}

	var meta, slog bytes.Buffer
	if err := core.WriteMetadata(&meta, cq.Pipe.Dict, cq.Code.NMap); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteSamples(&slog, res.Samples); err != nil {
		t.Fatal(err)
	}

	dict, nmap, err := core.ReadMetadata(&meta)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := core.ReadSamples(&slog)
	if err != nil {
		t.Fatal(err)
	}
	offline := core.BuildProfile(core.NewAttributor(dict, nmap), samples)

	if offline.TotalSamples != res.Profile.TotalSamples {
		t.Fatalf("samples %d vs %d", offline.TotalSamples, res.Profile.TotalSamples)
	}
	onCosts := res.Profile.OperatorCosts()
	offCosts := offline.OperatorCosts()
	if len(onCosts) != len(offCosts) {
		t.Fatalf("operator count %d vs %d", len(onCosts), len(offCosts))
	}
	for i := range onCosts {
		if onCosts[i].Name != offCosts[i].Name ||
			math.Abs(onCosts[i].Pct-offCosts[i].Pct) > 1e-9 {
			t.Fatalf("row %d: %+v vs %+v", i, onCosts[i], offCosts[i])
		}
	}
	a, b := res.Profile.Attribution(), offline.Attribution()
	if math.Abs(a.UnattributedPct-b.UnattributedPct) > 1e-9 {
		t.Fatalf("attribution differs: %+v vs %+v", a, b)
	}
}

// TestSuiteAtScale is a soak test: the whole suite against the reference
// executor on a larger dataset and a different seed.
func TestSuiteAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cat := datagen.Generate(datagen.Config{ScaleFactor: 1.0, Seed: 99})
	e := New(cat, DefaultOptions())
	for _, w := range queries.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cq, err := e.CompileQuery(w.Query)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(cq, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Execute(cq.Plan)
			if err != nil {
				t.Fatal(err)
			}
			rowsEqual(t, res.Rows, want, len(cq.Plan.OrderBy) > 0)
		})
	}
}
