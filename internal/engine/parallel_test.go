package engine

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/pmu"
	"repro/internal/queries"
	"repro/internal/ref"
	"repro/internal/vm"
)

// workerCounts is the battery's sweep; 1 is the morsel scheduler on a
// single core (the baseline every other count must match exactly).
var workerCounts = []int{1, 2, 4, 8}

func parallelEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = workers
	opts.MorselRows = 256 // several morsels per pipeline even at test scale
	return New(testCatalog(t), opts)
}

// TestParallelMatchesReference runs every suite query on 1, 2, 4, and 8
// workers and compares the rows against the interpreted reference
// executor: the morsel scheduler must be invisible in the results.
func TestParallelMatchesReference(t *testing.T) {
	cat := testCatalog(t)
	for _, w := range queries.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var want [][]int64
			for _, workers := range workerCounts {
				opts := DefaultOptions()
				opts.Workers = workers
				opts.MorselRows = 256
				e := New(cat, opts)
				cq, err := e.CompileQuery(w.Query)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				if want == nil {
					want, err = ref.Execute(cq.Plan)
					if err != nil {
						t.Fatalf("reference: %v", err)
					}
				}
				res, err := e.Run(cq, nil)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if res.Workers != workers {
					t.Fatalf("Result.Workers = %d, want %d", res.Workers, workers)
				}
				rowsEqual(t, res.Rows, want, len(cq.Plan.OrderBy) > 0)
			}
		})
	}
}

// opWeights keys a profile's per-operator sample weights by component
// name, so profiles from separate compiles are comparable.
func opWeights(p *core.Profile) map[string]float64 {
	out := map[string]float64{}
	for id, w := range p.OpWeight {
		out[p.Registry.Name(id)] += w
	}
	return out
}

// TestParallelSampleDeterminism: for deterministic count events, the
// merged sample stream is independent of the worker count — the total
// sample count and every per-operator weight are *exactly* equal across
// 1, 2, 4, and 8 workers. This is the payoff of arming the PMU per morsel
// with a seed derived from the global morsel index: sample positions are
// a function of the morsel, not of which core runs it.
func TestParallelSampleDeterminism(t *testing.T) {
	cat := testCatalog(t)
	events := []struct {
		name string
		ev   vm.Event
	}{
		{"inst-retired", vm.EvInstRetired},
		{"mem-loads", vm.EvMemLoads},
	}
	for _, w := range queries.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, evt := range events {
				var baseTotal int
				var baseOps map[string]float64
				for _, workers := range workerCounts {
					opts := DefaultOptions()
					opts.Workers = workers
					opts.MorselRows = 256
					e := New(cat, opts)
					cq, err := e.CompileQuery(w.Query)
					if err != nil {
						t.Fatal(err)
					}
					res, err := e.Run(cq, &pmu.Config{Event: evt.ev, Period: 487})
					if err != nil {
						t.Fatal(err)
					}
					if res.Profile == nil {
						t.Fatal("no profile")
					}
					if workers == workerCounts[0] {
						baseTotal = res.Profile.TotalSamples
						baseOps = opWeights(res.Profile)
						if baseTotal == 0 {
							t.Fatalf("%s: no samples at all", evt.name)
						}
						continue
					}
					if res.Profile.TotalSamples != baseTotal {
						t.Errorf("%s workers=%d: %d samples, want %d",
							evt.name, workers, res.Profile.TotalSamples, baseTotal)
					}
					ops := opWeights(res.Profile)
					for name, want := range baseOps {
						if got := ops[name]; math.Abs(got-want) > 1e-6 {
							t.Errorf("%s workers=%d operator %q: weight %.3f, want %.3f",
								evt.name, workers, name, got, want)
						}
					}
					if len(ops) != len(baseOps) {
						t.Errorf("%s workers=%d: %d operators, want %d",
							evt.name, workers, len(ops), len(baseOps))
					}
				}
			}
		})
	}
}

// TestParallelProfileNearSerial compares the merged parallel profile
// against the legacy single-CPU run. The morsel scheduler re-executes each
// pipeline's prologue (column-base loads, bound checks) once per morsel,
// so instruction streams differ slightly; per-operator shares must still
// agree within a few percent.
func TestParallelProfileNearSerial(t *testing.T) {
	cat := testCatalog(t)
	for _, name := range []string{"fig9", "q1", "q3", "q6"} {
		w, ok := queries.ByName(name)
		if !ok {
			t.Fatalf("no query %s", name)
		}
		t.Run(name, func(t *testing.T) {
			serial := New(cat, DefaultOptions())
			cq, err := serial.CompileQuery(w.Query)
			if err != nil {
				t.Fatal(err)
			}
			cfg := &pmu.Config{Event: vm.EvInstRetired, Period: 487}
			sres, err := serial.RunIterations(cq, 1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Legacy host merge: the partitioned merge runs generated
			// scatter/merge kernels that exist only in parallel runs, so
			// their (deliberate, profiled) samples would skew the shares
			// this test compares; merge attribution has its own tests.
			par := parallelEngine(t, 4)
			par.Opts.Partitions = 0
			pcq, err := par.CompileQuery(w.Query)
			if err != nil {
				t.Fatal(err)
			}
			pres, err := par.Run(pcq, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sOps, pOps := opWeights(sres.Profile), opWeights(pres.Profile)
			sTot, pTot := float64(sres.Profile.TotalSamples), float64(pres.Profile.TotalSamples)
			if sTot == 0 || pTot == 0 {
				t.Fatal("no samples")
			}
			for op, sw := range sOps {
				sShare, pShare := sw/sTot, pOps[op]/pTot
				if math.Abs(sShare-pShare) > 0.10+5/sTot {
					t.Errorf("operator %q: serial share %.3f vs parallel %.3f", op, sShare, pShare)
				}
			}
		})
	}
}

// TestParallelWorkerStamping: per-worker buffers arrive stamped with the
// recording core's ID, survive the merge, and show up in the profile's
// per-worker breakdown.
func TestParallelWorkerStamping(t *testing.T) {
	e := parallelEngine(t, 4)
	w, _ := queries.ByName("fig9")
	cq, err := e.CompileQuery(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cq, &pmu.Config{Event: vm.EvInstRetired, Period: 487})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WorkerSamples) != 5 { // coordinator + 4 workers
		t.Fatalf("WorkerSamples buffers = %d, want 5", len(res.WorkerSamples))
	}
	for id, buf := range res.WorkerSamples {
		for _, s := range buf {
			if s.Worker != id {
				t.Fatalf("buffer %d contains sample stamped worker %d", id, s.Worker)
			}
		}
	}
	busy := 0
	for id, n := range res.Profile.ByWorker {
		if id < 0 || id > 4 {
			t.Fatalf("sample from unknown worker %d", id)
		}
		if id > 0 && n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d workers recorded samples", busy)
	}
	total := 0
	for _, buf := range res.WorkerSamples {
		total += len(buf)
	}
	if total != len(res.Samples) {
		t.Fatalf("merged %d samples from %d buffered", len(res.Samples), total)
	}
}

// TestParallelSpeedup: on a scan-heavy query, four simulated cores must
// finish in less than half the simulated wall-clock cycles of one.
func TestParallelSpeedup(t *testing.T) {
	var walls [2]uint64
	for i, workers := range []int{1, 4} {
		e := parallelEngine(t, workers)
		w, _ := queries.ByName("q6")
		cq, err := e.CompileQuery(w.Query)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(cq, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.WallCycles == 0 {
			t.Fatal("no wall clock")
		}
		walls[i] = res.WallCycles
	}
	speedup := float64(walls[0]) / float64(walls[1])
	t.Logf("q6: 1 worker %d cycles, 4 workers %d cycles (%.2fx)", walls[0], walls[1], speedup)
	if speedup < 2.0 {
		t.Fatalf("speedup %.2fx < 2x", speedup)
	}
}

// TestParallelStatsAccount: the summed worker statistics must cover at
// least the serial run's work (morsel prologues add a little on top), and
// the wall clock of a parallel run must never exceed the total cycles
// spent (work conservation).
func TestParallelStatsAccount(t *testing.T) {
	cat := testCatalog(t)
	w, _ := queries.ByName("q3")
	serial := New(cat, DefaultOptions())
	cq, err := serial.CompileQuery(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := serial.RunIterations(cq, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par := parallelEngine(t, 4)
	pcq, err := par.CompileQuery(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := par.Run(pcq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Stats.Instructions < sres.Stats.Instructions {
		t.Fatalf("parallel executed %d instructions, serial %d",
			pres.Stats.Instructions, sres.Stats.Instructions)
	}
	if pres.WallCycles > pres.Stats.TotalCycles() {
		t.Fatalf("wall %d cycles exceeds total work %d", pres.WallCycles, pres.Stats.TotalCycles())
	}
	if pres.WallCycles == 0 {
		t.Fatal("no wall clock")
	}
	// Sanity on the tuple counters path under the scheduler.
	if len(pres.Rows) == 0 {
		t.Fatal("no rows")
	}
}
