package engine

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/plan"
	"repro/internal/queries"
)

// region is a named address range for the overlap check.
type region struct {
	name     string
	from, to int64 // [from, to)
}

// TestLayoutRegionsDisjoint verifies, for every suite query, that the
// engine's heap layout never overlaps: state slots, descriptors, counter
// region, column data, directories, arenas, and the result buffer each own
// their range. An overlap here would silently corrupt query results.
func TestLayoutRegionsDisjoint(t *testing.T) {
	cat := testCatalog(t)
	opts := DefaultOptions()
	opts.TupleCounters = true // include the counter region in the check
	e := New(cat, opts)

	for _, w := range queries.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cq, err := e.CompileQuery(w.Query)
			if err != nil {
				t.Fatal(err)
			}
			lay := cq.Layout

			var regions []region
			add := func(name string, from, to int64) {
				if to <= from {
					t.Fatalf("region %s empty or inverted: [%d, %d)", name, from, to)
				}
				regions = append(regions, region{name, from, to})
			}

			nSlots := int64(len(lay.ColSlots) + len(lay.RowsSlots))
			add("state", lay.StateBase, lay.StateBase+nSlots*8)
			add("resultDesc", lay.ResultDesc, lay.ResultDesc+16)
			if lay.CounterBase != 0 {
				add("counters", lay.CounterBase, lay.CounterBase+1024*8)
			}
			for i, b := range cq.binds {
				add(fmt.Sprintf("column%d", i), b.addr, b.addr+b.cap*8)
			}
			hti := 0
			for n, ht := range lay.HT {
				add(fmt.Sprintf("desc:%s", n.Kind()), ht.Desc, ht.Desc+32)
				add(fmt.Sprintf("dir%d", hti), ht.Dir, ht.Dir+ht.DirSlots*8)
				add(fmt.Sprintf("arena%d", hti), ht.Arena, ht.ArenaEnd)
				hti++
			}
			add("result", cq.resultBase, cq.resultEnd)
			add("staging+spill", stagingAddr, layoutStart)

			sort.Slice(regions, func(i, j int) bool { return regions[i].from < regions[j].from })
			for i := 1; i < len(regions); i++ {
				a, b := regions[i-1], regions[i]
				if b.from < a.to && a.name != b.name && !sameDescBlock(a, b) {
					t.Fatalf("regions overlap: %s [%d,%d) and %s [%d,%d)",
						a.name, a.from, a.to, b.name, b.from, b.to)
				}
			}
			// Everything must fit in the heap.
			last := regions[len(regions)-1]
			if last.to > int64(cq.heapSize) {
				t.Fatalf("region %s exceeds heap (%d > %d)", last.name, last.to, cq.heapSize)
			}
		})
	}
}

// sameDescBlock tolerates descriptor blocks from the same contiguous
// descriptor area (they are distinct 32-byte slots laid out back to back).
func sameDescBlock(a, b region) bool {
	return len(a.name) > 5 && len(b.name) > 5 && a.name[:5] == "desc:" && b.name[:5] == "desc:" && a.to <= b.from+32
}

// TestLayoutDeterministic: compiling the same query twice yields identical
// layouts (maps must not introduce address nondeterminism).
func TestLayoutDeterministic(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	q := queries.Fig10(false).Query
	c1, err := e.CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Layout.StateBase != c2.Layout.StateBase || c1.resultBase != c2.resultBase {
		t.Fatal("layout base addresses differ between compiles")
	}
	if len(c1.Code.Program.Code) != len(c2.Code.Program.Code) {
		t.Fatalf("program sizes differ: %d vs %d",
			len(c1.Code.Program.Code), len(c2.Code.Program.Code))
	}
	for i := range c1.Code.Program.Code {
		if c1.Code.Program.Code[i] != c2.Code.Program.Code[i] {
			t.Fatalf("instruction %d differs between compiles", i)
		}
	}
}

// TestHeapSizeScalesWithBounds: the arena for a non-unique build key gets
// the paper-documented 4x fudge.
func TestHeapSizeScalesWithBounds(t *testing.T) {
	cat := testCatalog(t)
	e := New(cat, DefaultOptions())
	cq, err := e.CompileQuery(queries.Fig10(false).Query)
	if err != nil {
		t.Fatal(err)
	}
	var sawNonUnique bool
	for n, ht := range cq.Layout.HT {
		if j, ok := n.(*plan.Join); ok && !j.BuildUnique {
			sawNonUnique = true
			_ = ht
		}
	}
	if !sawNonUnique {
		t.Skip("plan has no non-unique build (data changed?)")
	}
}
