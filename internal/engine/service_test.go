package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/pmu"
	"repro/internal/ref"
	"repro/internal/sqlparse"
	"repro/internal/vm"
)

func testService(t *testing.T) *Service {
	t.Helper()
	return NewService(testCatalog(t), DefaultOptions(), 0)
}

// refRows cross-checks a prepared statement's plan on the interpreted
// reference executor with the statement's own bound parameters.
func refRows(t *testing.T, p *Prepared) [][]int64 {
	t.Helper()
	var params []int64
	if p.State != nil {
		params = p.State.Params
	}
	want, err := ref.ExecuteWith(p.Compiled.Plan, params)
	if err != nil {
		t.Fatalf("reference executor: %v", err)
	}
	return want
}

// TestServiceSameEntryDifferentLiterals is the headline acceptance
// criterion: two structurally identical statements that differ only in
// their literals share one cache entry — the second Prepare is a hit on
// the *same artifact* — while each statement executes with its own
// bound values and gets its own (different) result.
func TestServiceSameEntryDifferentLiterals(t *testing.T) {
	svc := testService(t)
	se := svc.NewSession()

	a, err := se.Prepare("select count(*) from lineitem where l_quantity < 10")
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit || a.Fallback {
		t.Fatalf("first prepare: hit=%v fallback=%v, want cold compile", a.CacheHit, a.Fallback)
	}
	b, err := se.Prepare("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 42;")
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit {
		t.Fatal("second prepare with a different literal: want a cache hit")
	}
	if a.Compiled != b.Compiled {
		t.Fatal("both statements must share one compiled artifact")
	}
	if a.Fingerprint != b.Fingerprint || a.Canon != b.Canon {
		t.Fatalf("fingerprints differ: %q vs %q", a.Canon, b.Canon)
	}
	if a.State.Params[0] != 10 || b.State.Params[0] != 42 {
		t.Fatalf("params = %v / %v, want 10 / 42", a.State.Params, b.State.Params)
	}

	ra, err := se.Run(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := se.Run(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, ra.Rows, refRows(t, a), false)
	rowsEqual(t, rb.Rows, refRows(t, b), false)
	if ra.Rows[0][0] >= rb.Rows[0][0] {
		t.Fatalf("count(<10)=%d should be smaller than count(<42)=%d — parameters not applied?",
			ra.Rows[0][0], rb.Rows[0][0])
	}

	st := svc.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestServiceCacheHitByteIdentical: a cache-hit execution must return
// byte-identical rows to the cold compile, and — because count-event PMU
// sampling is worker-count-invariant — the hit run's sample stream on 4
// workers must exactly match the cold run's on 1 worker.
func TestServiceCacheHitByteIdentical(t *testing.T) {
	svc := testService(t)
	cfg := &pmu.Config{Event: vm.EvInstRetired, Period: 487}

	cold := svc.NewSession()
	cold.SetWorkers(1)
	cold.SetMorselRows(256)
	p1, r1, err := cold.Execute("select l_orderkey, sum(l_quantity), sum(l_extendedprice) from lineitem where l_quantity < 24 group by l_orderkey", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.CacheHit {
		t.Fatal("cold execute reported a cache hit")
	}

	hot := svc.NewSession()
	hot.SetWorkers(4)
	hot.SetMorselRows(256)
	p2, r2, err := hot.Execute("select l_orderkey, sum(l_quantity), sum(l_extendedprice) from lineitem where l_quantity < 24 group by l_orderkey", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CacheHit {
		t.Fatal("second execute must hit the cache")
	}
	if p1.Compiled != p2.Compiled {
		t.Fatal("hit must serve the identical artifact")
	}

	// Byte-identical rows (the query has no ORDER BY; compare as sets —
	// then strictly: the engine's group order is deterministic, so the
	// ordered comparison must hold too).
	rowsEqual(t, r2.Rows, r1.Rows, true)

	// Worker-count-invariant count-event profile: same total, same
	// per-operator weights, cold-1-worker vs hit-4-workers.
	if r1.Profile == nil || r2.Profile == nil {
		t.Fatal("missing profiles")
	}
	if r1.Profile.TotalSamples != r2.Profile.TotalSamples {
		t.Fatalf("sample totals differ: cold %d vs hit %d",
			r1.Profile.TotalSamples, r2.Profile.TotalSamples)
	}
	w1, w2 := opWeights(r1.Profile), opWeights(r2.Profile)
	if len(w1) != len(w2) {
		t.Fatalf("operator sets differ: %v vs %v", w1, w2)
	}
	for name, want := range w1 {
		if got := w2[name]; got != want {
			t.Errorf("operator %q: cold weight %.3f, hit weight %.3f", name, want, got)
		}
	}
}

// TestServiceEncodedLiterals drives the per-type argument encodings end
// to end: date strings through the compared column's date parser,
// dictionary strings through its dictionary (including a miss, which must
// match zero rows), against the reference executor every time.
func TestServiceEncodedLiterals(t *testing.T) {
	svc := testService(t)
	se := svc.NewSession()
	stmts := []string{
		"select l_orderkey, count(*) from lineitem where l_shipdate < '1995-06-17' group by l_orderkey",
		"select count(*), sum(l_extendedprice) from lineitem where l_returnflag = 'R'",
		"select count(*), sum(l_extendedprice) from lineitem where l_returnflag = 'ZZZ-not-in-dict'",
	}
	for _, sql := range stmts {
		p, res, err := se.Execute(sql, nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if p.Fallback {
			t.Fatalf("%s: unexpected fallback", sql)
		}
		rowsEqual(t, res.Rows, refRows(t, p), false)
	}
	// The date must have been encoded, not passed as 0.
	p, err := se.Prepare(stmts[0])
	if err != nil {
		t.Fatal(err)
	}
	d, err := catalog.ParseDate("1995-06-17")
	if err != nil {
		t.Fatal(err)
	}
	if p.State.Params[0] != d {
		t.Fatalf("date param = %d, want %d", p.State.Params[0], d)
	}
	// The dictionary miss must encode as -1 (no row can match).
	p, err = se.Prepare(stmts[2])
	if err != nil {
		t.Fatal(err)
	}
	if p.State.Params[0] != -1 {
		t.Fatalf("dict-miss param = %d, want -1", p.State.Params[0])
	}
}

// TestEncodeParams pins the argument-encoding rules at the unit level:
// numbers raw, dates parsed, dictionary strings resolved (miss → -1),
// strings against numeric columns rejected, and count mismatches caught.
func TestEncodeParams(t *testing.T) {
	dict := catalog.NewDict()
	rID := dict.ID("R")
	num := func(n int64) sqlparse.Literal { return sqlparse.Literal{Kind: sqlparse.LitNum, Num: n} }
	str := func(s string) sqlparse.Literal { return sqlparse.Literal{Kind: sqlparse.LitStr, Str: s} }

	d, err := catalog.ParseDate("1994-01-31")
	if err != nil {
		t.Fatal(err)
	}
	infos := []plan.ParamInfo{
		{},                               // numeric context
		{Type: catalog.TDate},            // date column
		{Type: catalog.TStr, Dict: dict}, // dictionary column, present
		{Type: catalog.TStr, Dict: dict}, // dictionary column, miss
		{Type: catalog.TStr},             // string column without dictionary
	}
	vals, err := EncodeParams(infos, []sqlparse.Literal{
		num(77), str("1994-01-31"), str("R"), str("nope"), str("whatever"),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{77, d, rID, -1, -1}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("param %d = %d, want %d", i, vals[i], want[i])
		}
	}

	if _, err := EncodeParams(infos[:1], nil); err == nil {
		t.Error("count mismatch not rejected")
	}
	if _, err := EncodeParams([]plan.ParamInfo{{Type: catalog.TInt}},
		[]sqlparse.Literal{str("R")}); err == nil {
		t.Error("string literal against an int column not rejected")
	}
	if _, err := EncodeParams([]plan.ParamInfo{{Type: catalog.TDate}},
		[]sqlparse.Literal{str("not-a-date")}); err == nil {
		t.Error("malformed date not rejected")
	}
}

// TestServicePGOGenerationInvalidation: when Adapt's tuned binary wins,
// the profile is promoted to a new generation, the tuned artifact lands
// in the cache under the new key, older generations are invalidated, and
// the very next Prepare — from a *different* session — serves the tuned
// artifact as a cache hit.
func TestServicePGOGenerationInvalidation(t *testing.T) {
	svc := testService(t)
	se := svc.NewSession()
	const sql = "select l_orderkey, sum(l_quantity), sum(l_extendedprice) from lineitem where l_quantity < 24 group by l_orderkey"

	ar, err := se.Adapt(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := svc.NewSession().Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CacheHit {
		t.Fatal("prepare after Adapt must hit the cache")
	}
	fp, err := sqlparse.Normalize(sql)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Speedup() > 1 {
		// The win was promoted: new generation, tuned artifact served.
		if gen := svc.gens.Current(fp.Hash); gen == 0 {
			t.Fatal("winning profile was not promoted to a new generation")
		}
		if p2.Compiled != ar.Recompiled {
			t.Fatal("prepare after promotion must serve the tuned artifact")
		}
		if st := svc.CacheStats(); st.Invalidations == 0 {
			t.Fatalf("stale generation not invalidated: %+v", st)
		}
	} else {
		// No win, no promotion: the original artifact stays current.
		if gen := svc.gens.Current(fp.Hash); gen != 0 {
			t.Fatalf("generation bumped (%d) without a speedup", gen)
		}
	}
	// Either way the served artifact's rows must match the reference.
	res, err := se.Run(p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, res.Rows, refRows(t, p2), false)
}

// TestServiceConcurrentSessions is the -race gate for the shared-artifact
// contract: many sessions, two statement shapes (one shared fingerprint
// with two different literals, plus a second query), mixed worker counts,
// all banging on the same Service. Every run must match the reference
// executor, and the two literal variants must have used one artifact.
func TestServiceConcurrentSessions(t *testing.T) {
	svc := testService(t)
	type variant struct {
		sql  string
		want [][]int64
	}
	variants := []variant{
		{sql: "select count(*) from lineitem where l_quantity < 10"},
		{sql: "select count(*) from lineitem where l_quantity < 42"},
		{sql: "select l_orderkey, sum(l_quantity) as qty from lineitem group by l_orderkey order by qty desc limit 10"},
	}
	// Precompute reference rows once (the reference executor is also the
	// arbiter of the parameter encodings).
	warm := svc.NewSession()
	for i := range variants {
		p, err := warm.Prepare(variants[i].sql)
		if err != nil {
			t.Fatal(err)
		}
		variants[i].want = refRows(t, p)
	}

	const G = 12
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, G*iters)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			se := svc.NewSession()
			if g%2 == 1 {
				se.SetWorkers(4)
				se.SetMorselRows(256)
			}
			for i := 0; i < iters; i++ {
				v := variants[(g+i)%len(variants)]
				p, res, err := se.Execute(v.sql, nil)
				if err != nil {
					errs <- fmt.Errorf("g%d: %s: %w", g, v.sql, err)
					return
				}
				ordered := len(p.Compiled.Plan.OrderBy) > 0
				if !sameRows(res.Rows, v.want, ordered) {
					errs <- fmt.Errorf("g%d: %s: rows diverge from reference", g, v.sql)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The two count(*) literal variants share one fingerprint: across the
	// warmup + G*iters executions the cache must have compiled at most
	// len(variants) artifacts (plus any adaptive noise — none here).
	if n := svc.CacheLen(); n != len(variants)-1 {
		t.Fatalf("cache holds %d artifacts, want %d (literal variants must share)",
			n, len(variants)-1)
	}
	st := svc.CacheStats()
	if st.Misses < uint64(len(variants)-1) || st.Hits == 0 {
		t.Fatalf("implausible traffic: %+v", st)
	}
}

// sameRows is rowsEqual without the Fatal: a bool for goroutine use.
func sameRows(a, b [][]int64, ordered bool) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r []int64) string { return fmt.Sprint(r) }
	if ordered {
		for i := range a {
			if key(a[i]) != key(b[i]) {
				return false
			}
		}
		return true
	}
	am := map[string]int{}
	for _, r := range a {
		am[key(r)]++
	}
	for _, r := range b {
		am[key(r)]--
	}
	for _, n := range am {
		if n != 0 {
			return false
		}
	}
	return true
}
