package engine

import (
	"reflect"
	"testing"

	"repro/internal/pgo"
)

// TestOptionsDigestCoversEveryField is a reflection guard on the cache
// key: every exported leaf field reachable from Options must change the
// digest when it changes. A field added to Options (or to an embedded
// options struct like iropt.Options) that Digest fails to hash would
// silently serve artifacts compiled under different configurations from
// one cache entry; this test fails on such a field the day it is added.
func TestOptionsDigestCoversEveryField(t *testing.T) {
	d0 := DefaultOptions().Digest()
	if DefaultOptions().Digest() != d0 {
		t.Fatal("digest is not deterministic")
	}

	var leaves []leafPath
	collectLeaves(reflect.TypeOf(Options{}), nil, "Options", &leaves)
	if len(leaves) < 10 {
		t.Fatalf("only %d leaf fields found — reflection walk broken?", len(leaves))
	}
	for _, lf := range leaves {
		o := DefaultOptions()
		v := reflect.ValueOf(&o).Elem()
		for _, i := range lf.chain {
			v = v.Field(i)
		}
		mutateValue(t, lf.path, v)
		if o.Digest() == d0 {
			t.Errorf("mutating %s did not change the digest", lf.path)
		}
	}
	t.Logf("digest covers %d leaf fields", len(leaves))
}

// TestOptionsDigestShardKnobs pins the sharding knobs into the cache key
// explicitly (the reflection guard above covers them generically): an
// artifact compiled under one shard configuration must never be served
// for another, since the coordinator's decision — and with it the skip
// events — is baked into the artifact on the service path.
func TestOptionsDigestShardKnobs(t *testing.T) {
	base := DefaultOptions()
	d0 := base.Digest()

	a := base
	a.Shards = 4
	if a.Digest() == d0 {
		t.Error("Options.Shards does not feed the digest")
	}
	b := base
	b.ShardPruning = !base.ShardPruning
	if b.Digest() == d0 {
		t.Error("Options.ShardPruning does not feed the digest")
	}
	c := base
	c.Shards = 8
	if c.Digest() == a.Digest() {
		t.Error("different shard counts share a digest")
	}
}

type leafPath struct {
	chain []int
	path  string
}

func collectLeaves(typ reflect.Type, chain []int, path string, out *[]leafPath) {
	if typ.Kind() == reflect.Struct {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() {
				continue
			}
			sub := append(append([]int{}, chain...), i)
			collectLeaves(f.Type, sub, path+"."+f.Name, out)
		}
		return
	}
	*out = append(*out, leafPath{chain: chain, path: path})
}

// mutateValue changes one leaf to a different value. Reference kinds
// (func, interface, map, slice, pointer) flip nil-ness, matching the
// presence-only hashing Digest applies to them.
func mutateValue(t *testing.T, path string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1)
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Func:
		if !v.IsNil() {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		v.Set(reflect.MakeFunc(v.Type(), func(args []reflect.Value) []reflect.Value {
			out := make([]reflect.Value, v.Type().NumOut())
			for i := range out {
				out[i] = reflect.Zero(v.Type().Out(i))
			}
			return out
		}))
	case reflect.Interface:
		if !v.IsNil() {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		hv := reflect.ValueOf(&pgo.Hotness{})
		if !hv.Type().AssignableTo(v.Type()) {
			t.Fatalf("field %s: no known concrete value for interface %s — extend mutateValue", path, v.Type())
		}
		v.Set(hv)
	case reflect.Ptr:
		if !v.IsNil() {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		v.Set(reflect.New(v.Type().Elem()))
	case reflect.Map:
		if !v.IsNil() {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		v.Set(reflect.MakeMap(v.Type()))
	case reflect.Slice:
		if !v.IsNil() {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		v.Set(reflect.MakeSlice(v.Type(), 1, 1))
	default:
		t.Fatalf("field %s has unhandled kind %s — extend mutateValue and check Options.Digest handles it", path, v.Kind())
	}
}
