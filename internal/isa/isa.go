// Package isa defines the simulated native instruction set that the code
// generator targets and the vm executes.
//
// The ISA plays the role of x86 machine code in the paper: it is the lowest
// abstraction level, the one the PMU samples point into. It is a simple
// register machine:
//
//   - 16 general-purpose 64-bit registers r0..r15 (like x86-64),
//   - a stack pointer sp (unused by generated code; spill slots live in a
//     dedicated heap region).
//
// Calling convention: arguments in r0..r3, result in r0; a call clobbers
// r0..r4 and preserves r5..r15 (hand-written runtime routines restrict
// themselves to r0..r4). There is deliberately no architectural tag
// register: Register Tagging reserves one of the *general-purpose*
// registers (r15 by convention), exactly as the paper reserves an x86 GPR —
// that reservation is what causes the ≈2.8% code-quality overhead measured
// in §6.2, and the PMU simply captures the whole register file.
package isa

import "fmt"

// NumGPR is the number of general-purpose registers.
const NumGPR = 16

// Reg identifies a machine register.
type Reg uint8

// Special registers beyond the general-purpose file.
const (
	SP Reg = 16 // stack pointer

	// NumRegs is the total register file size recorded in PMU samples.
	NumRegs = 17
)

// TagReg is the general-purpose register reserved for Register Tagging by
// convention (the code generator removes it from allocation when tagging
// is enabled, §4.2.5 / §5.3 of the paper).
const TagReg Reg = 15

// Calling convention.
const (
	// NumArgRegs arguments are passed in r0..r3; results return in r0.
	NumArgRegs = 4
	// LastClobbered: a CALL clobbers r0..r4; r5..r15 are preserved.
	LastClobbered Reg = 4
)

func (r Reg) String() string {
	if r == SP {
		return "sp"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is a native opcode.
type Op uint8

// The instruction set. Loads and stores address memory as base register +
// signed immediate displacement, optionally plus an index register scaled
// by the access width (Scaled flag); widths are 1, 4 or 8 bytes.
const (
	NOP Op = iota

	// Data movement.
	MOVRR // Dst = Src1
	MOVRI // Dst = Imm

	// Memory. Address = R(Src1) + Imm [+ R(Src2)*width if Scaled].
	LOAD8
	LOAD32
	LOAD64
	STORE8 // mem[addr] = R(Src2value) — see Instr docs
	STORE32
	STORE64

	// Arithmetic / logic: Dst = Src1 op Src2 (or Imm when UseImm).
	ADD
	SUB
	MUL
	DIV // signed; division by zero traps the VM
	MOD
	AND
	OR
	XOR
	SHL
	SHR
	ROTR
	CRC32 // Dst = crc32 mixing step of (Src1, Src2/Imm)

	// Comparisons: Dst = 1 if compare holds else 0.
	CMPEQ
	CMPNE
	CMPLT // signed <
	CMPLE
	CMPGT
	CMPGE

	// Control flow. Branch targets are absolute instruction indices (Imm).
	JMP
	JNZ // jump if R(Src1) != 0
	JZ  // jump if R(Src1) == 0
	// Fused compare-and-branch forms produced by peephole instruction
	// fusing in the backend (Table 1 "Instruction fusing").
	JEQ // jump if R(Src1) == R(Src2)
	JNE
	JLT
	JGE

	CALL // call function at absolute instruction index Imm
	RET

	HALT // end of program
	TRAP // runtime error (bounds, div-by-zero guard); stops the VM
)

var opNames = [...]string{
	NOP: "nop", MOVRR: "mov", MOVRI: "movi",
	LOAD8: "load8", LOAD32: "load32", LOAD64: "load64",
	STORE8: "store8", STORE32: "store32", STORE64: "store64",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", ROTR: "rotr",
	CRC32: "crc32",
	CMPEQ: "cmpeq", CMPNE: "cmpne", CMPLT: "cmplt", CMPLE: "cmple",
	CMPGT: "cmpgt", CMPGE: "cmpge",
	JMP: "jmp", JNZ: "jnz", JZ: "jz",
	JEQ: "jeq", JNE: "jne", JLT: "jlt", JGE: "jge",
	CALL: "call", RET: "ret",
	HALT: "halt", TRAP: "trap",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one native instruction. The operand meaning depends on Op:
//
//   - MOVRR:   Dst ← Src1
//   - MOVRI:   Dst ← Imm
//   - LOADx:   Dst ← mem[R(Src1)+Imm (+R(Src2)*width if Scaled)]
//   - STOREx:  mem[R(Src1)+Imm (+R(Src2)*width if Scaled)] ← R(Dst)
//     (the stored value lives in Dst so that all three operand slots
//     can participate in addressing; the VM and allocator know this)
//   - binary:  Dst ← R(Src1) op (UseImm ? Imm : R(Src2))
//   - JMP/CALL: target = Imm
//   - JNZ/JZ:  condition register Src1, target Imm
//   - Jcc:     compare R(Src1) with (UseImm ? Imm : R(Src2)), target in Imm2
type Instr struct {
	Op     Op
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	Imm2   int64 // secondary immediate: branch target for fused Jcc
	UseImm bool  // second operand is Imm rather than Src2
	Scaled bool  // memory operand adds R(Src2)*width
	Abs    bool  // memory operand is the absolute address Imm (no base register)
}

// IsLoad reports whether the instruction reads memory.
func (in *Instr) IsLoad() bool {
	return in.Op == LOAD8 || in.Op == LOAD32 || in.Op == LOAD64
}

// IsStore reports whether the instruction writes memory.
func (in *Instr) IsStore() bool {
	return in.Op == STORE8 || in.Op == STORE32 || in.Op == STORE64
}

// IsBranch reports whether the instruction may transfer control (excluding
// CALL/RET/HALT).
func (in *Instr) IsBranch() bool {
	switch in.Op {
	case JMP, JNZ, JZ, JEQ, JNE, JLT, JGE:
		return true
	}
	return false
}

// Width returns the access width in bytes for memory instructions, 0 otherwise.
func (in *Instr) Width() int64 {
	switch in.Op {
	case LOAD8, STORE8:
		return 1
	case LOAD32, STORE32:
		return 4
	case LOAD64, STORE64:
		return 8
	}
	return 0
}

// String renders the instruction in a compact assembly-like syntax.
func (in *Instr) String() string {
	switch in.Op {
	case NOP, RET, HALT, TRAP:
		return in.Op.String()
	case MOVRR:
		return fmt.Sprintf("mov %s, %s", in.Dst, in.Src1)
	case MOVRI:
		return fmt.Sprintf("movi %s, %d", in.Dst, in.Imm)
	case LOAD8, LOAD32, LOAD64:
		return fmt.Sprintf("%s %s, [%s]", in.Op, in.Dst, in.memOperand())
	case STORE8, STORE32, STORE64:
		return fmt.Sprintf("%s [%s], %s", in.Op, in.memOperand(), in.Dst)
	case JMP:
		return fmt.Sprintf("jmp %d", in.Imm)
	case JNZ, JZ:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Src1, in.Imm)
	case JEQ, JNE, JLT, JGE:
		if in.UseImm {
			return fmt.Sprintf("%s %s, %d, %d", in.Op, in.Src1, in.Imm, in.Imm2)
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Src1, in.Src2, in.Imm2)
	case CALL:
		return fmt.Sprintf("call %d", in.Imm)
	default:
		if in.UseImm {
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	}
}

func (in *Instr) memOperand() string {
	s := ""
	if in.Abs {
		s = fmt.Sprintf("%d", in.Imm)
	} else {
		s = fmt.Sprintf("%s%+d", in.Src1, in.Imm)
	}
	if in.Scaled {
		s += fmt.Sprintf("+%s*%d", in.Src2, in.Width())
	}
	return s
}

// Program is an executable sequence of native instructions plus symbol
// information for functions (used by the disassembler and by call-stack
// resolution in the profiler).
type Program struct {
	Code  []Instr
	Funcs []FuncSym
}

// FuncSym describes one function's extent inside Program.Code.
type FuncSym struct {
	Name  string
	Entry int // first instruction index
	End   int // one past the last instruction index
}

// FuncAt returns the symbol covering instruction index ip, or nil.
func (p *Program) FuncAt(ip int) *FuncSym {
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if ip >= f.Entry && ip < f.End {
			return f
		}
	}
	return nil
}

// Disasm renders the whole program with function headers.
func (p *Program) Disasm() string {
	out := ""
	for i := range p.Code {
		for j := range p.Funcs {
			if p.Funcs[j].Entry == i {
				out += fmt.Sprintf("%s:\n", p.Funcs[j].Name)
			}
		}
		out += fmt.Sprintf("  %4d  %s\n", i, p.Code[i].String())
	}
	return out
}
