package isa

import (
	"strings"
	"testing"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{0: "r0", 11: "r11", 15: "r15", SP: "sp"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestWidths(t *testing.T) {
	cases := []struct {
		op   Op
		want int64
	}{
		{LOAD8, 1}, {LOAD32, 4}, {LOAD64, 8},
		{STORE8, 1}, {STORE32, 4}, {STORE64, 8},
		{ADD, 0}, {JMP, 0},
	}
	for _, c := range cases {
		in := Instr{Op: c.op}
		if got := in.Width(); got != c.want {
			t.Errorf("%v.Width() = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestClassifiers(t *testing.T) {
	if !(&Instr{Op: LOAD64}).IsLoad() || (&Instr{Op: STORE64}).IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !(&Instr{Op: STORE8}).IsStore() || (&Instr{Op: LOAD8}).IsStore() {
		t.Error("IsStore misclassifies")
	}
	for _, op := range []Op{JMP, JNZ, JZ, JEQ, JNE, JLT, JGE} {
		if !(&Instr{Op: op}).IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	for _, op := range []Op{CALL, RET, HALT, ADD} {
		if (&Instr{Op: op}).IsBranch() {
			t.Errorf("%v should not be a branch", op)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: MOVRI, Dst: 3, Imm: 42}, "movi r3, 42"},
		{Instr{Op: MOVRR, Dst: 1, Src1: 2}, "mov r1, r2"},
		{Instr{Op: LOAD64, Dst: 0, Src1: 1, Imm: 16}, "load64 r0, [r1+16]"},
		{Instr{Op: LOAD64, Dst: 0, Abs: true, Imm: 512}, "load64 r0, [512]"},
		{Instr{Op: STORE64, Dst: 3, Src1: 4, Src2: 2, Scaled: true}, "store64 [r4+0+r2*8], r3"},
		{Instr{Op: ADD, Dst: 0, Src1: 1, UseImm: true, Imm: 8}, "add r0, r1, 8"},
		{Instr{Op: ADD, Dst: 0, Src1: 1, Src2: 2}, "add r0, r1, r2"},
		{Instr{Op: JGE, Src1: 4, Src2: 2, Imm2: 5}, "jge r4, r2, 5"},
		{Instr{Op: JEQ, Src1: 1, UseImm: true, Imm: 7, Imm2: 12}, "jeq r1, 7, 12"},
		{Instr{Op: CALL, Imm: 99}, "call 99"},
		{Instr{Op: RET}, "ret"},
		{Instr{Op: JNZ, Src1: 2, Imm: 10}, "jnz r2, 10"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramFuncAt(t *testing.T) {
	p := &Program{
		Code: make([]Instr, 10),
		Funcs: []FuncSym{
			{Name: "main", Entry: 0, End: 4},
			{Name: "helper", Entry: 4, End: 10},
		},
	}
	if f := p.FuncAt(0); f == nil || f.Name != "main" {
		t.Fatalf("FuncAt(0) = %v", f)
	}
	if f := p.FuncAt(4); f == nil || f.Name != "helper" {
		t.Fatalf("FuncAt(4) = %v", f)
	}
	if f := p.FuncAt(10); f != nil {
		t.Fatalf("FuncAt(10) = %v, want nil", f)
	}
}

func TestDisasmContainsSymbols(t *testing.T) {
	p := &Program{
		Code: []Instr{{Op: MOVRI, Dst: 0, Imm: 1}, {Op: HALT}},
		Funcs: []FuncSym{
			{Name: "main", Entry: 0, End: 2},
		},
	}
	d := p.Disasm()
	if !strings.Contains(d, "main:") || !strings.Contains(d, "movi r0, 1") {
		t.Fatalf("Disasm output:\n%s", d)
	}
}

func TestOpStringTotal(t *testing.T) {
	for op := NOP; op <= TRAP; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no name", op)
		}
	}
}
