package verify

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// ---------------------------------------------------------------------------
// Partitioned-merge invariants
// ---------------------------------------------------------------------------

// MergeInvariants checks every partitioned sink's merge artifacts
// (DESIGN.md §11) before any kernel runs:
//
//   - partition arithmetic: the partition count is a power of two and the
//     per-partition directory slot ranges [p<<shift, (p+1)<<shift) tile
//     the directory exactly — disjointness and coverage in one equation;
//   - staging regions: every heap region the merge protocol uses is
//     allocated, sized, and mutually disjoint (and disjoint from the
//     directory and arena they feed);
//   - merge kernels are first-class profiled code: each generated
//     function exists in the module, every one of its instructions
//     resolves through Log B to the registered merge task, the task's
//     kind is a merge role, and Log A links it to the sink's operator;
//   - bloom filters: bit counts are powers of two sized to the directory,
//     and the bit array does not overlap the structures it guards.
type MergeInvariants struct{}

// Name implements Checker.
func (MergeInvariants) Name() string { return "merge" }

// Check implements Checker.
func (MergeInvariants) Check(a *Artifact) []Diag {
	if a.Pipelines == nil {
		return nil
	}
	var out []Diag
	diag := func(rule string, level core.Level, locus, format string, args ...any) {
		out = append(out, Diag{
			Check: "merge/" + rule, Severity: Error, Level: level,
			Locus: locus, Msg: fmt.Sprintf(format, args...),
		})
	}

	for i := range a.Pipelines {
		info := &a.Pipelines[i]
		mi := info.Merge
		if mi == nil {
			continue
		}
		ht := info.Sink.HT
		locus := fmt.Sprintf("pipeline %q", info.Name)

		// Partition arithmetic. One equation proves both disjointness and
		// coverage: ranges [p<<shift, (p+1)<<shift) for p in [0, P) are
		// disjoint by construction and tile [0, DirSlots) iff
		// P * 2^shift == DirSlots.
		p := ht.Partitions
		if p <= 0 || p&(p-1) != 0 {
			diag("partitions", core.LevelTask, locus,
				"partition count %d is not a positive power of two", p)
			continue
		}
		if p != mi.Partitions {
			diag("partitions", core.LevelTask, locus,
				"layout has %d partitions but merge info says %d", p, mi.Partitions)
		}
		if got := p << ht.SlotShift; got != ht.DirSlots {
			diag("slot-ranges", core.LevelTask, locus,
				"partition slot ranges do not tile the directory: %d partitions × 2^%d slots = %d, directory has %d",
				p, ht.SlotShift, got, ht.DirSlots)
		}

		// Staging regions: allocated and pairwise disjoint.
		arenaCap := ht.ArenaEnd - ht.Arena
		vecCap := (arenaCap / ht.EntrySize) * 8
		type region struct {
			name string
			base int64
			size int64
		}
		regions := []region{
			{"directory", ht.Dir, ht.DirSlots * 8},
			{"arena", ht.Arena, arenaCap},
			{"scatter-out", ht.ScatterOut, arenaCap},
			{"merge-cnt", ht.MergeCnt, p * 8},
			{"merge-cur", ht.MergeCur, p * 8},
			{"merge-src", ht.MergeSrc, arenaCap},
			{"merge-vec", ht.MergeVec, vecCap},
			{"merge-param", ht.MergeParam, pipeline.MergeParamSlots * 8},
		}
		if info.Sink.Kind == pipeline.SinkGroupAgg {
			regions = append(regions,
				region{"merge-out", ht.MergeOut, arenaCap},
				region{"merge-seq", ht.MergeSeq, vecCap})
		}
		if ht.BloomBits > 0 {
			regions = append(regions, region{"bloom", ht.BloomBase, ht.BloomBits / 8})
		}
		for _, r := range regions[2:] { // dir and arena are always allocated
			if r.base == 0 {
				diag("region", core.LevelTask, locus, "%s region not allocated", r.name)
			}
		}
		for i := range regions {
			for j := i + 1; j < len(regions); j++ {
				ri, rj := regions[i], regions[j]
				if ri.base < rj.base+rj.size && rj.base < ri.base+ri.size {
					diag("region-overlap", core.LevelTask, locus,
						"%s region [%d,%d) overlaps %s region [%d,%d)",
						ri.name, ri.base, ri.base+ri.size, rj.name, rj.base, rj.base+rj.size)
				}
			}
		}

		// Bloom bounds (join builds only; the probe side indexes with
		// idx & (BloomBits-1), so the count must be a power of two).
		if ht.BloomBits > 0 {
			if ht.BloomBits&(ht.BloomBits-1) != 0 {
				diag("bloom", core.LevelTask, locus,
					"bloom bit count %d is not a power of two", ht.BloomBits)
			}
			if ht.BloomBits != ht.DirSlots*8 {
				diag("bloom", core.LevelTask, locus,
					"bloom bit count %d not sized to directory (%d slots × 8)",
					ht.BloomBits, ht.DirSlots)
			}
		}

		// Merge kernels: generated, registered, and attributable.
		kernels := []struct {
			fn   string
			task core.ComponentID
		}{
			{mi.ScatterFunc, mi.ScatterTask},
			{mi.MergeFunc, mi.MergeTask},
		}
		if mi.PlaceFunc != "" {
			kernels = append(kernels, struct {
				fn   string
				task core.ComponentID
			}{mi.PlaceFunc, mi.PlaceTask})
		}
		for _, k := range kernels {
			klocus := locus + " func " + k.fn
			comp, ok := a.Dict.Registry.Lookup(k.task)
			if !ok {
				diag("task", core.LevelTask, klocus, "merge task %d not registered", k.task)
				continue
			}
			if !pipeline.MergeRole(comp.Kind) {
				diag("task", core.LevelTask, klocus,
					"task %q has kind %q, not a merge role", comp.Name, comp.Kind)
			}
			if a.Dict.OperatorOf(k.task) == core.NoComponent {
				diag("task", core.LevelTask, klocus,
					"merge task %q has no Log A operator link", comp.Name)
			}
			if a.Module == nil {
				continue
			}
			f := a.Module.FuncByName(k.fn)
			if f == nil {
				diag("func", core.LevelIR, klocus, "generated merge function missing from module")
				continue
			}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					linked := false
					for _, t := range a.Dict.TasksOf(in.ID) {
						if t == k.task {
							linked = true
							break
						}
					}
					if !linked {
						diag("lineage", core.LevelIR,
							fmt.Sprintf("%s.%s %%%d", k.fn, b.Name, in.ID),
							"merge-kernel instruction not linked to task %q", comp.Name)
					}
				}
			}
		}
	}
	return out
}
