package absint

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/verify"
)

func makeRes(code []isa.Instr, funcs []isa.FuncSym) *codegen.Result {
	nm := core.NewNativeMap(len(code))
	return &codegen.Result{
		Program: &isa.Program{Code: code, Funcs: funcs},
		NMap:    nm,
	}
}

func diagChecks(ds []verify.Diag) string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Check)
	}
	return strings.Join(out, ",")
}

// TestLoopAccessesProved is the headline positive case: a counted loop over
// a column whose base and row count come from staged-cell facts. Branch
// refinement bounds the index, the congruence domain proves 8-byte
// alignment, and every access in the program is proved — zero diagnostics,
// zero unproven accesses.
func TestLoopAccessesProved(t *testing.T) {
	const (
		colBase = 4096
		rows    = 100
	)
	code := []isa.Instr{
		{Op: isa.LOAD64, Dst: 1, Abs: true, Imm: 256},            // r1 = col base
		{Op: isa.LOAD64, Dst: 2, Abs: true, Imm: 264},            // r2 = rows
		{Op: isa.MOVRI, Dst: 3, Imm: 0},                          // i = 0
		{Op: isa.JGE, Src1: 3, Src2: 2, Imm2: 8},                 // head: i >= rows → exit
		{Op: isa.LOAD64, Dst: 4, Src1: 1, Src2: 3, Scaled: true}, // v = col[i]
		{Op: isa.STORE64, Dst: 4, Abs: true, Imm: 2048},          // out = v
		{Op: isa.ADD, Dst: 3, Src1: 3, Imm: 1, UseImm: true},     // i++
		{Op: isa.JMP, Imm: 3},
		{Op: isa.HALT},
	}
	res := makeRes(code, []isa.FuncSym{{Name: "main", Entry: 0, End: len(code)}})
	mem := &verify.MemModel{
		HeapSize: 16384,
		Regions: []verify.MemRegion{
			{Name: "state", Lo: 256, Hi: 272},
			{Name: "result", Lo: 2048, Hi: 2112, Writable: true},
			{Name: "col", Lo: colBase, Hi: colBase + 8*rows},
		},
		Cells: map[int64]verify.CellFact{
			256: {Lo: colBase, Hi: colBase, Align: 8},
			264: {Lo: rows, Hi: rows},
		},
	}
	rep := Analyze(res, mem, true)
	if len(rep.Diags) != 0 {
		t.Fatalf("clean loop flagged: %v", rep.Diags)
	}
	if rep.Accesses != 4 || rep.Proved != 4 || rep.Unproven != 0 {
		t.Fatalf("want 4/4 proved, got accesses=%d proved=%d unproven=%d",
			rep.Accesses, rep.Proved, rep.Unproven)
	}
}

// TestLoopWithoutBoundFactIsUnprovenNotFlagged drops the row-count fact:
// the scaled access can no longer be proved in-bounds, but since nothing
// proves it *out* of bounds either, the analysis must stay silent.
func TestLoopWithoutBoundFactIsUnprovenNotFlagged(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LOAD64, Dst: 1, Abs: true, Imm: 256},
		{Op: isa.LOAD64, Dst: 2, Abs: true, Imm: 264},
		{Op: isa.MOVRI, Dst: 3, Imm: 0},
		{Op: isa.JGE, Src1: 3, Src2: 2, Imm2: 8},
		{Op: isa.LOAD64, Dst: 4, Src1: 1, Src2: 3, Scaled: true},
		{Op: isa.STORE64, Dst: 4, Abs: true, Imm: 2048},
		{Op: isa.ADD, Dst: 3, Src1: 3, Imm: 1, UseImm: true},
		{Op: isa.JMP, Imm: 3},
		{Op: isa.HALT},
	}
	res := makeRes(code, []isa.FuncSym{{Name: "main", Entry: 0, End: len(code)}})
	mem := &verify.MemModel{
		HeapSize: 16384,
		Regions: []verify.MemRegion{
			{Name: "state", Lo: 256, Hi: 272},
			{Name: "result", Lo: 2048, Hi: 2112, Writable: true},
			{Name: "col", Lo: 4096, Hi: 4896},
		},
		Cells: map[int64]verify.CellFact{
			256: {Lo: 4096, Hi: 4096, Align: 8},
			// no fact for 264: rows unknown
		},
	}
	rep := Analyze(res, mem, true)
	if len(rep.Diags) != 0 {
		t.Fatalf("unprovable-but-legal access flagged: %v", rep.Diags)
	}
	if rep.Unproven == 0 {
		t.Fatal("scaled access with unknown bound should be unproven")
	}
}

func TestDefiniteViolations(t *testing.T) {
	mem := &verify.MemModel{
		HeapSize: 8192,
		Regions: []verify.MemRegion{
			{Name: "col", Lo: 4096, Hi: 8192},
			{Name: "scratch", Lo: 512, Hi: 1024, Writable: true},
		},
	}
	cases := []struct {
		name string
		code []isa.Instr
		want string // Diag.Check
	}{
		{"misaligned store", []isa.Instr{
			{Op: isa.STORE64, Dst: 0, Abs: true, Imm: 513},
			{Op: isa.HALT},
		}, "absint/misaligned"},
		{"oob load", []isa.Instr{
			{Op: isa.LOAD64, Dst: 0, Abs: true, Imm: 12288},
			{Op: isa.HALT},
		}, "absint/oob"},
		{"store into read-only column", []isa.Instr{
			{Op: isa.STORE64, Dst: 0, Abs: true, Imm: 4096},
			{Op: isa.HALT},
		}, "absint/readonly-store"},
		{"computed misaligned", []isa.Instr{
			// r1 = 512 + 8k (aligned base), then +4 breaks 8-byte alignment
			// through arithmetic, not a literal address.
			{Op: isa.MOVRI, Dst: 1, Imm: 512},
			{Op: isa.ADD, Dst: 1, Src1: 1, Imm: 4, UseImm: true},
			{Op: isa.LOAD64, Dst: 2, Src1: 1},
			{Op: isa.HALT},
		}, "absint/misaligned"},
		{"division by provably zero", []isa.Instr{
			{Op: isa.MOVRI, Dst: 1, Imm: 0},
			{Op: isa.DIV, Dst: 2, Src1: 0, Src2: 1},
			{Op: isa.HALT},
		}, "absint/div-zero"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := makeRes(tc.code, []isa.FuncSym{{Name: "main", Entry: 0, End: len(tc.code)}})
			rep := Analyze(res, mem, true)
			if !strings.Contains(diagChecks(rep.Diags), tc.want) {
				t.Fatalf("want %s, got %q (%v)", tc.want, diagChecks(rep.Diags), rep.Diags)
			}
		})
	}
}

// TestTagDataflow checks the flow-sensitive shared-call protocol: a call
// into a shared routine is flagged only when some path reaches it without
// a tag-register write.
func TestTagDataflow(t *testing.T) {
	mem := &verify.MemModel{HeapSize: 8192}
	build := func(tagged bool) *codegen.Result {
		var code []isa.Instr
		if tagged {
			code = append(code, isa.Instr{Op: isa.MOVRI, Dst: isa.TagReg, Imm: 7})
		} else {
			code = append(code, isa.Instr{Op: isa.NOP})
		}
		callPos := len(code)
		sharedEntry := callPos + 2
		code = append(code,
			isa.Instr{Op: isa.CALL, Imm: int64(sharedEntry)},
			isa.Instr{Op: isa.HALT},
			isa.Instr{Op: isa.RET}, // ht_insert stub
		)
		res := makeRes(code, []isa.FuncSym{
			{Name: "main", Entry: 0, End: sharedEntry},
			{Name: "ht_insert", Entry: sharedEntry, End: sharedEntry + 1},
		})
		res.NMap.Region[sharedEntry] = core.RegionShared
		res.NMap.Routine[sharedEntry] = "ht_insert"
		return res
	}

	rep := Analyze(build(false), mem, true)
	if !strings.Contains(diagChecks(rep.Diags), "absint/untagged-shared-call") {
		t.Fatalf("untagged shared call not caught: %v", rep.Diags)
	}
	rep = Analyze(build(true), mem, true)
	if len(rep.Diags) != 0 {
		t.Fatalf("tagged shared call flagged: %v", rep.Diags)
	}
	// Without register tagging the protocol does not apply.
	rep = Analyze(build(false), mem, false)
	if len(rep.Diags) != 0 {
		t.Fatalf("protocol applied without register tagging: %v", rep.Diags)
	}
}

// TestTagKilledOnOnePath verifies the "definitely on all paths" meet: if
// one branch writes the tag and the other does not, the join is untagged
// and a following shared call is flagged.
func TestTagKilledOnOnePath(t *testing.T) {
	mem := &verify.MemModel{HeapSize: 8192}
	code := []isa.Instr{
		{Op: isa.JZ, Src1: 0, Imm: 2},            // 0: skip tag write if r0 == 0
		{Op: isa.MOVRI, Dst: isa.TagReg, Imm: 7}, // 1: tag write on one path only
		{Op: isa.CALL, Imm: 4},                   // 2: join point: shared call
		{Op: isa.HALT},                           // 3
		{Op: isa.RET},                            // 4: ht_insert stub
	}
	res := makeRes(code, []isa.FuncSym{
		{Name: "main", Entry: 0, End: 4},
		{Name: "ht_insert", Entry: 4, End: 5},
	})
	res.NMap.Region[4] = core.RegionShared
	res.NMap.Routine[4] = "ht_insert"
	rep := Analyze(res, mem, true)
	if !strings.Contains(diagChecks(rep.Diags), "absint/untagged-shared-call") {
		t.Fatalf("partially tagged path not caught: %v", rep.Diags)
	}
}

// TestGeneratedCalleeClobbersEverything: calls into generated code make no
// preservation promise, so facts must not survive them — in particular an
// address proved before the call must become unproven after it.
func TestGeneratedCalleeClobbersEverything(t *testing.T) {
	mem := &verify.MemModel{
		HeapSize: 8192,
		Regions:  []verify.MemRegion{{Name: "scratch", Lo: 512, Hi: 1024, Writable: true}},
	}
	code := []isa.Instr{
		{Op: isa.MOVRI, Dst: 5, Imm: 512},  // r5 = scratch base (preserved reg)
		{Op: isa.STORE64, Dst: 0, Src1: 5}, // proved: exact 512
		{Op: isa.CALL, Imm: 5},             // generated callee: r5 is gone
		{Op: isa.STORE64, Dst: 0, Src1: 5}, // must be unproven now
		{Op: isa.HALT},
		{Op: isa.RET}, // generated helper
	}
	res := makeRes(code, []isa.FuncSym{
		{Name: "main", Entry: 0, End: 5},
		{Name: "helper", Entry: 5, End: 6},
	})
	rep := Analyze(res, mem, true)
	if len(rep.Diags) != 0 {
		t.Fatalf("unexpected diags: %v", rep.Diags)
	}
	if rep.Proved != 1 || rep.Unproven != 1 {
		t.Fatalf("want 1 proved + 1 unproven, got proved=%d unproven=%d",
			rep.Proved, rep.Unproven)
	}

	// A runtime-routine callee preserves r5..r15: both stores proved.
	res.NMap.Region[5] = core.RegionKernel
	res.NMap.Routine[5] = "memset"
	rep = Analyze(res, mem, true)
	if rep.Proved != 2 || rep.Unproven != 0 {
		t.Fatalf("runtime call should preserve r5: proved=%d unproven=%d",
			rep.Proved, rep.Unproven)
	}
}

func TestCheckerGating(t *testing.T) {
	var c Checker
	if got := c.Check(&verify.Artifact{}); got != nil {
		t.Fatalf("checker ran without code+mem: %v", got)
	}
	if c.Name() != "absint" {
		t.Fatalf("bad name %q", c.Name())
	}
}
