// Package absint abstractly interprets emitted native code against the
// declared heap layout, proving memory safety and tag-register discipline
// properties the structural checks in internal/verify cannot see.
//
// The analysis walks each function of the ISA stream with a forward
// dataflow fixpoint over three domains per register:
//
//   - interval: a [lo, hi] range, refined at fused compare-and-branch
//     edges (the loop bound i < rows tightens i on the taken edge) and
//     seeded from the MemModel's staged-cell facts (a load of a column
//     base slot yields that column's exact base address);
//   - alignment: a congruence value ≡ res (mod 2^bits), which proves
//     8-byte accesses aligned even when the interval is unknown;
//   - tag dataflow: whether the reserved tag register definitely holds a
//     freshly written task tag on every path — the flow-sensitive form of
//     the shared-call protocol that checkers.go approximates with a
//     fixed-window scan.
//
// Every memory access is classified: proved (address provably inside one
// declared region, aligned to its width), unproven (too abstract to
// decide — never an error, the runtime bounds checks still guard it), or
// a definite violation (constant or fully bounded address outside every
// region / crossing a region it may not touch / misaligned congruence).
// Only definite violations produce diagnostics, so a clean compile
// reports nothing: the gate for wiring this into VerifyArtifacts.
package absint

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/verify"
)

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
	// alignBits caps the congruence modulus at 2^6 = 64, the layout's
	// region alignment.
	alignBits = 6
	// widenAfter bounds how many times a block's input may be refined
	// before unstable interval bounds are widened to infinity.
	widenAfter = 10
)

// aval is the abstract value of one register: an interval plus an
// alignment congruence (value ≡ res mod 2^bits).
type aval struct {
	lo, hi int64
	bits   uint8
	res    int64
}

func top() aval            { return aval{negInf, posInf, 0, 0} }
func cst(v int64) aval     { return aval{v, v, alignBits, v & 63} }
func (a aval) exact() bool { return a.lo == a.hi }
func (a aval) bounded() bool {
	return a.lo != negInf && a.hi != posInf
}

func mask(bits uint8) int64 { return (1 << bits) - 1 }

// joinv is the lattice join (union).
func joinv(a, b aval) aval {
	o := aval{lo: min64(a.lo, b.lo), hi: max64(a.hi, b.hi)}
	bits := a.bits
	if b.bits < bits {
		bits = b.bits
	}
	for bits > 0 && a.res&mask(bits) != b.res&mask(bits) {
		bits--
	}
	o.bits, o.res = bits, a.res&mask(bits)
	return o
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func satAdd(a, b int64) int64 {
	if a == negInf || b == negInf {
		return negInf
	}
	if a == posInf || b == posInf {
		return posInf
	}
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return posInf
		}
		return negInf
	}
	return s
}

func addv(a, b aval) aval {
	o := aval{lo: satAdd(a.lo, b.lo), hi: satAdd(a.hi, b.hi)}
	bits := a.bits
	if b.bits < bits {
		bits = b.bits
	}
	o.bits, o.res = bits, (a.res+b.res)&mask(bits)
	return o
}

func subv(a, b aval) aval {
	o := aval{lo: satAdd(a.lo, neg(b.hi)), hi: satAdd(a.hi, neg(b.lo))}
	bits := a.bits
	if b.bits < bits {
		bits = b.bits
	}
	o.bits, o.res = bits, (a.res-b.res)&mask(bits)
	return o
}

func neg(v int64) int64 {
	switch v {
	case negInf:
		return posInf
	case posInf:
		return negInf
	}
	return -v
}

// mulcst multiplies an abstract value by a constant.
func mulcst(a aval, c int64) aval {
	if c == 0 {
		return cst(0)
	}
	lo, hi := mulSat(a.lo, c), mulSat(a.hi, c)
	if c < 0 {
		lo, hi = hi, lo
	}
	o := aval{lo: lo, hi: hi}
	tz := trailingZeros(c)
	bits := a.bits + tz
	if bits > alignBits {
		bits = alignBits
	}
	o.bits, o.res = bits, (a.res*c)&mask(bits)
	return o
}

func trailingZeros(c int64) uint8 {
	if c == 0 {
		return alignBits
	}
	var n uint8
	for u := uint64(c); u&1 == 0 && n < alignBits; u >>= 1 {
		n++
	}
	return n
}

func mulSat(a, c int64) int64 {
	if a == negInf || a == posInf {
		if c < 0 {
			return neg(a)
		}
		return a
	}
	p := a * c
	if a != 0 && (p/a != c || (a == -1 && c == negInf)) {
		if (a > 0) == (c > 0) {
			return posInf
		}
		return negInf
	}
	return p
}

// meetRange intersects a with [lo, hi]; ok=false means contradiction
// (the edge is unreachable).
func meetRange(a aval, lo, hi int64) (aval, bool) {
	a.lo, a.hi = max64(a.lo, lo), min64(a.hi, hi)
	return a, a.lo <= a.hi
}

// ---------------------------------------------------------------------------
// Machine state
// ---------------------------------------------------------------------------

type state struct {
	regs   [isa.NumGPR]aval
	tagged bool // tag register definitely freshly written on all paths
	reach  bool
}

func entryState() state {
	var st state
	for i := range st.regs {
		st.regs[i] = top()
	}
	st.reach = true
	return st
}

func joinState(a, b state) state {
	if !a.reach {
		return b
	}
	if !b.reach {
		return a
	}
	o := state{reach: true, tagged: a.tagged && b.tagged}
	for i := range o.regs {
		o.regs[i] = joinv(a.regs[i], b.regs[i])
	}
	return o
}

func eqState(a, b state) bool {
	if a.reach != b.reach || a.tagged != b.tagged {
		return false
	}
	return a.regs == b.regs
}

// widenState pins unstable interval bounds of new against old to ±inf.
func widenState(old, new state) state {
	if !old.reach {
		return new
	}
	for i := range new.regs {
		if new.regs[i].lo < old.regs[i].lo {
			new.regs[i].lo = negInf
		}
		if new.regs[i].hi > old.regs[i].hi {
			new.regs[i].hi = posInf
		}
	}
	return new
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

// Report summarizes one analysis run.
type Report struct {
	Funcs    int
	Accesses int // memory operands inspected in generated + routine code
	Proved   int // provably in-bounds, in-region and aligned
	Unproven int // too abstract to decide (guarded by the VM at runtime)
	Diags    []verify.Diag
}

type analyzer struct {
	prog   *isa.Program
	nmap   *core.NativeMap
	mem    *verify.MemModel
	regTag bool
	rep    *Report
}

// Analyze interprets the program against the memory model and returns the
// report. Diagnostics are definite violations only.
func Analyze(code *codegen.Result, mem *verify.MemModel, registerTagging bool) *Report {
	rep := &Report{}
	if code == nil || code.Program == nil || code.NMap == nil || mem == nil {
		return rep
	}
	if len(code.NMap.Region) != len(code.Program.Code) {
		// NativeInvariants owns this complaint; nothing sound to do here.
		return rep
	}
	a := &analyzer{prog: code.Program, nmap: code.NMap, mem: mem, regTag: registerTagging, rep: rep}
	for i := range code.Program.Funcs {
		a.analyzeFunc(&code.Program.Funcs[i])
		rep.Funcs++
	}
	return rep
}

// Checker adapts Analyze to the verify suite.
type Checker struct{}

// Name implements verify.Checker.
func (Checker) Name() string { return "absint" }

// Check implements verify.Checker.
func (Checker) Check(art *verify.Artifact) []verify.Diag {
	if art.Code == nil || art.Mem == nil {
		return nil
	}
	return Analyze(art.Code, art.Mem, art.RegisterTagging).Diags
}

func (a *analyzer) bad(rule string, pos int, format string, args ...interface{}) {
	a.rep.Diags = append(a.rep.Diags, verify.Diag{
		Check:    "absint/" + rule,
		Severity: verify.Error,
		Level:    core.LevelNative,
		Locus:    fmt.Sprintf("native@%d", pos),
		Msg:      fmt.Sprintf(format, args...),
	})
}

// blockOf maps instruction positions to block leader positions.
func (a *analyzer) leaders(sym *isa.FuncSym) map[int]bool {
	lead := map[int]bool{sym.Entry: true}
	for pos := sym.Entry; pos < sym.End; pos++ {
		in := &a.prog.Code[pos]
		if in.IsBranch() {
			tgt := int(branchTarget(in))
			if tgt >= sym.Entry && tgt < sym.End {
				lead[tgt] = true
			}
			if pos+1 < sym.End {
				lead[pos+1] = true
			}
		}
	}
	return lead
}

func branchTarget(in *isa.Instr) int64 {
	switch in.Op {
	case isa.JMP, isa.JNZ, isa.JZ:
		return in.Imm
	default: // fused Jcc
		return in.Imm2
	}
}

func (a *analyzer) analyzeFunc(sym *isa.FuncSym) {
	if sym.End <= sym.Entry || sym.End > len(a.prog.Code) {
		return
	}
	lead := a.leaders(sym)
	// Block extent: leader → one past last instruction.
	blockEnd := func(start int) int {
		for pos := start; pos < sym.End; pos++ {
			in := &a.prog.Code[pos]
			if in.IsBranch() || in.Op == isa.RET || in.Op == isa.HALT || in.Op == isa.TRAP {
				return pos + 1
			}
			if lead[pos+1] {
				return pos + 1
			}
		}
		return sym.End
	}

	in := map[int]state{sym.Entry: entryState()}
	visits := map[int]int{}
	work := []int{sym.Entry}
	inWork := map[int]bool{sym.Entry: true}

	flow := func(from state, start int, record bool) (state, []edge) {
		st := from
		end := blockEnd(start)
		for pos := start; pos < end; pos++ {
			st = a.transfer(st, pos, record)
			if !st.reach {
				return st, nil
			}
		}
		last := end - 1
		return st, a.edges(st, last, sym)
	}

	for len(work) > 0 {
		start := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[start] = false
		_, edges := flow(in[start], start, false)
		for _, e := range edges {
			if !e.st.reach {
				continue
			}
			if e.to < sym.Entry || e.to >= sym.End {
				// Branch escapes the function; NativeInvariants owns
				// that complaint.
				continue
			}
			old, ok := in[e.to]
			joined := e.st
			if ok {
				joined = joinState(old, joined)
			}
			visits[e.to]++
			if visits[e.to] > widenAfter {
				joined = widenState(old, joined)
			}
			if !ok || !eqState(old, joined) {
				in[e.to] = joined
				if !inWork[e.to] {
					work = append(work, e.to)
					inWork[e.to] = true
				}
			}
		}
	}

	starts := make([]int, 0, len(lead))
	for start := range lead {
		starts = append(starts, start)
	}
	sort.Ints(starts)

	// Narrowing: widening may have destroyed refined bounds at blocks fed
	// by a not-yet-stable loop head (the body's index interval gets pinned
	// to +inf before the head's branch refinement settles). Recompute each
	// block's input once per round from its predecessors' stabilized
	// outputs, without widening. Transfers are monotone and the widened
	// state is a post-fixpoint, so the decreasing iteration stays sound.
	for round := 0; round < 2; round++ {
		next := map[int]state{sym.Entry: entryState()}
		for _, start := range starts {
			st, ok := in[start]
			if !ok || !st.reach {
				continue
			}
			_, edges := flow(st, start, false)
			for _, e := range edges {
				if !e.st.reach || e.to < sym.Entry || e.to >= sym.End {
					continue
				}
				if old, ok := next[e.to]; ok {
					next[e.to] = joinState(old, e.st)
				} else {
					next[e.to] = e.st
				}
			}
		}
		in = next
	}

	// Stable: replay each reachable block once in address order (so the
	// diagnostic order is deterministic), recording checks.
	for _, start := range starts {
		if st, ok := in[start]; ok && st.reach {
			flow(st, start, true)
		}
	}
}

type edge struct {
	to int
	st state
}

// edges computes successor states of a block ending at last, applying
// branch refinement per edge.
func (a *analyzer) edges(st state, last int, sym *isa.FuncSym) []edge {
	in := &a.prog.Code[last]
	next := last + 1
	switch in.Op {
	case isa.RET, isa.HALT, isa.TRAP:
		return nil
	case isa.JMP:
		return []edge{{int(in.Imm), st}}
	case isa.JNZ, isa.JZ:
		tgt := int(in.Imm)
		taken, fall := st, st
		zeroOn := &fall // JNZ falls through when the register is zero
		nonzOn := &taken
		if in.Op == isa.JZ {
			zeroOn, nonzOn = &taken, &fall
		}
		if v, ok := meetRange(zeroOn.regs[in.Src1], 0, 0); ok {
			zeroOn.regs[in.Src1] = v
		} else {
			zeroOn.reach = false
		}
		// Exclude zero on the nonzero edge when it sits on a bound.
		r := nonzOn.regs[in.Src1]
		if r.lo == 0 && r.hi > 0 {
			r.lo = 1
			nonzOn.regs[in.Src1] = r
		} else if r.hi == 0 && r.lo < 0 {
			r.hi = -1
			nonzOn.regs[in.Src1] = r
		} else if r.exact() && r.lo == 0 {
			nonzOn.reach = false
		}
		out := []edge{{tgt, taken}}
		if next < sym.End {
			out = append(out, edge{next, fall})
		}
		return out
	case isa.JEQ, isa.JNE, isa.JLT, isa.JGE:
		tgt := int(in.Imm2)
		y := cst(in.Imm)
		if !in.UseImm {
			y = st.regs[in.Src2]
		}
		taken, fall := st, st
		refine := func(s *state, rel string) {
			x := s.regs[in.Src1]
			var ok bool
			switch rel {
			case "eq":
				x, ok = meetRange(x, y.lo, y.hi)
			case "lt":
				x, ok = meetRange(x, negInf, satAdd(y.hi, -1))
			case "ge":
				x, ok = meetRange(x, y.lo, posInf)
			default: // "ne": no interval refinement
				ok = true
			}
			if !ok {
				s.reach = false
				return
			}
			s.regs[in.Src1] = x
		}
		switch in.Op {
		case isa.JEQ:
			refine(&taken, "eq")
			refine(&fall, "ne")
		case isa.JNE:
			refine(&taken, "ne")
			refine(&fall, "eq")
		case isa.JLT:
			refine(&taken, "lt")
			refine(&fall, "ge")
		case isa.JGE:
			refine(&taken, "ge")
			refine(&fall, "lt")
		}
		out := []edge{{tgt, taken}}
		if next < sym.End {
			out = append(out, edge{next, fall})
		}
		return out
	default:
		if next < sym.End {
			return []edge{{next, st}}
		}
		return nil
	}
}

// transfer interprets one instruction. With record set, memory and
// protocol checks are evaluated and tallied.
func (a *analyzer) transfer(st state, pos int, record bool) state {
	in := &a.prog.Code[pos]
	gen := a.nmap.Region[pos] == core.RegionGenerated

	setReg := func(r isa.Reg, v aval) {
		if int(r) < len(st.regs) {
			st.regs[r] = v
			if r == isa.TagReg {
				st.tagged = true
			}
		}
	}
	reg := func(r isa.Reg) aval {
		if int(r) < len(st.regs) {
			return st.regs[r]
		}
		return top()
	}

	switch in.Op {
	case isa.NOP:
	case isa.MOVRR:
		setReg(in.Dst, reg(in.Src1))
	case isa.MOVRI:
		setReg(in.Dst, cst(in.Imm))
	case isa.LOAD8, isa.LOAD32, isa.LOAD64:
		addr := a.memAddr(st, in)
		if record {
			a.checkAccess(pos, in, addr, false)
		}
		setReg(in.Dst, a.loadVal(in, addr))
	case isa.STORE8, isa.STORE32, isa.STORE64:
		addr := a.memAddr(st, in)
		if record {
			a.checkAccess(pos, in, addr, true)
		}
	case isa.CALL:
		if record && a.regTag && gen {
			tgt := in.Imm
			if tgt >= 0 && tgt < int64(len(a.nmap.Region)) &&
				a.nmap.Region[tgt] == core.RegionShared && !st.tagged {
				a.bad("untagged-shared-call", pos,
					"call into shared routine %q reachable without a live tag write",
					a.nmap.Routine[tgt])
			}
		}
		callee := in.Imm
		calleeGen := callee >= 0 && callee < int64(len(a.nmap.Region)) &&
			a.nmap.Region[callee] == core.RegionGenerated
		if calleeGen {
			// Generated callees make no preservation promise and write
			// their own tags.
			for i := range st.regs {
				st.regs[i] = top()
			}
			st.tagged = false
		} else {
			// Runtime routines restrict themselves to r0..r4 and never
			// touch the tag register.
			for i := isa.Reg(0); i <= isa.LastClobbered; i++ {
				st.regs[i] = top()
			}
		}
	case isa.JMP, isa.JNZ, isa.JZ, isa.JEQ, isa.JNE, isa.JLT, isa.JGE,
		isa.RET, isa.HALT, isa.TRAP:
		// Handled at block edges.
	default:
		// Binary ALU / compare.
		x := reg(in.Src1)
		y := cst(in.Imm)
		if !in.UseImm {
			y = reg(in.Src2)
		}
		if record && (in.Op == isa.DIV || in.Op == isa.MOD) && y.exact() && y.lo == 0 {
			a.bad("div-zero", pos, "%s by a provably zero divisor", in.Op)
		}
		setReg(in.Dst, alu(in.Op, x, y))
	}
	return st
}

// alu transfers one binary operation.
func alu(op isa.Op, x, y aval) aval {
	switch op {
	case isa.ADD:
		return addv(x, y)
	case isa.SUB:
		return subv(x, y)
	case isa.MUL:
		if y.exact() {
			return mulcst(x, y.lo)
		}
		if x.exact() {
			return mulcst(y, x.lo)
		}
	case isa.SHL:
		if y.exact() && y.lo >= 0 && y.lo < 63 {
			return mulcst(x, int64(1)<<uint(y.lo))
		}
	case isa.SHR:
		if y.exact() && y.lo >= 0 && y.lo < 64 && x.lo >= 0 && x.hi != posInf {
			return aval{lo: int64(uint64(x.lo) >> uint(y.lo)), hi: int64(uint64(x.hi) >> uint(y.lo))}
		}
	case isa.AND:
		if y.exact() && y.lo >= 0 {
			return aval{lo: 0, hi: y.lo, bits: trailingZeros(y.lo), res: 0}
		}
		if x.exact() && x.lo >= 0 {
			return aval{lo: 0, hi: x.lo, bits: trailingZeros(x.lo), res: 0}
		}
		if x.lo >= 0 && y.lo >= 0 {
			return aval{lo: 0, hi: min64(x.hi, y.hi)}
		}
	case isa.DIV:
		if y.exact() && y.lo > 0 && x.lo >= 0 && x.hi != posInf {
			return aval{lo: x.lo / y.lo, hi: x.hi / y.lo}
		}
	case isa.MOD:
		if y.exact() && y.lo > 0 {
			if x.lo >= 0 {
				return aval{lo: 0, hi: y.lo - 1}
			}
			return aval{lo: -(y.lo - 1), hi: y.lo - 1}
		}
	case isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE:
		return aval{lo: 0, hi: 1}
	}
	return top()
}

// memAddr computes the abstract address of a memory operand.
func (a *analyzer) memAddr(st state, in *isa.Instr) aval {
	var addr aval
	if in.Abs {
		addr = cst(in.Imm)
	} else {
		base := top()
		if int(in.Src1) < len(st.regs) {
			base = st.regs[in.Src1]
		}
		addr = addv(base, cst(in.Imm))
	}
	if in.Scaled {
		idx := top()
		if int(in.Src2) < len(st.regs) {
			idx = st.regs[in.Src2]
		}
		addr = addv(addr, mulcst(idx, in.Width()))
	}
	return addr
}

// loadVal resolves the value a load produces: a staged-cell fact for an
// exact 64-bit address, else a width bound.
func (a *analyzer) loadVal(in *isa.Instr, addr aval) aval {
	if in.Op == isa.LOAD64 && addr.exact() {
		if f, ok := a.mem.Cells[addr.lo]; ok {
			v := aval{lo: f.Lo, hi: f.Hi}
			if f.Lo == f.Hi {
				return cst(f.Lo)
			}
			if f.Align > 1 {
				v.bits = trailingZeros(f.Align)
			}
			return v
		}
	}
	switch in.Op {
	case isa.LOAD8:
		return aval{lo: 0, hi: 255}
	case isa.LOAD32:
		return aval{lo: math.MinInt32, hi: math.MaxInt32}
	}
	return top()
}

// checkAccess classifies one memory access.
func (a *analyzer) checkAccess(pos int, in *isa.Instr, addr aval, isStore bool) {
	a.rep.Accesses++
	w := in.Width()

	// Alignment: a congruence covering the width decides definitively.
	if w > 1 && addr.bits > 0 && int64(1)<<addr.bits >= w && addr.res%w != 0 {
		a.bad("misaligned", pos, "%s address ≡ %d (mod %d), not %d-byte aligned",
			in.Op, addr.res, int64(1)<<addr.bits, w)
		return
	}

	if addr.exact() {
		r := a.mem.RegionAt(addr.lo, w)
		if r == nil {
			a.bad("oob", pos, "%s targets address %d, inside no declared region (heap %d)",
				in.Op, addr.lo, a.mem.HeapSize)
			return
		}
		if isStore && !r.Writable {
			a.bad("readonly-store", pos, "%s writes address %d inside read-only region %q",
				in.Op, addr.lo, r.Name)
			return
		}
		if addr.lo%w != 0 {
			a.bad("misaligned", pos, "%s targets %d, not %d-byte aligned", in.Op, addr.lo, w)
			return
		}
		a.rep.Proved++
		return
	}

	if addr.bounded() {
		if addr.hi < 0 || addr.lo >= a.mem.HeapSize {
			a.bad("oob", pos, "%s address range [%d,%d] lies entirely outside the heap (%d)",
				in.Op, addr.lo, addr.hi, a.mem.HeapSize)
			return
		}
		if r := a.mem.RegionAt(addr.lo, w); r != nil && r.Contains(addr.hi, w) {
			if isStore && !r.Writable {
				a.bad("readonly-store", pos, "%s writes [%d,%d] inside read-only region %q",
					in.Op, addr.lo, addr.hi, r.Name)
				return
			}
			aligned := addr.lo%w == 0 && addr.hi%w == 0 &&
				(w == 1 || (addr.bits > 0 && int64(1)<<addr.bits >= w && addr.res%w == 0))
			if aligned {
				a.rep.Proved++
				return
			}
		}
	}
	a.rep.Unproven++
}
