package verify_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/verify"
)

// repoRoot walks up from the package directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestLintRepoClean runs the source linter over the whole repository —
// the same gate CI enforces via tprofvet lint. A violation anywhere
// (a stray math/rand import, a Sprintf on the compile hot path, a
// copied mutex, a wall-clock read in the VM) fails this test with the
// offending file:line.
func TestLintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	ds, err := verify.Lint(repoRoot(t))
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, d := range ds {
		t.Errorf("%s", d.String())
	}
}
