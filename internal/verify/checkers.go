package verify

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/isa"
)

// ---------------------------------------------------------------------------
// IR well-formedness
// ---------------------------------------------------------------------------

// IRWellFormed adapts the structural IR battery (ir.(*Module).Check: SSA
// dominance, use-before-def, type consistency, phi/pred agreement, CFG
// shape) into suite diagnostics. The implementation lives in package ir so
// that (*Module).Verify — which engine and pipeline call on every compile —
// is the same code with an error-shaped return.
type IRWellFormed struct{}

// Name implements Checker.
func (IRWellFormed) Name() string { return "ir" }

// Check implements Checker.
func (IRWellFormed) Check(a *Artifact) []Diag {
	if a.Module == nil {
		return nil
	}
	var out []Diag
	for _, p := range a.Module.Check() {
		locus := p.Func
		if p.Block != "" {
			locus += "." + p.Block
		}
		if p.Instr != 0 {
			locus += fmt.Sprintf(" %%%d", p.Instr)
		}
		out = append(out, Diag{
			Check:    "ir/" + p.Code,
			Severity: Error,
			Level:    core.LevelIR,
			Locus:    locus,
			Msg:      p.Msg,
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Tagging Dictionary soundness
// ---------------------------------------------------------------------------

// DictSoundness checks that the Tagging Dictionary still supports
// bottom-up attribution after whatever passes have run:
//
//   - every surviving IR instruction resolves to ≥1 task (orphan-instr),
//   - every Log B entry points at an instruction that still exists
//     (dangling-tag: a pass deleted code without reporting Removed),
//   - every task a Log B entry names has a Log A operator, and both ends
//     are registered at the right abstraction level,
//   - shared markings refer to live Log B entries,
//   - the lineage journal is sane: no self-derivation, no derivation from
//     an already-removed instruction, no Derived/Replaced cycles.
type DictSoundness struct{}

// Name implements Checker.
func (DictSoundness) Name() string { return "dict" }

// Check implements Checker.
func (DictSoundness) Check(a *Artifact) []Diag {
	if a.Dict == nil || a.Module == nil {
		return nil
	}
	d := a.Dict
	reg := d.Registry
	var out []Diag
	bad := func(rule, locus, format string, args ...interface{}) {
		out = append(out, Diag{
			Check: "dict/" + rule, Severity: Error, Level: core.LevelTask,
			Locus: locus, Msg: fmt.Sprintf(format, args...),
		})
	}

	// Live instruction set, for both directions of the orphan check.
	live := make(map[int]ir.Op, a.Module.InstrCount())
	a.Module.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
		live[in.ID] = in.Op
	})

	for id, op := range live {
		if len(d.TasksOf(id)) == 0 {
			bad("orphan-instr", fmt.Sprintf("%%%d", id),
				"surviving %s instruction resolves to no task", op)
		}
	}
	for _, id := range d.IRIDs() {
		if _, ok := live[id]; !ok {
			bad("dangling-tag", fmt.Sprintf("%%%d", id),
				"Log B entry for deleted instruction (pass forgot Removed)")
		}
		for _, task := range d.TasksOf(id) {
			c, ok := reg.Lookup(task)
			if !ok {
				bad("unknown-task", fmt.Sprintf("task %d", task),
					"Log B names a task missing from the registry")
				continue
			}
			if c.Level != core.LevelTask {
				bad("level-mismatch", fmt.Sprintf("task %d", task),
					"Log B names %q, a %s-level component", c.Name, c.Level)
			}
			op := d.OperatorOf(task)
			if op == core.NoComponent {
				bad("no-operator", fmt.Sprintf("task %d", task),
					"task %q has no Log A operator: attribution dead-ends", c.Name)
				continue
			}
			oc, ok := reg.Lookup(op)
			if !ok {
				bad("unknown-operator", fmt.Sprintf("operator %d", op),
					"Log A names an operator missing from the registry")
			} else if oc.Level != core.LevelOperator {
				bad("level-mismatch", fmt.Sprintf("operator %d", op),
					"Log A maps task %q to %q, a %s-level component", c.Name, oc.Name, oc.Level)
			}
		}
	}
	for _, id := range d.SharedIRIDs() {
		if len(d.TasksOf(id)) == 0 {
			bad("shared-no-tasks", fmt.Sprintf("%%%d", id),
				"shared marking on an instruction with no Log B entry")
		}
	}

	out = append(out, checkJournal(d.Journal())...)
	return out
}

// checkJournal replays the lineage event log. The flattened maps cannot
// distinguish "pass ordering X leaves lineage sound" from "two bugs
// cancelled out", so the journal is verified as a history: derivation must
// flow from live instructions, never from removed ones, never from itself,
// and the derivation graph over all events must be acyclic (a cycle means
// two instructions each claim to inherit the other's owners — bottom-up
// resolution has no ground truth to start from).
func checkJournal(events []core.LineageEvent) []Diag {
	var out []Diag
	bad := func(rule, locus, format string, args ...interface{}) {
		out = append(out, Diag{
			Check: "dict/" + rule, Severity: Error, Level: core.LevelIR,
			Locus: locus, Msg: fmt.Sprintf(format, args...),
		})
	}

	removed := map[int]bool{}
	edges := map[int][]int{} // derived ID → source IDs
	for _, ev := range events {
		switch ev.Kind {
		case core.LineageDerived, core.LineageReplaced:
			for _, src := range ev.Srcs {
				if src == ev.ID {
					bad("self-derive", fmt.Sprintf("%%%d", ev.ID),
						"instruction reported as %s from itself", ev.Kind)
					continue
				}
				if removed[src] {
					bad("derive-from-removed", fmt.Sprintf("%%%d", ev.ID),
						"%s from %%%d, which was already removed", ev.Kind, src)
				}
				edges[ev.ID] = append(edges[ev.ID], src)
			}
			if ev.Kind == core.LineageReplaced {
				// Replaced removes the old instruction as part of the event.
				for _, src := range ev.Srcs {
					removed[src] = true
				}
			}
			// A Derived/Replaced target is live again even if a previous
			// event removed it (IDs are never reused, so this would itself
			// be a bug — flag it).
			if removed[ev.ID] {
				bad("resurrect", fmt.Sprintf("%%%d", ev.ID),
					"%s targets an instruction that was previously removed", ev.Kind)
			}
		case core.LineageRemoved:
			if removed[ev.ID] {
				bad("double-remove", fmt.Sprintf("%%%d", ev.ID),
					"instruction removed twice")
			}
			removed[ev.ID] = true
		}
	}

	// Cycle detection over the derivation graph (iterative DFS, colors).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var stack []int
	for start := range edges {
		if color[start] != white {
			continue
		}
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			if color[n] == white {
				color[n] = gray
				for _, s := range edges[n] {
					switch color[s] {
					case white:
						stack = append(stack, s)
					case gray:
						bad("derive-cycle", fmt.Sprintf("%%%d", n),
							"derivation cycle through %%%d: lineage has no ground truth", s)
					}
				}
			} else {
				if color[n] == gray {
					color[n] = black
				}
				stack = stack[:len(stack)-1]
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Native-code invariants
// ---------------------------------------------------------------------------

// NativeInvariants checks the emitted program against its debug info:
//
//   - the NativeMap parallel arrays cover the program exactly,
//   - every generated-region instruction carries IR provenance (except
//     JMP: phi edge blocks legitimately compile to a bare jump), and that
//     provenance resolves to ≥1 task,
//   - tag-register discipline (with RegisterTagging): isa.TagReg is
//     written only by OpSetTag lowering, read only by OpGetTag lowering,
//     and never touched inside hand-written runtime routines,
//   - every call into shared-region code is bracketed by the tag
//     protocol: a tag write before the CALL and a restore after it,
//   - NativeMap.Inverted bits appear only on conditional branches in
//     generated code, and only in profile-guided compiles,
//   - control flow stays sane: branch targets land inside the owning
//     function, CALL targets are function entries, every function's last
//     instruction cannot fall through into the next function.
type NativeInvariants struct{}

// Name implements Checker.
func (NativeInvariants) Name() string { return "native" }

// Check implements Checker.
func (NativeInvariants) Check(a *Artifact) []Diag {
	if a.Code == nil || a.Code.Program == nil || a.Code.NMap == nil {
		return nil
	}
	prog, nmap := a.Code.Program, a.Code.NMap
	var out []Diag
	bad := func(rule string, pos int, format string, args ...interface{}) {
		out = append(out, Diag{
			Check: "native/" + rule, Severity: Error, Level: core.LevelNative,
			Locus: fmt.Sprintf("native@%d", pos), Msg: fmt.Sprintf(format, args...),
		})
	}

	n := len(prog.Code)
	if len(nmap.IRs) != n || len(nmap.Region) != n || len(nmap.Routine) != n || len(nmap.Inverted) != n {
		bad("nmap-misaligned", 0,
			"NativeMap arrays (%d/%d/%d/%d) do not cover the %d-instruction program",
			len(nmap.IRs), len(nmap.Region), len(nmap.Routine), len(nmap.Inverted), n)
		return out // positional checks below would index out of range
	}

	// IR ID → opcode, for provenance-sensitive register rules.
	irOp := map[int]ir.Op{}
	if a.Module != nil {
		a.Module.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
			irOp[in.ID] = in.Op
		})
	}
	hasOp := func(ids []int, op ir.Op) bool {
		for _, id := range ids {
			if irOp[id] == op {
				return true
			}
		}
		return false
	}

	for pos := range prog.Code {
		in := &prog.Code[pos]
		gen := nmap.Region[pos] == core.RegionGenerated

		// Provenance: generated code must be attributable.
		if gen {
			if len(nmap.IRs[pos]) == 0 && in.Op != isa.JMP {
				bad("no-provenance", pos,
					"generated %s carries no IR IDs: samples here are unattributable", in.Op)
			}
			if a.Dict != nil {
				for _, irID := range nmap.IRs[pos] {
					if len(a.Dict.TasksOf(irID)) == 0 {
						bad("unresolvable", pos,
							"IR %%%d resolves to no task through Log B", irID)
					}
				}
			}
		} else if nmap.Routine[pos] == "" {
			bad("unnamed-routine", pos, "non-generated instruction has no routine name")
		}

		// Tag-register discipline.
		if a.RegisterTagging {
			if r, writes := defReg(in); writes && r == isa.TagReg {
				if !gen {
					bad("tagreg-clobber", pos,
						"runtime routine %q writes the reserved tag register", nmap.Routine[pos])
				} else if a.Module != nil && !hasOp(nmap.IRs[pos], ir.OpSetTag) {
					bad("tagreg-clobber", pos,
						"%s writes the tag register without OpSetTag provenance", in.Op)
				}
			}
			for _, r := range useRegs(in) {
				if r != isa.TagReg {
					continue
				}
				if !gen {
					bad("tagreg-read", pos,
						"runtime routine %q reads the tag register", nmap.Routine[pos])
				} else if a.Module != nil && !hasOp(nmap.IRs[pos], ir.OpGetTag) {
					bad("tagreg-read", pos,
						"%s reads the tag register without OpGetTag provenance", in.Op)
				}
			}
		}

		// Inverted exactness: only the PGO layout pass sets these bits,
		// and only on conditional branches it actually flipped.
		if nmap.Inverted[pos] {
			if !a.PGO {
				bad("stale-inverted", pos,
					"Inverted bit set in a non-PGO compile: no layout pass ran")
			}
			if !in.IsBranch() || in.Op == isa.JMP {
				bad("stale-inverted", pos,
					"Inverted bit on %s, which is not a conditional branch", in.Op)
			}
			if !gen {
				bad("stale-inverted", pos, "Inverted bit outside generated code")
			}
		}

		// Control flow sanity.
		if in.IsBranch() {
			tgt := in.Imm
			if in.Imm2 != 0 || (in.Op != isa.JMP && in.Op != isa.JNZ && in.Op != isa.JZ) {
				tgt = in.Imm2
			}
			sym := prog.FuncAt(pos)
			if sym == nil {
				bad("no-symbol", pos, "branch outside any function symbol")
			} else if tgt < int64(sym.Entry) || tgt >= int64(sym.End) {
				bad("branch-escape", pos,
					"%s targets %d, outside %s [%d,%d)", in.Op, tgt, sym.Name, sym.Entry, sym.End)
			}
		}
		if in.Op == isa.CALL {
			entry := false
			for i := range prog.Funcs {
				if int64(prog.Funcs[i].Entry) == in.Imm {
					entry = true
					break
				}
			}
			if !entry {
				bad("call-mid-function", pos, "call targets %d, not a function entry", in.Imm)
			}
			// Shared-region calls must follow the tag protocol (§4.2.5):
			// set the tag register to the active task before transferring
			// into shared code, restore it after.
			if a.RegisterTagging && gen && in.Imm >= 0 && in.Imm < int64(n) &&
				nmap.Region[in.Imm] == core.RegionShared {
				if !tagWriteNear(prog, nmap, pos, -1) {
					bad("shared-call-untagged", pos,
						"call into shared routine %q without a preceding tag write",
						nmap.Routine[in.Imm])
				}
				if !tagWriteNear(prog, nmap, pos, +1) {
					bad("shared-call-unrestored", pos,
						"tag register not restored after call into shared routine %q",
						nmap.Routine[in.Imm])
				}
			}
		}
	}

	// Function extents: every symbol must end in an instruction that
	// cannot fall through into the following function.
	for i := range prog.Funcs {
		sym := &prog.Funcs[i]
		if sym.End <= sym.Entry || sym.End > n {
			bad("bad-extent", sym.Entry, "function %q has extent [%d,%d)", sym.Name, sym.Entry, sym.End)
			continue
		}
		last := &prog.Code[sym.End-1]
		switch last.Op {
		case isa.RET, isa.HALT, isa.TRAP, isa.JMP:
		default:
			bad("fallthrough", sym.End-1,
				"function %q ends in %s and falls through", sym.Name, last.Op)
		}
	}
	return out
}

// tagProtocolWindow bounds the scan for the tag write bracketing a shared
// call. emitCall stages up to 4 arguments through memory (two instructions
// each) between the tag write and the CALL; 24 leaves generous slack.
const tagProtocolWindow = 24

// tagWriteNear reports whether a write to the tag register appears within
// the protocol window before (dir=-1) or after (dir=+1) pos, without
// crossing a control-flow transfer (the protocol is straight-line code
// emitted by sharedCall).
func tagWriteNear(prog *isa.Program, nmap *core.NativeMap, pos, dir int) bool {
	for i, steps := pos+dir, 0; i >= 0 && i < len(prog.Code) && steps < tagProtocolWindow; i, steps = i+dir, steps+1 {
		in := &prog.Code[i]
		if r, writes := defReg(in); writes && r == isa.TagReg {
			return true
		}
		if in.IsBranch() || in.Op == isa.CALL || in.Op == isa.RET ||
			in.Op == isa.HALT || in.Op == isa.TRAP {
			return false
		}
	}
	return false
}

// defReg returns the register an instruction writes, if any. Stores use
// Dst as the value source (see isa.Instr docs), so they define nothing;
// CALL clobbers r0..r4 architecturally but that is the callee's write.
func defReg(in *isa.Instr) (isa.Reg, bool) {
	switch in.Op {
	case isa.MOVRR, isa.MOVRI,
		isa.LOAD8, isa.LOAD32, isa.LOAD64,
		isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.ROTR, isa.CRC32,
		isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE:
		return in.Dst, true
	}
	return 0, false
}

// useRegs returns the registers an instruction reads.
func useRegs(in *isa.Instr) []isa.Reg {
	var uses []isa.Reg
	switch in.Op {
	case isa.MOVRR:
		uses = append(uses, in.Src1)
	case isa.LOAD8, isa.LOAD32, isa.LOAD64:
		if !in.Abs {
			uses = append(uses, in.Src1)
		}
		if in.Scaled {
			uses = append(uses, in.Src2)
		}
	case isa.STORE8, isa.STORE32, isa.STORE64:
		uses = append(uses, in.Dst) // stored value
		if !in.Abs {
			uses = append(uses, in.Src1)
		}
		if in.Scaled {
			uses = append(uses, in.Src2)
		}
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.ROTR, isa.CRC32,
		isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE:
		uses = append(uses, in.Src1)
		if !in.UseImm {
			uses = append(uses, in.Src2)
		}
	case isa.JNZ, isa.JZ:
		uses = append(uses, in.Src1)
	case isa.JEQ, isa.JNE, isa.JLT, isa.JGE:
		uses = append(uses, in.Src1)
		if !in.UseImm {
			uses = append(uses, in.Src2)
		}
	}
	return uses
}
