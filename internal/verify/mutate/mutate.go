// Package mutate is the miscompilation-mutant harness: it injects seeded,
// deterministic defects into compilation artifacts so the verification
// stack can be measured instead of trusted. Each mutant models a realistic
// compiler bug — swapped operands, a dropped store, a perturbed constant,
// a clobbered or stale tag register, a wild or misaligned address — at one
// of the two levels the validators watch:
//
//   - IR mutants corrupt an ir.Module the way a broken optimizer pass
//     would; the translation validator (internal/verify/tv) must refute
//     observational equivalence against the clean module's summary.
//   - Native mutants corrupt an emitted codegen.Result the way a broken
//     backend would; the artifact suite (NativeInvariants) plus the
//     abstract interpreter (internal/verify/absint) must flag the program.
//
// The harness enumerates candidate sites deterministically (module and
// program iteration order is deterministic) and caps each class at a few
// spread-out sites so the gate stays fast. The gate itself lives in this
// package's tests and in `tprofvet check -mutants`: across the query
// corpus the validators must catch at least 95% of mutants while staying
// completely silent on the unmutated artifacts.
package mutate

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/verify"
)

// Mutant is one seeded defect. Apply corrupts the artifact it was
// enumerated from, in place; enumerate from a fresh artifact for each
// mutant, apply exactly one, then discard the artifact.
type Mutant struct {
	// Class identifies the defect model, e.g. "ir/swap-operands".
	Class string
	// Site describes where the defect lands, for failure output.
	Site string
	// Apply injects the defect into the originating artifact.
	Apply func()
}

// sitesPerClass caps how many sites each class contributes per artifact;
// sites are spread across the candidate list rather than clustered at the
// front.
const sitesPerClass = 3

// spread picks up to sitesPerClass indices evenly across n candidates.
func spread(n int) []int {
	if n <= sitesPerClass {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return []int{0, n / 2, n - 1}
}

// IR enumerates mutants over a module. The module must be freshly built;
// every returned Apply closure corrupts it in place.
func IR(m *ir.Module) []Mutant {
	type site struct {
		in  *ir.Instr
		fn  string
		blk *ir.Block
		idx int
	}
	collect := func(pred func(*ir.Instr) bool) []site {
		var out []site
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for i, in := range b.Instrs {
					if pred(in) {
						out = append(out, site{in, f.Name, b, i})
					}
				}
			}
		}
		return out
	}
	var muts []Mutant
	class := func(name string, sites []site, apply func(site)) {
		for _, i := range spread(len(sites)) {
			s := sites[i]
			muts = append(muts, Mutant{
				Class: name,
				Site:  fmt.Sprintf("%s/%s %%%d (%s)", s.fn, s.blk.Name, s.in.ID, s.in.Op),
				Apply: func() { apply(s) },
			})
		}
	}

	nonCommutative := func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpSub, ir.OpShl, ir.OpShr, ir.OpCmpLt, ir.OpCmpLe, ir.OpCmpGt, ir.OpCmpGe:
			return len(in.Args) == 2 && in.Args[0] != in.Args[1]
		}
		return false
	}
	class("ir/swap-operands", collect(nonCommutative), func(s site) {
		s.in.Args[0], s.in.Args[1] = s.in.Args[1], s.in.Args[0]
	})

	class("ir/perturb-const", collect(func(in *ir.Instr) bool {
		return in.Op == ir.OpConst
	}), func(s site) { s.in.Imm++ })

	class("ir/opcode-swap", collect(func(in *ir.Instr) bool {
		// Skip x+0: swapping it to x-0 is an equivalent mutant (both
		// normalize to x), not a defect.
		return in.Op == ir.OpAdd && len(in.Args) == 2 &&
			!(in.Args[1].Op == ir.OpConst && in.Args[1].Imm == 0)
	}), func(s site) { s.in.Op = ir.OpSub })

	class("ir/drop-store", collect(func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpStore8, ir.OpStore32, ir.OpStore64:
			return true
		}
		return false
	}), func(s site) {
		s.blk.Instrs = append(s.blk.Instrs[:s.idx:s.idx], s.blk.Instrs[s.idx+1:]...)
	})

	class("ir/drop-settag", collect(func(in *ir.Instr) bool {
		return in.Op == ir.OpSetTag
	}), func(s site) {
		s.blk.Instrs = append(s.blk.Instrs[:s.idx:s.idx], s.blk.Instrs[s.idx+1:]...)
	})

	class("ir/swap-branch-targets", collect(func(in *ir.Instr) bool {
		return in.Op == ir.OpCondBr
	}), func(s site) {
		s.in.Targets[0], s.in.Targets[1] = s.in.Targets[1], s.in.Targets[0]
	})

	class("ir/swap-phi-incoming", collect(func(in *ir.Instr) bool {
		return in.Op == ir.OpPhi && len(in.Args) == 2 && in.Args[0] != in.Args[1]
	}), func(s site) {
		s.in.Args[0], s.in.Args[1] = s.in.Args[1], s.in.Args[0]
	})

	return muts
}

// CloneResult deep-copies the parts of a codegen.Result that native
// mutants corrupt (the instruction stream); debug info is shared.
func CloneResult(res *codegen.Result) *codegen.Result {
	out := *res
	prog := &isa.Program{
		Code:  append([]isa.Instr(nil), res.Program.Code...),
		Funcs: append([]isa.FuncSym(nil), res.Program.Funcs...),
	}
	out.Program = prog
	return &out
}

// Native enumerates mutants over an emitted program. Clone the result
// (CloneResult) before enumerating; every Apply corrupts it in place.
func Native(res *codegen.Result, mem *verify.MemModel) []Mutant {
	prog, nmap := res.Program, res.NMap
	gen := func(pos int) bool {
		return pos < len(nmap.Region) && nmap.Region[pos] == core.RegionGenerated
	}
	collect := func(pred func(int, *isa.Instr) bool) []int {
		var out []int
		for pos := range prog.Code {
			if pred(pos, &prog.Code[pos]) {
				out = append(out, pos)
			}
		}
		return out
	}
	var muts []Mutant
	class := func(name string, sites []int, apply func(int)) {
		for _, i := range spread(len(sites)) {
			pos := sites[i]
			muts = append(muts, Mutant{
				Class: name,
				Site:  fmt.Sprintf("native@%d (%s)", pos, prog.Code[pos].String()),
				Apply: func() { apply(pos) },
			})
		}
	}

	// An off-by-one on a spill/staging store address: breaks alignment.
	class("native/store-misalign", collect(func(pos int, in *isa.Instr) bool {
		return gen(pos) && in.Op == isa.STORE64 && in.Abs
	}), func(pos int) { prog.Code[pos].Imm++ })

	// A wild absolute load far beyond the heap.
	class("native/load-oob", collect(func(pos int, in *isa.Instr) bool {
		return gen(pos) && in.Op == isa.LOAD64 && in.Abs
	}), func(pos int) { prog.Code[pos].Imm = mem.HeapSize + 4096 })

	// A store retargeted into host-staged read-only data (a column).
	var roBase int64 = -1
	for _, r := range mem.Regions {
		if r.Name == "col" && r.Hi-r.Lo >= 8 {
			roBase = r.Lo
			break
		}
	}
	if roBase >= 0 {
		class("native/readonly-store", collect(func(pos int, in *isa.Instr) bool {
			return gen(pos) && in.Op == isa.STORE64 && in.Abs
		}), func(pos int) { prog.Code[pos].Imm = roBase })
	}

	// A scratch move retargeted to the reserved tag register: a stale tag
	// write far from any shared call.
	class("native/tag-clobber", collect(func(pos int, in *isa.Instr) bool {
		return gen(pos) && in.Op == isa.MOVRI && in.Dst != isa.TagReg &&
			in.Dst > isa.LastClobbered
	}), func(pos int) { prog.Code[pos].Dst = isa.TagReg })

	// The tag write preceding a shared call dropped (NOPed out).
	class("native/drop-tag-write", collect(func(pos int, in *isa.Instr) bool {
		return gen(pos) && in.Op == isa.MOVRI && in.Dst == isa.TagReg
	}), func(pos int) { prog.Code[pos] = isa.Instr{Op: isa.NOP} })

	// A branch retargeted into a different function.
	class("native/branch-escape", collect(func(pos int, in *isa.Instr) bool {
		if !gen(pos) || !in.IsBranch() {
			return false
		}
		return prog.FuncAt(pos) != nil && len(prog.Funcs) > 1
	}), func(pos int) {
		in := &prog.Code[pos]
		self := prog.FuncAt(pos)
		for i := range prog.Funcs {
			f := &prog.Funcs[i]
			if f != self && f.End > f.Entry {
				tgt := int64(f.Entry)
				if in.Op == isa.JMP || in.Op == isa.JNZ || in.Op == isa.JZ {
					in.Imm = tgt
				} else {
					in.Imm2 = tgt
				}
				return
			}
		}
	})

	return muts
}
