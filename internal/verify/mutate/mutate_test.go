package mutate

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/pipeline"
	"repro/internal/queries"
	"repro/internal/verify"
	"repro/internal/verify/absint"
	"repro/internal/verify/tv"
)

// catchRate is the gate: the validators must catch at least this fraction
// of injected mutants across the corpus, with zero diagnostics on the
// clean artifacts.
const catchRate = 0.95

func gateSuite() *verify.Suite {
	return verify.NewSuite(append(verify.ArtifactSuite().Checkers, absint.Checker{})...)
}

// TestMutantGate runs the full harness over the query corpus: every clean
// compile must verify silently (false-positive gate), and the aggregate
// mutant catch rate must clear 95% (sensitivity gate). Per-class rates are
// logged so a regression names the weakened validator.
func TestMutantGate(t *testing.T) {
	if testing.Short() {
		t.Skip("mutant corpus gate is not a -short test")
	}
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.01, Seed: 42})

	type tally struct{ caught, total int }
	perClass := map[string]*tally{}
	count := func(class string, caught bool) {
		tl := perClass[class]
		if tl == nil {
			tl = &tally{}
			perClass[class] = tl
		}
		tl.total++
		if caught {
			tl.caught++
		}
	}

	for _, w := range queries.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			opts := engine.DefaultOptions()
			opts.VerifyArtifacts = true
			c := engine.NewCompiler(cat, opts)

			// False-positive gate: the clean compile runs the whole stack —
			// artifact suite + absint after every phase, translation
			// validation after every optimizer pass — and must stay silent.
			cq, err := c.CompileQuery(w.Query)
			if err != nil {
				t.Fatalf("clean compile flagged: %v", err)
			}
			if cq.TVSteps == 0 {
				t.Fatal("translation validator checked no pass applications")
			}

			popts := pipeline.Options{RegisterTagging: opts.RegisterTagging}
			freshModule := func() *pipeline.Compiled {
				pc, err := pipeline.Compile(cq.Plan, cq.Layout, popts)
				if err != nil {
					t.Fatalf("pipeline recompile: %v", err)
				}
				return pc
			}

			// IR mutants: the translation validator must refute equivalence
			// between the clean module's summary and the mutated one.
			it := tv.NewInterner()
			pre := tv.Summarize(freshModule().Module, it)
			nIR := len(IR(freshModule().Module))
			for i := 0; i < nIR; i++ {
				pc := freshModule()
				muts := IR(pc.Module)
				muts[i].Apply()
				post := tv.Summarize(pc.Module, it)
				caught := len(tv.Compare(pre, post, it)) > 0
				count(muts[i].Class, caught)
				if !caught {
					t.Logf("missed %s at %s", muts[i].Class, muts[i].Site)
				}
			}

			// Native mutants: the artifact suite + abstract interpreter
			// must flag the mutated program.
			suite := gateSuite()
			nNative := len(Native(CloneResult(cq.Code), cq.Mem))
			for i := 0; i < nNative; i++ {
				code := CloneResult(cq.Code)
				muts := Native(code, cq.Mem)
				muts[i].Apply()
				ds := suite.Run(&verify.Artifact{
					Phase:           "emit",
					Module:          cq.Pipe.Module,
					Dict:            cq.Pipe.Dict,
					Code:            code,
					RegisterTagging: opts.RegisterTagging,
					Pipelines:       cq.Pipe.Pipelines,
					Layout:          cq.Layout,
					Mem:             cq.Mem,
				})
				caught := len(verify.Errs(ds)) > 0
				count(muts[i].Class, caught)
				if !caught {
					t.Logf("missed %s at %s", muts[i].Class, muts[i].Site)
				}
			}
		})
	}

	var caught, total int
	for class, tl := range perClass {
		caught += tl.caught
		total += tl.total
		t.Logf("%-26s %3d/%3d", class, tl.caught, tl.total)
	}
	if total == 0 {
		t.Fatal("no mutants enumerated")
	}
	rate := float64(caught) / float64(total)
	t.Logf("aggregate: %d/%d = %.1f%%", caught, total, 100*rate)
	if rate < catchRate {
		t.Fatalf("mutant catch rate %.1f%% below the %.0f%% gate", 100*rate, 100*catchRate)
	}
}

// TestMutantsAreDeterministic: two enumerations over identical artifacts
// must agree site for site — the gate must not flake.
func TestMutantsAreDeterministic(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.01, Seed: 42})
	opts := engine.DefaultOptions()
	c := engine.NewCompiler(cat, opts)
	cq, err := c.CompileQuery(queries.Fig9().Query)
	if err != nil {
		t.Fatal(err)
	}
	sig := func() string {
		s := ""
		for _, mu := range Native(CloneResult(cq.Code), cq.Mem) {
			s += fmt.Sprintf("%s@%s\n", mu.Class, mu.Site)
		}
		pc, err := pipeline.Compile(cq.Plan, cq.Layout, pipeline.Options{RegisterTagging: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, mu := range IR(pc.Module) {
			s += fmt.Sprintf("%s@%s\n", mu.Class, mu.Site)
		}
		return s
	}
	if a, b := sig(), sig(); a != b {
		t.Fatalf("non-deterministic enumeration:\n%s\nvs\n%s", a, b)
	}
}
