package verify

import (
	"fmt"

	"repro/internal/core"
)

// Shard-journal verification (`tprofvet check -shard`, DESIGN.md §13).
//
// A sharded run leaves two trails: per-shard lineage journals (which
// zones each shard owned and what the coordinator decided about them) and
// zero-cost skip events in the merged profile (one per pruned zone). The
// attribution contract is that the two trails merge without collisions
// and cover the table exactly — every table row is accounted for either
// by a scanned zone or by a matching skip event. This checker replays the
// journals structurally; the engine-independent input types keep the
// package free of an engine import (the engine depends on verify, not the
// other way around).

// ShardZone is one zone verdict inside a shard journal.
type ShardZone struct {
	Zone   int
	Lo, Hi int64
	Pruned bool
	Cause  string
}

// ShardJournal is one shard's run state for one scan pipeline, as
// journaled by the engine's cross-shard coordinator.
type ShardJournal struct {
	Pipeline int
	Alias    string
	Shard    int
	Lo, Hi   int64
	Rows     int64
	Scanned  int64
	Pruned   bool
	Zones    []ShardZone
}

func shardDiag(check string, sev Severity, locus, format string, args ...interface{}) Diag {
	return Diag{Check: check, Severity: sev, Level: core.LevelTask,
		Locus: locus, Msg: fmt.Sprintf(format, args...)}
}

// CheckShards verifies one run's shard journals against the scanned
// tables' row counts and the merged profile's skip events. tableRows maps
// each journaled scan alias to its table's row count.
func CheckShards(tableRows map[string]int64, journals []ShardJournal, skips []core.SkipEvent) []Diag {
	var out []Diag

	type zkey struct {
		pipe, zone int
	}
	zoneOwner := map[zkey]int{}
	prunedZones := map[zkey]ShardZone{}
	byPipe := map[int][]ShardJournal{}

	for _, j := range journals {
		locus := fmt.Sprintf("%s shard %d", j.Alias, j.Shard)
		byPipe[j.Pipeline] = append(byPipe[j.Pipeline], j)

		var rows, scanned int64
		next := j.Lo
		for _, z := range j.Zones {
			k := zkey{j.Pipeline, z.Zone}
			if prev, dup := zoneOwner[k]; dup {
				out = append(out, shardDiag("shard/zone-collision", Error, locus,
					"zone %d already claimed by shard %d (tag collision)", z.Zone, prev))
			}
			zoneOwner[k] = j.Shard
			if z.Lo != next {
				out = append(out, shardDiag("shard/zone-gap", Error, locus,
					"zone %d covers [%d,%d), expected to start at %d", z.Zone, z.Lo, z.Hi, next))
			}
			next = z.Hi
			rows += z.Hi - z.Lo
			switch {
			case z.Pruned && z.Cause == "":
				out = append(out, shardDiag("shard/cause-missing", Error, locus,
					"pruned zone %d carries no skip cause", z.Zone))
			case z.Pruned:
				if z.Cause != core.SkipFilter && z.Cause != core.SkipSemiJoin && z.Cause != core.SkipBloom {
					out = append(out, shardDiag("shard/cause-unknown", Error, locus,
						"pruned zone %d has unknown cause %q", z.Zone, z.Cause))
				}
				prunedZones[k] = z
			default:
				scanned += z.Hi - z.Lo
				if z.Cause != "" {
					out = append(out, shardDiag("shard/cause-spurious", Error, locus,
						"surviving zone %d carries cause %q", z.Zone, z.Cause))
				}
			}
		}
		if next != j.Hi {
			out = append(out, shardDiag("shard/zone-short", Error, locus,
				"zones end at %d, shard owns [%d,%d)", next, j.Lo, j.Hi))
		}
		if rows != j.Rows {
			out = append(out, shardDiag("shard/rows-mismatch", Error, locus,
				"zones cover %d rows, journal claims %d", rows, j.Rows))
		}
		if scanned != j.Scanned {
			out = append(out, shardDiag("shard/scanned-mismatch", Error, locus,
				"surviving zones hold %d rows, journal claims scanned %d", scanned, j.Scanned))
		}
		if j.Pruned != (scanned == 0 && len(j.Zones) > 0) {
			out = append(out, shardDiag("shard/pruned-flag", Error, locus,
				"whole-shard pruned flag %v disagrees with %d surviving rows", j.Pruned, scanned))
		}
	}

	// Per pipeline: shards tile the scanned table [0, rows) contiguously.
	for pipe, js := range byPipe {
		alias := js[0].Alias
		locus := fmt.Sprintf("%s pipeline %d", alias, pipe)
		next := int64(0)
		for _, j := range js {
			if j.Lo != next {
				out = append(out, shardDiag("shard/tile-gap", Error, locus,
					"shard %d starts at %d, expected %d", j.Shard, j.Lo, next))
			}
			next = j.Hi
		}
		want, ok := tableRows[alias]
		if !ok {
			out = append(out, shardDiag("shard/unknown-alias", Error, locus,
				"no table row count supplied for journaled scan"))
			continue
		}
		if next != want {
			out = append(out, shardDiag("shard/tile-short", Error, locus,
				"shards cover [0,%d), table has %d rows", next, want))
		}
	}

	// Pruned zones and skip events are in bijection, and agree on every
	// field the profile records.
	seen := map[zkey]bool{}
	for _, sk := range skips {
		k := zkey{sk.Pipeline, sk.Zone}
		locus := fmt.Sprintf("%s zone %d", sk.Alias, sk.Zone)
		if seen[k] {
			out = append(out, shardDiag("shard/skip-duplicate", Error, locus,
				"zone has two skip events in the merged profile"))
			continue
		}
		seen[k] = true
		z, ok := prunedZones[k]
		if !ok {
			out = append(out, shardDiag("shard/skip-orphan", Error, locus,
				"skip event has no pruned zone in any journal"))
			continue
		}
		if sk.Lo != z.Lo || sk.Hi != z.Hi || sk.Rows != z.Hi-z.Lo {
			out = append(out, shardDiag("shard/skip-range", Error, locus,
				"skip event spans [%d,%d) rows=%d, journal says [%d,%d)", sk.Lo, sk.Hi, sk.Rows, z.Lo, z.Hi))
		}
		if sk.Cause != z.Cause {
			out = append(out, shardDiag("shard/skip-cause", Error, locus,
				"skip cause %q, journal says %q", sk.Cause, z.Cause))
		}
		if want := zoneOwner[k]; sk.Shard != want {
			out = append(out, shardDiag("shard/skip-shard", Error, locus,
				"skip stamped shard %d, journal owner is %d", sk.Shard, want))
		}
	}
	for k := range prunedZones {
		if !seen[k] {
			out = append(out, shardDiag("shard/skip-missing", Error,
				fmt.Sprintf("pipeline %d zone %d", k.pipe, k.zone),
				"pruned zone has no skip event in the merged profile"))
		}
	}
	return out
}
