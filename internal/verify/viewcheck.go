package verify

import (
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/mview"
)

// Materialized-view verification (`tprofvet check -views`, DESIGN.md §16).
//
// A view's refresh ledger claims that view-table prefix [0, ViewRows)
// holds exactly the partial aggregates of base-table prefix [0, Covered),
// one ledger entry per build/refresh. CheckViews replays those claims:
// it recomputes every refresh window's partials from the base table with
// the view's own aggregation code (mview.View.ComputePartials — the
// build, refresh, and verification paths share one implementation, so a
// divergence here means the stored bytes or the ledger were corrupted,
// not that two aggregators disagree) and demands byte equality against
// the stored view columns. It also cross-checks the ledger against the
// epoch journal: every window that added partial rows must be backed by
// a journaled append to the view table with exactly that row window.

func viewDiag(check string, sev Severity, locus, format string, args ...interface{}) Diag {
	return epochDiag(check, sev, locus, format, args...)
}

// CheckViews verifies every registered view of a manager against its
// catalog: ledger monotonicity, coverage bounds, backing-table row
// counts, journal backing for refresh appends, and byte-exact partial
// contents under windowed replay.
func CheckViews(cat *catalog.Catalog, m *mview.Manager) []Diag {
	var out []Diag
	journal := cat.EpochJournal()
	for _, name := range m.Names() {
		v, ok := m.Get(name)
		if !ok {
			continue
		}
		out = append(out, checkView(cat, v, journal)...)
	}
	return out
}

func checkView(cat *catalog.Catalog, v *mview.View, journal []core.EpochEvent) []Diag {
	var out []Diag
	locus := "view " + v.Name

	states := v.States()
	if len(states) == 0 {
		return []Diag{viewDiag("views/no-ledger", Error, locus, "view has no refresh ledger")}
	}

	// The ledger is an append-only history: coverage, view rows and
	// epochs may only grow.
	for i := 1; i < len(states); i++ {
		p, s := states[i-1], states[i]
		if s.Covered < p.Covered || s.ViewRows < p.ViewRows || s.Epoch < p.Epoch {
			out = append(out, viewDiag("views/ledger-order", Error, locus,
				"ledger entry %d (%+v) regresses from %d (%+v)", i, s, i-1, p))
			return out // later checks would chase corrupted indices
		}
	}

	vt, err := cat.Table(v.TableName)
	if err != nil {
		return append(out, viewDiag("views/table-missing", Error, locus,
			"backing table %s not in catalog", v.TableName))
	}
	bt, err := cat.Table(v.Def().Table)
	if err != nil {
		return append(out, viewDiag("views/base-missing", Error, locus,
			"base table %s not in catalog", v.Def().Table))
	}

	last := states[len(states)-1]
	if last.Covered > int64(bt.Rows()) {
		out = append(out, viewDiag("views/coverage-overrun", Error, locus,
			"ledger covers %d base rows, base table has %d", last.Covered, bt.Rows()))
	}
	if last.ViewRows != int64(vt.Rows()) {
		out = append(out, viewDiag("views/rows-mismatch", Error, locus,
			"ledger claims %d partial rows, backing table has %d", last.ViewRows, vt.Rows()))
	}
	if epoch := cat.Epoch(); last.Epoch > epoch {
		out = append(out, viewDiag("views/epoch-ahead", Error, locus,
			"ledger epoch %d is ahead of the catalog epoch %d", last.Epoch, epoch))
	}

	// Every refresh window that added partial rows must be one journaled
	// append to the view table: [prev.ViewRows, st.ViewRows) exactly.
	for i := 1; i < len(states); i++ {
		p, s := states[i-1], states[i]
		if s.ViewRows == p.ViewRows {
			continue // delta aggregated to zero groups; nothing appended
		}
		backed := false
		for _, ev := range journal {
			if ev.Table == v.TableName && ev.Lo == p.ViewRows && ev.Hi == s.ViewRows {
				backed = true
				break
			}
		}
		if !backed {
			out = append(out, viewDiag("views/journal-missing", Error, locus,
				"refresh window [%d,%d) of %s has no matching epoch-journal append",
				p.ViewRows, s.ViewRows, v.TableName))
		}
	}

	// Content replay: recompute each window's partials from the base
	// prefix and compare byte-for-byte with the stored columns. Bound the
	// comparison to what both sides actually hold, so a corrupted ledger
	// produces its own diagnostic above instead of an index panic here.
	// Replay needs the full window history; if the ledger was truncated
	// (its first entry is not the build), windows cannot be
	// reconstructed and the content check is skipped.
	if states[0].Epoch != v.BuildEpoch {
		return out
	}
	bv := bt.View()
	mvView := vt.View()
	prevCovered, prevRows := int64(0), int64(0)
	for i, s := range states {
		if s.Covered > int64(bv.Rows) || s.ViewRows > int64(mvView.Rows) {
			break
		}
		cols, groups := v.ComputePartials(bv, prevCovered, s.Covered)
		if groups != s.ViewRows-prevRows {
			out = append(out, viewDiag("views/content-mismatch", Error, locus,
				"ledger entry %d: window [%d,%d) re-aggregates to %d partial rows, ledger claims %d",
				i, prevCovered, s.Covered, groups, s.ViewRows-prevRows))
			break
		}
		for ci := range cols {
			stored := mvView.Col(ci)[prevRows:s.ViewRows]
			for ri := range cols[ci] {
				if stored[ri] != cols[ci][ri] {
					out = append(out, viewDiag("views/content-mismatch", Error, locus,
						"partial row %d col %d holds %d, replay of base window [%d,%d) yields %d",
						prevRows+int64(ri), ci, stored[ri], prevCovered, s.Covered, cols[ci][ri]))
					return out
				}
			}
		}
		prevCovered, prevRows = s.Covered, s.ViewRows
	}
	return out
}
