package verify

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
)

// Epoch-journal verification (`tprofvet check -epoch`, DESIGN.md §15).
//
// Streaming ingest leaves its own lineage trail: the catalog's epoch
// journal (one EpochEvent per append batch) plus epoch snapshots taken
// whenever a session pins the storage state. The storage contract is that
// epochs advance strictly, appended windows tile each table's tail
// contiguously from the load state, every snapshot's visible row count is
// exactly the journal prefix up to its epoch, zone granularity stays a
// pure function of the visible row count, and per-column zone bounds only
// widen from one epoch to the next (append-only data can never shrink an
// interval). This checker replays the journal structurally against the
// snapshots, mirroring CheckShards for the shard journals.

// EpochTableState is one table's visible state inside an epoch snapshot.
type EpochTableState struct {
	Rows     int64
	ZoneRows int64           // granularity of the snapshot's zone map
	Bounds   []catalog.Bound // per-column bounds folded over the zone map
}

// EpochSnapshot is the storage state one session observed: the epoch it
// pinned and each table's visible rows, zone granularity, and folded
// zone bounds at that epoch.
type EpochSnapshot struct {
	Epoch  uint64
	Tables map[string]EpochTableState
}

func epochDiag(check string, sev Severity, locus, format string, args ...interface{}) Diag {
	return Diag{Check: check, Severity: sev, Level: core.LevelTask,
		Locus: locus, Msg: fmt.Sprintf(format, args...)}
}

// CheckEpochs replays an epoch journal from the load-time row counts
// (base) and verifies the given snapshots against the replayed state.
// Snapshots may be supplied in any order; each is checked against the
// journal prefix with Epoch <= snapshot epoch.
func CheckEpochs(base map[string]int64, journal []core.EpochEvent, snaps []EpochSnapshot) []Diag {
	var out []Diag

	// Pass 1: the journal itself. Epochs strictly increase; each event's
	// window starts exactly at the table's replayed row count and is
	// non-empty.
	rows := make(map[string]int64, len(base))
	for t, n := range base {
		rows[t] = n
	}
	var prevEpoch uint64
	for i, ev := range journal {
		locus := fmt.Sprintf("journal[%d] %s", i, ev.Table)
		if ev.Epoch <= prevEpoch {
			out = append(out, epochDiag("epoch/non-monotonic", Error, locus,
				"epoch %d follows %d", ev.Epoch, prevEpoch))
		}
		prevEpoch = ev.Epoch
		if ev.Hi <= ev.Lo {
			out = append(out, epochDiag("epoch/window-empty", Error, locus,
				"append window [%d,%d) holds no rows", ev.Lo, ev.Hi))
			continue
		}
		at, known := rows[ev.Table]
		if !known {
			out = append(out, epochDiag("epoch/unknown-table", Error, locus,
				"append to table with no load-time row count"))
			rows[ev.Table] = ev.Hi
			continue
		}
		if ev.Lo != at {
			out = append(out, epochDiag("epoch/window-gap", Error, locus,
				"append window starts at %d, table tail is at %d", ev.Lo, at))
		}
		rows[ev.Table] = ev.Hi
	}

	// Pass 2: snapshots against the replayed prefix. Work in epoch order
	// so bound-regression compares consecutive observations.
	ordered := make([]EpochSnapshot, len(snaps))
	copy(ordered, snaps)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Epoch < ordered[j].Epoch })

	prevBounds := map[string][]catalog.Bound{}
	for si, snap := range ordered {
		if si > 0 && snap.Epoch == ordered[si-1].Epoch {
			// Two observations of one epoch must agree exactly.
			if !epochSnapshotsEqual(snap, ordered[si-1]) {
				out = append(out, epochDiag("epoch/snap-order", Error,
					fmt.Sprintf("epoch %d", snap.Epoch),
					"two snapshots of the same epoch disagree"))
			}
		}
		// Replay the journal prefix visible to this snapshot.
		visible := make(map[string]int64, len(base))
		for t, n := range base {
			visible[t] = n
		}
		for _, ev := range journal {
			if ev.Epoch > snap.Epoch {
				break
			}
			if ev.Hi > ev.Lo {
				visible[ev.Table] = ev.Hi
			}
		}
		for _, table := range sortedTables(snap.Tables) {
			st := snap.Tables[table]
			locus := fmt.Sprintf("epoch %d %s", snap.Epoch, table)
			want, known := visible[table]
			if !known {
				out = append(out, epochDiag("epoch/unknown-table", Error, locus,
					"snapshot covers table absent from the load state"))
				continue
			}
			if st.Rows != want {
				out = append(out, epochDiag("epoch/rows-mismatch", Error, locus,
					"snapshot sees %d rows, journal prefix yields %d", st.Rows, want))
			}
			wantZ := catalog.ZoneRowsFor(int(st.Rows))
			if st.Rows < wantZ {
				wantZ = st.Rows // single short zone on tiny tables
			}
			if st.ZoneRows != wantZ {
				out = append(out, epochDiag("epoch/zone-granularity", Error, locus,
					"zone granularity %d, want %d for %d rows (pure function of the table)",
					st.ZoneRows, wantZ, st.Rows))
			}
			if prev, ok := prevBounds[table]; ok && len(prev) == len(st.Bounds) {
				for ci := range prev {
					if prev[ci].Empty() {
						continue
					}
					if st.Bounds[ci].Min > prev[ci].Min || st.Bounds[ci].Max < prev[ci].Max {
						out = append(out, epochDiag("epoch/zone-regression", Error, locus,
							"col %d bounds [%d,%d] shrank from [%d,%d] — append-only bounds may only widen",
							ci, st.Bounds[ci].Min, st.Bounds[ci].Max, prev[ci].Min, prev[ci].Max))
					}
				}
			}
			prevBounds[table] = st.Bounds
		}
	}
	return out
}

func sortedTables(m map[string]EpochTableState) []string {
	names := make([]string, 0, len(m))
	for t := range m {
		names = append(names, t)
	}
	sort.Strings(names)
	return names
}

func epochSnapshotsEqual(a, b EpochSnapshot) bool {
	if len(a.Tables) != len(b.Tables) {
		return false
	}
	for t, sa := range a.Tables {
		sb, ok := b.Tables[t]
		if !ok || sa.Rows != sb.Rows || sa.ZoneRows != sb.ZoneRows || len(sa.Bounds) != len(sb.Bounds) {
			return false
		}
		for i := range sa.Bounds {
			if sa.Bounds[i] != sb.Bounds[i] {
				return false
			}
		}
	}
	return true
}

// SnapshotEpochState reduces a live catalog snapshot to the checker's
// input form: per table, the visible rows, the zone granularity the view
// exposes, and the folded per-column bounds of its zone map.
func SnapshotEpochState(snap *catalog.Snapshot, tables []string) EpochSnapshot {
	es := EpochSnapshot{Epoch: snap.Epoch, Tables: map[string]EpochTableState{}}
	for _, name := range tables {
		v := snap.View(name)
		if v == nil {
			continue
		}
		zones := v.Zones()
		st := EpochTableState{Rows: int64(v.Rows)}
		if len(zones) > 0 {
			st.ZoneRows = zones[0].Hi - zones[0].Lo
			ncols := len(zones[0].Bounds)
			st.Bounds = make([]catalog.Bound, ncols)
			for ci := range st.Bounds {
				st.Bounds[ci] = catalog.Bound{Min: 1, Max: 0} // empty
			}
			for _, z := range zones {
				for ci, b := range z.Bounds {
					if b.Empty() {
						continue
					}
					if st.Bounds[ci].Empty() {
						st.Bounds[ci] = b
						continue
					}
					if b.Min < st.Bounds[ci].Min {
						st.Bounds[ci].Min = b.Min
					}
					if b.Max > st.Bounds[ci].Max {
						st.Bounds[ci].Max = b.Max
					}
				}
			}
		}
		es.Tables[name] = st
	}
	return es
}
