package verify

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

// cleanEpochRun builds a consistent ingest fixture: one table loaded with
// 1000 rows, three append batches, and snapshots at the load epoch and
// after each append. Zone granularity for these sizes is the 256-row
// minimum, so every snapshot carries ZoneRows 256; bounds widen once as
// the tail introduces a larger maximum.
func cleanEpochRun() (map[string]int64, []core.EpochEvent, []EpochSnapshot) {
	base := map[string]int64{"t": 1000}
	journal := []core.EpochEvent{
		{Epoch: 1, Table: "t", Lo: 1000, Hi: 1100},
		{Epoch: 2, Table: "t", Lo: 1100, Hi: 1164},
		{Epoch: 3, Table: "t", Lo: 1164, Hi: 1420, Grew: false},
	}
	snaps := []EpochSnapshot{
		{Epoch: 0, Tables: map[string]EpochTableState{
			"t": {Rows: 1000, ZoneRows: 256, Bounds: []catalog.Bound{{Min: 0, Max: 50}}}}},
		{Epoch: 1, Tables: map[string]EpochTableState{
			"t": {Rows: 1100, ZoneRows: 256, Bounds: []catalog.Bound{{Min: 0, Max: 50}}}}},
		{Epoch: 2, Tables: map[string]EpochTableState{
			"t": {Rows: 1164, ZoneRows: 256, Bounds: []catalog.Bound{{Min: 0, Max: 80}}}}},
		{Epoch: 3, Tables: map[string]EpochTableState{
			"t": {Rows: 1420, ZoneRows: 256, Bounds: []catalog.Bound{{Min: 0, Max: 80}}}}},
	}
	return base, journal, snaps
}

func TestCheckEpochsClean(t *testing.T) {
	base, journal, snaps := cleanEpochRun()
	if ds := CheckEpochs(base, journal, snaps); len(ds) != 0 {
		t.Fatalf("clean fixture produced diagnostics: %v", ds)
	}
}

func TestCheckEpochsCorruptions(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(base map[string]int64, j []core.EpochEvent, s []EpochSnapshot) (map[string]int64, []core.EpochEvent, []EpochSnapshot)
		want    string
	}{
		{"non-monotonic epoch", func(base map[string]int64, j []core.EpochEvent, s []EpochSnapshot) (map[string]int64, []core.EpochEvent, []EpochSnapshot) {
			j[2].Epoch = 2 // repeats the previous epoch
			return base, j, s
		}, "epoch/non-monotonic"},
		{"window gap", func(base map[string]int64, j []core.EpochEvent, s []EpochSnapshot) (map[string]int64, []core.EpochEvent, []EpochSnapshot) {
			j[1].Lo = 1150 // leaves rows [1100,1150) unaccounted for
			return base, j, s
		}, "epoch/window-gap"},
		{"window overlap", func(base map[string]int64, j []core.EpochEvent, s []EpochSnapshot) (map[string]int64, []core.EpochEvent, []EpochSnapshot) {
			j[1].Lo = 1050 // re-appends rows epoch 1 already covered
			return base, j, s
		}, "epoch/window-gap"},
		{"window empty", func(base map[string]int64, j []core.EpochEvent, s []EpochSnapshot) (map[string]int64, []core.EpochEvent, []EpochSnapshot) {
			j[1].Hi = j[1].Lo
			return base, j, s
		}, "epoch/window-empty"},
		{"unknown table in journal", func(base map[string]int64, j []core.EpochEvent, s []EpochSnapshot) (map[string]int64, []core.EpochEvent, []EpochSnapshot) {
			delete(base, "t")
			return base, j, s
		}, "epoch/unknown-table"},
		{"snapshot rows mismatch", func(base map[string]int64, j []core.EpochEvent, s []EpochSnapshot) (map[string]int64, []core.EpochEvent, []EpochSnapshot) {
			s[2].Tables["t"] = EpochTableState{Rows: 1200, ZoneRows: 256,
				Bounds: s[2].Tables["t"].Bounds} // sees rows the journal never appended
			return base, j, s
		}, "epoch/rows-mismatch"},
		{"zone granularity drift", func(base map[string]int64, j []core.EpochEvent, s []EpochSnapshot) (map[string]int64, []core.EpochEvent, []EpochSnapshot) {
			st := s[3].Tables["t"]
			st.ZoneRows = 512 // granularity must stay a pure function of rows
			s[3].Tables["t"] = st
			return base, j, s
		}, "epoch/zone-granularity"},
		{"zone bound regression", func(base map[string]int64, j []core.EpochEvent, s []EpochSnapshot) (map[string]int64, []core.EpochEvent, []EpochSnapshot) {
			st := s[3].Tables["t"]
			st.Bounds = []catalog.Bound{{Min: 0, Max: 40}} // narrower than epoch 2
			s[3].Tables["t"] = st
			return base, j, s
		}, "epoch/zone-regression"},
		{"same-epoch disagreement", func(base map[string]int64, j []core.EpochEvent, s []EpochSnapshot) (map[string]int64, []core.EpochEvent, []EpochSnapshot) {
			dup := EpochSnapshot{Epoch: 2, Tables: map[string]EpochTableState{
				"t": {Rows: 1164, ZoneRows: 512, Bounds: []catalog.Bound{{Min: 0, Max: 80}}}}}
			return base, j, append(s, dup)
		}, "epoch/snap-order"},
	}
	for _, tc := range cases {
		base, journal, snaps := cleanEpochRun()
		base, journal, snaps = tc.corrupt(base, journal, snaps)
		ds := CheckEpochs(base, journal, snaps)
		if !hasCheck(ds, tc.want) {
			t.Errorf("%s: expected a %s diagnostic, got %v", tc.name, tc.want, ds)
		}
		for _, d := range ds {
			if d.Severity != Error {
				t.Errorf("%s: diagnostic %s not an error", tc.name, d.Check)
			}
		}
	}
}

// TestCheckEpochsLiveCatalog closes the loop against the real storage
// layer: appends to a live catalog, snapshots reduced via
// SnapshotEpochState, and the catalog's own journal must replay clean.
func TestCheckEpochsLiveCatalog(t *testing.T) {
	c := catalog.New()
	tb := catalog.NewTable("t")
	a := tb.AddCol("a", catalog.TInt)
	for i := 0; i < 1500; i++ {
		a.Data = append(a.Data, int64(i%97))
	}
	c.Add(tb)
	base := c.BaseRows()

	snaps := []EpochSnapshot{SnapshotEpochState(c.Snapshot(), c.Names())}
	for i := 0; i < 3; i++ {
		batch := [][]int64{make([]int64, 120)}
		for k := range batch[0] {
			batch[0][k] = int64(k % 97)
		}
		if _, err := c.AppendCols("t", batch); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, SnapshotEpochState(c.Snapshot(), c.Names()))
	}
	if ds := CheckEpochs(base, c.EpochJournal(), snaps); len(ds) != 0 {
		t.Fatalf("live catalog journal produced diagnostics: %v", ds)
	}
}
