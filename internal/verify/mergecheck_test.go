package verify_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/pipeline"
	"repro/internal/queries"
	"repro/internal/verify"
)

// mergeArtifact compiles the fig9 workload — which carries both a
// bloom-guarded join build and a place-kernel group sink under the
// default partitioned configuration — and returns the emit-phase
// artifact. Compilation is deterministic, so each corruption case gets
// an identical fresh fixture.
func mergeArtifact(t *testing.T) *verify.Artifact {
	t.Helper()
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.01, Seed: 42})
	c := engine.NewCompiler(cat, engine.DefaultOptions())
	cq, err := c.CompileQuery(queries.Fig9().Query)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return &verify.Artifact{
		Phase:     "emit",
		Module:    cq.Pipe.Module,
		Dict:      cq.Pipe.Dict,
		Code:      cq.Code,
		Pipelines: cq.Pipe.Pipelines,
		Layout:    cq.Layout,
		Mem:       cq.Mem,
	}
}

// pickMerge returns a partitioned pipeline from the artifact; with
// needBloom it returns one whose hash table carries a bloom filter.
func pickMerge(t *testing.T, a *verify.Artifact, needBloom bool) *pipeline.PipelineInfo {
	t.Helper()
	for i := range a.Pipelines {
		p := &a.Pipelines[i]
		if p.Merge == nil {
			continue
		}
		if needBloom && p.Sink.HT.BloomBits == 0 {
			continue
		}
		return p
	}
	t.Fatal("fixture has no matching partitioned pipeline")
	return nil
}

func mergeHasCheck(ds []verify.Diag, check string) bool {
	for _, d := range ds {
		if d.Check == check {
			return true
		}
	}
	return false
}

func TestMergeInvariantsClean(t *testing.T) {
	a := mergeArtifact(t)
	if ds := (verify.MergeInvariants{}).Check(a); len(ds) != 0 {
		t.Fatalf("clean fixture produced diagnostics: %v", ds)
	}
	// The fixture must actually exercise both sink shapes.
	pickMerge(t, a, true)
	if p := pickMerge(t, a, false); p.Merge == nil {
		t.Fatal("no partitioned pipeline in fixture")
	}
}

// TestMergeInvariantsCorruptions mirrors the shardcheck battery: every
// corruption of the merge artifacts must surface as the named diagnostic,
// and every diagnostic the checker emits must be an error.
func TestMergeInvariantsCorruptions(t *testing.T) {
	cases := []struct {
		name  string
		bloom bool // corrupt the bloom-carrying pipeline
		corr  func(p *pipeline.PipelineInfo)
		want  string
	}{
		{"partition count not a power of two", false, func(p *pipeline.PipelineInfo) {
			p.Sink.HT.Partitions = 3
		}, "merge/partitions"},
		{"merge info partition mismatch", false, func(p *pipeline.PipelineInfo) {
			p.Merge.Partitions = p.Sink.HT.Partitions * 2
		}, "merge/partitions"},
		{"slot ranges do not tile the directory", false, func(p *pipeline.PipelineInfo) {
			p.Sink.HT.SlotShift++
		}, "merge/slot-ranges"},
		{"staging region unallocated", false, func(p *pipeline.PipelineInfo) {
			p.Sink.HT.MergeCnt = 0
		}, "merge/region"},
		{"staging region overlaps the arena", false, func(p *pipeline.PipelineInfo) {
			p.Sink.HT.MergeSrc = p.Sink.HT.Arena
		}, "merge/region-overlap"},
		{"bloom bit count not a power of two", true, func(p *pipeline.PipelineInfo) {
			p.Sink.HT.BloomBits = 24
		}, "merge/bloom"},
		{"bloom bit count not sized to directory", true, func(p *pipeline.PipelineInfo) {
			p.Sink.HT.BloomBits *= 2
		}, "merge/bloom"},
		{"merge task unregistered", false, func(p *pipeline.PipelineInfo) {
			p.Merge.ScatterTask = 999999
		}, "merge/task"},
		{"merge task has a non-merge kind", false, func(p *pipeline.PipelineInfo) {
			p.Merge.MergeTask = p.Tasks[0] // the scan task
		}, "merge/task"},
		{"generated merge function missing", false, func(p *pipeline.PipelineInfo) {
			p.Merge.ScatterFunc = "nosuchfunc"
		}, "merge/func"},
		{"kernel instructions linked to the wrong task", false, func(p *pipeline.PipelineInfo) {
			// Point the merge slot at the scatter kernel: the function
			// exists, but its instructions carry the scatter task's
			// lineage, not the merge task's.
			p.Merge.MergeFunc = p.Merge.ScatterFunc
		}, "merge/lineage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := mergeArtifact(t)
			tc.corr(pickMerge(t, a, tc.bloom))
			ds := verify.MergeInvariants{}.Check(a)
			if !mergeHasCheck(ds, tc.want) {
				t.Errorf("expected a %s diagnostic, got %v", tc.want, ds)
			}
			for _, d := range ds {
				if d.Severity != verify.Error {
					t.Errorf("diagnostic %s not an error", d.Check)
				}
			}
		})
	}
}
