package tv

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/iropt"
)

// buildLoop constructs a small but representative function: a counted loop
// over a column with a phi, loads, arithmetic with foldable and reducible
// patterns, a store, a tagged shared call and a conditional exit.
func buildLoop(m *ir.Module) {
	f := m.NewFunc("main", 0)
	b := ir.NewBuilder(f)

	head := b.NewBlock("head")
	body := b.NewBlock("body")
	done := b.NewBlock("done")

	base := b.Const(4096)
	zero := b.Const(0)
	limit := b.Load(64, b.Const(2048))
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi()
	ir.AddIncoming(i, zero)
	cond := b.Bin(ir.OpCmpLt, i, limit)
	b.CondBr(cond, body, done)

	b.SetBlock(body)
	// i*8 is strength-reducible; (6*7) folds; x+0 collapses.
	off := b.Mul(i, b.Const(8))
	addr := b.Add(base, off)
	v := b.Load(64, addr)
	fold := b.Mul(b.Const(6), b.Const(7))
	sum := b.Add(v, fold)
	sum2 := b.Add(sum, b.Const(0))
	b.SetTag(b.Const(3))
	b.Call("ht_insert", true, addr, sum2)
	next := b.Add(i, b.Const(1))
	ir.AddIncoming(i, next)
	b.Br(head)
	head.Preds = append(head.Preds, body)

	b.SetBlock(done)
	b.Store(64, b.Const(512), i)
	b.Halt()
}

func lineage() core.Lineage { return core.NewDictionary(core.NewRegistry()) }

func TestCleanOptimizationValidates(t *testing.T) {
	m := ir.NewModule()
	buildLoop(m)
	v := NewValidator(m)

	opts := iropt.AllOptions()
	opts.AfterPass = func(pass string) error {
		if ds := v.Step(m, pass); len(ds) != 0 {
			t.Fatalf("pass %s flagged a clean optimization: %v", pass, ds)
		}
		return nil
	}
	if _, err := iropt.Optimize(m, lineage(), opts); err != nil {
		t.Fatal(err)
	}
	if v.Steps() == 0 {
		t.Fatal("no pass applications validated")
	}
}

func TestNormalizationEquivalences(t *testing.T) {
	// Two modules computing the same store through differently shaped
	// expressions must summarize identically.
	build := func(variant int) *ir.Module {
		m := ir.NewModule()
		f := m.NewFunc("main", 0)
		b := ir.NewBuilder(f)
		x := b.Load(64, b.Const(1024))
		var y *ir.Instr
		if variant == 0 {
			y = b.Add(b.Mul(x, b.Const(8)), b.Const(0)) // x*8 + 0
		} else {
			y = b.Shl(x, b.Const(3)) // x << 3
		}
		b.Store(64, b.Const(512), y)
		b.Halt()
		return m
	}
	it := NewInterner()
	s0 := Summarize(build(0), it)
	s1 := Summarize(build(1), it)
	if ms := Compare(s0, s1, it); len(ms) != 0 {
		t.Fatalf("equivalent modules mismatch: %v", ms)
	}
}

func TestCommutativeSortAndFold(t *testing.T) {
	build := func(variant int) *ir.Module {
		m := ir.NewModule()
		f := m.NewFunc("main", 0)
		b := ir.NewBuilder(f)
		x := b.Load(64, b.Const(1024))
		y := b.Load(64, b.Const(1032))
		var v *ir.Instr
		if variant == 0 {
			v = b.Add(x, y)
		} else {
			v = b.Add(y, x)
		}
		w := b.Mul(b.Const(6), b.Const(7))
		b.Store(64, b.Const(512), b.Add(v, w))
		b.Halt()
		return m
	}
	it := NewInterner()
	s0 := Summarize(build(0), it)
	s1 := Summarize(build(1), it)
	if ms := Compare(s0, s1, it); len(ms) != 0 {
		t.Fatalf("commutative operands mismatch: %v", ms)
	}
}

func mismatchKinds(ms []Mismatch) string {
	var ks []string
	for _, m := range ms {
		ks = append(ks, m.Kind)
	}
	return strings.Join(ks, ",")
}

func TestMutantsAreCaught(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m *ir.Module)
		want   string // substring of expected mismatch kinds
	}{
		{"swap sub operands", func(m *ir.Module) {
			m.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
				if in.Op == ir.OpCmpLt {
					in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
				}
			})
		}, "event"},
		{"perturb constant", func(m *ir.Module) {
			m.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
				if in.Op == ir.OpConst && in.Imm == 4096 {
					in.Imm = 4097
				}
			})
		}, "event"},
		{"drop store", func(m *ir.Module) {
			for _, f := range m.Funcs {
				for _, b := range f.Blocks {
					for i, in := range b.Instrs {
						if in.Op == ir.OpStore64 {
							b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
							return
						}
					}
				}
			}
		}, "event-count"},
		{"swap branch targets", func(m *ir.Module) {
			m.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
				if in.Op == ir.OpCondBr {
					in.Targets[0], in.Targets[1] = in.Targets[1], in.Targets[0]
				}
			})
		}, "event"},
		{"swap phi incoming", func(m *ir.Module) {
			m.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
				if in.Op == ir.OpPhi && len(in.Args) == 2 {
					in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
				}
			})
		}, "phi"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := ir.NewModule()
			buildLoop(m)
			it := NewInterner()
			pre := Summarize(m, it)
			tc.mutate(m)
			post := Summarize(m, it)
			ms := Compare(pre, post, it)
			if len(ms) == 0 {
				t.Fatal("mutant not caught")
			}
			if !strings.Contains(mismatchKinds(ms), tc.want) {
				t.Fatalf("want kind %s, got %s (%v)", tc.want, mismatchKinds(ms), ms)
			}
			// Counterexamples render without placeholder garbage.
			for _, mm := range ms {
				if mm.Pre == "" || mm.Post == "" {
					t.Fatalf("unrendered counterexample: %+v", mm)
				}
			}
		})
	}
}

func TestValidatorStepPinsPass(t *testing.T) {
	m := ir.NewModule()
	buildLoop(m)
	v := NewValidator(m)
	// A legal pass state validates.
	if ds := v.Step(m, "fold"); len(ds) != 0 {
		t.Fatalf("identity step flagged: %v", ds)
	}
	// Mutate as if a pass miscompiled; the diagnostic names the pass.
	m.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpCmpLt {
			in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
		}
	})
	ds := v.Step(m, "cse")
	if len(ds) == 0 {
		t.Fatal("miscompile not caught")
	}
	if !strings.Contains(ds[0].Msg, `pass "cse"`) {
		t.Fatalf("diagnostic does not pin the pass: %s", ds[0].Msg)
	}
	if !strings.HasPrefix(ds[0].Check, "tv/") {
		t.Fatalf("bad check id: %s", ds[0].Check)
	}
}
