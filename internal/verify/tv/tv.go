// Package tv implements translation validation for the iropt pipeline.
//
// Every optimizer pass is required to preserve the observable behavior of
// the module: the sequence of stores, calls, tag writes and control
// transfers each basic block performs, and the values they operate on.
// Rather than trusting each pass, tv recomputes a canonical symbolic
// summary of the module after every pass application (hooked into
// iropt.Options.AfterPass by the engine's VerifyArtifacts mode) and proves
// the new summary equal to the previous one. A mismatch is a
// miscompilation pinned to the exact pass, reported as a structured
// counterexample: function, block, event index, and the pre/post canonical
// forms that diverged.
//
// The summary is sound against the passes the repo actually runs:
//
//   - no pass adds, removes or renames functions or blocks (LICM reuses an
//     existing unique predecessor as the preheader), so blocks are matched
//     by name;
//   - loads, calls and tag reads are never moved or merged, so they are
//     named by their block plus the count of may-write events (stores and
//     calls for memory, tag writes and calls for the tag register)
//     preceding them — a stable "memory epoch";
//   - phis are opaque symbols named by their never-reused instruction ID,
//     with their incoming edges checked as separate per-predecessor proof
//     obligations (restricted to phis the observable events depend on, so
//     dead-phi elimination does not raise a false alarm);
//   - pure expressions canonicalize by hash-consed structural value
//     numbering with constant folding (iropt.EvalBin), the exact algebraic
//     identities StrengthReduce applies (x+0, x*1, x*2^k→x<<k, x-0, x<<0,
//     x/1, x%1, x*0, x|0, x^0, x>>0), and commutative-operand sorting —
//     so every legal rewrite maps pre and post onto the same expression,
//     and anything else does not.
//
// Division is the one value instruction with an effect (the divide-by-zero
// trap). No pass removes or reorders it, and ConstFold only folds it with
// a non-zero constant divisor, so it needs no event of its own; an unused
// division mutated in place is the single defect class this layer cannot
// see (the native layers still can).
package tv

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/iropt"
	"repro/internal/verify"
)

// ---------------------------------------------------------------------------
// Hash-consed canonical expressions
// ---------------------------------------------------------------------------

// Interner assigns stable small integers to canonical expression keys. One
// Interner is shared across every summary a Validator builds, so equal ids
// mean structurally equal canonical expressions across pass boundaries,
// and keys stay O(1) in size (children are embedded by id, not by text).
type Interner struct {
	ids    map[string]int
	keys   []string
	deps   [][]int // phi IDs each expression transitively depends on
	consts map[int]int64
}

// NewInterner returns an empty interner; hand the same one to every
// Summarize call whose summaries will be Compared.
func NewInterner() *Interner {
	return &Interner{ids: map[string]int{}, consts: map[int]int64{}}
}

func (it *Interner) intern(key string, deps []int) int {
	if id, ok := it.ids[key]; ok {
		return id
	}
	id := len(it.keys)
	it.ids[key] = id
	it.keys = append(it.keys, key)
	it.deps = append(it.deps, deps)
	return id
}

func (it *Interner) constExpr(v int64) int {
	id := it.intern("k"+strconv.FormatInt(v, 10), nil)
	it.consts[id] = v
	return id
}

func (it *Interner) constVal(id int) (int64, bool) {
	v, ok := it.consts[id]
	return v, ok
}

// mergeDeps unions two sorted phi-ID slices.
func mergeDeps(a, b []int) []int {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Render expands an interned expression to bounded depth for
// counterexample messages. Tokens that are all digits are child ids;
// literal immediates are prefixed with '!' when interned.
func (it *Interner) Render(id, depth int) string {
	if id < 0 || id >= len(it.keys) {
		return "?"
	}
	key := it.keys[id]
	if depth <= 0 || !strings.HasPrefix(key, "(") {
		return key
	}
	fields := strings.Fields(strings.Trim(key, "()"))
	for i := 1; i < len(fields); i++ {
		if n, err := strconv.Atoi(fields[i]); err == nil {
			fields[i] = it.Render(n, depth-1)
		}
	}
	return "(" + strings.Join(fields, " ") + ")"
}

// ---------------------------------------------------------------------------
// Module summaries
// ---------------------------------------------------------------------------

// Event is one observable action of a basic block: a store, a call, a tag
// write, or the terminator, in program order.
type Event struct {
	Expr int // interned canonical form
	IRID int // the instruction that performs it, for diagnostics
}

type blockSummary struct {
	events []Event
}

type funcSummary struct {
	blocks map[string]*blockSummary
}

// phiOb is one phi's proof obligation: its incoming value per predecessor.
type phiOb struct {
	fn, block string
	preds     []string
	exprs     []int
}

// Summary is the canonical observational summary of a module: per-block
// event sequences plus the live phis' incoming-edge obligations.
type Summary struct {
	funcs map[string]*funcSummary
	phis  map[int]phiOb // live phis only, keyed by instruction ID
}

// commutative ops get operand sorting in canonical form.
func commutative(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpCmpEq, ir.OpCmpNe:
		return true
	}
	return false
}

type summarizer struct {
	it       *Interner
	fn       string
	memo     map[*ir.Instr]int
	memEpoch map[*ir.Instr]int // loads: #stores+calls before it in its block
	tagEpoch map[*ir.Instr]int // gettag: #settags+calls before it in its block
	callIdx  map[*ir.Instr]int // calls: ordinal among calls in its block
}

// Summarize builds the canonical summary of m using the shared Interner.
func Summarize(m *ir.Module, it *Interner) *Summary {
	s := &Summary{funcs: map[string]*funcSummary{}, phis: map[int]phiOb{}}
	allPhis := map[int]phiOb{}
	phiDeps := map[int][]int{} // phi ID → phi deps of its incoming exprs
	var frontier []int

	for _, f := range m.Funcs {
		sz := &summarizer{
			it:       it,
			fn:       f.Name,
			memo:     map[*ir.Instr]int{},
			memEpoch: map[*ir.Instr]int{},
			tagEpoch: map[*ir.Instr]int{},
			callIdx:  map[*ir.Instr]int{},
		}
		// First walk: assign epochs. Loads and tag reads are named by how
		// many may-write events precede them in their block; both are
		// stable because no pass moves, merges or reorders effectful
		// instructions.
		for _, b := range f.Blocks {
			mem, tag, calls := 0, 0, 0
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpLoad8, ir.OpLoad32, ir.OpLoad64:
					sz.memEpoch[in] = mem
				case ir.OpGetTag:
					sz.tagEpoch[in] = tag
				case ir.OpStore8, ir.OpStore32, ir.OpStore64:
					mem++
				case ir.OpSetTag:
					tag++
				case ir.OpCall:
					sz.callIdx[in] = calls
					calls++
					mem++
					tag++
				}
			}
		}
		fs := &funcSummary{blocks: map[string]*blockSummary{}}
		for _, b := range f.Blocks {
			bs := &blockSummary{}
			for _, in := range b.Instrs {
				if id, ok := sz.event(b, in); ok {
					bs.events = append(bs.events, Event{Expr: id, IRID: in.ID})
					frontier = append(frontier, it.deps[id]...)
				}
			}
			fs.blocks[b.Name] = bs
		}
		s.funcs[f.Name] = fs

		// Collect every phi's obligation; liveness filtering happens below.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpPhi {
					continue
				}
				ob := phiOb{fn: f.Name, block: b.Name}
				n := len(in.Args)
				if len(b.Preds) < n {
					n = len(b.Preds)
				}
				var deps []int
				for i := 0; i < n; i++ {
					e := sz.canon(in.Args[i])
					ob.preds = append(ob.preds, b.Preds[i].Name)
					ob.exprs = append(ob.exprs, e)
					deps = mergeDeps(deps, it.deps[e])
				}
				allPhis[in.ID] = ob
				phiDeps[in.ID] = deps
			}
		}
	}

	// Live phis: reachable from the events through canonical expressions
	// and other live phis' incoming edges. Dead phis may legally be
	// removed by DCE, so they carry no obligation.
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if _, seen := s.phis[id]; seen {
			continue
		}
		ob, ok := allPhis[id]
		if !ok {
			continue
		}
		s.phis[id] = ob
		frontier = append(frontier, phiDeps[id]...)
	}
	return s
}

// event canonicalizes one observable instruction, or reports ok=false for
// a non-observable one.
func (s *summarizer) event(b *ir.Block, in *ir.Instr) (int, bool) {
	it := s.it
	switch in.Op {
	case ir.OpStore8, ir.OpStore32, ir.OpStore64:
		a, v := s.canon(in.Args[0]), s.canon(in.Args[1])
		key := fmt.Sprintf("(%s %d %d)", in.Op, a, v)
		return it.intern(key, mergeDeps(it.deps[a], it.deps[v])), true
	case ir.OpCall:
		var sb strings.Builder
		fmt.Fprintf(&sb, "(call %s", in.Callee)
		var deps []int
		for _, arg := range in.Args {
			e := s.canon(arg)
			fmt.Fprintf(&sb, " %d", e)
			deps = mergeDeps(deps, it.deps[e])
		}
		sb.WriteString(")")
		return it.intern(sb.String(), deps), true
	case ir.OpSetTag:
		v := s.canon(in.Args[0])
		return it.intern(fmt.Sprintf("(settag %d)", v), it.deps[v]), true
	case ir.OpBr:
		return it.intern("(br "+in.Targets[0].Name+")", nil), true
	case ir.OpCondBr:
		c := s.canon(in.Args[0])
		key := fmt.Sprintf("(condbr %d %s %s)", c, in.Targets[0].Name, in.Targets[1].Name)
		return it.intern(key, it.deps[c]), true
	case ir.OpRet:
		if len(in.Args) == 0 {
			return it.intern("(ret)", nil), true
		}
		v := s.canon(in.Args[0])
		return it.intern(fmt.Sprintf("(ret %d)", v), it.deps[v]), true
	case ir.OpHalt:
		return it.intern("(halt)", nil), true
	case ir.OpTrap:
		return it.intern(fmt.Sprintf("(trap !%d)", in.Imm), nil), true
	}
	return 0, false
}

// canon computes the canonical expression id of a value instruction.
func (s *summarizer) canon(in *ir.Instr) int {
	if id, ok := s.memo[in]; ok {
		return id
	}
	id := s.canon1(in)
	s.memo[in] = id
	return id
}

func (s *summarizer) canon1(in *ir.Instr) int {
	it := s.it
	switch in.Op {
	case ir.OpConst:
		return it.constExpr(in.Imm)
	case ir.OpParam:
		return it.intern("p"+strconv.FormatInt(in.Imm, 10), nil)
	case ir.OpPhi:
		return it.intern("phi"+strconv.Itoa(in.ID), []int{in.ID})
	case ir.OpLoad8, ir.OpLoad32, ir.OpLoad64:
		a := s.canon(in.Args[0])
		key := fmt.Sprintf("(%s %d @%s/%s#%d)", in.Op, a, s.fn, in.Block.Name, s.memEpoch[in])
		return it.intern(key, it.deps[a])
	case ir.OpGetTag:
		key := fmt.Sprintf("(tag @%s/%s#%d)", s.fn, in.Block.Name, s.tagEpoch[in])
		return it.intern(key, nil)
	case ir.OpCall:
		var sb strings.Builder
		fmt.Fprintf(&sb, "(callv @%s/%s#%d %s", s.fn, in.Block.Name, s.callIdx[in], in.Callee)
		var deps []int
		for _, arg := range in.Args {
			e := s.canon(arg)
			fmt.Fprintf(&sb, " %d", e)
			deps = mergeDeps(deps, it.deps[e])
		}
		sb.WriteString(")")
		return it.intern(sb.String(), deps)
	}

	// Binary operators, including the 1-arg crc32 form (Imm is the second
	// operand) and the non-pure-but-value div/mod.
	if len(in.Args) == 2 || (in.Op == ir.OpCrc32 && len(in.Args) == 1) {
		a := s.canon(in.Args[0])
		var b int
		if len(in.Args) == 2 {
			b = s.canon(in.Args[1])
		} else {
			b = it.constExpr(in.Imm)
		}
		return s.binop(in.Op, a, b)
	}

	// Unknown shape: opaque by ID (keeps the validator total; the IR
	// well-formedness checker owns structural complaints).
	return it.intern("op"+strconv.Itoa(in.ID), nil)
}

// binop folds and normalizes a binary expression with exactly the algebra
// ConstFold and StrengthReduce are allowed to use.
func (s *summarizer) binop(op ir.Op, a, b int) int {
	it := s.it
	av, aConst := it.constVal(a)
	bv, bConst := it.constVal(b)
	if aConst && bConst {
		if !((op == ir.OpSDiv || op == ir.OpSMod) && bv == 0) {
			if v, ok := iropt.EvalBin(op, av, bv); ok {
				return it.constExpr(v)
			}
		}
	}
	switch op {
	case ir.OpAdd, ir.OpOr, ir.OpXor:
		if aConst && av == 0 {
			return b
		}
		if bConst && bv == 0 {
			return a
		}
	case ir.OpSub, ir.OpShl, ir.OpShr, ir.OpRotr:
		if bConst && bv == 0 {
			return a
		}
	case ir.OpSDiv:
		if bConst && bv == 1 {
			return a
		}
	case ir.OpSMod:
		if bConst && bv == 1 {
			return it.constExpr(0)
		}
	case ir.OpMul:
		c, x, hasConst := int64(0), 0, false
		if aConst {
			c, x, hasConst = av, b, true
		} else if bConst {
			c, x, hasConst = bv, a, true
		}
		if hasConst {
			switch {
			case c == 0:
				return it.constExpr(0)
			case c == 1:
				return x
			case c > 0 && c&(c-1) == 0:
				k := int64(0)
				for v := c; v > 1; v >>= 1 {
					k++
				}
				return s.binop(ir.OpShl, x, it.constExpr(k))
			}
		}
	}
	if commutative(op) && b < a {
		a, b = b, a
	}
	key := fmt.Sprintf("(%s %d %d)", op, a, b)
	return it.intern(key, mergeDeps(it.deps[a], it.deps[b]))
}

// ---------------------------------------------------------------------------
// Comparison and counterexamples
// ---------------------------------------------------------------------------

// Mismatch is one structured counterexample: the smallest observable unit
// on which the pre- and post-pass summaries diverge.
type Mismatch struct {
	Kind   string // "func-set", "block-set", "event-count", "event", "phi-set", "phi"
	Func   string
	Block  string
	Index  int // event index, or -1
	Phi    int // phi instruction ID, or 0
	Pre    string
	Post   string
	PreID  int // IR ID of the pre event, or 0
	PostID int
}

func (m Mismatch) String() string {
	loc := m.Func
	if m.Block != "" {
		loc += "." + m.Block
	}
	if m.Index >= 0 {
		loc += fmt.Sprintf(" event#%d", m.Index)
	}
	if m.Phi != 0 {
		loc += fmt.Sprintf(" phi %%%d", m.Phi)
	}
	return fmt.Sprintf("%s at %s: pre=%s post=%s", m.Kind, loc, m.Pre, m.Post)
}

const renderDepth = 4

// Compare proves pre and post observationally equal, returning the
// counterexamples where the proof fails. Both summaries must come from
// the same Interner.
func Compare(pre, post *Summary, it *Interner) []Mismatch {
	var out []Mismatch
	var fnames []string
	for name := range pre.funcs {
		fnames = append(fnames, name)
	}
	sort.Strings(fnames)
	for _, name := range fnames {
		pf := pre.funcs[name]
		qf, ok := post.funcs[name]
		if !ok {
			out = append(out, Mismatch{Kind: "func-set", Func: name, Index: -1, Pre: "present", Post: "missing"})
			continue
		}
		var bnames []string
		for bn := range pf.blocks {
			bnames = append(bnames, bn)
		}
		sort.Strings(bnames)
		for _, bn := range bnames {
			pb := pf.blocks[bn]
			qb, ok := qf.blocks[bn]
			if !ok {
				out = append(out, Mismatch{Kind: "block-set", Func: name, Block: bn, Index: -1, Pre: "present", Post: "missing"})
				continue
			}
			n := len(pb.events)
			if len(qb.events) < n {
				n = len(qb.events)
			}
			for i := 0; i < n; i++ {
				pe, qe := pb.events[i], qb.events[i]
				if pe.Expr != qe.Expr {
					out = append(out, Mismatch{
						Kind: "event", Func: name, Block: bn, Index: i,
						Pre: it.Render(pe.Expr, renderDepth), Post: it.Render(qe.Expr, renderDepth),
						PreID: pe.IRID, PostID: qe.IRID,
					})
				}
			}
			if len(pb.events) != len(qb.events) {
				out = append(out, Mismatch{
					Kind: "event-count", Func: name, Block: bn, Index: n,
					Pre:  strconv.Itoa(len(pb.events)) + " events",
					Post: strconv.Itoa(len(qb.events)) + " events",
				})
			}
		}
		for bn := range qf.blocks {
			if _, ok := pf.blocks[bn]; !ok {
				out = append(out, Mismatch{Kind: "block-set", Func: name, Block: bn, Index: -1, Pre: "missing", Post: "present"})
			}
		}
	}
	for name := range post.funcs {
		if _, ok := pre.funcs[name]; !ok {
			out = append(out, Mismatch{Kind: "func-set", Func: name, Index: -1, Pre: "missing", Post: "present"})
		}
	}

	var phiIDs []int
	for id := range pre.phis {
		phiIDs = append(phiIDs, id)
	}
	sort.Ints(phiIDs)
	for _, id := range phiIDs {
		pp := pre.phis[id]
		qp, ok := post.phis[id]
		if !ok {
			out = append(out, Mismatch{Kind: "phi-set", Func: pp.fn, Block: pp.block, Index: -1, Phi: id,
				Pre: renderPhi(pp, it), Post: "missing"})
			continue
		}
		if !phiEqual(pp, qp) {
			out = append(out, Mismatch{Kind: "phi", Func: pp.fn, Block: pp.block, Index: -1, Phi: id,
				Pre: renderPhi(pp, it), Post: renderPhi(qp, it)})
		}
	}
	for id, qp := range post.phis {
		if _, ok := pre.phis[id]; !ok {
			out = append(out, Mismatch{Kind: "phi-set", Func: qp.fn, Block: qp.block, Index: -1, Phi: id,
				Pre: "missing", Post: renderPhi(qp, it)})
		}
	}
	return out
}

func phiEqual(a, b phiOb) bool {
	if a.fn != b.fn || a.block != b.block || len(a.preds) != len(b.preds) {
		return false
	}
	for i := range a.preds {
		if a.preds[i] != b.preds[i] || a.exprs[i] != b.exprs[i] {
			return false
		}
	}
	return true
}

func renderPhi(ob phiOb, it *Interner) string {
	var sb strings.Builder
	sb.WriteString("[")
	for i := range ob.preds {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s:%s", ob.preds[i], it.Render(ob.exprs[i], renderDepth-1))
	}
	sb.WriteString("]")
	return sb.String()
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

// Validator carries the checkpointed summary across pass applications.
// Each Step compares the module's current summary against the previous
// checkpoint, so a mismatch is attributed to exactly the pass that ran in
// between — equivalence is transitive, so the chain of accepted steps
// proves the final module equivalent to the initial one.
type Validator struct {
	it        *Interner
	prev      *Summary
	prevPhase string
	steps     int
}

// NewValidator summarizes the freshly lowered module as the baseline.
func NewValidator(m *ir.Module) *Validator {
	it := NewInterner()
	return &Validator{it: it, prev: Summarize(m, it), prevPhase: "pipeline"}
}

// Steps returns how many pass applications have been validated.
func (v *Validator) Steps() int { return v.steps }

// Step validates the module state after the named pass against the
// previous checkpoint and advances the checkpoint. Returned diagnostics
// (all errors) embed the counterexamples.
func (v *Validator) Step(m *ir.Module, pass string) []verify.Diag {
	cur := Summarize(m, v.it)
	ms := Compare(v.prev, cur, v.it)
	ds := Diags(pass, v.prevPhase, ms)
	v.prev, v.prevPhase = cur, pass
	v.steps++
	return ds
}

// Diags renders mismatches as suite diagnostics attributed to pass.
func Diags(pass, prevPhase string, ms []Mismatch) []verify.Diag {
	var out []verify.Diag
	for _, m := range ms {
		locus := m.Func
		if m.Block != "" {
			locus += "." + m.Block
		}
		if m.Index >= 0 {
			locus += fmt.Sprintf(" event#%d", m.Index)
		}
		if m.Phi != 0 {
			locus += fmt.Sprintf(" %%%d", m.Phi)
		}
		out = append(out, verify.Diag{
			Check:    "tv/" + m.Kind,
			Severity: verify.Error,
			Level:    core.LevelIR,
			Locus:    locus,
			Msg: fmt.Sprintf("pass %q broke observational equivalence (baseline %q): pre=%s post=%s",
				pass, prevPhase, m.Pre, m.Post),
		})
	}
	return out
}
