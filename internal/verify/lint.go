package verify

// The source linter: repository rules checked with go/ast + go/types only
// (no external analysis frameworks). The rules all guard properties the
// profiler depends on:
//
//   - determinism: simulated runs must replay bit-identically, so
//     math/rand (global, seed-racy) is banned outside internal/xrand,
//     and time.Now is banned in the simulated-machine packages (the VM
//     and PMU have their own TSC — wall-clock reads would leak
//     nondeterminism into sample timestamps);
//   - compile speed: fmt.Sprintf allocates per call; the hot compile
//     path (pipeline → iropt → codegen, the path BenchmarkCompileSQL
//     guards) must build names by concatenation instead;
//   - concurrency: a mutex copied by value guards nothing — signatures
//     and receivers must take lock-bearing types by pointer.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// modulePath is the module this repository builds ("module repro" in
// go.mod); the source importer maps its import paths onto directories.
const modulePath = "repro"

// hotCompilePaths are the packages on the query-compilation hot path,
// measured by BenchmarkCompileSQL: fmt.Sprintf is banned here because
// name formatting showed up in compile profiles (each call allocates).
var hotCompilePaths = map[string]bool{
	modulePath + "/internal/pipeline": true,
	modulePath + "/internal/iropt":    true,
	modulePath + "/internal/codegen":  true,
}

// deterministicPaths are the simulated-machine packages where wall-clock
// reads would make runs non-replayable.
var deterministicPaths = map[string]bool{
	modulePath + "/internal/vm":  true,
	modulePath + "/internal/pmu": true,
}

// randExemptPath is the one package allowed to own randomness.
const randExemptPath = modulePath + "/internal/xrand"

// errStrictPaths are the engine/service hot paths where a silently
// discarded error turns a failed compile or a poisoned cache entry into
// wrong profile numbers instead of a visible failure.
var errStrictPaths = map[string]bool{
	modulePath + "/internal/engine": true,
	modulePath + "/internal/qcache": true,
}

// Lint type-checks every package under root and applies the repository
// rules. The returned diagnostics use file:line loci. A non-nil error
// means the linter itself could not run (unreadable tree); broken Go code
// surfaces as lint/typecheck diagnostics, not an error.
func Lint(root string) ([]Diag, error) {
	dirs, err := goDirs(root)
	if err != nil {
		return nil, err
	}
	l := &linter{
		fset:  token.NewFileSet(),
		root:  root,
		cache: map[string]*types.Package{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	var out []Diag
	for _, dir := range dirs {
		out = append(out, l.lintDir(dir)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Locus < out[j].Locus })
	return out, nil
}

// goDirs returns every directory under root that contains .go files,
// skipping VCS internals and testdata trees.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if name == ".git" || name == "testdata" || (name != "." && strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

type linter struct {
	fset  *token.FileSet
	root  string
	cache map[string]*types.Package
	std   types.Importer
}

// Import implements types.Importer: module-internal paths are resolved to
// repository directories and type-checked from source; everything else
// (the standard library) is delegated to the compiler's source importer.
func (l *linter) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		dir := filepath.Join(l.root, strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/"))
		files, err := l.parseDir(dir, func(name string) bool {
			return !strings.HasSuffix(name, "_test.go")
		})
		if err != nil {
			return nil, err
		}
		cfg := types.Config{Importer: l}
		pkg, err := cfg.Check(path, l.fset, files, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

func (l *linter) parseDir(dir string, keep func(string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || !keep(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importPath maps a repository directory back to its import path.
func (l *linter) importPath(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}

// lintDir applies every rule to one package directory. The directory is
// checked as up to two type-checking units: the package including its
// in-package tests, and the external _test package if present.
func (l *linter) lintDir(dir string) []Diag {
	path := l.importPath(dir)

	all, err := l.parseDir(dir, func(string) bool { return true })
	if err != nil {
		return []Diag{lintDiag("typecheck", dir, Error, "%v", err)}
	}
	if len(all) == 0 {
		return nil
	}

	// Split into the package unit (lib + in-package tests) and the
	// external test unit (package foo_test).
	base := all[0].Name.Name
	for _, f := range all {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			base = f.Name.Name
			break
		}
	}
	var unitMain, unitXTest []*ast.File
	for _, f := range all {
		if f.Name.Name == base {
			unitMain = append(unitMain, f)
		} else {
			unitXTest = append(unitXTest, f)
		}
	}

	var out []Diag
	for _, unit := range [][]*ast.File{unitMain, unitXTest} {
		if len(unit) == 0 {
			continue
		}
		info := &types.Info{
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Types:      map[ast.Expr]types.TypeAndValue{},
		}
		cfg := types.Config{Importer: l}
		if _, err := cfg.Check(path, l.fset, unit, info); err != nil {
			out = append(out, lintDiag("typecheck", dir, Error, "%v", err))
			continue
		}
		for _, f := range unit {
			out = append(out, l.lintFile(path, f, info)...)
		}
		// The concurrency rules need whole-unit state (lock orders and
		// atomically-accessed fields are package-level properties).
		out = append(out, l.lintConcurrency(path, unit, info)...)
	}
	return out
}

// pos renders a token position as a root-relative file:line locus.
func (l *linter) pos(p token.Pos) string {
	position := l.fset.Position(p)
	rel, err := filepath.Rel(l.root, position.Filename)
	if err != nil {
		rel = position.Filename
	}
	return rel + ":" + strconv.Itoa(position.Line)
}

func lintDiag(rule, locus string, sev Severity, format string, args ...interface{}) Diag {
	return Diag{
		Check: "lint/" + rule, Severity: sev, Level: core.LevelOperator,
		Locus: locus, Msg: fmt.Sprintf(format, args...),
	}
}

func (l *linter) lintFile(pkgPath string, f *ast.File, info *types.Info) []Diag {
	var out []Diag
	pos := l.pos
	fileName := l.fset.Position(f.Pos()).Filename
	isTest := strings.HasSuffix(fileName, "_test.go")

	// Rule: no math/rand outside internal/xrand. Tests included — a test
	// seeded from the global source is exactly the flake this prevents.
	if pkgPath != randExemptPath && !strings.HasPrefix(pkgPath, randExemptPath+"/") {
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p == "math/rand" || p == "math/rand/v2" {
				out = append(out, lintDiag("norand", pos(imp.Pos()), Error,
					"import of %s outside %s: use internal/xrand for deterministic randomness", p, randExemptPath))
			}
		}
	}

	// Rule: no panic in library packages outside the bug/bugf
	// invariant-violation helpers. A library panic is either a violated
	// internal invariant (then it belongs in bug/bugf, where the message
	// gets the package prefix and the rule's blessing) or input
	// validation (then it should be an error).
	if !isTest && strings.HasPrefix(pkgPath, modulePath+"/internal/") {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil &&
				(fd.Name.Name == "bug" || fd.Name.Name == "bugf") {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, isID := call.Fun.(*ast.Ident); isID && id.Name == "panic" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						out = append(out, lintDiag("nopanic", pos(call.Pos()), Error,
							"panic in a library package: report invariant violations through the package's bug/bugf helper, and turn input validation into errors"))
					}
				}
				return true
			})
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			// Rule: no silently discarded error on the engine/service hot
			// paths — a call whose error result is not consumed.
			if errStrictPaths[pkgPath] && !isTest {
				if call, isCall := x.X.(*ast.CallExpr); isCall && returnsError(call, info) {
					out = append(out, lintDiag("noerrdrop", pos(x.Pos()), Error,
						"call discards its error result on an engine/service path; handle or explicitly propagate it"))
				}
			}
		case *ast.AssignStmt:
			// Rule (noerrdrop): no `_` in an error position of a call result.
			if errStrictPaths[pkgPath] && !isTest {
				out = append(out, checkErrBlank(x, info, pos)...)
			}
		case *ast.CallExpr:
			// Rule: no fmt.Sprintf on the compile hot path (non-test code).
			if hotCompilePaths[pkgPath] && !isTest && isPkgFunc(x.Fun, info, "fmt", "Sprintf") {
				out = append(out, lintDiag("nosprintf", pos(x.Pos()), Error,
					"fmt.Sprintf on the compile hot path (BenchmarkCompileSQL): build the string without formatting"))
			}
			// Rule: no time.Now in the deterministic VM/PMU packages.
			if deterministicPaths[pkgPath] && !isTest && isPkgFunc(x.Fun, info, "time", "Now") {
				out = append(out, lintDiag("notimenow", pos(x.Pos()), Error,
					"time.Now in a deterministic simulation package: use the simulated TSC"))
			}
		case *ast.FuncDecl:
			// Rule: no mutex by value in signatures or receivers.
			check := func(fl *ast.FieldList, what string) {
				if fl == nil {
					return
				}
				for _, field := range fl.List {
					t := info.TypeOf(field.Type)
					if t != nil && containsLock(t, nil) {
						out = append(out, lintDiag("nomutexcopy", pos(field.Pos()), Error,
							"%s of %s copies a sync lock by value; pass a pointer", what, x.Name.Name))
					}
				}
			}
			if x.Recv != nil {
				check(x.Recv, "receiver")
			}
			check(x.Type.Params, "parameter")
			check(x.Type.Results, "result")
		}
		return true
	})
	return out
}

// errType is the predeclared error interface type.
var errType = types.Universe.Lookup("error").Type()

// returnsError reports whether any result of the call has type error.
func returnsError(call *ast.CallExpr, info *types.Info) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, isTuple := tv.Type.(*types.Tuple); isTuple {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(tv.Type, errType)
}

// checkErrBlank flags blank identifiers bound to error-typed results in an
// assignment (x, _ := f() where f's second result is an error).
func checkErrBlank(as *ast.AssignStmt, info *types.Info, pos func(token.Pos) string) []Diag {
	var out []Diag
	flag := func(p token.Pos) {
		out = append(out, lintDiag("noerrdrop", pos(p), Error,
			"error result assigned to _ on an engine/service path; handle or explicitly propagate it"))
	}
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Multi-value call: map tuple positions onto the LHS.
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return out
		}
		tv, ok := info.Types[call]
		if !ok {
			return out
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return out
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && types.Identical(tuple.At(i).Type(), errType) {
				flag(lhs.Pos())
			}
		}
		return out
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !isBlank(lhs) {
			continue
		}
		if t := info.TypeOf(as.Rhs[i]); t != nil && types.Identical(t, errType) {
			flag(lhs.Pos())
		}
	}
	return out
}

// isPkgFunc reports whether fun is a selector pkg.name where pkg resolves
// to the named standard-library package (not a shadowing local).
func isPkgFunc(fun ast.Expr, info *types.Info, pkg, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkg
}

// containsLock reports whether a value of type t embeds a sync.Mutex or
// sync.RWMutex (at any struct/array nesting) — i.e. whether copying the
// value copies lock state. Pointers, slices, maps and channels stop the
// descent: copying those shares the lock instead.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch x := t.(type) {
	case *types.Named:
		obj := x.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup" || obj.Name() == "Once") {
			return true
		}
		return containsLock(x.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if containsLock(x.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(x.Elem(), seen)
	}
	return false
}
