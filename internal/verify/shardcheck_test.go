package verify

import (
	"testing"

	"repro/internal/core"
)

// cleanShardRun builds a consistent two-shard fixture over one pipeline:
// four zones of 100 rows, zone 1 filter-pruned and zone 2 bloom-pruned,
// with the matching skip events.
func cleanShardRun() (map[string]int64, []ShardJournal, []core.SkipEvent) {
	rows := map[string]int64{"l": 400}
	journals := []ShardJournal{
		{Pipeline: 2, Alias: "l", Shard: 0, Lo: 0, Hi: 200, Rows: 200, Scanned: 100,
			Zones: []ShardZone{
				{Zone: 0, Lo: 0, Hi: 100},
				{Zone: 1, Lo: 100, Hi: 200, Pruned: true, Cause: core.SkipFilter},
			}},
		{Pipeline: 2, Alias: "l", Shard: 1, Lo: 200, Hi: 400, Rows: 200, Scanned: 100,
			Zones: []ShardZone{
				{Zone: 2, Lo: 200, Hi: 300, Pruned: true, Cause: core.SkipBloom},
				{Zone: 3, Lo: 300, Hi: 400},
			}},
	}
	skips := []core.SkipEvent{
		{Pipeline: 2, Alias: "l", Shard: 0, Zone: 1, Lo: 100, Hi: 200, Rows: 100, Cause: core.SkipFilter},
		{Pipeline: 2, Alias: "l", Shard: 1, Zone: 2, Lo: 200, Hi: 300, Rows: 100, Cause: core.SkipBloom},
	}
	return rows, journals, skips
}

func hasCheck(ds []Diag, check string) bool {
	for _, d := range ds {
		if d.Check == check {
			return true
		}
	}
	return false
}

func TestCheckShardsClean(t *testing.T) {
	rows, journals, skips := cleanShardRun()
	if ds := CheckShards(rows, journals, skips); len(ds) != 0 {
		t.Fatalf("clean fixture produced diagnostics: %v", ds)
	}
}

func TestCheckShardsCorruptions(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent)
		want    string
	}{
		{"zone collision", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			js[1].Zones[1].Zone = 0 // shard 1 re-claims shard 0's zone tag
			return rows, js, sk
		}, "shard/zone-collision"},
		{"zone gap", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			js[0].Zones[1].Lo = 150
			return rows, js, sk
		}, "shard/zone-gap"},
		{"rows mismatch", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			js[0].Rows = 150
			return rows, js, sk
		}, "shard/rows-mismatch"},
		{"scanned mismatch", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			js[1].Scanned = 200 // claims it scanned the pruned zone too
			return rows, js, sk
		}, "shard/scanned-mismatch"},
		{"pruned flag", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			js[0].Pruned = true
			return rows, js, sk
		}, "shard/pruned-flag"},
		{"cause missing", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			js[0].Zones[1].Cause = ""
			return rows, js, sk
		}, "shard/cause-missing"},
		{"cause unknown", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			js[0].Zones[1].Cause = "vibes"
			return rows, js, sk
		}, "shard/cause-unknown"},
		{"tile gap", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			js[1].Lo = 250
			return rows, js, sk
		}, "shard/tile-gap"},
		{"tile short", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			rows["l"] = 500 // table larger than the journaled shards cover
			return rows, js, sk
		}, "shard/tile-short"},
		{"unknown alias", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			delete(rows, "l")
			return rows, js, sk
		}, "shard/unknown-alias"},
		{"skip missing", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			return rows, js, sk[:1] // drop the bloom zone's skip event
		}, "shard/skip-missing"},
		{"skip orphan", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			sk = append(sk, core.SkipEvent{Pipeline: 2, Alias: "l", Zone: 9, Lo: 900, Hi: 950, Rows: 50, Cause: core.SkipFilter})
			return rows, js, sk
		}, "shard/skip-orphan"},
		{"skip duplicate", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			return rows, js, append(sk, sk[0])
		}, "shard/skip-duplicate"},
		{"skip range", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			sk[0].Hi = 180
			return rows, js, sk
		}, "shard/skip-range"},
		{"skip cause", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			sk[1].Cause = core.SkipSemiJoin
			return rows, js, sk
		}, "shard/skip-cause"},
		{"skip shard", func(rows map[string]int64, js []ShardJournal, sk []core.SkipEvent) (map[string]int64, []ShardJournal, []core.SkipEvent) {
			sk[0].Shard = 1
			return rows, js, sk
		}, "shard/skip-shard"},
	}
	for _, tc := range cases {
		rows, journals, skips := cleanShardRun()
		rows, journals, skips = tc.corrupt(rows, journals, skips)
		ds := CheckShards(rows, journals, skips)
		if !hasCheck(ds, tc.want) {
			t.Errorf("%s: expected a %s diagnostic, got %v", tc.name, tc.want, ds)
		}
		for _, d := range ds {
			if d.Severity != Error {
				t.Errorf("%s: diagnostic %s not an error", tc.name, d.Check)
			}
		}
	}
}
