package verify_test

// Corrupted-fixture tests: each test compiles a real query, breaks one
// specific invariant in the artifact, and asserts the suite produces
// exactly the expected diagnostic — proving the checkers are not vacuous.
// The clean-artifact test is the other half of the contract: real
// compiler output must produce zero diagnostics (no false positives).

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/queries"
	"repro/internal/verify"
)

// fixture compiles one workload into a full post-emit artifact.
func fixture(t *testing.T, name string) *verify.Artifact {
	t.Helper()
	w, ok := queries.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.01, Seed: 42})
	e := engine.New(cat, engine.DefaultOptions())
	cq, err := e.CompileQuery(w.Query)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return &verify.Artifact{
		Module:          cq.Pipe.Module,
		Dict:            cq.Pipe.Dict,
		Code:            cq.Code,
		RegisterTagging: true,
	}
}

// wantDiag asserts that running the suite yields at least one diagnostic
// with the given check code, and returns it.
func wantDiag(t *testing.T, a *verify.Artifact, check string) verify.Diag {
	t.Helper()
	ds := verify.ArtifactSuite().Run(a)
	for _, d := range ds {
		if d.Check == check {
			return d
		}
	}
	t.Fatalf("expected diagnostic %s, got %d others:\n%s", check, len(ds), renderDiags(ds))
	return verify.Diag{}
}

func renderDiags(ds []verify.Diag) string {
	var sb strings.Builder
	for _, d := range ds {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}

func TestCleanArtifactNoDiagnostics(t *testing.T) {
	for _, name := range []string{"q6", "fig9"} {
		a := fixture(t, name)
		if ds := verify.ArtifactSuite().Run(a); len(ds) != 0 {
			t.Fatalf("%s: clean artifact produced diagnostics:\n%s", name, renderDiags(ds))
		}
	}
}

// --- broken IR -------------------------------------------------------------

func TestBrokenIRMissingTerminator(t *testing.T) {
	a := fixture(t, "q6")
	f := a.Module.Funcs[0]
	entry := f.Entry()
	entry.Instrs = entry.Instrs[:len(entry.Instrs)-1] // drop the terminator
	wantDiag(t, a, "ir/no-terminator")
}

func TestBrokenIRUseBeforeDef(t *testing.T) {
	a := fixture(t, "q6")
	// Find a block where instruction i uses instruction i-1 and swap them.
	var blk *ir.Block
	var i int
	for _, f := range a.Module.Funcs {
		for _, b := range f.Blocks {
			for j := 1; j < len(b.Instrs); j++ {
				for _, arg := range b.Instrs[j].Args {
					if arg == b.Instrs[j-1] && b.Instrs[j-1].Op != ir.OpPhi {
						blk, i = b, j
					}
				}
			}
		}
	}
	if blk == nil {
		t.Fatal("fixture has no adjacent def-use pair to corrupt")
	}
	blk.Instrs[i-1], blk.Instrs[i] = blk.Instrs[i], blk.Instrs[i-1]
	wantDiag(t, a, "ir/use-before-def")
}

func TestBrokenIRTypeError(t *testing.T) {
	a := fixture(t, "q6")
	// A comparison that claims to produce i64 violates the type rules.
	var cmp *ir.Instr
	a.Module.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
		if cmp == nil && in.Type == ir.I1 {
			cmp = in
		}
	})
	if cmp == nil {
		t.Fatal("fixture has no i1 instruction")
	}
	cmp.Type = ir.I64
	wantDiag(t, a, "ir/type")
}

func TestBrokenIRPredMismatch(t *testing.T) {
	a := fixture(t, "q6")
	// Record a predecessor edge the CFG does not have.
	var b *ir.Block
	for _, f := range a.Module.Funcs {
		for _, x := range f.Blocks {
			if len(x.Preds) > 0 {
				b = x
			}
		}
	}
	if b == nil {
		t.Fatal("fixture has no block with predecessors")
	}
	b.Preds = append(b.Preds, b.Preds[0])
	wantDiag(t, a, "ir/pred-mismatch")
}

// --- orphaned / dangling tags ---------------------------------------------

func TestOrphanedInstruction(t *testing.T) {
	a := fixture(t, "q6")
	// Simulate a pass dropping lineage: remove the Log B entry for a live
	// instruction. (Removed also journals, but the instruction survives,
	// so the orphan check fires first.)
	var victim int
	a.Module.ForEachInstr(func(_ *ir.Func, _ *ir.Block, in *ir.Instr) {
		if victim == 0 && in.Op == ir.OpAdd {
			victim = in.ID
		}
	})
	if victim == 0 {
		t.Fatal("fixture has no add instruction")
	}
	a.Dict.Removed(victim)
	d := wantDiag(t, a, "dict/orphan-instr")
	if !strings.Contains(d.Locus, "%") {
		t.Fatalf("orphan diagnostic has no IR locus: %v", d)
	}
}

func TestDanglingTag(t *testing.T) {
	a := fixture(t, "q6")
	// A Log B entry for an instruction that does not exist: the pass that
	// deleted it forgot to report Removed.
	a.Dict.LinkIR(a.Module.MaxID()+100, a.Dict.Registry.KernelTask)
	wantDiag(t, a, "dict/dangling-tag")
}

// --- lineage journal -------------------------------------------------------

func TestJournalSelfDerivation(t *testing.T) {
	a := fixture(t, "q6")
	id := a.Module.Funcs[0].Entry().Instrs[0].ID
	a.Dict.Derived(id, id)
	wantDiag(t, a, "dict/self-derive")
}

func TestJournalDeriveCycle(t *testing.T) {
	a := fixture(t, "q6")
	in := a.Module.Funcs[0].Entry().Instrs
	if len(in) < 2 {
		t.Fatal("entry block too small")
	}
	x, y := in[0].ID, in[1].ID
	a.Dict.Derived(x, y)
	a.Dict.Derived(y, x)
	wantDiag(t, a, "dict/derive-cycle")
}

func TestJournalDeriveFromRemoved(t *testing.T) {
	a := fixture(t, "q6")
	// Derive lineage from an instruction already reported removed: the
	// sources' tasks are gone, so the link silently inherits nothing.
	dead := a.Module.NewID() // never materialized: stands in for removed code
	live := a.Module.Funcs[0].Entry().Instrs[0].ID
	a.Dict.Removed(dead)
	a.Dict.Derived(live, dead)
	wantDiag(t, a, "dict/derive-from-removed")
}

// --- clobbered tag register ------------------------------------------------

func TestClobberedTagRegister(t *testing.T) {
	a := fixture(t, "fig9")
	// Rewrite a generated-region MOVRI that is not a tag write to target
	// the reserved register, as a buggy backend path would.
	code := a.Code.Program.Code
	pos := -1
	for i := range code {
		if a.Code.NMap.Region[i] == core.RegionGenerated &&
			code[i].Op == isa.MOVRI && code[i].Dst != isa.TagReg {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("fixture has no generated MOVRI to corrupt")
	}
	code[pos].Dst = isa.TagReg
	wantDiag(t, a, "native/tagreg-clobber")
}

func TestRoutineTouchesTagRegister(t *testing.T) {
	a := fixture(t, "fig9")
	// Hand-written runtime routines must never write r15.
	code := a.Code.Program.Code
	pos := -1
	for i := range code {
		if a.Code.NMap.Region[i] != core.RegionGenerated &&
			(code[i].Op == isa.MOVRR || code[i].Op == isa.LOAD64 || code[i].Op == isa.ADD) {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("fixture has no register-writing routine instruction to corrupt")
	}
	code[pos].Dst = isa.TagReg
	wantDiag(t, a, "native/tagreg-clobber")
}

// --- stale Inverted records ------------------------------------------------

func TestStaleInvertedNonPGO(t *testing.T) {
	a := fixture(t, "q6") // RegisterTagging on, PGO off
	nm := a.Code.NMap
	pos := -1
	for i := range a.Code.Program.Code {
		in := &a.Code.Program.Code[i]
		if nm.Region[i] == core.RegionGenerated && in.IsBranch() && in.Op != isa.JMP {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("fixture has no conditional branch")
	}
	nm.Inverted[pos] = true
	wantDiag(t, a, "native/stale-inverted")
}

func TestStaleInvertedOnNonBranch(t *testing.T) {
	a := fixture(t, "q6")
	a.PGO = true // even in a PGO compile, Inverted must sit on a branch
	nm := a.Code.NMap
	pos := -1
	for i := range a.Code.Program.Code {
		if nm.Region[i] == core.RegionGenerated && !a.Code.Program.Code[i].IsBranch() {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("fixture has no generated non-branch")
	}
	nm.Inverted[pos] = true
	wantDiag(t, a, "native/stale-inverted")
}

// --- shared-call tag protocol ----------------------------------------------

func TestSharedCallWithoutTagWrite(t *testing.T) {
	a := fixture(t, "fig9") // joins insert into hash tables via ht_insert
	prog := a.Code.Program
	nm := a.Code.NMap
	// Find a generated CALL into shared code, then neutralize the tag
	// write that precedes it (redirect it to a scratch register).
	for pos := range prog.Code {
		in := &prog.Code[pos]
		if in.Op != isa.CALL || nm.Region[pos] != core.RegionGenerated {
			continue
		}
		if in.Imm < 0 || int(in.Imm) >= len(prog.Code) || nm.Region[in.Imm] != core.RegionShared {
			continue
		}
		for i := pos - 1; i >= 0 && i > pos-24; i-- {
			w := &prog.Code[i]
			if (w.Op == isa.MOVRI || w.Op == isa.MOVRR) && w.Dst == isa.TagReg {
				w.Dst = 13 // scratchA: the tag is never set
				wantDiag(t, a, "native/shared-call-untagged")
				return
			}
		}
	}
	t.Fatal("fixture has no tagged shared call to corrupt")
}

// --- debug info shape ------------------------------------------------------

func TestMisalignedNativeMap(t *testing.T) {
	a := fixture(t, "q6")
	a.Code.NMap.Region = a.Code.NMap.Region[:len(a.Code.NMap.Region)-1]
	wantDiag(t, a, "native/nmap-misaligned")
}

func TestProvenanceStripped(t *testing.T) {
	a := fixture(t, "q6")
	nm := a.Code.NMap
	pos := -1
	for i := range a.Code.Program.Code {
		if nm.Region[i] == core.RegionGenerated && len(nm.IRs[i]) > 0 &&
			a.Code.Program.Code[i].Op != isa.JMP {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("no generated instruction with provenance")
	}
	nm.IRs[pos] = nil
	wantDiag(t, a, "native/no-provenance")
}
