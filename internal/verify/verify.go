// Package verify is the cross-level static verification suite (tprofvet).
//
// Tailored Profiling attributes samples bottom-up: native instruction →
// IR instruction (NativeMap) → task (Tagging Dictionary Log B) → operator
// (Log A). A single optimizer rewrite that forgets a lineage link, a
// backend path that clobbers the reserved tag register, or a block-layout
// inversion that desynchronizes from NativeMap.Inverted silently
// misattributes cycles — the profile still renders, it just lies. This
// package encodes the attribution chain's invariants as machine-checked
// analyses that run over every compilation artifact:
//
//   - IR well-formedness (ir.(*Module).Check: SSA dominance, types, CFG),
//   - Tagging Dictionary soundness (every instruction resolves to an
//     operator, lineage journal acyclic, no orphan or dangling links),
//   - native-code invariants (tag register discipline, shared-call tag
//     protocol, Inverted exactness, branch-target sanity),
//
// plus a go/ast+go/types source linter for repository rules (lint.go).
//
// The suite runs in three places: inside the engine after every lowering
// step when Options.VerifyArtifacts is set, in the tprofvet CLI over the
// whole query corpus, and in CI.
package verify

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

// Severity ranks a diagnostic.
type Severity uint8

const (
	// Warning marks a suspicious-but-survivable artifact state.
	Warning Severity = iota
	// Error marks a broken invariant: attribution (or execution) is wrong.
	Error
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diag is one structured diagnostic: which check fired, how bad it is,
// which abstraction level the offending artifact lives on, and a locus
// precise enough to find it (an IR ID, a native instruction index, a task
// component, or a file:line).
type Diag struct {
	Check    string // "checker/rule", e.g. "dict/orphan-instr"
	Severity Severity
	Level    core.Level // abstraction level of the offending artifact
	Locus    string     // e.g. "%42", "native@137", "task 7", "a.go:12"
	Msg      string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: [%s] %s: %s", d.Severity, d.Check, d.Level, d.Locus, d.Msg)
}

// Artifact is one compilation state snapshot handed to the checkers. The
// engine builds these after pipeline construction (Code nil), after each
// optimizer pass (Code nil), and after emit (Code set); nil fields simply
// disable the checkers that need them.
type Artifact struct {
	// Phase names the lowering step that just produced this state, e.g.
	// "pipeline", "iropt/cse", "emit". Diagnostics embed it so a failure
	// pinpoints the guilty pass, not just the guilty artifact.
	Phase string

	Module *ir.Module
	Dict   *core.Dictionary
	Code   *codegen.Result // nil before the backend has run

	// RegisterTagging mirrors the engine option: the tag-register checks
	// only apply when the backend actually reserved isa.TagReg.
	RegisterTagging bool
	// PGO marks a profile-guided compile: only then may NativeMap.Inverted
	// carry set bits (the layout pass is the only writer).
	PGO bool

	// Pipelines and Layout carry the lowering's pipeline metadata for the
	// partitioned-merge checks (MergeInvariants); nil disables them.
	Pipelines []pipeline.PipelineInfo
	Layout    *pipeline.Layout

	// Mem declares the heap layout and staged-cell invariants for the
	// abstract interpreter (internal/verify/absint); nil disables it.
	Mem *MemModel
}

// Checker is one analysis pass over an artifact.
type Checker interface {
	// Name is the stable checker identifier (the prefix of Diag.Check).
	Name() string
	// Check inspects the artifact and returns its diagnostics. A checker
	// whose inputs are absent (e.g. native checks before emit) returns nil.
	Check(a *Artifact) []Diag
}

// Suite is the pass manager: an ordered list of checkers run over each
// artifact. Order matters only for readability of output — checkers are
// independent.
type Suite struct {
	Checkers []Checker
}

// NewSuite returns a suite over the given checkers.
func NewSuite(cs ...Checker) *Suite { return &Suite{Checkers: cs} }

// ArtifactSuite returns the standard artifact battery: IR well-formedness,
// dictionary soundness, native invariants, partitioned-merge invariants.
// (The source linter is not an artifact checker; see Lint.)
func ArtifactSuite() *Suite {
	return NewSuite(IRWellFormed{}, DictSoundness{}, NativeInvariants{}, MergeInvariants{})
}

// Run executes every checker and returns all diagnostics, tagged with the
// artifact's phase.
func (s *Suite) Run(a *Artifact) []Diag {
	var out []Diag
	for _, c := range s.Checkers {
		for _, d := range c.Check(a) {
			if a.Phase != "" {
				d.Msg = d.Msg + " (after " + a.Phase + ")"
			}
			out = append(out, d)
		}
	}
	return out
}

// Errs filters ds down to Error severity.
func Errs(ds []Diag) []Diag {
	var out []Diag
	for _, d := range ds {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// AsError folds diagnostics into a single error (nil when no errors are
// present), for callers that gate on the suite — like the engine's
// VerifyArtifacts mode.
func AsError(ds []Diag) error {
	errs := Errs(ds)
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, 0, len(errs))
	for _, d := range errs {
		msgs = append(msgs, d.String())
	}
	return fmt.Errorf("verify: %d invariant violation(s):\n  %s",
		len(errs), strings.Join(msgs, "\n  "))
}
