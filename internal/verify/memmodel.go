package verify

// MemModel declares the compiled query's heap layout for the abstract
// interpreter (internal/verify/absint): every region the engine's
// buildLayout carved out of the heap, plus invariant facts about
// individual 64-bit cells the host stages before execution. The engine
// attaches one to each emit-phase Artifact when VerifyArtifacts is on.
type MemModel struct {
	// HeapSize is the VM heap size in bytes; any access at or beyond it
	// (or below zero) traps at runtime.
	HeapSize int64
	// Regions lists the layout's carved regions in ascending address
	// order. Alignment padding between regions belongs to no region.
	Regions []MemRegion
	// Cells maps a 64-bit-aligned address to an invariant on the value
	// stored there. Facts are only declared for cells generated code
	// never writes (state slots, morsel bounds, descriptor dir/mask/end
	// fields), so they hold at every program point.
	Cells map[int64]CellFact
}

// MemRegion is one contiguous heap region with store permissions for
// generated code.
type MemRegion struct {
	Name string
	Lo   int64 // first byte
	Hi   int64 // one past the last byte
	// Writable reports whether generated code may store into the region.
	// Columns, state slots, morsel bounds and parameters are staged by
	// the host and read-only to the program; a provable store into one
	// is a miscompile.
	Writable bool
}

// Contains reports whether [lo, lo+w) lies inside the region.
func (r *MemRegion) Contains(lo, w int64) bool {
	return lo >= r.Lo && lo+w <= r.Hi
}

// CellFact is an invariant interval on a staged 64-bit cell's value
// (Lo == Hi for exact facts like column base pointers). Align, when > 1,
// additionally promises the value is a multiple of it (morsel bounds of
// an arena scan are entry-aligned addresses, for example).
type CellFact struct {
	Lo, Hi int64
	Align  int64
}

// RegionAt returns the region containing [addr, addr+w), or nil.
func (m *MemModel) RegionAt(addr, w int64) *MemRegion {
	for i := range m.Regions {
		if m.Regions[i].Contains(addr, w) {
			return &m.Regions[i]
		}
	}
	return nil
}
