package verify_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/verify"
)

// lintFixture lints a synthetic module rooted in a temp dir. File names
// are root-relative, so "internal/engine/x.go" lands in the path-scoped
// rules exactly like the real package would.
func lintFixture(t *testing.T, files map[string]string) []verify.Diag {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := verify.Lint(root)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	return ds
}

// wantChecks asserts exactly the given lint checks fired (by count).
func wantChecks(t *testing.T, ds []verify.Diag, want map[string]int) {
	t.Helper()
	got := map[string]int{}
	for _, d := range ds {
		got[d.Check]++
	}
	for check, n := range want {
		if got[check] != n {
			t.Errorf("%s: got %d diagnostics, want %d", check, got[check], n)
		}
	}
	for check, n := range got {
		if _, ok := want[check]; !ok {
			t.Errorf("unexpected %s (%d): %v", check, n, diagsFor(ds, check))
		}
	}
}

func diagsFor(ds []verify.Diag, check string) []string {
	var out []string
	for _, d := range ds {
		if d.Check == check {
			out = append(out, d.String())
		}
	}
	return out
}

func TestLintNoPanic(t *testing.T) {
	ds := lintFixture(t, map[string]string{
		"internal/fix/fix.go": `package fix

// bug is the blessed invariant helper.
func bug(msg string) {
	panic("fix: " + msg)
}

func bad() {
	panic("boom")
}

func alsoBad(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}
`,
	})
	wantChecks(t, ds, map[string]int{"lint/nopanic": 2})
}

func TestLintNoErrDrop(t *testing.T) {
	ds := lintFixture(t, map[string]string{
		"internal/engine/x.go": `package engine

import "errors"

func fail() error { return errors.New("x") }

func pair() (int, error) { return 0, errors.New("x") }

func use() int {
	fail()
	_ = fail()
	v, _ := pair()
	w := v
	_ = w // not an error: blank of a non-error value is fine
	return w
}
`,
	})
	wantChecks(t, ds, map[string]int{"lint/noerrdrop": 3})
}

func TestLintLockOrder(t *testing.T) {
	inverted := map[string]string{
		"internal/fix/fix.go": `package fix

import "sync"

type S struct {
	a, b sync.Mutex
}

func f(s *S) {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func g(s *S) {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`,
	}
	ds := lintFixture(t, inverted)
	wantChecks(t, ds, map[string]int{"lint/lockorder": 1})

	consistent := map[string]string{
		"internal/fix/fix.go": `package fix

import "sync"

type S struct {
	a, b sync.Mutex
}

func f(s *S) {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func g(s *S) {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
}
`,
	}
	wantChecks(t, lintFixture(t, consistent), map[string]int{})
}

func TestLintWaitGroup(t *testing.T) {
	ds := lintFixture(t, map[string]string{
		"internal/fix/fix.go": `package fix

import "sync"

func racy() {
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		go func() {
			wg.Add(1)
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func sound() {
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
`,
	})
	wantChecks(t, ds, map[string]int{"lint/waitgroup": 1})
}

func TestLintChanClose(t *testing.T) {
	ds := lintFixture(t, map[string]string{
		"internal/fix/fix.go": `package fix

func sendAfterClose() {
	ch := make(chan int)
	close(ch)
	ch <- 1
	close(ch)
}

func closeParam(ch chan int) {
	close(ch)
}

func fine() chan int {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	return ch
}
`,
	})
	// send-after-close, double-close, close-of-parameter.
	wantChecks(t, ds, map[string]int{"lint/chanclose": 3})
}

func TestLintAtomicMix(t *testing.T) {
	ds := lintFixture(t, map[string]string{
		"internal/fix/fix.go": `package fix

import "sync/atomic"

type C struct {
	n int64
	m int64
}

func inc(c *C) {
	atomic.AddInt64(&c.n, 1)
}

func reset(c *C) {
	c.n = 0
	c.m = 0 // plain-only field: fine
}
`,
	})
	wantChecks(t, ds, map[string]int{"lint/atomicmix": 1})
}

func TestLintConcurrencyDiagsAreErrors(t *testing.T) {
	ds := lintFixture(t, map[string]string{
		"internal/fix/fix.go": `package fix

func bad() {
	ch := make(chan int)
	close(ch)
	close(ch)
}
`,
	})
	if len(ds) == 0 {
		t.Fatal("no diagnostics")
	}
	for _, d := range ds {
		if d.Severity != verify.Error {
			t.Errorf("severity %v for %s, want Error", d.Severity, d.Check)
		}
		if !strings.HasPrefix(d.Locus, "internal/fix/") {
			t.Errorf("locus %q not root-relative", d.Locus)
		}
	}
}
