package verify

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/mview"
)

// viewFixture builds a consistent view fixture: base(k, v) with 400
// rows, a view grouped by k, one append batch, and one incremental
// refresh — so the ledger has a build entry plus a refresh entry backed
// by an epoch-journal append.
func viewFixture(t *testing.T) (*catalog.Catalog, *mview.Manager) {
	t.Helper()
	c := catalog.New()
	tb := catalog.NewTable("base")
	k := tb.AddCol("k", catalog.TInt)
	v := tb.AddCol("v", catalog.TInt)
	for i := 0; i < 400; i++ {
		k.Data = append(k.Data, int64(i%8))
		v.Data = append(v.Data, int64(i*7%101))
	}
	c.Add(tb)
	m := mview.NewManager(c)
	if _, err := m.Create("agg", "select k, sum(v), min(v), max(v) from base group by k", mview.RefreshIncremental); err != nil {
		t.Fatal(err)
	}
	var rows [][]int64
	for i := 400; i < 500; i++ {
		rows = append(rows, []int64{int64(i % 8), int64(i * 3 % 97)})
	}
	if _, err := c.Append("base", rows); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh("agg"); err != nil {
		t.Fatal(err)
	}
	return c, m
}

func diagChecks(diags []Diag) string {
	var names []string
	for _, d := range diags {
		names = append(names, d.Check)
	}
	return strings.Join(names, ",")
}

func TestCheckViewsCleanFixture(t *testing.T) {
	c, m := viewFixture(t)
	if diags := CheckViews(c, m); len(diags) != 0 {
		t.Fatalf("clean fixture must verify silently, got: %s", diagChecks(diags))
	}
}

func TestCheckViewsCatchesCorruptedPartial(t *testing.T) {
	c, m := viewFixture(t)
	vt, err := c.Table("__mv_agg")
	if err != nil {
		t.Fatal(err)
	}
	vt.Col("agg0").Data[3] += 17 // silently corrupt one stored sum partial
	diags := CheckViews(c, m)
	if !strings.Contains(diagChecks(diags), "views/content-mismatch") {
		t.Fatalf("corrupted partial not caught: %s", diagChecks(diags))
	}
}

func TestCheckViewsCatchesCorruptedKey(t *testing.T) {
	c, m := viewFixture(t)
	vt, err := c.Table("__mv_agg")
	if err != nil {
		t.Fatal(err)
	}
	vt.Col("k").Data[0] = 99 // group key no base row produces
	diags := CheckViews(c, m)
	if !strings.Contains(diagChecks(diags), "views/content-mismatch") {
		t.Fatalf("corrupted group key not caught: %s", diagChecks(diags))
	}
}

func TestCheckViewsCatchesUnledgeredRows(t *testing.T) {
	c, m := viewFixture(t)
	// Rows appended to the backing table behind the manager's back: the
	// journal records them, the ledger does not.
	if _, err := c.AppendCols("__mv_agg", [][]int64{{42}, {1}, {2}, {3}, {4}}); err != nil {
		t.Fatal(err)
	}
	diags := CheckViews(c, m)
	if !strings.Contains(diagChecks(diags), "views/rows-mismatch") {
		t.Fatalf("unledgered view rows not caught: %s", diagChecks(diags))
	}
}

func TestCheckViewsCatchesBaseMutatedInPlace(t *testing.T) {
	c, m := viewFixture(t)
	bt, err := c.Table("base")
	if err != nil {
		t.Fatal(err)
	}
	// In-place mutation of a covered base row: the stored partials no
	// longer replay from the base prefix.
	bt.Col("v").Data[10] += 1000
	diags := CheckViews(c, m)
	if !strings.Contains(diagChecks(diags), "views/content-mismatch") {
		t.Fatalf("in-place base mutation not caught: %s", diagChecks(diags))
	}
}

func TestCheckViewsCatchesMissingBackingTable(t *testing.T) {
	c, m := viewFixture(t)
	c.Remove("__mv_agg")
	diags := CheckViews(c, m)
	if !strings.Contains(diagChecks(diags), "views/table-missing") {
		t.Fatalf("missing backing table not caught: %s", diagChecks(diags))
	}
}
