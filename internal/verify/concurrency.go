package verify

// The concurrency analyzer: go/ast + go/types discipline rules for the
// coordinator code (morsel dispatch, partitioned merge, shard execution,
// the service cache). The VM itself is single-threaded and deterministic;
// the host-side coordinators are ordinary Go concurrency, and a latent
// race there corrupts profiles nondeterministically — the worst possible
// failure mode for a profiling tool, since it looks like attribution
// noise. The rules are deliberately shallow (single-package, mostly
// function-local) so they stay fast and false-positive-free:
//
//   - lockorder: two mutexes acquired in inconsistent nesting orders
//     anywhere in a package is a latent deadlock;
//   - waitgroup: WaitGroup.Add inside the goroutine it accounts for races
//     with Wait (the canonical misuse the sync docs warn about);
//   - atomicmix: a field accessed through sync/atomic in one place and by
//     plain load/store elsewhere has no happens-before edge at all;
//   - chanclose: send-after-close and double-close in the same function,
//     and closing a channel that arrived as a parameter (the closer should
//     be the goroutine that owns the send side).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lintConcurrency applies the concurrency rules to one type-checked unit.
func (l *linter) lintConcurrency(pkgPath string, unit []*ast.File, info *types.Info) []Diag {
	c := &concChecker{l: l, pkgPath: pkgPath, info: info,
		lockPairs: map[[2]string]token.Pos{}, atomicFields: map[types.Object]token.Pos{}}
	for _, f := range unit {
		if strings.HasSuffix(l.fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		c.collectAtomicFields(f)
	}
	for _, f := range unit {
		if strings.HasSuffix(l.fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		c.checkFile(f)
		c.checkAtomicStores(f)
	}
	// Lock-order inversions are a package-level property: report once per
	// inverted pair, at the later acquisition site.
	for pair, pos := range c.lockPairs {
		inv := [2]string{pair[1], pair[0]}
		if ipos, ok := c.lockPairs[inv]; ok && pair[0] < pair[1] {
			c.diag(pos, "lockorder", "%s acquired while holding %s, but %s is also acquired while holding %s (at %s): inconsistent lock order is a latent deadlock",
				pair[1], pair[0], pair[0], pair[1], c.l.pos(ipos))
		}
	}
	return c.out
}

type concChecker struct {
	l       *linter
	pkgPath string
	info    *types.Info
	out     []Diag

	// lockPairs records "inner acquired while outer held": [outer, inner]
	// keyed by lock identity, valued by the inner acquisition site.
	lockPairs map[[2]string]token.Pos
	// atomicFields maps struct fields accessed via sync/atomic address-of
	// calls to one such call site.
	atomicFields map[types.Object]token.Pos
}

func (c *concChecker) diag(p token.Pos, rule, format string, args ...interface{}) {
	c.out = append(c.out, lintDiag(rule, c.l.pos(p), Error, format, args...))
}

// syncMethod resolves a call like x.Lock() to (receiver expr, sync type
// name, method name) when the method belongs to a sync package type.
func (c *concChecker) syncMethod(call *ast.CallExpr) (ast.Expr, string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", "", false
	}
	s, ok := c.info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, "", "", false
	}
	recv := s.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	return sel.X, named.Obj().Name(), sel.Sel.Name, true
}

// lockKey names a mutex stably across functions: field selectors key by
// the owning named type ("qcache.Cache.mu"), package vars by package path,
// locals by enclosing-function identity (fnKey).
func (c *concChecker) lockKey(e ast.Expr, fnKey string) string {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := c.info.Uses[x]; obj != nil && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + x.Name
		}
		return fnKey + ":" + x.Name
	case *ast.SelectorExpr:
		if s, ok := c.info.Selections[x]; ok && s.Kind() == types.FieldVal {
			recv := s.Recv()
			if p, isPtr := recv.(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed {
				return types.TypeString(named, nil) + "." + x.Sel.Name
			}
		}
		return fnKey + ":" + types.ExprString(x)
	case *ast.ParenExpr:
		return c.lockKey(x.X, fnKey)
	case *ast.UnaryExpr:
		return c.lockKey(x.X, fnKey)
	}
	return fnKey + ":" + types.ExprString(e)
}

// collectAtomicFields records struct fields whose address is passed to a
// sync/atomic function (atomic.AddInt64(&x.f, ...)).
func (c *concChecker) collectAtomicFields(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, isPkg := c.info.Uses[id].(*types.PkgName); !isPkg || pn.Imported().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			u, isAddr := arg.(*ast.UnaryExpr)
			if !isAddr || u.Op != token.AND {
				continue
			}
			fs, isSel := u.X.(*ast.SelectorExpr)
			if !isSel {
				continue
			}
			if s, isField := c.info.Selections[fs]; isField && s.Kind() == types.FieldVal {
				if _, seen := c.atomicFields[s.Obj()]; !seen {
					c.atomicFields[s.Obj()] = call.Pos()
				}
			}
		}
		return true
	})
}

// fnCtx is the per-function (or per-closure) analysis state.
type fnCtx struct {
	key  string
	held []string // lock keys currently held, in acquisition order
	// closedIn maps a channel object to its close() position within the
	// statement walk, for send-after-close and double-close.
	closed map[types.Object]token.Pos
	// inGo marks a function literal launched via a go statement.
	inGo bool
	// bodyPos brackets the context body, to decide capture-vs-local.
	bodyLo, bodyHi token.Pos
}

func (c *concChecker) checkFile(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		c.walkFn(fd.Body, &fnCtx{
			key:    c.pkgPath + "." + fd.Name.Name,
			closed: map[types.Object]token.Pos{},
			bodyLo: fd.Body.Pos(), bodyHi: fd.Body.End(),
		}, fd)
	}
}

// chanObj resolves the root object of a channel expression (ident or the
// leaf field of a selector), or nil.
func (c *concChecker) chanObj(e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return c.info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := c.info.Selections[x]; ok {
			return s.Obj()
		}
	case *ast.ParenExpr:
		return c.chanObj(x.X)
	}
	return nil
}

// walkFn walks one function or closure body in source order, maintaining
// held locks and close/send channel state. fd is the enclosing declaration
// (for parameter identification), nil inside closures.
func (c *concChecker) walkFn(body *ast.BlockStmt, ctx *fnCtx, fd *ast.FuncDecl) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok && lit.Body != nil {
				c.walkFn(lit.Body, &fnCtx{
					key:    ctx.key + ".go",
					closed: map[types.Object]token.Pos{},
					inGo:   true,
					bodyLo: lit.Body.Pos(), bodyHi: lit.Body.End(),
				}, nil)
				return false
			}
			return true
		case *ast.FuncLit:
			// Non-go closure: fresh lock context (it runs who-knows-when),
			// same goroutine assumptions otherwise.
			if x.Body != nil {
				c.walkFn(x.Body, &fnCtx{
					key:    ctx.key + ".func",
					closed: map[types.Object]token.Pos{},
					inGo:   ctx.inGo,
					bodyLo: x.Body.Pos(), bodyHi: x.Body.End(),
				}, nil)
			}
			return false
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to function end; no
			// state change. Other deferred calls are ignored.
			return false
		case *ast.SendStmt:
			if obj := c.chanObj(x.Chan); obj != nil {
				if cpos, closed := ctx.closed[obj]; closed {
					c.diag(x.Pos(), "chanclose",
						"send on %s after it was closed at %s", obj.Name(), c.l.pos(cpos))
				}
			}
			return true
		case *ast.CallExpr:
			c.checkCall(x, ctx, fd)
			return true
		}
		return true
	})
}

func (c *concChecker) checkCall(call *ast.CallExpr, ctx *fnCtx, fd *ast.FuncDecl) {
	// close(ch): double-close, close-of-parameter.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin {
			obj := c.chanObj(call.Args[0])
			if obj == nil {
				return
			}
			if prev, closed := ctx.closed[obj]; closed {
				c.diag(call.Pos(), "chanclose",
					"%s closed twice (first at %s)", obj.Name(), c.l.pos(prev))
			}
			ctx.closed[obj] = call.Pos()
			if fd != nil && fd.Type.Params != nil {
				for _, p := range fd.Type.Params.List {
					for _, name := range p.Names {
						if c.info.Defs[name] == obj {
							c.diag(call.Pos(), "chanclose",
								"close of parameter channel %s: the sender that owns the channel should close it", obj.Name())
						}
					}
				}
			}
		}
		return
	}

	recv, typeName, method, ok := c.syncMethod(call)
	if !ok {
		return
	}
	switch typeName {
	case "Mutex", "RWMutex":
		key := c.lockKey(recv, ctx.key)
		switch method {
		case "Lock", "RLock":
			for _, outer := range ctx.held {
				if outer != key {
					if _, seen := c.lockPairs[[2]string{outer, key}]; !seen {
						c.lockPairs[[2]string{outer, key}] = call.Pos()
					}
				}
			}
			ctx.held = append(ctx.held, key)
		case "Unlock", "RUnlock":
			for i := len(ctx.held) - 1; i >= 0; i-- {
				if ctx.held[i] == key {
					ctx.held = append(ctx.held[:i], ctx.held[i+1:]...)
					break
				}
			}
		}
	case "WaitGroup":
		if method == "Add" && ctx.inGo {
			// Add inside a goroutine races with the coordinator's Wait
			// unless the WaitGroup was created inside this goroutine.
			if obj := c.chanObj(recv); obj != nil &&
				!(obj.Pos() >= ctx.bodyLo && obj.Pos() <= ctx.bodyHi) {
				c.diag(call.Pos(), "waitgroup",
					"WaitGroup.Add on captured %s inside a goroutine races with Wait: call Add before the go statement", obj.Name())
			}
		}
	}
}

// checkAtomicStores flags plain assignments to fields that are accessed
// via sync/atomic elsewhere in the package.
func (c *concChecker) checkAtomicStores(f *ast.File) {
	if len(c.atomicFields) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, isSel := lhs.(*ast.SelectorExpr)
			if !isSel {
				continue
			}
			s, isField := c.info.Selections[sel]
			if !isField || s.Kind() != types.FieldVal {
				continue
			}
			if apos, mixed := c.atomicFields[s.Obj()]; mixed {
				c.diag(as.Pos(), "atomicmix",
					"plain store to %s, which is accessed atomically at %s: mixing atomic and plain access has no happens-before edge", sel.Sel.Name, c.l.pos(apos))
			}
		}
		return true
	})
}
