package queries

// SQL-text workloads. Unlike the programmatic Suite (which feeds plans
// straight to the planner), these go through the full service front door:
// lexing, normalization, fingerprinting, the compiled-query cache and
// bound-parameter encoding. They deliberately cover the fingerprint
// grammar's corners — numeric literals (deduplicated), string and date
// literals (encoded per compared column), ORDER BY/LIMIT tails (never
// lifted), and aliases.

// SQLWorkload is a named SQL statement.
type SQLWorkload struct {
	Name        string
	Description string
	SQL         string
}

// SQLSuite returns the service-path workload over the datagen schema.
func SQLSuite() []SQLWorkload {
	return []SQLWorkload{
		{
			Name:        "scan-filter",
			Description: "filtered scan with a two-column ORDER BY tail",
			SQL: "select l_orderkey, l_quantity from lineitem " +
				"where l_quantity < 4 order by l_orderkey, l_quantity limit 50",
		},
		{
			Name:        "agg-group",
			Description: "single-table aggregation with a numeric literal",
			SQL: "select l_orderkey, sum(l_quantity), sum(l_extendedprice) from lineitem " +
				"where l_quantity < 24 group by l_orderkey",
		},
		{
			Name:        "date-filter",
			Description: "date literal encoded through the compared column",
			SQL: "select l_orderkey, count(*) from lineitem " +
				"where l_shipdate < '1995-06-17' group by l_orderkey",
		},
		{
			Name:        "string-eq",
			Description: "dictionary-encoded string literal, global aggregate",
			SQL:         "select count(*), sum(l_extendedprice) from lineitem where l_returnflag = 'R'",
		},
		{
			Name:        "join-groupjoin",
			Description: "join + group-by (fuses to groupjoin), date-filtered",
			SQL: "select o_orderkey, sum(l_extendedprice) from lineitem, orders " +
				"where o_orderkey = l_orderkey and o_orderdate < '1995-04-01' " +
				"group by o_orderkey",
		},
		{
			Name:        "join-opaque",
			Description: "join + group-by behind opaque arithmetic filters (misestimated cardinality)",
			SQL: "select l_orderkey, sum(l_extendedprice) from lineitem, orders " +
				"where o_orderkey = l_orderkey and l_quantity*1 < 45 and l_discount*1 < 45 " +
				"group by l_orderkey",
		},
		{
			Name:        "join-3way",
			Description: "three-way join with a selective dimension filter",
			SQL: "select l_orderkey, sum(l_extendedprice) from lineitem, orders, part " +
				"where o_orderkey = l_orderkey and p_partkey = l_partkey and p_size < 10 " +
				"group by l_orderkey",
		},
		{
			Name:        "topk",
			Description: "aliased aggregate with ORDER BY alias DESC and LIMIT",
			SQL: "select l_orderkey, sum(l_quantity) as qty from lineitem " +
				"group by l_orderkey order by qty desc limit 10",
		},
		{
			Name:        "expr-literals",
			Description: "several numeric literals, inside filters and aggregate args",
			SQL: "select l_orderkey, sum(l_extendedprice * (100 - l_discount)) from lineitem " +
				"where l_quantity < 30 group by l_orderkey",
		},
	}
}

// SQLByName returns the named SQL workload, or false.
func SQLByName(name string) (SQLWorkload, bool) {
	for _, w := range SQLSuite() {
		if w.Name == name {
			return w, true
		}
	}
	return SQLWorkload{}, false
}
