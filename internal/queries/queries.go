// Package queries defines the evaluation workload: every query the paper
// shows (the introduction example of Fig. 3a, the domain-expert query of
// Fig. 9a, the optimizer-study plans of Fig. 10, the TPC-H Q16 analogue of
// the overhead experiment) plus a TPC-H-inspired suite standing in for
// "all 22 TPC-H queries" in the attribution experiment (Table 2) — scoped
// to the engine's supported features (one- or two-key grouping, equi-joins).
package queries

import "repro/internal/plan"

// Workload is a named query.
type Workload struct {
	Name        string
	Description string
	Query       *plan.Query
}

func q(name, desc string, query *plan.Query) Workload {
	if query.Limit == 0 {
		query.Limit = -1
	}
	return Workload{Name: name, Description: desc, Query: query}
}

// Intro is the paper's Fig. 3a query; noGroupJoin disables the fused
// physical operator so the plain join+group-by pipeline of Listing 1 is
// generated.
func Intro(noGroupJoin bool) Workload {
	name := "intro"
	if noGroupJoin {
		name = "intro-nogj"
	}
	return q(name, "Fig. 3a: avg margin per product sold as 'Chip'", &plan.Query{
		Tables: []plan.TableRef{{Name: "sales", Alias: "s"}, {Name: "products", Alias: "p"}},
		Where: []plan.Expr{
			plan.Eq(plan.Col("s.id"), plan.Col("p.id")),
			plan.Eq(plan.Col("p.category"), plan.Str("Chip")),
		},
		Select: []plan.SelectItem{
			{Expr: plan.Col("s.id")},
			{Expr: &plan.Agg{Fn: plan.AggAvg, Arg: &plan.Bin{
				Op: plan.OpDiv,
				L:  &plan.Bin{Op: plan.OpDiv, L: plan.Col("s.price"), R: plan.Col("s.vat_factor")},
				R:  plan.Col("s.prod_costs"),
			}}, Alias: "avg_margin"},
		},
		GroupBy: []plan.Expr{plan.Col("s.id")},
		Hints:   plan.Hints{NoGroupJoin: noGroupJoin},
	})
}

// Fig9 is the domain-expert use case (§6.1).
func Fig9() Workload {
	return q("fig9", "Fig. 9a: avg extended price per order before 1995-04-01", &plan.Query{
		Tables: []plan.TableRef{{Name: "lineitem"}, {Name: "orders"}},
		Where: []plan.Expr{
			plan.Lt(plan.Col("o_orderdate"), plan.Str("1995-04-01")),
			plan.Eq(plan.Col("o_orderkey"), plan.Col("l_orderkey")),
		},
		Select: []plan.SelectItem{
			{Expr: plan.Col("l_orderkey")},
			{Expr: &plan.Agg{Fn: plan.AggAvg, Arg: plan.Col("l_extendedprice")}, Alias: "avg_price"},
		},
		GroupBy: []plan.Expr{plan.Col("l_orderkey")},
		Hints:   plan.Hints{NoGroupJoin: true},
	})
}

// Fig10 builds the optimizer use case (§6.1): a three-way join of
// lineitem with orders (date-filtered) and partsupp, aggregated globally.
// alt selects the alternative (faster) probe order of Fig. 10b.
func Fig10(alt bool) Workload {
	order := []string{"partsupp", "orders"} // original plan (Fig. 10a)
	name := "fig10-opt"
	if alt {
		order = []string{"orders", "partsupp"} // alternative plan (Fig. 10b)
		name = "fig10-alt"
	}
	return q(name, "Fig. 10: three-way join, two probe orders", &plan.Query{
		Tables: []plan.TableRef{{Name: "lineitem"}, {Name: "orders"}, {Name: "partsupp"}},
		Where: []plan.Expr{
			plan.Eq(plan.Col("o_orderkey"), plan.Col("l_orderkey")),
			plan.Eq(plan.Col("ps_partkey"), plan.Col("l_partkey")),
			plan.Lt(plan.Col("o_orderdate"), plan.Str("1995-06-17")),
		},
		Select: []plan.SelectItem{
			{Expr: &plan.Agg{Fn: plan.AggSum, Arg: &plan.Bin{
				Op: plan.OpMul, L: plan.Col("ps_supplycost"), R: plan.Col("l_quantity"),
			}}, Alias: "total_cost"},
		},
		Hints: plan.Hints{ProbeBase: "lineitem", ProbeOrder: order},
	})
}

// Q16 approximates TPC-H Q16 (the overhead experiment's workload, §6.2):
// brands of sizeable parts counted across suppliers.
func Q16() Workload {
	return q("q16", "TPC-H Q16 analogue: supplier count per brand", &plan.Query{
		Tables: []plan.TableRef{{Name: "partsupp"}, {Name: "part"}},
		Where: []plan.Expr{
			plan.Eq(plan.Col("p_partkey"), plan.Col("ps_partkey")),
			&plan.Bin{Op: plan.OpGt, L: plan.Col("p_size"), R: plan.Num(15)},
		},
		Select: []plan.SelectItem{
			{Expr: plan.Col("p_brand")},
			{Expr: &plan.Agg{Fn: plan.AggCount}, Alias: "supplier_cnt"},
		},
		GroupBy: []plan.Expr{plan.Col("p_brand")},
		OrderBy: []plan.OrderItem{{Expr: plan.Col("p_brand")}},
	})
}

// Suite returns the full workload used for the attribution and
// register-reservation experiments (the paper runs all TPC-H queries).
func Suite() []Workload {
	ws := []Workload{
		Intro(true),
		Intro(false),
		Fig9(),
		Fig10(false),
		Fig10(true),
		Q16(),

		q("q1", "TPC-H Q1 analogue: pricing summary per returnflag/linestatus", &plan.Query{
			Tables: []plan.TableRef{{Name: "lineitem"}},
			Where: []plan.Expr{
				&plan.Bin{Op: plan.OpLe, L: plan.Col("l_shipdate"), R: plan.Str("1998-09-02")},
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("l_returnflag")},
				{Expr: plan.Col("l_linestatus")},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_quantity")}, Alias: "sum_qty"},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_extendedprice")}, Alias: "sum_price"},
				{Expr: &plan.Agg{Fn: plan.AggAvg, Arg: plan.Col("l_quantity")}, Alias: "avg_qty"},
				{Expr: &plan.Agg{Fn: plan.AggAvg, Arg: plan.Col("l_extendedprice")}, Alias: "avg_price"},
				{Expr: &plan.Agg{Fn: plan.AggCount}, Alias: "count_order"},
			},
			GroupBy: []plan.Expr{plan.Col("l_returnflag"), plan.Col("l_linestatus")},
			OrderBy: []plan.OrderItem{{Expr: plan.Col("l_returnflag")}, {Expr: plan.Col("l_linestatus")}},
		}),

		q("q3", "TPC-H Q3 analogue: revenue per order for a market segment", &plan.Query{
			Tables: []plan.TableRef{{Name: "customer"}, {Name: "orders"}, {Name: "lineitem"}},
			Where: []plan.Expr{
				plan.Eq(plan.Col("c_mktsegment"), plan.Str("BUILDING")),
				plan.Eq(plan.Col("c_custkey"), plan.Col("o_custkey")),
				plan.Eq(plan.Col("l_orderkey"), plan.Col("o_orderkey")),
				plan.Lt(plan.Col("o_orderdate"), plan.Str("1995-03-15")),
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("l_orderkey")},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_extendedprice")}, Alias: "revenue"},
			},
			GroupBy: []plan.Expr{plan.Col("l_orderkey")},
		}),

		q("q5", "TPC-H Q5 analogue: revenue per supplier nation", &plan.Query{
			Tables: []plan.TableRef{
				{Name: "customer"}, {Name: "orders"}, {Name: "lineitem"}, {Name: "supplier"},
			},
			Where: []plan.Expr{
				plan.Eq(plan.Col("c_custkey"), plan.Col("o_custkey")),
				plan.Eq(plan.Col("l_orderkey"), plan.Col("o_orderkey")),
				plan.Eq(plan.Col("l_suppkey"), plan.Col("s_suppkey")),
				&plan.Bin{Op: plan.OpGe, L: plan.Col("o_orderdate"), R: plan.Str("1994-01-01")},
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("s_nationkey")},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_extendedprice")}, Alias: "revenue"},
			},
			GroupBy: []plan.Expr{plan.Col("s_nationkey")},
			Hints:   plan.Hints{ProbeBase: "lineitem"},
		}),

		q("q6", "TPC-H Q6 analogue: forecast revenue change", &plan.Query{
			Tables: []plan.TableRef{{Name: "lineitem"}},
			Where: []plan.Expr{
				&plan.Bin{Op: plan.OpGe, L: plan.Col("l_shipdate"), R: plan.Str("1994-01-01")},
				plan.Lt(plan.Col("l_shipdate"), plan.Str("1995-01-01")),
				&plan.Bin{Op: plan.OpGe, L: plan.Col("l_discount"), R: plan.Num(5)},
				&plan.Bin{Op: plan.OpLe, L: plan.Col("l_discount"), R: plan.Num(7)},
				plan.Lt(plan.Col("l_quantity"), plan.Num(24)),
			},
			Select: []plan.SelectItem{
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: &plan.Bin{
					Op: plan.OpMul, L: plan.Col("l_extendedprice"), R: plan.Col("l_discount"),
				}}, Alias: "revenue"},
			},
		}),

		q("q10", "TPC-H Q10 analogue: revenue per customer", &plan.Query{
			Tables: []plan.TableRef{{Name: "customer"}, {Name: "orders"}, {Name: "lineitem"}},
			Where: []plan.Expr{
				plan.Eq(plan.Col("c_custkey"), plan.Col("o_custkey")),
				plan.Eq(plan.Col("l_orderkey"), plan.Col("o_orderkey")),
				&plan.Bin{Op: plan.OpGe, L: plan.Col("o_orderdate"), R: plan.Str("1993-10-01")},
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("o_custkey")},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_extendedprice")}, Alias: "revenue"},
			},
			GroupBy: []plan.Expr{plan.Col("o_custkey")},
		}),

		q("q12", "TPC-H Q12 analogue: line counts per order in a ship window", &plan.Query{
			Tables: []plan.TableRef{{Name: "orders"}, {Name: "lineitem"}},
			Where: []plan.Expr{
				plan.Eq(plan.Col("l_orderkey"), plan.Col("o_orderkey")),
				&plan.Bin{Op: plan.OpGe, L: plan.Col("l_shipdate"), R: plan.Str("1994-01-01")},
				plan.Lt(plan.Col("l_shipdate"), plan.Str("1995-01-01")),
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("o_orderkey")},
				{Expr: &plan.Agg{Fn: plan.AggCount}, Alias: "line_count"},
			},
			GroupBy: []plan.Expr{plan.Col("o_orderkey")},
		}),

		q("q14", "TPC-H Q14 analogue: revenue of large parts", &plan.Query{
			Tables: []plan.TableRef{{Name: "lineitem"}, {Name: "part"}},
			Where: []plan.Expr{
				plan.Eq(plan.Col("l_partkey"), plan.Col("p_partkey")),
				&plan.Bin{Op: plan.OpGe, L: plan.Col("l_shipdate"), R: plan.Str("1995-09-01")},
				plan.Lt(plan.Col("l_shipdate"), plan.Str("1995-10-01")),
			},
			Select: []plan.SelectItem{
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_extendedprice")}, Alias: "revenue"},
				{Expr: &plan.Agg{Fn: plan.AggCount}, Alias: "lines"},
			},
		}),

		q("q18", "TPC-H Q18 analogue: total quantity per order", &plan.Query{
			Tables: []plan.TableRef{{Name: "lineitem"}},
			Select: []plan.SelectItem{
				{Expr: plan.Col("l_orderkey")},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_quantity")}, Alias: "total_qty"},
				{Expr: &plan.Agg{Fn: plan.AggMax, Arg: plan.Col("l_quantity")}, Alias: "max_qty"},
				{Expr: &plan.Agg{Fn: plan.AggMin, Arg: plan.Col("l_quantity")}, Alias: "min_qty"},
			},
			GroupBy: []plan.Expr{plan.Col("l_orderkey")},
		}),

		q("q19", "TPC-H Q19 analogue: discounted revenue of small shipments", &plan.Query{
			Tables: []plan.TableRef{{Name: "lineitem"}, {Name: "part"}},
			Where: []plan.Expr{
				plan.Eq(plan.Col("l_partkey"), plan.Col("p_partkey")),
				plan.Lt(plan.Col("p_size"), plan.Num(10)),
				plan.Lt(plan.Col("l_quantity"), plan.Num(12)),
			},
			Select: []plan.SelectItem{
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_extendedprice")}, Alias: "revenue"},
			},
		}),

		q("q7", "TPC-H Q7 analogue: shipping volume per supplier nation", &plan.Query{
			Tables: []plan.TableRef{{Name: "supplier"}, {Name: "lineitem"}, {Name: "orders"}},
			Where: []plan.Expr{
				plan.Eq(plan.Col("s_suppkey"), plan.Col("l_suppkey")),
				plan.Eq(plan.Col("o_orderkey"), plan.Col("l_orderkey")),
				&plan.Bin{Op: plan.OpGe, L: plan.Col("l_shipdate"), R: plan.Str("1995-01-01")},
				&plan.Bin{Op: plan.OpLe, L: plan.Col("l_shipdate"), R: plan.Str("1996-12-31")},
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("s_nationkey")},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_extendedprice")}, Alias: "volume"},
			},
			GroupBy: []plan.Expr{plan.Col("s_nationkey")},
			Hints:   plan.Hints{ProbeBase: "lineitem"},
		}),

		q("q9", "TPC-H Q9 analogue: discounted profit per brand", &plan.Query{
			Tables: []plan.TableRef{{Name: "part"}, {Name: "lineitem"}},
			Where: []plan.Expr{
				plan.Eq(plan.Col("p_partkey"), plan.Col("l_partkey")),
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("p_brand")},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: &plan.Bin{
					Op: plan.OpMul,
					L:  plan.Col("l_extendedprice"),
					R:  &plan.Bin{Op: plan.OpSub, L: plan.Num(100), R: plan.Col("l_discount")},
				}}, Alias: "profit"},
			},
			GroupBy: []plan.Expr{plan.Col("p_brand")},
		}),

		q("q11", "TPC-H Q11 analogue: stock value per part", &plan.Query{
			Tables: []plan.TableRef{{Name: "partsupp"}, {Name: "supplier"}},
			Where: []plan.Expr{
				plan.Eq(plan.Col("ps_suppkey"), plan.Col("s_suppkey")),
				&plan.Bin{Op: plan.OpGe, L: plan.Col("s_acctbal"), R: plan.Num(0)},
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("ps_partkey")},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: &plan.Bin{
					Op: plan.OpMul, L: plan.Col("ps_supplycost"), R: plan.Col("ps_availqty"),
				}}, Alias: "value"},
			},
			GroupBy: []plan.Expr{plan.Col("ps_partkey")},
			Hints:   plan.Hints{ProbeBase: "partsupp"},
		}),

		q("q13", "TPC-H Q13 analogue: order count per customer", &plan.Query{
			Tables: []plan.TableRef{{Name: "customer"}, {Name: "orders"}},
			Where: []plan.Expr{
				plan.Eq(plan.Col("c_custkey"), plan.Col("o_custkey")),
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("o_custkey")},
				{Expr: &plan.Agg{Fn: plan.AggCount}, Alias: "orders"},
			},
			GroupBy: []plan.Expr{plan.Col("o_custkey")},
			Hints:   plan.Hints{ProbeBase: "orders"},
		}),

		q("q15", "TPC-H Q15 analogue: quarterly revenue per supplier", &plan.Query{
			Tables: []plan.TableRef{{Name: "lineitem"}},
			Where: []plan.Expr{
				&plan.Bin{Op: plan.OpGe, L: plan.Col("l_shipdate"), R: plan.Str("1996-01-01")},
				plan.Lt(plan.Col("l_shipdate"), plan.Str("1996-04-01")),
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("l_suppkey")},
				{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_extendedprice")}, Alias: "revenue"},
			},
			GroupBy: []plan.Expr{plan.Col("l_suppkey")},
			OrderBy: []plan.OrderItem{{Expr: &plan.Agg{Fn: plan.AggSum, Arg: plan.Col("l_extendedprice")}, Desc: true}},
			Limit:   10,
		}),

		q("q17", "TPC-H Q17 analogue: small-order revenue for one category", &plan.Query{
			Tables: []plan.TableRef{{Name: "part"}, {Name: "lineitem"}},
			Where: []plan.Expr{
				plan.Eq(plan.Col("p_partkey"), plan.Col("l_partkey")),
				plan.Eq(plan.Col("p_category"), plan.Str("Board")),
				plan.Lt(plan.Col("l_quantity"), plan.Num(5)),
			},
			Select: []plan.SelectItem{
				{Expr: &plan.Agg{Fn: plan.AggAvg, Arg: plan.Col("l_extendedprice")}, Alias: "avg_revenue"},
				{Expr: &plan.Agg{Fn: plan.AggCount}, Alias: "lines"},
			},
		}),

		q("topk", "top orders by total price (scan + host-side sort)", &plan.Query{
			Tables: []plan.TableRef{{Name: "orders"}},
			Where: []plan.Expr{
				&plan.Bin{Op: plan.OpGt, L: plan.Col("o_totalprice"), R: plan.Num(400000)},
			},
			Select: []plan.SelectItem{
				{Expr: plan.Col("o_orderkey")},
				{Expr: plan.Col("o_orderdate")},
				{Expr: plan.Col("o_totalprice")},
			},
			OrderBy: []plan.OrderItem{{Expr: plan.Col("o_totalprice"), Desc: true}},
			Limit:   25,
		}),
	}
	return ws
}

// ByName finds a workload in the suite.
func ByName(name string) (Workload, bool) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
