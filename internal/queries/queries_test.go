package queries

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/plan"
)

func TestSuiteUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Suite() {
		if w.Name == "" || w.Description == "" {
			t.Errorf("workload with empty name/description: %+v", w)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestSuiteAllPlannable(t *testing.T) {
	cat := datagen.Generate(datagen.Config{ScaleFactor: 0.1, Seed: 1})
	for _, w := range Suite() {
		if _, err := plan.Plan(cat, w.Query); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("fig9"); !ok {
		t.Fatal("fig9 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus name found")
	}
}

func TestFig10PlansDiffer(t *testing.T) {
	a, b := Fig10(false), Fig10(true)
	if a.Query.Hints.ProbeOrder[0] == b.Query.Hints.ProbeOrder[0] {
		t.Fatal("fig10 variants share a probe order")
	}
}

func TestIntroVariants(t *testing.T) {
	if !Intro(true).Query.Hints.NoGroupJoin {
		t.Fatal("intro-nogj lacks hint")
	}
	if Intro(false).Query.Hints.NoGroupJoin {
		t.Fatal("intro should allow fusion")
	}
}

func TestLimitsDefaulted(t *testing.T) {
	for _, w := range Suite() {
		if w.Query.Limit == 0 {
			t.Errorf("%s: zero limit would return no rows", w.Name)
		}
	}
}

// TestSuiteHasTwentyTwoQueries mirrors the paper's evaluation breadth
// ("all 22 TPC-H queries").
func TestSuiteHasTwentyTwoQueries(t *testing.T) {
	if got := len(Suite()); got != 22 {
		t.Fatalf("suite has %d workloads, want 22", got)
	}
}
