package cost

// Estimator implementations for the planner's plan.Estimator hook, plus
// the statistics-health sources the CE evaluation harness sweeps over.
// The composition is: a StatsSource decides *which* statistics the
// planner sees (fresh, stale, none), an estimator decides *how* they are
// turned into selectivities (heuristics or histograms), and
// HistoryCorrected layers observed true cardinalities on top of either.

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/plan"
)

// StatsSource supplies the column statistics backing an estimator.
type StatsSource interface {
	ColStats(t *catalog.Table, col string) (catalog.Stats, bool)
}

// FreshStats is the healthy regime: the planner reads each table's own,
// up-to-date statistics.
type FreshStats struct{}

// ColStats declines, so the planner falls through to the live table.
func (FreshStats) ColStats(*catalog.Table, string) (catalog.Stats, bool) {
	return catalog.Stats{}, false
}

// StaleStats serves statistics computed from an outdated twin of the
// catalog (a smaller, differently-seeded generation of the same schema)
// — the "statistics last ANALYZEd a while ago" regime.
type StaleStats struct{ Twin *catalog.Catalog }

// ColStats reads the twin's statistics for the same table and column.
func (s StaleStats) ColStats(t *catalog.Table, col string) (catalog.Stats, bool) {
	if s.Twin == nil {
		return catalog.Stats{}, false
	}
	twin, err := s.Twin.Table(t.Name)
	if err != nil || twin.Col(col) == nil {
		return catalog.Stats{}, false
	}
	return twin.ColStats(col), true
}

// AbsentStats is the no-statistics regime: every column reports zero
// stats, driving the planner onto its magic-constant fallbacks (0.1 for
// equality, 0.5 for ranges, distinct=1 for join keys).
type AbsentStats struct{}

// ColStats returns zero statistics for every column.
func (AbsentStats) ColStats(*catalog.Table, string) (catalog.Stats, bool) {
	return catalog.Stats{}, true
}

// Naive is the planner's built-in heuristic estimator over a chosen
// statistics source: it overrides nothing beyond where the stats come
// from.
type Naive struct{ Stats StatsSource }

func (n *Naive) ColStats(t *catalog.Table, col string) (catalog.Stats, bool) {
	return n.Stats.ColStats(t, col)
}

func (n *Naive) Selectivity(*catalog.Table, string, plan.BinOp, int64, float64) (float64, bool) {
	return 0, false
}

func (n *Naive) Rows(string, float64) (float64, bool) { return 0, false }

// Hist is one column's equi-depth histogram: contiguous value ranges
// holding (approximately) equal row counts, with a per-bucket distinct
// count for equality estimates.
type Hist struct {
	lo, hi   []int64 // per-bucket value range (inclusive)
	count    []int   // rows in bucket
	distinct []int   // distinct values in bucket
	n        int     // total rows
}

// NewHist builds an equi-depth histogram with approximately buckets
// buckets. Buckets are cut by a moving cursor so every row lands in
// exactly one bucket, and each cut extends to the end of a run: equal
// values never straddle a bucket boundary, or equality estimates would
// double-count.
func NewHist(data []int64, buckets int) *Hist {
	if len(data) == 0 || buckets < 1 {
		return nil
	}
	sorted := append([]int64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := &Hist{n: len(sorted)}
	target := (len(sorted) + buckets - 1) / buckets
	for start := 0; start < len(sorted); {
		end := start + target
		if end > len(sorted) {
			end = len(sorted)
		}
		for end < len(sorted) && sorted[end] == sorted[end-1] {
			end++
		}
		d := 1
		for i := start + 1; i < end; i++ {
			if sorted[i] != sorted[i-1] {
				d++
			}
		}
		h.lo = append(h.lo, sorted[start])
		h.hi = append(h.hi, sorted[end-1])
		h.count = append(h.count, end-start)
		h.distinct = append(h.distinct, d)
		start = end
	}
	return h
}

// cdf estimates the fraction of rows with value < v.
func (h *Hist) cdf(v int64) float64 {
	rows := 0.0
	for b := range h.lo {
		switch {
		case v > h.hi[b]:
			rows += float64(h.count[b])
		case v <= h.lo[b]:
			// nothing from this bucket onward
		default:
			span := float64(h.hi[b] - h.lo[b])
			rows += float64(h.count[b]) * float64(v-h.lo[b]) / span
		}
	}
	return rows / float64(h.n)
}

// eq estimates the fraction of rows equal to v.
func (h *Hist) eq(v int64) float64 {
	for b := range h.lo {
		if v >= h.lo[b] && v <= h.hi[b] {
			return float64(h.count[b]) / float64(h.n) / float64(h.distinct[b])
		}
	}
	return 0
}

// Histogram estimates predicate selectivities from per-column equi-depth
// histograms built off a statistics source catalog; predicates without a
// histogram (or operators outside its reach) fall back to the heuristic.
type Histogram struct {
	Stats StatsSource
	H     map[string]*Hist // "table.column" → histogram
}

// DefaultHistogramBuckets is the bucket count NewHistograms uses.
const DefaultHistogramBuckets = 64

// NewHistograms builds histograms for every integer-valued column of
// every table in cat (dictionary codes and dates included — both compare
// as int64).
func NewHistograms(cat *catalog.Catalog, buckets int) map[string]*Hist {
	if buckets <= 0 {
		buckets = DefaultHistogramBuckets
	}
	out := map[string]*Hist{}
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			continue
		}
		for _, c := range t.Cols {
			if h := NewHist(c.Data, buckets); h != nil {
				out[t.Name+"."+c.Name] = h
			}
		}
	}
	return out
}

func (hg *Histogram) ColStats(t *catalog.Table, col string) (catalog.Stats, bool) {
	return hg.Stats.ColStats(t, col)
}

func (hg *Histogram) Selectivity(t *catalog.Table, col string, op plan.BinOp, val int64, heuristic float64) (float64, bool) {
	h := hg.H[t.Name+"."+col]
	if h == nil {
		return 0, false
	}
	switch op {
	case plan.OpLt:
		return h.cdf(val), true
	case plan.OpLe:
		return h.cdf(val) + h.eq(val), true
	case plan.OpGt:
		return 1 - h.cdf(val) - h.eq(val), true
	case plan.OpGe:
		return 1 - h.cdf(val), true
	case plan.OpEq:
		return h.eq(val), true
	case plan.OpNe:
		return 1 - h.eq(val), true
	}
	return 0, false
}

func (hg *Histogram) Rows(string, float64) (float64, bool) { return 0, false }

// HistoryCorrected layers the observed-cardinality history over a base
// estimator: statistics and selectivities come from the base, but any
// plan expression the history has seen executes gets its estimate
// replaced by the smoothed true row count. An empty history behaves
// exactly like the base — the correction is strictly additive.
type HistoryCorrected struct {
	Base plan.Estimator
	H    *History
}

func (hc *HistoryCorrected) ColStats(t *catalog.Table, col string) (catalog.Stats, bool) {
	return hc.Base.ColStats(t, col)
}

func (hc *HistoryCorrected) Selectivity(t *catalog.Table, col string, op plan.BinOp, val int64, heuristic float64) (float64, bool) {
	return hc.Base.Selectivity(t, col, op, val, heuristic)
}

func (hc *HistoryCorrected) Rows(canon string, est float64) (float64, bool) {
	if hc.H == nil {
		return 0, false
	}
	return hc.H.Lookup(canon)
}
