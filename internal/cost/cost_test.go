package cost

// Unit tests for the cost layer: history EWMA/versioning semantics and
// concurrency safety (run under -race in CI), histogram estimates, the
// cycle model, the knob decisions, and the model checker.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/plan"
	"repro/internal/sqlparse"
)

func TestHistoryObserveSemantics(t *testing.T) {
	h := NewHistory()
	if _, ok := h.Lookup("e1"); ok {
		t.Fatal("empty history answered a lookup")
	}
	if !h.Observe("e1", 100) {
		t.Fatal("first observation must be material")
	}
	if r, ok := h.Lookup("e1"); !ok || r != 100 {
		t.Fatalf("Lookup = %v,%v want 100,true", r, ok)
	}
	v := h.Version()
	if h.Observe("e1", 100) {
		t.Fatal("repeat of the same value must not be material")
	}
	if h.Version() != v {
		t.Fatal("version bumped without a material change")
	}
	// EWMA with alpha=0.5: 100 -> 150 on observing 200, a 50% shift.
	if !h.Observe("e1", 200) {
		t.Fatal("a 50% shift must be material")
	}
	if r, _ := h.Lookup("e1"); r != 150 {
		t.Fatalf("EWMA = %v, want 150", r)
	}
	if h.Version() != v+1 {
		t.Fatalf("version = %d, want %d", h.Version(), v+1)
	}
	// A small drift stays immaterial: 150 -> 155 is ~3%.
	if h.Observe("e1", 160) {
		t.Fatal("a 3% smoothed shift must not be material")
	}
	// Non-positive counts clamp to one row.
	h.Observe("e2", 0)
	if r, _ := h.Lookup("e2"); r != 1 {
		t.Fatalf("clamped rows = %v, want 1", r)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
}

// TestHistoryConcurrency hammers one history from many goroutines —
// meaningful under -race (the CI ce-smoke job runs this package with it).
func TestHistoryConcurrency(t *testing.T) {
	h := NewHistory()
	var wg sync.WaitGroup
	canons := []string{"a", "b", "c", "d"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c := canons[(g+i)%len(canons)]
				h.Observe(c, int64(100+i%50))
				h.Lookup(c)
				h.Version()
				h.Len()
			}
		}(g)
	}
	wg.Wait()
	if h.Len() != len(canons) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(canons))
	}
	for _, c := range canons {
		if r, ok := h.Lookup(c); !ok || r < 1 || r > 200 {
			t.Fatalf("Lookup(%s) = %v,%v out of range", c, r, ok)
		}
	}
}

func TestHistoryKeying(t *testing.T) {
	// The history keys by sqlparse.Hash64 of the canon — equal canons
	// share an entry regardless of which string instance observed them.
	h := NewHistory()
	h.Observe("scan(x)", 42)
	if r, ok := h.Lookup("scan(" + "x)"); !ok || r != 42 {
		t.Fatalf("Lookup through equal canon = %v,%v", r, ok)
	}
	if sqlparse.Hash64("scan(x)") == sqlparse.Hash64("scan(y)") {
		t.Fatal("distinct canons share a hash")
	}
}

func TestHistEquiDepth(t *testing.T) {
	// 1..100 uniform: cdf(51) ≈ 0.5, eq(v) ≈ 0.01.
	data := make([]int64, 100)
	for i := range data {
		data[i] = int64(i + 1)
	}
	h := NewHist(data, 10)
	if h == nil {
		t.Fatal("nil histogram")
	}
	if c := h.cdf(51); math.Abs(c-0.5) > 0.05 {
		t.Fatalf("cdf(51) = %v, want ~0.5", c)
	}
	if e := h.eq(50); math.Abs(e-0.01) > 0.005 {
		t.Fatalf("eq(50) = %v, want ~0.01", e)
	}
	// Heavily skewed data: equal values must not straddle buckets, so
	// eq() of the hot value stays exact.
	skew := make([]int64, 0, 120)
	for i := 0; i < 100; i++ {
		skew = append(skew, 7)
	}
	for i := 0; i < 20; i++ {
		skew = append(skew, int64(10+i))
	}
	hs := NewHist(skew, 8)
	if e := hs.eq(7); math.Abs(e-100.0/120.0) > 1e-9 {
		t.Fatalf("eq(hot) = %v, want %v", e, 100.0/120.0)
	}
	if NewHist(nil, 8) != nil {
		t.Fatal("histogram over no data must be nil")
	}
}

func costCat() *catalog.Catalog {
	return datagen.Generate(datagen.Config{ScaleFactor: 0.05, Seed: 42})
}

func planSQL(t testing.TB, cat *catalog.Catalog, sql string, est plan.Estimator) *plan.Output {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.PlanWith(cat, q, est)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestAnnotateAndCheckModel(t *testing.T) {
	cat := costCat()
	pl := planSQL(t, cat, "select o_orderkey, sum(l_extendedprice) from lineitem, orders "+
		"where o_orderkey = l_orderkey and o_orderdate < '1995-04-01' group by o_orderkey", nil)
	m := Annotate(pl)
	want := 0
	plan.Walk(pl, func(plan.Node) { want++ })
	if len(m.PerNode) != want {
		t.Fatalf("annotated %d of %d nodes", len(m.PerNode), want)
	}
	if m.TotalCycles <= 0 {
		t.Fatalf("TotalCycles = %v", m.TotalCycles)
	}
	if ds := CheckModel(m); len(ds) != 0 {
		t.Fatalf("clean plan produced diagnostics: %v", ds)
	}
	// Corrupt one estimate: the checker must notice both the NaN and the
	// model-vs-node disagreement.
	var victim plan.Node
	plan.Walk(pl, func(n plan.Node) {
		if _, ok := n.(*plan.Scan); ok && victim == nil {
			victim = n
		}
	})
	e := m.PerNode[victim]
	e.Rows = math.NaN()
	m.PerNode[victim] = e
	if ds := CheckModel(m); len(ds) == 0 {
		t.Fatal("NaN estimate not flagged")
	}
}

func TestDecideKnobs(t *testing.T) {
	cat := costCat()
	li, err := cat.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(buildEst, probeEst, joinEst float64) *Model {
		b := &plan.Scan{Table: li, Est: buildEst}
		p := &plan.Scan{Table: li, Est: probeEst}
		j := &plan.Join{Build: b, Probe: p, BuildKey: &plan.PCol{}, ProbeKey: &plan.PCol{}, Est: joinEst}
		return Annotate(&plan.Output{Input: j})
	}
	// High match fraction: the bloom filter rejects almost nothing.
	if bloom, _ := Decide(mk(100, 1000, 950), true, 8); bloom {
		t.Error("bloom kept although probes nearly always match")
	}
	// Low match fraction: keep it.
	if bloom, _ := Decide(mk(100, 1000, 100), true, 8); !bloom {
		t.Error("bloom dropped although most probes miss")
	}
	// Never enable a disabled knob.
	if bloom, _ := Decide(mk(100, 1000, 100), false, 8); bloom {
		t.Error("Decide enabled bloom filters the configuration disabled")
	}
	// Tiny hash tables shrink the partition count; big ones keep it.
	if _, parts := Decide(mk(100, 1000, 100), true, 8); parts != 2 {
		t.Errorf("partitions = %d, want 2 for a tiny build", parts)
	}
	if _, parts := Decide(mk(5000, 50000, 5000), true, 8); parts != 8 {
		t.Errorf("partitions = %d, want 8 for a large build", parts)
	}
	if _, parts := Decide(mk(100, 1000, 100), true, 0); parts != 0 {
		t.Errorf("partitions = %d, want 0 kept (knob disabled)", parts)
	}
}

func TestEstimatorStatsSources(t *testing.T) {
	cat := costCat()
	li, err := cat.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := (FreshStats{}).ColStats(li, "l_quantity"); ok {
		t.Error("FreshStats must decline (live table wins)")
	}
	if st, ok := (AbsentStats{}).ColStats(li, "l_quantity"); !ok || st.Distinct != 0 {
		t.Errorf("AbsentStats = %+v,%v want zero stats, true", st, ok)
	}
	twin := datagen.Generate(datagen.Config{ScaleFactor: 0.0125, Seed: 99})
	st, ok := StaleStats{Twin: twin}.ColStats(li, "l_quantity")
	if !ok {
		t.Fatal("StaleStats declined a column the twin has")
	}
	live := li.ColStats("l_quantity")
	if st.Distinct == live.Distinct && st.Min == live.Min && st.Max == live.Max {
		t.Log("twin stats coincide with live stats (possible but unexpected)")
	}
	// Histogram selectivity beats nothing it has no histogram for.
	hg := &Histogram{Stats: FreshStats{}, H: NewHistograms(cat, 16)}
	if _, ok := hg.Selectivity(li, "no_such_col", plan.OpLt, 10, 0.5); ok {
		t.Error("histogram answered for a column without a histogram")
	}
	// The histogram must track the true fraction of qualifying rows.
	lq := li.Col("l_quantity")
	lt := 0
	for _, v := range lq.Data {
		if v < 26 {
			lt++
		}
	}
	truth := float64(lt) / float64(len(lq.Data))
	if sel, ok := hg.Selectivity(li, "l_quantity", plan.OpLt, 26, 0.5); !ok || math.Abs(sel-truth) > 0.05 {
		t.Errorf("hist selectivity(l_quantity < 26) = %v,%v want ~%v", sel, ok, truth)
	}
	// HistoryCorrected layers Rows over its base.
	h := NewHistory()
	hc := &HistoryCorrected{Base: &Naive{Stats: FreshStats{}}, H: h}
	if _, ok := hc.Rows("scan(lineitem)", 10); ok {
		t.Error("empty history answered Rows")
	}
	h.Observe("scan(lineitem)", 2957)
	if r, ok := hc.Rows("scan(lineitem)", 10); !ok || r != 2957 {
		t.Errorf("history Rows = %v,%v want 2957,true", r, ok)
	}
}

// TestHistoryCapacityCap: under a churning workload with 10k distinct
// fingerprints the history must stay at its capacity bound, evicting
// least-recently-touched entries while keeping hot ones resident.
func TestHistoryCapacityCap(t *testing.T) {
	h := NewHistoryCap(64)
	// A hot expression observed throughout must survive the churn.
	hot := "hot-expression"
	h.Observe(hot, 100)
	for i := 0; i < 10000; i++ {
		h.Observe(fmt.Sprintf("churn-expression-%d", i), int64(i+1))
		if i%50 == 0 {
			h.Observe(hot, 100) // keep it recent
		}
	}
	if got := h.Len(); got > h.Cap() {
		t.Fatalf("history grew to %d entries, cap is %d", got, h.Cap())
	}
	if got := h.Len(); got != 64 {
		t.Fatalf("history holds %d entries, want full cap 64", got)
	}
	if _, ok := h.Lookup(hot); !ok {
		t.Fatalf("hot entry evicted despite constant touches")
	}
	if n := h.Touches(hot); n < 100 {
		t.Fatalf("hot touches = %d, want >= 100", n)
	}
	// The earliest churn entries must be gone; the latest resident.
	if _, ok := h.Lookup("churn-expression-0"); ok {
		t.Fatalf("oldest churn entry still resident past the cap")
	}
	if _, ok := h.Lookup("churn-expression-9999"); !ok {
		t.Fatalf("newest churn entry missing")
	}
}

// TestHistoryDefaultCap: the default constructor applies the documented
// bound so no service-owned history can grow without limit.
func TestHistoryDefaultCap(t *testing.T) {
	h := NewHistory()
	if h.Cap() != DefaultHistoryCap {
		t.Fatalf("default cap = %d, want %d", h.Cap(), DefaultHistoryCap)
	}
	for i := 0; i < DefaultHistoryCap+512; i++ {
		h.Observe(fmt.Sprintf("e%d", i), 10)
	}
	if h.Len() != DefaultHistoryCap {
		t.Fatalf("len = %d, want %d", h.Len(), DefaultHistoryCap)
	}
}
