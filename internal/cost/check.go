package cost

// tprofvet's cost pass: static and dynamic invariants of the cost layer.
// CheckModel asserts every plan node carries a consistent estimate;
// CheckObserved asserts every collected true count maps to a live tag —
// a task the registry knows whose Log A lineage resolves to an operator
// — and that every operator-bearing plan node was actually counted.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/verify"
)

// CheckModel verifies an annotated plan's estimates: every node has an
// entry, rows and cycles are finite and positive, a join's estimate
// never exceeds the product of its inputs, and the root's estimate
// equals its input's (Output neither filters nor expands).
func CheckModel(m *Model) []verify.Diag {
	var ds []verify.Diag
	bad := func(locus, msg string, args ...any) {
		ds = append(ds, verify.Diag{
			Check:    "cost/model",
			Severity: verify.Error,
			Level:    core.LevelOperator,
			Locus:    locus,
			Msg:      fmt.Sprintf(msg, args...),
		})
	}
	plan.Walk(m.Root, func(n plan.Node) {
		e, ok := m.PerNode[n]
		if !ok {
			bad(n.Kind(), "plan node has no cost estimate")
			return
		}
		if math.IsNaN(e.Rows) || math.IsInf(e.Rows, 0) || e.Rows < 1 {
			bad(n.Kind(), "estimated rows %v out of range (want finite, >= 1)", e.Rows)
		}
		if math.IsNaN(e.Cycles) || math.IsInf(e.Cycles, 0) || e.Cycles <= 0 {
			bad(n.Kind(), "estimated cycles %v out of range (want finite, > 0)", e.Cycles)
		}
		if e.Rows != n.EstRows() {
			bad(n.Kind(), "model rows %v disagree with node estimate %v", e.Rows, n.EstRows())
		}
		switch x := n.(type) {
		case *plan.Join:
			if limit := x.Build.EstRows() * x.Probe.EstRows() * 1.001; e.Rows > limit {
				bad(n.Kind(), "join estimate %v exceeds input product %v", e.Rows, limit)
			}
		case *plan.Output:
			if e.Rows != x.Input.EstRows() {
				bad(n.Kind(), "output estimate %v differs from input estimate %v", e.Rows, x.Input.EstRows())
			}
		case *plan.Scan:
			if limit := float64(x.Table.Rows()); limit >= 1 && e.Rows > limit*1.001 {
				bad(n.Kind(), "scan estimate %v exceeds table rows %v", e.Rows, limit)
			}
		}
	})
	return ds
}

// CheckObserved verifies one counted run against its artifact: every
// collected true count belongs to a registered task whose dictionary
// lineage resolves to a live operator, and every plan node the pipeline
// registered an operator for was actually counted.
func CheckObserved(root *plan.Output, pc *pipeline.Compiled, counts map[core.ComponentID]int64) []verify.Diag {
	var ds []verify.Diag
	bad := func(level core.Level, locus, msg string, args ...any) {
		ds = append(ds, verify.Diag{
			Check:    "cost/observed",
			Severity: verify.Error,
			Level:    level,
			Locus:    locus,
			Msg:      fmt.Sprintf(msg, args...),
		})
	}
	for id := range counts {
		c, ok := pc.Registry.Lookup(id)
		if !ok {
			bad(core.LevelTask, fmt.Sprintf("task %d", id), "tuple counter for unregistered component")
			continue
		}
		if c.Level != core.LevelTask {
			bad(c.Level, c.Name, "tuple counter on non-task component")
			continue
		}
		if pc.Dict.OperatorOf(id) == core.NoComponent {
			bad(core.LevelTask, c.Name, "counted task has no operator lineage (dead tag)")
		}
	}
	true_ := TrueRows(pc, counts)
	plan.Walk(root, func(n plan.Node) {
		if _, isOut := n.(*plan.Output); isOut {
			return
		}
		if _, ok := pc.OpIDs[n]; !ok {
			bad(core.LevelOperator, n.Kind(), "plan node has no registered operator")
			return
		}
		if _, ok := true_[n]; !ok {
			bad(core.LevelOperator, n.Kind(), "operator has no observed row count")
		}
	})
	return ds
}
