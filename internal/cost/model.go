package cost

// The cycle cost model: per-node estimated cardinality and cycle cost
// for a whole plan. The per-row constants are calibrated against the
// simulated CPU's instruction costs for the generated kernels (compare
// DESIGN.md §5): they are not meant to predict absolute wall cycles, but
// to *rank* alternative physical shapes and to drive the physical knob
// decisions (Decide) — bloom filters off when probes mostly hit,
// partition counts down when hash tables are small.

import "repro/internal/plan"

// Per-row cycle constants (simulated cycles per processed row).
const (
	cyScanRow    = 6.0  // load + loop overhead per scanned row
	cyScanCol    = 2.0  // per output column materialization
	cyFilterRow  = 4.0  // predicate evaluation per scanned row
	cyBuildRow   = 28.0 // hash, directory insert, entry write
	cyProbeRow   = 18.0 // hash, directory walk, key compare
	cyMatchRow   = 6.0  // payload copy per produced join row
	cyGroupRow   = 30.0 // hash, group lookup, aggregate update
	cyGroupEmit  = 8.0  // group-scan emit per group
	cyGJBuildRow = 26.0 // group-join build (entry + aggregate slots)
	cyGJProbeRow = 20.0 // group-join probe + in-place aggregate update
	cyOutputRow  = 10.0 // result-row allocation and stores
)

// Estimate is one node's annotation: estimated output rows and estimated
// cycles spent *in this node* (children excluded).
type Estimate struct {
	Rows   float64
	Cycles float64
}

// Model annotates every node of a plan with an Estimate.
type Model struct {
	Root *plan.Output
	// PerNode holds each node's estimate; every node reachable from Root
	// has an entry.
	PerNode map[plan.Node]Estimate
	// TotalCycles sums the per-node cycle estimates.
	TotalCycles float64
}

// Annotate walks the plan bottom-up and attaches cardinality and cycle
// estimates to every node. Cardinalities are the planner's (possibly
// history-corrected) EstRows; cycles follow the per-row constants above.
func Annotate(root *plan.Output) *Model {
	m := &Model{Root: root, PerNode: map[plan.Node]Estimate{}}
	plan.Walk(root, func(n plan.Node) {
		e := Estimate{Rows: n.EstRows()}
		switch x := n.(type) {
		case *plan.Scan:
			scanned := float64(x.Table.Rows())
			e.Cycles = scanned * (cyScanRow + cyScanCol*float64(len(x.Cols)))
			if x.Filter != nil {
				e.Cycles += scanned * cyFilterRow
			}
		case *plan.Join:
			e.Cycles = x.Build.EstRows()*cyBuildRow +
				x.Probe.EstRows()*cyProbeRow +
				x.Est*cyMatchRow
		case *plan.GroupBy:
			e.Cycles = x.Input.EstRows()*cyGroupRow + x.Est*cyGroupEmit
		case *plan.GroupJoin:
			e.Cycles = x.Build.EstRows()*cyGJBuildRow +
				x.Probe.EstRows()*cyGJProbeRow +
				x.Est*cyGroupEmit
		case *plan.Output:
			e.Cycles = x.Input.EstRows() * cyOutputRow
		}
		m.PerNode[n] = e
		m.TotalCycles += e.Cycles
	})
	return m
}

// bloomMatchThreshold: above this estimated probe match fraction a bloom
// filter rejects too few probes to pay for its per-probe test.
const bloomMatchThreshold = 0.75

// smallBuildRows: hash tables at or below this size radix-partition into
// fewer partitions — per-partition merge overhead dominates tiny tables.
const smallBuildRows = 1024

// Decide picks the per-statement physical knobs from an annotated model,
// never *enabling* anything the configuration disabled: bloom filters
// are kept only when some join's estimated probe-miss fraction pays for
// the extra test, and the partition count shrinks when every hash table
// is small. Returns the effective (bloom, partitions) pair.
func Decide(m *Model, bloom bool, partitions int) (bool, int) {
	anyJoin := false
	worthBloom := false
	maxBuild := 0.0
	plan.Walk(m.Root, func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Join:
			anyJoin = true
			probe := x.Probe.EstRows()
			if probe > 0 && x.Est/probe < bloomMatchThreshold {
				worthBloom = true
			}
			if b := x.Build.EstRows(); b > maxBuild {
				maxBuild = b
			}
		case *plan.GroupJoin:
			if b := x.Build.EstRows(); b > maxBuild {
				maxBuild = b
			}
		case *plan.GroupBy:
			if b := x.Est; b > maxBuild {
				maxBuild = b
			}
		}
	})
	if bloom && anyJoin && !worthBloom {
		bloom = false
	}
	if partitions > 2 && maxBuild <= smallBuildRows {
		partitions = 2
	}
	return bloom, partitions
}

// shardMinRows: a driving scan below this size fits a handful of zones —
// splitting it further buys no pruning resolution and no attribution
// detail, so the shard count is clamped toward 1.
const shardMinRows = 4096

// shardSelectivityThreshold: a scan whose history-corrected output
// estimate is below this fraction of its table makes zone pruning
// worthwhile (some zones can be expected to fall entirely outside the
// predicate).
const shardSelectivityThreshold = 0.95

// DecideShards picks the per-statement sharded-execution knobs from an
// annotated model, never enabling anything the configuration disabled:
// the shard count never exceeds the request and shrinks to what the
// largest driving scan supports, and pruning is kept only when the
// observed-cardinality history suggests it can fire — a selective scan
// filter, or a join/group-join whose build side can ship bounds and bloom
// filters to the probe scans. Because the model's estimates come from the
// history-corrected planner, a statement whose filters *looked* opaque at
// first run gains pruning after Adapt observes its true cardinalities.
func DecideShards(m *Model, shards int, pruning bool) (int, bool) {
	if shards < 1 {
		return 0, false
	}
	maxScan := 0
	selective := false
	semiJoin := false
	plan.Walk(m.Root, func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Scan:
			rows := x.Table.Rows()
			if rows > maxScan {
				maxScan = rows
			}
			if x.Filter != nil && rows > 0 &&
				m.PerNode[n].Rows < shardSelectivityThreshold*float64(rows) {
				selective = true
			}
		case *plan.Join, *plan.GroupJoin:
			semiJoin = true
		}
	})
	for shards > 1 && maxScan < shardMinRows*shards {
		shards /= 2
	}
	return shards, pruning && (selective || semiJoin)
}
