// Package cost is the profile-fed cost layer over the planner: a cycle
// cost model annotating every plan node (Annotate), pluggable cardinality
// estimators for the planner's Estimator hook (Naive, Histogram,
// HistoryCorrected with fresh/stale/absent statistics sources), an
// execution-side collector that reads true per-operator row counts out of
// the attributed tuple counters (TrueRows), and the observed-cardinality
// history cache that closes the loop (History): Session.Adapt feeds true
// counts in, the next compile plans against them.
package cost

import (
	"sync"

	"repro/internal/sqlparse"
)

// materialDelta is the relative change in an entry's corrected rows that
// counts as "material": only material changes bump the history version,
// and only version changes are worth a cache-generation invalidation.
const materialDelta = 0.2

// ewmaAlpha weights the newest observation in the exponential moving
// average. 0.5 follows new workload shifts quickly while smoothing noise
// from partial runs.
const ewmaAlpha = 0.5

// History is the observed-cardinality cache: canonical plan-expression
// fingerprint (plan.Canon hashed with sqlparse.Hash64) → exponentially
// smoothed true output rows. It is shared by every session of a service
// and is safe for concurrent Observe/Lookup.
type History struct {
	mu      sync.RWMutex
	m       map[uint64]float64
	version uint64
}

// NewHistory returns an empty history cache.
func NewHistory() *History { return &History{m: map[uint64]float64{}} }

// Observe folds one true row count for a plan expression into the
// history and reports whether the entry changed materially (a new
// expression, or a shift beyond materialDelta) — the caller's cue to
// invalidate cached plans that were built against the old estimate.
func (h *History) Observe(canon string, rows int64) bool {
	if rows < 1 {
		rows = 1
	}
	fp := sqlparse.Hash64(canon)
	h.mu.Lock()
	defer h.mu.Unlock()
	old, ok := h.m[fp]
	if !ok {
		h.m[fp] = float64(rows)
		h.version++
		return true
	}
	next := old*(1-ewmaAlpha) + float64(rows)*ewmaAlpha
	h.m[fp] = next
	rel := (next - old) / old
	if rel < 0 {
		rel = -rel
	}
	if rel > materialDelta {
		h.version++
		return true
	}
	return false
}

// Lookup returns the smoothed observed rows for a plan expression.
func (h *History) Lookup(canon string) (float64, bool) {
	fp := sqlparse.Hash64(canon)
	h.mu.RLock()
	defer h.mu.RUnlock()
	r, ok := h.m[fp]
	return r, ok
}

// Len returns the number of remembered plan expressions.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.m)
}

// Version counts material changes; it bumps only when an Observe
// materially moved an entry, so pollers can cheaply detect staleness.
func (h *History) Version() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.version
}
