// Package cost is the profile-fed cost layer over the planner: a cycle
// cost model annotating every plan node (Annotate), pluggable cardinality
// estimators for the planner's Estimator hook (Naive, Histogram,
// HistoryCorrected with fresh/stale/absent statistics sources), an
// execution-side collector that reads true per-operator row counts out of
// the attributed tuple counters (TrueRows), and the observed-cardinality
// history cache that closes the loop (History): Session.Adapt feeds true
// counts in, the next compile plans against them.
package cost

import (
	"container/list"
	"sync"

	"repro/internal/sqlparse"
)

// materialDelta is the relative change in an entry's corrected rows that
// counts as "material": only material changes bump the history version,
// and only version changes are worth a cache-generation invalidation.
const materialDelta = 0.2

// ewmaAlpha weights the newest observation in the exponential moving
// average. 0.5 follows new workload shifts quickly while smoothing noise
// from partial runs.
const ewmaAlpha = 0.5

// DefaultHistoryCap bounds the history under churning workloads: a
// service that sees millions of distinct plan expressions (e.g. ad-hoc
// dashboards) keeps only the most recently touched ones. 4096 entries is
// ~100KB and far above any steady-state working set in the suite.
const DefaultHistoryCap = 4096

// histEntry is one LRU-tracked observation.
type histEntry struct {
	fp      uint64
	rows    float64
	touches uint64 // Observe count — the admission heat signal
}

// History is the observed-cardinality cache: canonical plan-expression
// fingerprint (plan.Canon hashed with sqlparse.Hash64) → exponentially
// smoothed true output rows, capacity-capped with LRU eviction (both
// Observe and Lookup refresh recency). It is shared by every session of
// a service and is safe for concurrent Observe/Lookup.
type History struct {
	mu      sync.Mutex
	m       map[uint64]*list.Element // fp → element holding *histEntry
	lru     *list.List               // front = most recently touched
	cap     int
	version uint64
}

// NewHistory returns an empty history cache with DefaultHistoryCap.
func NewHistory() *History { return NewHistoryCap(DefaultHistoryCap) }

// NewHistoryCap returns an empty history cache holding at most capacity
// entries (minimum 1).
func NewHistoryCap(capacity int) *History {
	if capacity < 1 {
		capacity = 1
	}
	return &History{m: map[uint64]*list.Element{}, lru: list.New(), cap: capacity}
}

// Observe folds one true row count for a plan expression into the
// history and reports whether the entry changed materially (a new
// expression, or a shift beyond materialDelta) — the caller's cue to
// invalidate cached plans that were built against the old estimate.
// Evictions do not bump the version: losing an entry reverts estimates
// to the planner's defaults, and the drift detector re-learns it.
func (h *History) Observe(canon string, rows int64) bool {
	if rows < 1 {
		rows = 1
	}
	fp := sqlparse.Hash64(canon)
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.m[fp]; ok {
		e := el.Value.(*histEntry)
		h.lru.MoveToFront(el)
		e.touches++
		old := e.rows
		e.rows = old*(1-ewmaAlpha) + float64(rows)*ewmaAlpha
		rel := (e.rows - old) / old
		if rel < 0 {
			rel = -rel
		}
		if rel > materialDelta {
			h.version++
			return true
		}
		return false
	}
	h.m[fp] = h.lru.PushFront(&histEntry{fp: fp, rows: float64(rows), touches: 1})
	for len(h.m) > h.cap {
		back := h.lru.Back()
		h.lru.Remove(back)
		delete(h.m, back.Value.(*histEntry).fp)
	}
	h.version++
	return true
}

// Lookup returns the smoothed observed rows for a plan expression and
// refreshes its recency.
func (h *History) Lookup(canon string) (float64, bool) {
	fp := sqlparse.Hash64(canon)
	h.mu.Lock()
	defer h.mu.Unlock()
	el, ok := h.m[fp]
	if !ok {
		return 0, false
	}
	h.lru.MoveToFront(el)
	return el.Value.(*histEntry).rows, true
}

// Touches returns how many times a plan expression has been observed —
// the heat signal the materialized-view admission policy reads.
func (h *History) Touches(canon string) uint64 {
	fp := sqlparse.Hash64(canon)
	h.mu.Lock()
	defer h.mu.Unlock()
	el, ok := h.m[fp]
	if !ok {
		return 0
	}
	return el.Value.(*histEntry).touches
}

// Len returns the number of remembered plan expressions.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.m)
}

// Cap returns the capacity bound.
func (h *History) Cap() int { return h.cap }

// Version counts material changes; it bumps only when an Observe
// materially moved an entry, so pollers can cheaply detect staleness.
func (h *History) Version() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.version
}
