package cost

// The execution-side true-cardinality collector. A counter-instrumented
// run (Options.TupleCounters) leaves one row counter per task in the
// artifact's counter region; the engine reads them back into
// Result.TupleCounts for serial and parallel runs alike. This file walks
// them up the attribution chain — task counter → Tagging Dictionary
// Log A → operator → plan node — and turns them into the per-expression
// truth the history cache and the CE harness consume.

import (
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/plan"
)

// TrueRows maps every plan node to its observed output row count. For a
// filtered scan the σ-filter operator's counter is the node's output
// (the scan counter counts scanned rows, estimate and truth both refer
// to surviving rows); every other node reads its own operator's counter
// under pipeline.OutputRolePriority. Nodes whose operator never counted
// (no tasks of a counted role) are absent from the result.
func TrueRows(pc *pipeline.Compiled, counts map[core.ComponentID]int64) map[plan.Node]int64 {
	if pc == nil || len(counts) == 0 {
		return nil
	}
	rows := pc.OperatorRows(counts)
	out := map[plan.Node]int64{}
	for n, op := range pc.OpIDs {
		id := op
		if fid, ok := pc.FilterOpIDs[n]; ok {
			id = fid
		}
		if r, ok := rows[id]; ok {
			out[n] = r
		}
	}
	return out
}

// ObserveTrueRows feeds one run's observed cardinalities into the
// history, keyed by each node's canonical plan expression, and reports
// whether any entry changed materially (the caller's invalidation cue).
// The plan root (Output) is skipped: its expression is its input's, and
// observing both would double-weight one expression.
func ObserveTrueRows(h *History, root *plan.Output, pc *pipeline.Compiled, counts map[core.ComponentID]int64) bool {
	true_ := TrueRows(pc, counts)
	if len(true_) == 0 {
		return false
	}
	material := false
	plan.Walk(root, func(n plan.Node) {
		if _, isOut := n.(*plan.Output); isOut {
			return
		}
		r, ok := true_[n]
		if !ok {
			return
		}
		if h.Observe(plan.Canon(n), r) {
			material = true
		}
	})
	return material
}
