package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
)

// ColMeta describes one output column of an operator.
type ColMeta struct {
	Qual, Name string
	Type       catalog.Type
	Dict       *catalog.Dict
}

// Label renders the column name for reports.
func (c ColMeta) Label() string {
	if c.Qual == "" {
		return c.Name
	}
	return c.Qual + "." + c.Name
}

// Node is a dataflow-graph operator.
type Node interface {
	// Out is the operator's output row schema.
	Out() []ColMeta
	// Children returns input operators (build side first for joins).
	Children() []Node
	// EstRows is the optimizer's cardinality estimate.
	EstRows() float64
	// BoundRows is a safe upper bound used to size hash-table arenas.
	BoundRows() int
	// Kind is a short operator-kind label ("tablescan", "hash join", ...).
	Kind() string
	// Describe renders the operator for plan displays.
	Describe() string
}

// Scan reads a base table with an optional pushed-down filter.
type Scan struct {
	Table  *catalog.Table
	Alias  string
	Filter PExpr // conjunction over positions in the scan's *output* row (indices into Cols); nil = none

	// Cols are the table column indices this scan outputs (pruned).
	Cols []int

	Est float64
}

func (s *Scan) Out() []ColMeta {
	out := make([]ColMeta, len(s.Cols))
	for i, ci := range s.Cols {
		c := s.Table.Cols[ci]
		out[i] = ColMeta{Qual: s.Alias, Name: c.Name, Type: c.Type, Dict: c.Dict}
	}
	return out
}
func (s *Scan) Children() []Node { return nil }
func (s *Scan) EstRows() float64 { return s.Est }

// BoundRows is the table's row *capacity*, not its current row count: the
// sizes derived from it (hash-table arenas, result buffers, column
// regions) are baked into compiled artifacts, which must keep serving
// every epoch the capacity admits while rows append underneath.
func (s *Scan) BoundRows() int { return s.Table.RowCap() }
func (s *Scan) Kind() string {
	if s.Filter != nil {
		return "tablescan+filter"
	}
	return "tablescan"
}
func (s *Scan) Describe() string {
	d := fmt.Sprintf("tablescan %s", s.Alias)
	if s.Filter != nil {
		d += fmt.Sprintf(" σ(%s)", PString(s.Filter))
	}
	return d
}

// Join is an inner hash equi-join. The build side's key must hash-match
// the probe side's key; Payload lists build-output positions carried into
// the join's output. Output schema: probe columns ++ build payload columns.
type Join struct {
	Build, Probe       Node
	BuildKey, ProbeKey PExpr
	Payload            []int // positions in Build.Out()

	// BuildUnique marks a unique build key (primary key), enabling
	// group-join fusion and tighter arena bounds.
	BuildUnique bool

	// Label distinguishes joins in reports, e.g. "join ord.".
	Label string

	Est float64
}

func (j *Join) Out() []ColMeta {
	out := append([]ColMeta{}, j.Probe.Out()...)
	b := j.Build.Out()
	for _, p := range j.Payload {
		out = append(out, b[p])
	}
	return out
}
func (j *Join) Children() []Node { return []Node{j.Build, j.Probe} }
func (j *Join) EstRows() float64 { return j.Est }
func (j *Join) BoundRows() int {
	b := j.Probe.BoundRows()
	if !j.BuildUnique {
		b *= 4 // fudge; the hash arena traps if ever exceeded
	}
	return b
}
func (j *Join) Kind() string { return "hash join" }
func (j *Join) Describe() string {
	name := j.Label
	if name == "" {
		name = "hash join"
	}
	return fmt.Sprintf("%s (%s = %s)", name, PString(j.BuildKey), PString(j.ProbeKey))
}

// AggSpec is one aggregate computed by GroupBy / GroupJoin.
type AggSpec struct {
	Fn   AggFn
	Arg  PExpr // over the input row; nil for count(*)
	Name string
}

// GroupBy is a hash aggregation with up to two grouping keys.
type GroupBy struct {
	Input    Node
	Keys     []PExpr
	KeyMetas []ColMeta
	Aggs     []AggSpec

	Est float64
}

func (g *GroupBy) Out() []ColMeta {
	out := append([]ColMeta{}, g.KeyMetas...)
	for _, a := range g.Aggs {
		out = append(out, ColMeta{Name: a.Name, Type: catalog.TInt})
	}
	return out
}
func (g *GroupBy) Children() []Node { return []Node{g.Input} }
func (g *GroupBy) EstRows() float64 { return g.Est }
func (g *GroupBy) BoundRows() int   { return g.Input.BoundRows() }
func (g *GroupBy) Kind() string     { return "group by" }
func (g *GroupBy) Describe() string {
	parts := make([]string, len(g.Keys))
	for i, k := range g.Keys {
		parts[i] = PString(k)
	}
	return fmt.Sprintf("group by %s", strings.Join(parts, ", "))
}

// GroupJoin is the fused group-by + join physical operator (§5.4, [31]):
// it builds one hash table on the build side's unique key, probes with the
// probe side while updating aggregate state in place, and emits one row
// per matched key. Aggregate arguments are over the *probe* row.
type GroupJoin struct {
	Build, Probe       Node
	BuildKey, ProbeKey PExpr
	KeyMeta            ColMeta
	Aggs               []AggSpec

	Est float64
}

func (g *GroupJoin) Out() []ColMeta {
	out := []ColMeta{g.KeyMeta}
	for _, a := range g.Aggs {
		out = append(out, ColMeta{Name: a.Name, Type: catalog.TInt})
	}
	return out
}
func (g *GroupJoin) Children() []Node { return []Node{g.Build, g.Probe} }
func (g *GroupJoin) EstRows() float64 { return g.Est }
func (g *GroupJoin) BoundRows() int   { return g.Build.BoundRows() }
func (g *GroupJoin) Kind() string     { return "groupjoin" }
func (g *GroupJoin) Describe() string {
	return fmt.Sprintf("groupjoin (%s = %s)", PString(g.BuildKey), PString(g.ProbeKey))
}

// ParamInfo is the encoding context of one bound parameter: how a
// session-supplied argument value must be encoded before being staged
// into the artifact's parameter region. The zero value means "raw int64".
type ParamInfo struct {
	Type catalog.Type
	Dict *catalog.Dict
}

// Output is the plan root: final projections plus host-side order/limit.
type Output struct {
	Input Node
	Exprs []PExpr
	Names []string

	// OrderBy are output-column indices to sort by (host-side); Desc
	// flags parallel them. Limit < 0 means no limit.
	OrderBy []int
	Desc    []bool
	Limit   int

	// Params describes the plan's bound parameters ($0..$N-1); empty for
	// fully-literal plans. Execution must supply exactly len(Params)
	// values.
	Params []ParamInfo
}

func (o *Output) Out() []ColMeta {
	out := make([]ColMeta, len(o.Exprs))
	in := o.Input.Out()
	for i, e := range o.Exprs {
		m := ColMeta{Name: o.Names[i], Type: catalog.TInt}
		if c, ok := e.(*PCol); ok {
			m.Type = in[c.Pos].Type
			m.Dict = in[c.Pos].Dict
		}
		out[i] = m
	}
	return out
}
func (o *Output) Children() []Node { return []Node{o.Input} }
func (o *Output) EstRows() float64 { return o.Input.EstRows() }
func (o *Output) BoundRows() int   { return o.Input.BoundRows() }
func (o *Output) Kind() string     { return "output" }
func (o *Output) Describe() string { return "output " + strings.Join(o.Names, ", ") }

// RowLess builds the ORDER BY comparator over result rows: column indices
// with descending flags, comparing dictionary-encoded strings by their
// decoded text (SQL collation) and everything else numerically.
func RowLess(orderBy []int, desc []bool, metas []ColMeta) func(a, b []int64) bool {
	return func(x, y []int64) bool {
		for k, col := range orderBy {
			a, b := x[col], y[col]
			if a == b {
				continue
			}
			lt := a < b
			if col < len(metas) && metas[col].Type == catalog.TStr && metas[col].Dict != nil {
				lt = metas[col].Dict.String(a) < metas[col].Dict.String(b)
				if metas[col].Dict.String(a) == metas[col].Dict.String(b) {
					continue
				}
			}
			if desc[k] {
				return !lt
			}
			return lt
		}
		return false
	}
}

// Walk visits the plan tree depth-first (children before node).
func Walk(n Node, fn func(Node)) {
	for _, c := range n.Children() {
		Walk(c, fn)
	}
	fn(n)
}

// Render draws the plan tree as indented text, with an optional per-node
// annotation (the profiler annotates operator cost percentages, Fig. 9b).
func Render(n Node, annotate func(Node) string) string {
	var sb strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		ann := ""
		if annotate != nil {
			if a := annotate(n); a != "" {
				ann = " " + a
			}
		}
		fmt.Fprintf(&sb, "%s%s%s\n", strings.Repeat("  ", depth), n.Describe(), ann)
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return sb.String()
}
