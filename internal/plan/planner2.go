package plan

import (
	"fmt"
)

// joinTree builds the join pipeline: one probe-side chain of hash joins,
// each building on the smaller input, unless hints force the shape
// (Fig. 10's two alternative plans).
func (p *planner) joinTree(scans map[string]*Scan, edges []joinEdge) (Node, *schema, error) {
	if len(p.aliases) == 1 {
		s := scans[p.aliases[0]]
		return s, &schema{cols: s.Out()}, nil
	}

	// Choose the probe base: forced by hint, otherwise the largest input
	// (the fact table streams through the pipeline; Umbra does the same).
	base := p.q.Hints.ProbeBase
	if base == "" {
		for _, a := range p.aliases {
			if base == "" || scans[a].Est > scans[base].Est {
				base = a
			}
		}
	} else if _, ok := p.tables[base]; !ok {
		return nil, nil, fmt.Errorf("plan: hint probe base %q is not a table alias", base)
	}

	joined := map[string]bool{base: true}
	var cur Node = scans[base]
	curSchema := &schema{cols: cur.Out()}

	order := p.q.Hints.ProbeOrder
	remaining := len(p.aliases) - 1
	for remaining > 0 {
		var next string
		if len(order) > 0 {
			next, order = order[0], order[1:]
			if joined[next] {
				return nil, nil, fmt.Errorf("plan: hint repeats alias %q", next)
			}
			if _, ok := p.tables[next]; !ok {
				return nil, nil, fmt.Errorf("plan: hint alias %q unknown", next)
			}
		} else {
			// Greedy: among joinable tables, take the smallest build side.
			for _, a := range p.aliases {
				if joined[a] || !hasEdge(edges, joined, a) {
					continue
				}
				if next == "" || scans[a].Est < scans[next].Est {
					next = a
				}
			}
			if next == "" {
				return nil, nil, fmt.Errorf("plan: query graph is disconnected (cross products unsupported)")
			}
		}

		edge, err := pickEdge(edges, joined, next)
		if err != nil {
			return nil, nil, err
		}
		build := scans[next]
		buildSchema := &schema{cols: build.Out()}

		// Key columns: edge side belonging to `next` is the build key.
		bCol, pQual, pCol := edge.colB, edge.aliasA, edge.colA
		if edge.aliasA == next {
			bCol, pQual, pCol = edge.colA, edge.aliasB, edge.colB
		}
		bPos, err := buildSchema.find(next, bCol)
		if err != nil {
			return nil, nil, err
		}
		pPos, err := curSchema.find(pQual, pCol)
		if err != nil {
			return nil, nil, err
		}

		payload := p.payloadCols(next, build, bCol)
		kc := build.Table.Col(bCol)
		j := &Join{
			Build:       build,
			Probe:       cur,
			BuildKey:    &PCol{Pos: bPos},
			ProbeKey:    &PCol{Pos: pPos},
			Payload:     payload,
			BuildUnique: kc != nil && kc.Unique,
			Label:       "join " + next,
		}
		d := p.colStats(build.Table, bCol).Distinct
		if d < 1 {
			d = 1
		}
		j.Est = cur.EstRows() * build.Est / float64(d)
		if j.Est < 1 {
			j.Est = 1
		}
		p.correctRows(j)
		// New schema: probe columns ++ payload columns.
		cols := append([]ColMeta{}, curSchema.cols...)
		for _, pi := range payload {
			cols = append(cols, buildSchema.cols[pi])
		}
		cur, curSchema = j, &schema{cols: cols}
		joined[next] = true
		remaining--
	}
	return cur, curSchema, nil
}

func hasEdge(edges []joinEdge, joined map[string]bool, a string) bool {
	for _, e := range edges {
		if e.aliasA == a && joined[e.aliasB] || e.aliasB == a && joined[e.aliasA] {
			return true
		}
	}
	return false
}

func pickEdge(edges []joinEdge, joined map[string]bool, next string) (joinEdge, error) {
	var found []joinEdge
	for _, e := range edges {
		if e.aliasA == next && joined[e.aliasB] || e.aliasB == next && joined[e.aliasA] {
			found = append(found, e)
		}
	}
	switch len(found) {
	case 0:
		return joinEdge{}, fmt.Errorf("plan: no join predicate connects %q", next)
	case 1:
		return found[0], nil
	default:
		return joinEdge{}, fmt.Errorf("plan: composite join keys to %q unsupported", next)
	}
}

// payloadCols lists which of the build scan's output positions must be
// carried into the join output (column pruning: everything the rest of the
// query still references; the filter-only columns stay behind).
func (p *planner) payloadCols(alias string, build *Scan, keyCol string) []int {
	needed := map[string]bool{}
	collect := func(e Expr) {
		var refs []*ColRef
		exprCols(e, &refs)
		for _, r := range refs {
			if a, err := p.qualify(r); err == nil && a == alias {
				needed[r.Name] = true
			}
		}
	}
	for _, s := range p.q.Select {
		collect(s.Expr)
	}
	for _, g := range p.q.GroupBy {
		collect(g)
	}
	for _, o := range p.q.OrderBy {
		collect(o.Expr)
	}
	// Join-edge columns must survive too: a later join may key on one of
	// this build side's columns.
	for _, conj := range flattenAnd(p.q.Where) {
		var refs []*ColRef
		exprCols(conj, &refs)
		aliases := map[string]bool{}
		for _, r := range refs {
			if a, err := p.qualify(r); err == nil {
				aliases[a] = true
			}
		}
		if len(aliases) >= 2 {
			collect(conj)
		}
	}
	var out []int
	for i, c := range build.Out() {
		if needed[c.Name] {
			out = append(out, i)
		}
	}
	return out
}

// aggregate inserts GroupBy (or the fused GroupJoin) when the query
// aggregates, and returns the mapping of select items onto the new top
// node's output (nil when no aggregation happens).
func (p *planner) aggregate(cur Node, curSchema *schema) (Node, *schema, error) {
	hasAgg := len(p.q.GroupBy) > 0
	for _, s := range p.q.Select {
		if _, ok := s.Expr.(*Agg); ok {
			hasAgg = true
		}
	}
	if !hasAgg {
		return cur, curSchema, nil
	}
	if len(p.q.GroupBy) > 2 {
		return nil, nil, fmt.Errorf("plan: at most two GROUP BY keys supported")
	}

	keys := []PExpr{&PConst{Val: 0}}
	keyMetas := []ColMeta{{Name: "<group>"}}
	if len(p.q.GroupBy) > 0 {
		keys = keys[:0]
		keyMetas = keyMetas[:0]
		for _, ge := range p.q.GroupBy {
			k, err := bind(ge, curSchema)
			if err != nil {
				return nil, nil, err
			}
			keys = append(keys, k)
			if pc, ok := k.(*PCol); ok {
				keyMetas = append(keyMetas, curSchema.cols[pc.Pos])
			} else {
				keyMetas = append(keyMetas, ColMeta{Name: ge.String()})
			}
		}
	}
	key, keyMeta := keys[0], keyMetas[0]

	var aggs []AggSpec
	for i, s := range p.q.Select {
		a, ok := s.Expr.(*Agg)
		if !ok {
			continue
		}
		spec := AggSpec{Fn: a.Fn, Name: s.Alias}
		if spec.Name == "" {
			spec.Name = a.String()
		}
		if a.Arg != nil {
			arg, err := bind(a.Arg, curSchema)
			if err != nil {
				return nil, nil, err
			}
			spec.Arg = arg
		} else if a.Fn != AggCount {
			return nil, nil, fmt.Errorf("plan: %s requires an argument", a.Fn)
		}
		_ = i
		aggs = append(aggs, spec)
	}

	// Group-join fusion (§5.4): single group key == probe key of the top
	// join, unique build key, aggregates over probe-side columns only.
	if j, ok := cur.(*Join); ok && !p.q.Hints.NoGroupJoin && len(p.q.GroupBy) == 1 && len(keys) == 1 {
		if gjApplicable(j, key, aggs) {
			gj := &GroupJoin{
				Build:    j.Build,
				Probe:    j.Probe,
				BuildKey: j.BuildKey,
				ProbeKey: j.ProbeKey,
				KeyMeta:  keyMeta,
				Aggs:     aggs,
				Est:      j.Build.EstRows(),
			}
			p.correctRows(gj)
			out := &schema{cols: gj.Out()}
			return gj, out, nil
		}
	}

	_ = key
	_ = keyMeta
	g := &GroupBy{Input: cur, Keys: keys, KeyMetas: keyMetas, Aggs: aggs}
	g.Est = cur.EstRows() / 3
	if g.Est < 1 {
		g.Est = 1
	}
	p.correctRows(g)
	return g, &schema{cols: g.Out()}, nil
}

// gjApplicable checks the group-join fusion preconditions.
func gjApplicable(j *Join, key PExpr, aggs []AggSpec) bool {
	if !j.BuildUnique {
		return false
	}
	kc, ok := key.(*PCol)
	pk, ok2 := j.ProbeKey.(*PCol)
	if !ok || !ok2 || kc.Pos != pk.Pos {
		return false
	}
	probeWidth := len(j.Probe.Out())
	for _, a := range aggs {
		if a.Arg == nil {
			continue
		}
		used := map[int]bool{}
		ColsUsed(a.Arg, used)
		for pos := range used {
			if pos >= probeWidth {
				return false // aggregate reads build payload
			}
		}
	}
	return true
}

// output binds the final projections and host-side ORDER BY / LIMIT.
func (p *planner) output(top Node, topSchema *schema) (*Output, error) {
	o := &Output{Input: top, Limit: -1}
	if p.q.Limit > 0 {
		o.Limit = p.q.Limit
	}

	nKeys := 0
	grouped := false
	switch g := top.(type) {
	case *GroupBy:
		grouped, nKeys = true, len(g.Keys)
	case *GroupJoin:
		grouped, nKeys = true, 1
	}

	// Group keys occupy the first nKeys output positions; aggregates
	// follow in select-list order.
	keyPos := func(e Expr) int {
		for i, ge := range p.q.GroupBy {
			if i < nKeys && e.String() == ge.String() {
				return i
			}
		}
		return -1
	}

	aggIdx := 0
	for _, s := range p.q.Select {
		name := s.Alias
		if name == "" {
			name = s.Expr.String()
		}
		var pe PExpr
		if grouped {
			if _, isAgg := s.Expr.(*Agg); isAgg {
				pe = &PCol{Pos: nKeys + aggIdx}
				aggIdx++
			} else if kp := keyPos(s.Expr); kp >= 0 {
				pe = &PCol{Pos: kp}
			} else {
				return nil, fmt.Errorf("plan: select item %s is neither a group key nor an aggregate", s.Expr)
			}
		} else {
			var err error
			pe, err = bind(s.Expr, topSchema)
			if err != nil {
				return nil, err
			}
		}
		o.Exprs = append(o.Exprs, pe)
		o.Names = append(o.Names, name)
	}

	for _, ob := range p.q.OrderBy {
		idx := -1
		if c, isConst := ob.Expr.(*Const); isConst {
			// ORDER BY <ordinal>.
			if c.Val >= 1 && int(c.Val) <= len(o.Exprs) {
				idx = int(c.Val) - 1
			}
		} else {
			for i, s := range p.q.Select {
				if s.Expr.String() == ob.Expr.String() || (s.Alias != "" && s.Alias == ob.Expr.String()) {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("plan: ORDER BY item %s not in select list", ob.Expr)
		}
		o.OrderBy = append(o.OrderBy, idx)
		o.Desc = append(o.Desc, ob.Desc)
	}
	return o, nil
}
