package plan

import (
	"testing"

	"repro/internal/catalog"
)

func TestTwoKeyGroupByPlan(t *testing.T) {
	out := plan1(t, &Query{
		Tables: []TableRef{{Name: "orders"}},
		Select: []SelectItem{
			{Expr: Col("o_custkey")},
			{Expr: Col("o_orderdate")},
			{Expr: &Agg{Fn: AggCount}, Alias: "n"},
		},
		GroupBy: []Expr{Col("o_custkey"), Col("o_orderdate")},
		Limit:   -1,
	})
	g, ok := out.Input.(*GroupBy)
	if !ok {
		t.Fatalf("input is %T", out.Input)
	}
	if len(g.Keys) != 2 || len(g.KeyMetas) != 2 {
		t.Fatalf("keys = %d", len(g.Keys))
	}
	// Output schema: key0, key1, then the aggregate.
	outCols := g.Out()
	if outCols[0].Name != "o_custkey" || outCols[1].Name != "o_orderdate" {
		t.Fatalf("key metas: %+v", outCols[:2])
	}
	// Select mapping: positions 0, 1, then agg at 2.
	for i, want := range []int{0, 1, 2} {
		if out.Exprs[i].(*PCol).Pos != want {
			t.Fatalf("select item %d mapped to %d", i, out.Exprs[i].(*PCol).Pos)
		}
	}
}

func TestTwoKeySelectOrderIndependent(t *testing.T) {
	// Select list order differs from GROUP BY order.
	out := plan1(t, &Query{
		Tables: []TableRef{{Name: "orders"}},
		Select: []SelectItem{
			{Expr: &Agg{Fn: AggCount}, Alias: "n"},
			{Expr: Col("o_orderdate")},
			{Expr: Col("o_custkey")},
		},
		GroupBy: []Expr{Col("o_custkey"), Col("o_orderdate")},
		Limit:   -1,
	})
	// agg → pos 2; o_orderdate → key index 1; o_custkey → key index 0.
	if out.Exprs[0].(*PCol).Pos != 2 || out.Exprs[1].(*PCol).Pos != 1 || out.Exprs[2].(*PCol).Pos != 0 {
		t.Fatalf("mapping: %v %v %v", out.Exprs[0], out.Exprs[1], out.Exprs[2])
	}
}

func TestNoGroupJoinFusionWithTwoKeys(t *testing.T) {
	out := plan1(t, &Query{
		Tables: []TableRef{{Name: "lineitem"}, {Name: "orders"}},
		Where:  []Expr{Eq(Col("o_orderkey"), Col("l_orderkey"))},
		Select: []SelectItem{
			{Expr: Col("l_orderkey")},
			{Expr: Col("o_custkey")},
			{Expr: &Agg{Fn: AggCount}, Alias: "n"},
		},
		GroupBy: []Expr{Col("l_orderkey"), Col("o_custkey")},
		Limit:   -1,
	})
	if _, fused := out.Input.(*GroupJoin); fused {
		t.Fatal("two-key aggregation must not fuse into a groupjoin")
	}
}

func TestRowLessDictCollation(t *testing.T) {
	d := catalog.NewDict()
	// Insertion order deliberately differs from lexicographic order.
	z := d.ID("zebra")
	a := d.ID("apple")
	metas := []ColMeta{{Type: catalog.TStr, Dict: d}}
	less := RowLess([]int{0}, []bool{false}, metas)
	if !less([]int64{a}, []int64{z}) {
		t.Fatal("apple should sort before zebra despite larger dict id")
	}
	if less([]int64{z}, []int64{a}) {
		t.Fatal("zebra before apple?")
	}
	// Descending flips it.
	desc := RowLess([]int{0}, []bool{true}, metas)
	if !desc([]int64{z}, []int64{a}) {
		t.Fatal("descending collation broken")
	}
}

func TestRowLessNumericTieBreak(t *testing.T) {
	metas := []ColMeta{{Type: catalog.TInt}, {Type: catalog.TInt}}
	less := RowLess([]int{0, 1}, []bool{false, true}, metas)
	if !less([]int64{1, 5}, []int64{2, 5}) {
		t.Fatal("primary ascending broken")
	}
	if !less([]int64{1, 9}, []int64{1, 5}) {
		t.Fatal("secondary descending broken")
	}
	if less([]int64{1, 5}, []int64{1, 5}) {
		t.Fatal("equal rows must not be less")
	}
}
