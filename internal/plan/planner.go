package plan

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
)

// TableRef names a table in the FROM clause.
type TableRef struct{ Name, Alias string }

// SelectItem is one projection.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY entry (bound against the select list).
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Hints let experiments force specific physical plans (the optimizer
// use case of Fig. 10 compares two hand-picked join orders).
type Hints struct {
	// ProbeBase forces the alias driving the probe pipeline.
	ProbeBase string
	// ProbeOrder forces the sequence of build-side aliases (probed in
	// this order along the pipeline).
	ProbeOrder []string
	// NoGroupJoin disables group-join fusion.
	NoGroupJoin bool
}

// Query is the bound-but-unplanned query form produced by the SQL parser
// (or constructed programmatically by benchmarks).
type Query struct {
	Tables  []TableRef
	Where   []Expr // conjuncts
	Select  []SelectItem
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   int // <0: none
	Hints   Hints

	// NumParams is the number of bound parameters ($0..$N-1) the query
	// expects at execution time; the parser sets it from the highest
	// placeholder index seen.
	NumParams int
}

// schema tracks qualified column names → positions during planning.
type schema struct {
	cols []ColMeta
}

func (s *schema) find(qual, name string) (int, error) {
	found := -1
	for i, c := range s.cols {
		if c.Name != name {
			continue
		}
		if qual != "" && c.Qual != qual {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("plan: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("plan: unknown column %s.%s", qual, name)
	}
	return found, nil
}

// bind resolves an expression against a schema.
func bind(e Expr, s *schema) (PExpr, error) {
	switch x := e.(type) {
	case *Const:
		return &PConst{Val: x.Val}, nil
	case *Param:
		return &PParam{Idx: x.Idx}, nil
	case *ColRef:
		pos, err := s.find(x.Qual, x.Name)
		if err != nil {
			return nil, err
		}
		return &PCol{Pos: pos}, nil
	case *StrConst:
		return nil, fmt.Errorf("plan: string literal %q outside comparison", x.S)
	case *Bin:
		// String and date literals take their encoding from the column
		// they are compared with.
		if x.Op.IsComparison() {
			if lit, col, flip, ok := litCmp(x); ok {
				pcol, err := bind(col, s)
				if err != nil {
					return nil, err
				}
				pc, ok2 := pcol.(*PCol)
				if !ok2 {
					return nil, fmt.Errorf("plan: literal compared with non-column")
				}
				v, err := encodeLiteral(lit, s.cols[pc.Pos])
				if err != nil {
					return nil, err
				}
				l, r := PExpr(pcol), PExpr(&PConst{Val: v})
				if flip {
					l, r = r, l
				}
				return &PBin{Op: x.Op, L: l, R: r}, nil
			}
		}
		l, err := bind(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := bind(x.R, s)
		if err != nil {
			return nil, err
		}
		if x.Op.IsComparison() {
			// Parameters compared with a column take that column's
			// encoding (dictionary, date format) — same rule as string
			// literals, but resolved at execution time.
			noteParamMeta(x.L, r, s)
			noteParamMeta(x.R, l, s)
		}
		return &PBin{Op: x.Op, L: l, R: r}, nil
	case *Agg:
		return nil, fmt.Errorf("plan: aggregate %s in scalar context", x)
	}
	return nil, fmt.Errorf("plan: cannot bind %T", e)
}

// noteParamMeta records a parameter's encoding context when its
// comparison partner bound to a plain column reference.
func noteParamMeta(e Expr, other PExpr, s *schema) {
	pa, ok := e.(*Param)
	if !ok {
		return
	}
	if pc, ok := other.(*PCol); ok {
		pa.Typ = s.cols[pc.Pos].Type
		pa.Dict = s.cols[pc.Pos].Dict
	}
}

// litCmp detects comparisons between a column and a string literal.
func litCmp(b *Bin) (lit *StrConst, col Expr, flip, ok bool) {
	if s, o := b.L.(*StrConst); o {
		return s, b.R, true, true
	}
	if s, o := b.R.(*StrConst); o {
		return s, b.L, false, true
	}
	return nil, nil, false, false
}

func encodeLiteral(lit *StrConst, meta ColMeta) (int64, error) {
	switch meta.Type {
	case catalog.TDate:
		return catalog.ParseDate(lit.S)
	case catalog.TStr:
		if meta.Dict == nil {
			return -1, nil
		}
		if id, ok := meta.Dict.Lookup(lit.S); ok {
			return id, nil
		}
		return -1, nil // no row can match
	default:
		return 0, fmt.Errorf("plan: string literal %q compared with %s column", lit.S, meta.Type)
	}
}

// exprCols collects all column references in an expression.
func exprCols(e Expr, into *[]*ColRef) {
	switch x := e.(type) {
	case *ColRef:
		*into = append(*into, x)
	case *Bin:
		exprCols(x.L, into)
		exprCols(x.R, into)
	case *Agg:
		if x.Arg != nil {
			exprCols(x.Arg, into)
		}
	}
}

// Estimator hooks external cardinality knowledge into planning. The
// planner's own heuristics stay the backbone; an estimator can swap the
// statistics they read (stats-health experiments), refine a predicate's
// selectivity (histograms), or correct a whole plan expression's output
// estimate (the observed-cardinality history, keyed by Canon). Every
// method may decline (ok=false) to fall back to the built-in behavior.
//
// Corrected estimates feed the same decisions the heuristic ones do:
// probe-base and greedy build-order selection in joinTree, group-join
// fusion by way of the shapes those choices produce, and the engine's
// physical knobs (bloom filters, partition counts) via the cost model.
type Estimator interface {
	// ColStats overrides the statistics the planner reads for a
	// base-table column; ok=false uses the table's own (fresh) stats.
	ColStats(t *catalog.Table, col string) (catalog.Stats, bool)
	// Selectivity overrides one pushed-down predicate's estimated pass
	// fraction; heuristic is the stats-based estimate already computed.
	Selectivity(t *catalog.Table, col string, op BinOp, val int64, heuristic float64) (float64, bool)
	// Rows corrects a plan expression's estimated output cardinality;
	// canon is the node's canonical expression text (Canon).
	Rows(canon string, est float64) (float64, bool)
}

// planner carries binding state.
type planner struct {
	cat     *catalog.Catalog
	q       *Query
	tables  map[string]*catalog.Table // by alias
	aliases []string
	est     Estimator // nil: pure heuristics
}

// Plan turns a query into an optimized operator tree.
func Plan(cat *catalog.Catalog, q *Query) (*Output, error) {
	return PlanWith(cat, q, nil)
}

// PlanWith plans under an estimator hook (nil behaves like Plan).
func PlanWith(cat *catalog.Catalog, q *Query, est Estimator) (*Output, error) {
	p := &planner{cat: cat, q: q, tables: map[string]*catalog.Table{}, est: est}
	for _, tr := range q.Tables {
		t, err := cat.Table(tr.Name)
		if err != nil {
			return nil, err
		}
		alias := tr.Alias
		if alias == "" {
			alias = tr.Name
		}
		if _, dup := p.tables[alias]; dup {
			return nil, fmt.Errorf("plan: duplicate alias %q", alias)
		}
		p.tables[alias] = t
		p.aliases = append(p.aliases, alias)
	}
	return p.plan()
}

// conjunct classification.
type joinEdge struct {
	aliasA, colA string
	aliasB, colB string
}

func (p *planner) qualify(c *ColRef) (string, error) {
	if c.Qual != "" {
		if _, ok := p.tables[c.Qual]; !ok {
			return "", fmt.Errorf("plan: unknown alias %q", c.Qual)
		}
		return c.Qual, nil
	}
	owner := ""
	for _, a := range p.aliases {
		if p.tables[a].Col(c.Name) != nil {
			if owner != "" {
				return "", fmt.Errorf("plan: ambiguous column %q", c.Name)
			}
			owner = a
		}
	}
	if owner == "" {
		return "", fmt.Errorf("plan: unknown column %q", c.Name)
	}
	return owner, nil
}

func (p *planner) plan() (*Output, error) {
	// 1. Classify WHERE conjuncts into per-table filters and join edges.
	filters := map[string][]Expr{}
	var edges []joinEdge
	for _, conj := range flattenAnd(p.q.Where) {
		var refs []*ColRef
		exprCols(conj, &refs)
		seen := map[string]bool{}
		for _, r := range refs {
			a, err := p.qualify(r)
			if err != nil {
				return nil, err
			}
			seen[a] = true
		}
		switch len(seen) {
		case 0:
			return nil, fmt.Errorf("plan: constant predicate unsupported: %s", conj)
		case 1:
			for a := range seen {
				filters[a] = append(filters[a], conj)
			}
		case 2:
			b, ok := conj.(*Bin)
			if !ok || b.Op != OpEq {
				return nil, fmt.Errorf("plan: only equi-join predicates supported: %s", conj)
			}
			lc, lok := b.L.(*ColRef)
			rc, rok := b.R.(*ColRef)
			if !lok || !rok {
				return nil, fmt.Errorf("plan: join predicate must compare columns: %s", conj)
			}
			la, _ := p.qualify(lc)
			ra, _ := p.qualify(rc)
			edges = append(edges, joinEdge{la, lc.Name, ra, rc.Name})
		default:
			return nil, fmt.Errorf("plan: predicate spans >2 tables: %s", conj)
		}
	}

	// 2. Column requirements per alias.
	req := p.requiredColumns()

	// 3. Build scans.
	scans := map[string]*Scan{}
	for _, a := range p.aliases {
		s, err := p.buildScan(a, req[a], filters[a])
		if err != nil {
			return nil, err
		}
		scans[a] = s
	}

	// 4. Join ordering.
	cur, curSchema, err := p.joinTree(scans, edges)
	if err != nil {
		return nil, err
	}

	// 5. Aggregation.
	top, topSchema, err := p.aggregate(cur, curSchema)
	if err != nil {
		return nil, err
	}

	// 6. Output projections + ORDER BY/LIMIT.
	out, err := p.output(top, topSchema)
	if err != nil {
		return nil, err
	}

	// 7. Parameter manifest: binding recorded each parameter's encoding
	// context in the Query's Param nodes; collect it onto the plan root so
	// the executor can encode session arguments without the source query.
	out.Params, err = p.paramInfos()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// paramInfos walks the query's expression trees and assembles the
// per-parameter encoding manifest.
func (p *planner) paramInfos() ([]ParamInfo, error) {
	var params []*Param
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Param:
			params = append(params, x)
		case *Bin:
			walk(x.L)
			walk(x.R)
		case *Agg:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	for _, c := range p.q.Where {
		walk(c)
	}
	for _, s := range p.q.Select {
		walk(s.Expr)
	}
	for _, g := range p.q.GroupBy {
		walk(g)
	}
	for _, o := range p.q.OrderBy {
		walk(o.Expr)
	}
	n := p.q.NumParams
	for _, pa := range params {
		if pa.Idx < 0 {
			return nil, fmt.Errorf("plan: negative parameter index $%d", pa.Idx)
		}
		if pa.Idx >= n {
			n = pa.Idx + 1 // programmatic queries may leave NumParams unset
		}
	}
	if n == 0 {
		return nil, nil
	}
	infos := make([]ParamInfo, n)
	for _, pa := range params {
		infos[pa.Idx] = ParamInfo{Type: pa.Typ, Dict: pa.Dict}
	}
	return infos, nil
}

func flattenAnd(conjs []Expr) []Expr {
	var out []Expr
	var rec func(e Expr)
	rec = func(e Expr) {
		if b, ok := e.(*Bin); ok && b.Op == OpAnd {
			rec(b.L)
			rec(b.R)
			return
		}
		out = append(out, e)
	}
	for _, c := range conjs {
		rec(c)
	}
	return out
}

// requiredColumns finds, per alias, the set of column names referenced
// anywhere in the query.
func (p *planner) requiredColumns() map[string]map[string]bool {
	req := map[string]map[string]bool{}
	for _, a := range p.aliases {
		req[a] = map[string]bool{}
	}
	collect := func(e Expr) {
		var refs []*ColRef
		exprCols(e, &refs)
		for _, r := range refs {
			if a, err := p.qualify(r); err == nil {
				req[a][r.Name] = true
			}
		}
	}
	for _, c := range p.q.Where {
		collect(c)
	}
	for _, s := range p.q.Select {
		collect(s.Expr)
	}
	for _, g := range p.q.GroupBy {
		collect(g)
	}
	for _, o := range p.q.OrderBy {
		collect(o.Expr)
	}
	return req
}

func (p *planner) buildScan(alias string, cols map[string]bool, filterExprs []Expr) (*Scan, error) {
	t := p.tables[alias]
	var idxs []int
	for name := range cols {
		ci := t.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("plan: table %s has no column %s", t.Name, name)
		}
		idxs = append(idxs, ci)
	}
	sort.Ints(idxs)
	if len(idxs) == 0 {
		idxs = []int{0} // degenerate count(*)-style scan
	}
	s := &Scan{Table: t, Alias: alias, Cols: idxs}
	sch := &schema{cols: s.Out()}
	sel := 1.0
	var filter PExpr
	for _, fe := range filterExprs {
		pf, err := bind(fe, sch)
		if err != nil {
			return nil, err
		}
		if filter == nil {
			filter = pf
		} else {
			filter = &PBin{Op: OpAnd, L: filter, R: pf}
		}
		sel *= p.selectivity(s, pf)
	}
	s.Filter = filter
	s.Est = float64(t.Rows()) * sel
	if s.Est < 1 {
		s.Est = 1
	}
	p.correctRows(s)
	return s, nil
}

// colStats reads a column's statistics through the estimator hook.
func (p *planner) colStats(t *catalog.Table, col string) catalog.Stats {
	if p.est != nil {
		if st, ok := p.est.ColStats(t, col); ok {
			return st
		}
	}
	return t.ColStats(col)
}

// correctRows lets the estimator replace a freshly-estimated node's
// output cardinality (history-corrected re-planning).
func (p *planner) correctRows(n Node) {
	if p.est == nil {
		return
	}
	r, ok := p.est.Rows(Canon(n), n.EstRows())
	if !ok {
		return
	}
	if r < 1 {
		r = 1
	}
	switch x := n.(type) {
	case *Scan:
		x.Est = r
	case *Join:
		x.Est = r
	case *GroupBy:
		x.Est = r
	case *GroupJoin:
		x.Est = r
	}
}

// selectivity estimates a predicate's pass fraction from column stats.
func (p *planner) selectivity(s *Scan, f PExpr) float64 {
	b, ok := f.(*PBin)
	if !ok {
		return 0.33
	}
	col, okc := b.L.(*PCol)
	c, okv := b.R.(*PConst)
	if !okc || !okv {
		return 0.33
	}
	name := s.Out()[col.Pos].Name
	st := p.colStats(s.Table, name)
	var sel float64
	switch b.Op {
	case OpEq:
		if st.Distinct > 0 {
			sel = 1.0 / float64(st.Distinct)
		} else {
			sel = 0.1
		}
	case OpLt, OpLe:
		sel = rangeFraction(st, c.Val, true)
	case OpGt, OpGe:
		sel = rangeFraction(st, c.Val, false)
	case OpNe:
		sel = 0.9
	default:
		sel = 0.33
	}
	if p.est != nil {
		if s2, ok := p.est.Selectivity(s.Table, name, b.Op, c.Val, sel); ok {
			return s2
		}
	}
	return sel
}

func rangeFraction(st catalog.Stats, v int64, below bool) float64 {
	if st.Max <= st.Min {
		return 0.5
	}
	f := float64(v-st.Min) / float64(st.Max-st.Min)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	if below {
		return f
	}
	return 1 - f
}
