package plan

// Plan-expression fingerprints: the identity under which observed
// cardinalities are remembered across compilations.
//
// Canon renders a plan node's *logical expression* — which rows it
// produces, not how — as canonical text, and Fingerprint hashes it
// (64-bit FNV-1a, the same construction sqlparse.Normalize applies to
// statement text). The rendering is chosen so that structurally equal
// expressions collide and physically different plans for the same
// expression collide too:
//
//   - aliases disappear: columns are rendered as <relation>.<column>
//     where <relation> is the base scan's own canon, so "lineitem l1"
//     and "lineitem x" fingerprint identically;
//   - projection does not matter: a scan's canon carries the table and
//     the filter, never the pruned column list — cardinality is a
//     property of the rows, not of which columns survive;
//   - literals dedup by value: a filter constant renders as #<value>,
//     so two occurrences of the same value are one expression and two
//     different values are two;
//   - filter conjuncts and commutative operands are sorted, so
//     "a < 4 and b = 2" and "b = 2 and a < 4" are one expression;
//   - join trees flatten to the *set* of base relations plus the set of
//     join edges: every join order of the same relations is one
//     expression, which is exactly what a cardinality cache wants
//     (output size is order-independent);
//   - a group-join renders as the group-by over its underlying join, so
//     the fused and unfused physical forms of one aggregation share a
//     history entry.
//
// The history cache (package cost) keys observations by these
// fingerprints; the planner consults it through the Estimator hook.

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Canon returns the canonical text of a node's plan expression.
func Canon(n Node) string {
	c, _ := canonInfo(n)
	return c
}

// Fingerprint returns the 64-bit FNV-1a hash of Canon(n).
func Fingerprint(n Node) uint64 {
	h := fnv.New64a()
	h.Write([]byte(Canon(n)))
	return h.Sum64()
}

// Shape renders a node's *physical* tree — the counterpart of Canon.
// Where Canon deliberately erases physical choices (join order, fused
// vs. unfused aggregation) so one expression keeps one history entry,
// Shape preserves them: which side builds, how joins nest, whether an
// aggregation fused into a group-join. Two plans with equal Canon but
// different Shape compute the same rows differently — the cue the
// adaptive loop uses to decide whether re-planning under an updated
// history would actually change the served artifact.
func Shape(n Node) string {
	switch x := n.(type) {
	case *Scan:
		return scanCanon(x)
	case *Join:
		return "hjoin(build=" + Shape(x.Build) + ",probe=" + Shape(x.Probe) + ")"
	case *GroupBy:
		return "groupby(" + Shape(x.Input) + ")"
	case *GroupJoin:
		return "groupjoin(build=" + Shape(x.Build) + ",probe=" + Shape(x.Probe) + ")"
	case *Output:
		return Shape(x.Input)
	default:
		return "node{" + n.Kind() + "}"
	}
}

// canonInfo renders a node's canon plus one canonical name per output
// column (base columns render as <scan canon>.<column>; computed columns
// render as their expression text). Column names feed the parent's key
// and filter rendering, which is how alias and projection independence
// propagate up the tree.
func canonInfo(n Node) (canon string, cols []string) {
	switch x := n.(type) {
	case *Scan:
		canon = scanCanon(x)
		cols = make([]string, len(x.Cols))
		for i, ci := range x.Cols {
			cols[i] = canon + "." + x.Table.Cols[ci].Name
		}
		return canon, cols
	case *Join:
		rels, edges, bCols, pCols := joinParts(x)
		canon = joinCanon(rels, edges)
		cols = append(cols, pCols...)
		for _, pi := range x.Payload {
			cols = append(cols, bCols[pi])
		}
		return canon, cols
	case *GroupBy:
		in, inCols := canonInfo(x.Input)
		keys := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = pexprCanon(k, inCols)
		}
		cols = append(cols, keys...)
		sort.Strings(keys)
		canon = "agg{" + strings.Join(keys, ",") + "|" + in + "}"
		for _, a := range x.Aggs {
			cols = append(cols, aggCanon(a, inCols))
		}
		return canon, cols
	case *GroupJoin:
		// Canonicalize as the group-by over the underlying join: the
		// fused operator computes the same expression.
		j := &Join{Build: x.Build, Probe: x.Probe, BuildKey: x.BuildKey, ProbeKey: x.ProbeKey}
		rels, edges, _, pCols := joinParts(j)
		key := pexprCanon(x.ProbeKey, pCols)
		canon = "agg{" + key + "|" + joinCanon(rels, edges) + "}"
		cols = append(cols, key)
		for _, a := range x.Aggs {
			cols = append(cols, aggCanon(a, pCols))
		}
		return canon, cols
	case *Output:
		// Output neither filters nor expands: its expression is its
		// input's (the projection list does not change cardinality).
		return canonInfo(x.Input)
	default:
		return fmt.Sprintf("node{%s}", n.Kind()), namesOf(n)
	}
}

func namesOf(n Node) []string {
	out := n.Out()
	cols := make([]string, len(out))
	for i, c := range out {
		cols[i] = c.Name
	}
	return cols
}

// scanCanon renders a base scan: table name plus the sorted filter
// conjuncts over *table column names* (never positions or aliases).
func scanCanon(s *Scan) string {
	if s.Filter == nil {
		return "scan(" + s.Table.Name + ")"
	}
	names := make([]string, len(s.Cols))
	for i, ci := range s.Cols {
		names[i] = s.Table.Name + "." + s.Table.Cols[ci].Name
	}
	var conjs []string
	for _, c := range conjuncts(s.Filter) {
		conjs = append(conjs, pexprCanon(c, names))
	}
	sort.Strings(conjs)
	return "scan(" + s.Table.Name + " σ[" + strings.Join(conjs, "&") + "])"
}

// conjuncts flattens a top-level AND chain.
func conjuncts(p PExpr) []PExpr {
	if b, ok := p.(*PBin); ok && b.Op == OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []PExpr{p}
}

// joinParts flattens a join subtree into its base-relation canons and
// its join-edge canons, plus the canonical column names of both direct
// children (for the parent's payload and key resolution).
func joinParts(j *Join) (rels, edges []string, buildCols, probeCols []string) {
	collect := func(n Node) (cols []string) {
		if sub, ok := n.(*Join); ok {
			r, e, _, _ := joinParts(sub)
			rels = append(rels, r...)
			edges = append(edges, e...)
			_, cols = canonInfo(sub)
			return cols
		}
		c, cols := canonInfo(n)
		rels = append(rels, c)
		return cols
	}
	buildCols = collect(j.Build)
	probeCols = collect(j.Probe)
	bk := pexprCanon(j.BuildKey, buildCols)
	pk := pexprCanon(j.ProbeKey, probeCols)
	if bk > pk {
		bk, pk = pk, bk
	}
	edges = append(edges, bk+"="+pk)
	return rels, edges, buildCols, probeCols
}

func joinCanon(rels, edges []string) string {
	rels = append([]string(nil), rels...)
	edges = append([]string(nil), edges...)
	sort.Strings(rels)
	sort.Strings(edges)
	return "join{" + strings.Join(rels, ",") + "|" + strings.Join(edges, "&") + "}"
}

// commutative marks operators whose operand order is not identity.
func commutative(op BinOp) bool {
	switch op {
	case OpAdd, OpMul, OpEq, OpNe, OpAnd, OpOr:
		return true
	}
	return false
}

// pexprCanon renders a bound expression with column positions resolved
// through cols (the canonical names of the input schema).
func pexprCanon(p PExpr, cols []string) string {
	switch x := p.(type) {
	case *PCol:
		if x.Pos >= 0 && x.Pos < len(cols) {
			return cols[x.Pos]
		}
		return fmt.Sprintf("$%d", x.Pos)
	case *PConst:
		return fmt.Sprintf("#%d", x.Val)
	case *PParam:
		return fmt.Sprintf("?%d", x.Idx)
	case *PBin:
		l, r := pexprCanon(x.L, cols), pexprCanon(x.R, cols)
		if commutative(x.Op) && l > r {
			l, r = r, l
		}
		return "(" + l + x.Op.String() + r + ")"
	default:
		return fmt.Sprintf("%v", p)
	}
}

func aggCanon(a AggSpec, cols []string) string {
	if a.Arg == nil {
		return a.Fn.String() + "(*)"
	}
	return a.Fn.String() + "(" + pexprCanon(a.Arg, cols) + ")"
}
